package distknn_test

import (
	"strings"
	"testing"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/testutil"
	"distknn/internal/xrand"
)

// mergedVectorData reassembles the global vector dataset exactly as the
// UniformVectorShards hold it (same order, hence same IDs after
// NewVectorCluster assigns 1..n).
func mergedVectorData(t *testing.T, seed uint64, k, perNode, dim int) ([]distknn.Vector, []float64) {
	t.Helper()
	return testutil.Merged(t, distknn.UniformVectorShards(seed, perNode, dim), k)
}

func vectorQueryAt(seed uint64, dim, i int) distknn.Vector {
	rng := xrand.NewStream(seed, 1<<40+uint64(i))
	v := make(distknn.Vector, dim)
	for j := range v {
		v[j] = rng.Float64()
	}
	return v
}

func startVectorRemote(t *testing.T, k int, seed uint64, perNode, dim int) (*distknn.LocalServer, *distknn.RemoteCluster[distknn.Vector]) {
	t.Helper()
	return testutil.StartCluster(t, distknn.VectorPoints(), k, seed,
		distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{}, distknn.FrontendOptions{})
}

// TestRemoteVectorMatchesInProcess is the vector acceptance test: a
// resident TCP cluster of k-d-tree-indexed vector shards answers a long
// stream of queries over one mesh, and every answer is bit-identical to
// the in-process NewVectorCluster serving the same global dataset.
func TestRemoteVectorMatchesInProcess(t *testing.T) {
	const (
		k       = 4
		perNode = 250
		dim     = 4
		seed    = 42
		queries = 110
		l       = 12
	)
	_, rc := startVectorRemote(t, k, seed, perNode, dim)

	vecs, labels := mergedVectorData(t, seed, k, perNode, dim)
	local, err := distknn.NewVectorCluster(vecs, labels, distknn.Options{Machines: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	for i := 0; i < queries; i++ {
		q := vectorQueryAt(seed, dim, i)
		remote, rstats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("remote query %d: %v", i, err)
		}
		want, lstats, err := local.KNN(q, l)
		if err != nil {
			t.Fatalf("local query %d: %v", i, err)
		}
		if len(remote) != len(want) {
			t.Fatalf("query %d: %d neighbors remote, %d local", i, len(remote), len(want))
		}
		for j := range want {
			if remote[j] != want[j] {
				t.Fatalf("query %d neighbor %d: remote %+v != local %+v", i, j, remote[j], want[j])
			}
		}
		if rstats.Boundary != lstats.Boundary {
			t.Fatalf("query %d: boundary remote %v != local %v", i, rstats.Boundary, lstats.Boundary)
		}
		if rstats.Rounds <= 0 || rstats.Messages <= 0 {
			t.Fatalf("query %d: implausible remote stats %+v", i, rstats)
		}
	}

	// Classification and regression agree too.
	for i := 0; i < 15; i++ {
		q := vectorQueryAt(seed, dim, 1000+i)
		rl, _, err := rc.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		ll, _, err := local.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if rl != ll {
			t.Fatalf("classify %d: remote %g != local %g", i, rl, ll)
		}
		rm, _, err := rc.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		lm, _, err := local.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if rm != lm {
			t.Fatalf("regress %d: remote %g != local %g", i, rm, lm)
		}
	}
}

// TestRemoteBatchMatchesPerQuery pins the lockstep batch path to the solo
// path: KNNBatch over TCP must return bit-identical neighbors and
// boundaries to per-query KNN calls on the same cluster, and to the
// in-process KNNBatch over the same global dataset — at every batch size,
// including ones that straddle chunk boundaries.
func TestRemoteBatchMatchesPerQuery(t *testing.T) {
	const (
		k       = 3
		perNode = 200
		seed    = 9
		queries = 45
		l       = 7
	)
	_, rc := startRemote(t, k, seed, perNode, distknn.NodeOptions{})

	qs := make([]distknn.Scalar, queries)
	for i := range qs {
		qs[i] = distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}
	// Per-query ground truth over the same serving session.
	want := make([]distknn.BatchResult, queries)
	for i, q := range qs {
		items, stats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("per-query %d: %v", i, err)
		}
		want[i] = distknn.BatchResult{Neighbors: items, Boundary: stats.Boundary}
	}

	check := func(name string, offset int, got []distknn.BatchResult) {
		t.Helper()
		for gi := range got {
			i := offset + gi
			if got[gi].Boundary != want[i].Boundary {
				t.Fatalf("%s query %d: boundary %v != %v", name, i, got[gi].Boundary, want[i].Boundary)
			}
			if len(got[gi].Neighbors) != len(want[i].Neighbors) {
				t.Fatalf("%s query %d: %d neighbors, want %d", name, i, len(got[gi].Neighbors), len(want[i].Neighbors))
			}
			for j := range want[i].Neighbors {
				if got[gi].Neighbors[j] != want[i].Neighbors[j] {
					t.Fatalf("%s query %d neighbor %d: %+v != %+v", name, i, j,
						got[gi].Neighbors[j], want[i].Neighbors[j])
				}
			}
		}
	}

	// One dispatch for the whole stream, and a size that forces several
	// dispatches with a ragged tail.
	got, stats, err := rc.KNNBatch(qs, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != queries {
		t.Fatalf("batch-all: %d results, want %d", len(got), queries)
	}
	check("batch-all", 0, got)
	if stats.Rounds <= 0 || stats.Messages <= 0 {
		t.Fatalf("implausible batch stats %+v", stats)
	}
	for i := 0; i < queries; i += 16 {
		end := i + 16
		if end > queries {
			end = queries
		}
		part, _, err := rc.KNNBatch(qs[i:end], l)
		if err != nil {
			t.Fatal(err)
		}
		check("batch-16", i, part)
	}

	// And the in-process KNNBatch over the merged dataset agrees.
	values, labels := mergedData(t, seed, k, perNode)
	local, err := distknn.NewScalarCluster(values, labels, distknn.Options{Machines: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	inproc, _, err := local.KNNBatch(qs, l)
	if err != nil {
		t.Fatal(err)
	}
	check("in-process", 0, inproc)
}

// TestRemoteVectorBatch runs the batch parity check on the vector path,
// where the lockstep epoch multiplexes k-d-tree-backed sub-programs.
func TestRemoteVectorBatch(t *testing.T) {
	const (
		k       = 3
		perNode = 150
		dim     = 3
		seed    = 13
		queries = 30
		l       = 5
	)
	_, rc := startVectorRemote(t, k, seed, perNode, dim)
	qs := make([]distknn.Vector, queries)
	for i := range qs {
		qs[i] = vectorQueryAt(seed, dim, i)
	}
	got, _, err := rc.KNNBatch(qs, l)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		items, stats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("per-query %d: %v", i, err)
		}
		if got[i].Boundary != stats.Boundary {
			t.Fatalf("query %d: batch boundary %v != solo %v", i, got[i].Boundary, stats.Boundary)
		}
		for j := range items {
			if got[i].Neighbors[j] != items[j] {
				t.Fatalf("query %d neighbor %d: batch %+v != solo %+v", i, j, got[i].Neighbors[j], items[j])
			}
		}
	}
}

// TestRemoteVectorDimMismatch: a query of the wrong dimension fails that
// query cleanly and leaves the session serving.
func TestRemoteVectorDimMismatch(t *testing.T) {
	const (
		k       = 2
		perNode = 60
		dim     = 4
		seed    = 5
		l       = 3
	)
	_, rc := startVectorRemote(t, k, seed, perNode, dim)
	if _, _, err := rc.KNN(make(distknn.Vector, dim+1), l); err == nil {
		t.Fatal("mismatched dimension should fail")
	} else if !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, _, err := rc.KNN(vectorQueryAt(seed, dim, 1), l); err != nil {
		t.Fatalf("session should survive a failed query: %v", err)
	}
}

// TestVectorTCPSmoke is the CI short-mode smoke test for the vector
// serving path: tiny cluster, a handful of queries, checked against the
// brute-force oracle over the merged dataset.
func TestVectorTCPSmoke(t *testing.T) {
	const (
		k       = 2
		perNode = 50
		dim     = 3
		seed    = 21
		l       = 4
	)
	_, rc := startVectorRemote(t, k, seed, perNode, dim)
	vecs, labels := mergedVectorData(t, seed, k, perNode, dim)
	set, err := points.NewSet(vecs, labels, points.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		q := vectorQueryAt(seed, dim, 900+i)
		got, _, err := rc.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		want := set.BruteKNN(q, l)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Key != want[j].Key {
				t.Fatalf("query %d neighbor %d: %v != %v", i, j, got[j].Key, want[j].Key)
			}
		}
	}
}
