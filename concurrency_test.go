package distknn

import (
	"errors"
	"sync"
	"testing"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TestConcurrentQueriesMatchOracle fires overlapping KNN, Classify and
// Regress calls from many goroutines and checks every result against the
// brute-force oracle. Run under -race this is the package's central
// concurrency-safety guarantee.
func TestConcurrentQueriesMatchOracle(t *testing.T) {
	c, values, labels := scalarFixture(t, 600, Options{Machines: 8, Seed: 51})
	defer c.Close()
	const workers = 12
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < perWorker; rep++ {
				q := uint64(w*1000003 + rep*7919)
				l := 5 + (w+rep)%13
				switch rep % 3 {
				case 0:
					got, stats, err := c.KNN(Scalar(q), l)
					if err != nil {
						errs <- err
						continue
					}
					want := bruteScalar(values, labels, q, l)
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("worker %d q=%d rank %d: got %+v, want %+v", w, q, i, got[i], want[i])
							break
						}
					}
					if stats.Rounds == 0 || stats.Messages == 0 {
						t.Errorf("worker %d: stats not populated: %+v", w, stats)
					}
				case 1:
					got, _, err := c.Classify(Scalar(q), l)
					if err != nil {
						errs <- err
						continue
					}
					want := majorityLabel(bruteScalar(values, labels, q, l))
					if got != want {
						t.Errorf("worker %d q=%d: Classify = %g, want %g", w, q, got, want)
					}
				case 2:
					got, _, err := c.Regress(Scalar(q), l)
					if err != nil {
						errs <- err
						continue
					}
					want := meanLabel(bruteScalar(values, labels, q, l))
					if diff := got - want; diff > 1e-9 || diff < -1e-9 {
						t.Errorf("worker %d q=%d: Regress = %g, want %g", w, q, got, want)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// majorityLabel mirrors core.Classify's tie-break: most frequent label,
// smallest label on ties.
func majorityLabel(items []Item) float64 {
	counts := make(map[float64]int)
	for _, it := range items {
		counts[it.Label]++
	}
	var best float64
	bestN := -1
	for label, n := range counts {
		if n > bestN || (n == bestN && label < best) {
			best, bestN = label, n
		}
	}
	return best
}

func meanLabel(items []Item) float64 {
	var sum float64
	for _, it := range items {
		sum += it.Label
	}
	return sum / float64(len(items))
}

// TestConcurrentMatchesSerial asserts the determinism guarantee: a seeded
// cluster returns identical neighbor lists for the same queries whether they
// are issued one at a time or from many goroutines at once.
func TestConcurrentMatchesSerial(t *testing.T) {
	queries := make([]Scalar, 24)
	for i := range queries {
		queries[i] = Scalar(i * 999983)
	}
	const l = 9

	serial := make([][]Item, len(queries))
	cs, _, _ := scalarFixture(t, 500, Options{Machines: 6, Seed: 53})
	for i, q := range queries {
		got, _, err := cs.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = got
	}
	cs.Close()

	concurrent := make([][]Item, len(queries))
	cc, _, _ := scalarFixture(t, 500, Options{Machines: 6, Seed: 53})
	defer cc.Close()
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q Scalar) {
			defer wg.Done()
			got, _, err := cc.KNN(q, l)
			if err != nil {
				t.Error(err)
				return
			}
			concurrent[i] = got
		}(i, q)
	}
	wg.Wait()

	for i := range queries {
		if len(serial[i]) != len(concurrent[i]) {
			t.Fatalf("query %d: serial %d neighbors, concurrent %d", i, len(serial[i]), len(concurrent[i]))
		}
		for r := range serial[i] {
			if serial[i][r] != concurrent[i][r] {
				t.Fatalf("query %d rank %d: serial %+v != concurrent %+v", i, r, serial[i][r], concurrent[i][r])
			}
		}
	}
}

// TestSteadyStateQueriesSkipElection verifies the headline of the persistent
// runtime: from query #2 onward (indeed from query #1), a query's rounds are
// strictly below what the pre-runtime path — election plus query in every
// run — pays for the very same query execution.
func TestSteadyStateQueriesSkipElection(t *testing.T) {
	opts := Options{Machines: 8, Seed: 57}
	c, _, _ := scalarFixture(t, 800, opts)
	defer c.Close()
	const l = 40

	if _, _, err := c.KNN(Scalar(11), l); err != nil { // query #1
		t.Fatal(err)
	}

	for qi := uint64(2); qi <= 4; qi++ { // queries #2..#4
		q := Scalar(qi * 1000003)
		_, stats, err := c.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}

		// Replay the seed path for the same query: identical seed, same
		// cached leader and hence an identical algorithm execution, but
		// with the per-query election the old one-shot path ran. Its
		// round count must exceed the steady-state query's strictly.
		leader := c.Leader()
		prog := func(m kmachine.Env) error {
			if _, err := election.MinGUID(m); err != nil {
				return err
			}
			local := c.parts[m.ID()].TopLItems(q, l)
			_, err := core.KNN(m, core.Config{L: l, Leader: leader}, local)
			return err
		}
		met, err := kmachine.Run(kmachine.Config{
			K:    opts.Machines,
			Seed: xrand.DeriveSeed(opts.Seed, qi),
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds >= met.Rounds {
			t.Errorf("query #%d: steady-state rounds %d not strictly below election-included rounds %d",
				qi, stats.Rounds, met.Rounds)
		}
	}
}

// TestConcurrentKNNBatch overlaps whole batches with single queries.
func TestConcurrentKNNBatch(t *testing.T) {
	c, values, labels := scalarFixture(t, 400, Options{Machines: 6, Seed: 59})
	defer c.Close()
	queries := []Scalar{3, 1 << 16, 1 << 28, 1 << 31}
	const l = 8
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				results, _, err := c.KNNBatch(queries, l)
				if err != nil {
					t.Error(err)
					return
				}
				for qi, q := range queries {
					want := bruteScalar(values, labels, uint64(q), l)
					for i := range results[qi].Neighbors {
						if results[qi].Neighbors[i] != want[i] {
							t.Errorf("batch worker %d query %d rank %d mismatch", w, qi, i)
							return
						}
					}
				}
			} else {
				if _, _, err := c.KNN(queries[w%len(queries)], l); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentSelectRank overlaps selection queries on a scalar cluster.
func TestConcurrentSelectRank(t *testing.T) {
	values := make([]uint64, 300)
	rng := xrand.New(61)
	for i := range values {
		values[i] = rng.Uint64()
	}
	c, err := NewScalarCluster(values, nil, Options{Machines: 5, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rank := 1 + w*37
			got, _, err := SelectRank(c, rank)
			if err != nil {
				t.Error(err)
				return
			}
			want := nthSmallest(values, rank)
			if got != want {
				t.Errorf("rank %d: got %d, want %d", rank, got, want)
			}
		}(w)
	}
	wg.Wait()
}

func nthSmallest(values []uint64, rank int) uint64 {
	sorted := append([]uint64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[rank-1]
}

// TestClusterClose checks Close semantics on the facade.
func TestClusterClose(t *testing.T) {
	c, _, _ := scalarFixture(t, 100, Options{Machines: 4, Seed: 65})
	if _, _, err := c.KNN(Scalar(1), 3); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, _, err := c.KNN(Scalar(1), 3); !errors.Is(err, ErrClosed) {
		t.Errorf("KNN after Close: %v, want ErrClosed", err)
	}
	if _, _, err := c.Classify(Scalar(1), 3); !errors.Is(err, ErrClosed) {
		t.Errorf("Classify after Close: %v, want ErrClosed", err)
	}
	if _, _, err := c.KNNBatch([]Scalar{1}, 3); !errors.Is(err, ErrClosed) {
		t.Errorf("KNNBatch after Close: %v, want ErrClosed", err)
	}
	if _, _, err := SelectRank(c, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("SelectRank after Close: %v, want ErrClosed", err)
	}
	if _, _, err := c.KNNOneShot(Scalar(1), 3); !errors.Is(err, ErrClosed) {
		t.Errorf("KNNOneShot after Close: %v, want ErrClosed", err)
	}
}

// TestLeaderCachedAndRederivable checks the construction-time election is
// cached and that ElectLeader re-derives the same winner on demand.
func TestLeaderCachedAndRederivable(t *testing.T) {
	c, _, _ := scalarFixture(t, 200, Options{Machines: 8, Seed: 67})
	defer c.Close()
	cached := c.Leader()
	if cached < 0 || cached >= 8 {
		t.Fatalf("cached leader %d out of range", cached)
	}
	_, stats, err := c.KNN(Scalar(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leader != cached {
		t.Errorf("query used leader %d, cached %d", stats.Leader, cached)
	}
	leader, estats, err := c.ElectLeader()
	if err != nil {
		t.Fatal(err)
	}
	if leader != cached {
		t.Errorf("re-derived leader %d != cached %d (same seed must replay)", leader, cached)
	}
	if estats.Rounds == 0 {
		t.Errorf("election reported no communication")
	}
}

// TestConcurrentVectorQueries exercises the k-d-tree local search path under
// concurrency.
func TestConcurrentVectorQueries(t *testing.T) {
	rng := xrand.New(69)
	vecs := make([]Vector, 300)
	for i := range vecs {
		vecs[i] = Vector{rng.Float64(), rng.Float64()}
	}
	c, err := NewVectorCluster(vecs, nil, Options{Machines: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle, err := points.NewSet(vecs, nil, points.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := xrand.NewStream(71, uint64(w))
			for rep := 0; rep < 3; rep++ {
				q := Vector{qrng.Float64(), qrng.Float64()}
				got, _, err := c.KNN(q, 7)
				if err != nil {
					t.Error(err)
					return
				}
				want := oracle.BruteKNN(q, 7)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("worker %d rep %d rank %d mismatch", w, rep, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
