package distknn

import (
	"fmt"

	"distknn/internal/core"
	"distknn/internal/dsel"
	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// BatchResult is the outcome of one query inside a KNNBatch call.
type BatchResult struct {
	// Neighbors are the exact ℓ nearest neighbors in ascending order.
	Neighbors []Item
	// Boundary is the ℓ-th neighbor's key.
	Boundary Key
}

// KNNBatch answers many queries in a single cluster run: the leader is
// elected once and every query then costs only the O(log ℓ) query protocol,
// amortizing the election and the per-run setup. This is the paper's
// concluding suggestion — using the algorithm as a subroutine — applied to
// the query stream itself.
//
// The per-query results are exact and identical to individual KNN calls.
// The returned QueryStats aggregates the whole batch.
func (c *Cluster[P]) KNNBatch(queries []P, l int) ([]BatchResult, *QueryStats, error) {
	if l < 1 || l > c.n {
		return nil, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	if len(queries) == 0 {
		return nil, &QueryStats{}, nil
	}
	c.queries++
	seed := xrand.DeriveSeed(c.opts.Seed, c.queries)
	algoFn := c.algoFn()
	baseCfg := core.Config{
		L:            l,
		SampleFactor: c.opts.SampleFactor,
		CutFactor:    c.opts.CutFactor,
	}
	if c.opts.MonteCarlo {
		baseCfg.Mode = core.ModeMonteCarlo
	}

	k := len(c.parts)
	winnersPerQuery := make([][][]Item, len(queries)) // [query][machine][]Item
	for qi := range winnersPerQuery {
		winnersPerQuery[qi] = make([][]Item, k)
	}
	boundaries := make([]Key, len(queries))

	prog := func(m kmachine.Env) error {
		leader, err := c.elect(m)
		if err != nil {
			return err
		}
		cfg := baseCfg
		cfg.Leader = leader
		for qi, q := range queries {
			local := c.localTopL(m.ID(), q, l)
			res, err := algoFn(m, cfg, local)
			if err != nil {
				return fmt.Errorf("query %d: %w", qi, err)
			}
			winnersPerQuery[qi][m.ID()] = res.Winners
			if m.ID() == leader {
				boundaries[qi] = res.Boundary
			}
		}
		return nil
	}
	met, err := kmachine.Run(kmachine.Config{
		K:              k,
		Seed:           seed,
		BandwidthBytes: c.opts.BandwidthBytes,
	}, prog)
	if err != nil {
		return nil, nil, err
	}

	out := make([]BatchResult, len(queries))
	for qi := range queries {
		var merged []Item
		for _, w := range winnersPerQuery[qi] {
			merged = append(merged, w...)
		}
		points.SortItems(merged)
		out[qi] = BatchResult{Neighbors: merged, Boundary: boundaries[qi]}
	}
	stats := &QueryStats{
		Rounds:   met.Rounds,
		Messages: met.Messages,
		Bytes:    met.Bytes,
	}
	return out, stats, nil
}

// elect runs the configured leader election on machine m.
func (c *Cluster[P]) elect(m kmachine.Env) (int, error) {
	if c.opts.SublinearElection {
		return election.Sublinear(m, election.SublinearOptions{
			BandwidthBytes: c.opts.BandwidthBytes,
		})
	}
	return election.MinGUID(m)
}

// SelectRank finds the value of global rank `rank` (1-based) among all
// scalar points in the cluster using the paper's Algorithm 1 directly —
// selection without a query point, e.g. an exact distributed median
// (rank = n/2) or any percentile. O(log n) rounds, O(k·log n) messages
// w.h.p. The stats' Boundary carries the selected (value, ID) key.
func SelectRank(c *Cluster[Scalar], rank int) (uint64, *QueryStats, error) {
	if rank < 1 || rank > c.n {
		return 0, nil, fmt.Errorf("distknn: rank %d out of range [1, %d]", rank, c.n)
	}
	c.queries++
	seed := xrand.DeriveSeed(c.opts.Seed, c.queries)
	k := len(c.parts)
	locals := make([][]keys.Key, k)
	for i, part := range c.parts {
		ks := make([]keys.Key, part.Len())
		for j := range ks {
			ks[j] = keys.Key{Dist: uint64(part.Pts[j]), ID: part.IDs[j]}
		}
		locals[i] = ks
	}
	stats := &QueryStats{}
	prog := func(m kmachine.Env) error {
		leader, err := c.elect(m)
		if err != nil {
			return err
		}
		res, err := dsel.FindLSmallest(m, leader, locals[m.ID()], rank, dsel.Options{})
		if err != nil {
			return err
		}
		if m.ID() == leader {
			stats.Leader = leader
			stats.Boundary = res.Boundary
			stats.Iterations = res.Iterations
		}
		return nil
	}
	met, err := kmachine.Run(kmachine.Config{
		K:              k,
		Seed:           seed,
		BandwidthBytes: c.opts.BandwidthBytes,
	}, prog)
	if err != nil {
		return 0, nil, err
	}
	stats.Rounds = met.Rounds
	stats.Messages = met.Messages
	stats.Bytes = met.Bytes
	return stats.Boundary.Dist, stats, nil
}

// Median returns the exact median value of a scalar cluster (lower median
// for even n).
func Median(c *Cluster[Scalar]) (uint64, *QueryStats, error) {
	if c.n == 0 {
		return 0, nil, fmt.Errorf("distknn: median of empty cluster")
	}
	return SelectRank(c, (c.n+1)/2)
}
