package distknn

import (
	"fmt"

	"distknn/internal/dsel"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
)

// BatchResult is the outcome of one query inside a KNNBatch call.
type BatchResult struct {
	// Neighbors are the exact ℓ nearest neighbors in ascending order.
	Neighbors []Item
	// Boundary is the ℓ-th neighbor's key.
	Boundary Key
}

// KNNBatch answers many queries in a single cluster run: every query costs
// only the O(log ℓ) query protocol back to back on one simulation world,
// with no per-query setup at all — the paper's concluding suggestion of
// using the algorithm as a subroutine, applied to the query stream itself.
// On a persistent Cluster the leader is already cached, so unlike the
// pre-runtime implementation the batch does not even pay one election.
//
// The per-query results are exact and identical to individual KNN calls.
// The returned QueryStats aggregates the whole batch. KNNBatch is safe to
// call concurrently with itself and with single queries.
func (c *Cluster[P]) KNNBatch(queries []P, l int) ([]BatchResult, *QueryStats, error) {
	if l < 1 || l > c.n {
		return nil, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	if len(queries) == 0 {
		return nil, &QueryStats{}, nil
	}
	seed := c.querySeed()
	leader := c.Leader()
	algoFn := c.algoFn()
	cfg := c.baseConfig(l)
	cfg.Leader = leader

	k := len(c.parts)
	winnersPerQuery := make([][][]Item, len(queries)) // [query][machine][]Item
	for qi := range winnersPerQuery {
		winnersPerQuery[qi] = make([][]Item, k)
	}
	boundaries := make([]Key, len(queries))

	prog := func(m kmachine.Env) error {
		for qi, q := range queries {
			local := c.localTopL(m.ID(), q, l)
			res, err := algoFn(m, cfg, local)
			if err != nil {
				return fmt.Errorf("query %d: %w", qi, err)
			}
			winnersPerQuery[qi][m.ID()] = res.Winners
			if m.ID() == leader {
				boundaries[qi] = res.Boundary
			}
		}
		return nil
	}
	met, err := c.rt.ExecuteSeeded(seed, prog)
	if err != nil {
		return nil, nil, c.wrapErr(err)
	}

	out := make([]BatchResult, len(queries))
	for qi := range queries {
		out[qi] = BatchResult{Neighbors: mergeWinners(winnersPerQuery[qi]), Boundary: boundaries[qi]}
	}
	stats := &QueryStats{
		Rounds:   met.Rounds,
		Messages: met.Messages,
		Bytes:    met.Bytes,
		Leader:   leader,
	}
	return out, stats, nil
}

// SelectRank finds the value of global rank `rank` (1-based) among all
// scalar points in the cluster using the paper's Algorithm 1 directly —
// selection without a query point, e.g. an exact distributed median
// (rank = n/2) or any percentile. O(log n) rounds, O(k·log n) messages
// w.h.p. The stats' Boundary carries the selected (value, ID) key.
func SelectRank(c *Cluster[Scalar], rank int) (uint64, *QueryStats, error) {
	if rank < 1 || rank > c.n {
		return 0, nil, fmt.Errorf("distknn: rank %d out of range [1, %d]", rank, c.n)
	}
	seed := c.querySeed()
	leader := c.Leader()
	k := len(c.parts)
	locals := make([][]keys.Key, k)
	for i, part := range c.parts {
		ks := make([]keys.Key, part.Len())
		for j := range ks {
			ks[j] = keys.Key{Dist: uint64(part.Pts[j]), ID: part.IDs[j]}
		}
		locals[i] = ks
	}
	stats := &QueryStats{}
	prog := func(m kmachine.Env) error {
		res, err := dsel.FindLSmallest(m, leader, locals[m.ID()], rank, dsel.Options{})
		if err != nil {
			return err
		}
		if m.ID() == leader {
			stats.Leader = leader
			stats.Boundary = res.Boundary
			stats.Iterations = res.Iterations
		}
		return nil
	}
	met, err := c.rt.ExecuteSeeded(seed, prog)
	if err != nil {
		return 0, nil, c.wrapErr(err)
	}
	stats.Rounds = met.Rounds
	stats.Messages = met.Messages
	stats.Bytes = met.Bytes
	return stats.Boundary.Dist, stats, nil
}

// Median returns the exact median value of a scalar cluster (lower median
// for even n).
func Median(c *Cluster[Scalar]) (uint64, *QueryStats, error) {
	if c.n == 0 {
		return 0, nil, fmt.Errorf("distknn: median of empty cluster")
	}
	return SelectRank(c, (c.n+1)/2)
}
