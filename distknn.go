// Package distknn is a Go implementation of "Efficient Distributed
// Algorithms for the K-Nearest Neighbors Problem" (Fathi, Molla,
// Pandurangan; SPAA 2020): exact ℓ-nearest-neighbor queries over data
// distributed across k machines, in O(log ℓ) communication rounds and
// O(k·log ℓ) messages regardless of the number of machines or points.
//
// The package is a facade: it partitions a labeled dataset across a
// simulated k-machine cluster (goroutine-per-machine, synchronous rounds,
// bandwidth-limited links — see internal/kmachine) and answers queries with
// the paper's Algorithm 2 or any of the baseline algorithms. Results are
// exact: the default Las Vegas mode verifies the algorithm's random pruning
// step and falls back to un-pruned selection in the ≤ 2/ℓ² of runs where it
// over-prunes.
//
// # Serving model
//
// A Cluster is a persistent deployment, built to serve a stream of queries
// rather than a single one. Construction pays all one-time costs exactly
// once: the dataset is partitioned, the machine goroutines are started (and
// stay resident between queries), and a leader is elected and cached. Every
// subsequent query therefore runs zero election rounds, and steady-state
// serial queries spawn zero goroutines — each costs only the paper's
// O(log ℓ) query protocol. Concurrent bursts grow a bounded pool of resident
// simulation worlds (one per in-flight query, reused thereafter). Call
// Close when done with a cluster to release the resident goroutines.
//
// # Concurrency
//
// A Cluster is safe for concurrent use: any number of goroutines may call
// KNN, Classify, Regress, KNNBatch, SelectRank and Median simultaneously.
// Each in-flight query executes on its own isolated simulation world (own
// link timelines, own metrics), so concurrent queries neither contend on the
// model's bandwidth nor perturb each other's QueryStats, and in the default
// Las Vegas mode every query's result is exact regardless of interleaving.
// The shards are immutable after construction and per-query randomness is
// derived from an atomic counter, so the old "not safe for concurrent
// queries" caveat is gone. (Seed assignment follows arrival order, so
// per-query cost metrics — and MonteCarlo-mode failures — are deterministic
// only under serial issue; see Options.Seed.)
//
// # Serving over TCP
//
// The same serving model runs over real sockets, generic over the point
// type: a Frontend plus k resident nodes (ServeTypedNode with a PointType
// — scalar, k-d-tree-indexed vector and bit-packed Hamming shards ship —
// or ServeTypedLocal for a single-process loopback deployment) mesh up
// once, elect a leader once, and answer each dispatched query batch as
// one BSP epoch on the standing mesh; a batch's queries run as lockstep
// sub-programs sharing the epoch's physical rounds, so KNNBatch over TCP
// amortizes frames, syscalls and round latency across the batch. The
// frontend's epoch scheduler pipelines up to FrontendOptions.Window
// epochs from concurrent clients on the mesh at once and can coalesce
// concurrently arriving single queries into lockstep batch epochs
// (FrontendOptions.ServerBatch) — answers stay bit-identical to
// serialized execution. A RemoteCluster is the client handle: the same
// KNN/Classify/Regress/KNNBatch surface, the same exact results,
// deterministic per (seed, query stream). See remote.go,
// docs/ARCHITECTURE.md and docs/PROTOCOL.md.
//
// Quickstart:
//
//	cluster, err := distknn.NewScalarCluster(values, labels, distknn.Options{Machines: 8})
//	defer cluster.Close()
//	neighbors, stats, err := cluster.KNN(query, 10)
//	label, _, err := cluster.Classify(query, 10)
//
// For the experiment harness reproducing the paper's evaluation, see
// cmd/knnbench; for a concurrent throughput benchmark, see cmd/knnquery
// -serve; for running over real TCP sockets, see cmd/knnnode -serve,
// RemoteCluster, and internal/transport/tcp.
package distknn

import (
	"errors"
	"fmt"
	"sync/atomic"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kdtree"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// ErrClosed is returned by queries on a Cluster whose Close has been called.
var ErrClosed = errors.New("distknn: cluster closed")

// Re-exported data types. Item carries a point's distance key and label;
// Key is the (encoded distance, point ID) pair all algorithms order by.
type (
	// Item is one point's view in a query result.
	Item = points.Item
	// Key is the total-order key (distance, ID).
	Key = keys.Key
	// Scalar is a one-dimensional integer point (the paper's workload).
	Scalar = points.Scalar
	// Vector is a d-dimensional float64 point.
	Vector = points.Vector
	// BitVector is a bit-packed point compared under Hamming distance
	// (64 features per word).
	BitVector = points.BitVector
	// Metric computes order-encoded distances for point type P.
	Metric[P any] = points.Metric[P]
)

// Algorithm selects the distributed query strategy.
type Algorithm int

const (
	// Alg2 is the paper's Algorithm 2: O(log ℓ) rounds w.h.p. Default.
	Alg2 Algorithm = iota
	// Direct runs Algorithm 1 on all ≤ kℓ candidates: O(log ℓ + log k)
	// rounds.
	Direct
	// Simple is the gather-everything baseline: Θ(ℓ) rounds.
	Simple
	// SaukasSong is the deterministic weighted-median baseline.
	SaukasSong
	// BinSearch bisects the key domain: Θ(domain bits) rounds.
	BinSearch
)

// String names the algorithm for logs and tables.
func (a Algorithm) String() string {
	switch a {
	case Alg2:
		return "alg2"
	case Direct:
		return "direct"
	case Simple:
		return "simple"
	case SaukasSong:
		return "saukas-song"
	case BinSearch:
		return "binsearch"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options configures a Cluster.
type Options struct {
	// Machines is k, the number of simulated machines (default 4).
	Machines int
	// BandwidthBytes is the per-link capacity per round; 0 selects the
	// model default (64 B), negative means unlimited.
	BandwidthBytes int
	// Seed makes the cluster (partitioning, election, algorithm
	// randomness) deterministic: two clusters built with equal inputs and
	// queried serially replay identically. Under concurrent issue the
	// per-query seeds follow arrival order, so cost metrics (and, in
	// MonteCarlo mode, which query trips a failure) can vary run to run;
	// results stay exact either way in the default Las Vegas mode.
	Seed uint64
	// Algorithm selects the query strategy (default Alg2).
	Algorithm Algorithm
	// SublinearElection uses the randomized O(√k·log^{3/2} k)-message
	// leader election instead of the min-GUID broadcast. Either way the
	// election runs once, at construction.
	SublinearElection bool
	// SampleFactor and CutFactor override Algorithm 2's Lemma 2.3
	// constants (defaults 12 and 21).
	SampleFactor, CutFactor int
	// MonteCarlo disables the Las Vegas verification; queries then fail
	// with core.ErrMonteCarloFailure with probability ≤ 2/ℓ².
	MonteCarlo bool
	// RandomIDs assigns points random IDs in [1, n³] (the paper's scheme,
	// unique w.h.p. and verified at construction) instead of sequential
	// unique IDs.
	RandomIDs bool
}

func (o Options) withDefaults() Options {
	if o.Machines == 0 {
		o.Machines = 4
	}
	return o
}

// QueryStats reports the distributed cost of one query. Each query gets its
// own QueryStats; concurrent queries never share one.
type QueryStats struct {
	// Rounds, Messages and Bytes are the k-machine model costs. They
	// cover the query protocol only: leader election happened once at
	// cluster construction and is not charged to any query.
	Rounds   int
	Messages int64
	Bytes    int64
	// Leader is the cluster's cached leader machine.
	Leader int
	// Boundary is the ℓ-th neighbor's key.
	Boundary Key
	// Survivors counts candidates after Algorithm 2's prune (0 for other
	// algorithms); FellBack reports a Las Vegas re-run.
	Survivors int64
	FellBack  bool
	// Iterations counts selection pivot steps.
	Iterations int
	// Contacts is the total number of (shard, sub-batch) contacts a remote
	// pruned dispatch made — Σ over the query batch of the number of nodes
	// each point was sent to, so Contacts divided by the batch size is the
	// contacted-nodes-per-query figure. 0 for full-scatter epochs and
	// in-process clusters, where every query reaches every machine by
	// construction.
	Contacts int64
}

// electionStream is the seed-derivation stream reserved for the
// construction-time election; query streams are the small positive integers
// from the query counter, so they never collide with it.
const electionStream = ^uint64(0)

// Cluster is an in-process k-machine deployment of a labeled dataset:
// create one with NewCluster (or the typed helpers), query it from as many
// goroutines as you like, and Close it when done. The machine goroutines
// persist across queries and the leader is elected once at construction, so
// steady-state queries pay only the O(log ℓ) query protocol.
type Cluster[P any] struct {
	opts    Options
	parts   []*points.Set[P] // immutable after construction
	n       int
	rt      *kmachine.Runtime
	leader  atomic.Int64  // cached election winner; re-derivable via ElectLeader
	queries atomic.Uint64 // per-query seed-derivation counter
	// localTopL computes machine i's ℓ nearest local points. The default
	// is a streaming scan; NewVectorCluster installs a k-d-tree-backed
	// version. It must be safe for concurrent calls (both built-ins are:
	// they only read the immutable shard). Accelerating this step changes
	// local computation only — never the round/message complexity —
	// exactly the role the paper's related-work section assigns to k-d
	// trees (Section 1.4).
	localTopL func(i int, q P, l int) []Item
}

// NewCluster partitions pts (with optional labels, may be nil) across the
// configured number of simulated machines using a balanced random partition,
// the benign case of the model's adversarial placement, then starts the
// resident machine goroutines and elects the leader.
func NewCluster[P any](pts []P, labels []float64, metric Metric[P], opts Options) (*Cluster[P], error) {
	opts = opts.withDefaults()
	set, err := points.NewSet(pts, labels, metric, 1)
	if err != nil {
		return nil, fmt.Errorf("distknn: %w", err)
	}
	rng := xrand.NewStream(opts.Seed, 0xC1)
	if opts.RandomIDs {
		set.AssignRandomIDs(rng, uint64(set.Len()))
		if points.CollidingIDs(set) {
			// Astronomically unlikely (probability ~1/n); redraw once.
			set.AssignRandomIDs(rng, uint64(set.Len()))
			if points.CollidingIDs(set) {
				return nil, fmt.Errorf("distknn: random point IDs collided twice")
			}
		}
	}
	parts, err := points.Partition(set, opts.Machines, points.PartitionRandom, rng)
	if err != nil {
		return nil, fmt.Errorf("distknn: %w", err)
	}
	c := &Cluster[P]{opts: opts, parts: parts, n: set.Len()}
	c.localTopL = func(i int, q P, l int) []Item { return c.parts[i].TopLItems(q, l) }
	c.rt, err = kmachine.NewRuntime(kmachine.Config{
		K:              opts.Machines,
		BandwidthBytes: opts.BandwidthBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("distknn: %w", err)
	}
	leader, _, err := c.runElection()
	if err != nil {
		c.rt.Close()
		return nil, fmt.Errorf("distknn: electing leader: %w", err)
	}
	c.leader.Store(int64(leader))
	return c, nil
}

// NewScalarCluster builds a cluster of integer points under |a−b| distance.
func NewScalarCluster(values []uint64, labels []float64, opts Options) (*Cluster[Scalar], error) {
	pts := make([]Scalar, len(values))
	for i, v := range values {
		pts[i] = Scalar(v)
	}
	return NewCluster(pts, labels, points.ScalarMetric, opts)
}

// NewVectorCluster builds a cluster of d-dimensional points under Euclidean
// distance. Each machine indexes its shard with a k-d tree, so the local
// top-ℓ step costs O(ℓ·log(n/k)) expected instead of a linear scan; the
// tree produces bit-identical keys to the scan, so results are unchanged.
func NewVectorCluster(vecs []Vector, labels []float64, opts Options) (*Cluster[Vector], error) {
	c, err := NewCluster(vecs, labels, points.L2, opts)
	if err != nil {
		return nil, err
	}
	trees := make([]*kdtree.Tree, len(c.parts))
	for i, part := range c.parts {
		trees[i], err = kdtree.Build(part)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("distknn: indexing machine %d: %w", i, err)
		}
	}
	c.localTopL = func(i int, q Vector, l int) []Item { return trees[i].KNN(q, l) }
	return c, nil
}

// Len returns the total number of points in the cluster.
func (c *Cluster[P]) Len() int { return c.n }

// Machines returns k.
func (c *Cluster[P]) Machines() int { return len(c.parts) }

// Leader returns the cached leader machine index.
func (c *Cluster[P]) Leader() int { return int(c.leader.Load()) }

// Close releases the cluster's resident machine goroutines. It is
// idempotent and safe to call concurrently with in-flight queries: those
// queries complete normally, and later queries fail with ErrClosed.
func (c *Cluster[P]) Close() {
	c.rt.Close()
}

// ElectLeader re-derives the leader by re-running the configured election
// protocol on the live cluster and refreshes the cached value. Steady-state
// queries never need this — the construction-time winner stays valid for the
// lifetime of the cluster — but it demonstrates the cached leader is
// re-derivable on demand and reports the election's distributed cost.
func (c *Cluster[P]) ElectLeader() (int, *QueryStats, error) {
	leader, met, err := c.runElection()
	if err != nil {
		return 0, nil, c.wrapErr(err)
	}
	c.leader.Store(int64(leader))
	return leader, &QueryStats{
		Rounds:   met.Rounds,
		Messages: met.Messages,
		Bytes:    met.Bytes,
		Leader:   leader,
	}, nil
}

// runElection executes one election across the runtime.
func (c *Cluster[P]) runElection() (int, *kmachine.Metrics, error) {
	return election.Once(c.rt, xrand.DeriveSeed(c.opts.Seed, electionStream), election.OnceOptions{
		Sublinear:      c.opts.SublinearElection,
		BandwidthBytes: c.opts.BandwidthBytes,
	})
}

// wrapErr maps runtime-closed errors to ErrClosed.
func (c *Cluster[P]) wrapErr(err error) error {
	if errors.Is(err, kmachine.ErrClosed) {
		return ErrClosed
	}
	return err
}

// KNN returns the exact ℓ nearest neighbors of q in ascending distance
// order, together with the query's distributed cost.
func (c *Cluster[P]) KNN(q P, l int) ([]Item, *QueryStats, error) {
	if l < 1 || l > c.n {
		return nil, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	winners, stats, _, err := c.run(q, l, false)
	if err != nil {
		return nil, nil, err
	}
	return winners, stats, nil
}

// Classify returns the majority label among the ℓ nearest neighbors of q
// (ties broken toward the smallest label).
func (c *Cluster[P]) Classify(q P, l int) (float64, *QueryStats, error) {
	if l < 1 || l > c.n {
		return 0, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	_, stats, label, err := c.run(q, l, true)
	if err != nil {
		return 0, nil, err
	}
	return label, stats, nil
}

// Regress returns the mean label of the ℓ nearest neighbors of q.
func (c *Cluster[P]) Regress(q P, l int) (float64, *QueryStats, error) {
	if l < 1 || l > c.n {
		return 0, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	stats := &QueryStats{}
	var mean float64
	err := c.execute(q, l, stats, func(m kmachine.Env, leader int, res core.Result) error {
		v, err := core.Regress(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if m.ID() == leader {
			mean = v
		}
		return nil
	}, nil)
	if err != nil {
		return 0, nil, err
	}
	return mean, stats, nil
}

// KNNOneShot answers one query the pre-runtime way: a throwaway simulation
// world is spawned, a leader is elected inside the run, and everything is
// torn down afterwards. Results are identical to KNN; only the cost
// differs. It exists so benchmarks and tests can measure exactly what the
// persistent runtime saves on the steady-state path, against the cluster's
// own shards.
func (c *Cluster[P]) KNNOneShot(q P, l int) ([]Item, *QueryStats, error) {
	if l < 1 || l > c.n {
		return nil, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	if c.rt.Closed() {
		return nil, nil, ErrClosed
	}
	seed := c.querySeed()
	algoFn := c.algoFn()
	cfg := c.baseConfig(l)
	stats := &QueryStats{}
	winners := make([][]Item, len(c.parts))
	prog := func(m kmachine.Env) error {
		leader, err := election.Elect(m, election.OnceOptions{
			Sublinear:      c.opts.SublinearElection,
			BandwidthBytes: c.opts.BandwidthBytes,
		})
		if err != nil {
			return err
		}
		local := c.localTopL(m.ID(), q, l)
		cfg := cfg
		cfg.Leader = leader
		res, err := algoFn(m, cfg, local)
		if err != nil {
			return err
		}
		winners[m.ID()] = res.Winners
		if m.ID() == leader {
			fillLeaderStats(stats, leader, res)
		}
		return nil
	}
	met, err := kmachine.Run(kmachine.Config{
		K:              len(c.parts),
		Seed:           seed,
		BandwidthBytes: c.opts.BandwidthBytes,
	}, prog)
	if err != nil {
		return nil, nil, err
	}
	stats.Rounds = met.Rounds
	stats.Messages = met.Messages
	stats.Bytes = met.Bytes
	return mergeWinners(winners), stats, nil
}

// run executes a query, optionally following it with a classification.
func (c *Cluster[P]) run(q P, l int, classify bool) ([]Item, *QueryStats, float64, error) {
	stats := &QueryStats{}
	var label float64
	winners := make([][]Item, len(c.parts))
	post := func(m kmachine.Env, leader int, res core.Result) error {
		if classify {
			v, err := core.Classify(m, leader, res.Winners)
			if err != nil {
				return err
			}
			if m.ID() == leader {
				label = v
			}
		}
		return nil
	}
	err := c.execute(q, l, stats, post, winners)
	if err != nil {
		return nil, nil, 0, err
	}
	return mergeWinners(winners), stats, label, nil
}

// mergeWinners flattens each machine's share of the winning points into one
// ascending-order result.
func mergeWinners(winners [][]Item) []Item {
	var merged []Item
	for _, w := range winners {
		merged = append(merged, w...)
	}
	points.SortItems(merged)
	return merged
}

// fillLeaderStats copies the leader-observed result fields into stats. Every
// query path — steady-state and one-shot — goes through it so the two never
// drift.
func fillLeaderStats(stats *QueryStats, leader int, res core.Result) {
	stats.Leader = leader
	stats.Boundary = res.Boundary
	stats.Survivors = res.Survivors
	stats.FellBack = res.FellBack
	stats.Iterations = res.Iterations
}

// querySeed derives a fresh, race-free seed for the next query.
func (c *Cluster[P]) querySeed() uint64 {
	return xrand.DeriveSeed(c.opts.Seed, c.queries.Add(1))
}

// baseConfig is the single source of the per-query protocol configuration.
// Callers on the steady-state path set Leader to the cached winner;
// KNNOneShot leaves it to the in-run election.
func (c *Cluster[P]) baseConfig(l int) core.Config {
	cfg := core.Config{
		L:            l,
		SampleFactor: c.opts.SampleFactor,
		CutFactor:    c.opts.CutFactor,
	}
	if c.opts.MonteCarlo {
		cfg.Mode = core.ModeMonteCarlo
	}
	return cfg
}

// execute runs the configured algorithm across the resident machines, with
// the cached leader and no per-query election. post, if non-nil, runs after
// the query with the winners; collect, if non-nil, receives each machine's
// local winners. All mutable state (stats, collect, post's captures) is
// per-call, so any number of executes may be in flight at once.
func (c *Cluster[P]) execute(q P, l int, stats *QueryStats,
	post func(m kmachine.Env, leader int, res core.Result) error, collect [][]Item) error {
	seed := c.querySeed()
	leader := c.Leader()
	algoFn := c.algoFn()
	cfg := c.baseConfig(l)
	cfg.Leader = leader
	prog := func(m kmachine.Env) error {
		local := c.localTopL(m.ID(), q, l)
		res, err := algoFn(m, cfg, local)
		if err != nil {
			return err
		}
		if collect != nil {
			collect[m.ID()] = res.Winners
		}
		if m.ID() == leader {
			fillLeaderStats(stats, leader, res)
		}
		if post != nil {
			return post(m, leader, res)
		}
		return nil
	}
	met, err := c.rt.ExecuteSeeded(seed, prog)
	if err != nil {
		return c.wrapErr(err)
	}
	stats.Rounds = met.Rounds
	stats.Messages = met.Messages
	stats.Bytes = met.Bytes
	return nil
}

func (c *Cluster[P]) algoFn() func(kmachine.Env, core.Config, []Item) (core.Result, error) {
	return algorithmFn(c.opts.Algorithm)
}

// algorithmFn maps an Algorithm to its protocol implementation. Both the
// in-process Cluster and the TCP serving node dispatch through it, so the
// two runtimes can never disagree on what an Algorithm value means.
func algorithmFn(a Algorithm) func(kmachine.Env, core.Config, []Item) (core.Result, error) {
	switch a {
	case Direct:
		return core.DirectKNN
	case Simple:
		return core.SimpleKNN
	case SaukasSong:
		return core.SaukasSongKNN
	case BinSearch:
		return core.BinarySearchKNN
	default:
		return core.KNN
	}
}
