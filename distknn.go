// Package distknn is a Go implementation of "Efficient Distributed
// Algorithms for the K-Nearest Neighbors Problem" (Fathi, Molla,
// Pandurangan; SPAA 2020): exact ℓ-nearest-neighbor queries over data
// distributed across k machines, in O(log ℓ) communication rounds and
// O(k·log ℓ) messages regardless of the number of machines or points.
//
// The package is a facade: it partitions a labeled dataset across a
// simulated k-machine cluster (goroutine-per-machine, synchronous rounds,
// bandwidth-limited links — see internal/kmachine) and answers queries with
// the paper's Algorithm 2 or any of the baseline algorithms. Results are
// exact: the default Las Vegas mode verifies the algorithm's random pruning
// step and falls back to un-pruned selection in the ≤ 2/ℓ² of runs where it
// over-prunes.
//
// Quickstart:
//
//	cluster, err := distknn.NewScalarCluster(values, labels, distknn.Options{Machines: 8})
//	neighbors, stats, err := cluster.KNN(query, 10)
//	label, _, err := cluster.Classify(query, 10)
//
// For the experiment harness reproducing the paper's evaluation, see
// cmd/knnbench; for running over real TCP sockets, see cmd/knnnode and
// internal/transport/tcp.
package distknn

import (
	"fmt"

	"distknn/internal/core"
	"distknn/internal/kdtree"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// Re-exported data types. Item carries a point's distance key and label;
// Key is the (encoded distance, point ID) pair all algorithms order by.
type (
	// Item is one point's view in a query result.
	Item = points.Item
	// Key is the total-order key (distance, ID).
	Key = keys.Key
	// Scalar is a one-dimensional integer point (the paper's workload).
	Scalar = points.Scalar
	// Vector is a d-dimensional float64 point.
	Vector = points.Vector
	// Metric computes order-encoded distances for point type P.
	Metric[P any] = points.Metric[P]
)

// Algorithm selects the distributed query strategy.
type Algorithm int

const (
	// Alg2 is the paper's Algorithm 2: O(log ℓ) rounds w.h.p. Default.
	Alg2 Algorithm = iota
	// Direct runs Algorithm 1 on all ≤ kℓ candidates: O(log ℓ + log k)
	// rounds.
	Direct
	// Simple is the gather-everything baseline: Θ(ℓ) rounds.
	Simple
	// SaukasSong is the deterministic weighted-median baseline.
	SaukasSong
	// BinSearch bisects the key domain: Θ(domain bits) rounds.
	BinSearch
)

// String names the algorithm for logs and tables.
func (a Algorithm) String() string {
	switch a {
	case Alg2:
		return "alg2"
	case Direct:
		return "direct"
	case Simple:
		return "simple"
	case SaukasSong:
		return "saukas-song"
	case BinSearch:
		return "binsearch"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options configures a Cluster.
type Options struct {
	// Machines is k, the number of simulated machines (default 4).
	Machines int
	// BandwidthBytes is the per-link capacity per round; 0 selects the
	// model default (64 B), negative means unlimited.
	BandwidthBytes int
	// Seed makes the cluster (partitioning, algorithm randomness)
	// deterministic; two clusters built with equal inputs replay
	// identically.
	Seed uint64
	// Algorithm selects the query strategy (default Alg2).
	Algorithm Algorithm
	// SublinearElection uses the randomized O(√k·log^{3/2} k)-message
	// leader election instead of the min-GUID broadcast.
	SublinearElection bool
	// SampleFactor and CutFactor override Algorithm 2's Lemma 2.3
	// constants (defaults 12 and 21).
	SampleFactor, CutFactor int
	// MonteCarlo disables the Las Vegas verification; queries then fail
	// with core.ErrMonteCarloFailure with probability ≤ 2/ℓ².
	MonteCarlo bool
	// RandomIDs assigns points random IDs in [1, n³] (the paper's scheme,
	// unique w.h.p. and verified at construction) instead of sequential
	// unique IDs.
	RandomIDs bool
}

func (o Options) withDefaults() Options {
	if o.Machines == 0 {
		o.Machines = 4
	}
	return o
}

// QueryStats reports the distributed cost of one query.
type QueryStats struct {
	// Rounds, Messages and Bytes are the k-machine model costs.
	Rounds   int
	Messages int64
	Bytes    int64
	// Leader is the elected leader machine.
	Leader int
	// Boundary is the ℓ-th neighbor's key.
	Boundary Key
	// Survivors counts candidates after Algorithm 2's prune (0 for other
	// algorithms); FellBack reports a Las Vegas re-run.
	Survivors int64
	FellBack  bool
	// Iterations counts selection pivot steps.
	Iterations int
}

// Cluster is an in-process k-machine deployment of a labeled dataset.
// Create one with NewCluster (or the typed helpers), then query it. A
// Cluster is not safe for concurrent queries.
type Cluster[P any] struct {
	opts    Options
	parts   []*points.Set[P]
	n       int
	queries uint64
	// localTopL computes machine i's ℓ nearest local points. The default
	// is a streaming scan; NewVectorCluster installs a k-d-tree-backed
	// version. Accelerating this step changes local computation only —
	// never the round/message complexity — exactly the role the paper's
	// related-work section assigns to k-d trees (Section 1.4).
	localTopL func(i int, q P, l int) []Item
}

// NewCluster partitions pts (with optional labels, may be nil) across the
// configured number of simulated machines using a balanced random
// partition, the benign case of the model's adversarial placement.
func NewCluster[P any](pts []P, labels []float64, metric Metric[P], opts Options) (*Cluster[P], error) {
	opts = opts.withDefaults()
	set, err := points.NewSet(pts, labels, metric, 1)
	if err != nil {
		return nil, fmt.Errorf("distknn: %w", err)
	}
	rng := xrand.NewStream(opts.Seed, 0xC1)
	if opts.RandomIDs {
		set.AssignRandomIDs(rng, uint64(set.Len()))
		if points.CollidingIDs(set) {
			// Astronomically unlikely (probability ~1/n); redraw once.
			set.AssignRandomIDs(rng, uint64(set.Len()))
			if points.CollidingIDs(set) {
				return nil, fmt.Errorf("distknn: random point IDs collided twice")
			}
		}
	}
	parts, err := points.Partition(set, opts.Machines, points.PartitionRandom, rng)
	if err != nil {
		return nil, fmt.Errorf("distknn: %w", err)
	}
	c := &Cluster[P]{opts: opts, parts: parts, n: set.Len()}
	c.localTopL = func(i int, q P, l int) []Item { return c.parts[i].TopLItems(q, l) }
	return c, nil
}

// NewScalarCluster builds a cluster of integer points under |a−b| distance.
func NewScalarCluster(values []uint64, labels []float64, opts Options) (*Cluster[Scalar], error) {
	pts := make([]Scalar, len(values))
	for i, v := range values {
		pts[i] = Scalar(v)
	}
	return NewCluster(pts, labels, points.ScalarMetric, opts)
}

// NewVectorCluster builds a cluster of d-dimensional points under Euclidean
// distance. Each machine indexes its shard with a k-d tree, so the local
// top-ℓ step costs O(ℓ·log(n/k)) expected instead of a linear scan; the
// tree produces bit-identical keys to the scan, so results are unchanged.
func NewVectorCluster(vecs []Vector, labels []float64, opts Options) (*Cluster[Vector], error) {
	c, err := NewCluster(vecs, labels, points.L2, opts)
	if err != nil {
		return nil, err
	}
	trees := make([]*kdtree.Tree, len(c.parts))
	for i, part := range c.parts {
		trees[i], err = kdtree.Build(part)
		if err != nil {
			return nil, fmt.Errorf("distknn: indexing machine %d: %w", i, err)
		}
	}
	c.localTopL = func(i int, q Vector, l int) []Item { return trees[i].KNN(q, l) }
	return c, nil
}

// Len returns the total number of points in the cluster.
func (c *Cluster[P]) Len() int { return c.n }

// Machines returns k.
func (c *Cluster[P]) Machines() int { return len(c.parts) }

// KNN returns the exact ℓ nearest neighbors of q in ascending distance
// order, together with the query's distributed cost.
func (c *Cluster[P]) KNN(q P, l int) ([]Item, *QueryStats, error) {
	if l < 1 || l > c.n {
		return nil, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	winners, stats, _, err := c.run(q, l, false)
	if err != nil {
		return nil, nil, err
	}
	points.SortItems(winners)
	return winners, stats, nil
}

// Classify returns the majority label among the ℓ nearest neighbors of q
// (ties broken toward the smallest label).
func (c *Cluster[P]) Classify(q P, l int) (float64, *QueryStats, error) {
	if l < 1 || l > c.n {
		return 0, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	_, stats, label, err := c.run(q, l, true)
	if err != nil {
		return 0, nil, err
	}
	return label, stats, nil
}

// Regress returns the mean label of the ℓ nearest neighbors of q.
func (c *Cluster[P]) Regress(q P, l int) (float64, *QueryStats, error) {
	if l < 1 || l > c.n {
		return 0, nil, fmt.Errorf("distknn: l=%d out of range [1, %d]", l, c.n)
	}
	stats := &QueryStats{}
	var mean float64
	err := c.execute(q, l, stats, func(m kmachine.Env, leader int, res core.Result) error {
		v, err := core.Regress(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if m.ID() == leader {
			mean = v
		}
		return nil
	}, nil)
	if err != nil {
		return 0, nil, err
	}
	return mean, stats, nil
}

// run executes a query, optionally following it with a classification.
func (c *Cluster[P]) run(q P, l int, classify bool) ([]Item, *QueryStats, float64, error) {
	stats := &QueryStats{}
	var label float64
	winners := make([][]Item, len(c.parts))
	post := func(m kmachine.Env, leader int, res core.Result) error {
		if classify {
			v, err := core.Classify(m, leader, res.Winners)
			if err != nil {
				return err
			}
			if m.ID() == leader {
				label = v
			}
		}
		return nil
	}
	err := c.execute(q, l, stats, post, winners)
	if err != nil {
		return nil, nil, 0, err
	}
	var merged []Item
	for _, w := range winners {
		merged = append(merged, w...)
	}
	return merged, stats, label, nil
}

// execute runs the configured algorithm across the simulated machines.
// post, if non-nil, runs after the query with the winners; collect, if
// non-nil, receives each machine's local winners.
func (c *Cluster[P]) execute(q P, l int, stats *QueryStats,
	post func(m kmachine.Env, leader int, res core.Result) error, collect [][]Item) error {
	c.queries++
	seed := xrand.DeriveSeed(c.opts.Seed, c.queries)
	algoFn := c.algoFn()
	cfg := core.Config{
		L:            l,
		SampleFactor: c.opts.SampleFactor,
		CutFactor:    c.opts.CutFactor,
	}
	if c.opts.MonteCarlo {
		cfg.Mode = core.ModeMonteCarlo
	}
	prog := func(m kmachine.Env) error {
		leader, err := c.elect(m)
		if err != nil {
			return err
		}
		local := c.localTopL(m.ID(), q, l)
		cfg := cfg
		cfg.Leader = leader
		res, err := algoFn(m, cfg, local)
		if err != nil {
			return err
		}
		if collect != nil {
			collect[m.ID()] = res.Winners
		}
		if m.ID() == leader {
			stats.Leader = leader
			stats.Boundary = res.Boundary
			stats.Survivors = res.Survivors
			stats.FellBack = res.FellBack
			stats.Iterations = res.Iterations
		}
		if post != nil {
			return post(m, leader, res)
		}
		return nil
	}
	met, err := kmachine.Run(kmachine.Config{
		K:              len(c.parts),
		Seed:           seed,
		BandwidthBytes: c.opts.BandwidthBytes,
	}, prog)
	if err != nil {
		return err
	}
	stats.Rounds = met.Rounds
	stats.Messages = met.Messages
	stats.Bytes = met.Bytes
	return nil
}

func (c *Cluster[P]) algoFn() func(kmachine.Env, core.Config, []Item) (core.Result, error) {
	switch c.opts.Algorithm {
	case Direct:
		return core.DirectKNN
	case Simple:
		return core.SimpleKNN
	case SaukasSong:
		return core.SaukasSongKNN
	case BinSearch:
		return core.BinarySearchKNN
	default:
		return core.KNN
	}
}
