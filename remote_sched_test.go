package distknn_test

import (
	"sync"
	"testing"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// This file pins the frontend epoch scheduler's headline promise: a stream
// of queries issued by many concurrent clients — with epoch pipelining and
// transparent server-side batching enabled — returns bit-identical answers
// to the same stream issued serially against a frontend with both features
// off. Epoch ordinals (and with them per-epoch seeds) are assigned in
// admission order, which differs run to run under concurrency, but every
// algorithm is exact, so seeds steer only sampling and round counts — never
// results.

// schedFrontendOptions is the pipelining-plus-coalescing configuration the
// determinism tests exercise: a wide window and an exaggerated linger so
// concurrently arriving queries actually coalesce.
func schedFrontendOptions() distknn.FrontendOptions {
	return distknn.FrontendOptions{
		Window:      8,
		ServerBatch: true,
		Linger:      2 * time.Millisecond,
	}
}

// serialAnswer is one query's full comparable outcome.
type serialAnswer struct {
	items    []distknn.Item
	boundary distknn.Key
	value    float64 // Classify result
}

// checkAnswer compares one concurrent-path answer against the serial
// ground truth.
func checkAnswer(t *testing.T, i int, items []distknn.Item, boundary distknn.Key, value float64, want serialAnswer) {
	t.Helper()
	if len(items) != len(want.items) {
		t.Errorf("query %d: %d neighbors, want %d", i, len(items), len(want.items))
		return
	}
	for j := range want.items {
		if items[j] != want.items[j] {
			t.Errorf("query %d neighbor %d: %+v != %+v", i, j, items[j], want.items[j])
			return
		}
	}
	if boundary != want.boundary {
		t.Errorf("query %d: boundary %v != %v", i, boundary, want.boundary)
	}
	if value != want.value {
		t.Errorf("query %d: classify %g != %g", i, value, want.value)
	}
}

// TestSchedulerDeterministicScalar: a 200-query scalar stream issued from
// 8 concurrent clients against a pipelining + server-batching frontend is
// bit-identical to the same stream issued serially with both features off.
func TestSchedulerDeterministicScalar(t *testing.T) {
	const (
		k       = 3
		perNode = 300
		seed    = 1234
		queries = 200
		clients = 8
		l       = 11
	)
	qs := make([]distknn.Scalar, queries)
	for i := range qs {
		qs[i] = distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}

	// Serial ground truth: default frontend (no server batching), one
	// client, one query at a time.
	want := make([]serialAnswer, queries)
	func() {
		srv, err := distknn.ServeLocal(k, seed, remoteShards(seed, perNode), distknn.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rc, err := distknn.DialScalarCluster(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		for i, q := range qs {
			items, stats, err := rc.KNN(q, l)
			if err != nil {
				t.Fatalf("serial query %d: %v", i, err)
			}
			value, _, err := rc.Classify(q, l)
			if err != nil {
				t.Fatalf("serial classify %d: %v", i, err)
			}
			want[i] = serialAnswer{items: items, boundary: stats.Boundary, value: value}
		}
	}()

	// Concurrent replay: same shards and seed, pipelined window plus
	// transparent server-side batching, 8 independent client connections.
	srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed,
		remoteShards(seed, perNode), distknn.NodeOptions{}, schedFrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc, err := distknn.DialScalarCluster(srv.Addr())
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer rc.Close()
			for i := c; i < queries; i += clients {
				items, stats, err := rc.KNN(qs[i], l)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				value, _, err := rc.Classify(qs[i], l)
				if err != nil {
					t.Errorf("classify %d: %v", i, err)
					return
				}
				checkAnswer(t, i, items, stats.Boundary, value, want[i])
			}
		}(c)
	}
	wg.Wait()
}

// TestSchedulerDeterministicVector runs the same concurrent-vs-serial
// bit-identity walk on the vector path, where the coalesced lockstep
// epochs multiplex k-d-tree-backed sub-programs.
func TestSchedulerDeterministicVector(t *testing.T) {
	const (
		k       = 3
		perNode = 150
		dim     = 4
		seed    = 4321
		queries = 200
		clients = 8
		l       = 6
	)
	if testing.Short() {
		t.Skip("long concurrent walk")
	}
	qs := make([]distknn.Vector, queries)
	for i := range qs {
		qs[i] = vectorQueryAt(seed, dim, i)
	}

	want := make([]serialAnswer, queries)
	func() {
		srv, err := distknn.ServeVectorLocal(k, seed, distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rc, err := distknn.DialVectorCluster(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		for i, q := range qs {
			items, stats, err := rc.KNN(q, l)
			if err != nil {
				t.Fatalf("serial query %d: %v", i, err)
			}
			value, _, err := rc.Classify(q, l)
			if err != nil {
				t.Fatalf("serial classify %d: %v", i, err)
			}
			want[i] = serialAnswer{items: items, boundary: stats.Boundary, value: value}
		}
	}()

	srv, err := distknn.ServeTypedLocalOptions(distknn.VectorPoints(), k, seed,
		distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{}, schedFrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc, err := distknn.DialVectorCluster(srv.Addr())
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer rc.Close()
			for i := c; i < queries; i += clients {
				items, stats, err := rc.KNN(qs[i], l)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				value, _, err := rc.Classify(qs[i], l)
				if err != nil {
					t.Errorf("classify %d: %v", i, err)
					return
				}
				checkAnswer(t, i, items, stats.Boundary, value, want[i])
			}
		}(c)
	}
	wg.Wait()
}
