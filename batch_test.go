package distknn

import (
	"sort"
	"testing"

	"distknn/internal/points"
	"distknn/internal/xrand"
)

func TestKNNBatchMatchesIndividualQueries(t *testing.T) {
	c, values, labels := scalarFixture(t, 400, Options{Machines: 6, Seed: 31})
	queries := []Scalar{5, 1 << 20, 1 << 31, points.PaperDomain - 1}
	results, stats, err := c.KNNBatch(queries, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Errorf("batch stats empty: %+v", stats)
	}
	for qi, q := range queries {
		want := bruteScalar(values, labels, uint64(q), 12)
		got := results[qi].Neighbors
		if len(got) != 12 {
			t.Fatalf("query %d: %d neighbors", qi, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: got %+v, want %+v", qi, i, got[i], want[i])
			}
		}
		if results[qi].Boundary != want[11].Key {
			t.Errorf("query %d boundary mismatch", qi)
		}
	}
}

func TestKNNBatchAmortizesRounds(t *testing.T) {
	// The election and setup are paid once; per-query rounds in a batch
	// must be no more than a single-query run's rounds.
	c, _, _ := scalarFixture(t, 1000, Options{Machines: 8, Seed: 33})
	_, single, err := c.KNN(Scalar(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Scalar, 10)
	for i := range queries {
		queries[i] = Scalar(i * 1000003)
	}
	_, batch, err := c.KNNBatch(queries, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Round counts vary query to query (random pivots), so allow slack;
	// the point is that a batch costs Θ(queries · log l) rounds, not
	// Θ(queries) extra elections or worse.
	perQuery := batch.Rounds / len(queries)
	if perQuery > 2*single.Rounds+10 {
		t.Errorf("batch per-query rounds %d far exceed single-query rounds %d", perQuery, single.Rounds)
	}
}

func TestKNNBatchEdgeCases(t *testing.T) {
	c, _, _ := scalarFixture(t, 50, Options{Machines: 3, Seed: 35})
	if _, _, err := c.KNNBatch([]Scalar{1}, 0); err == nil {
		t.Errorf("l=0 must fail")
	}
	if _, _, err := c.KNNBatch([]Scalar{1}, 51); err == nil {
		t.Errorf("l>n must fail")
	}
	res, stats, err := c.KNNBatch(nil, 5)
	if err != nil || len(res) != 0 || stats == nil {
		t.Errorf("empty batch: %v %v %v", res, stats, err)
	}
}

func TestSelectRankAndMedian(t *testing.T) {
	rng := xrand.New(77)
	values := make([]uint64, 501)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
	}
	c, err := NewScalarCluster(values, nil, Options{Machines: 7, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })

	for _, rank := range []int{1, 100, 251, 501} {
		got, stats, err := SelectRank(c, rank)
		if err != nil {
			t.Fatal(err)
		}
		if got != sorted[rank-1] {
			t.Errorf("rank %d: got %d, want %d", rank, got, sorted[rank-1])
		}
		if stats.Rounds == 0 {
			t.Errorf("rank %d: no communication recorded", rank)
		}
	}

	med, _, err := Median(c)
	if err != nil {
		t.Fatal(err)
	}
	if med != sorted[250] {
		t.Errorf("median %d, want %d", med, sorted[250])
	}
}

func TestSelectRankValidation(t *testing.T) {
	c, err := NewScalarCluster([]uint64{3, 1, 2}, nil, Options{Machines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := SelectRank(c, 0); err == nil {
		t.Errorf("rank 0 must fail")
	}
	if _, _, err := SelectRank(c, 4); err == nil {
		t.Errorf("rank > n must fail")
	}
	empty, err := NewScalarCluster(nil, nil, Options{Machines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if _, _, err := Median(empty); err == nil {
		t.Errorf("median of empty cluster must fail")
	}
}

func TestSelectRankWithDuplicateValues(t *testing.T) {
	values := make([]uint64, 100)
	for i := range values {
		values[i] = uint64(i % 5)
	}
	c, err := NewScalarCluster(values, nil, Options{Machines: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := SelectRank(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted values: 20 copies each of 0..4; rank 50 lands in value 2.
	if got != 2 {
		t.Errorf("rank 50 of duplicated values = %d, want 2", got)
	}
}
