package distknn_test

import (
	"errors"
	"testing"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// churnQuery returns the i-th point of the deterministic churn query
// stream.
func churnQuery(seed uint64, i int) distknn.Scalar {
	return distknn.Scalar(xrand.NewStream(seed, 1<<44+uint64(i)).Uint64N(points.PaperDomain))
}

// waitServing polls with probe queries until the cluster answers again
// after churn; probe queries consume epoch ordinals, which must not matter
// (every algorithm is exact, so answers are seed-independent).
func waitServing(t *testing.T, rc *distknn.RemoteCluster[distknn.Scalar], q distknn.Scalar, l int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, err := rc.KNN(q, l); err == nil {
			return
		} else if !errors.Is(err, distknn.ErrClusterDegraded) {
			t.Fatalf("waiting for recovery: non-degraded failure: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not recover from churn")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRemoteChurnBitIdenticalAfterRejoin is the acceptance walk for node
// churn on the real query pipeline: a resident node is lost mid-session,
// the degraded window fails only its own queries, and once a fresh process
// re-joins (rebuilding the shard from the same deterministic provider) the
// full query stream's answers are bit-identical to an uninterrupted
// cluster's — before, across and after the outage.
func TestRemoteChurnBitIdenticalAfterRejoin(t *testing.T) {
	const (
		k       = 3
		seed    = 1717
		perNode = 400
		l       = 7
		total   = 40
		lost    = 20 // queries served before the node is lost
	)
	shards := remoteShards(seed, perNode)

	// Reference: an uninterrupted cluster answering the whole stream.
	ref, refRC := startRemote(t, k, seed, perNode, distknn.NodeOptions{})
	defer refRC.Close()
	defer ref.Close()
	want := make([][]distknn.Item, total)
	for i := range want {
		items, _, err := refRC.KNN(churnQuery(seed, i), l)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = items
	}

	// The churned cluster: same seed, same shards, same stream.
	srv, err := distknn.ServeLocal(k, seed, shards, distknn.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialTypedClusterOptions(distknn.ScalarPoints(), srv.Addr(), distknn.ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	check := func(i int) {
		t.Helper()
		items, _, err := rc.KNN(churnQuery(seed, i), l)
		if err != nil {
			t.Fatalf("churned cluster query %d: %v", i, err)
		}
		if len(items) != len(want[i]) {
			t.Fatalf("query %d: %d items, want %d", i, len(items), len(want[i]))
		}
		for j := range items {
			if items[j] != want[i][j] {
				t.Fatalf("query %d item %d: %+v, want %+v — churn must not change answers", i, j, items[j], want[i][j])
			}
		}
	}
	for i := 0; i < lost; i++ {
		check(i)
	}

	// Lose node 1. The degraded window fails queries with the retryable
	// error and nothing else.
	if err := srv.EvictNode(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rc.KNN(churnQuery(seed, lost), l); err == nil || !errors.Is(err, distknn.ErrClusterDegraded) {
		t.Fatalf("query during the outage: got %v, want a degraded error", err)
	}

	// A fresh process re-joins: plain ServeScalarNode, no flags — the
	// frontend hands it the absent seat and it rebuilds shard 1.
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- distknn.ServeScalarNode(srv.Addr(), "127.0.0.1:0", shards, distknn.NodeOptions{})
	}()
	waitServing(t, rc, churnQuery(seed, 0), l)

	for i := lost; i < total; i++ {
		check(i)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
	if err := <-nodeDone; err != nil {
		t.Fatalf("re-joined node exited with %v", err)
	}
}

// TestRemoteChurnVectorRejoinRebuildsIndex re-runs a compact churn cycle on
// the vector pipeline, whose re-join path must also rebuild the k-d tree
// index over the restored shard.
func TestRemoteChurnVectorRejoinRebuildsIndex(t *testing.T) {
	const (
		k       = 2
		seed    = 99
		perNode = 200
		dim     = 4
		l       = 5
	)
	shards := distknn.UniformVectorShards(seed, perNode, dim)
	srv, err := distknn.ServeVectorLocal(k, seed, shards, distknn.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialTypedClusterOptions(distknn.VectorPoints(), srv.Addr(), distknn.ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	q := make(distknn.Vector, dim)
	for j := range q {
		q[j] = 0.25 * float64(j+1)
	}
	want, _, err := rc.KNN(q, l)
	if err != nil {
		t.Fatal(err)
	}

	if err := srv.EvictNode(0); err != nil {
		t.Fatal(err)
	}
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- distknn.ServeVectorNode(srv.Addr(), "127.0.0.1:0", shards, distknn.NodeOptions{})
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		items, _, err := rc.KNN(q, l)
		if err == nil {
			for j := range items {
				if items[j] != want[j] {
					t.Fatalf("item %d after vector re-join: %+v, want %+v", j, items[j], want[j])
				}
			}
			break
		}
		if !errors.Is(err, distknn.ErrClusterDegraded) {
			t.Fatalf("vector churn: non-degraded failure: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("vector cluster did not recover")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
	if err := <-nodeDone; err != nil {
		t.Fatalf("re-joined vector node exited with %v", err)
	}
}

// TestRemoteClientRidesOutChurnTransparently exercises the client-side
// retry: with a generous RetryWait, a single KNN call issued into the
// degraded window succeeds once the replacement node is seated — the
// caller never sees the outage.
func TestRemoteClientRidesOutChurnTransparently(t *testing.T) {
	const (
		k       = 2
		seed    = 55
		perNode = 200
		l       = 5
	)
	shards := remoteShards(seed, perNode)
	srv, err := distknn.ServeLocal(k, seed, shards, distknn.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialTypedClusterOptions(distknn.ScalarPoints(), srv.Addr(), distknn.ClientOptions{
		QueryTimeout: 30 * time.Second,
		RetryWait:    10 * time.Second, // ample for a 200-point re-join
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	q := churnQuery(seed, 0)
	want, _, err := rc.KNN(q, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EvictNode(1); err != nil {
		t.Fatal(err)
	}
	nodeDone := make(chan error, 1)
	go func() {
		nodeDone <- distknn.ServeScalarNode(srv.Addr(), "127.0.0.1:0", shards, distknn.NodeOptions{})
	}()
	// One call, issued while the cluster is degraded: the transparent
	// retry waits out the re-join.
	items, _, err := rc.KNN(q, l)
	if err != nil {
		t.Fatalf("KNN across the churn window: %v", err)
	}
	for j := range items {
		if items[j] != want[j] {
			t.Fatalf("item %d across churn: %+v, want %+v", j, items[j], want[j])
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
	if err := <-nodeDone; err != nil {
		t.Fatalf("re-joined node exited with %v", err)
	}
}
