package distknn_test

import (
	"fmt"

	"distknn"
)

// The ten-point toy dataset makes the distributed machinery fully
// deterministic and the outputs human-checkable.

func ExampleCluster_KNN() {
	values := []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cluster, err := distknn.NewScalarCluster(values, nil, distknn.Options{Machines: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	neighbors, _, err := cluster.KNN(distknn.Scalar(27), 3)
	if err != nil {
		panic(err)
	}
	for _, nb := range neighbors {
		fmt.Println("distance", nb.Key.Dist)
	}
	// Output:
	// distance 3
	// distance 7
	// distance 13
}

func ExampleCluster_Classify() {
	// Values below 50 carry label 1, the rest label 2.
	values := []uint64{10, 20, 30, 40, 60, 70, 80, 90}
	labels := []float64{1, 1, 1, 1, 2, 2, 2, 2}
	cluster, err := distknn.NewScalarCluster(values, labels, distknn.Options{Machines: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	label, _, err := cluster.Classify(distknn.Scalar(25), 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("label", label)
	// Output:
	// label 1
}

func ExampleRemoteCluster_KNN() {
	// A real serving cluster over loopback TCP: a frontend plus two
	// resident nodes, each holding half of the ten-point dataset. The
	// remote client then asks the same query as ExampleCluster_KNN and
	// gets the same exact answer — over sockets, as one BSP epoch on the
	// resident mesh.
	shards := func(id, k int) (distknn.Shard[distknn.Scalar], error) {
		all := []distknn.Scalar{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		per := len(all) / k
		return distknn.Shard[distknn.Scalar]{
			Points:  all[id*per : (id+1)*per],
			FirstID: uint64(id*per) + 1,
		}, nil
	}
	srv, err := distknn.ServeLocal(2, 1, shards, distknn.NodeOptions{})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	rc, err := distknn.DialScalarCluster(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer rc.Close()
	neighbors, _, err := rc.KNN(distknn.Scalar(27), 3)
	if err != nil {
		panic(err)
	}
	for _, nb := range neighbors {
		fmt.Println("distance", nb.Key.Dist)
	}
	// Output:
	// distance 3
	// distance 7
	// distance 13
}

func ExampleSelectRank() {
	values := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	cluster, err := distknn.NewScalarCluster(values, nil, distknn.Options{Machines: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	median, _, err := distknn.Median(cluster)
	if err != nil {
		panic(err)
	}
	third, _, err := distknn.SelectRank(cluster, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("median", median)
	fmt.Println("3rd smallest", third)
	// Output:
	// median 5
	// 3rd smallest 3
}
