#!/usr/bin/env python3
"""Wire-level interop client for a distknn scalar serving cluster.

Speaks docs/PROTOCOL.md with nothing but the Python standard library:
frames a single-point KNN query and a batched KNN query at a frontend,
decodes the replies, and cross-checks them — the batch's per-query answers
must be bit-identical to the solo answers, items must arrive in ascending
(distance, id) order, and every reply must carry exactly l items. It then
exercises the multiplexed path: every point again as a tagged query, all
of them written before any reply is read, with the replies matched back
by tag (the spec allows any completion order) and required bit-identical
to the untagged answers. It is CI's proof that the spec is complete
enough for a non-Go client.

Usage: interop_client.py HOST:PORT [l] [point...]
"""
import socket
import struct
import sys

KIND_QUERY, KIND_REPLY = 8, 9
KIND_QUERY_TAGGED, KIND_REPLY_TAGGED = 12, 13
OP_KNN, TAG_SCALAR = 1, 1


def varint(n):
    out = bytearray()
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


class Reader:
    def __init__(self, buf):
        self.buf, self.off = buf, 0

    def take(self, n):
        if self.off + n > len(self.buf):
            raise ValueError("reply truncated")
        b = self.buf[self.off:self.off + n]
        self.off += n
        return b

    def u8(self):
        return self.take(1)[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def varint(self):
        shift = n = 0
        while True:
            b = self.u8()
            n |= (b & 0x7F) << shift
            if not b & 0x80:
                return n
            shift += 7

    def string(self):
        return self.take(self.varint()).decode()


def send_frame(sock, payload):
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def read_frame(sock):
    raw = b""
    while len(raw) < 4:
        chunk = sock.recv(4 - len(raw))
        if not chunk:
            raise ValueError("connection closed mid-frame")
        raw += chunk
    (size,) = struct.unpack("<I", raw)
    payload = b""
    while len(payload) < size:
        chunk = sock.recv(size - len(payload))
        if not chunk:
            raise ValueError("connection closed mid-frame")
        payload += chunk
    return payload


def query_body(points, l):
    body = bytes([OP_KNN]) + varint(l) + bytes([TAG_SCALAR]) + varint(len(points))
    for p in points:
        enc = struct.pack("<Q", p)
        body += varint(len(enc)) + enc
    return body


def decode_reply(r):
    status = r.u8()
    if status:
        raise ValueError("remote error (status %d): %s" % (status, r.string()))
    rounds, messages, nbytes, leader = r.varint(), r.varint(), r.varint(), r.varint()
    results = []
    for _ in range(r.varint()):
        boundary = (r.u64(), r.u64())
        r.varint()  # survivors
        r.u8()      # fellBack
        r.varint()  # iterations
        r.f64()     # value (classify/regress only)
        items = [(r.u64(), r.u64(), r.f64()) for _ in range(r.varint())]
        results.append((boundary, items))
    if r.off != len(r.buf):
        raise ValueError("%d trailing reply bytes" % (len(r.buf) - r.off))
    # No floor on messages/bytes: a k=1 cluster legitimately exchanges no
    # mesh traffic at all.
    if rounds < 1 or leader < 0:
        raise ValueError("implausible epoch cost: rounds=%d leader=%d" % (rounds, leader))
    return results


def knn_query(sock, points, l):
    send_frame(sock, bytes([KIND_QUERY]) + query_body(points, l))
    r = Reader(read_frame(sock))
    if r.u8() != KIND_REPLY:
        raise ValueError("expected a reply frame")
    return decode_reply(r)


def knn_tagged(sock, tagged_points, l):
    """Send every (tag, point) as a tagged query before reading any reply,
    then collect the tagged replies in whatever order they arrive."""
    for tag, p in tagged_points:
        send_frame(sock, bytes([KIND_QUERY_TAGGED]) + varint(tag) + query_body([p], l))
    pending = {tag for tag, _ in tagged_points}
    by_tag = {}
    for _ in tagged_points:
        r = Reader(read_frame(sock))
        if r.u8() != KIND_REPLY_TAGGED:
            raise ValueError("expected a tagged reply frame")
        tag = r.varint()
        if tag not in pending:
            raise ValueError("reply for unknown or duplicate tag %d" % tag)
        pending.discard(tag)
        by_tag[tag] = decode_reply(r)
    if pending:
        raise ValueError("never answered tags %r" % sorted(pending))
    return by_tag


def check(results, points, l):
    if len(results) != len(points):
        raise ValueError("%d results for %d queries" % (len(results), len(points)))
    for (boundary, items), p in zip(results, points):
        if len(items) != l:
            raise ValueError("point %d: %d items, want l=%d" % (p, len(items), l))
        keys = [(d, i) for d, i, _ in items]
        if keys != sorted(keys):
            raise ValueError("point %d: items not in ascending (distance, id) order" % p)
        if keys[-1] != boundary:
            raise ValueError("point %d: boundary %r != last item %r" % (p, boundary, keys[-1]))


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    host, port = sys.argv[1].rsplit(":", 1)
    l = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    points = [int(a) for a in sys.argv[3:]] or [12345, 7, 4096000, 2**31, 999999999]
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        solo = [knn_query(sock, [p], l)[0] for p in points]
        check(solo, points, l)
        batch = knn_query(sock, points, l)
        check(batch, points, l)
        if batch != solo:
            raise ValueError("batched answers differ from solo answers")
        # Multiplexed path: every point as a tagged query, all outstanding
        # at once on the same connection the untagged queries used.
        tagged = knn_tagged(sock, [(300 + i, p) for i, p in enumerate(points)], l)
        for i, p in enumerate(points):
            results = tagged[300 + i]
            check(results, [p], l)
            if results[0] != solo[i]:
                raise ValueError("tagged answer for point %d differs from the untagged one" % p)
    print("interop: %d solo + 1 batched + %d tagged-outstanding queries verified (l=%d), all bit-identical"
          % (len(points), len(points), l))


if __name__ == "__main__":
    main()
