#!/usr/bin/env bash
# Admin-plane smoke test: start a serving cluster with `knnnode -serve
# -admin`, verify /healthz flips from degraded (503) to healthy (200) as
# the nodes seat, run a query workload, and assert the /metrics epoch
# counters advanced consistently with it. The final /metrics snapshot is
# written to admin_metrics.json for CI to upload as a workflow artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/knnnode" ./cmd/knnnode
go build -o "$bin/knnquery" ./cmd/knnquery

addr=127.0.0.1:7951
admin=127.0.0.1:7952

"$bin/knnnode" -serve -coordinator -addr "$addr" -k 2 -seed 1 -admin "$admin" &
for _ in $(seq 1 100); do
  (exec 3<>"/dev/tcp/127.0.0.1/7952") 2>/dev/null && break
  sleep 0.1
done

# Before any node joins, the admin plane is already up and must report
# the cluster unhealthy — observability outlives the data plane.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$admin/healthz")
if [ "$code" != "503" ]; then
  echo "admin-smoke: /healthz before rendezvous returned $code, want 503" >&2
  exit 1
fi
echo "admin-smoke: /healthz degraded (503) before nodes joined"

"$bin/knnnode" -serve -join "$addr" -points 2000 &
"$bin/knnnode" -serve -join "$addr" -points 2000 &

query() { "$bin/knnquery" -connect "$addr" -l 5 -timeout 2s; }
for _ in $(seq 1 50); do query >/dev/null 2>&1 && break; sleep 0.2; done
query >/dev/null

code=$(curl -s -o /dev/null -w '%{http_code}' "http://$admin/healthz")
if [ "$code" != "200" ]; then
  echo "admin-smoke: /healthz with all seats present returned $code, want 200" >&2
  exit 1
fi
echo "admin-smoke: /healthz healthy (200) with all seats present"

epochs_admitted() {
  curl -s "http://$admin/metrics" | python3 -c '
import json, sys
print(json.load(sys.stdin)["counters"]["frontend_epochs_admitted_total"])'
}

before=$(epochs_admitted)
for _ in $(seq 1 5); do query >/dev/null; done
after=$(epochs_admitted)
if [ "$after" -lt $((before + 5)) ]; then
  echo "admin-smoke: epochs admitted went $before -> $after after 5 queries; want +5 or more" >&2
  exit 1
fi
echo "admin-smoke: /metrics epoch counters advanced ($before -> $after) with the workload"

curl -s "http://$admin/metrics" | python3 -c '
import json, sys
s = json.load(sys.stdin)
assert s["counters"]["frontend_queries_total"] >= 6, s["counters"]
assert s["histograms"]["frontend_query_latency_ns"]["count"] >= 6, s["histograms"]
assert s["gauges"]["frontend_epochs_inflight"] == 0, s["gauges"]
'
echo "admin-smoke: query counter, latency histogram and drained in-flight gauge consistent"

spans=$(curl -s "http://$admin/trace/recent" | python3 -c '
import json, sys
spans = json.load(sys.stdin)
assert all(sp["done"] for sp in spans), spans
print(len(spans))')
if [ "$spans" -lt 6 ]; then
  echo "admin-smoke: /trace/recent holds $spans finished spans; want >= 6" >&2
  exit 1
fi
echo "admin-smoke: /trace/recent holds $spans finished epoch spans"

curl -s "http://$admin/metrics" > admin_metrics.json
echo "admin-smoke: /metrics snapshot written to admin_metrics.json"
