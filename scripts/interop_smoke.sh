#!/usr/bin/env bash
# Wire-level interop smoke test: serve a real scalar cluster with knnnode
# processes and drive it with the stdlib-only Python client
# (scripts/interop_client.py), which speaks docs/PROTOCOL.md from scratch —
# framing, varints, query and batched-query bodies, reply decoding. CI runs
# this to guard the spec for non-Go clients: if the wire format drifts from
# the document, the Python client (written against the document) breaks.
# Server-side batching is enabled so coalesced epochs cross the wire too.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/knnnode" ./cmd/knnnode

addr=127.0.0.1:7951

"$bin/knnnode" -serve -coordinator -addr "$addr" -k 2 -seed 1 -server-batch &
for _ in $(seq 1 100); do
  (exec 3<>"/dev/tcp/127.0.0.1/7951") 2>/dev/null && break
  sleep 0.1
done
"$bin/knnnode" -serve -join "$addr" -points 2000 &
"$bin/knnnode" -serve -join "$addr" -points 2000 &

for i in $(seq 1 50); do
  if python3 scripts/interop_client.py "$addr" 7 2>/dev/null; then
    echo "interop-smoke: PASS"
    exit 0
  fi
  sleep 0.2
done
# Surface the real failure once the retries are exhausted.
python3 scripts/interop_client.py "$addr" 7
echo "interop-smoke: FAIL" >&2
exit 1
