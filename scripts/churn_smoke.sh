#!/usr/bin/env bash
# Process-level churn smoke test: start a serving cluster as real
# processes, SIGKILL one resident node, verify the cluster answers with a
# degraded error (instead of bricking or hanging), start a replacement
# process with no special flags, and verify queries succeed again once it
# re-joins. Then SIGKILL the frontend and restart it: the surviving nodes
# run with -rejoin, so they re-register on their own and the cluster
# recovers without touching the node processes. CI runs this next to the
# in-process churn tests; it is the end-to-end proof that
# `knnnode`/`knnquery` survive node churn.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/knnnode" ./cmd/knnnode
go build -o "$bin/knnquery" ./cmd/knnquery

addr=127.0.0.1:7941

start_frontend() {
  "$bin/knnnode" -serve -coordinator -addr "$addr" -k 2 -seed 1 &
  frontend=$!
  # Wait for the frontend to listen before the nodes dial it.
  for _ in $(seq 1 100); do
    (exec 3<>"/dev/tcp/127.0.0.1/7941") 2>/dev/null && break
    sleep 0.1
  done
}

start_frontend
"$bin/knnnode" -serve -join "$addr" -points 2000 -rejoin &
"$bin/knnnode" -serve -join "$addr" -points 2000 &
victim=$!

query() { "$bin/knnquery" -connect "$addr" -l 5 -timeout 2s; }
wait_serving() {
  for _ in $(seq 1 50); do query >/dev/null 2>&1 && return 0; sleep 0.2; done
  return 1
}

wait_serving
query >/dev/null
echo "churn-smoke: cluster serving"

kill -9 "$victim"
echo "churn-smoke: SIGKILLed node pid $victim"
sleep 0.5
if query >/dev/null 2>&1; then
  echo "churn-smoke: expected a degraded error while a node is down" >&2
  exit 1
fi
echo "churn-smoke: degraded window answers with an error (not a hang)"

# A freshly started replacement needs no special flags to take the absent
# seat (-rejoin here only arms it for the frontend restart below).
"$bin/knnnode" -serve -join "$addr" -points 2000 -rejoin &
wait_serving
query >/dev/null
echo "churn-smoke: replacement re-joined; cluster recovered"

kill -9 "$frontend"
echo "churn-smoke: SIGKILLed frontend pid $frontend"
sleep 0.5
start_frontend
# Both surviving nodes run -rejoin: they must re-register with the new
# frontend on their own — no node process is touched.
wait_serving
query >/dev/null
echo "churn-smoke: frontend restarted; -rejoin nodes re-registered; cluster recovered"
