#!/usr/bin/env bash
# lint.sh — the repository's static-analysis gate, identical locally and in
# CI. Always runs knnlint (the in-tree analyzer suite: detsource,
# kindswitch, poolown, lockio, fpsum) through `go vet -vettool`, which is a
# hard gate; staticcheck and govulncheck run when installed (CI installs
# pinned versions — see .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== knnlint (go vet -vettool) =="
mkdir -p bin
go build -o bin/knnlint ./cmd/knnlint
go vet -vettool=bin/knnlint ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck =="
  staticcheck ./...
else
  echo "-- staticcheck not installed; skipping (CI runs it pinned)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck =="
  govulncheck ./...
else
  echo "-- govulncheck not installed; skipping (CI runs it pinned)"
fi

echo "lint: OK"
