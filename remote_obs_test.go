package distknn_test

import (
	"sync"
	"testing"

	"distknn"
	"distknn/internal/testutil"
)

// TestRemoteObsMetricsMatchQueryStats runs a pruned serving cluster with a
// metrics registry and a tracer attached and demands that the frontend's
// telemetry agrees with what the clients were told: queries counted once,
// the latency histogram filled once per query, prune contacts equal to the
// sum of the clients' QueryStats.Contacts, and one finished trace span per
// epoch. Observation must describe the workload exactly — an over- or
// under-count means instrumentation sits on the wrong code path.
func TestRemoteObsMetricsMatchQueryStats(t *testing.T) {
	const (
		k       = 3
		perNode = 120
		seed    = 909
		queries = 30
		l       = 6
	)
	reg := distknn.NewMetrics()
	tr := distknn.NewTracer(0)
	shards := distknn.AnchorShards(seed, perNode)
	_, rc := testutil.StartCluster(t, distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{
			Pruner:  distknn.ScalarPoints().Pruner(),
			Metrics: reg,
			Trace:   tr,
		})

	var wantContacts int64
	for i := 0; i < queries; i++ {
		q := distknn.Scalar(uint64(i) * 1_000_003)
		_, stats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if stats.Contacts == 0 {
			t.Fatalf("query %d: pruned cluster reported no contacts", i)
		}
		wantContacts += stats.Contacts
	}

	s := reg.Snapshot()
	if got := s.Counters["frontend_queries_total"]; got != queries {
		t.Errorf("frontend_queries_total = %d, want %d", got, queries)
	}
	if got := s.Counters["frontend_prune_contacts_total"]; got != wantContacts {
		t.Errorf("frontend_prune_contacts_total = %d, want %d (sum of client QueryStats.Contacts)", got, wantContacts)
	}
	if got := s.Counters["frontend_epochs_admitted_total"]; got == 0 {
		t.Error("frontend_epochs_admitted_total = 0, want > 0")
	}
	if got := s.Histograms["frontend_query_latency_ns"].Count; got != queries {
		t.Errorf("frontend_query_latency_ns count = %d, want %d", got, queries)
	}
	if got := s.Histograms["frontend_window_occupancy"].Count; got == 0 {
		t.Error("frontend_window_occupancy count = 0, want > 0")
	}
	if got := s.Counters["frontend_replies_failed_total"]; got != 0 {
		t.Errorf("frontend_replies_failed_total = %d, want 0", got)
	}

	spans := tr.Recent()
	if len(spans) == 0 {
		t.Fatal("tracer recorded no spans")
	}
	for _, sp := range spans {
		if !sp.Done {
			t.Fatalf("span for epoch %d not finished: %+v", sp.Epoch, sp)
		}
		if sp.Err != "" {
			t.Fatalf("span for epoch %d carries error %q", sp.Epoch, sp.Err)
		}
	}
}

// TestRemoteObsFullScatterMetrics pins the full-scatter counters: mesh
// rounds and bytes accumulate (no pruning, so no contacts) and the
// scheduler window gauge settles back to zero when the cluster is idle.
func TestRemoteObsFullScatterMetrics(t *testing.T) {
	const (
		k       = 2
		perNode = 80
		seed    = 31
		queries = 12
		l       = 4
	)
	reg := distknn.NewMetrics()
	_, rc := testutil.StartCluster(t, distknn.ScalarPoints(), k, seed,
		distknn.PaperShards(seed, perNode),
		distknn.NodeOptions{}, distknn.FrontendOptions{Metrics: reg})

	var wantBytes int64
	for i := 0; i < queries; i++ {
		_, stats, err := rc.KNN(distknn.Scalar(uint64(i)*7919), l)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		wantBytes += stats.Bytes
	}

	s := reg.Snapshot()
	if got := s.Counters["frontend_queries_total"]; got != queries {
		t.Errorf("frontend_queries_total = %d, want %d", got, queries)
	}
	if got := s.Counters["frontend_mesh_bytes_total"]; got != wantBytes {
		t.Errorf("frontend_mesh_bytes_total = %d, want %d (sum of client QueryStats.Bytes)", got, wantBytes)
	}
	if got := s.Counters["frontend_prune_contacts_total"]; got != 0 {
		t.Errorf("frontend_prune_contacts_total = %d, want 0 on full scatter", got)
	}
	if got := s.Gauges["frontend_epochs_inflight"]; got != 0 {
		t.Errorf("frontend_epochs_inflight = %d after the workload drained, want 0", got)
	}
}

// TestQueryStatsConcurrentPrunedBatches issues pruned KNNBatch calls from
// many goroutines at once and verifies that every call gets its own
// QueryStats — never a shared or torn one — by replaying the identical
// batch serially and demanding equal stats. Run under -race in CI, this is
// also the data-race gate for the stats aggregation path.
func TestQueryStatsConcurrentPrunedBatches(t *testing.T) {
	const (
		k       = 3
		perNode = 100
		seed    = 4242
		callers = 8
		batch   = 5
		l       = 5
	)
	shards := distknn.AnchorShards(seed, perNode)
	_, rc := testutil.StartCluster(t, distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{
			Pruner: distknn.ScalarPoints().Pruner(),
		})

	queriesFor := func(caller int) []distknn.Scalar {
		qs := make([]distknn.Scalar, batch)
		for j := range qs {
			qs[j] = distknn.Scalar(uint64(caller)*1_000_000 + uint64(j)*31_337)
		}
		return qs
	}

	stats := make([]*distknn.QueryStats, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := rc.KNNBatch(queriesFor(c), l)
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			stats[c] = st
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Serial replay: a deterministic cluster answers the same batch with
	// the same cost, so any divergence means the concurrent stats were
	// shared or torn across callers.
	for c := 0; c < callers; c++ {
		_, want, err := rc.KNNBatch(queriesFor(c), l)
		if err != nil {
			t.Fatalf("serial replay %d: %v", c, err)
		}
		got := stats[c]
		if got.Contacts == 0 {
			t.Fatalf("caller %d: pruned batch reported no contacts", c)
		}
		if got.Contacts != want.Contacts || got.Rounds != want.Rounds ||
			got.Messages != want.Messages || got.Bytes != want.Bytes {
			t.Errorf("caller %d stats diverge: concurrent %+v, serial %+v", c, got, want)
		}
	}
}
