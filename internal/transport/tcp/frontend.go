package tcp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distknn/internal/points"
	"distknn/internal/wire"
)

// Frontend is the client-facing side of a serving cluster. It performs
// rendezvous exactly like a Coordinator, but then stays resident: it keeps
// the control connection to every node, dispatches one BSP epoch per client
// query, merges the nodes' winner shares, and answers the client. Protocol
// traffic between nodes still flows over the mesh only; the frontend
// carries queries in and merged results out.
//
// Query epochs are serialized: one query is in flight at a time, and
// concurrent clients are queued in arrival order. Epoch ordinals (and with
// them the per-epoch seeds) therefore follow the global query arrival
// order, mirroring the in-process Cluster's atomic query counter.
//
// Node churn degrades the cluster instead of breaking it. A reader pump per
// control connection notices a dead node the moment its connection drops —
// even between queries — and marks its seat absent; a node reporting a
// fatal (mesh-level) epoch failure gets the implicated peer evicted the
// same way. While any seat is absent, queries fail fast with a retryable
// "cluster degraded" error (wire.Reply.Degraded); the failed in-flight
// query reports the same way. The seat heals when a node re-registers: the
// frontend grants it the absent slot, the node rebuilds its shard and
// splices replacement mesh links into the resident peers, and the session
// resumes at the current epoch ordinal — determinism per (seed, query
// stream) is preserved because per-epoch seeds derive from the ordinal.
type Frontend struct {
	ln   net.Listener
	k    int
	seed uint64

	ready    chan struct{} // closed once serving (or failed); see readyErr
	readyErr error         // written before ready closes on failure
	done     chan struct{} // closed by Close; releases pump goroutines

	// rejoinMu serializes re-join handshakes: a later grant must see an
	// earlier sealed seat in its Present list, or two concurrent
	// re-joiners would never learn to dial each other and leave a hole in
	// the mesh. It is never held together with work on mu's critical
	// paths: queries, Close and evictions stay responsive during a slow
	// handshake.
	rejoinMu sync.Mutex

	// mu serializes query epochs, seat transitions (eviction, re-join) and
	// the address book. Control pumps deliver their frames before taking
	// it, so an in-flight epoch collection is never deadlocked by a pump.
	mu        sync.Mutex
	slots     []*feSlot // one per machine id; nil until the session is ready
	addrs     []string  // mesh address book, updated on re-join
	leader    int
	total     int64   // global point count (sum of shard sizes)
	tag       uint8   // point encoding the nodes serve
	shardLens []int64 // per-node shard sizes, pinned at setup to vet re-joins
	epoch     uint64

	clientsMu sync.Mutex
	clients   map[net.Conn]struct{} // live client connections, for Close

	closed atomic.Bool
}

// feSlot is one machine's seat at the frontend: its control connection, the
// channel its pump delivers control frames on, and whether the node is
// present. gen distinguishes connection incarnations across re-joins, so a
// stale pump (or a stale in-flight collection) can never evict a freshly
// re-joined node.
type feSlot struct {
	id       int
	gen      uint64
	conn     net.Conn
	ctrl     chan ctrlFrame
	present  bool
	lastLoss error // why the seat is absent, for degraded replies
}

// ctrlFrame is one pump delivery: a control frame, or the read error that
// ended the connection.
type ctrlFrame struct {
	payload []byte
	err     error
}

// NewFrontend starts the serving listener on addr for a k-node cluster with
// the given session seed. Call Serve to run the session.
func NewFrontend(addr string, k int, seed uint64) (*Frontend, error) {
	if k < 1 {
		return nil, fmt.Errorf("tcp: frontend needs k >= 1, got %d", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: frontend listen: %w", err)
	}
	return &Frontend{
		ln: ln, k: k, seed: seed,
		ready:   make(chan struct{}),
		done:    make(chan struct{}),
		leader:  -1,
		clients: make(map[net.Conn]struct{}),
	}, nil
}

// trackClient registers a live client connection; it refuses (and the
// caller must drop the connection) once the frontend is closed.
func (f *Frontend) trackClient(conn net.Conn) bool {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	if f.closed.Load() {
		return false
	}
	f.clients[conn] = struct{}{}
	return true
}

func (f *Frontend) untrackClient(conn net.Conn) {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	delete(f.clients, conn)
}

// Addr returns the frontend's dialable address (nodes and clients share it).
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// Serve runs the session: it accepts the k node registrations, configures
// the mesh, waits for every node's ready report, and then answers client
// queries until Close. A connection's first frame decides its role —
// KindRegister makes it a node control connection, KindQuery a client, and
// KindRejoin (or a late KindRegister once the session is running) a node
// re-joining after churn.
func (f *Frontend) Serve() error {
	type reg struct {
		conn net.Conn
		addr string
	}
	regCh := make(chan reg)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := f.ln.Accept()
			if err != nil {
				return
			}
			go func() {
				payload, err := wire.ReadFrame(conn)
				if err != nil {
					conn.Close()
					return
				}
				r := wire.NewReader(payload)
				switch kind := r.U8(); kind {
				case wire.KindRegister:
					addr := r.String()
					if r.Err() != nil {
						conn.Close()
						return
					}
					select {
					case regCh <- reg{conn, addr}:
					case <-f.ready:
						// Late registration: the cluster is already
						// running, so offer the newcomer an absent seat.
						f.handleRejoin(conn, -1, addr)
					}
				case wire.KindRejoin:
					id, addr, err := wire.DecodeRejoin(r)
					if err != nil {
						conn.Close()
						return
					}
					<-f.ready
					f.handleRejoin(conn, id, addr)
				case wire.KindQuery:
					f.serveClient(conn, payload)
				default:
					conn.Close()
				}
			}()
		}
	}()

	// Rendezvous: collect k registrations, assign ids in arrival order.
	conns := make([]net.Conn, 0, f.k)
	addrs := make([]string, 0, f.k)

	fail := func(err error) error {
		// Release every registered node — a resident node blocked on its
		// control connection (ready wait or dispatch loop) exits cleanly
		// on EOF — and the listener, so a failed session neither strands
		// the cluster nor keeps the port bound after Serve returns.
		for _, conn := range conns {
			conn.Close()
		}
		f.ln.Close()
		f.readyErr = err
		close(f.ready)
		if f.closed.Load() {
			return nil
		}
		return err
	}
	for len(conns) < f.k {
		select {
		case r := <-regCh:
			conns = append(conns, r.conn)
			addrs = append(addrs, r.addr)
		case <-acceptDone:
			return fail(fmt.Errorf("tcp: frontend closed with %d of %d nodes registered", len(conns), f.k))
		}
	}
	for id, conn := range conns {
		if err := writeAssign(conn, wire.ModeServe, id, f.k, f.seed, addrs); err != nil {
			return fail(err)
		}
	}

	// Wait for every node's post-setup report and verify agreement. All k
	// frames are drained before failing so that a setup error surfaces
	// the originating node's message (origin=1) instead of whichever
	// peer-abort echo happens to arrive on the lowest id.
	leader, tag := -1, uint8(0)
	var total int64
	shardLens := make([]int64, f.k)
	haveFirst := false
	var setupErr error
	setupOrigin := false
	record := func(origin bool, err error) {
		if setupErr == nil || (origin && !setupOrigin) {
			setupErr, setupOrigin = err, origin
		}
	}
	for id, conn := range conns {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			record(false, fmt.Errorf("tcp: frontend read ready from node %d: %w", id, err))
			continue
		}
		r := wire.NewReader(payload)
		switch kind := r.U8(); kind {
		case wire.KindError:
			ne, err := wire.DecodeNodeError(r)
			if err != nil {
				record(false, fmt.Errorf("tcp: bad setup error from node %d", id))
				continue
			}
			record(ne.Origin, fmt.Errorf("tcp: node %d failed setup: %s", id, ne.Msg))
		case wire.KindReady:
			nid := int(r.Varint())
			nodeLeader := int(r.Varint())
			shardLen := int64(r.Varint())
			nodeTag := r.U8()
			if err := r.Err(); err != nil {
				record(false, fmt.Errorf("tcp: bad ready from node %d: %w", id, err))
				continue
			}
			if nid != id {
				record(false, fmt.Errorf("tcp: node %d reported ready as %d", id, nid))
				continue
			}
			if !haveFirst {
				leader, tag, haveFirst = nodeLeader, nodeTag, true
			} else if nodeLeader != leader {
				record(true, fmt.Errorf("tcp: node %d elected %d, an earlier node elected %d", id, nodeLeader, leader))
			} else if nodeTag != tag {
				record(true, fmt.Errorf("tcp: node %d serves point tag %d, an earlier node serves %d", id, nodeTag, tag))
			}
			shardLens[id] = shardLen
			total += shardLen
		default:
			record(false, fmt.Errorf("tcp: expected ready from node %d, got kind %d", id, kind))
		}
	}
	if setupErr != nil {
		return fail(setupErr)
	}

	f.mu.Lock()
	f.slots = make([]*feSlot, f.k)
	for id, conn := range conns {
		s := &feSlot{id: id, conn: conn, ctrl: make(chan ctrlFrame, 4), present: true}
		f.slots[id] = s
		go f.pump(s, s.gen, conn, s.ctrl)
	}
	f.addrs = append([]string(nil), addrs...)
	f.leader = leader
	f.total = total
	f.tag = tag
	f.shardLens = shardLens
	f.mu.Unlock()
	close(f.ready)

	<-acceptDone
	return nil
}

// pump reads one node's control frames for one connection incarnation and
// delivers them for epoch collection. A read failure is the immediate death
// signal: the error frame unblocks any in-flight collection, and the seat
// is marked absent the moment the epoch lock frees up — so a node dying
// between queries is noticed before the next dispatch, not by it.
func (f *Frontend) pump(s *feSlot, gen uint64, conn net.Conn, ctrl chan ctrlFrame) {
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			// Prefer delivering the death notice even when f.done is also
			// ready: an in-flight collection blocks on this channel while
			// holding the epoch lock, and Close waits for that lock — so
			// dropping the error here could deadlock both.
			select {
			case ctrl <- ctrlFrame{err: err}:
			default:
				select {
				case ctrl <- ctrlFrame{err: err}:
				case <-f.done:
					return
				}
			}
			f.markAbsent(s, gen, fmt.Errorf("lost node %d: %v", s.id, err))
			return
		}
		// Same bias for results: dropping one would strand the collection
		// the same way.
		select {
		case ctrl <- ctrlFrame{payload: payload}:
		default:
			select {
			case ctrl <- ctrlFrame{payload: payload}:
			case <-f.done:
				return
			}
		}
	}
}

func (f *Frontend) markAbsent(s *feSlot, gen uint64, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.markAbsentLocked(s, gen, cause)
}

// markAbsentLocked retires one connection incarnation of a seat. A stale
// gen (the seat was already re-granted to a re-joined node) is a no-op.
func (f *Frontend) markAbsentLocked(s *feSlot, gen uint64, cause error) {
	if s.gen != gen || !s.present {
		return
	}
	s.present = false
	s.lastLoss = cause
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// EvictNode forcibly retires node id's seat and closes its control
// connection: the node's ServeNode returns ErrSessionLost, and the seat
// becomes re-joinable. Queries fail with a degraded error until a node
// takes the seat back. It exists for operators (kick a wedged or
// partitioned node so it re-joins with fresh links) and for churn tests; if
// a query epoch is in flight it completes first.
func (f *Frontend) EvictNode(id int) error {
	<-f.ready
	if f.readyErr != nil {
		return f.readyErr
	}
	if id < 0 || id >= f.k {
		return fmt.Errorf("tcp: evict: no node %d in a %d-node cluster", id, f.k)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.slots[id]
	if !s.present {
		return fmt.Errorf("tcp: evict: node %d is not present", id)
	}
	f.markAbsentLocked(s, s.gen, fmt.Errorf("node %d evicted", id))
	return nil
}

// handleRejoin runs the re-join handshake for one connection: grant an
// absent seat (the requested one, or the lowest), send the assignment, and
// wait for the node's ready report. Handshakes are serialized with each
// other (rejoinMu), but the epoch lock is held only to grant and later to
// seal the seat — never across the handshake's network I/O, so a slow (or
// hostile) re-joiner cannot stall degraded replies, Close, or evictions.
// No query epoch can race the mesh-link splicing: the granted seat stays
// absent until the seal, and an absent seat gates all dispatches.
// wantID < 0 lets the frontend pick.
func (f *Frontend) handleRejoin(conn net.Conn, wantID int, addr string) {
	deny := func(msg string) {
		_ = wire.WriteFrame(conn, wire.EncodeNodeError(wire.NodeError{LostPeer: -1, Msg: msg}))
		conn.Close()
	}
	if f.readyErr != nil {
		deny(fmt.Sprintf("session failed: %v", f.readyErr))
		return
	}
	f.rejoinMu.Lock()
	defer f.rejoinMu.Unlock()
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		conn.Close()
		return
	}
	var slot *feSlot
	if wantID >= 0 {
		if wantID >= f.k {
			f.mu.Unlock()
			deny(fmt.Sprintf("no machine %d in a %d-node cluster", wantID, f.k))
			return
		}
		if s := f.slots[wantID]; !s.present {
			slot = s
		}
	} else {
		for _, s := range f.slots {
			if !s.present {
				slot = s
				break
			}
		}
	}
	if slot == nil {
		f.mu.Unlock()
		deny("no absent seat to re-join (cluster is full)")
		return
	}
	f.addrs[slot.id] = addr
	// The epoch snapshot stays valid for the whole handshake: the granted
	// seat is absent until the seal, and queries cannot consume epochs
	// while any seat is absent. Leader, shard sizes and the point tag are
	// immutable after setup.
	ra := wire.RejoinAssign{
		ID: slot.id, K: f.k, Seed: f.seed,
		Leader: f.leader, Epoch: f.epoch,
		Addrs: append([]string(nil), f.addrs...),
	}
	for _, s := range f.slots {
		if s.present {
			ra.Present = append(ra.Present, s.id)
		}
	}
	f.mu.Unlock()

	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.WriteFrame(conn, wire.EncodeRejoinAssign(ra)); err != nil {
		conn.Close()
		return
	}
	// The node now rebuilds its shard and dials the present peers; its
	// ready report seals the seat.
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	r := wire.NewReader(payload)
	if kind := r.U8(); kind != wire.KindReady {
		deny(fmt.Sprintf("expected ready, got kind %d", kind))
		return
	}
	nid := int(r.Varint())
	nodeLeader := int(r.Varint())
	shardLen := int64(r.Varint())
	nodeTag := r.U8()
	switch {
	case r.Err() != nil:
		deny("bad ready frame")
		return
	case nid != slot.id:
		deny(fmt.Sprintf("ready for seat %d, granted %d", nid, slot.id))
		return
	case nodeLeader != f.leader:
		deny(fmt.Sprintf("ready reports leader %d, session elected %d", nodeLeader, f.leader))
		return
	case shardLen != f.shardLens[slot.id]:
		deny(fmt.Sprintf("shard of %d points, seat %d held %d — rebuilt data must match", shardLen, slot.id, f.shardLens[slot.id]))
		return
	case nodeTag != f.tag:
		deny(fmt.Sprintf("point tag %d, cluster serves %d", nodeTag, f.tag))
		return
	}
	conn.SetDeadline(time.Time{})
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed.Load() {
		conn.Close()
		return
	}
	slot.gen++
	slot.conn = conn
	slot.ctrl = make(chan ctrlFrame, 4)
	slot.present = true
	slot.lastLoss = nil
	go f.pump(slot, slot.gen, conn, slot.ctrl)
}

// Leader returns the cluster's elected leader (-1 before the session is
// ready).
func (f *Frontend) Leader() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// Close ends the session: it stops accepting connections, asks every node
// to shut down, and releases the control and client connections. In-flight
// queries complete first. Safe to call more than once.
func (f *Frontend) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := f.ln.Close()
	close(f.done)
	f.mu.Lock()
	for _, s := range f.slots {
		if s.conn != nil {
			var w wire.Writer
			w.U8(wire.KindShutdown)
			_ = wire.WriteFrame(s.conn, w.Bytes())
			s.conn.Close()
			s.conn = nil
		}
	}
	f.mu.Unlock()
	// Unblock serveClient goroutines parked in ReadFrame so a long-lived
	// process reclaims their goroutines and sockets.
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	for conn := range f.clients {
		conn.Close()
	}
	f.clients = nil
	return err
}

// serveClient answers one client connection's query stream; first is the
// already-read first frame.
func (f *Frontend) serveClient(conn net.Conn, first []byte) {
	defer conn.Close()
	if !f.trackClient(conn) {
		return
	}
	defer f.untrackClient(conn)
	<-f.ready
	payload := first
	for {
		var rep wire.Reply
		if f.readyErr != nil {
			rep = wire.Reply{Err: fmt.Sprintf("cluster unavailable: %v", f.readyErr)}
		} else {
			r := wire.NewReader(payload)
			if kind := r.U8(); kind != wire.KindQuery {
				return
			}
			q, err := wire.DecodeQuery(r)
			if err != nil {
				rep = wire.Reply{Err: fmt.Sprintf("bad query: %v", err)}
			} else {
				rep = f.query(q)
			}
		}
		if err := wire.WriteFrame(conn, wire.EncodeReply(rep)); err != nil {
			return
		}
		var err error
		if payload, err = wire.ReadFrame(conn); err != nil {
			return
		}
	}
}

// degradedLocked builds the retryable degraded reply naming the absent
// seats, or returns ok=true when every seat is filled.
func (f *Frontend) degradedLocked(verb string) (wire.Reply, bool) {
	var absent []int
	var cause error
	for _, s := range f.slots {
		if !s.present {
			absent = append(absent, s.id)
			if cause == nil {
				cause = s.lastLoss
			}
		}
	}
	if len(absent) == 0 {
		return wire.Reply{}, true
	}
	msg := fmt.Sprintf("cluster degraded (%d of %d nodes): %s node(s) %v", f.k-len(absent), f.k, verb, absent)
	if cause != nil {
		msg += fmt.Sprintf(" (%v)", cause)
	}
	return wire.Reply{Err: msg, Degraded: true}, false
}

// query runs one batched query epoch across the resident nodes and merges
// the per-query results. It holds the epoch lock for the whole round trip.
func (f *Frontend) query(q wire.Query) wire.Reply {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slots == nil || f.closed.Load() {
		return wire.Reply{Err: "cluster unavailable"}
	}
	if q.Op < wire.OpKNN || q.Op > wire.OpRegress {
		return wire.Reply{Err: fmt.Sprintf("unknown op %d", q.Op)}
	}
	if q.Tag != f.tag {
		return wire.Reply{Err: fmt.Sprintf("cluster serves point tag %d, query uses %d", f.tag, q.Tag)}
	}
	if q.L < 1 || int64(q.L) > f.total {
		return wire.Reply{Err: fmt.Sprintf("l=%d out of range [1, %d]", q.L, f.total)}
	}
	if len(q.Points) < 1 || len(q.Points) > wire.MaxBatch {
		return wire.Reply{Err: fmt.Sprintf("batch of %d out of range [1, %d]", len(q.Points), wire.MaxBatch)}
	}
	if rep, ok := f.degradedLocked("waiting for"); !ok {
		// No epoch is consumed: the query never ran, so the seed schedule
		// of the successful query stream is unchanged by the outage.
		return rep
	}

	f.epoch++
	dispatch := wire.EncodeDispatch(f.epoch, q)
	type target struct {
		s    *feSlot
		gen  uint64
		ctrl chan ctrlFrame
	}
	targets := make([]target, 0, f.k)
	for _, s := range f.slots {
		if err := wire.WriteFrame(s.conn, dispatch); err != nil {
			f.markAbsentLocked(s, s.gen, fmt.Errorf("dispatch to node %d: %v", s.id, err))
			continue
		}
		targets = append(targets, target{s, s.gen, s.ctrl})
	}

	rep := wire.Reply{Results: make([]wire.QueryReply, len(q.Points))}
	var epochErr string
	epochErrOrigin := false
	for _, t := range targets {
		payload, err := collectFrame(t.ctrl, f.epoch)
		if err != nil {
			f.markAbsentLocked(t.s, t.gen, fmt.Errorf("lost node %d mid-query: %v", t.s.id, err))
			continue
		}
		r := wire.NewReader(payload)
		switch kind := r.U8(); kind {
		case wire.KindError:
			ne, derr := wire.DecodeNodeError(r)
			if derr != nil || ne.Epoch != f.epoch {
				f.markAbsentLocked(t.s, t.gen, fmt.Errorf("node %d sent a malformed or stale error", t.s.id))
				continue
			}
			if epochErr == "" || (ne.Origin && !epochErrOrigin) {
				epochErr = fmt.Sprintf("node %d: %s", t.s.id, ne.Msg)
				epochErrOrigin = ne.Origin
			}
			if ne.Fatal && t.s.present {
				// A dead mesh, not a failed program: retire the implicated
				// seat immediately — its holder (if alive at all) must
				// re-join with fresh links before the cluster serves again.
				// A report from a seat already retired this epoch is the
				// echo of the same fault from the link's other endpoint
				// (both ends blame each other when one link breaks); acting
				// on it would evict both nodes for one fault.
				evict := t.s
				cause := fmt.Errorf("node %d reported a fatal mesh failure: %s", t.s.id, ne.Msg)
				if ne.LostPeer >= 0 && ne.LostPeer < f.k && ne.LostPeer != t.s.id {
					evict = f.slots[ne.LostPeer]
					cause = fmt.Errorf("node %d lost its link to node %d: %s", t.s.id, ne.LostPeer, ne.Msg)
				}
				f.markAbsentLocked(evict, evict.gen, cause)
			}
		case wire.KindResult:
			nr, derr := wire.DecodeNodeResult(r)
			if derr != nil || nr.Epoch != f.epoch || nr.Node != t.s.id || len(nr.Queries) != len(q.Points) {
				f.markAbsentLocked(t.s, t.gen, fmt.Errorf("node %d sent a malformed or stale result (%v)", t.s.id, derr))
				continue
			}
			if nr.Rounds > rep.Rounds {
				rep.Rounds = nr.Rounds
			}
			rep.Messages += nr.Messages
			rep.Bytes += nr.Bytes
			for qi, qr := range nr.Queries {
				rep.Results[qi].Items = append(rep.Results[qi].Items, qr.Winners...)
				if nr.IsLeader {
					rep.Results[qi].QueryOutcome = qr.QueryOutcome
				}
			}
		default:
			f.markAbsentLocked(t.s, t.gen, fmt.Errorf("node %d sent unexpected kind %d", t.s.id, kind))
		}
	}
	if drep, ok := f.degradedLocked("lost"); !ok {
		// The epoch was consumed but the batch failed as a unit; the
		// client may retry it (idempotent reads) once the seat heals.
		return drep
	}
	if epochErr != "" {
		return wire.Reply{Err: fmt.Sprintf("query failed: %s", epochErr)}
	}
	rep.Leader = f.leader
	for qi := range rep.Results {
		points.SortItems(rep.Results[qi].Items)
		if q.Op != wire.OpKNN {
			rep.Results[qi].Items = nil
		}
	}
	return rep
}

// collectFrame returns the node's control frame for the given epoch,
// skipping leftovers of earlier aborted epochs (a result or error the
// previous collection abandoned when the epoch failed early).
func collectFrame(ctrl chan ctrlFrame, epoch uint64) ([]byte, error) {
	for {
		cf := <-ctrl
		if cf.err != nil {
			return nil, cf.err
		}
		e, err := ctrlEpoch(cf.payload)
		if err != nil {
			return nil, err
		}
		if e < epoch {
			continue
		}
		return cf.payload, nil
	}
}

// ctrlEpoch extracts the epoch ordinal of a node's control frame.
func ctrlEpoch(payload []byte) (uint64, error) {
	r := wire.NewReader(payload)
	kind := r.U8()
	if kind != wire.KindResult && kind != wire.KindError {
		return 0, fmt.Errorf("unexpected control kind %d", kind)
	}
	e := r.Varint()
	return e, r.Err()
}
