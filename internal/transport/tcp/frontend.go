package tcp

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distknn/internal/obs"
	"distknn/internal/wire"
)

// Frontend is the client-facing side of a serving cluster. It performs
// rendezvous exactly like a Coordinator, but then stays resident: it keeps
// the control connection to every node, dispatches client queries as BSP
// epochs, collates the nodes' winner shares per epoch, and answers the
// clients. Protocol traffic between nodes still flows over the mesh only;
// the frontend carries queries in and merged results out.
//
// Query epochs are pipelined by the epoch scheduler (scheduler.go): up to
// FrontendOptions.Window epochs run on the mesh concurrently, multiplexed
// over the epoch-tagged mesh and control frames, and with ServerBatch the
// scheduler also coalesces concurrently arriving single queries into
// lockstep batch epochs. Epoch ordinals (and with them the per-epoch seeds)
// are assigned at admission in arrival order, mirroring the in-process
// Cluster's atomic query counter; answers are bit-identical to serialized
// execution because every algorithm is exact.
//
// Node churn degrades the cluster instead of breaking it. A reader pump per
// control connection notices a dead node the moment its connection drops —
// even between queries — and marks its seat absent; a node reporting a
// fatal (mesh-level) epoch failure gets the implicated peer evicted the
// same way. A lost seat fails exactly the epochs that were in flight on it,
// each with a retryable "cluster degraded" error (wire.Reply.Degraded);
// while any seat is absent, new queries fail fast the same way without
// consuming an epoch ordinal. The seat heals when a node re-registers: the
// frontend grants it the absent slot, the node rebuilds its shard and
// splices replacement mesh links into the resident peers, and the session
// resumes at the current epoch ordinal — determinism per (seed, query
// stream) is preserved because per-epoch seeds derive from the ordinal.
type Frontend struct {
	ln   net.Listener
	k    int
	seed uint64

	sched *scheduler
	// pruner is the metric-space geometry of the served point type
	// (FrontendOptions.Pruner); non-nil enables pruned dispatch once every
	// seat has reported a metric-index summary.
	pruner Pruner

	ready    chan struct{} // closed once serving (or failed); see readyErr
	readyErr error         // written before ready closes on failure

	// rejoinMu serializes re-join handshakes: a later grant must see an
	// earlier sealed seat in its Present list, or two concurrent
	// re-joiners would never learn to dial each other and leave a hole in
	// the mesh. It is never held together with work on mu's critical
	// paths: queries, Close and evictions stay responsive during a slow
	// handshake.
	rejoinMu sync.Mutex

	// mu guards seat transitions (eviction, re-join), the address book and
	// the epoch ordinal counter. The scheduler may take its own lock while
	// holding mu (admission), never the other way around.
	mu        sync.Mutex
	slots     []*feSlot // one per machine id; nil until the session is ready
	addrs     []string  // mesh address book, updated on re-join
	leader    int
	total     int64   // global point count (sum of shard sizes)
	tag       uint8   // point encoding the nodes serve
	shardLens []int64 // per-node shard sizes, pinned at setup to vet re-joins
	epoch     uint64  // last assigned query-epoch ordinal

	clientsMu sync.Mutex
	clients   map[net.Conn]struct{} // live client connections, for Close

	closed atomic.Bool
}

// feSlot is one machine's seat at the frontend: its control connection and
// whether the node is present. gen distinguishes connection incarnations
// across re-joins, so a stale pump (or a stale in-flight epoch) can never
// evict — or satisfy — a freshly re-joined node; sinceEpoch is the epoch
// ordinal at which the current incarnation was seated, so a fatal mesh
// report about an older epoch can never implicate it either.
type feSlot struct {
	id         int
	gen        uint64
	sinceEpoch uint64
	conn       net.Conn
	present    bool
	lastLoss   error // why the seat is absent, for degraded replies
	// summary is the seat's metric-index shard summary, reported with every
	// ready frame. It is a property of the seat's data, not of a connection
	// incarnation: the deterministic shard rebuild makes a re-joining
	// node's summary bit-identical (the re-join handshake enforces it), so
	// it survives — and keeps gating pruning decisions across — churn.
	summary wire.ShardSummary
}

// NewFrontend starts the serving listener on addr for a k-node cluster with
// the given session seed and default FrontendOptions. Call Serve to run the
// session.
func NewFrontend(addr string, k int, seed uint64) (*Frontend, error) {
	return NewFrontendOptions(addr, k, seed, FrontendOptions{})
}

// NewFrontendOptions starts the serving listener with an explicit epoch
// scheduler configuration (pipelining window, server-side batching).
func NewFrontendOptions(addr string, k int, seed uint64, opts FrontendOptions) (*Frontend, error) {
	if k < 1 {
		return nil, fmt.Errorf("tcp: frontend needs k >= 1, got %d", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: frontend listen: %w", err)
	}
	f := &Frontend{
		ln: ln, k: k, seed: seed,
		pruner:  opts.Pruner,
		ready:   make(chan struct{}),
		leader:  -1,
		clients: make(map[net.Conn]struct{}),
	}
	f.sched = newScheduler(f, opts)
	return f, nil
}

// trackClient registers a live client connection; it refuses (and the
// caller must drop the connection) once the frontend is closed.
func (f *Frontend) trackClient(conn net.Conn) bool {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	if f.closed.Load() {
		return false
	}
	f.clients[conn] = struct{}{}
	return true
}

func (f *Frontend) untrackClient(conn net.Conn) {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	delete(f.clients, conn)
}

// Addr returns the frontend's dialable address (nodes and clients share it).
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// Health reports the cluster's serving state for the admin plane's
// /healthz: OK only when the session finished rendezvous, the frontend
// is open, and every seat is present. Absent seats carry their last
// loss cause.
func (f *Frontend) Health() obs.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed.Load() {
		return obs.Health{Detail: "frontend closed"}
	}
	if f.slots == nil {
		return obs.Health{Detail: "waiting for node rendezvous"}
	}
	h := obs.Health{OK: true, Seats: make([]obs.SeatHealth, 0, len(f.slots))}
	for _, s := range f.slots {
		sh := obs.SeatHealth{ID: s.id, Present: s.present, Gen: s.gen}
		if !s.present {
			h.OK = false
			if s.lastLoss != nil {
				sh.Cause = s.lastLoss.Error()
			}
		}
		h.Seats = append(h.Seats, sh)
	}
	if !h.OK {
		h.Detail = "cluster degraded: seat(s) absent"
	}
	return h
}

// Serve runs the session: it accepts the k node registrations, configures
// the mesh, waits for every node's ready report, and then answers client
// queries until Close. A connection's first frame decides its role —
// KindRegister makes it a node control connection, KindQuery a client, and
// KindRejoin (or a late KindRegister once the session is running) a node
// re-joining after churn.
func (f *Frontend) Serve() error {
	type reg struct {
		conn net.Conn
		addr string
	}
	regCh := make(chan reg)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := f.ln.Accept()
			if err != nil {
				return
			}
			go func() {
				payload, err := wire.ReadFrame(conn)
				if err != nil {
					conn.Close()
					return
				}
				r := wire.NewReader(payload)
				switch kind := r.Kind(); kind {
				case wire.KindRegister:
					addr := r.String()
					if r.Err() != nil {
						conn.Close()
						return
					}
					select {
					case regCh <- reg{conn, addr}:
					case <-f.ready:
						// Late registration: the cluster is already
						// running, so offer the newcomer an absent seat.
						f.handleRejoin(conn, -1, addr)
					}
				case wire.KindRejoin:
					id, addr, err := wire.DecodeRejoin(r)
					if err != nil {
						conn.Close()
						return
					}
					<-f.ready
					f.handleRejoin(conn, id, addr)
				case wire.KindQuery, wire.KindQueryTagged:
					f.serveClient(conn, payload)
				default:
					conn.Close()
				}
			}()
		}
	}()

	// Rendezvous: collect k registrations, assign ids in arrival order.
	conns := make([]net.Conn, 0, f.k)
	addrs := make([]string, 0, f.k)

	fail := func(err error) error {
		// Release every registered node — a resident node blocked on its
		// control connection (ready wait or dispatch loop) exits cleanly
		// on EOF — and the listener, so a failed session neither strands
		// the cluster nor keeps the port bound after Serve returns.
		for _, conn := range conns {
			conn.Close()
		}
		f.ln.Close()
		f.readyErr = err
		close(f.ready)
		if f.closed.Load() {
			return nil
		}
		return err
	}
	for len(conns) < f.k {
		select {
		case r := <-regCh:
			conns = append(conns, r.conn)
			addrs = append(addrs, r.addr)
		case <-acceptDone:
			return fail(fmt.Errorf("tcp: frontend closed with %d of %d nodes registered", len(conns), f.k))
		}
	}
	for id, conn := range conns {
		if err := writeAssign(conn, wire.ModeServe, id, f.k, f.seed, addrs); err != nil {
			return fail(err)
		}
	}

	// Wait for every node's post-setup report and verify agreement. All k
	// frames are drained before failing so that a setup error surfaces
	// the originating node's message (origin=1) instead of whichever
	// peer-abort echo happens to arrive on the lowest id.
	leader, tag := -1, uint8(0)
	var total int64
	shardLens := make([]int64, f.k)
	summaries := make([]wire.ShardSummary, f.k)
	haveFirst := false
	var setupErr error
	setupOrigin := false
	record := func(origin bool, err error) {
		if setupErr == nil || (origin && !setupOrigin) {
			setupErr, setupOrigin = err, origin
		}
	}
	for id, conn := range conns {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			record(false, fmt.Errorf("tcp: frontend read ready from node %d: %w", id, err))
			continue
		}
		r := wire.NewReader(payload)
		switch kind := r.Kind(); kind {
		case wire.KindError:
			ne, err := wire.DecodeNodeError(r)
			if err != nil {
				record(false, fmt.Errorf("tcp: bad setup error from node %d", id))
				continue
			}
			record(ne.Origin, fmt.Errorf("tcp: node %d failed setup: %s", id, ne.Msg))
		case wire.KindReady:
			nid := int(r.Varint())
			nodeLeader := int(r.Varint())
			shardLen := int64(r.Varint())
			nodeTag := r.U8()
			if err := r.Err(); err != nil {
				record(false, fmt.Errorf("tcp: bad ready from node %d: %w", id, err))
				continue
			}
			if nid != id {
				record(false, fmt.Errorf("tcp: node %d reported ready as %d", id, nid))
				continue
			}
			if !haveFirst {
				leader, tag, haveFirst = nodeLeader, nodeTag, true
			} else if nodeLeader != leader {
				record(true, fmt.Errorf("tcp: node %d elected %d, an earlier node elected %d", id, nodeLeader, leader))
			} else if nodeTag != tag {
				record(true, fmt.Errorf("tcp: node %d serves point tag %d, an earlier node serves %d", id, nodeTag, tag))
			}
			shardLens[id] = shardLen
			total += shardLen
			// Every ready frame is immediately followed by the node's
			// metric-index summary frame.
			spayload, serr := wire.ReadFrame(conn)
			if serr != nil {
				record(false, fmt.Errorf("tcp: frontend read summary from node %d: %w", id, serr))
				continue
			}
			sr := wire.NewReader(spayload)
			if skind := sr.Kind(); skind != wire.KindSummary {
				record(false, fmt.Errorf("tcp: expected summary from node %d, got kind %d", id, skind))
				continue
			}
			sum, serr := wire.DecodeShardSummary(sr)
			if serr != nil || sum.Node != id {
				record(false, fmt.Errorf("tcp: bad summary from node %d (%v)", id, serr))
				continue
			}
			summaries[id] = sum
		default:
			record(false, fmt.Errorf("tcp: expected ready from node %d, got kind %d", id, kind))
		}
	}
	if setupErr != nil {
		return fail(setupErr)
	}

	f.mu.Lock()
	f.slots = make([]*feSlot, f.k)
	for id, conn := range conns {
		s := &feSlot{id: id, conn: conn, present: true, summary: summaries[id]}
		f.slots[id] = s
		go f.pump(s, s.gen, conn)
	}
	f.addrs = append([]string(nil), addrs...)
	f.leader = leader
	f.total = total
	f.tag = tag
	f.shardLens = shardLens
	f.mu.Unlock()
	close(f.ready)

	<-acceptDone
	return nil
}

// pump reads one node's control frames for one connection incarnation and
// pushes them into the epoch scheduler's collation. A read failure is the
// immediate death signal: the seat is marked absent on the spot — so a node
// dying between queries is noticed before the next dispatch — and every
// epoch in flight on this incarnation fails with a retryable degraded
// reply.
func (f *Frontend) pump(s *feSlot, gen uint64, conn net.Conn) {
	// One reusable buffer for the incarnation's lifetime: deliver decodes
	// results and errors into copies, so nothing outlives the iteration.
	var buf []byte
	for {
		payload, err := wire.ReadFrameInto(conn, buf)
		buf = payload
		if err != nil {
			cause := fmt.Errorf("lost node %d: %v", s.id, err)
			f.markAbsent(s, gen, cause)
			f.sched.seatLost(s.id, gen, cause)
			return
		}
		f.sched.deliver(s.id, gen, payload)
	}
}

func (f *Frontend) markAbsent(s *feSlot, gen uint64, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.markAbsentLocked(s, gen, cause)
}

// markAbsentLocked retires one connection incarnation of a seat. A stale
// gen (the seat was already re-granted to a re-joined node) is a no-op.
// Every actual present→absent transition must be followed — after mu is
// released — by exactly one scheduler.seatLost call for the retired
// incarnation, so the epochs in flight on it fail instead of hanging.
func (f *Frontend) markAbsentLocked(s *feSlot, gen uint64, cause error) {
	if s.gen != gen || !s.present {
		return
	}
	s.present = false
	s.lastLoss = cause
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// evictSeat retires incarnation gen of seat id (a malformed or
// desynchronized control stream) and fails its in-flight epochs.
func (f *Frontend) evictSeat(id int, gen uint64, cause error) {
	f.mu.Lock()
	s := f.slots[id]
	act := s.present && s.gen == gen
	if act {
		f.markAbsentLocked(s, gen, cause)
	}
	f.mu.Unlock()
	if act {
		f.sched.seatLost(id, gen, cause)
	}
}

// evictImplicated handles a fatal mesh report from (reporter, reporterGen)
// about the given epoch: the implicated seat — the named lost peer, else
// the reporter itself — is retired and its in-flight epochs fail. A report
// from a reporter whose seat is already retired is the echo of the same
// fault from the link's other endpoint (both ends blame each other when
// one link breaks); acting on it would evict both nodes for one fault, so
// it is ignored. A report about an epoch older than the target seat's
// current incarnation concerns its predecessor's links (a delayed second
// report from before a quick re-join) and is ignored the same way.
func (f *Frontend) evictImplicated(reporter int, reporterGen, epoch uint64, lostPeer int, cause error) {
	f.mu.Lock()
	rs := f.slots[reporter]
	if rs.gen != reporterGen || !rs.present {
		f.mu.Unlock()
		return
	}
	target := rs
	if lostPeer >= 0 && lostPeer < f.k && lostPeer != reporter {
		target = f.slots[lostPeer]
		cause = fmt.Errorf("node %d lost its link to node %d: %v", reporter, lostPeer, cause)
	}
	gen := target.gen
	act := target.present && epoch > target.sinceEpoch
	if act {
		f.markAbsentLocked(target, gen, cause)
	}
	f.mu.Unlock()
	if act {
		f.sched.seatLost(target.id, gen, cause)
	}
}

// EvictNode forcibly retires node id's seat and closes its control
// connection: the node's ServeNode returns ErrSessionLost, and the seat
// becomes re-joinable. Epochs in flight on the node fail with a retryable
// degraded error, and queries keep failing that way until a node takes the
// seat back. It exists for operators (kick a wedged or partitioned node so
// it re-joins with fresh links) and for churn tests.
func (f *Frontend) EvictNode(id int) error {
	<-f.ready
	if f.readyErr != nil {
		return f.readyErr
	}
	if id < 0 || id >= f.k {
		return fmt.Errorf("tcp: evict: no node %d in a %d-node cluster", id, f.k)
	}
	f.mu.Lock()
	s := f.slots[id]
	if !s.present {
		f.mu.Unlock()
		return fmt.Errorf("tcp: evict: node %d is not present", id)
	}
	gen := s.gen
	cause := fmt.Errorf("node %d evicted", id)
	f.markAbsentLocked(s, gen, cause)
	f.mu.Unlock()
	f.sched.seatLost(id, gen, cause)
	return nil
}

// handleRejoin runs the re-join handshake for one connection: grant an
// absent seat (the requested one, or the lowest), send the assignment, and
// wait for the node's ready report. Handshakes are serialized with each
// other (rejoinMu), but the epoch lock is held only to grant and later to
// seal the seat — never across the handshake's network I/O, so a slow (or
// hostile) re-joiner cannot stall degraded replies, Close, or evictions.
// No query epoch can race the mesh-link splicing: the granted seat stays
// absent until the seal, and an absent seat gates all dispatches.
// wantID < 0 lets the frontend pick.
func (f *Frontend) handleRejoin(conn net.Conn, wantID int, addr string) {
	deny := func(msg string) {
		_ = wire.WriteFrame(conn, wire.EncodeNodeError(wire.NodeError{LostPeer: -1, Msg: msg}))
		conn.Close()
	}
	if f.readyErr != nil {
		deny(fmt.Sprintf("session failed: %v", f.readyErr))
		return
	}
	f.rejoinMu.Lock()
	defer f.rejoinMu.Unlock()
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		conn.Close()
		return
	}
	var slot *feSlot
	if wantID >= 0 {
		if wantID >= f.k {
			f.mu.Unlock()
			deny(fmt.Sprintf("no machine %d in a %d-node cluster", wantID, f.k))
			return
		}
		if s := f.slots[wantID]; !s.present {
			slot = s
		}
	} else {
		for _, s := range f.slots {
			if !s.present {
				slot = s
				break
			}
		}
	}
	if slot == nil {
		f.mu.Unlock()
		deny("no absent seat to re-join (cluster is full)")
		return
	}
	f.addrs[slot.id] = addr
	// The epoch snapshot stays valid for the whole handshake: the granted
	// seat is absent until the seal, and queries cannot consume epochs
	// while any seat is absent. Leader, shard sizes and the point tag are
	// immutable after setup.
	ra := wire.RejoinAssign{
		ID: slot.id, K: f.k, Seed: f.seed,
		Leader: f.leader, Epoch: f.epoch,
		Addrs: append([]string(nil), f.addrs...),
	}
	for _, s := range f.slots {
		if s.present {
			ra.Present = append(ra.Present, s.id)
		}
	}
	f.mu.Unlock()

	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	//knnlint:allow lockio -- rejoinMu exists to serialize this handshake I/O; the conn carries a handshake deadline
	if err := wire.WriteFrame(conn, wire.EncodeRejoinAssign(ra)); err != nil {
		conn.Close()
		return
	}
	// The node now rebuilds its shard and dials the present peers; its
	// ready report seals the seat.
	//knnlint:allow lockio -- rejoinMu exists to serialize this handshake I/O; the conn carries a handshake deadline
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	r := wire.NewReader(payload)
	if kind := r.Kind(); kind != wire.KindReady {
		deny(fmt.Sprintf("expected ready, got kind %d", kind))
		return
	}
	nid := int(r.Varint())
	nodeLeader := int(r.Varint())
	shardLen := int64(r.Varint())
	nodeTag := r.U8()
	switch {
	case r.Err() != nil:
		deny("bad ready frame")
		return
	case nid != slot.id:
		deny(fmt.Sprintf("ready for seat %d, granted %d", nid, slot.id))
		return
	case nodeLeader != f.leader:
		deny(fmt.Sprintf("ready reports leader %d, session elected %d", nodeLeader, f.leader))
		return
	case shardLen != f.shardLens[slot.id]:
		deny(fmt.Sprintf("shard of %d points, seat %d held %d — rebuilt data must match", shardLen, slot.id, f.shardLens[slot.id]))
		return
	case nodeTag != f.tag:
		deny(fmt.Sprintf("point tag %d, cluster serves %d", nodeTag, f.tag))
		return
	}
	// The ready report is followed by the rebuilt shard's metric summary; a
	// deterministic shard provider must reproduce the summary bit-for-bit,
	// exactly like the shard length above — otherwise the frontend's pruning
	// geometry would silently diverge from the node's data.
	//knnlint:allow lockio -- rejoinMu exists to serialize this handshake I/O; the conn carries a handshake deadline
	spayload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	sr := wire.NewReader(spayload)
	if skind := sr.Kind(); skind != wire.KindSummary {
		deny(fmt.Sprintf("expected summary, got kind %d", skind))
		return
	}
	sum, err := wire.DecodeShardSummary(sr)
	switch {
	case err != nil || sum.Node != slot.id:
		deny("bad summary frame")
		return
	case sum.Has != slot.summary.Has,
		math.Float64bits(sum.Radius) != math.Float64bits(slot.summary.Radius),
		!bytes.Equal(sum.Center, slot.summary.Center):
		deny(fmt.Sprintf("metric summary differs from the one seat %d held — rebuilt data must match", slot.id))
		return
	}
	conn.SetDeadline(time.Time{})
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed.Load() {
		conn.Close()
		return
	}
	slot.gen++
	slot.sinceEpoch = f.epoch
	slot.conn = conn
	slot.present = true
	slot.lastLoss = nil
	go f.pump(slot, slot.gen, conn)
}

// prunableLocked reports whether pruned dispatch is available: a pruner is
// configured and every seat reported a usable metric summary at setup.
// Presence does not matter here — an absent seat only blocks the pruned
// queries whose ball reaches its shard (runPruned checks per dispatch).
// Callers hold f.mu.
func (f *Frontend) prunableLocked() bool {
	if f.pruner == nil || f.slots == nil {
		return false
	}
	for _, s := range f.slots {
		if !s.summary.Has {
			return false
		}
	}
	return true
}

// Leader returns the cluster's elected leader (-1 before the session is
// ready).
func (f *Frontend) Leader() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// Close ends the session: it stops accepting connections, fails every
// queued and in-flight query epoch with a retryable error, asks every node
// to shut down, and releases the control and client connections. The nodes
// drain their in-flight epochs before tearing their meshes down, so a close
// mid-query never strands a peer. Safe to call more than once.
func (f *Frontend) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := f.ln.Close()
	// Fail the scheduler first: in-flight collation jobs answer their
	// clients with the retryable closing reply instead of racing the
	// control pumps' death notices below.
	f.sched.shutdown()
	f.mu.Lock()
	for _, s := range f.slots {
		if s.conn != nil {
			// The shutdown frame is a courtesy (the connection closes
			// right below either way): a healthy node's socket buffer
			// takes it instantly, and a wedged one must not hold f.mu
			// hostage, so the write gets a short deadline.
			var w wire.Writer
			w.Kind(wire.KindShutdown)
			s.conn.SetWriteDeadline(time.Now().Add(time.Second))
			//knnlint:allow lockio -- courtesy shutdown frame under a 1s write deadline; a wedged node cannot hold f.mu
			_ = wire.WriteFrame(s.conn, w.Bytes())
			s.conn.Close()
			s.conn = nil
		}
	}
	f.mu.Unlock()
	// Unblock serveClient goroutines parked in ReadFrame so a long-lived
	// process reclaims their goroutines and sockets.
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	//knnlint:allow detsource -- closing every client conn; close order is unobservable
	for conn := range f.clients {
		conn.Close()
	}
	f.clients = nil
	return err
}

// maxClientOutstanding bounds the tagged queries one client connection may
// have in flight at the frontend. Beyond it the connection's read loop
// stops pulling frames, so a flooding client backs up in its own socket
// buffers instead of spawning unbounded goroutines. It is intentionally
// wider than any scheduler window (maxWindow) so the cap never throttles a
// client below the cluster's own pipelining capacity.
const maxClientOutstanding = 256

// serveClient answers one client connection's query stream; first is the
// already-read first frame.
//
// Untagged queries (wire.KindQuery) keep the legacy contract: strictly
// in-order, one request/reply in flight. Tagged queries
// (wire.KindQueryTagged) are the multiplexed data plane: each runs on its
// own goroutine so many can overlap inside the epoch scheduler's window,
// and its reply — written under a per-connection write lock — carries the
// client's tag so completion order is free. Frame buffers are pooled: the
// read loop checks a buffer out per frame and the query goroutine returns
// it once the decoded query (which aliases the payload) is dead.
func (f *Frontend) serveClient(conn net.Conn, first []byte) {
	defer conn.Close()
	if !f.trackClient(conn) {
		return
	}
	defer f.untrackClient(conn)
	<-f.ready

	var wmu sync.Mutex // serializes reply frames (tagged goroutines race)
	var wg sync.WaitGroup
	// Close the socket before waiting: an in-flight reply writer blocked
	// on a dead peer fails immediately instead of stalling the teardown.
	defer func() {
		conn.Close()
		wg.Wait()
	}()
	sem := make(chan struct{}, maxClientOutstanding)

	writeReply := func(tagged bool, tag uint64, rep wire.Reply) error {
		wmu.Lock()
		defer wmu.Unlock()
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		w.BeginFrame()
		if tagged {
			wire.AppendReplyTagged(w, tag, rep)
		} else {
			wire.AppendReply(w, rep)
		}
		//knnlint:allow lockio -- wmu exists to serialize reply writes to this client conn; nothing else hides behind it
		return w.EndFrame(conn)
	}

	payload := first
	for {
		r := wire.NewReader(payload)
		kind := r.Kind()
		if kind != wire.KindQuery && kind != wire.KindQueryTagged {
			wire.PutFrameBuf(payload)
			return
		}
		tagged := kind == wire.KindQueryTagged
		var tag uint64
		if tagged {
			tag = r.Varint()
			if r.Err() != nil {
				// Without a tag there is nothing to correlate a reply to.
				wire.PutFrameBuf(payload)
				return
			}
		}
		switch {
		case f.readyErr != nil:
			wire.PutFrameBuf(payload)
			if err := writeReply(tagged, tag, wire.Reply{Err: fmt.Sprintf("cluster unavailable: %v", f.readyErr)}); err != nil {
				return
			}
		case !tagged:
			// Legacy path: answer synchronously, preserving reply order.
			var q wire.Query
			var rep wire.Reply
			if err := wire.DecodeQueryInto(r, &q); err != nil {
				rep = wire.Reply{Err: fmt.Sprintf("bad query: %v", err)}
			} else {
				rep = f.answer(q)
			}
			wire.PutFrameBuf(payload)
			if err := writeReply(false, 0, rep); err != nil {
				return
			}
		default:
			// Multiplexed path: the goroutine owns the frame buffer until
			// the query (whose points alias it) is answered.
			var q wire.Query
			if err := wire.DecodeQueryInto(r, &q); err != nil {
				wire.PutFrameBuf(payload)
				if werr := writeReply(true, tag, wire.Reply{Err: fmt.Sprintf("bad query: %v", err)}); werr != nil {
					return
				}
				break
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(tag uint64, q wire.Query, payload []byte) {
				defer wg.Done()
				rep := f.answer(q)
				wire.PutFrameBuf(payload)
				// A dead connection surfaces on the read loop's next
				// ReadFrameInto; nothing to do about it here.
				_ = writeReply(true, tag, rep)
				<-sem
			}(tag, q, payload)
		}
		var err error
		if payload, err = wire.ReadFrameInto(conn, wire.GetFrameBuf()); err != nil {
			return
		}
	}
}

// answer validates one client query against the session and hands it to
// the epoch scheduler. The session parameters (tag, global point count) are
// immutable once ready closes, so validation takes no lock; a validation
// failure consumes no epoch ordinal.
func (f *Frontend) answer(q wire.Query) wire.Reply {
	if q.Op < wire.OpKNN || q.Op > wire.OpRegress {
		return wire.Reply{Err: fmt.Sprintf("unknown op %d", q.Op)}
	}
	if q.Tag != f.tag {
		return wire.Reply{Err: fmt.Sprintf("cluster serves point tag %d, query uses %d", f.tag, q.Tag)}
	}
	if q.L < 1 || int64(q.L) > f.total {
		return wire.Reply{Err: fmt.Sprintf("l=%d out of range [1, %d]", q.L, f.total)}
	}
	if len(q.Points) < 1 || len(q.Points) > wire.MaxBatch {
		return wire.Reply{Err: fmt.Sprintf("batch of %d out of range [1, %d]", len(q.Points), wire.MaxBatch)}
	}
	return f.sched.submit(q)
}

// degradedLocked builds the retryable degraded reply naming the absent
// seats, or returns ok=true when every seat is filled.
func (f *Frontend) degradedLocked(verb string) (wire.Reply, bool) {
	var absent []int
	var cause error
	for _, s := range f.slots {
		if !s.present {
			absent = append(absent, s.id)
			if cause == nil {
				cause = s.lastLoss
			}
		}
	}
	if len(absent) == 0 {
		return wire.Reply{}, true
	}
	msg := fmt.Sprintf("cluster degraded (%d of %d nodes): %s node(s) %v", f.k-len(absent), f.k, verb, absent)
	if cause != nil {
		msg += fmt.Sprintf(" (%v)", cause)
	}
	return wire.Reply{Err: msg, Degraded: true}, false
}
