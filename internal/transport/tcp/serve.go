package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/obs"
	"distknn/internal/points"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// SetupSeedStream is the seed-derivation stream reserved for the setup epoch
// (leader election). It matches the stream the in-process facade reserves
// for its construction-time election, so a serving TCP cluster and an
// in-process Cluster built from the same session seed derive identical
// election randomness. Query epochs use the small positive ordinals
// 1, 2, 3, …, which never collide with it.
const SetupSeedStream = ^uint64(0)

// handshakeTimeout bounds the blocking network steps of the mesh hello/ack
// handshake and the re-join handshake, so a wedged counterparty cannot pin
// a mesh accept goroutine — or the frontend's epoch lock — forever.
var handshakeTimeout = 30 * time.Second

// ErrSessionLost marks a resident node's exit because its serving session
// died under it — the frontend closed (or evicted) its control connection
// without a clean shutdown frame. The node's seat is recoverable: re-join
// by calling ServeNode (the frontend hands a late registration an absent
// slot) or RejoinNode, as cmd/knnnode's -rejoin loop does. Matched with
// errors.Is.
var ErrSessionLost = errors.New("tcp: serving session lost")

// ErrDegraded marks a query refused (or failed in flight) because the
// serving cluster is missing nodes. The failure is transient and safe to
// retry — every query op is an idempotent read — and the cluster answers
// again once the absent node re-joins. Matched with errors.Is.
var ErrDegraded = errors.New("cluster degraded")

// SessionInfo is what a node's Handler learns during the setup epoch and
// reports to the frontend in its KindReady frame.
type SessionInfo struct {
	// Leader is the elected leader's machine index (identical on every
	// node — the frontend verifies agreement before serving).
	Leader int
	// ShardLen is the number of points this node holds; the frontend sums
	// the shards to validate ℓ against the global point count.
	ShardLen int
	// PointTag is the wire encoding this node's shard understands
	// (wire.PointScalar, …); the frontend rejects mismatched queries.
	PointTag uint8
	// Summary is the shard's metric-index summary (centroid + radius),
	// reported right after the ready frame. A zero value (Has false)
	// means the shard has no metric geometry and disables pruned dispatch
	// for the session.
	Summary wire.ShardSummary
}

// QueryResult is one node's local outcome for one query of a batched
// epoch. Winners is this node's share of that query's global answer; the
// remaining fields are only read from the leader node's result.
type QueryResult struct {
	Winners    []points.Item
	Boundary   keys.Key
	Survivors  int64
	FellBack   bool
	Iterations int
	Value      float64 // OpClassify / OpRegress aggregate
}

// Handler is the per-node protocol logic a resident node runs: one Setup
// epoch at session start (leader election, shard discovery) — or one Rejoin
// call when the node re-joins a running session — then, per dispatched
// batch, one Query call per point of the batch, all inside a single BSP
// epoch. Setup and Query run on the standing mesh and may freely use the
// full kmachine.Env protocol surface; Rejoin is local (the leader is
// already elected and handed down by the frontend), so it only rebuilds the
// node's shard and index.
//
// Query calls run concurrently on one receiver, two ways at once: a batch
// of size > 1 executes its per-point calls as lockstep sub-programs of the
// shared epoch (each on its own Env; see batch.go), and the frontend's
// scheduler pipelines whole epochs, so distinct dispatched epochs execute
// concurrently on the same node too. Implementations must therefore keep
// per-call state local and treat state written in Setup/Rejoin (the shard,
// the leader) as read-only during queries. A Handler instance belongs to
// one node.
// Direct answers one query point of a pruned (no-mesh) dispatch: the node
// returns its local top-ℓ winners straight from its shard, with no BSP
// epoch and no Env — the frontend merges the shares of the contacted nodes
// itself. The frontend only sends direct dispatches to sessions whose every
// node reported a metric-index summary, so a Handler that leaves
// SessionInfo.Summary unset never receives one (return an error).
type Handler interface {
	Setup(m kmachine.Env) (SessionInfo, error)
	Rejoin(id, k, leader int) (SessionInfo, error)
	Query(m kmachine.Env, q wire.Query, qi int) (QueryResult, error)
	Direct(q wire.Query, qi int) (QueryResult, error)
}

// ServeNode joins the serving cluster at the frontend's address and stays
// resident: it meshes up once, runs h.Setup as the setup epoch, reports
// readiness, and then executes one BSP epoch per dispatched query batch
// until the frontend shuts the session down (clean return).
//
// If the frontend is already past rendezvous and a cluster seat is absent
// (its node died or was evicted), the registration is answered with a
// re-join grant instead: the node takes over the absent seat, rebuilds its
// shard via h.Rejoin, splices replacement mesh links into the resident
// peers, and resumes serving at the session's current epoch ordinal — so a
// freshly started process heals a degraded cluster with no extra flags.
//
// meshAddr is the address the node's mesh listener binds; advertise is the
// address peers are told to dial, for deployments where the bind address is
// not reachable from other hosts (e.g. bind "0.0.0.0:7101", advertise
// "10.0.0.5:7101"). An empty advertise falls back to the listener's own
// address, which is right for single-host and loopback deployments.
//
// Failure handling: a query epoch whose program fails (including a program
// failure on a peer) is reported to the frontend and serving continues. A
// broken mesh link is reported with the fatal bit and the node keeps its
// seat, waiting for the lost peer to re-join; only the loss of the control
// connection itself ends the session, with an error matching ErrSessionLost
// so callers can re-join (see cmd/knnnode -rejoin).
func ServeNode(coordAddr, meshAddr, advertise string, h Handler) error {
	return serveNode(coordAddr, meshAddr, advertise, -1, h, nil, nil)
}

// ServeNodeObserved is ServeNode with the node's serve-loop telemetry
// (epochs served, mesh round/message/byte totals, control-plane frame
// bytes, pool traffic) bound to reg — see metrics.go for the
// instrument names. A nil registry behaves exactly like ServeNode.
func ServeNodeObserved(coordAddr, meshAddr, advertise string, reg *obs.Registry, h Handler) error {
	return serveNode(coordAddr, meshAddr, advertise, -1, h, nil, reg)
}

// RejoinNode re-joins a running serving session claiming a specific machine
// index, which must be absent (its previous node dead or evicted). Use it
// when the caller knows which seat it held — e.g. a supervisor restarting a
// known shard; a plain ServeNode registration lets the frontend pick any
// absent seat instead.
func RejoinNode(coordAddr, meshAddr, advertise string, id int, h Handler) error {
	if id < 0 {
		return fmt.Errorf("tcp: rejoin needs a machine index, got %d", id)
	}
	return serveNode(coordAddr, meshAddr, advertise, id, h, nil, nil)
}

// nodeSession aggregates one resident node's sockets so in-package tests
// can simulate an abrupt crash: kill closes everything mid-flight, with no
// shutdown frames or halt flags, exactly like a killed process.
type nodeSession struct {
	coord net.Conn
	node  *Node
	ln    net.Listener
}

func (s *nodeSession) kill() {
	s.coord.Close()
	s.ln.Close()
	s.node.closePeers()
}

func serveNode(coordAddr, meshAddr, advertise string, rejoinID int, h Handler, hook func(*nodeSession), reg *obs.Registry) error {
	nm := newNodeMetrics(reg)
	ln, err := net.Listen("tcp", meshAddr)
	if err != nil {
		return fmt.Errorf("tcp: node mesh listen: %w", err)
	}
	defer ln.Close()

	coord, a, err := joinServe(coordAddr, ln, advertise, rejoinID)
	if err != nil {
		return err
	}
	defer coord.Close()

	node := newNode(a.id, a.k, a.seed, nil)
	defer node.closePeers()
	// The accept loop runs for the whole session: it seats the initial
	// higher-id dialers and, later, replacement links from re-joining
	// peers.
	go meshAcceptLoop(node, ln)
	if hook != nil {
		hook(&nodeSession{coord: coord, node: node, ln: ln})
	}

	var info SessionInfo
	if a.rejoin {
		// Resume mid-session: no setup epoch — the leader is handed down —
		// and dispatched epochs continue at the session's current ordinal
		// (the fresh mesh links carry no stale-epoch leftovers).
		for _, j := range a.present {
			if j == a.id || j < 0 || j >= a.k {
				continue
			}
			if err := dialPeer(node, j, a.addrs[j]); err != nil {
				return err
			}
		}
		if info, err = h.Rejoin(a.id, a.k, a.leader); err != nil {
			_ = writeNodeError(coord, a.epoch, err)
			return fmt.Errorf("tcp: node %d rejoin: %w", a.id, err)
		}
	} else {
		if err := buildServeMesh(node, a.addrs); err != nil {
			return err
		}
		// Setup epoch (ordinal 0): elect the leader exactly once per
		// session.
		if _, err := node.runEpoch(0, xrand.DeriveSeed(a.seed, SetupSeedStream), func(m kmachine.Env) error {
			var err error
			info, err = h.Setup(m)
			return err
		}); err != nil {
			_ = writeNodeError(coord, 0, err)
			return fmt.Errorf("tcp: node %d setup: %w", a.id, err)
		}
	}

	var ready wire.Writer
	ready.Kind(wire.KindReady)
	ready.Varint(uint64(a.id))
	ready.Varint(uint64(info.Leader))
	ready.Varint(uint64(info.ShardLen))
	ready.U8(info.PointTag)
	if err := wire.WriteFrame(coord, ready.Bytes()); err != nil {
		return fmt.Errorf("tcp: node %d ready: %w (%v)", a.id, ErrSessionLost, err)
	}
	// The metric-index summary follows every ready frame — setup and
	// re-join alike — so the frontend always has current centroid/radius
	// geometry for each seated incarnation before it serves queries on it.
	info.Summary.Node = a.id
	if err := wire.WriteFrame(coord, wire.EncodeShardSummary(info.Summary)); err != nil {
		return fmt.Errorf("tcp: node %d summary: %w (%v)", a.id, ErrSessionLost, err)
	}

	// Dispatched epochs execute concurrently — the frontend's scheduler
	// pipelines up to its window of query epochs, and each one runs on its
	// own goroutine against its own epoch frame feeds. Control-connection
	// writes (results, error reports) are serialized; a failed control
	// write closes the connection, which surfaces as a session loss at the
	// read loop. In-flight epochs are drained before the mesh comes down,
	// so a clean shutdown never strands a peer mid-exchange.
	var ctrlMu sync.Mutex
	// writeCtrl sends one control frame built in a pooled writer (frame
	// already begun). The writer stays the caller's — its bytes are fully
	// flushed on return, and the caller releases it with wire.PutWriter —
	// so pooled-buffer ownership is provable function-locally (knnlint
	// poolown).
	writeCtrl := func(w *wire.Writer) error {
		ctrlMu.Lock()
		defer ctrlMu.Unlock()
		//knnlint:allow lockio -- ctrlMu exists to serialize exactly this control write; no other state hides behind it
		err := w.EndFrame(coord)
		if err == nil {
			// The writer still holds the whole frame after EndFrame.
			nm.ctrlOut.Add(int64(len(w.Bytes())))
		}
		return err
	}
	var epochs sync.WaitGroup
	defer epochs.Wait()

	for {
		// Dispatch frames are read into pooled buffers: the decoded query's
		// points alias the frame, so the buffer is handed to the epoch
		// goroutine and returned once the epoch is done with the query.
		payload, err := wire.ReadFrameInto(coord, wire.GetFrameBuf())
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				// No shutdown frame came first: the frontend died, or this
				// node was evicted. Either way the seat is re-joinable.
				return fmt.Errorf("tcp: node %d control connection closed: %w", a.id, ErrSessionLost)
			}
			return fmt.Errorf("tcp: node %d read dispatch: %v: %w", a.id, err, ErrSessionLost)
		}
		nm.ctrlIn.Add(int64(len(payload)) + 4) // payload + length header
		r := wire.NewReader(payload)
		switch kind := r.Kind(); kind {
		case wire.KindShutdown:
			return nil
		case wire.KindDispatch:
			epoch := r.Varint()
			q, err := wire.DecodeQuery(r)
			if err != nil {
				return fmt.Errorf("tcp: node %d bad dispatch: %w", a.id, err)
			}
			epochSeed := xrand.DeriveSeed(a.seed, epoch)
			// Subscribing the epoch's frame feeds happens here, on the read
			// loop, so subscriptions follow dispatch order (the
			// demultiplexer requires monotonic epochs) and never race a
			// later dispatch. A mesh with a dead link refuses the epoch
			// with the fatal bit naming the lost peer — the frontend gates
			// further dispatches until the implicated node re-joins.
			er, err := node.beginEpoch(epoch, epochSeed)
			if err != nil {
				wire.PutFrameBuf(payload)
				// Tell the live peers too: one of them may already have
				// begun this epoch and would otherwise wait forever for
				// this node's frames (the frontend fails the client's
				// query either way, but the peer's epoch goroutine must
				// not leak).
				node.abortEpoch(epoch)
				ew := epochErrorFrame(epoch, err)
				werr := writeCtrl(ew)
				wire.PutWriter(ew)
				if werr != nil {
					return fmt.Errorf("tcp: node %d report error: %v: %w", a.id, werr, ErrSessionLost)
				}
				continue
			}
			epochs.Add(1)
			go func() {
				defer epochs.Done()
				runDispatchedEpoch(er, epochSeed, q, h, a.id, info.Leader, writeCtrl, coord, nm)
				wire.PutFrameBuf(payload)
			}()
		case wire.KindDispatchDirect:
			// A pruned epoch never touches the mesh: no beginEpoch (the
			// demultiplexer's monotonic-ordinal invariant is for mesh
			// epochs only — direct ordinals interleave freely), no seed,
			// no peers. The node answers straight from its shard.
			epoch := r.Varint()
			q, err := wire.DecodeQuery(r)
			if err != nil {
				return fmt.Errorf("tcp: node %d bad direct dispatch: %w", a.id, err)
			}
			epochs.Add(1)
			go func() {
				defer epochs.Done()
				runDirectEpoch(epoch, q, h, a.id, writeCtrl, coord, nm)
				wire.PutFrameBuf(payload)
			}()
		case wire.KindDispatchDirectSub:
			// One shard's sub-batch of a pruned batch epoch: answered exactly
			// like a direct dispatch (no mesh, no seed), one winners-only
			// result entry per sub-batch point in sub-batch order. The
			// original batch indices are the frontend's bookkeeping — it maps
			// this node's replies by position — so they are validated and
			// dropped here.
			epoch, _, q, err := wire.DecodeDispatchDirectSub(r)
			if err != nil {
				return fmt.Errorf("tcp: node %d bad sub-batch dispatch: %w", a.id, err)
			}
			epochs.Add(1)
			go func() {
				defer epochs.Done()
				runDirectEpoch(epoch, q, h, a.id, writeCtrl, coord, nm)
				wire.PutFrameBuf(payload)
			}()
		default:
			return fmt.Errorf("tcp: node %d got unexpected control kind %d", a.id, kind)
		}
	}
}

// runDispatchedEpoch executes one dispatched query epoch and reports its
// result (or failure) on the control connection. It runs on its own
// goroutine; a failed control write closes the connection so the dispatch
// read loop observes the session loss.
func runDispatchedEpoch(er *epochRun, epochSeed uint64, q wire.Query, h Handler,
	id, leader int, writeCtrl func(*wire.Writer) error, coord net.Conn, nm *nodeMetrics) {
	res := make([]QueryResult, len(q.Points))
	var err error
	if len(q.Points) == 1 {
		// A batch of one runs as a plain solo epoch, preserving the exact
		// per-query seed schedule of the in-process Cluster (bit-identical
		// single-query replays).
		err = er.execute(func(m kmachine.Env) error {
			var qerr error
			res[0], qerr = h.Query(m, q, 0)
			return qerr
		})
	} else {
		progs := make([]kmachine.Program, len(q.Points))
		for qi := range progs {
			qi := qi
			progs[qi] = func(m kmachine.Env) error {
				var qerr error
				res[qi], qerr = h.Query(m, q, qi)
				return qerr
			}
		}
		err = er.runBatch(epochSeed, progs)
	}
	if err != nil {
		// Program failures are recoverable; mesh failures set the fatal
		// bit and name the lost peer, and the node keeps its seat — the
		// frontend gates dispatches until the implicated node re-joins.
		nm.epochErrors.Inc()
		ew := epochErrorFrame(er.epoch, err)
		werr := writeCtrl(ew)
		wire.PutWriter(ew)
		if werr != nil {
			coord.Close()
		}
		return
	}
	met := er.metrics
	nm.epochsServed.Inc()
	nm.meshRounds.Add(int64(met.Rounds))
	nm.meshMessages.Add(met.Messages)
	nm.meshBytes.Add(met.Bytes)
	nr := wire.NodeResult{
		Epoch:    er.epoch,
		Node:     id,
		Rounds:   met.Rounds,
		Messages: met.Messages,
		Bytes:    met.Bytes,
		IsLeader: id == leader,
		Queries:  make([]wire.NodeQueryResult, len(res)),
	}
	for qi, qr := range res {
		// The winner share only travels for KNN queries; Classify and
		// Regress replies carry the aggregate value, so shipping (and the
		// frontend merging) up to ℓ items per query would be wasted work.
		if q.Op == wire.OpKNN {
			nr.Queries[qi].Winners = qr.Winners
		}
		if nr.IsLeader {
			nr.Queries[qi].Boundary = qr.Boundary
			nr.Queries[qi].Survivors = qr.Survivors
			nr.Queries[qi].FellBack = qr.FellBack
			nr.Queries[qi].Iterations = qr.Iterations
			nr.Queries[qi].Value = qr.Value
		}
	}
	w := wire.GetWriter()
	w.BeginFrame()
	wire.AppendNodeResult(w, nr)
	werr := writeCtrl(w)
	wire.PutWriter(w)
	if werr != nil {
		coord.Close()
	}
}

// runDirectEpoch answers one pruned (no-mesh) epoch: the node's local
// top-ℓ winners per query point, reported as a winners-only NodeResult
// (IsLeader false; zero mesh cost — the frontend accounts a pruned query's
// cost itself). A failed query reports a recoverable (non-fatal) error.
func runDirectEpoch(epoch uint64, q wire.Query, h Handler,
	id int, writeCtrl func(*wire.Writer) error, coord net.Conn, nm *nodeMetrics) {
	nr := wire.NodeResult{
		Epoch:   epoch,
		Node:    id,
		Queries: make([]wire.NodeQueryResult, len(q.Points)),
	}
	for qi := range q.Points {
		res, err := h.Direct(q, qi)
		if err != nil {
			nm.epochErrors.Inc()
			w := wire.GetWriter()
			w.BeginFrame()
			wire.AppendNodeError(w, wire.NodeError{
				Epoch: epoch, Origin: true, LostPeer: -1, Msg: err.Error(),
			})
			werr := writeCtrl(w)
			wire.PutWriter(w)
			if werr != nil {
				coord.Close()
			}
			return
		}
		nr.Queries[qi].Winners = res.Winners
	}
	nm.directServed.Inc()
	w := wire.GetWriter()
	w.BeginFrame()
	wire.AppendNodeResult(w, nr)
	werr := writeCtrl(w)
	wire.PutWriter(w)
	if werr != nil {
		coord.Close()
	}
}

// serveAssignment is what a serving node learns at join time: a fresh
// rendezvous assignment, or a re-join grant into a running session.
type serveAssignment struct {
	rejoin  bool
	id, k   int
	seed    uint64
	leader  int    // rejoin only: the already-elected leader
	epoch   uint64 // rejoin only: the session's current epoch ordinal
	present []int  // rejoin only: the peers currently serving
	addrs   []string
}

// joinServe registers with the frontend (KindRejoin when the caller claims
// a specific seat, KindRegister otherwise) and decodes whichever grant
// comes back.
func joinServe(coordAddr string, ln net.Listener, advertise string, rejoinID int) (net.Conn, serveAssignment, error) {
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	coord, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return nil, serveAssignment{}, fmt.Errorf("tcp: dial coordinator: %w", err)
	}
	fail := func(err error) (net.Conn, serveAssignment, error) {
		coord.Close()
		return nil, serveAssignment{}, err
	}
	var first []byte
	if rejoinID >= 0 {
		first = wire.EncodeRejoin(rejoinID, advertise)
	} else {
		var reg wire.Writer
		reg.Kind(wire.KindRegister)
		reg.String(advertise)
		first = reg.Bytes()
	}
	if err := wire.WriteFrame(coord, first); err != nil {
		return fail(fmt.Errorf("tcp: register: %w", err))
	}
	payload, err := wire.ReadFrame(coord)
	if err != nil {
		return fail(fmt.Errorf("tcp: read assignment: %w", err))
	}
	r := wire.NewReader(payload)
	switch kind := r.Kind(); kind {
	case wire.KindAssign:
		a := serveAssignment{
			id: -1,
		}
		mode := r.U8()
		a.id = int(r.Varint())
		a.k = int(r.Varint())
		a.seed = r.U64()
		a.addrs = make([]string, a.k)
		for i := range a.addrs {
			a.addrs[i] = r.String()
		}
		if err := r.Err(); err != nil {
			return fail(fmt.Errorf("tcp: bad assignment: %w", err))
		}
		if mode != wire.ModeServe {
			return fail(fmt.Errorf("tcp: coordinator runs mode %d, ServeNode requires serving; use RunNode", mode))
		}
		return coord, a, nil
	case wire.KindRejoinAssign:
		ra, err := wire.DecodeRejoinAssign(r)
		if err != nil {
			return fail(fmt.Errorf("tcp: bad rejoin assignment: %w", err))
		}
		return coord, serveAssignment{
			rejoin: true, id: ra.ID, k: ra.K, seed: ra.Seed,
			leader: ra.Leader, epoch: ra.Epoch, present: ra.Present, addrs: ra.Addrs,
		}, nil
	case wire.KindError:
		ne, err := wire.DecodeNodeError(r)
		if err != nil {
			return fail(fmt.Errorf("tcp: bad join rejection: %w", err))
		}
		return fail(fmt.Errorf("tcp: join rejected: %s", ne.Msg))
	default:
		return fail(fmt.Errorf("tcp: expected assignment, got kind %d", kind))
	}
}

// meshAcceptLoop seats incoming mesh links for the session's lifetime. The
// dialer identifies itself with a hello frame and gets an empty ack back
// once the link is installed — so a re-joining peer knows this node will
// route the next epoch through the replacement link before it reports
// ready. A hello for a machine index that already has a link replaces it
// (the old socket is dead or stale by construction; the frontend never
// lets two nodes hold the same seat).
func meshAcceptLoop(n *Node, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			n.peersMu.Lock()
			n.acceptDown = true
			n.peersCond.Broadcast()
			n.peersMu.Unlock()
			return
		}
		go func(conn net.Conn) {
			conn.SetDeadline(time.Now().Add(handshakeTimeout))
			payload, err := wire.ReadFrame(conn)
			if err != nil {
				conn.Close()
				return
			}
			r := wire.NewReader(payload)
			id := int(r.Varint())
			if r.Err() != nil || id < 0 || id >= n.k || id == n.id {
				conn.Close()
				return
			}
			conn.SetDeadline(time.Time{})
			n.installPeer(id, conn)
			// Ack after the install: the only writer on this socket until
			// the dialer's next epoch is this goroutine.
			if err := wire.WriteFrame(conn, nil); err != nil {
				conn.Close()
			}
		}(conn)
	}
}

// dialPeer dials machine j's mesh address and performs the serving
// handshake: hello{id}, then wait for the ack confirming the peer has
// installed (or replaced) the link.
func dialPeer(n *Node, j int, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return fmt.Errorf("tcp: node %d dial peer %d: %w", n.id, j, err)
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var w wire.Writer
	w.Varint(uint64(n.id))
	if err := wire.WriteFrame(conn, w.Bytes()); err != nil {
		conn.Close()
		return fmt.Errorf("tcp: node %d hello to %d: %w", n.id, j, err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		conn.Close()
		return fmt.Errorf("tcp: node %d ack from %d: %w", n.id, j, err)
	}
	conn.SetDeadline(time.Time{})
	n.installPeer(j, conn)
	return nil
}

// buildServeMesh establishes the initial serving mesh: this node dials
// every lower machine index and waits until the accept loop has seated
// every higher one.
func buildServeMesh(n *Node, addrs []string) error {
	errs := make(chan error, n.id)
	for j := 0; j < n.id; j++ {
		go func(j int) { errs <- dialPeer(n, j, addrs[j]) }(j)
	}
	for j := 0; j < n.id; j++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	for {
		missing := -1
		for j := n.id + 1; j < n.k; j++ {
			if n.peers[j] == nil {
				missing = j
				break
			}
		}
		if missing == -1 {
			return nil
		}
		if n.acceptDown {
			return transportFault(missing, fmt.Errorf("tcp: node %d mesh listener closed waiting for peer %d", n.id, missing))
		}
		n.peersCond.Wait()
	}
}

// epochErrorFrame builds a failed-epoch report in a pooled writer (frame
// begun, ready for writeCtrl/EndFrame): origin marks a failure of this
// node's own program (as opposed to a peer's error frame or a transport
// fault), fatal marks a broken mesh, and the lost peer is named when the
// fault could be attributed, so the frontend can evict exactly the
// implicated node.
func epochErrorFrame(epoch uint64, err error) *wire.Writer {
	w := wire.GetWriter()
	w.BeginFrame()
	wire.AppendNodeError(w, wire.NodeError{
		Epoch:    epoch,
		Origin:   !IsTransportError(err) && !errors.Is(err, errPeerAbort),
		Fatal:    IsTransportError(err),
		LostPeer: LostPeer(err),
		Msg:      err.Error(),
	})
	return w
}

// writeNodeError reports a failed epoch on the control connection; the
// setup and rejoin paths use it before the concurrent dispatch loop starts.
func writeNodeError(coord net.Conn, epoch uint64, err error) error {
	w := epochErrorFrame(epoch, err)
	werr := w.EndFrame(coord)
	wire.PutWriter(w)
	return werr
}
