package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// SetupSeedStream is the seed-derivation stream reserved for the setup epoch
// (leader election). It matches the stream the in-process facade reserves
// for its construction-time election, so a serving TCP cluster and an
// in-process Cluster built from the same session seed derive identical
// election randomness. Query epochs use the small positive ordinals
// 1, 2, 3, …, which never collide with it.
const SetupSeedStream = ^uint64(0)

// SessionInfo is what a node's Handler learns during the setup epoch and
// reports to the frontend in its KindReady frame.
type SessionInfo struct {
	// Leader is the elected leader's machine index (identical on every
	// node — the frontend verifies agreement before serving).
	Leader int
	// ShardLen is the number of points this node holds; the frontend sums
	// the shards to validate ℓ against the global point count.
	ShardLen int
	// PointTag is the wire encoding this node's shard understands
	// (wire.PointScalar, …); the frontend rejects mismatched queries.
	PointTag uint8
}

// QueryResult is one node's local outcome for one query of a batched
// epoch. Winners is this node's share of that query's global answer; the
// remaining fields are only read from the leader node's result.
type QueryResult struct {
	Winners    []points.Item
	Boundary   keys.Key
	Survivors  int64
	FellBack   bool
	Iterations int
	Value      float64 // OpClassify / OpRegress aggregate
}

// Handler is the per-node protocol logic a resident node runs: one Setup
// epoch at session start (leader election, shard discovery), then — per
// dispatched batch — one Query call per point of the batch, all inside a
// single BSP epoch. Both calls run on the standing mesh and may freely use
// the full kmachine.Env protocol surface.
//
// For a batch of size > 1 the per-point Query calls execute concurrently
// as lockstep sub-programs of the shared epoch (each on its own Env; see
// batch.go), so implementations must be safe for concurrent Query calls on
// the same receiver: keep per-call state local, and treat state written in
// Setup (the shard, the elected leader) as read-only during queries. A
// Handler instance belongs to one node.
type Handler interface {
	Setup(m kmachine.Env) (SessionInfo, error)
	Query(m kmachine.Env, q wire.Query, qi int) (QueryResult, error)
}

// ServeNode joins the serving cluster at the frontend's address and stays
// resident: it meshes up once, runs h.Setup as the setup epoch, reports
// readiness, and then executes one BSP epoch per dispatched query batch
// until the frontend shuts the session down (clean return) or the mesh
// breaks.
//
// meshAddr is the address the node's mesh listener binds; advertise is the
// address peers are told to dial, for deployments where the bind address is
// not reachable from other hosts (e.g. bind "0.0.0.0:7101", advertise
// "10.0.0.5:7101"). An empty advertise falls back to the listener's own
// address, which is right for single-host and loopback deployments.
//
// A query epoch whose program fails (including a program failure on a peer)
// is reported to the frontend and serving continues; only transport-level
// failures end the session with an error.
func ServeNode(coordAddr, meshAddr, advertise string, h Handler) error {
	ln, err := net.Listen("tcp", meshAddr)
	if err != nil {
		return fmt.Errorf("tcp: node mesh listen: %w", err)
	}
	defer ln.Close()

	coord, a, err := join(coordAddr, ln, advertise)
	if err != nil {
		return err
	}
	defer coord.Close()
	if a.mode != wire.ModeServe {
		return fmt.Errorf("tcp: coordinator runs mode %d, ServeNode requires serving; use RunNode", a.mode)
	}

	conns, err := buildMesh(ln, a.id, a.k, a.addrs)
	if err != nil {
		return err
	}
	node := newNode(a.id, a.k, a.seed, conns)
	defer node.closePeers()

	// Setup epoch (ordinal 0): elect the leader exactly once per session.
	var info SessionInfo
	if _, err := node.runEpoch(0, xrand.DeriveSeed(a.seed, SetupSeedStream), func(m kmachine.Env) error {
		var err error
		info, err = h.Setup(m)
		return err
	}); err != nil {
		_ = writeNodeError(coord, 0, err)
		return fmt.Errorf("tcp: node %d setup: %w", a.id, err)
	}
	var ready wire.Writer
	ready.U8(wire.KindReady)
	ready.Varint(uint64(a.id))
	ready.Varint(uint64(info.Leader))
	ready.Varint(uint64(info.ShardLen))
	ready.U8(info.PointTag)
	if err := wire.WriteFrame(coord, ready.Bytes()); err != nil {
		return fmt.Errorf("tcp: node %d ready: %w", a.id, err)
	}

	for {
		payload, err := wire.ReadFrame(coord)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // frontend closed the session
			}
			return fmt.Errorf("tcp: node %d read dispatch: %w", a.id, err)
		}
		r := wire.NewReader(payload)
		switch kind := r.U8(); kind {
		case wire.KindShutdown:
			return nil
		case wire.KindDispatch:
			epoch := r.Varint()
			q, err := wire.DecodeQuery(r)
			if err != nil {
				return fmt.Errorf("tcp: node %d bad dispatch: %w", a.id, err)
			}
			res := make([]QueryResult, len(q.Points))
			epochSeed := xrand.DeriveSeed(a.seed, epoch)
			var met Metrics
			if len(q.Points) == 1 {
				// A batch of one runs as a plain solo epoch, preserving
				// the exact per-query seed schedule of the in-process
				// Cluster (bit-identical single-query replays).
				met, err = node.runEpoch(epoch, epochSeed, func(m kmachine.Env) error {
					var qerr error
					res[0], qerr = h.Query(m, q, 0)
					return qerr
				})
			} else {
				progs := make([]kmachine.Program, len(q.Points))
				for qi := range progs {
					qi := qi
					progs[qi] = func(m kmachine.Env) error {
						var qerr error
						res[qi], qerr = h.Query(m, q, qi)
						return qerr
					}
				}
				met, err = node.runEpochBatch(epoch, epochSeed, progs)
			}
			if err != nil {
				if werr := writeNodeError(coord, epoch, err); werr != nil {
					return fmt.Errorf("tcp: node %d report error: %w", a.id, werr)
				}
				if IsTransportError(err) {
					return fmt.Errorf("tcp: node %d epoch %d: %w", a.id, epoch, err)
				}
				continue // query failed, session intact
			}
			nr := wire.NodeResult{
				Epoch:    epoch,
				Node:     a.id,
				Rounds:   met.Rounds,
				Messages: met.Messages,
				Bytes:    met.Bytes,
				IsLeader: a.id == info.Leader,
				Queries:  make([]wire.NodeQueryResult, len(res)),
			}
			for qi, qr := range res {
				// The winner share only travels for KNN queries; Classify
				// and Regress replies carry the aggregate value, so shipping
				// (and the frontend merging) up to ℓ items per query would
				// be wasted work.
				if q.Op == wire.OpKNN {
					nr.Queries[qi].Winners = qr.Winners
				}
				if nr.IsLeader {
					nr.Queries[qi].Boundary = qr.Boundary
					nr.Queries[qi].Survivors = qr.Survivors
					nr.Queries[qi].FellBack = qr.FellBack
					nr.Queries[qi].Iterations = qr.Iterations
					nr.Queries[qi].Value = qr.Value
				}
			}
			if err := wire.WriteFrame(coord, wire.EncodeNodeResult(nr)); err != nil {
				return fmt.Errorf("tcp: node %d report result: %w", a.id, err)
			}
		default:
			return fmt.Errorf("tcp: node %d got unexpected control kind %d", a.id, kind)
		}
	}
}

// writeNodeError reports a failed epoch. The origin byte is 1 when the
// failure originated in this node's own program (as opposed to a peer's
// error frame or a transport fault), so the frontend can surface the root
// cause instead of k−1 "aborted by peer" echoes.
func writeNodeError(coord net.Conn, epoch uint64, err error) error {
	origin := uint8(0)
	if !IsTransportError(err) && !errors.Is(err, errPeerAbort) {
		origin = 1
	}
	var w wire.Writer
	w.U8(wire.KindError)
	w.Varint(epoch)
	w.U8(origin)
	w.String(err.Error())
	return wire.WriteFrame(coord, w.Bytes())
}

// Frontend is the client-facing side of a serving cluster. It performs
// rendezvous exactly like a Coordinator, but then stays resident: it keeps
// the control connection to every node, dispatches one BSP epoch per client
// query, merges the nodes' winner shares, and answers the client. Protocol
// traffic between nodes still flows over the mesh only; the frontend
// carries queries in and merged results out.
//
// Query epochs are serialized: one query is in flight at a time, and
// concurrent clients are queued in arrival order. Epoch ordinals (and with
// them the per-epoch seeds) therefore follow the global query arrival
// order, mirroring the in-process Cluster's atomic query counter.
type Frontend struct {
	ln   net.Listener
	k    int
	seed uint64

	ready    chan struct{} // closed once serving (or failed); see readyErr
	readyErr error         // written before ready closes on failure

	mu     sync.Mutex // guards the fields below and serializes epochs
	nodes  []net.Conn // control connections, indexed by machine id
	leader int
	total  int64 // global point count (sum of shard sizes)
	tag    uint8 // point encoding the nodes serve
	epoch  uint64
	broken error // first session-fatal failure

	clientsMu sync.Mutex
	clients   map[net.Conn]struct{} // live client connections, for Close

	closed atomic.Bool
}

// NewFrontend starts the serving listener on addr for a k-node cluster with
// the given session seed. Call Serve to run the session.
func NewFrontend(addr string, k int, seed uint64) (*Frontend, error) {
	if k < 1 {
		return nil, fmt.Errorf("tcp: frontend needs k >= 1, got %d", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: frontend listen: %w", err)
	}
	return &Frontend{
		ln: ln, k: k, seed: seed,
		ready:   make(chan struct{}),
		leader:  -1,
		clients: make(map[net.Conn]struct{}),
	}, nil
}

// trackClient registers a live client connection; it refuses (and the
// caller must drop the connection) once the frontend is closed.
func (f *Frontend) trackClient(conn net.Conn) bool {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	if f.closed.Load() {
		return false
	}
	f.clients[conn] = struct{}{}
	return true
}

func (f *Frontend) untrackClient(conn net.Conn) {
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	delete(f.clients, conn)
}

// Addr returns the frontend's dialable address (nodes and clients share it).
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// Serve runs the session: it accepts the k node registrations, configures
// the mesh, waits for every node's ready report, and then answers client
// queries until Close. A connection's first frame decides its role —
// KindRegister makes it a node control connection, KindQuery a client.
func (f *Frontend) Serve() error {
	type reg struct {
		conn net.Conn
		addr string
	}
	regCh := make(chan reg)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := f.ln.Accept()
			if err != nil {
				return
			}
			go func() {
				payload, err := wire.ReadFrame(conn)
				if err != nil {
					conn.Close()
					return
				}
				r := wire.NewReader(payload)
				switch kind := r.U8(); kind {
				case wire.KindRegister:
					addr := r.String()
					if r.Err() != nil {
						conn.Close()
						return
					}
					select {
					case regCh <- reg{conn, addr}:
					case <-f.ready: // late registration: cluster is full
						conn.Close()
					}
				case wire.KindQuery:
					f.serveClient(conn, payload)
				default:
					conn.Close()
				}
			}()
		}
	}()

	// Rendezvous: collect k registrations, assign ids in arrival order.
	conns := make([]net.Conn, 0, f.k)
	addrs := make([]string, 0, f.k)

	fail := func(err error) error {
		// Release every registered node — a resident node blocked on its
		// control connection (ready wait or dispatch loop) exits cleanly
		// on EOF — and the listener, so a failed session neither strands
		// the cluster nor keeps the port bound after Serve returns.
		for _, conn := range conns {
			conn.Close()
		}
		f.ln.Close()
		f.readyErr = err
		close(f.ready)
		if f.closed.Load() {
			return nil
		}
		return err
	}
	for len(conns) < f.k {
		select {
		case r := <-regCh:
			conns = append(conns, r.conn)
			addrs = append(addrs, r.addr)
		case <-acceptDone:
			return fail(fmt.Errorf("tcp: frontend closed with %d of %d nodes registered", len(conns), f.k))
		}
	}
	for id, conn := range conns {
		if err := writeAssign(conn, wire.ModeServe, id, f.k, f.seed, addrs); err != nil {
			return fail(err)
		}
	}

	// Wait for every node's post-setup report and verify agreement. All k
	// frames are drained before failing so that a setup error surfaces
	// the originating node's message (origin=1) instead of whichever
	// peer-abort echo happens to arrive on the lowest id.
	leader, tag := -1, uint8(0)
	var total int64
	haveFirst := false
	var setupErr error
	setupOrigin := false
	record := func(origin bool, err error) {
		if setupErr == nil || (origin && !setupOrigin) {
			setupErr, setupOrigin = err, origin
		}
	}
	for id, conn := range conns {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			record(false, fmt.Errorf("tcp: frontend read ready from node %d: %w", id, err))
			continue
		}
		r := wire.NewReader(payload)
		switch kind := r.U8(); kind {
		case wire.KindError:
			r.Varint() // epoch
			origin := r.U8() == 1
			msg := r.String()
			if r.Err() != nil {
				record(false, fmt.Errorf("tcp: bad setup error from node %d", id))
				continue
			}
			record(origin, fmt.Errorf("tcp: node %d failed setup: %s", id, msg))
		case wire.KindReady:
			nid := int(r.Varint())
			nodeLeader := int(r.Varint())
			shardLen := int64(r.Varint())
			nodeTag := r.U8()
			if err := r.Err(); err != nil {
				record(false, fmt.Errorf("tcp: bad ready from node %d: %w", id, err))
				continue
			}
			if nid != id {
				record(false, fmt.Errorf("tcp: node %d reported ready as %d", id, nid))
				continue
			}
			if !haveFirst {
				leader, tag, haveFirst = nodeLeader, nodeTag, true
			} else if nodeLeader != leader {
				record(true, fmt.Errorf("tcp: node %d elected %d, an earlier node elected %d", id, nodeLeader, leader))
			} else if nodeTag != tag {
				record(true, fmt.Errorf("tcp: node %d serves point tag %d, an earlier node serves %d", id, nodeTag, tag))
			}
			total += shardLen
		default:
			record(false, fmt.Errorf("tcp: expected ready from node %d, got kind %d", id, kind))
		}
	}
	if setupErr != nil {
		return fail(setupErr)
	}

	f.mu.Lock()
	f.nodes = conns
	f.leader = leader
	f.total = total
	f.tag = tag
	f.mu.Unlock()
	close(f.ready)

	<-acceptDone
	return nil
}

// Leader returns the cluster's elected leader (-1 before the session is
// ready).
func (f *Frontend) Leader() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// Close ends the session: it stops accepting connections, asks every node
// to shut down, and releases the control and client connections. In-flight
// queries complete first. Safe to call more than once.
func (f *Frontend) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := f.ln.Close()
	f.mu.Lock()
	for _, conn := range f.nodes {
		var w wire.Writer
		w.U8(wire.KindShutdown)
		_ = wire.WriteFrame(conn, w.Bytes())
		conn.Close()
	}
	f.nodes = nil
	f.mu.Unlock()
	// Unblock serveClient goroutines parked in ReadFrame so a long-lived
	// process reclaims their goroutines and sockets.
	f.clientsMu.Lock()
	defer f.clientsMu.Unlock()
	for conn := range f.clients {
		conn.Close()
	}
	f.clients = nil
	return err
}

// serveClient answers one client connection's query stream; first is the
// already-read first frame.
func (f *Frontend) serveClient(conn net.Conn, first []byte) {
	defer conn.Close()
	if !f.trackClient(conn) {
		return
	}
	defer f.untrackClient(conn)
	<-f.ready
	payload := first
	for {
		var rep wire.Reply
		if f.readyErr != nil {
			rep = wire.Reply{Err: fmt.Sprintf("cluster unavailable: %v", f.readyErr)}
		} else {
			r := wire.NewReader(payload)
			if kind := r.U8(); kind != wire.KindQuery {
				return
			}
			q, err := wire.DecodeQuery(r)
			if err != nil {
				rep = wire.Reply{Err: fmt.Sprintf("bad query: %v", err)}
			} else {
				rep = f.query(q)
			}
		}
		if err := wire.WriteFrame(conn, wire.EncodeReply(rep)); err != nil {
			return
		}
		var err error
		if payload, err = wire.ReadFrame(conn); err != nil {
			return
		}
	}
}

// query runs one batched query epoch across the resident nodes and merges
// the per-query results. It holds the epoch lock for the whole round trip.
func (f *Frontend) query(q wire.Query) wire.Reply {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken != nil {
		return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
	}
	if f.nodes == nil {
		return wire.Reply{Err: "cluster unavailable"}
	}
	if q.Op < wire.OpKNN || q.Op > wire.OpRegress {
		return wire.Reply{Err: fmt.Sprintf("unknown op %d", q.Op)}
	}
	if q.Tag != f.tag {
		return wire.Reply{Err: fmt.Sprintf("cluster serves point tag %d, query uses %d", f.tag, q.Tag)}
	}
	if q.L < 1 || int64(q.L) > f.total {
		return wire.Reply{Err: fmt.Sprintf("l=%d out of range [1, %d]", q.L, f.total)}
	}
	if len(q.Points) < 1 || len(q.Points) > wire.MaxBatch {
		return wire.Reply{Err: fmt.Sprintf("batch of %d out of range [1, %d]", len(q.Points), wire.MaxBatch)}
	}

	f.epoch++
	dispatch := wire.EncodeDispatch(f.epoch, q)
	for id, conn := range f.nodes {
		if err := wire.WriteFrame(conn, dispatch); err != nil {
			f.broken = fmt.Errorf("dispatch to node %d: %w", id, err)
			return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
		}
	}

	rep := wire.Reply{Results: make([]wire.QueryReply, len(q.Points))}
	var epochErr string
	epochErrOrigin := false
	for id, conn := range f.nodes {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			f.broken = fmt.Errorf("result from node %d: %w", id, err)
			return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
		}
		r := wire.NewReader(payload)
		switch kind := r.U8(); kind {
		case wire.KindError:
			epoch := r.Varint()
			origin := r.U8() == 1
			msg := r.String()
			if r.Err() != nil || epoch != f.epoch {
				f.broken = fmt.Errorf("node %d sent malformed or stale error", id)
				return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
			}
			if epochErr == "" || (origin && !epochErrOrigin) {
				epochErr = fmt.Sprintf("node %d: %s", id, msg)
				epochErrOrigin = origin
			}
		case wire.KindResult:
			nr, err := wire.DecodeNodeResult(r)
			if err != nil || nr.Epoch != f.epoch || nr.Node != id || len(nr.Queries) != len(q.Points) {
				f.broken = fmt.Errorf("node %d sent malformed or stale result (%v)", id, err)
				return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
			}
			if nr.Rounds > rep.Rounds {
				rep.Rounds = nr.Rounds
			}
			rep.Messages += nr.Messages
			rep.Bytes += nr.Bytes
			for qi, qr := range nr.Queries {
				rep.Results[qi].Items = append(rep.Results[qi].Items, qr.Winners...)
				if nr.IsLeader {
					rep.Results[qi].QueryOutcome = qr.QueryOutcome
				}
			}
		default:
			f.broken = fmt.Errorf("node %d sent unexpected kind %d", id, kind)
			return wire.Reply{Err: fmt.Sprintf("cluster broken: %v", f.broken)}
		}
	}
	if epochErr != "" {
		return wire.Reply{Err: fmt.Sprintf("query failed: %s", epochErr)}
	}
	rep.Leader = f.leader
	for qi := range rep.Results {
		points.SortItems(rep.Results[qi].Items)
		if q.Op != wire.OpKNN {
			rep.Results[qi].Items = nil
		}
	}
	return rep
}

// Client is a remote handle on a serving cluster: it speaks the
// query/reply half of the protocol over one connection. Queries on one
// Client are serialized (the frontend serializes epochs globally anyway);
// it is safe for concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialFrontend connects to a serving frontend.
func DialFrontend(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial frontend: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Do sends one query and waits for the reply. A Reply with a non-empty Err
// is returned as a Go error.
func (c *Client) Do(q wire.Query) (wire.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, wire.EncodeQuery(q)); err != nil {
		return wire.Reply{}, fmt.Errorf("tcp: send query: %w", err)
	}
	payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return wire.Reply{}, fmt.Errorf("tcp: read reply: %w", err)
	}
	r := wire.NewReader(payload)
	if kind := r.U8(); kind != wire.KindReply {
		return wire.Reply{}, fmt.Errorf("tcp: expected reply, got kind %d", kind)
	}
	rep, err := wire.DecodeReply(r)
	if err != nil {
		return wire.Reply{}, fmt.Errorf("tcp: bad reply: %w", err)
	}
	if rep.Err != "" {
		return wire.Reply{}, fmt.Errorf("tcp: remote: %s", rep.Err)
	}
	return rep, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// LocalCluster is an in-process serving deployment over loopback sockets:
// one frontend plus k resident nodes, each on its own goroutine. It exists
// for tests, benchmarks and single-binary demos of the serving path.
type LocalCluster struct {
	fe       *Frontend
	serveErr chan error
	wg       sync.WaitGroup

	mu       sync.Mutex
	nodeErrs []error
}

// ServeLocal starts a loopback serving cluster. newHandler builds one
// Handler per node (each node needs its own instance, since a Handler keeps
// per-node state); node identities are assigned at join time, so handlers
// must discover their shard through the Env they are given. The cluster is
// ready to serve (and Addr dialable by clients) when ServeLocal returns.
func ServeLocal(k int, seed uint64, newHandler func() Handler) (*LocalCluster, error) {
	fe, err := NewFrontend("127.0.0.1:0", k, seed)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{fe: fe, serveErr: make(chan error, 1)}
	go func() { lc.serveErr <- fe.Serve() }()
	for i := 0; i < k; i++ {
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			if err := ServeNode(fe.Addr(), "127.0.0.1:0", "", newHandler()); err != nil {
				lc.mu.Lock()
				lc.nodeErrs = append(lc.nodeErrs, err)
				lc.mu.Unlock()
			}
		}()
	}
	// Wait until the session is ready (or failed) before handing it out.
	<-fe.ready
	if fe.readyErr != nil {
		err := fe.readyErr
		lc.Close()
		return nil, err
	}
	return lc, nil
}

// Addr returns the frontend address clients should dial.
func (lc *LocalCluster) Addr() string { return lc.fe.Addr() }

// Leader returns the elected leader machine.
func (lc *LocalCluster) Leader() int { return lc.fe.Leader() }

// Close shuts the cluster down and reports the first failure observed by
// the frontend or any node.
func (lc *LocalCluster) Close() error {
	lc.fe.Close()
	err := <-lc.serveErr
	lc.wg.Wait()
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if err != nil {
		return err
	}
	if len(lc.nodeErrs) > 0 {
		return lc.nodeErrs[0]
	}
	return nil
}
