package tcp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// instanceFor generates machine i's dataset deterministically from (seed, i)
// — the same scheme a multi-process deployment would use.
func instanceFor(seed uint64, id, n int) *points.Set[points.Scalar] {
	rng := xrand.NewStream(seed, uint64(id))
	s := points.GenUniformScalars(rng, n, points.PaperDomain)
	for j := range s.IDs {
		s.IDs[j] = uint64(id)*uint64(n) + uint64(j) + 1
	}
	return s
}

func TestPingPongOverTCP(t *testing.T) {
	prog := func(m kmachine.Env) error {
		if m.ID() == 0 {
			m.Send(1, []byte("ping"))
			m.EndRound()
			msgs := m.WaitAny()
			if string(msgs[0].Payload) != "pong" {
				return fmt.Errorf("got %q", msgs[0].Payload)
			}
			return nil
		}
		msgs := m.WaitAny()
		if string(msgs[0].Payload) != "ping" {
			return fmt.Errorf("got %q", msgs[0].Payload)
		}
		m.Send(0, []byte("pong"))
		return nil
	}
	metrics, errs, err := RunLocal(2, 1, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	if metrics[0].Messages != 1 || metrics[1].Messages != 1 {
		t.Errorf("metrics: %+v", metrics)
	}
}

func TestBroadcastGatherOverTCP(t *testing.T) {
	k := 5
	prog := func(m kmachine.Env) error {
		m.Broadcast([]byte{byte(m.ID())})
		m.EndRound()
		msgs := m.Gather(k - 1)
		seen := make(map[int]bool)
		for _, msg := range msgs {
			if int(msg.Payload[0]) != msg.From {
				return fmt.Errorf("corrupt payload from %d", msg.From)
			}
			seen[msg.From] = true
		}
		if len(seen) != k-1 {
			return fmt.Errorf("saw %d peers", len(seen))
		}
		return nil
	}
	_, errs, err := RunLocal(k, 2, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
}

func TestStaggeredHalts(t *testing.T) {
	// Machines halt at different rounds; later rounds must keep working
	// between the survivors.
	k := 4
	prog := func(m kmachine.Env) error {
		// Machine i spins i*3 rounds, then (if not machine 0) halts;
		// machine 0 keeps talking to machine 3 the whole time.
		switch m.ID() {
		case 0:
			for r := 0; r < 9; r++ {
				m.Send(3, []byte{byte(r)})
				m.EndRound()
			}
			return nil
		case 3:
			got := 0
			for got < 9 {
				got += len(m.WaitAny())
			}
			return nil
		default:
			for r := 0; r < m.ID()*3; r++ {
				m.EndRound()
			}
			return nil
		}
	}
	_, errs, err := RunLocal(k, 3, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
}

func TestErrorPropagatesAcrossCluster(t *testing.T) {
	boom := errors.New("boom")
	prog := func(m kmachine.Env) error {
		if m.ID() == 1 {
			m.EndRound()
			return boom
		}
		for {
			m.EndRound() // spins until aborted by peer 1's error frame
		}
	}
	_, errs, err := RunLocal(3, 4, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[1], boom) {
		t.Errorf("node 1 error = %v", errs[1])
	}
	for _, i := range []int{0, 2} {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "abort") {
			t.Errorf("node %d should abort, got %v", i, errs[i])
		}
	}
}

func TestFullKNNPipelineOverTCP(t *testing.T) {
	// The headline integration: election + Algorithm 2 + classification
	// over real sockets, validated against a brute-force oracle.
	k, n, l := 4, 400, 25
	seed := uint64(99)
	var mu sync.Mutex
	boundaries := make([]keys.Key, k)
	labels := make([]float64, k)

	prog := func(m kmachine.Env) error {
		set := instanceFor(seed, m.ID(), n)
		q := points.Scalar(xrand.NewStream(seed, 1<<40).Uint64N(points.PaperDomain))
		leader, err := election.MinGUID(m)
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, set.TopLItems(q, l))
		if err != nil {
			return err
		}
		label, err := core.Classify(m, leader, res.Winners)
		if err != nil {
			return err
		}
		mu.Lock()
		boundaries[m.ID()] = res.Boundary
		labels[m.ID()] = label
		mu.Unlock()
		return nil
	}
	_, errs, err := RunLocal(k, seed, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}

	// Oracle: merge all machines' data and brute-force the query.
	var parts []*points.Set[points.Scalar]
	for i := 0; i < k; i++ {
		parts = append(parts, instanceFor(seed, i, n))
	}
	global := points.Merge(parts)
	q := points.Scalar(xrand.NewStream(seed, 1<<40).Uint64N(points.PaperDomain))
	want := global.BruteKNN(q, l)
	wantBoundary := want[l-1].Key
	for i := 0; i < k; i++ {
		if boundaries[i] != wantBoundary {
			t.Errorf("node %d boundary %v, want %v", i, boundaries[i], wantBoundary)
		}
		if labels[i] != labels[0] {
			t.Errorf("nodes disagree on label")
		}
	}
}

func TestTCPMatchesSimulator(t *testing.T) {
	// With the same seed, the TCP runtime and the unlimited-bandwidth
	// simulator must make bit-identical protocol decisions.
	k, n, l := 3, 200, 10
	seed := uint64(55)
	q := points.Scalar(12345678)

	prog := func(record func(id int, b keys.Key)) kmachine.Program {
		return func(m kmachine.Env) error {
			set := instanceFor(seed, m.ID(), n)
			res, err := core.KNN(m, core.Config{Leader: 0, L: l}, set.TopLItems(q, l))
			if err != nil {
				return err
			}
			record(m.ID(), res.Boundary)
			return nil
		}
	}

	var mu sync.Mutex
	tcpBounds := make([]keys.Key, k)
	_, errs, err := RunLocal(k, seed, prog(func(id int, b keys.Key) {
		mu.Lock()
		tcpBounds[id] = b
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}

	simBounds := make([]keys.Key, k)
	_, err = kmachine.Run(kmachine.Config{K: k, Seed: seed, BandwidthBytes: -1},
		prog(func(id int, b keys.Key) {
			mu.Lock()
			simBounds[id] = b
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if tcpBounds[i] != simBounds[i] {
			t.Errorf("node %d: tcp %v != sim %v", i, tcpBounds[i], simBounds[i])
		}
	}
}

func TestSingleNodeCluster(t *testing.T) {
	_, errs, err := RunLocal(1, 7, func(m kmachine.Env) error {
		if m.K() != 1 || m.ID() != 0 {
			return fmt.Errorf("bad identity")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator("127.0.0.1:0", 0, 1); err == nil {
		t.Errorf("k=0 coordinator must fail")
	}
}

func TestNodeGUIDMatchesSimulator(t *testing.T) {
	var tcpGUID, simGUID uint64
	_, errs, err := RunLocal(1, 42, func(m kmachine.Env) error {
		tcpGUID = m.GUID()
		return nil
	})
	if err != nil || errs[0] != nil {
		t.Fatal(err, errs)
	}
	if _, err := kmachine.Run(kmachine.Config{K: 1, Seed: 42}, func(m kmachine.Env) error {
		simGUID = m.GUID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tcpGUID != simGUID {
		t.Errorf("GUIDs differ: %d vs %d", tcpGUID, simGUID)
	}
}
