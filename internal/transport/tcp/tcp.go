// Package tcp runs k-machine programs over real TCP sockets: one process (or
// goroutine) per machine, a full connection mesh between them, and a
// coordinator that performs rendezvous (ID assignment and address exchange).
//
// The synchronous-round semantics match the in-process simulator exactly:
// messages sent in round r are delivered at the start of round r+1. Rounds
// are implemented BSP-style — at the end of each round every node sends
// exactly one frame (possibly empty) to every live peer and waits for one
// frame from each, so no global barrier service is needed. Bandwidth is that
// of the real network (the simulator's B-bits-per-round accounting has no
// TCP analogue), so round counts match a simulator run with unlimited
// bandwidth, and with the same seed the two runtimes execute bit-identical
// protocol decisions.
//
// A node that finishes marks its final frame with a halt flag; peers stop
// expecting frames from it. A node that fails broadcasts an error flag,
// which aborts every peer's run.
//
// Two deployment styles are offered, mirroring internal/kmachine's Run vs
// Runtime split:
//
//   - One-shot (RunNode, RunLocal): the mesh is built, a single program
//     runs, and everything is torn down — the coordinator carries no
//     protocol traffic and exits after rendezvous.
//
//   - Serving (Frontend, ServeNode, ServeLocal, Client): the nodes stay
//     resident after rendezvous, run a setup epoch once (leader election),
//     and then execute one BSP epoch per query dispatched by the frontend,
//     which also answers remote clients. Each epoch is an isolated run on
//     the standing mesh — fresh round numbering, fresh per-epoch randomness
//     derived from the session seed — so a serving cluster is deterministic
//     per (seed, query stream) exactly like the simulator. The frontend's
//     epoch scheduler may keep several epochs in flight at once (see
//     scheduler.go); every mesh frame is epoch-tagged and each peer link
//     demultiplexes arriving frames per epoch, so concurrent epochs share
//     the standing connections without ever observing each other. See
//     serve.go and docs/PROTOCOL.md.
package tcp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// Frame flags.
const (
	flagData = iota
	flagHalt
	flagErr
)

// Per-link budgets for the epoch demultiplexer. A well-behaved peer can have
// at most a couple of frames outstanding per epoch (BSP lockstep allows one
// unread data frame plus the final halt frame), and at most one early frame
// per epoch this node has not started yet (bounded by the frontend's window);
// a peer exceeding these is desynchronized or hostile and loses the link.
const (
	// subChanCap buffers one epoch's delivered frames.
	subChanCap = 8
	// stashEpochCap bounds the stashed frames of one not-yet-started epoch.
	stashEpochCap = 4
	// stashTotalCap bounds all stashed frames on one link.
	stashTotalCap = 256
)

// Metrics counts a node's local view of the run.
type Metrics struct {
	Rounds   int
	Messages int64 // protocol messages sent (not frames)
	Bytes    int64 // payload bytes sent
}

// transportError marks failures of the mesh itself — a lost connection, a
// corrupt or out-of-order frame — as opposed to a program deciding to fail.
// A resident serving node treats a program error as "this epoch failed, keep
// serving" but a transport error as "my mesh is broken": it reports the
// failure to the frontend with the fatal bit (naming the lost peer when it
// can) and keeps its seat, waiting for the implicated node to re-join.
type transportError struct {
	err  error
	peer int // machine whose link failed; -1 when not attributable
}

// transportFault wraps err as a mesh failure implicating machine peer
// (-1 when no single peer is to blame).
func transportFault(peer int, err error) transportError {
	return transportError{err: err, peer: peer}
}

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

// IsTransportError reports whether err (or anything it wraps) signals a
// broken mesh rather than a failed program.
func IsTransportError(err error) bool {
	var te transportError
	return errors.As(err, &te)
}

// LostPeer returns the machine index a transport error implicates, or -1
// when err is not a transport error or no single peer could be blamed.
func LostPeer(err error) int {
	var te transportError
	if errors.As(err, &te) {
		return te.peer
	}
	return -1
}

// errPeerAbort marks an epoch ended by a peer's error frame: the failure
// originated elsewhere, this node only observed it. The serving path uses
// it to report the originating node's message to the client instead of k−1
// "aborted by peer" echoes.
var errPeerAbort = errors.New("aborted by peer")

// frame is one per-round unit from one peer. epoch identifies which BSP
// epoch of a resident mesh the frame belongs to; the peer link's
// demultiplexer routes each frame to the matching epoch's feed, so any
// number of concurrently pipelined epochs can share the link. One-shot runs
// are epoch 0.
type frame struct {
	flag  byte
	epoch uint64
	round uint64
	msgs  [][]byte
}

// peer is one mesh connection plus its demultiplexing reader. Frames are
// routed per epoch: an epoch run subscribes before its first exchange and
// receives exactly its own frames on a private feed. Frames for epochs this
// node has not started yet (the peer read its dispatch earlier) are stashed
// until the subscription arrives; leftovers of completed epochs (final halt
// frames nobody reads) are dropped. A read failure closes every live feed —
// subscribers observe it as a channel close — and poisons the link for
// future subscriptions.
type peer struct {
	conn net.Conn

	mu      sync.Mutex
	subs    map[uint64]chan frame
	stash   map[uint64][]frame
	nstash  int
	everSub bool   // at least one epoch has been subscribed
	maxSub  uint64 // highest epoch ever subscribed; subscriptions are monotonic
	err     error  // sticky read/routing failure
}

func newPeer(conn net.Conn) *peer {
	p := &peer{
		conn:  conn,
		subs:  make(map[uint64]chan frame),
		stash: make(map[uint64][]frame),
	}
	go p.readLoop()
	return p
}

// readLoop pumps frames off the connection and routes them per epoch until
// the link dies.
func (p *peer) readLoop() {
	// One buffer for the life of the link: parseRoundFrame copies every
	// message payload out of the frame, so the frame bytes are dead the
	// moment it returns and the next read may overwrite them.
	var buf []byte
	for {
		payload, err := wire.ReadFrameInto(p.conn, buf)
		buf = payload
		if err != nil {
			p.fail(err)
			// Close our end too: a framing error (as opposed to a dead
			// socket) leaves a TCP-healthy but poisoned link that nothing
			// else would ever close — the remote must see it drop.
			p.conn.Close()
			return
		}
		f, err := parseRoundFrame(payload)
		if err != nil {
			p.fail(err)
			p.conn.Close()
			return
		}
		if !p.route(f) {
			p.fail(fmt.Errorf("tcp: peer flooded the epoch demultiplexer"))
			p.conn.Close()
			return
		}
	}
}

// route delivers one frame to its epoch's feed, stashes it for an epoch not
// yet subscribed, or drops a completed epoch's leftover. It reports false
// when the peer exceeded a demultiplexer budget (a protocol violation).
func (p *peer) route(f frame) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return true // link already failed; the frame is moot
	}
	if ch, ok := p.subs[f.epoch]; ok {
		select {
		case ch <- f:
			return true
		default:
			return false // feed overflow: the peer is rounds ahead of lockstep
		}
	}
	if !p.everSub || f.epoch > p.maxSub {
		if len(p.stash[f.epoch]) >= stashEpochCap || p.nstash >= stashTotalCap {
			return false
		}
		p.stash[f.epoch] = append(p.stash[f.epoch], f)
		p.nstash++
		return true
	}
	return true // leftover of a completed (previously subscribed) epoch
}

// subscribe opens this link's frame feed for one epoch, delivering any
// frames the peer sent before this node started the epoch. Subscriptions
// must be opened in increasing epoch order (the serving dispatch loop and
// the frontend's ordinal assignment guarantee it); stashed frames of epochs
// below the new subscription can never be claimed and are pruned.
func (p *peer) subscribe(epoch uint64) (chan frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return nil, p.err
	}
	ch := make(chan frame, subChanCap)
	for _, f := range p.stash[epoch] {
		//knnlint:allow lockio -- replays at most subChanCap stashed frames into a fresh cap-subChanCap channel; cannot block
		ch <- f
	}
	p.nstash -= len(p.stash[epoch])
	delete(p.stash, epoch)
	//knnlint:allow detsource -- prunes every stale epoch's stash; deletion order is unobservable
	for e, fs := range p.stash {
		if e < epoch {
			p.nstash -= len(fs)
			delete(p.stash, e)
		}
	}
	p.subs[epoch] = ch
	if !p.everSub || epoch > p.maxSub {
		p.everSub = true
		p.maxSub = epoch
	}
	return ch, nil
}

// unsubscribe retires one epoch's feed; later frames for it are dropped.
func (p *peer) unsubscribe(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, epoch)
}

// fail poisons the link: every live feed is closed (subscribers observe the
// loss as a channel close) and future subscriptions are refused.
func (p *peer) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.err = err
	//knnlint:allow detsource -- poison fanout: every live feed closes; order is unobservable
	for e, ch := range p.subs {
		close(ch)
		delete(p.subs, e)
	}
	p.stash = make(map[uint64][]frame)
	p.nstash = 0
}

// cause returns why the link failed (nil while it is healthy).
func (p *peer) cause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Node owns one machine's standing mesh: the peer links, the session
// identity, and the bookkeeping shared by every epoch that runs on the
// mesh. Per-epoch execution state lives in epochRun — a Node can have any
// number of epochs in flight at once, which is what lets the frontend's
// scheduler pipeline query epochs over one mesh.
type Node struct {
	id, k int
	seed  uint64 // session seed (per-epoch seeds are derived from it)

	// peers is indexed by machine id (self entry nil). One-shot meshes fill
	// it once and never touch it again; serving meshes mutate it — links of
	// lost peers are dropped, and the mesh accept loop installs replacement
	// links when a peer re-joins — so every access goes through peersMu.
	// A nil entry on a serving node means "link down, waiting for re-join".
	peersMu    sync.Mutex
	peersCond  *sync.Cond
	peers      []*peer
	acceptDown bool // the serving mesh accept loop has exited
}

// installPeer replaces machine j's mesh link with conn (closing any prior
// link, whose feeds then close) and starts the new link's demultiplexing
// reader. Serving nodes call it from the mesh accept loop; one-shot meshes
// never replace links.
func (n *Node) installPeer(j int, conn net.Conn) {
	p := newPeer(conn)
	n.peersMu.Lock()
	old := n.peers[j]
	n.peers[j] = p
	n.peersCond.Broadcast()
	n.peersMu.Unlock()
	if old != nil {
		old.conn.Close()
	}
}

// dropPeer closes and forgets machine j's link — but only if it is still
// the link that failed; a replacement installed concurrently must win.
func (n *Node) dropPeer(j int, p *peer) {
	if p == nil {
		return
	}
	n.peersMu.Lock()
	if n.peers[j] == p {
		n.peers[j] = nil
	}
	n.peersMu.Unlock()
	p.conn.Close()
}

// peerSnapshot returns a consistent view of the mesh links. An epoch pins
// its snapshot for its whole run: a link replaced mid-epoch fails only that
// epoch (the replacement closes the old socket, whose feeds then close),
// and the next epoch starts on the fresh links.
func (n *Node) peerSnapshot() []*peer {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	return append([]*peer(nil), n.peers...)
}

// closePeers shuts every mesh connection.
func (n *Node) closePeers() {
	for j, p := range n.peerSnapshot() {
		if j != n.id && p != nil {
			p.conn.Close()
		}
	}
}

// newNode builds the mesh owner. conns may be nil for a serving node that
// installs its links through the mesh accept loop and installPeer instead.
func newNode(id, k int, seed uint64, conns []net.Conn) *Node {
	n := &Node{
		id:    id,
		k:     k,
		seed:  seed,
		peers: make([]*peer, k),
	}
	n.peersCond = sync.NewCond(&n.peersMu)
	for j, conn := range conns {
		if conn == nil {
			continue
		}
		n.peers[j] = newPeer(conn)
	}
	return n
}

// epochRun is one isolated BSP epoch executing on the standing mesh: it
// implements kmachine.Env with its own round numbering, inbox/outbox,
// metrics, and epoch-seeded randomness. Any number of epochRuns may be in
// flight on one Node concurrently — each subscribed its own per-epoch frame
// feed on every peer link, so the runs never observe each other's traffic.
type epochRun struct {
	n     *Node
	epoch uint64
	guid  uint64
	rng   *rand.Rand

	round   int
	inbox   []kmachine.Message
	outbox  [][][]byte // per-peer payloads queued this round
	metrics Metrics

	peers  []*peer        // pinned link snapshot for this epoch
	feeds  []<-chan frame // per-peer frame feed (nil for self / absent)
	halted []bool         // peers that sent their final frame this epoch
}

// beginEpoch pins the current mesh and subscribes the epoch's frame feeds.
// The epoch ordinal must be strictly greater than any previously begun
// ordinal on this node (the demultiplexer's stash pruning relies on it);
// epochSeed is derived by the caller from the session seed. It fails with a
// transport error naming the lowest absent or broken link, so a serving
// node never starts an epoch on an incomplete mesh.
func (n *Node) beginEpoch(epoch, epochSeed uint64) (*epochRun, error) {
	er := &epochRun{
		n:      n,
		epoch:  epoch,
		guid:   xrand.DeriveSeed(epochSeed, uint64(n.id)+(1<<32)),
		rng:    xrand.NewStream(epochSeed, uint64(n.id)),
		outbox: make([][][]byte, n.k),
		peers:  n.peerSnapshot(),
		feeds:  make([]<-chan frame, n.k),
		halted: make([]bool, n.k),
	}
	for j, p := range er.peers {
		if j == n.id {
			continue
		}
		if p == nil {
			er.release()
			return nil, transportFault(j, fmt.Errorf("tcp: node %d mesh link to %d is down", n.id, j))
		}
		ch, err := p.subscribe(epoch)
		if err != nil {
			er.release()
			return nil, transportFault(j, fmt.Errorf("tcp: node %d mesh link to %d is broken: %w", n.id, j, err))
		}
		er.feeds[j] = ch
	}
	return er, nil
}

// release retires the epoch's frame feeds; stale frames for it (a peer's
// final halt frames) are dropped by the demultiplexer from here on.
func (er *epochRun) release() {
	for j, p := range er.peers {
		if j != er.n.id && p != nil && er.feeds[j] != nil {
			p.unsubscribe(er.epoch)
		}
	}
}

var _ kmachine.Env = (*epochRun)(nil)

// ID returns the node's machine index.
func (er *epochRun) ID() int { return er.n.id }

// K returns the cluster size.
func (er *epochRun) K() int { return er.n.k }

// GUID returns the node's unique identifier for this epoch, derived from
// the epoch seed exactly as the simulator derives it.
func (er *epochRun) GUID() uint64 { return er.guid }

// Rand returns the epoch's private random stream (simulator-identical).
func (er *epochRun) Rand() *rand.Rand { return er.rng }

// Round returns the current round.
func (er *epochRun) Round() int { return er.round }

// Send queues payload for machine `to` next round.
func (er *epochRun) Send(to int, payload []byte) {
	if to < 0 || to >= er.n.k {
		panic(fmt.Sprintf("tcp: node %d sending to out-of-range %d", er.n.id, to))
	}
	if to == er.n.id {
		panic(fmt.Sprintf("tcp: node %d sending to itself", er.n.id))
	}
	er.outbox[to] = append(er.outbox[to], payload)
	er.metrics.Messages++
	er.metrics.Bytes += int64(len(payload) + kmachine.MessageOverheadBytes)
}

// Broadcast sends payload to every other machine.
func (er *epochRun) Broadcast(payload []byte) {
	for to := 0; to < er.n.k; to++ {
		if to != er.n.id {
			er.Send(to, payload)
		}
	}
}

// Recv takes this round's inbox.
func (er *epochRun) Recv() []kmachine.Message {
	in := er.inbox
	er.inbox = nil
	return in
}

// Gather advances rounds until n messages have been received.
func (er *epochRun) Gather(want int) []kmachine.Message {
	got := er.Recv()
	for len(got) < want {
		er.EndRound()
		got = append(got, er.Recv()...)
	}
	return got
}

// WaitAny advances rounds until at least one message arrives.
func (er *epochRun) WaitAny() []kmachine.Message { return er.Gather(1) }

// EndRound exchanges one frame with every live peer and advances the round.
func (er *epochRun) EndRound() {
	er.exchange(flagData)
	er.round++
	er.metrics.Rounds = er.round
}

// exchange writes this round's frames (with the given flag) to all live
// peers concurrently, then reads one frame from each live peer, building the
// next round's inbox.
func (er *epochRun) exchange(flag byte) {
	n := er.n
	var wg sync.WaitGroup
	writeErrs := make([]error, n.k)
	for j := 0; j < n.k; j++ {
		if j == n.id || er.feeds[j] == nil || er.halted[j] {
			continue
		}
		out := er.outbox[j]
		er.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			writeErrs[j] = writeRoundFrame(er.peers[j].conn, flag, er.epoch, uint64(er.round), out)
		}(j, out)
	}
	// Read while writes drain to avoid mutual kernel-buffer deadlock.
	var next []kmachine.Message
	var remoteErr error
	for j := 0; j < n.k; j++ {
		if j == n.id || er.feeds[j] == nil || er.halted[j] {
			continue
		}
		f, ok := <-er.feeds[j]
		if !ok {
			n.dropPeer(j, er.peers[j])
			remoteErr = transportFault(j, fmt.Errorf("tcp: node %d lost peer %d: %v", n.id, j, er.peers[j].cause()))
			continue
		}
		if f.flag == flagErr {
			// An error frame is an epoch-level abort, valid at any round:
			// the peer failed at a different round than ours, or refused
			// the epoch before running a single round (abortEpoch). The
			// link itself is healthy — only this epoch dies.
			remoteErr = fmt.Errorf("tcp: node %d %w %d", n.id, errPeerAbort, j)
			continue
		}
		if f.round != uint64(er.round) {
			n.dropPeer(j, er.peers[j])
			remoteErr = transportFault(j, fmt.Errorf("tcp: node %d got round %d frame from %d during round %d of epoch %d",
				n.id, f.round, j, er.round, er.epoch))
			continue
		}
		if f.flag == flagHalt {
			er.halted[j] = true
		}
		for _, payload := range f.msgs {
			next = append(next, kmachine.Message{From: j, To: n.id, Payload: payload})
		}
	}
	wg.Wait()
	if remoteErr != nil {
		panic(remoteErr) // recovered by execute
	}
	for j, err := range writeErrs {
		// A write race against a peer that halted this very round (it
		// closed its sockets after its halt frame) is benign; any other
		// write failure is a real transport error.
		if err != nil && !er.halted[j] {
			n.dropPeer(j, er.peers[j])
			panic(transportFault(j, fmt.Errorf("tcp: node %d write to %d: %w", n.id, j, err)))
		}
	}
	sort.SliceStable(next, func(a, b int) bool { return next[a].From < next[b].From })
	er.inbox = next
}

// exchangeHalt writes halt frames (write-only: a halted node never reads
// again, matching the simulator's semantics).
func (er *epochRun) exchangeHalt() {
	var wg sync.WaitGroup
	for j := 0; j < er.n.k; j++ {
		if j == er.n.id || er.feeds[j] == nil || er.halted[j] {
			continue
		}
		out := er.outbox[j]
		er.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			// Ignore errors: the peer may have halted concurrently.
			_ = writeRoundFrame(er.peers[j].conn, flagHalt, er.epoch, uint64(er.round), out)
		}(j, out)
	}
	wg.Wait()
}

// execute runs prog as this epoch, translating the final state into
// halt/error frames for the peers and releasing the epoch's frame feeds. It
// leaves the connections open so other (and later) epochs keep running on
// the standing mesh.
func (er *epochRun) execute(prog kmachine.Program) (err error) {
	defer er.release()
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("tcp: node %d panicked: %v", er.n.id, rec)
			}
			// Best effort: tell the peers this epoch is gone here.
			for j := range er.peers {
				if j != er.n.id && er.feeds[j] != nil && !er.halted[j] {
					_ = writeRoundFrame(er.peers[j].conn, flagErr, er.epoch, uint64(er.round), nil)
				}
			}
		}
	}()
	if perr := prog(er); perr != nil {
		panic(perr)
	}
	// Clean halt: flush pending sends with the halt flag.
	er.exchangeHalt()
	return nil
}

// runEpoch executes prog as one isolated BSP epoch on the standing mesh —
// the serving path uses it for the setup epoch; dispatched query epochs
// begin on the read loop and run through epochRun.execute / runBatch
// (serve.go's runDispatchedEpoch) instead.
func (n *Node) runEpoch(epoch, epochSeed uint64, prog kmachine.Program) (Metrics, error) {
	er, err := n.beginEpoch(epoch, epochSeed)
	if err != nil {
		return Metrics{}, err
	}
	err = er.execute(prog)
	return er.metrics, err
}

// abortEpoch tells every live peer that this node will never run the given
// epoch (beginEpoch refused it — e.g. a dead link to a third peer), so a
// peer that already started the epoch aborts it instead of waiting forever
// for this node's frames. Error frames are epoch-level: receivers honor
// them at any round, and a peer that never starts the epoch drops the
// frame as a leftover.
func (n *Node) abortEpoch(epoch uint64) {
	for j, p := range n.peerSnapshot() {
		if j != n.id && p != nil {
			_ = writeRoundFrame(p.conn, flagErr, epoch, 0, nil)
		}
	}
}

// runProgram executes one one-shot program (epoch 0, seeded directly from
// the session seed — identical identity derivation to the simulator) and
// tears the mesh down.
func (n *Node) runProgram(prog kmachine.Program) (Metrics, error) {
	er, err := n.beginEpoch(0, n.seed)
	if err != nil {
		n.closePeers()
		return Metrics{}, err
	}
	err = er.execute(prog)
	n.closePeers()
	return er.metrics, err
}

// writeRoundFrame serializes one round frame through a pooled writer. The
// frame goes out as a single Write, so concurrent epochs sharing a mesh
// link never interleave frames.
func writeRoundFrame(conn net.Conn, flag byte, epoch, round uint64, msgs [][]byte) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.BeginFrame()
	w.U8(flag)
	w.Varint(epoch)
	w.Varint(round)
	w.Varint(uint64(len(msgs)))
	for _, m := range msgs {
		w.Varint(uint64(len(m)))
		w.Raw(m)
	}
	return w.EndFrame(conn)
}

// parseRoundFrame decodes one round frame payload.
func parseRoundFrame(payload []byte) (frame, error) {
	r := wire.NewReader(payload)
	f := frame{flag: r.U8(), epoch: r.Varint(), round: r.Varint()}
	count := r.Varint()
	for i := uint64(0); i < count; i++ {
		size := r.Varint()
		if r.Err() != nil || size > uint64(r.Remaining()) {
			return frame{}, fmt.Errorf("tcp: corrupt frame")
		}
		f.msgs = append(f.msgs, append([]byte(nil), r.Raw(int(size))...))
	}
	if r.Err() != nil {
		return frame{}, r.Err()
	}
	return f, nil
}
