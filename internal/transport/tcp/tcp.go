// Package tcp runs k-machine programs over real TCP sockets: one process (or
// goroutine) per machine, a full connection mesh between them, and a
// coordinator that performs rendezvous (ID assignment and address exchange).
//
// The synchronous-round semantics match the in-process simulator exactly:
// messages sent in round r are delivered at the start of round r+1. Rounds
// are implemented BSP-style — at the end of each round every node sends
// exactly one frame (possibly empty) to every live peer and waits for one
// frame from each, so no global barrier service is needed. Bandwidth is that
// of the real network (the simulator's B-bits-per-round accounting has no
// TCP analogue), so round counts match a simulator run with unlimited
// bandwidth, and with the same seed the two runtimes execute bit-identical
// protocol decisions.
//
// A node that finishes marks its final frame with a halt flag; peers stop
// expecting frames from it. A node that fails broadcasts an error flag,
// which aborts every peer's run.
//
// Two deployment styles are offered, mirroring internal/kmachine's Run vs
// Runtime split:
//
//   - One-shot (RunNode, RunLocal): the mesh is built, a single program
//     runs, and everything is torn down — the coordinator carries no
//     protocol traffic and exits after rendezvous.
//
//   - Serving (Frontend, ServeNode, ServeLocal, Client): the nodes stay
//     resident after rendezvous, run a setup epoch once (leader election),
//     and then execute one BSP epoch per query dispatched by the frontend,
//     which also answers remote clients. Each epoch is an isolated run on
//     the standing mesh — fresh round numbering, fresh per-epoch randomness
//     derived from the session seed — so a serving cluster is deterministic
//     per (seed, query stream) exactly like the simulator. See serve.go and
//     docs/PROTOCOL.md.
package tcp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// Frame flags.
const (
	flagData = iota
	flagHalt
	flagErr
)

// Metrics counts a node's local view of the run.
type Metrics struct {
	Rounds   int
	Messages int64 // protocol messages sent (not frames)
	Bytes    int64 // payload bytes sent
}

// transportError marks failures of the mesh itself — a lost connection, a
// corrupt or out-of-order frame — as opposed to a program deciding to fail.
// A resident serving node treats a program error as "this epoch failed, keep
// serving" but a transport error as "my mesh is broken": it reports the
// failure to the frontend with the fatal bit (naming the lost peer when it
// can) and keeps its seat, waiting for the implicated node to re-join.
type transportError struct {
	err  error
	peer int // machine whose link failed; -1 when not attributable
}

// transportFault wraps err as a mesh failure implicating machine peer
// (-1 when no single peer is to blame).
func transportFault(peer int, err error) transportError {
	return transportError{err: err, peer: peer}
}

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

// IsTransportError reports whether err (or anything it wraps) signals a
// broken mesh rather than a failed program.
func IsTransportError(err error) bool {
	var te transportError
	return errors.As(err, &te)
}

// LostPeer returns the machine index a transport error implicates, or -1
// when err is not a transport error or no single peer could be blamed.
func LostPeer(err error) int {
	var te transportError
	if errors.As(err, &te) {
		return te.peer
	}
	return -1
}

// errPeerAbort marks an epoch ended by a peer's error frame: the failure
// originated elsewhere, this node only observed it. The serving path uses
// it to report the originating node's message to the client instead of k−1
// "aborted by peer" echoes.
var errPeerAbort = errors.New("aborted by peer")

// frame is one per-round unit from one peer. epoch orders frames across the
// BSP runs a resident mesh executes back to back: a node draining its inbox
// at epoch e silently discards leftovers from epochs < e (a peer's final
// halt frames, which nobody reads during the epoch itself) and treats a
// frame from an epoch > e as a protocol error. One-shot runs are epoch 0.
type frame struct {
	flag  byte
	epoch uint64
	round uint64
	msgs  [][]byte
	err   error // reader-side injection for broken connections
}

// peer is one mesh connection plus its reader goroutine's output.
type peer struct {
	conn   net.Conn
	frames chan frame
	halted bool
}

// Node implements kmachine.Env over the mesh.
type Node struct {
	id, k int
	guid  uint64
	rng   *rand.Rand
	seed  uint64 // session seed (per-epoch seeds are derived from it)
	epoch uint64 // current epoch ordinal (0 for one-shot runs)

	round   int
	inbox   []kmachine.Message
	outbox  [][][]byte // per-peer payloads queued this round
	metrics Metrics

	// peers is indexed by machine id (self entry nil). One-shot meshes fill
	// it once and never touch it again; serving meshes mutate it — links of
	// lost peers are dropped, and the mesh accept loop installs replacement
	// links when a peer re-joins — so every access goes through peersMu.
	// A nil entry on a serving node means "link down, waiting for re-join".
	peersMu    sync.Mutex
	peersCond  *sync.Cond
	peers      []*peer
	acceptDown bool // the serving mesh accept loop has exited
}

// installPeer replaces machine j's mesh link with conn (closing any prior
// link, whose reader then drains) and starts the new link's reader. Serving
// nodes call it from the mesh accept loop; one-shot meshes never replace
// links.
func (n *Node) installPeer(j int, conn net.Conn) {
	p := &peer{conn: conn, frames: make(chan frame, 4)}
	go readFrames(conn, p.frames)
	n.peersMu.Lock()
	old := n.peers[j]
	n.peers[j] = p
	n.peersCond.Broadcast()
	n.peersMu.Unlock()
	if old != nil {
		old.conn.Close()
	}
}

// dropPeer closes and forgets machine j's link — but only if it is still
// the link that failed; a replacement installed concurrently must win.
func (n *Node) dropPeer(j int, p *peer) {
	if p == nil {
		return
	}
	n.peersMu.Lock()
	if n.peers[j] == p {
		n.peers[j] = nil
	}
	n.peersMu.Unlock()
	p.conn.Close()
}

// peerSnapshot returns a consistent view of the mesh links for one
// exchange. A link replaced mid-exchange stays visible in the snapshot; the
// exchange still wakes up because the replacement closes the old socket.
func (n *Node) peerSnapshot() []*peer {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	return append([]*peer(nil), n.peers...)
}

// missingPeer returns the lowest machine index whose mesh link is down, or
// -1 when the mesh is complete. Serving nodes refuse to start an epoch on
// an incomplete mesh (the frontend should never dispatch one).
func (n *Node) missingPeer() int {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	for j := 0; j < n.k; j++ {
		if j != n.id && n.peers[j] == nil {
			return j
		}
	}
	return -1
}

var _ kmachine.Env = (*Node)(nil)

// ID returns the node's machine index.
func (n *Node) ID() int { return n.id }

// K returns the cluster size.
func (n *Node) K() int { return n.k }

// GUID returns the node's unique identifier, derived from the cluster seed
// exactly as the simulator derives it.
func (n *Node) GUID() uint64 { return n.guid }

// Rand returns the node's private random stream (simulator-identical).
func (n *Node) Rand() *rand.Rand { return n.rng }

// Round returns the current round.
func (n *Node) Round() int { return n.round }

// Send queues payload for machine `to` next round.
func (n *Node) Send(to int, payload []byte) {
	if to < 0 || to >= n.k {
		panic(fmt.Sprintf("tcp: node %d sending to out-of-range %d", n.id, to))
	}
	if to == n.id {
		panic(fmt.Sprintf("tcp: node %d sending to itself", n.id))
	}
	n.outbox[to] = append(n.outbox[to], payload)
	n.metrics.Messages++
	n.metrics.Bytes += int64(len(payload) + kmachine.MessageOverheadBytes)
}

// Broadcast sends payload to every other machine.
func (n *Node) Broadcast(payload []byte) {
	for to := 0; to < n.k; to++ {
		if to != n.id {
			n.Send(to, payload)
		}
	}
}

// Recv takes this round's inbox.
func (n *Node) Recv() []kmachine.Message {
	in := n.inbox
	n.inbox = nil
	return in
}

// Gather advances rounds until n messages have been received.
func (n *Node) Gather(want int) []kmachine.Message {
	got := n.Recv()
	for len(got) < want {
		n.EndRound()
		got = append(got, n.Recv()...)
	}
	return got
}

// WaitAny advances rounds until at least one message arrives.
func (n *Node) WaitAny() []kmachine.Message { return n.Gather(1) }

// EndRound exchanges one frame with every live peer and advances the round.
func (n *Node) EndRound() {
	n.exchange(flagData)
	n.round++
	n.metrics.Rounds = n.round
}

// exchange writes this round's frames (with the given flag) to all live
// peers concurrently, then reads one frame from each live peer, building the
// next round's inbox.
func (n *Node) exchange(flag byte) {
	peers := n.peerSnapshot()
	var wg sync.WaitGroup
	writeErrs := make([]error, n.k)
	for j := 0; j < n.k; j++ {
		if j == n.id || peers[j] == nil || peers[j].halted {
			continue
		}
		out := n.outbox[j]
		n.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			writeErrs[j] = writeFrame(peers[j].conn, flag, n.epoch, uint64(n.round), out)
		}(j, out)
	}
	// Read while writes drain to avoid mutual kernel-buffer deadlock.
	var next []kmachine.Message
	var remoteErr error
	for j := 0; j < n.k; j++ {
		if j == n.id || peers[j] == nil || peers[j].halted {
			continue
		}
		f := <-peers[j].frames
		// Discard leftovers from completed epochs (a peer's final halt
		// frames, never read during the epoch that produced them).
		for f.err == nil && f.epoch < n.epoch {
			f = <-peers[j].frames
		}
		if f.err != nil {
			n.dropPeer(j, peers[j])
			remoteErr = transportFault(j, fmt.Errorf("tcp: node %d lost peer %d: %w", n.id, j, f.err))
			continue
		}
		if f.epoch != n.epoch {
			n.dropPeer(j, peers[j])
			remoteErr = transportFault(j, fmt.Errorf("tcp: node %d got epoch %d frame from %d during epoch %d",
				n.id, f.epoch, j, n.epoch))
			continue
		}
		if f.round != uint64(n.round) {
			n.dropPeer(j, peers[j])
			remoteErr = transportFault(j, fmt.Errorf("tcp: node %d got round %d frame from %d during round %d",
				n.id, f.round, j, n.round))
			continue
		}
		switch f.flag {
		case flagErr:
			remoteErr = fmt.Errorf("tcp: node %d %w %d", n.id, errPeerAbort, j)
			continue
		case flagHalt:
			peers[j].halted = true
		}
		for _, payload := range f.msgs {
			next = append(next, kmachine.Message{From: j, To: n.id, Payload: payload})
		}
	}
	wg.Wait()
	if remoteErr != nil {
		panic(remoteErr) // recovered by runProgram
	}
	for j, err := range writeErrs {
		// A write race against a peer that halted this very round (it
		// closed its sockets after its halt frame) is benign; any other
		// write failure is a real transport error.
		if err != nil && !(peers[j] != nil && peers[j].halted) {
			n.dropPeer(j, peers[j])
			panic(transportFault(j, fmt.Errorf("tcp: node %d write to %d: %w", n.id, j, err)))
		}
	}
	sort.SliceStable(next, func(a, b int) bool { return next[a].From < next[b].From })
	n.inbox = next
}

// writeFrame serializes one round frame.
func writeFrame(conn net.Conn, flag byte, epoch, round uint64, msgs [][]byte) error {
	var w wire.Writer
	w.U8(flag)
	w.Varint(epoch)
	w.Varint(round)
	w.Varint(uint64(len(msgs)))
	for _, m := range msgs {
		w.Varint(uint64(len(m)))
		w.Raw(m)
	}
	return wire.WriteFrame(conn, w.Bytes())
}

// readFrames pumps frames from conn into out until EOF or error; errors are
// delivered in-band so a blocked EndRound wakes up.
func readFrames(conn net.Conn, out chan<- frame) {
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			out <- frame{err: err}
			return
		}
		r := wire.NewReader(payload)
		f := frame{flag: r.U8(), epoch: r.Varint(), round: r.Varint()}
		count := r.Varint()
		for i := uint64(0); i < count; i++ {
			size := r.Varint()
			if r.Err() != nil || size > uint64(r.Remaining()) {
				out <- frame{err: fmt.Errorf("tcp: corrupt frame")}
				return
			}
			f.msgs = append(f.msgs, append([]byte(nil), r.Raw(int(size))...))
		}
		if r.Err() != nil {
			out <- frame{err: r.Err()}
			return
		}
		out <- f
	}
}

// execute runs prog on the meshed node, translating the final state into
// halt/error frames for the peers. It leaves the connections open so a
// resident node can run further epochs; runProgram closes them for the
// one-shot path.
func (n *Node) execute(prog kmachine.Program) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("tcp: node %d panicked: %v", n.id, rec)
			}
			// Best effort: tell the peers we are gone.
			for j, p := range n.peerSnapshot() {
				if j != n.id && p != nil && !p.halted {
					_ = writeFrame(p.conn, flagErr, n.epoch, uint64(n.round), nil)
				}
			}
		}
	}()
	if perr := prog(n); perr != nil {
		panic(perr)
	}
	// Clean halt: flush pending sends with the halt flag.
	n.exchangeHalt()
	return nil
}

// runProgram executes one one-shot program and tears the mesh down.
func (n *Node) runProgram(prog kmachine.Program) (Metrics, error) {
	err := n.execute(prog)
	n.closePeers()
	return n.metrics, err
}

// resetEpoch prepares the node for one isolated BSP epoch on the standing
// mesh: round numbering restarts at zero, every peer is live again, and the
// node's GUID and private random stream are re-derived from the epoch's
// seed — exactly how a kmachine.Runtime seeds each ExecuteSeeded run. The
// epoch ordinal must be strictly greater than the previous one (the frame
// filter relies on it); epochSeed is derived by the caller from the
// session seed.
func (n *Node) resetEpoch(epoch, epochSeed uint64) {
	n.epoch = epoch
	n.guid = xrand.DeriveSeed(epochSeed, uint64(n.id)+(1<<32))
	n.rng = xrand.NewStream(epochSeed, uint64(n.id))
	n.round = 0
	n.inbox = nil
	n.metrics = Metrics{}
	for j := range n.outbox {
		n.outbox[j] = nil
	}
	n.peersMu.Lock()
	for _, p := range n.peers {
		if p != nil {
			p.halted = false
		}
	}
	n.peersMu.Unlock()
}

// runEpoch executes prog as one isolated BSP epoch on the standing mesh;
// see resetEpoch for the seed schedule. Batched dispatches run through
// runEpochBatch (batch.go) instead.
func (n *Node) runEpoch(epoch, epochSeed uint64, prog kmachine.Program) (Metrics, error) {
	n.resetEpoch(epoch, epochSeed)
	err := n.execute(prog)
	return n.metrics, err
}

// closePeers shuts every mesh connection.
func (n *Node) closePeers() {
	for j, p := range n.peerSnapshot() {
		if j != n.id && p != nil {
			p.conn.Close()
		}
	}
}

// exchangeHalt writes halt frames (write-only: a halted node never reads
// again, matching the simulator's semantics).
func (n *Node) exchangeHalt() {
	peers := n.peerSnapshot()
	var wg sync.WaitGroup
	for j := 0; j < n.k; j++ {
		if j == n.id || peers[j] == nil || peers[j].halted {
			continue
		}
		out := n.outbox[j]
		n.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			// Ignore errors: the peer may have halted concurrently.
			_ = writeFrame(peers[j].conn, flagHalt, n.epoch, uint64(n.round), out)
		}(j, out)
	}
	wg.Wait()
}

// newNode builds the Env around an established mesh. conns may be nil for a
// serving node that installs its links through the mesh accept loop and
// installPeer instead.
func newNode(id, k int, seed uint64, conns []net.Conn) *Node {
	n := &Node{
		id:     id,
		k:      k,
		guid:   xrand.DeriveSeed(seed, uint64(id)+(1<<32)),
		rng:    xrand.NewStream(seed, uint64(id)),
		seed:   seed,
		outbox: make([][][]byte, k),
		peers:  make([]*peer, k),
	}
	n.peersCond = sync.NewCond(&n.peersMu)
	for j, conn := range conns {
		if conn == nil {
			continue
		}
		p := &peer{conn: conn, frames: make(chan frame, 4)}
		go readFrames(conn, p.frames)
		n.peers[j] = p
	}
	return n
}
