// Package tcp runs k-machine programs over real TCP sockets: one process (or
// goroutine) per machine, a full connection mesh between them, and a
// coordinator that only performs rendezvous (ID assignment and address
// exchange) — data never flows through it.
//
// The synchronous-round semantics match the in-process simulator exactly:
// messages sent in round r are delivered at the start of round r+1. Rounds
// are implemented BSP-style — at the end of each round every node sends
// exactly one frame (possibly empty) to every live peer and waits for one
// frame from each, so no global barrier service is needed. Bandwidth is that
// of the real network (the simulator's B-bits-per-round accounting has no
// TCP analogue), so round counts match a simulator run with unlimited
// bandwidth, and with the same seed the two runtimes execute bit-identical
// protocol decisions.
//
// A node that finishes marks its final frame with a halt flag; peers stop
// expecting frames from it. A node that fails broadcasts an error flag,
// which aborts every peer's run.
package tcp

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// Frame flags.
const (
	flagData = iota
	flagHalt
	flagErr
)

// Metrics counts a node's local view of the run.
type Metrics struct {
	Rounds   int
	Messages int64 // protocol messages sent (not frames)
	Bytes    int64 // payload bytes sent
}

var errRemote = fmt.Errorf("tcp: aborted by remote failure")

// frame is one per-round unit from one peer.
type frame struct {
	flag  byte
	round uint64
	msgs  [][]byte
	err   error // reader-side injection for broken connections
}

// peer is one mesh connection plus its reader goroutine's output.
type peer struct {
	conn   net.Conn
	frames chan frame
	halted bool
}

// Node implements kmachine.Env over the mesh.
type Node struct {
	id, k int
	guid  uint64
	rng   *rand.Rand
	seed  uint64

	round   int
	inbox   []kmachine.Message
	outbox  [][][]byte // per-peer payloads queued this round
	peers   []*peer    // indexed by machine id; self entry nil
	metrics Metrics
}

var _ kmachine.Env = (*Node)(nil)

// ID returns the node's machine index.
func (n *Node) ID() int { return n.id }

// K returns the cluster size.
func (n *Node) K() int { return n.k }

// GUID returns the node's unique identifier, derived from the cluster seed
// exactly as the simulator derives it.
func (n *Node) GUID() uint64 { return n.guid }

// Rand returns the node's private random stream (simulator-identical).
func (n *Node) Rand() *rand.Rand { return n.rng }

// Round returns the current round.
func (n *Node) Round() int { return n.round }

// Send queues payload for machine `to` next round.
func (n *Node) Send(to int, payload []byte) {
	if to < 0 || to >= n.k {
		panic(fmt.Sprintf("tcp: node %d sending to out-of-range %d", n.id, to))
	}
	if to == n.id {
		panic(fmt.Sprintf("tcp: node %d sending to itself", n.id))
	}
	n.outbox[to] = append(n.outbox[to], payload)
	n.metrics.Messages++
	n.metrics.Bytes += int64(len(payload) + kmachine.MessageOverheadBytes)
}

// Broadcast sends payload to every other machine.
func (n *Node) Broadcast(payload []byte) {
	for to := 0; to < n.k; to++ {
		if to != n.id {
			n.Send(to, payload)
		}
	}
}

// Recv takes this round's inbox.
func (n *Node) Recv() []kmachine.Message {
	in := n.inbox
	n.inbox = nil
	return in
}

// Gather advances rounds until n messages have been received.
func (n *Node) Gather(want int) []kmachine.Message {
	got := n.Recv()
	for len(got) < want {
		n.EndRound()
		got = append(got, n.Recv()...)
	}
	return got
}

// WaitAny advances rounds until at least one message arrives.
func (n *Node) WaitAny() []kmachine.Message { return n.Gather(1) }

// EndRound exchanges one frame with every live peer and advances the round.
func (n *Node) EndRound() {
	n.exchange(flagData)
	n.round++
	n.metrics.Rounds = n.round
}

// exchange writes this round's frames (with the given flag) to all live
// peers concurrently, then reads one frame from each live peer, building the
// next round's inbox.
func (n *Node) exchange(flag byte) {
	var wg sync.WaitGroup
	writeErrs := make([]error, n.k)
	for j := 0; j < n.k; j++ {
		if j == n.id || n.peers[j] == nil || n.peers[j].halted {
			continue
		}
		out := n.outbox[j]
		n.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			writeErrs[j] = writeFrame(n.peers[j].conn, flag, uint64(n.round), out)
		}(j, out)
	}
	// Read while writes drain to avoid mutual kernel-buffer deadlock.
	var next []kmachine.Message
	var remoteErr error
	for j := 0; j < n.k; j++ {
		if j == n.id || n.peers[j] == nil || n.peers[j].halted {
			continue
		}
		f := <-n.peers[j].frames
		if f.err != nil {
			remoteErr = fmt.Errorf("tcp: node %d lost peer %d: %w", n.id, j, f.err)
			continue
		}
		if f.round != uint64(n.round) {
			remoteErr = fmt.Errorf("tcp: node %d got round %d frame from %d during round %d",
				n.id, f.round, j, n.round)
			continue
		}
		switch f.flag {
		case flagErr:
			remoteErr = fmt.Errorf("tcp: node %d aborted by peer %d", n.id, j)
			continue
		case flagHalt:
			n.peers[j].halted = true
		}
		for _, payload := range f.msgs {
			next = append(next, kmachine.Message{From: j, To: n.id, Payload: payload})
		}
	}
	wg.Wait()
	if remoteErr != nil {
		panic(remoteErr) // recovered by runProgram
	}
	for j, err := range writeErrs {
		// A write race against a peer that halted this very round (it
		// closed its sockets after its halt frame) is benign; any other
		// write failure is a real transport error.
		if err != nil && !(n.peers[j] != nil && n.peers[j].halted) {
			panic(fmt.Errorf("tcp: node %d write to %d: %w", n.id, j, err))
		}
	}
	sort.SliceStable(next, func(a, b int) bool { return next[a].From < next[b].From })
	n.inbox = next
}

// writeFrame serializes one round frame.
func writeFrame(conn net.Conn, flag byte, round uint64, msgs [][]byte) error {
	var w wire.Writer
	w.U8(flag)
	w.Varint(round)
	w.Varint(uint64(len(msgs)))
	for _, m := range msgs {
		w.Varint(uint64(len(m)))
		w.Raw(m)
	}
	return wire.WriteFrame(conn, w.Bytes())
}

// readFrames pumps frames from conn into out until EOF or error; errors are
// delivered in-band so a blocked EndRound wakes up.
func readFrames(conn net.Conn, out chan<- frame) {
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			out <- frame{err: err}
			return
		}
		r := wire.NewReader(payload)
		f := frame{flag: r.U8(), round: r.Varint()}
		count := r.Varint()
		for i := uint64(0); i < count; i++ {
			size := r.Varint()
			if r.Err() != nil || size > uint64(r.Remaining()) {
				out <- frame{err: fmt.Errorf("tcp: corrupt frame")}
				return
			}
			f.msgs = append(f.msgs, append([]byte(nil), r.Raw(int(size))...))
		}
		if r.Err() != nil {
			out <- frame{err: r.Err()}
			return
		}
		out <- f
	}
}

// runProgram executes prog on a fully meshed node, translating the final
// state into halt/error frames for the peers.
func (n *Node) runProgram(prog kmachine.Program) (m Metrics, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("tcp: node %d panicked: %v", n.id, rec)
			}
			// Best effort: tell the peers we are gone.
			for j := 0; j < n.k; j++ {
				if j != n.id && n.peers[j] != nil && !n.peers[j].halted {
					_ = writeFrame(n.peers[j].conn, flagErr, uint64(n.round), nil)
				}
			}
		}
		for j := 0; j < n.k; j++ {
			if j != n.id && n.peers[j] != nil {
				n.peers[j].conn.Close()
			}
		}
		m = n.metrics
	}()
	if perr := prog(n); perr != nil {
		panic(perr)
	}
	// Clean halt: flush pending sends with the halt flag.
	n.exchangeHalt()
	return n.metrics, nil
}

// exchangeHalt writes halt frames (write-only: a halted node never reads
// again, matching the simulator's semantics).
func (n *Node) exchangeHalt() {
	var wg sync.WaitGroup
	for j := 0; j < n.k; j++ {
		if j == n.id || n.peers[j] == nil || n.peers[j].halted {
			continue
		}
		out := n.outbox[j]
		n.outbox[j] = nil
		wg.Add(1)
		go func(j int, out [][]byte) {
			defer wg.Done()
			// Ignore errors: the peer may have halted concurrently.
			_ = writeFrame(n.peers[j].conn, flagHalt, uint64(n.round), out)
		}(j, out)
	}
	wg.Wait()
}

// newNode builds the Env around an established mesh.
func newNode(id, k int, seed uint64, conns []net.Conn) *Node {
	n := &Node{
		id:     id,
		k:      k,
		guid:   xrand.DeriveSeed(seed, uint64(id)+(1<<32)),
		rng:    xrand.NewStream(seed, uint64(id)),
		seed:   seed,
		outbox: make([][][]byte, k),
		peers:  make([]*peer, k),
	}
	for j, conn := range conns {
		if conn == nil {
			continue
		}
		p := &peer{conn: conn, frames: make(chan frame, 4)}
		go readFrames(conn, p.frames)
		n.peers[j] = p
	}
	return n
}
