package tcp

import (
	"distknn/internal/obs"
	"distknn/internal/wire"
)

// This file binds the serving stack to the obs registry. Each layer
// resolves its named instruments once at construction and then records
// through struct fields: the hot path never touches the registry map,
// only lock-free atomics. When no registry is configured the layer
// binds to a private throwaway one — the recording code stays a single
// unconditional path either way, so enabling observability cannot
// change behavior (the non-perturbation contract: zero allocations per
// record, and wall-clock readings flow only into obs sinks).

// feMetrics is the frontend scheduler's instrument set.
type feMetrics struct {
	queries        *obs.Counter   // frontend_queries_total: client queries answered (a coalesced batch counts each participant)
	repliesFail    *obs.Counter   // frontend_replies_failed_total: replies carrying a program failure
	repliesDegr    *obs.Counter   // frontend_replies_degraded_total: replies carrying a retryable degraded failure
	epochsAdmitted *obs.Counter   // frontend_epochs_admitted_total: epoch ordinals consumed (scatter + direct waves)
	epochsFailed   *obs.Counter   // frontend_epochs_failed_total: epochs finished with a program failure
	epochsLost     *obs.Counter   // frontend_epochs_lost_total: epochs failed by seat loss mid-flight
	coalesced      *obs.Counter   // frontend_queries_coalesced_total: queries that joined a shared bucket epoch
	meshRounds     *obs.Counter   // frontend_mesh_rounds_total: Σ epoch rounds reported by the mesh
	meshMessages   *obs.Counter   // frontend_mesh_messages_total: Σ epoch messages reported by the mesh
	meshBytes      *obs.Counter   // frontend_mesh_bytes_total: Σ epoch mesh traffic bytes
	pruneWaves     *obs.Counter   // frontend_prune_waves_total: direct dispatch waves (probe + gather)
	pruneContacts  *obs.Counter   // frontend_prune_contacts_total: Σ per-point shard contacts of pruned queries
	pruneSkipped   *obs.Counter   // frontend_prune_shards_skipped_total: Σ shards a pruned batch never contacted
	inflight       *obs.Gauge     // frontend_epochs_inflight: window slots in use
	occupancy      *obs.Histogram // frontend_window_occupancy: window depth at each admission
	batchSize      *obs.Histogram // frontend_coalesced_batch_size: points per flushed bucket
	linger         *obs.Histogram // frontend_bucket_linger_ns: bucket open -> flush
	latency        *obs.Histogram // frontend_query_latency_ns: submit -> reply, per client query
}

func newFeMetrics(reg *obs.Registry) *feMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	registerPoolStats(reg)
	return &feMetrics{
		queries:        reg.Counter("frontend_queries_total"),
		repliesFail:    reg.Counter("frontend_replies_failed_total"),
		repliesDegr:    reg.Counter("frontend_replies_degraded_total"),
		epochsAdmitted: reg.Counter("frontend_epochs_admitted_total"),
		epochsFailed:   reg.Counter("frontend_epochs_failed_total"),
		epochsLost:     reg.Counter("frontend_epochs_lost_total"),
		coalesced:      reg.Counter("frontend_queries_coalesced_total"),
		meshRounds:     reg.Counter("frontend_mesh_rounds_total"),
		meshMessages:   reg.Counter("frontend_mesh_messages_total"),
		meshBytes:      reg.Counter("frontend_mesh_bytes_total"),
		pruneWaves:     reg.Counter("frontend_prune_waves_total"),
		pruneContacts:  reg.Counter("frontend_prune_contacts_total"),
		pruneSkipped:   reg.Counter("frontend_prune_shards_skipped_total"),
		inflight:       reg.Gauge("frontend_epochs_inflight"),
		occupancy:      reg.Histogram("frontend_window_occupancy", obs.SizeBuckets),
		batchSize:      reg.Histogram("frontend_coalesced_batch_size", obs.SizeBuckets),
		linger:         reg.Histogram("frontend_bucket_linger_ns", obs.LatencyBuckets),
		latency:        reg.Histogram("frontend_query_latency_ns", obs.LatencyBuckets),
	}
}

// nodeMetrics is the node serve loop's instrument set.
type nodeMetrics struct {
	epochsServed *obs.Counter // node_epochs_served_total: mesh epochs completed
	directServed *obs.Counter // node_direct_epochs_total: direct (no-mesh) epochs completed
	epochErrors  *obs.Counter // node_epoch_errors_total: epochs answered with an error frame
	meshRounds   *obs.Counter // node_mesh_rounds_total: Σ rounds of this node's mesh epochs
	meshMessages *obs.Counter // node_mesh_messages_total: Σ messages of this node's mesh epochs
	meshBytes    *obs.Counter // node_mesh_bytes_total: Σ mesh traffic bytes of this node's epochs
	ctrlIn       *obs.Counter // node_ctrl_bytes_in_total: control-plane frame bytes read from the frontend
	ctrlOut      *obs.Counter // node_ctrl_bytes_out_total: control-plane frame bytes written to the frontend
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	registerPoolStats(reg)
	return &nodeMetrics{
		epochsServed: reg.Counter("node_epochs_served_total"),
		directServed: reg.Counter("node_direct_epochs_total"),
		epochErrors:  reg.Counter("node_epoch_errors_total"),
		meshRounds:   reg.Counter("node_mesh_rounds_total"),
		meshMessages: reg.Counter("node_mesh_messages_total"),
		meshBytes:    reg.Counter("node_mesh_bytes_total"),
		ctrlIn:       reg.Counter("node_ctrl_bytes_in_total"),
		ctrlOut:      reg.Counter("node_ctrl_bytes_out_total"),
	}
}

// clientMetrics is tcp.Client's instrument set.
type clientMetrics struct {
	queries     *obs.Counter // client_queries_total: Do/DoContext calls
	retries     *obs.Counter // client_retries_total: attempts re-issued after a retryable failure
	degraded    *obs.Counter // client_degraded_replies_total: degraded replies observed (before any retry succeeds)
	reconnects  *obs.Counter // client_reconnects_total: dials after the first connection
	timeouts    *obs.Counter // client_timeouts_total: per-attempt timeouts
	outstanding *obs.Gauge   // client_outstanding: in-flight multiplexed tags
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &clientMetrics{
		queries:     reg.Counter("client_queries_total"),
		retries:     reg.Counter("client_retries_total"),
		degraded:    reg.Counter("client_degraded_replies_total"),
		reconnects:  reg.Counter("client_reconnects_total"),
		timeouts:    reg.Counter("client_timeouts_total"),
		outstanding: reg.Gauge("client_outstanding"),
	}
}

// registerPoolStats exposes the wire buffer pools as callback gauges.
// wire itself stays telemetry-agnostic; gets - news = pool hits.
func registerPoolStats(reg *obs.Registry) {
	reg.Func("wire_writer_pool_gets_total", func() int64 {
		gets, _, _, _ := wire.PoolStats()
		return gets
	})
	reg.Func("wire_writer_pool_misses_total", func() int64 {
		_, news, _, _ := wire.PoolStats()
		return news
	})
	reg.Func("wire_frame_pool_gets_total", func() int64 {
		_, _, gets, _ := wire.PoolStats()
		return gets
	})
	reg.Func("wire_frame_pool_misses_total", func() int64 {
		_, _, _, news := wire.PoolStats()
		return news
	})
}
