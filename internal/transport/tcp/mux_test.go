package tcp

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"distknn/internal/wire"
)

// TestMuxOutOfOrderReplies pins the demultiplexer against a frontend that
// completes queries in reverse arrival order: every concurrent Do must get
// the reply carrying its own tag, not the next frame off the stream. The
// stub reads all n tagged queries before answering, so all n calls are
// provably outstanding on the one connection at once.
func TestMuxOutOfOrderReplies(t *testing.T) {
	const n = 8
	addr := stubFrontend(t, func(conn net.Conn) {
		defer conn.Close()
		type pending struct{ tag, v uint64 }
		var pends []pending
		for i := 0; i < n; i++ {
			payload, err := wire.ReadFrame(conn)
			if err != nil {
				t.Errorf("stub read %d: %v", i, err)
				return
			}
			r := wire.NewReader(payload)
			if kind := r.Kind(); kind != wire.KindQueryTagged {
				t.Errorf("stub read kind %d, want tagged query", kind)
				return
			}
			tag := r.Varint()
			q, err := wire.DecodeQuery(r)
			if err != nil {
				t.Errorf("stub decode %d: %v", i, err)
				return
			}
			v, err := wire.DecodeScalarPoint(q.Points[0])
			if err != nil {
				t.Errorf("stub point %d: %v", i, err)
				return
			}
			pends = append(pends, pending{tag, v})
		}
		// Answer newest-first; the query value rides back in Rounds so the
		// caller can verify it got its own result.
		for i := len(pends) - 1; i >= 0; i-- {
			_ = wire.WriteFrame(conn, wire.EncodeReplyTagged(pends[i].tag, wire.Reply{
				Rounds:  int(pends[i].v),
				Results: []wire.QueryReply{{}},
			}))
		}
	})
	client := dialNoRetry(t, addr)

	var wg sync.WaitGroup
	reps := make([]wire.Reply, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = client.Do(scalarQuery(wire.OpKNN, 1, uint64(i)+1))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if reps[i].Rounds != i+1 {
			t.Fatalf("query %d got reply %d — replies were matched by order, not tag", i, reps[i].Rounds)
		}
	}
}

// TestMuxChurnFailsOnlyInFlightTags drives the mux client through churn on
// the real serving stack: with several tagged queries parked inside
// dispatched epochs, another query on the same connection still completes
// (out-of-order, ahead of the parked ones); killing the node then fails
// exactly the parked tags — each with a retryable degraded error, never a
// poisoned connection — and after a re-join the same client produces
// bit-identical answers again.
func TestMuxChurnFailsOnlyInFlightTags(t *testing.T) {
	k := 3
	const parked = 3
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	c := startChurnCluster(t, k, 131, func() Handler {
		return &blockingHandler{entered: entered, release: release}
	})
	leader := c.fe.Leader()
	client := dialNoRetry(t, c.fe.Addr())

	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 2)), k, 2, leader)

	errCh := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func() {
			_, err := client.Do(scalarQuery(wire.OpKNN, 1, 4242))
			errCh <- err
		}()
	}
	for i := 0; i < parked; i++ {
		<-entered
	}

	// A fourth tag on the same multiplexed connection completes while the
	// three parked epochs hold their window slots.
	rep, err := client.Do(scalarQuery(wire.OpKNN, 1, 5))
	if err != nil {
		t.Fatalf("query alongside parked tags: %v", err)
	}
	checkEcho(t, rep, k, 5, leader)

	c.session(1).kill()
	close(release)
	for i := 0; i < parked; i++ {
		if err := <-errCh; err == nil || !errors.Is(err, ErrDegraded) {
			t.Fatalf("parked tag %d across the kill: got %v, want a degraded error", i, err)
		}
	}

	// The connection was not poisoned: the next query fails fast with the
	// degraded error on the same stream, and heals without a reconnect.
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 6)); err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("query in the degraded window: got %v, want a degraded error", err)
	}
	c.startNode(&blockingHandler{entered: entered, release: release}, -1)
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 7)), k, 7, leader)
	for v := uint64(8); v <= 12; v++ {
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("post-rejoin query %d: %v", v, err)
		}
		checkEcho(t, rep, k, v, leader)
	}
}

// TestClientCloseWakesDegradedRetry is the regression test for the retry
// loop sleeping through its whole RetryWait budget after Close: against a
// permanently degraded frontend and a long budget, Close must wake the
// in-flight Do promptly with the closed-client error.
func TestClientCloseWakesDegradedRetry(t *testing.T) {
	addr := stubFrontend(t, func(conn net.Conn) {
		defer conn.Close()
		for {
			tag, ok := readTaggedQuery(t, conn)
			if !ok {
				return
			}
			_ = wire.WriteFrame(conn, wire.EncodeReplyTagged(tag, wire.Reply{
				Err: "cluster degraded (1 of 2 nodes): waiting for node(s) [1]", Degraded: true,
			}))
		}
	})
	client, err := DialFrontendOptions(addr, ClientOptions{RetryWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, 7))
		errCh <- err
	}()
	// Let the call observe its first degraded reply and enter the ride-out.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	client.Close()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("Do across Close: got %v, want the closed-client error", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("Close took %v to wake the degraded retry", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Do slept through Close for the rest of its RetryWait budget")
	}
}
