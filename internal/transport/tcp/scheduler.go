package tcp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"distknn/internal/metricindex"
	"distknn/internal/obs"
	"distknn/internal/points"
	"distknn/internal/wire"
)

// This file is the frontend's epoch scheduler: the layer between the
// client-serving goroutines and the mesh. It does two jobs.
//
// Pipelined query epochs. Instead of serializing query epochs (one client
// waits for another's round trip), the scheduler keeps up to Window epochs
// in flight at once. Admission assigns each epoch its ordinal — and with it
// the deterministic per-epoch seed DeriveSeed(sessionSeed, ordinal) — in
// arrival order under the frontend lock, writes the dispatch to every
// seated node, and registers a collation job; the per-node control pumps
// push each arriving result or error frame to its job by epoch ordinal, so
// replies complete out of order without any epoch waiting on an unrelated
// one. Admission beyond the window blocks (backpressure on the client
// connection) until a slot frees. Answers are bit-identical to serialized
// execution: every algorithm is exact, and the ordinal-derived seeds steer
// only sampling and round counts, never results.
//
// Server-side batching. With ServerBatch enabled, concurrently arriving
// single-point queries that agree on (op, ℓ, point tag) coalesce into one
// lockstep batch epoch: a query joins the open bucket for its key, and the
// bucket flushes when it reaches MaxServerBatch points or after Linger —
// whichever comes first — turning the client-side KNNBatch amortization
// (shared physical rounds, one dispatch) into a free win for many small
// clients. Each coalesced query receives its own result; the epoch-wide
// cost fields (rounds, messages, bytes) of the shared epoch are reported to
// every participant.
//
// Churn interaction. A seat lost mid-flight fails exactly the epochs that
// were dispatched to it — each affected job completes with a retryable
// degraded reply — while queued and coalescing queries never consume an
// ordinal: they fail fast at admission with the usual degraded error until
// the seat heals. Close fails every queued and in-flight epoch with a
// retryable error instead of racing the control pumps.

// dispatchTimeout bounds one dispatch frame's control-connection write.
// The frontend lock is held across the write phase, so the deadline is
// what keeps a wedged node (alive but not draining its socket) from
// stalling every client — and the EvictNode that would remove it — for
// long: a healthy node's buffer takes a dispatch instantly, and even a
// MaxBatch-sized frame crosses a LAN well inside this bound.
var dispatchTimeout = 5 * time.Second

// maxWindow caps FrontendOptions.Window. The bound keeps the pipelining
// depth consistent with the mesh demultiplexer's stash budgets: a node may
// receive a couple of early frames per not-yet-started epoch per link
// (stashEpochCap), and the per-link total (stashTotalCap) must cover a
// full window of such epochs — a window beyond that could trip the
// flood-protection link kill on a healthy but lagging node.
const maxWindow = 64

// Pruner gives the frontend the metric-space geometry of the served point
// type, over wire encodings: the true distance between an encoded query
// point and an encoded shard centroid, and the true distance an encoded
// distance key represents. The distances must satisfy the triangle
// inequality — the admission test is only sound for true metrics.
// metricindex.WirePruner implements this for any served point type.
type Pruner interface {
	CenterDist(query, center []byte) (float64, error)
	KeyDist(dist uint64) float64
}

// FrontendOptions tunes the frontend's epoch scheduler.
type FrontendOptions struct {
	// Window is the maximum number of query epochs in flight at once.
	// 1 serializes epochs (the pre-scheduler behavior); the default is 8
	// and values are capped at 64 (the mesh demultiplexer's buffering is
	// budgeted for that depth).
	Window int
	// ServerBatch enables transparent server-side batching: concurrently
	// arriving single-point queries with the same (op, ℓ, tag) coalesce
	// into one lockstep batch epoch. Off by default — coalescing trades up
	// to Linger of latency for throughput.
	ServerBatch bool
	// Linger bounds how long an open coalescing bucket waits for more
	// queries before it flushes (default 500µs). Only meaningful with
	// ServerBatch.
	Linger time.Duration
	// MaxServerBatch caps a coalesced batch (default 64, at most
	// wire.MaxBatch). A full bucket flushes immediately.
	MaxServerBatch int
	// Pruner enables metric-index pruned dispatch for every query shape —
	// KNN, Classify and Regress, single points and batches alike. Each
	// point of a query first probes its nearest shard(s) for an upper bound
	// on its ℓ-th neighbor distance, and a second wave then sends each
	// remaining shard only the sub-batch of points whose admission ball can
	// intersect it — no mesh epoch, shards contacted by zero points skipped
	// entirely, answers bit-identical to full scatter (Regress replays the
	// mesh's deterministic ascending-seat fold at the frontend). Queries the
	// path cannot bound (any query while a seat lacks a metric summary, or
	// whose geometry rejects a point) run as ordinary scatter epochs. Nil
	// disables pruning.
	Pruner Pruner
	// Probes is the number of nearest shards each point contacts in the
	// pruned path's first wave (default 1). A wider probe wave tightens the
	// upper bound on overlapping clusters at the price of more wave-1
	// contacts; answers are bit-identical for any value. Only meaningful
	// with Pruner.
	Probes int
	// Metrics receives the frontend's runtime counters, gauges and
	// histograms (see metrics.go for the instrument names). Nil binds the
	// instrumentation to a private registry: the recording path is
	// identical either way, so exposing metrics cannot perturb serving.
	Metrics *obs.Registry
	// Trace collects per-epoch spans (admission → dispatch → collation →
	// reply, with seat-level arrival offsets) into the tracer's ring for
	// /trace/recent and its optional JSONL sink. Nil disables span
	// collection entirely.
	Trace *obs.Tracer
}

func (o FrontendOptions) withDefaults() FrontendOptions {
	if o.Window < 1 {
		o.Window = 8
	}
	if o.Window > maxWindow {
		o.Window = maxWindow
	}
	if o.Linger <= 0 {
		o.Linger = 500 * time.Microsecond
	}
	if o.MaxServerBatch < 1 {
		o.MaxServerBatch = 64
	}
	if o.MaxServerBatch > wire.MaxBatch {
		o.MaxServerBatch = wire.MaxBatch
	}
	if o.Probes < 1 {
		o.Probes = 1
	}
	return o
}

// scheduler pipelines query epochs over the mesh and coalesces single
// queries into batch epochs. Lock order: f.mu may be held while taking
// sched.mu (admission registers jobs under both); sched.mu is never held
// while taking f.mu — frame delivery collects any eviction it implies and
// performs it after releasing sched.mu.
type scheduler struct {
	f        *Frontend
	window   int
	linger   time.Duration
	maxBatch int
	batching bool
	probes   int // pruned path: nearest shards per point in wave 1

	fm *feMetrics  // always non-nil (private registry when unconfigured)
	tr *obs.Tracer // nil disables spans; all span methods are nil-safe

	mu       sync.Mutex
	cond     *sync.Cond // admission waits here for a free window slot
	closed   bool
	count    int // in-flight epochs
	inflight map[uint64]*epochJob
	buckets  map[bucketKey]*bucket
}

func newScheduler(f *Frontend, opts FrontendOptions) *scheduler {
	opts = opts.withDefaults()
	sched := &scheduler{
		f:        f,
		window:   opts.Window,
		linger:   opts.Linger,
		maxBatch: opts.MaxServerBatch,
		batching: opts.ServerBatch,
		probes:   opts.Probes,
		fm:       newFeMetrics(opts.Metrics),
		tr:       opts.Trace,
		inflight: make(map[uint64]*epochJob),
		buckets:  make(map[bucketKey]*bucket),
	}
	sched.cond = sync.NewCond(&sched.mu)
	return sched
}

// epochJob is one in-flight query epoch's collation state: which (seat,
// connection incarnation) pairs still owe a frame, the merged reply so far,
// and how the epoch ends. All fields are guarded by scheduler.mu until done
// closes; rep is immutable after.
type epochJob struct {
	epoch uint64
	q     wire.Query
	// direct marks one wave of a pruned query: the epoch ran without a
	// mesh round, its node results are collected raw in shares (per-seat
	// attribution intact, for the pruned path's own merge and aggregation),
	// and its window slot is owned by runPruned across both waves rather
	// than by this job.
	direct bool
	// sub maps each direct wave target to the original batch indices of the
	// points it was sent — its expected result is one entry per index, in
	// this order. Set on every direct job; nil on scatter epochs (every
	// node answers the full batch).
	sub map[int][]int
	// shares collects a direct wave's raw per-node results for the pruned
	// path. Guarded by scheduler.mu until done closes, immutable after.
	shares []wire.NodeResult

	expect    []uint64 // per node id: expected gen+1, or 0 once accounted
	expectN   int      // seats still owing a frame
	lost      []int    // seats lost mid-epoch
	lostCause error
	errMsg    string // first (origin-preferred) epoch failure
	errOrigin bool
	rep       wire.Reply
	finished  bool
	done      chan struct{}
	span      *obs.Span // epoch trace span; nil when tracing is off
}

// expectSet records that connection incarnation gen of seat id owes this
// epoch a frame.
func (job *epochJob) expectSet(id int, gen uint64) {
	if job.expect[id] == 0 {
		job.expectN++
	}
	job.expect[id] = gen + 1
}

// expectMatch reports whether seat id still owes a frame from exactly
// incarnation gen.
func (job *epochJob) expectMatch(id int, gen uint64) bool {
	return job.expect[id] == gen+1
}

// expectClear marks seat id as accounted for.
func (job *epochJob) expectClear(id int) {
	if job.expect[id] != 0 {
		job.expect[id] = 0
		job.expectN--
	}
}

// fail records the loss of one dispatched-to seat.
func (job *epochJob) fail(id int, cause error) {
	job.lost = append(job.lost, id)
	if job.lostCause == nil {
		job.lostCause = cause
	}
}

// merge folds one node's result into the job: per query its winner share,
// the leader's outcome, and the epoch cost (max rounds, total traffic). A
// direct wave's results are instead kept whole in shares — the pruned path
// needs each item's source seat for its deterministic Regress fold, so the
// flattening merge below would lose exactly the attribution it depends on.
func (job *epochJob) merge(nr wire.NodeResult) {
	if nr.Rounds > job.rep.Rounds {
		job.rep.Rounds = nr.Rounds
	}
	job.rep.Messages += nr.Messages
	job.rep.Bytes += nr.Bytes
	if job.direct {
		job.shares = append(job.shares, nr)
		return
	}
	for qi, qr := range nr.Queries {
		job.rep.Results[qi].Items = append(job.rep.Results[qi].Items, qr.Winners...)
		if nr.IsLeader {
			job.rep.Results[qi].QueryOutcome = qr.QueryOutcome
		}
	}
}

// closingReply is the retryable failure every queued, coalescing and
// in-flight query receives when the frontend shuts down mid-flight.
func closingReply() wire.Reply {
	return wire.Reply{Err: "frontend shutting down; query aborted (safe to retry)", Degraded: true}
}

// submit answers one validated client query through the scheduler. Single
// queries on a batching frontend coalesce first — the shared bucket epoch
// (like any client batch) then routes through the pruned path, so server-side
// batching and pruning compose instead of excluding each other.
func (sched *scheduler) submit(q wire.Query) wire.Reply {
	// start feeds only the latency histogram below — an obs sink — which
	// is what keeps detsource satisfied without an allow directive.
	start := time.Now()
	sched.fm.queries.Inc()
	var rep wire.Reply
	if sched.batching && len(q.Points) == 1 {
		rep = sched.coalesce(q)
	} else {
		rep = sched.execute(q)
	}
	sched.fm.latency.Observe(int64(time.Since(start)))
	switch {
	case rep.Err == "":
	case rep.Degraded:
		sched.fm.repliesDegr.Inc()
	default:
		sched.fm.repliesFail.Inc()
	}
	return rep
}

// noteCountLocked mirrors the in-flight window depth into its gauge.
// Caller holds sched.mu.
func (sched *scheduler) noteCountLocked() {
	sched.fm.inflight.Set(int64(sched.count))
}

// execute runs one (possibly batched) query: through the metric-index pruned
// path when the whole batch is boundable, else as a full-scatter epoch.
func (sched *scheduler) execute(q wire.Query) wire.Reply {
	if rep, ok := sched.runPruned(q); ok {
		return rep
	}
	return sched.run(q)
}

// run executes q as one query epoch: admission (window backpressure),
// dispatch (ordinal assignment + job registration) and collation wait.
func (sched *scheduler) run(q wire.Query) wire.Reply {
	// Degraded fast-fail before admission: a probe during an outage answers
	// immediately — even while the window is full of doomed epochs — and
	// consumes neither an ordinal nor a window slot.
	f := sched.f
	f.mu.Lock()
	rep, ok := f.degradedLocked("waiting for")
	f.mu.Unlock()
	if !ok {
		return rep
	}

	sched.mu.Lock()
	for !sched.closed && sched.count >= sched.window {
		sched.cond.Wait()
	}
	if sched.closed {
		sched.mu.Unlock()
		return closingReply()
	}
	sched.count++
	sched.fm.occupancy.Observe(int64(sched.count))
	sched.noteCountLocked()
	sched.mu.Unlock()

	job, rep := sched.dispatch(q)
	if job == nil {
		sched.mu.Lock()
		// A concurrent shutdown already reset the counter (and closed
		// gates all admission), so only a live scheduler's slot returns.
		if !sched.closed {
			sched.count--
			sched.noteCountLocked()
			sched.cond.Broadcast()
		}
		sched.mu.Unlock()
		return rep
	}
	<-job.done
	job.span.Finish()
	return job.rep
}

// dispatch assigns the epoch ordinal, ships the dispatch frame to every
// seated node and registers the collation job. It returns a nil job (and
// the reply to send instead) when the query cannot run — the cluster is
// degraded, closing, or every dispatch write failed on the spot. The job is
// registered before the first dispatch write, so a result can never arrive
// unclaimed; both locks are held across the writes, which keeps seat
// generations consistent with the expectation set.
func (sched *scheduler) dispatch(q wire.Query) (*epochJob, wire.Reply) {
	f := sched.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slots == nil || f.closed.Load() {
		return nil, closingReply()
	}
	if rep, ok := f.degradedLocked("waiting for"); !ok {
		// No epoch is consumed: the query never ran, so the seed schedule
		// of the successful query stream is unchanged by the outage.
		return nil, rep
	}
	f.epoch++
	epoch := f.epoch
	// One pooled encode, fanned out to every node: the framed bytes are
	// read-only across the concurrent writes below.
	dw := wire.GetWriter()
	dw.BeginFrame()
	wire.AppendDispatch(dw, epoch, q)
	dispatch, ferr := dw.FinishFrame()
	if ferr != nil {
		wire.PutWriter(dw)
		return nil, wire.Reply{Err: fmt.Sprintf("dispatch too large: %v", ferr)}
	}
	defer wire.PutWriter(dw)
	sched.fm.epochsAdmitted.Inc()
	job := &epochJob{
		epoch:  epoch,
		q:      q,
		expect: make([]uint64, f.k),
		rep:    wire.Reply{Results: make([]wire.QueryReply, len(q.Points))},
		done:   make(chan struct{}),
		span:   sched.tr.Begin(epoch, q.Op, len(q.Points), false),
	}
	// Register the job with its full expectation set before any write, so
	// a node answering instantly finds its job — then release sched.mu for
	// the write phase: collation of unrelated epochs (and their client
	// replies) must not queue behind these sockets. f.mu alone keeps every
	// seat's conn and gen stable across the writes.
	sched.mu.Lock()
	if sched.closed {
		// Close won the race since the f.closed check above: shutdown()
		// has already swept the inflight map, so registering now would
		// strand this job past the sweep (and mislabel its failure as
		// churn when the node connections drop).
		sched.mu.Unlock()
		return nil, closingReply()
	}
	sched.inflight[epoch] = job
	for _, s := range f.slots {
		job.expectSet(s.id, s.gen)
	}
	sched.mu.Unlock()
	// The writes run concurrently and bounded: a node that stopped
	// draining its control connection (partitioned, stopped) must fail its
	// write — and lose its seat — within one deadline rather than wedge
	// the whole frontend, including the EvictNode that would remove it.
	writeErrs := make([]error, len(f.slots))
	var writes sync.WaitGroup
	for i, s := range f.slots {
		writes.Add(1)
		go func(i int, s *feSlot) {
			defer writes.Done()
			s.conn.SetWriteDeadline(time.Now().Add(dispatchTimeout))
			_, writeErrs[i] = s.conn.Write(dispatch)
			if writeErrs[i] == nil {
				s.conn.SetWriteDeadline(time.Time{})
			}
		}(i, s)
	}
	writes.Wait()
	job.span.MarkDispatched()
	sched.mu.Lock()
	for i, s := range f.slots {
		if err := writeErrs[i]; err != nil {
			cause := fmt.Errorf("dispatch to node %d: %v", s.id, err)
			gen := s.gen
			f.markAbsentLocked(s, gen, cause)
			// The node never received this epoch: withdraw its pre-filled
			// expectation (unless the job already finished, e.g. a
			// concurrent shutdown) and fail the epochs in flight on it.
			if job.expectMatch(s.id, gen) && !job.finished {
				job.expectClear(s.id)
				job.fail(s.id, cause)
			}
			sched.seatLostLocked(s.id, gen, cause)
		}
	}
	sched.maybeFinishLocked(job)
	sched.mu.Unlock()
	return job, wire.Reply{}
}

// deliver routes one control frame from (seat id, connection incarnation
// gen) to its epoch's job. Frames for unknown epochs are leftovers of
// completed or failed epochs and are dropped; malformed frames and fatal
// mesh reports evict the implicated seat after the bookkeeping is done
// (never while holding sched.mu — see the lock-order note on scheduler).
func (sched *scheduler) deliver(id int, gen uint64, payload []byte) {
	// Peek the kind and epoch ordinal on a throwaway reader; the decoders
	// below expect the payload with only the kind byte consumed.
	peek := wire.NewReader(payload)
	kind := peek.Kind()
	epoch := peek.Varint()
	if peek.Err() != nil || (kind != wire.KindResult && kind != wire.KindError) {
		cause := fmt.Errorf("node %d sent unexpected control kind %d", id, kind)
		sched.f.evictSeat(id, gen, cause)
		return
	}
	r := wire.NewReader(payload)
	r.U8()
	type evictReq struct {
		implicated bool // echo-suppressed fatal report; else evict id itself
		lostPeer   int
		cause      error
	}
	var evict *evictReq
	sched.mu.Lock()
	job := sched.inflight[epoch]
	if job != nil && !job.expectMatch(id, gen) {
		job = nil // a stale incarnation, or the seat already reported
	}
	switch kind {
	case wire.KindResult:
		if job == nil {
			break // leftover of a finished or failed epoch
		}
		nr, derr := wire.DecodeNodeResult(r)
		// A direct wave may have sent this node only a sub-batch; its
		// result must cover exactly the points it was sent.
		want := len(job.q.Points)
		if job.sub != nil {
			want = len(job.sub[id])
		}
		if derr != nil || nr.Node != id || len(nr.Queries) != want {
			cause := fmt.Errorf("node %d sent a malformed result (%v)", id, derr)
			job.expectClear(id)
			job.fail(id, cause)
			evict = &evictReq{cause: cause}
		} else {
			job.expectClear(id)
			job.merge(nr)
			job.span.MarkSeat(id)
		}
	case wire.KindError:
		ne, derr := wire.DecodeNodeError(r)
		if derr != nil {
			if job == nil {
				break
			}
			cause := fmt.Errorf("node %d sent a malformed error", id)
			job.expectClear(id)
			job.fail(id, cause)
			evict = &evictReq{cause: cause}
			break
		}
		if job != nil {
			job.expectClear(id)
			if job.errMsg == "" || (ne.Origin && !job.errOrigin) {
				job.errMsg = fmt.Sprintf("node %d: %s", id, ne.Msg)
				job.errOrigin = ne.Origin
			}
		}
		if ne.Fatal {
			// A dead mesh, not a failed program: retire the implicated
			// seat — its holder (if alive at all) must re-join with fresh
			// links before the cluster serves again. This runs even when
			// the epoch's job already finished (e.g. it was failed the
			// moment another seat dropped): the broken link is real, and
			// ignoring the report would leave the implicated seat standing
			// until the next dispatched epoch trips over it.
			cause := fmt.Errorf("node %d reported a fatal mesh failure: %s", id, ne.Msg)
			evict = &evictReq{
				implicated: true,
				lostPeer:   ne.LostPeer,
				cause:      cause,
			}
			if job != nil {
				// The epoch died of churn, not of its program: record the
				// implicated seat as lost on this job so it finishes with
				// the retryable degraded reply — even if that seat's own
				// result already arrived before its mesh fault surfaced
				// (e.g. the node answered, then died taking a link with
				// it).
				lost := id
				if ne.LostPeer >= 0 && ne.LostPeer < sched.f.k {
					lost = ne.LostPeer
				}
				job.fail(lost, cause)
			}
		}
	default:
		// Unreachable: the peek above evicted anything that is not a
		// KindResult/KindError control frame before we got here.
	}
	if job != nil {
		sched.maybeFinishLocked(job)
	}
	sched.mu.Unlock()
	if evict != nil {
		if evict.implicated {
			sched.f.evictImplicated(id, gen, epoch, evict.lostPeer, evict.cause)
		} else {
			sched.f.evictSeat(id, gen, evict.cause)
		}
	}
}

// seatLost fails every in-flight epoch that was dispatched to connection
// incarnation gen of seat id. Every present→absent seat transition is
// followed by exactly one seatLost call for the retired incarnation.
func (sched *scheduler) seatLost(id int, gen uint64, cause error) {
	sched.mu.Lock()
	sched.seatLostLocked(id, gen, cause)
	sched.mu.Unlock()
}

func (sched *scheduler) seatLostLocked(id int, gen uint64, cause error) {
	// Fail the doomed epochs in ordinal order, not map order: each fail
	// finishes a job and releases its waiter, and releasing them oldest
	// first keeps the client-observable failure order identical run to
	// run.
	epochs := make([]uint64, 0, len(sched.inflight))
	for epoch := range sched.inflight {
		epochs = append(epochs, epoch)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, epoch := range epochs {
		job := sched.inflight[epoch]
		if job.expectMatch(id, gen) {
			job.expectClear(id)
			job.fail(id, fmt.Errorf("lost node %d mid-query: %v", id, cause))
			sched.maybeFinishLocked(job)
		}
	}
}

// maybeFinishLocked completes the job once every dispatched-to seat has
// been accounted for — or immediately when any seat was lost: the epoch is
// doomed as a unit, and the surviving nodes may be parked inside it waiting
// for the lost peer's frames, so waiting for their reports could deadlock
// the reply behind the very outage it describes. A lost seat wins
// (retryable degraded reply), then an epoch failure, then the merged
// result; late frames for a finished epoch are dropped. Caller holds
// sched.mu.
func (sched *scheduler) maybeFinishLocked(job *epochJob) {
	if job.finished || (job.expectN > 0 && len(job.lost) == 0) {
		return
	}
	job.finished = true
	switch {
	case len(job.lost) > 0:
		// The epoch was consumed but the batch failed as a unit; the
		// client may retry it (idempotent reads) once the seat heals.
		sort.Ints(job.lost)
		msg := fmt.Sprintf("cluster degraded (%d of %d nodes): lost node(s) %v",
			sched.f.k-len(job.lost), sched.f.k, job.lost)
		if job.lostCause != nil {
			msg += fmt.Sprintf(" (%v)", job.lostCause)
		}
		job.rep = wire.Reply{Err: msg, Degraded: true}
		sched.fm.epochsLost.Inc()
	case job.errMsg != "":
		job.rep = wire.Reply{Err: fmt.Sprintf("query failed: %s", job.errMsg)}
		sched.fm.epochsFailed.Inc()
	default:
		job.rep.Leader = sched.f.leader
		for qi := range job.rep.Results {
			points.SortItems(job.rep.Results[qi].Items)
			if job.q.Op != wire.OpKNN && !job.direct {
				job.rep.Results[qi].Items = nil
			}
		}
		sched.fm.meshRounds.Add(int64(job.rep.Rounds))
		sched.fm.meshMessages.Add(job.rep.Messages)
		sched.fm.meshBytes.Add(job.rep.Bytes)
	}
	job.span.MarkCollated(job.rep.Err, job.rep.Degraded)
	delete(sched.inflight, job.epoch)
	if !job.direct {
		sched.count--
		sched.noteCountLocked()
		sched.cond.Broadcast()
	}
	close(job.done)
}

// shutdown fails every queued, coalescing and in-flight query with a
// retryable closing reply and refuses later admissions. In-flight epochs
// may still complete on the nodes; their late results are dropped.
func (sched *scheduler) shutdown() {
	sched.mu.Lock()
	if sched.closed {
		sched.mu.Unlock()
		return
	}
	sched.closed = true
	//knnlint:allow detsource -- shutdown fanout: every epoch gets the identical closing reply, order unobservable
	for _, job := range sched.inflight {
		if !job.finished {
			job.finished = true
			job.rep = closingReply()
			job.span.MarkCollated(job.rep.Err, true)
			close(job.done)
		}
	}
	sched.inflight = make(map[uint64]*epochJob)
	sched.count = 0
	sched.noteCountLocked()
	var open []*bucket
	//knnlint:allow detsource -- shutdown fanout over independent buckets; each gets the same treatment
	for key, b := range sched.buckets {
		b.timer.Stop()
		delete(sched.buckets, key)
		open = append(open, b)
	}
	sched.cond.Broadcast()
	sched.mu.Unlock()
	for _, b := range open {
		b.rep = closingReply()
		close(b.done)
	}
}

// ---------------------------------------------------------------------------
// Server-side batching
// ---------------------------------------------------------------------------

// bucketKey identifies queries that may share one lockstep batch epoch: a
// wire.Query carries a single (op, ℓ, tag) for its whole batch.
type bucketKey struct {
	op  uint8
	l   int
	tag uint8
}

// bucket is one open coalescing batch: the accumulating query, the linger
// timer that flushes a partial batch, and the rendezvous the waiters share.
// The points slice is guarded by scheduler.mu until the bucket leaves the
// map; rep and solo are written exactly once, before done closes.
type bucket struct {
	q      wire.Query
	timer  *time.Timer
	done   chan struct{}
	rep    wire.Reply
	solo   []wire.Reply  // per-query fallback replies; see runBucket
	opened obs.Stopwatch // bucket open instant, for the linger histogram
}

// coalesce joins (or opens) the bucket for q's key and waits for the shared
// batch epoch's outcome. The joiner that fills the bucket runs the epoch
// itself; otherwise the linger timer flushes the partial batch.
func (sched *scheduler) coalesce(q wire.Query) wire.Reply {
	// Degraded fast-fail before joining a bucket: during an outage a
	// query answers immediately instead of lingering in a batch that is
	// doomed to the same degraded reply. A prunable session skips the fast
	// fail — its buckets run through the pruned path, which only needs the
	// seats the queries' admission balls reach, so an absent seat does not
	// doom the bucket.
	sched.f.mu.Lock()
	prunable := sched.f.prunableLocked()
	rep, ok := sched.f.degradedLocked("waiting for")
	sched.f.mu.Unlock()
	if !ok && !prunable {
		return rep
	}
	key := bucketKey{op: q.Op, l: q.L, tag: q.Tag}
	sched.mu.Lock()
	if sched.closed {
		sched.mu.Unlock()
		return closingReply()
	}
	b := sched.buckets[key]
	if b == nil {
		b = &bucket{
			q:      wire.Query{Op: q.Op, L: q.L, Tag: q.Tag},
			done:   make(chan struct{}),
			opened: obs.StartTimer(),
		}
		sched.buckets[key] = b
		b.timer = time.AfterFunc(sched.linger, func() { sched.flush(key, b) })
	}
	sched.fm.coalesced.Inc()
	idx := len(b.q.Points)
	b.q.Points = append(b.q.Points, q.Points[0])
	full := len(b.q.Points) >= sched.maxBatch
	if full {
		delete(sched.buckets, key)
		b.timer.Stop()
	}
	sched.mu.Unlock()
	if full {
		sched.runBucket(b)
	} else {
		<-b.done
	}
	return bucketReply(b, idx)
}

// flush runs a lingered partial bucket. A bucket no longer in the map was
// already flushed full (or shut down); the timer's flush stands down.
func (sched *scheduler) flush(key bucketKey, b *bucket) {
	sched.mu.Lock()
	if sched.buckets[key] != b {
		sched.mu.Unlock()
		return
	}
	delete(sched.buckets, key)
	sched.mu.Unlock()
	sched.runBucket(b)
}

// runBucket executes the coalesced batch epoch and publishes its outcome.
// A batch epoch fails as a unit, but a coalesced batch's participants are
// strangers — a client-chosen KNNBatch accepts shared fate, a coalesced
// single query must not inherit another client's bad point. So a program
// failure of the shared epoch (not churn: a degraded failure is already
// retryable for everyone) falls back to re-running each participant's
// query as its own solo epoch, isolating the error to the offender.
func (sched *scheduler) runBucket(b *bucket) {
	sched.fm.batchSize.Observe(int64(len(b.q.Points)))
	sched.fm.linger.ObserveSince(b.opened)
	rep := sched.execute(b.q)
	if rep.Err != "" && !rep.Degraded && len(b.q.Points) > 1 {
		b.solo = make([]wire.Reply, len(b.q.Points))
		for i, p := range b.q.Points {
			b.solo[i] = sched.execute(wire.Query{Op: b.q.Op, L: b.q.L, Tag: b.q.Tag, Points: [][]byte{p}})
		}
	}
	b.rep = rep
	close(b.done)
}

// bucketReply extracts one coalesced query's share of the shared batch
// outcome: its solo fallback reply if the shared epoch failed, else its
// slice of the batch reply — with the epoch-wide cost fields, which
// describe the shared epoch, reported to every participant.
func bucketReply(b *bucket, idx int) wire.Reply {
	if b.solo != nil {
		return b.solo[idx]
	}
	if b.rep.Err != "" {
		return b.rep
	}
	return wire.Reply{
		Rounds:   b.rep.Rounds,
		Messages: b.rep.Messages,
		Bytes:    b.rep.Bytes,
		Leader:   b.rep.Leader,
		Results:  []wire.QueryReply{b.rep.Results[idx]},
	}
}

// ---------------------------------------------------------------------------
// Metric-index pruned dispatch
// ---------------------------------------------------------------------------

// runPruned answers q through the pruned dispatch path when it is eligible:
// a Pruner is configured, every seat reported a metric summary, and the
// geometry can bound every point of the batch. Every query shape rides it —
// KNN, Classify and Regress, single points and whole batches alike — with
// answers bit-identical to full scatter. ok=false sends the caller to the
// ordinary scatter path.
//
// Churn semantics differ deliberately from full scatter. A scatter epoch
// needs every seat, so any absent seat fails it fast — but a pruned batch
// only needs the seats its points' balls can reach: an absent seat whose
// shard the admission test prunes for every point does not fail the query,
// while an absent seat that is selected (as a probe or by admission) fails
// it with the usual retryable degraded reply.
func (sched *scheduler) runPruned(q wire.Query) (wire.Reply, bool) {
	f := sched.f
	if f.pruner == nil {
		return wire.Reply{}, false
	}
	f.mu.Lock()
	if !f.prunableLocked() {
		f.mu.Unlock()
		return wire.Reply{}, false
	}
	// Summaries are immutable for a seat's lifetime (a re-joining node must
	// reproduce its summary bit-for-bit), so the geometry is snapshotted
	// once and used lock-free below.
	radius := make([]float64, f.k)
	center := make([][]byte, f.k)
	for i, s := range f.slots {
		radius[i] = s.summary.Radius
		center[i] = s.summary.Center
	}
	f.mu.Unlock()
	// dist[id][pi] is the true distance from batch point pi to shard id's
	// centroid.
	dist := make([][]float64, f.k)
	for id := range center {
		dist[id] = make([]float64, len(q.Points))
		for pi, p := range q.Points {
			d, err := f.pruner.CenterDist(p, center[id])
			if err != nil {
				// The geometry cannot speak for this point (e.g. a dimension
				// mismatch); full scatter runs the node-side validation and
				// reports its error.
				return wire.Reply{}, false
			}
			dist[id][pi] = d
		}
	}

	// One window slot covers both waves: the probe and the gather are
	// halves of one query, and parking the gather behind fresh admissions
	// could deadlock a full window of half-done pruned queries.
	sched.mu.Lock()
	for !sched.closed && sched.count >= sched.window {
		sched.cond.Wait()
	}
	if sched.closed {
		sched.mu.Unlock()
		return closingReply(), true
	}
	sched.count++
	sched.fm.occupancy.Observe(int64(sched.count))
	sched.noteCountLocked()
	sched.mu.Unlock()
	rep := sched.prunedBatch(q, dist, radius)
	sched.mu.Lock()
	if !sched.closed {
		sched.count--
		sched.noteCountLocked()
		sched.cond.Broadcast()
	}
	sched.mu.Unlock()
	return rep, true
}

// srcItem is one gathered winner together with the seat that holds it. The
// source seat is what lets the frontend replay the mesh's aggregation
// orders exactly — most visibly Regress's per-seat fold (regressItems).
type srcItem struct {
	points.Item
	seat int
}

// sortSrcItems orders gathered winners by key. Keys are unique (distance,
// ID) pairs, so the order is total and the merge has exactly one outcome
// regardless of which shards contributed which items.
func sortSrcItems(items []srcItem) {
	sort.Slice(items, func(i, j int) bool { return items[i].Key.Less(items[j].Key) })
}

// prunedBatch runs one admitted pruned query batch as up to two waves of
// direct no-mesh epochs. Wave 1: every point probes its Probes nearest
// present shards; the probe winners bound each point's global ℓ-th neighbor
// distance from above. Wave 2: each shard receives exactly the sub-batch of
// points whose admission ball can still intersect its centroid ball
// (metricindex.AdmitSub) — a shard admitted by zero points is skipped
// entirely. The frontend then merges and aggregates per point. Answers are
// bit-identical to full scatter: the merged local top-ℓ of the contacted
// shards provably contains each point's global top-ℓ (metricindex.Admit),
// keys are unique (distance, ID) pairs so the sorted merge has exactly one
// outcome, Classify replicates core.Classify's smallest-max-label vote, and
// Regress replays the mesh's deterministic fold over per-seat partial sums
// (regressItems). Cost reporting follows the path's own shape: Rounds
// counts dispatch waves (1 or 2), Messages the total per-point shard
// contacts — Σ over the batch of the number of shards each point was sent
// to, so Messages/len(Points) is the contacted-nodes-per-query figure;
// Bytes stays 0 (no mesh traffic) and the BSP selection stats (Survivors,
// Iterations, FellBack) do not apply.
func (sched *scheduler) prunedBatch(q wire.Query, dist [][]float64, radius []float64) wire.Reply {
	f := sched.f
	n := len(q.Points)

	// Wave 1: per point, pick the present seats nearest the point (ties
	// toward the lower id) and group the picks into per-seat sub-batches.
	f.mu.Lock()
	if f.slots == nil || f.closed.Load() {
		f.mu.Unlock()
		return closingReply()
	}
	var present []int
	for _, s := range f.slots {
		if s.present {
			present = append(present, s.id)
		}
	}
	if len(present) == 0 {
		rep, _ := f.degradedLocked("waiting for")
		f.mu.Unlock()
		return rep
	}
	f.mu.Unlock()
	probes := sched.probes
	if probes > len(present) {
		probes = len(present)
	}
	// contacted[id][pi] records that point pi was sent to seat id in wave
	// 1, so wave 2's admission skips the pair; nil until seat id is probed
	// by any point.
	contacted := make([][]bool, f.k)
	wave1 := make([][]int, f.k)
	chosen := make([]bool, f.k)
	for pi := 0; pi < n; pi++ {
		for t := 0; t < probes; t++ {
			best := -1
			for _, id := range present {
				if !chosen[id] && (best == -1 || dist[id][pi] < dist[best][pi]) {
					best = id
				}
			}
			chosen[best] = true
			if contacted[best] == nil {
				contacted[best] = make([]bool, n)
			}
			contacted[best][pi] = true
			wave1[best] = append(wave1[best], pi)
		}
		for _, id := range present {
			chosen[id] = false
		}
	}
	var contacts int64
	for _, sub := range wave1 {
		contacts += int64(len(sub))
	}
	job, rep := sched.dispatchDirectWave(q, wave1)
	if job == nil {
		return rep
	}
	<-job.done
	job.span.Finish()
	if job.rep.Err != "" {
		return job.rep
	}
	got := make([][]srcItem, n)
	collectShares(got, job)
	ub := make([]float64, n)
	for pi := range got {
		sortSrcItems(got[pi])
		ub[pi] = math.Inf(1)
		if len(got[pi]) >= q.L {
			ub[pi] = f.pruner.KeyDist(got[pi][q.L-1].Key.Dist)
		}
	}

	// Wave 2: each shard gets the sub-batch of points whose ℓ-NN ball can
	// intersect its centroid ball. With no bound for a point (its probe
	// shards held fewer than ℓ points) every shard admits it and that point
	// degenerates to a no-mesh scatter — still correct, just not cheaper.
	wave2 := make([][]int, f.k)
	wave2Any := false
	for id := 0; id < f.k; id++ {
		wave2[id] = metricindex.AdmitSub(dist[id], ub, radius[id], contacted[id])
		if len(wave2[id]) > 0 {
			wave2Any = true
			contacts += int64(len(wave2[id]))
		}
	}
	rounds := 1
	if wave2Any {
		rounds = 2
		job2, rep2 := sched.dispatchDirectWave(q, wave2)
		if job2 == nil {
			return rep2
		}
		<-job2.done
		job2.span.Finish()
		if job2.rep.Err != "" {
			return job2.rep
		}
		collectShares(got, job2)
		for pi := range got {
			sortSrcItems(got[pi])
		}
	}

	results := make([]wire.QueryReply, n)
	for pi := range results {
		items := got[pi]
		if len(items) > q.L {
			items = items[:q.L]
		}
		qr := &results[pi]
		qr.Boundary = items[len(items)-1].Key
		switch q.Op {
		case wire.OpKNN:
			flat := make([]points.Item, len(items))
			for i, it := range items {
				flat[i] = it.Item
			}
			qr.Items = flat
		case wire.OpClassify:
			qr.Value = classifyItems(items)
		case wire.OpRegress:
			qr.Value = regressItems(items, f.k, f.leader)
		}
	}
	// Contacts and skips are recorded only for a query that answers: the
	// counter then matches the Σ of client-observed QueryStats.Contacts.
	sched.fm.pruneWaves.Add(int64(rounds))
	sched.fm.pruneContacts.Add(contacts)
	var skipped int64
	for id := 0; id < f.k; id++ {
		if len(wave1[id]) == 0 && len(wave2[id]) == 0 {
			skipped++
		}
	}
	sched.fm.pruneSkipped.Add(skipped)
	return wire.Reply{
		Rounds:   rounds,
		Messages: contacts,
		Leader:   f.leader,
		Results:  results,
	}
}

// collectShares unpacks one direct wave's raw node results into the
// per-point gather: a node's result entries map by position through the
// sub-batch the wave sent it (deliver has already verified the counts
// match).
func collectShares(got [][]srcItem, job *epochJob) {
	for _, nr := range job.shares {
		sub := job.sub[nr.Node]
		for si, qr := range nr.Queries {
			for _, it := range qr.Winners {
				got[sub[si]] = append(got[sub[si]], srcItem{Item: it, seat: nr.Node})
			}
		}
	}
}

// classifyItems replicates core.Classify's aggregation over the merged
// global winners: the most frequent label, ties toward the smallest.
func classifyItems(items []srcItem) float64 {
	hist := make(map[float64]int64, 4)
	for _, it := range items {
		hist[it.Label]++
	}
	labels := make([]float64, 0, len(hist))
	for label := range hist {
		labels = append(labels, label)
	}
	sort.Float64s(labels)
	var best float64
	var bestCount int64 = -1
	for _, label := range labels {
		if hist[label] > bestCount {
			best, bestCount = label, hist[label]
		}
	}
	return best
}

// regressItems replays core.Regress's leader-side fold bit-for-bit over the
// merged global winners. In a full-scatter epoch each seat's winner share
// is exactly its slice of the global top-ℓ in ascending key order: the
// leader folds its own share item by item from zero, then adds the other
// seats' partial sums — a seat with no winners sends an exact 0.0 — in the
// mesh's deterministic delivery order, ascending seat id. The pruned path
// holds the same items tagged with their source seats, so it rebuilds each
// seat's partial in ascending key order (the iteration order of the sorted
// merge) and folds the partials in the same sequence; a seat the admission
// test pruned holds no global winners by the metric-index argument, so its
// implied 0.0 partial matches full scatter too. float64 addition is neither
// associative nor commutative under rounding, which is why the order is
// pinned this precisely.
func regressItems(items []srcItem, k, leader int) float64 {
	partial := make([]float64, k)
	count := make([]int64, k)
	for _, it := range items {
		partial[it.seat] += it.Label
		count[it.seat]++
	}
	sum, total := partial[leader], count[leader]
	for id := 0; id < k; id++ {
		if id != leader {
			sum += partial[id]
			total += count[id]
		}
	}
	return sum / float64(total)
}

// dispatchDirectWave assigns an epoch ordinal and ships one direct
// (no-mesh) wave of a pruned query: seat id receives exactly the sub-batch
// subs[id] of q's points, and a seat with an empty sub-batch is not
// contacted at all. When every contacted seat receives the full batch —
// always true for a single-point query — the wave is encoded once as a
// KindDispatchDirect frame and fanned out; otherwise each target gets its
// own KindDispatchDirectSub frame carrying its sub-batch and the points'
// original indices. A collation job expecting one result frame per target
// is registered before any write. The wave mirrors dispatch with one
// deliberate difference: only the targets must be present. A missing target
// fails the query with the retryable degraded reply naming it; any other
// absent seat is invisible here, because the admission test already proved
// its shard irrelevant to this wave.
func (sched *scheduler) dispatchDirectWave(q wire.Query, subs [][]int) (*epochJob, wire.Reply) {
	f := sched.f
	var targets []int
	full := true
	for id, sub := range subs {
		if len(sub) == 0 {
			continue
		}
		targets = append(targets, id)
		if len(sub) != len(q.Points) {
			full = false
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slots == nil || f.closed.Load() {
		return nil, closingReply()
	}
	var absent []int
	var lossCause error
	for _, id := range targets {
		if s := f.slots[id]; !s.present {
			absent = append(absent, id)
			if lossCause == nil {
				lossCause = s.lastLoss
			}
		}
	}
	if len(absent) > 0 {
		msg := fmt.Sprintf("cluster degraded (%d of %d nodes): pruned query needs node(s) %v", f.k-len(absent), f.k, absent)
		if lossCause != nil {
			msg += fmt.Sprintf(" (%v)", lossCause)
		}
		return nil, wire.Reply{Err: msg, Degraded: true}
	}
	f.epoch++
	epoch := f.epoch
	// Frame building reuses the pooled writers of the scatter path. A full
	// wave is the encode-once fan-out: one read-only frame shared by every
	// write below. A sub-batched wave builds one frame per target (each
	// carries different points); the writers stay checked out until the
	// writes are done, because the framed bytes alias their buffers.
	writers := make([]*wire.Writer, 0, len(targets))
	defer func() {
		for _, dw := range writers {
			wire.PutWriter(dw)
		}
	}()
	frames := make([][]byte, len(targets))
	if full {
		dw := wire.GetWriter()
		dw.BeginFrame()
		wire.AppendDispatchDirect(dw, epoch, q)
		frame, ferr := dw.FinishFrame()
		if ferr != nil {
			wire.PutWriter(dw)
			return nil, wire.Reply{Err: fmt.Sprintf("dispatch too large: %v", ferr)}
		}
		writers = append(writers, dw)
		for i := range frames {
			frames[i] = frame
		}
	} else {
		var pts [][]byte
		for i, id := range targets {
			sub := subs[id]
			pts = pts[:0]
			for _, pi := range sub {
				pts = append(pts, q.Points[pi])
			}
			dw := wire.GetWriter()
			dw.BeginFrame()
			wire.AppendDispatchDirectSub(dw, epoch, sub, wire.Query{Op: q.Op, L: q.L, Tag: q.Tag, Points: pts})
			frame, ferr := dw.FinishFrame()
			if ferr != nil {
				wire.PutWriter(dw)
				return nil, wire.Reply{Err: fmt.Sprintf("dispatch too large: %v", ferr)}
			}
			writers = append(writers, dw)
			frames[i] = frame
		}
	}
	sched.fm.epochsAdmitted.Inc()
	job := &epochJob{
		epoch:  epoch,
		q:      q,
		direct: true,
		sub:    make(map[int][]int, len(targets)),
		expect: make([]uint64, f.k),
		done:   make(chan struct{}),
		span:   sched.tr.Begin(epoch, q.Op, len(q.Points), true),
	}
	for _, id := range targets {
		job.sub[id] = subs[id]
	}
	sched.mu.Lock()
	if sched.closed {
		sched.mu.Unlock()
		return nil, closingReply()
	}
	sched.inflight[epoch] = job
	for _, id := range targets {
		job.expectSet(id, f.slots[id].gen)
	}
	sched.mu.Unlock()
	// Bounded writes, exactly like dispatch: a target that stopped draining
	// its control connection loses its seat within one deadline instead of
	// wedging the frontend. A one-target wave — the common case for a
	// pruned single query — writes inline, skipping the goroutine fan-out
	// and its allocations.
	writeErrs := make([]error, len(targets))
	if len(targets) == 1 {
		s := f.slots[targets[0]]
		s.conn.SetWriteDeadline(time.Now().Add(dispatchTimeout))
		//knnlint:allow lockio -- deadline-bounded inline dispatch write; f.mu keeps the seat's conn/gen stable across it
		_, writeErrs[0] = s.conn.Write(frames[0])
		if writeErrs[0] == nil {
			s.conn.SetWriteDeadline(time.Time{})
		}
	} else {
		var writes sync.WaitGroup
		for i, id := range targets {
			writes.Add(1)
			go func(i int, s *feSlot) {
				defer writes.Done()
				s.conn.SetWriteDeadline(time.Now().Add(dispatchTimeout))
				_, writeErrs[i] = s.conn.Write(frames[i])
				if writeErrs[i] == nil {
					s.conn.SetWriteDeadline(time.Time{})
				}
			}(i, f.slots[id])
		}
		writes.Wait()
	}
	job.span.MarkDispatched()
	sched.mu.Lock()
	for i, id := range targets {
		if err := writeErrs[i]; err != nil {
			s := f.slots[id]
			cause := fmt.Errorf("dispatch to node %d: %v", s.id, err)
			gen := s.gen
			f.markAbsentLocked(s, gen, cause)
			if job.expectMatch(s.id, gen) && !job.finished {
				job.expectClear(s.id)
				job.fail(s.id, cause)
			}
			sched.seatLostLocked(s.id, gen, cause)
		}
	}
	sched.maybeFinishLocked(job)
	sched.mu.Unlock()
	return job, wire.Reply{}
}
