package tcp

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// This file implements lockstep batch epochs: one BSP epoch that answers a
// whole dispatched query batch. Every query of the batch runs as its own
// sub-program against the full kmachine.Env surface, but all sub-programs
// share the epoch's physical rounds — their per-round messages are
// multiplexed into the one frame per peer, tagged with the query index, and
// demultiplexed on arrival. A batch of b queries therefore costs
// max(rounds over the b queries) physical round exchanges instead of their
// sum: frames, syscalls and per-round latency are amortized b-fold, which
// is what makes batched dispatch the wire-native query shape worth having.
//
// The BSP semantics per query are unchanged. Every sub-program starts at
// physical round 0 and advances exactly one physical round per EndRound, so
// a sub-program's logical round always equals the physical round while it
// runs; a message sent in its round r is delivered to the peer sub-program
// in round r+1 exactly as in a solo epoch. Sub-program q draws its private
// randomness from DeriveSeed(epochSeed, q) — deterministic per (session
// seed, epoch, query index) — and only ever observes its own messages in
// per-sender order, so its protocol decisions are independent of how the
// runtime interleaves the batch. Results are exact either way, and
// bit-identical to the same queries asked one per epoch.

// batchRun coordinates the sub-programs of one lockstep epoch. The last
// active sub-program to arrive at the round barrier performs the physical
// exchange on behalf of everyone.
type batchRun struct {
	er   *epochRun
	mu   sync.Mutex
	cond *sync.Cond

	active   int // sub-programs still running
	waiting  int // sub-programs parked at the round barrier
	gen      uint64
	err      error // sticky epoch failure; wakes and aborts every sub-program
	subInbox [][]kmachine.Message
}

// lockstep runs one sub-program per query of the batch and multiplexes
// their rounds. It is the body runBatch hands to epochRun.execute, so a
// returned error travels the usual epoch-failure path (error frames to
// peers, KindError to the frontend).
func (er *epochRun) lockstep(epochSeed uint64, progs []kmachine.Program) error {
	r := &batchRun{er: er, active: len(progs), subInbox: make([][]kmachine.Message, len(progs))}
	r.cond = sync.NewCond(&r.mu)
	errs := make([]error, len(progs))
	var wg sync.WaitGroup
	for qi := range progs {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			s := &subEnv{
				r:   r,
				qi:  qi,
				rng: xrand.NewStream(xrand.DeriveSeed(epochSeed, uint64(qi)), uint64(er.n.id)),
			}
			errs[qi] = s.run(progs[qi])
			r.finish(s, errs[qi])
		}(qi)
	}
	wg.Wait()
	// Prefer the run-level error (a transport fault or peer abort observed
	// at the shared exchange) over per-query program errors; either way
	// the first failure wins, like a solo epoch.
	if r.err != nil {
		return r.err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finish retires one sub-program: its unflushed sends still travel (with
// the next exchange, or the epoch's final halt frame), and if every
// remaining sub-program is already parked at the barrier, the retiree
// triggers the exchange they are waiting for.
func (r *batchRun) finish(s *subEnv, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.flushLocked()
	r.active--
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		r.cond.Broadcast()
		return
	}
	if r.err == nil && r.active > 0 && r.waiting == r.active {
		r.roundLocked()
	}
}

// roundLocked performs one physical round exchange on behalf of every
// waiting sub-program and distributes the delivered messages by tag. The
// caller holds r.mu; sub-programs parked in cond.Wait have released it.
// A transport fault or peer abort panics out of the exchange — it is
// converted into the sticky run error and every sub-program is woken to
// abort.
func (r *batchRun) roundLocked() {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				r.err = e
			} else {
				r.err = fmt.Errorf("tcp: node %d batch exchange panicked: %v", r.er.n.id, rec)
			}
		}
		r.gen++
		r.waiting = 0
		r.cond.Broadcast()
	}()
	r.er.EndRound()
	for _, msg := range r.er.Recv() {
		rd := wire.NewReader(msg.Payload)
		qi := int(rd.Varint())
		payload := rd.Raw(rd.Remaining())
		if rd.Err() != nil || qi < 0 || qi >= len(r.subInbox) {
			panic(transportFault(msg.From, fmt.Errorf("tcp: node %d got mis-tagged batch message from %d", r.er.n.id, msg.From)))
		}
		r.subInbox[qi] = append(r.subInbox[qi], kmachine.Message{From: msg.From, To: msg.To, Payload: payload})
	}
}

// subEnv is the kmachine.Env one sub-program sees: same identity as the
// node, private randomness, and messaging that is multiplexed onto the
// shared physical rounds.
type subEnv struct {
	r   *batchRun
	qi  int
	rng *rand.Rand

	pending []kmachine.Message
	out     []taggedSend
	msgs    int64
	bytes   int64
}

var _ kmachine.Env = (*subEnv)(nil)

type taggedSend struct {
	to      int
	payload []byte
}

// run executes the sub-program, converting panics (including the sticky
// run error re-panicked by a blocked EndRound) into ordinary errors.
func (s *subEnv) run(prog kmachine.Program) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("tcp: node %d query %d panicked: %v", s.r.er.n.id, s.qi, rec)
			}
		}
	}()
	return prog(s)
}

// ID returns the node's machine index.
func (s *subEnv) ID() int { return s.r.er.n.id }

// K returns the cluster size.
func (s *subEnv) K() int { return s.r.er.n.k }

// GUID returns the node's epoch GUID (query protocols never use it; the
// setup election runs as a solo epoch).
func (s *subEnv) GUID() uint64 { return s.r.er.guid }

// Rand returns the sub-program's private random stream, derived from
// (epoch seed, query index, machine id).
func (s *subEnv) Rand() *rand.Rand { return s.rng }

// Round returns the current physical (== logical) round.
func (s *subEnv) Round() int {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return s.r.er.round
}

// Send queues payload for machine `to` next round, tagged with the query
// index so the receiving node can route it to the right sub-program.
func (s *subEnv) Send(to int, payload []byte) {
	n := s.r.er.n
	if to < 0 || to >= n.k {
		panic(fmt.Sprintf("tcp: node %d sending to out-of-range %d", n.id, to))
	}
	if to == n.id {
		panic(fmt.Sprintf("tcp: node %d sending to itself", n.id))
	}
	// One exact-size allocation for tag + payload: the tagged copy must
	// outlive this call (it rides a later exchange frame), so it cannot be
	// pooled, but it need not grow through append doublings either.
	var w wire.Writer
	w.Grow(10 + len(payload)) // varint tag ≤ 10 bytes
	w.Varint(uint64(s.qi))
	w.Raw(payload)
	s.out = append(s.out, taggedSend{to: to, payload: w.Bytes()})
	s.msgs++
	// Charge the protocol payload only: the tag is transport framing, so
	// metrics stay comparable with solo epochs.
	s.bytes += int64(len(payload) + kmachine.MessageOverheadBytes)
}

// Broadcast sends payload to every other machine.
func (s *subEnv) Broadcast(payload []byte) {
	for to := 0; to < s.r.er.n.k; to++ {
		if to != s.r.er.n.id {
			s.Send(to, payload)
		}
	}
}

// flushLocked moves the sub-program's queued sends into the epoch outbox the
// next physical exchange ships, and folds its message counts into the epoch
// metrics. Caller holds r.mu.
func (s *subEnv) flushLocked() {
	for _, t := range s.out {
		s.r.er.outbox[t.to] = append(s.r.er.outbox[t.to], t.payload)
	}
	s.out = s.out[:0]
	s.r.er.metrics.Messages += s.msgs
	s.r.er.metrics.Bytes += s.bytes
	s.msgs, s.bytes = 0, 0
}

// EndRound commits this sub-program's sends and blocks until the shared
// physical round completes. The last active sub-program to arrive performs
// the exchange for everyone.
func (s *subEnv) EndRound() {
	r := s.r
	r.mu.Lock()
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		panic(err)
	}
	s.flushLocked()
	gen := r.gen
	r.waiting++
	if r.waiting == r.active {
		r.roundLocked()
	} else {
		for r.gen == gen && r.err == nil {
			r.cond.Wait()
		}
	}
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		panic(err)
	}
	s.pending = append(s.pending, r.subInbox[s.qi]...)
	r.subInbox[s.qi] = nil
	r.mu.Unlock()
}

// Recv takes this round's messages for this sub-program.
func (s *subEnv) Recv() []kmachine.Message {
	in := s.pending
	s.pending = nil
	return in
}

// Gather advances rounds until n messages have been received.
func (s *subEnv) Gather(want int) []kmachine.Message {
	got := s.Recv()
	for len(got) < want {
		s.EndRound()
		got = append(got, s.Recv()...)
	}
	return got
}

// WaitAny advances rounds until at least one message arrives.
func (s *subEnv) WaitAny() []kmachine.Message { return s.Gather(1) }

// runBatch executes the batch's sub-programs as one isolated lockstep epoch
// — the batched counterpart of epochRun.execute, with the same epoch-failure
// path.
func (er *epochRun) runBatch(epochSeed uint64, progs []kmachine.Program) error {
	return er.execute(func(kmachine.Env) error { return er.lockstep(epochSeed, progs) })
}
