package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"distknn/internal/wire"
)

// defaultRetryWait is the degraded-retry budget when
// ClientOptions.RetryWait is zero.
const defaultRetryWait = 500 * time.Millisecond

// degradedRetryInterval spaces the probes of a degraded-retry budget. The
// frontend answers degraded probes immediately (no epoch runs), so polling
// is cheap and the call returns as soon as the lost node re-joins.
const degradedRetryInterval = 100 * time.Millisecond

// ClientOptions tunes a Client's deadlines and failure handling.
type ClientOptions struct {
	// Timeout bounds each attempt's network activity — dial, query write
	// and reply read — so a hung frontend fails the call instead of
	// blocking it forever. Zero means no deadline.
	Timeout time.Duration
	// RetryWait is the budget for riding out a degraded cluster: Do keeps
	// retrying a degraded failure at short intervals until it succeeds or
	// RetryWait has elapsed, returning as soon as the lost node re-joins.
	// Zero means the default (500ms); negative means a single immediate
	// retry.
	RetryWait time.Duration
	// NoRetry disables the automatic retry entirely: the first failure of
	// any kind is returned to the caller.
	NoRetry bool
}

// Client is a remote handle on a serving cluster: it speaks the
// query/reply half of the protocol over one connection. Queries on one
// Client are serialized (one request/reply in flight per connection); it
// is safe for concurrent use, but callers that want the frontend's epoch
// pipelining to overlap their queries should use one Client per
// goroutine.
//
// The client survives churn on both sides of its connection. A transport or
// framing failure poisons the connection — it is closed and never reused
// mid-stream, so a desynchronized reply can't be misparsed as the next
// one — and Do reconnects and retries the query once (every query op is an
// idempotent read, so a retry is safe even if the first attempt executed).
// A degraded reply (the cluster lost a node; errors.Is(err, ErrDegraded))
// is retried within the RetryWait budget, riding out a quick re-join.
type Client struct {
	addr string
	opts ClientOptions

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialFrontend connects to a serving frontend with default options.
func DialFrontend(addr string) (*Client, error) {
	return DialFrontendOptions(addr, ClientOptions{})
}

// DialFrontendOptions connects to a serving frontend.
func DialFrontendOptions(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connectLocked() error {
	d := net.Dialer{Timeout: c.opts.Timeout}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("tcp: dial frontend: %w", err)
	}
	c.conn = conn
	return nil
}

// poisonLocked discards the connection after a transport or framing
// failure: the stream may be mid-frame, so reusing it would misparse
// garbage. The next attempt reconnects.
func (c *Client) poisonLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Do sends one query and waits for the reply. A Reply with a non-empty Err
// is returned as a Go error; degraded-cluster errors match
// errors.Is(err, ErrDegraded). See Client for the retry semantics.
func (c *Client) Do(q wire.Query) (wire.Reply, error) {
	rep, transport, err := c.attempt(q)
	if err == nil || c.opts.NoRetry {
		return rep, err
	}
	if !errors.Is(err, ErrDegraded) {
		if !transport {
			// A remote validation or program error — deterministic, not
			// worth a retry. (Or the client is closed.)
			return wire.Reply{}, err
		}
		// Poisoned or never connected: the next attempt reconnects. A
		// degraded reply on the fresh connection still gets the full
		// RetryWait ride-out below — a frontend restart surfaces as a
		// transport failure followed by a degraded window.
		if rep, _, err = c.attempt(q); err == nil || !errors.Is(err, ErrDegraded) {
			return rep, err
		}
	}
	budget := c.opts.RetryWait
	if budget == 0 {
		budget = defaultRetryWait
	}
	if budget < 0 {
		rep, _, err = c.attempt(q)
		return rep, err
	}
	deadline := time.Now().Add(budget)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return wire.Reply{}, err
		}
		wait := degradedRetryInterval
		if wait > remaining {
			wait = remaining
		}
		// The sleep runs outside the client lock: concurrent queries (and
		// Close) are not queued behind one caller's ride-out budget.
		time.Sleep(wait)
		rep, _, rerr := c.attempt(q)
		if rerr == nil {
			return rep, nil
		}
		if !errors.Is(rerr, ErrDegraded) {
			return wire.Reply{}, rerr
		}
		err = rerr
	}
}

// attempt runs one locked query round trip. transport reports whether the
// failure poisoned the connection (a dial, I/O or framing fault — worth a
// reconnect retry), as opposed to a deterministic remote error or a closed
// client.
func (c *Client) attempt(q wire.Query) (rep wire.Reply, transport bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, err = c.attemptLocked(q)
	return rep, err != nil && !c.closed && c.conn == nil, err
}

// attemptLocked runs one query round trip, reconnecting first if the
// previous attempt poisoned the connection.
func (c *Client) attemptLocked(q wire.Query) (wire.Reply, error) {
	if c.closed {
		return wire.Reply{}, fmt.Errorf("tcp: client is closed")
	}
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return wire.Reply{}, err
		}
	}
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := wire.WriteFrame(c.conn, wire.EncodeQuery(q)); err != nil {
		c.poisonLocked()
		return wire.Reply{}, fmt.Errorf("tcp: send query: %w", err)
	}
	payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		c.poisonLocked()
		return wire.Reply{}, fmt.Errorf("tcp: read reply: %w", err)
	}
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	r := wire.NewReader(payload)
	if kind := r.U8(); kind != wire.KindReply {
		c.poisonLocked()
		return wire.Reply{}, fmt.Errorf("tcp: expected reply, got kind %d", kind)
	}
	rep, err := wire.DecodeReply(r)
	if err != nil {
		c.poisonLocked()
		return wire.Reply{}, fmt.Errorf("tcp: bad reply: %w", err)
	}
	if rep.Err != "" {
		if rep.Degraded {
			return wire.Reply{}, fmt.Errorf("tcp: remote: %s: %w", rep.Err, ErrDegraded)
		}
		return wire.Reply{}, fmt.Errorf("tcp: remote: %s", rep.Err)
	}
	return rep, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// LocalCluster is an in-process serving deployment over loopback sockets:
// one frontend plus k resident nodes, each on its own goroutine. It exists
// for tests, benchmarks and single-binary demos of the serving path.
type LocalCluster struct {
	fe       *Frontend
	serveErr chan error
	wg       sync.WaitGroup

	mu       sync.Mutex
	nodeErrs []error

	closeOnce sync.Once
	closeErr  error
}

// ServeLocal starts a loopback serving cluster with default
// FrontendOptions. newHandler builds one Handler per node (each node needs
// its own instance, since a Handler keeps per-node state); node identities
// are assigned at join time, so handlers must discover their shard through
// the Env they are given. The cluster is ready to serve (and Addr dialable
// by clients) when ServeLocal returns.
func ServeLocal(k int, seed uint64, newHandler func() Handler) (*LocalCluster, error) {
	return ServeLocalOptions(k, seed, FrontendOptions{}, newHandler)
}

// ServeLocalOptions starts a loopback serving cluster with an explicit
// epoch scheduler configuration (pipelining window, server-side batching).
func ServeLocalOptions(k int, seed uint64, opts FrontendOptions, newHandler func() Handler) (*LocalCluster, error) {
	fe, err := NewFrontendOptions("127.0.0.1:0", k, seed, opts)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{fe: fe, serveErr: make(chan error, 1)}
	go func() { lc.serveErr <- fe.Serve() }()
	for i := 0; i < k; i++ {
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			// A lost session (the node was evicted, or the frontend died
			// first) is expected churn, not a cluster failure: the caller
			// that evicted the node re-joins it — or meant to drop it.
			if err := ServeNode(fe.Addr(), "127.0.0.1:0", "", newHandler()); err != nil && !errors.Is(err, ErrSessionLost) {
				lc.mu.Lock()
				lc.nodeErrs = append(lc.nodeErrs, err)
				lc.mu.Unlock()
			}
		}()
	}
	// Wait until the session is ready (or failed) before handing it out.
	<-fe.ready
	if fe.readyErr != nil {
		err := fe.readyErr
		lc.Close()
		return nil, err
	}
	return lc, nil
}

// Addr returns the frontend address clients should dial.
func (lc *LocalCluster) Addr() string { return lc.fe.Addr() }

// Leader returns the elected leader machine.
func (lc *LocalCluster) Leader() int { return lc.fe.Leader() }

// EvictNode forcibly retires node id (see Frontend.EvictNode); re-join it
// with a fresh ServeNode against Addr.
func (lc *LocalCluster) EvictNode(id int) error { return lc.fe.EvictNode(id) }

// Close shuts the cluster down and reports the first failure observed by
// the frontend or any node. It is idempotent: every call returns the same
// result, and none of them blocks on work a previous call already drained.
func (lc *LocalCluster) Close() error {
	lc.closeOnce.Do(func() {
		lc.fe.Close()
		err := <-lc.serveErr
		lc.wg.Wait()
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if err != nil {
			lc.closeErr = err
			return
		}
		if len(lc.nodeErrs) > 0 {
			lc.closeErr = lc.nodeErrs[0]
		}
	})
	return lc.closeErr
}
