package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"distknn/internal/obs"
	"distknn/internal/wire"
)

// defaultRetryWait is the degraded-retry budget when
// ClientOptions.RetryWait is zero.
const defaultRetryWait = 500 * time.Millisecond

// degradedRetryInterval spaces the probes of a degraded-retry budget. The
// frontend answers degraded probes immediately (no epoch runs), so polling
// is cheap and the call returns as soon as the lost node re-joins.
const degradedRetryInterval = 100 * time.Millisecond

// errClientClosed reports a call on (or interrupted by) a closed client.
var errClientClosed = errors.New("tcp: client is closed")

// timeoutError is the per-call deadline failure. It implements net.Error
// so callers can detect timeouts portably with errors.As.
type timeoutError struct{ after time.Duration }

func (e *timeoutError) Error() string   { return fmt.Sprintf("tcp: query timed out after %v", e.after) }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// ClientOptions tunes a Client's deadlines and failure handling.
type ClientOptions struct {
	// Timeout bounds each attempt — dial, queueing behind other writers,
	// and the wait for the reply — so a hung frontend fails the call
	// instead of blocking it forever. It is a per-call deadline: when it
	// expires only this call's waiter is abandoned (a late reply to its
	// tag is discarded); the shared connection and the other outstanding
	// calls are untouched. Zero means no deadline.
	Timeout time.Duration
	// RetryWait is the budget for riding out a degraded cluster: Do keeps
	// retrying a degraded failure at short intervals until it succeeds or
	// RetryWait has elapsed, returning as soon as the lost node re-joins.
	// Zero means the default (500ms); negative means a single immediate
	// retry.
	RetryWait time.Duration
	// NoRetry disables the automatic retry entirely: the first failure of
	// any kind is returned to the caller.
	NoRetry bool
	// Metrics receives the client's runtime counters (queries, retries,
	// degraded replies, reconnects, timeouts, outstanding tags — see
	// metrics.go). Nil binds the instrumentation to a private registry.
	Metrics *obs.Registry
}

// Client is a remote handle on a serving cluster: it speaks the
// query/reply half of the protocol over one multiplexed connection. Every
// query carries a client-chosen tag (wire.KindQueryTagged) and the
// frontend's tagged replies may arrive in any order, so any number of
// goroutines can have queries outstanding on the same Client at once —
// one process saturates the frontend's epoch-pipelining window over a
// single socket. One goroutine writes frames, one reads them; a tag →
// waiter table routes each reply to its caller.
//
// The client survives churn on both sides of its connection. A transport
// or framing failure poisons the connection — it is closed and never
// reused mid-stream, so a desynchronized reply can't be misparsed — and
// every in-flight waiter fails with a retryable transport error; each
// affected Do reconnects (lazily, on its retry) and retries its query
// once, which is safe because every query op is an idempotent read. A
// degraded reply (the cluster lost a node; errors.Is(err, ErrDegraded))
// is retried within the RetryWait budget, riding out a quick re-join.
// Close wakes every in-flight call and every degraded-retry sleep
// promptly.
type Client struct {
	addr string
	opts ClientOptions
	cm   *clientMetrics

	closedCh chan struct{} // closed by Close; wakes calls and retry sleeps

	mu     sync.Mutex
	mc     *muxConn // live connection incarnation; nil until (re)dialed
	dialed bool     // a connection has succeeded before (reconnect accounting)
	closed bool
}

// muxResult is what the read loop delivers to one waiter: a fully decoded
// reply (owning its memory — nothing aliases the read buffer), or the
// poison error that killed the connection.
type muxResult struct {
	rep wire.Reply
	err error
}

// muxConn is one connection incarnation of a Client: a socket plus the
// writer goroutine, the reader goroutine and the tag → waiter table that
// multiplex concurrent calls over it. A muxConn is immutable except
// through its mutex; once poisoned it is discarded and the Client dials a
// fresh incarnation on the next attempt.
type muxConn struct {
	c       *Client
	conn    net.Conn
	writeCh chan *wire.Writer // encoded frames, owned by the writer goroutine
	dead    chan struct{}     // closed by poison: wakes the writer and queued callers

	mu      sync.Mutex
	nextTag uint64
	waiters map[uint64]chan muxResult
	broken  error // first poison cause; non-nil refuses new calls
}

// DialFrontend connects to a serving frontend with default options.
func DialFrontend(addr string) (*Client, error) {
	return DialFrontendOptions(addr, ClientOptions{})
}

// DialFrontendOptions connects to a serving frontend.
func DialFrontendOptions(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts, cm: newClientMetrics(opts.Metrics), closedCh: make(chan struct{})}
	if _, err := c.conn(); err != nil {
		return nil, err
	}
	return c, nil
}

// conn returns the live connection incarnation, dialing a fresh one if the
// previous was poisoned (or none exists yet).
func (c *Client) conn() (*muxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.mc != nil {
		return c.mc, nil
	}
	d := net.Dialer{Timeout: c.opts.Timeout}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial frontend: %w", err)
	}
	if c.dialed {
		c.cm.reconnects.Inc()
	}
	c.dialed = true
	m := &muxConn{
		c:       c,
		conn:    conn,
		writeCh: make(chan *wire.Writer, 16),
		dead:    make(chan struct{}),
		nextTag: 1,
		waiters: make(map[uint64]chan muxResult),
	}
	go m.writeLoop()
	go m.readLoop()
	c.mc = m
	return m, nil
}

// drop detaches a poisoned incarnation so the next attempt dials fresh.
func (c *Client) drop(m *muxConn) {
	c.mu.Lock()
	if c.mc == m {
		c.mc = nil
	}
	c.mu.Unlock()
}

// poison kills the connection after a transport or framing failure: the
// socket closes (stopping both loops), every in-flight waiter fails with
// the cause, and the incarnation detaches from the Client so the next
// attempt reconnects. Idempotent; only the first cause sticks.
func (m *muxConn) poison(cause error) {
	m.mu.Lock()
	if m.broken == nil {
		m.broken = cause
		close(m.dead)
		m.conn.Close()
		//knnlint:allow detsource -- failure fanout to independent waiters; delivery order is unobservable
		for tag, ch := range m.waiters {
			//knnlint:allow lockio -- each waiter channel is cap-1 with exactly one send per tag; cannot block
			ch <- muxResult{err: cause}
			delete(m.waiters, tag)
		}
		m.noteOutstandingLocked()
	}
	m.mu.Unlock()
	m.c.drop(m)
}

// forget abandons one call's waiter (deadline, cancellation, client
// close). A reply that later arrives for the tag is discarded by the read
// loop; the connection stays healthy.
func (m *muxConn) forget(tag uint64) {
	m.mu.Lock()
	delete(m.waiters, tag)
	m.noteOutstandingLocked()
	m.mu.Unlock()
}

// noteOutstandingLocked mirrors the waiter-table size into the
// outstanding-tags gauge. Caller holds m.mu.
func (m *muxConn) noteOutstandingLocked() {
	m.c.cm.outstanding.Set(int64(len(m.waiters)))
}

// writeLoop is the connection's single writer: it drains encoded frames
// in arrival order, returning each pooled writer once flushed. A write
// failure poisons the whole incarnation — the stream position is unknown,
// so no later frame could be framed safely either.
func (m *muxConn) writeLoop() {
	for {
		select {
		case w := <-m.writeCh:
			err := w.EndFrame(m.conn)
			wire.PutWriter(w)
			if err != nil {
				m.poison(fmt.Errorf("tcp: send query: %w", err))
				m.drainWrites()
				return
			}
		case <-m.dead:
			m.drainWrites()
			return
		}
	}
}

// drainWrites releases frames queued behind a poison so their pooled
// writers are not leaked. Their callers' waiters have already failed.
func (m *muxConn) drainWrites() {
	for {
		select {
		case w := <-m.writeCh:
			wire.PutWriter(w)
		default:
			return
		}
	}
}

// readLoop is the connection's single reader: it decodes tagged replies
// into caller-owned values (reusing one frame buffer — DecodeReply copies
// everything out) and routes each to its waiter. Any framing violation —
// an unframeable stream, an unexpected kind, an undecodable reply —
// poisons the incarnation and fails all in-flight waiters retryably.
func (m *muxConn) readLoop() {
	var buf []byte
	for {
		payload, err := wire.ReadFrameInto(m.conn, buf)
		if err != nil {
			m.poison(fmt.Errorf("tcp: read reply: %w", err))
			return
		}
		buf = payload
		r := wire.NewReader(payload)
		if kind := r.Kind(); kind != wire.KindReplyTagged {
			m.poison(fmt.Errorf("tcp: expected reply, got kind %d", kind))
			return
		}
		tag := r.Varint()
		rep, err := wire.DecodeReply(r)
		if err != nil {
			m.poison(fmt.Errorf("tcp: bad reply: %w", err))
			return
		}
		m.mu.Lock()
		ch, ok := m.waiters[tag]
		if ok {
			delete(m.waiters, tag)
			m.noteOutstandingLocked()
		}
		m.mu.Unlock()
		if ok {
			ch <- muxResult{rep: rep}
		}
		// No waiter: the call was abandoned (deadline or cancellation)
		// after the query went out; the late reply is dropped.
	}
}

// call runs one tagged round trip on this incarnation. transport reports
// whether the failure poisoned the connection (worth a reconnect retry),
// as opposed to a deadline, cancellation or closed client.
func (m *muxConn) call(ctx context.Context, q wire.Query) (rep wire.Reply, transport bool, err error) {
	m.mu.Lock()
	if m.broken != nil {
		err := m.broken
		m.mu.Unlock()
		return wire.Reply{}, !errors.Is(err, errClientClosed), err
	}
	tag := m.nextTag
	m.nextTag++
	ch := make(chan muxResult, 1)
	m.waiters[tag] = ch
	m.noteOutstandingLocked()
	m.mu.Unlock()

	w := wire.GetWriter()
	w.BeginFrame()
	wire.AppendQueryTagged(w, tag, q)

	var timeoutCh <-chan time.Time
	if m.c.opts.Timeout > 0 {
		timer := time.NewTimer(m.c.opts.Timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	//knnlint:allow poolown -- documented handoff: the writer goroutine takes ownership of w and puts it after flushing
	case m.writeCh <- w:
		// The writer goroutine owns w now.
	case <-m.dead:
		wire.PutWriter(w)
		res := <-ch // poison already failed every registered waiter
		return wire.Reply{}, !errors.Is(res.err, errClientClosed), res.err
	case <-timeoutCh:
		m.forget(tag)
		wire.PutWriter(w)
		m.c.cm.timeouts.Inc()
		return wire.Reply{}, false, &timeoutError{after: m.c.opts.Timeout}
	case <-ctx.Done():
		m.forget(tag)
		wire.PutWriter(w)
		return wire.Reply{}, false, ctx.Err()
	case <-m.c.closedCh:
		m.forget(tag)
		wire.PutWriter(w)
		return wire.Reply{}, false, errClientClosed
	}

	select {
	case res := <-ch:
		if res.err != nil {
			return wire.Reply{}, !errors.Is(res.err, errClientClosed), res.err
		}
		return res.rep, false, nil
	case <-timeoutCh:
		m.forget(tag)
		m.c.cm.timeouts.Inc()
		return wire.Reply{}, false, &timeoutError{after: m.c.opts.Timeout}
	case <-ctx.Done():
		m.forget(tag)
		return wire.Reply{}, false, ctx.Err()
	case <-m.c.closedCh:
		m.forget(tag)
		return wire.Reply{}, false, errClientClosed
	}
}

// Do sends one query and waits for the reply. A Reply with a non-empty Err
// is returned as a Go error; degraded-cluster errors match
// errors.Is(err, ErrDegraded). See Client for the retry semantics.
func (c *Client) Do(q wire.Query) (wire.Reply, error) {
	return c.DoContext(context.Background(), q)
}

// DoContext is Do with a per-call context: cancellation abandons the call
// (the reply, if it arrives, is discarded) without disturbing the other
// queries multiplexed on the connection.
func (c *Client) DoContext(ctx context.Context, q wire.Query) (wire.Reply, error) {
	c.cm.queries.Inc()
	rep, transport, err := c.attempt(ctx, q)
	if err == nil || c.opts.NoRetry || ctx.Err() != nil {
		return rep, err
	}
	if !errors.Is(err, ErrDegraded) {
		if !transport {
			// A remote validation or program error, a deadline, or a
			// closed client — deterministic, not worth a retry.
			return wire.Reply{}, err
		}
		// Poisoned or never connected: the next attempt reconnects. A
		// degraded reply on the fresh connection still gets the full
		// RetryWait ride-out below — a frontend restart surfaces as a
		// transport failure followed by a degraded window.
		c.cm.retries.Inc()
		if rep, _, err = c.attempt(ctx, q); err == nil || !errors.Is(err, ErrDegraded) {
			return rep, err
		}
	}
	budget := c.opts.RetryWait
	if budget == 0 {
		budget = defaultRetryWait
	}
	if budget < 0 {
		c.cm.retries.Inc()
		rep, _, err = c.attempt(ctx, q)
		return rep, err
	}
	//knnlint:allow detsource -- retry budget is wall-clock by design; it bounds waiting, never the answer
	deadline := time.Now().Add(budget)
	timer := time.NewTimer(degradedRetryInterval)
	defer timer.Stop()
	for {
		//knnlint:allow detsource -- retry budget is wall-clock by design; it bounds waiting, never the answer
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return wire.Reply{}, err
		}
		wait := degradedRetryInterval
		if wait > remaining {
			wait = remaining
		}
		// The wait holds no lock — concurrent queries are not queued
		// behind one caller's ride-out budget — and Close (or the
		// caller's context) aborts it promptly instead of sleeping
		// through the rest of the budget.
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-c.closedCh:
			return wire.Reply{}, errClientClosed
		case <-ctx.Done():
			return wire.Reply{}, ctx.Err()
		}
		c.cm.retries.Inc()
		rep, _, rerr := c.attempt(ctx, q)
		if rerr == nil {
			return rep, nil
		}
		if !errors.Is(rerr, ErrDegraded) {
			return wire.Reply{}, rerr
		}
		err = rerr
	}
}

// attempt runs one query round trip on the live incarnation, dialing one
// if needed. transport reports whether the failure poisoned the
// connection (a dial, I/O or framing fault — worth a reconnect retry), as
// opposed to a deterministic remote error, a deadline or a closed client.
func (c *Client) attempt(ctx context.Context, q wire.Query) (wire.Reply, bool, error) {
	m, err := c.conn()
	if err != nil {
		return wire.Reply{}, !errors.Is(err, errClientClosed), err
	}
	rep, transport, err := m.call(ctx, q)
	if err != nil {
		return wire.Reply{}, transport, err
	}
	if rep.Err != "" {
		if rep.Degraded {
			c.cm.degraded.Inc()
			return wire.Reply{}, false, fmt.Errorf("tcp: remote: %s: %w", rep.Err, ErrDegraded)
		}
		return wire.Reply{}, false, fmt.Errorf("tcp: remote: %s", rep.Err)
	}
	return rep, false, nil
}

// Close releases the connection. Every in-flight call and every
// degraded-retry sleep wakes promptly with a closed-client error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	m := c.mc
	c.mc = nil
	c.mu.Unlock()
	if m != nil {
		m.poison(errClientClosed)
	}
	return nil
}

// LocalCluster is an in-process serving deployment over loopback sockets:
// one frontend plus k resident nodes, each on its own goroutine. It exists
// for tests, benchmarks and single-binary demos of the serving path.
type LocalCluster struct {
	fe       *Frontend
	serveErr chan error
	wg       sync.WaitGroup

	mu       sync.Mutex
	nodeErrs []error

	closeOnce sync.Once
	closeErr  error
}

// ServeLocal starts a loopback serving cluster with default
// FrontendOptions. newHandler builds one Handler per node (each node needs
// its own instance, since a Handler keeps per-node state); node identities
// are assigned at join time, so handlers must discover their shard through
// the Env they are given. The cluster is ready to serve (and Addr dialable
// by clients) when ServeLocal returns.
func ServeLocal(k int, seed uint64, newHandler func() Handler) (*LocalCluster, error) {
	return ServeLocalOptions(k, seed, FrontendOptions{}, newHandler)
}

// ServeLocalOptions starts a loopback serving cluster with an explicit
// epoch scheduler configuration (pipelining window, server-side batching).
func ServeLocalOptions(k int, seed uint64, opts FrontendOptions, newHandler func() Handler) (*LocalCluster, error) {
	fe, err := NewFrontendOptions("127.0.0.1:0", k, seed, opts)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{fe: fe, serveErr: make(chan error, 1)}
	go func() { lc.serveErr <- fe.Serve() }()
	for i := 0; i < k; i++ {
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			// A lost session (the node was evicted, or the frontend died
			// first) is expected churn, not a cluster failure: the caller
			// that evicted the node re-joins it — or meant to drop it.
			if err := ServeNode(fe.Addr(), "127.0.0.1:0", "", newHandler()); err != nil && !errors.Is(err, ErrSessionLost) {
				lc.mu.Lock()
				lc.nodeErrs = append(lc.nodeErrs, err)
				lc.mu.Unlock()
			}
		}()
	}
	// Wait until the session is ready (or failed) before handing it out.
	<-fe.ready
	if fe.readyErr != nil {
		err := fe.readyErr
		lc.Close()
		return nil, err
	}
	return lc, nil
}

// Addr returns the frontend address clients should dial.
func (lc *LocalCluster) Addr() string { return lc.fe.Addr() }

// Leader returns the elected leader machine.
func (lc *LocalCluster) Leader() int { return lc.fe.Leader() }

// EvictNode forcibly retires node id (see Frontend.EvictNode); re-join it
// with a fresh ServeNode against Addr.
func (lc *LocalCluster) EvictNode(id int) error { return lc.fe.EvictNode(id) }

// Close shuts the cluster down and reports the first failure observed by
// the frontend or any node. It is idempotent: every call returns the same
// result, and none of them blocks on work a previous call already drained.
func (lc *LocalCluster) Close() error {
	lc.closeOnce.Do(func() {
		lc.fe.Close()
		err := <-lc.serveErr
		lc.wg.Wait()
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if err != nil {
			lc.closeErr = err
			return
		}
		if len(lc.nodeErrs) > 0 {
			lc.closeErr = lc.nodeErrs[0]
		}
	})
	return lc.closeErr
}
