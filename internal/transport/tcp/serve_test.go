package tcp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/wire"
)

// echoHandler is a minimal serving protocol for transport tests: the setup
// epoch elects a min-GUID leader; each query runs one broadcast/gather
// round and returns one synthetic "winner" per node, so the frontend's
// per-query merge path and the lockstep batch path are both exercised. A
// query for the magic value 1313 fails on node 1, exercising epoch-failure
// recovery.
type echoHandler struct {
	leader int
}

func (h *echoHandler) Setup(m kmachine.Env) (SessionInfo, error) {
	leader, err := election.MinGUID(m)
	if err != nil {
		return SessionInfo{}, err
	}
	h.leader = leader
	return SessionInfo{Leader: leader, ShardLen: 10, PointTag: wire.PointScalar}, nil
}

func (h *echoHandler) Rejoin(id, k, leader int) (SessionInfo, error) {
	h.leader = leader
	return SessionInfo{Leader: leader, ShardLen: 10, PointTag: wire.PointScalar}, nil
}

func (h *echoHandler) Query(m kmachine.Env, q wire.Query, qi int) (QueryResult, error) {
	v, err := wire.DecodeScalarPoint(q.Points[qi])
	if err != nil {
		return QueryResult{}, err
	}
	if v == 1313 && m.ID() == 1 {
		return QueryResult{}, fmt.Errorf("unlucky query")
	}
	// One real BSP round so every query exercises the mesh.
	m.Broadcast([]byte{byte(m.ID())})
	m.EndRound()
	if got := len(m.Gather(m.K() - 1)); got != m.K()-1 {
		return QueryResult{}, fmt.Errorf("gathered %d of %d", got, m.K()-1)
	}
	out := QueryResult{
		Winners: []points.Item{{Key: keys.Key{Dist: v*10 + uint64(m.ID()), ID: uint64(m.ID()) + 1}}},
	}
	if m.ID() == h.leader {
		out.Boundary = keys.Key{Dist: v}
		out.Value = float64(v)
	}
	return out, nil
}

// Direct satisfies the Handler interface; the echo handlers never report a
// metric summary, so no frontend in these tests direct-dispatches to them.
func (h *echoHandler) Direct(q wire.Query, qi int) (QueryResult, error) {
	v, err := wire.DecodeScalarPoint(q.Points[qi])
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{
		Winners: []points.Item{{Key: keys.Key{Dist: v * 10, ID: 1}}},
	}, nil
}

func scalarQuery(op uint8, l int, vs ...uint64) wire.Query {
	pts := make([][]byte, len(vs))
	for i, v := range vs {
		pts[i] = wire.EncodeScalarPoint(v)
	}
	return wire.Query{Op: op, L: l, Tag: wire.PointScalar, Points: pts}
}

func startEchoCluster(t *testing.T, k int, seed uint64) (*LocalCluster, *Client) {
	t.Helper()
	lc, err := ServeLocal(k, seed, func() Handler { return &echoHandler{} })
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialFrontend(lc.Addr())
	if err != nil {
		lc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		if err := lc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return lc, client
}

func TestServeManyEpochsOverOneMesh(t *testing.T) {
	k := 3
	lc, client := startEchoCluster(t, k, 7)
	if l := lc.Leader(); l < 0 || l >= k {
		t.Fatalf("leader = %d", l)
	}
	for v := uint64(1); v <= 50; v++ {
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("query %d: %v", v, err)
		}
		if len(rep.Results) != 1 {
			t.Fatalf("query %d: %d results, want 1", v, len(rep.Results))
		}
		res := rep.Results[0]
		if len(res.Items) != k {
			t.Fatalf("query %d: %d items, want %d", v, len(res.Items), k)
		}
		for id, it := range res.Items {
			want := keys.Key{Dist: v*10 + uint64(id), ID: uint64(id) + 1}
			if it.Key != want {
				t.Fatalf("query %d item %d = %v, want %v", v, id, it.Key, want)
			}
		}
		if res.Boundary.Dist != v || rep.Leader != lc.Leader() {
			t.Fatalf("query %d: boundary %v leader %d", v, res.Boundary, rep.Leader)
		}
		if rep.Rounds < 1 || rep.Messages < int64(k*(k-1)) {
			t.Fatalf("query %d: implausible cost rounds=%d msgs=%d", v, rep.Rounds, rep.Messages)
		}
	}
}

// TestServeBatchedEpoch drives a whole batch through one dispatch and
// checks per-query merge order and the single shared epoch cost.
func TestServeBatchedEpoch(t *testing.T) {
	k := 3
	lc, client := startEchoCluster(t, k, 11)
	vs := []uint64{4, 9, 2, 7}
	rep, err := client.Do(scalarQuery(wire.OpKNN, 1, vs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(vs) {
		t.Fatalf("%d results, want %d", len(rep.Results), len(vs))
	}
	for qi, v := range vs {
		res := rep.Results[qi]
		if len(res.Items) != k {
			t.Fatalf("query %d: %d items, want %d", qi, len(res.Items), k)
		}
		for id, it := range res.Items {
			want := keys.Key{Dist: v*10 + uint64(id), ID: uint64(id) + 1}
			if it.Key != want {
				t.Fatalf("query %d item %d = %v, want %v", qi, id, it.Key, want)
			}
		}
		if res.Boundary.Dist != v || res.Value != float64(v) {
			t.Fatalf("query %d: outcome %+v", qi, res.QueryOutcome)
		}
	}
	if rep.Leader != lc.Leader() {
		t.Fatalf("leader %d, want %d", rep.Leader, lc.Leader())
	}
	// The whole batch runs in lockstep on one epoch: its round count must
	// match a single query's (every sub-query broadcasts in the same
	// shared physical round), while messages scale with the batch size.
	single, err := client.Do(scalarQuery(wire.OpKNN, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != single.Rounds {
		t.Fatalf("batch rounds=%d, single rounds=%d — lockstep batch should share physical rounds",
			rep.Rounds, single.Rounds)
	}
	if rep.Messages != int64(len(vs))*single.Messages {
		t.Fatalf("batch messages=%d, want %d× single %d", rep.Messages, len(vs), single.Messages)
	}
}

func TestServeEpochFailureKeepsSessionAlive(t *testing.T) {
	_, client := startEchoCluster(t, 3, 8)
	ok := func(v uint64) wire.Reply {
		t.Helper()
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("query %d: %v", v, err)
		}
		return rep
	}
	ok(5)
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 1313)); err == nil {
		t.Fatal("magic query should fail")
	} else if !strings.Contains(err.Error(), "unlucky") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A failing query inside a batch fails the whole batch (one epoch).
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 4, 1313, 6)); err == nil {
		t.Fatal("batch containing the magic query should fail")
	}
	// The session must survive failed epochs.
	for v := uint64(20); v < 30; v++ {
		ok(v)
	}
}

func TestFrontendValidatesQueries(t *testing.T) {
	_, client := startEchoCluster(t, 2, 9)
	badTag := scalarQuery(wire.OpKNN, 1, 1)
	badTag.Tag = wire.PointVector
	cases := []struct {
		name string
		q    wire.Query
	}{
		{"bad op", scalarQuery(99, 1, 1)},
		{"bad tag", badTag},
		{"l too small", scalarQuery(wire.OpKNN, 0, 1)},
		{"l too large", scalarQuery(wire.OpKNN, 21, 1)},
		{"empty batch", scalarQuery(wire.OpKNN, 1)},
	}
	for _, tc := range cases {
		if _, err := client.Do(tc.q); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Validation failures must not have consumed an epoch or broken the
	// session.
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 4)); err != nil {
		t.Fatalf("valid query after rejections: %v", err)
	}
}

// mismatchedTagHandler makes every node report a different point tag, so
// the frontend must reject the session during the ready phase.
type mismatchedTagHandler struct{ echoHandler }

func (h *mismatchedTagHandler) Setup(m kmachine.Env) (SessionInfo, error) {
	info, err := h.echoHandler.Setup(m)
	info.PointTag += uint8(m.ID())
	return info, err
}

func TestFailedSessionReleasesNodes(t *testing.T) {
	// A session that fails validation must close the node control
	// connections so every resident node exits — ServeLocal's error-path
	// Close would otherwise deadlock waiting for them.
	done := make(chan struct{})
	go func() {
		defer close(done)
		lc, err := ServeLocal(3, 4, func() Handler { return &mismatchedTagHandler{} })
		if err == nil {
			lc.Close()
			t.Error("mismatched point tags must fail the session")
		} else if !strings.Contains(err.Error(), "point tag") {
			t.Errorf("unexpected error: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("failed session left nodes (or ServeLocal) hanging")
	}
}

func TestRunNodeRejectsServingCoordinator(t *testing.T) {
	fe, err := NewFrontend("127.0.0.1:0", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- fe.Serve() }()
	if _, err := RunNode(fe.Addr(), "127.0.0.1:0", func(m kmachine.Env) error { return nil }); err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("RunNode against a frontend should fail with mode mismatch, got %v", err)
	}
	fe.Close()
	<-serveDone
}
