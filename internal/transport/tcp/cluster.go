package tcp

import (
	"fmt"
	"net"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
)

// Rendezvous message kinds.
const (
	ctlRegister = iota + 1 // node → coordinator: my mesh listen address
	ctlAssign              // coordinator → node: id, k, seed, address book
)

// Coordinator performs rendezvous for a k-node cluster: nodes register their
// mesh listen addresses, the coordinator assigns machine indices in
// registration order and sends every node the full address book. It carries
// no protocol traffic.
type Coordinator struct {
	ln   net.Listener
	k    int
	seed uint64
}

// NewCoordinator starts the rendezvous listener on addr (e.g.
// "127.0.0.1:0").
func NewCoordinator(addr string, k int, seed uint64) (*Coordinator, error) {
	if k < 1 {
		return nil, fmt.Errorf("tcp: coordinator needs k >= 1, got %d", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln, k: k, seed: seed}, nil
}

// Addr returns the coordinator's dialable address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener (safe after Wait).
func (c *Coordinator) Close() error { return c.ln.Close() }

// Wait accepts the k registrations and distributes assignments; it returns
// when every node has been configured.
func (c *Coordinator) Wait() error {
	conns := make([]net.Conn, 0, c.k)
	addrs := make([]string, 0, c.k)
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	for len(conns) < c.k {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: coordinator accept: %w", err)
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			conn.Close()
			return fmt.Errorf("tcp: coordinator read register: %w", err)
		}
		r := wire.NewReader(payload)
		if kind := r.U8(); kind != ctlRegister {
			conn.Close()
			return fmt.Errorf("tcp: expected register, got kind %d", kind)
		}
		addr := r.String()
		if err := r.Err(); err != nil {
			conn.Close()
			return fmt.Errorf("tcp: bad register: %w", err)
		}
		conns = append(conns, conn)
		addrs = append(addrs, addr)
	}
	for id, conn := range conns {
		var w wire.Writer
		w.U8(ctlAssign)
		w.Varint(uint64(id))
		w.Varint(uint64(c.k))
		w.U64(c.seed)
		for _, a := range addrs {
			w.String(a)
		}
		if err := wire.WriteFrame(conn, w.Bytes()); err != nil {
			return fmt.Errorf("tcp: coordinator assign to %d: %w", id, err)
		}
	}
	return nil
}

// RunNode joins the cluster at the coordinator's address and executes prog
// as one machine. It returns the node's local metrics when the program
// completes. meshAddr is the address to listen on for peer connections
// ("127.0.0.1:0" picks a free port).
func RunNode(coordAddr, meshAddr string, prog kmachine.Program) (Metrics, error) {
	ln, err := net.Listen("tcp", meshAddr)
	if err != nil {
		return Metrics{}, fmt.Errorf("tcp: node mesh listen: %w", err)
	}
	defer ln.Close()

	coord, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return Metrics{}, fmt.Errorf("tcp: dial coordinator: %w", err)
	}
	defer coord.Close()
	var reg wire.Writer
	reg.U8(ctlRegister)
	reg.String(ln.Addr().String())
	if err := wire.WriteFrame(coord, reg.Bytes()); err != nil {
		return Metrics{}, fmt.Errorf("tcp: register: %w", err)
	}
	payload, err := wire.ReadFrame(coord)
	if err != nil {
		return Metrics{}, fmt.Errorf("tcp: read assignment: %w", err)
	}
	r := wire.NewReader(payload)
	if kind := r.U8(); kind != ctlAssign {
		return Metrics{}, fmt.Errorf("tcp: expected assignment, got kind %d", kind)
	}
	id := int(r.Varint())
	k := int(r.Varint())
	seed := r.U64()
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = r.String()
	}
	if err := r.Err(); err != nil {
		return Metrics{}, fmt.Errorf("tcp: bad assignment: %w", err)
	}

	conns, err := buildMesh(ln, id, k, addrs)
	if err != nil {
		return Metrics{}, err
	}
	node := newNode(id, k, seed, conns)
	return node.runProgram(prog)
}

// buildMesh establishes the k−1 peer connections: this node dials every
// lower id (announcing its own id) and accepts one connection from every
// higher id.
func buildMesh(ln net.Listener, id, k int, addrs []string) ([]net.Conn, error) {
	conns := make([]net.Conn, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, k)

	for j := 0; j < id; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				errs <- fmt.Errorf("tcp: node %d dial peer %d: %w", id, j, err)
				return
			}
			var w wire.Writer
			w.Varint(uint64(id))
			if err := wire.WriteFrame(conn, w.Bytes()); err != nil {
				conn.Close()
				errs <- fmt.Errorf("tcp: node %d hello to %d: %w", id, j, err)
				return
			}
			mu.Lock()
			conns[j] = conn
			mu.Unlock()
		}(j)
	}
	for have := 0; have < k-1-id; have++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcp: node %d accept: %w", id, err)
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("tcp: node %d read hello: %w", id, err)
		}
		r := wire.NewReader(payload)
		peerID := int(r.Varint())
		if r.Err() != nil || peerID <= id || peerID >= k {
			conn.Close()
			return nil, fmt.Errorf("tcp: node %d got invalid hello id %d", id, peerID)
		}
		mu.Lock()
		dup := conns[peerID] != nil
		if !dup {
			conns[peerID] = conn
		}
		mu.Unlock()
		if dup {
			conn.Close()
			return nil, fmt.Errorf("tcp: duplicate hello from %d", peerID)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return conns, nil
}

// RunLocal runs a whole cluster in-process over loopback TCP — one goroutine
// per node plus the coordinator — and returns each node's metrics and error.
// It is the single-binary way to exercise the real-socket path (tests,
// examples, cmd/knnnode -local).
//
// Machine indices are assigned by the coordinator in registration order, so
// the same program runs on every node and must select its behaviour and data
// through m.ID() — exactly like a real deployment, where each process
// discovers its identity at join time. The returned slices are indexed by
// machine id.
func RunLocal(k int, seed uint64, prog kmachine.Program) ([]Metrics, []error, error) {
	coord, err := NewCoordinator("127.0.0.1:0", k, seed)
	if err != nil {
		return nil, nil, err
	}
	defer coord.Close()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()

	metrics := make([]Metrics, k)
	errs := make([]error, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var id int
			met, err := RunNode(coord.Addr(), "127.0.0.1:0", func(m kmachine.Env) error {
				id = m.ID()
				return prog(m)
			})
			mu.Lock()
			metrics[id], errs[id] = met, err
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := <-coordErr; err != nil {
		return metrics, errs, err
	}
	return metrics, errs, nil
}
