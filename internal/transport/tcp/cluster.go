package tcp

import (
	"fmt"
	"net"
	"sync"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
)

// Coordinator performs rendezvous for a one-shot k-node cluster: nodes
// register their mesh listen addresses, the coordinator assigns machine
// indices in registration order and sends every node the full address book.
// It carries no protocol traffic and exits after rendezvous. For a resident
// serving cluster, use Frontend instead.
type Coordinator struct {
	ln   net.Listener
	k    int
	seed uint64
}

// NewCoordinator starts the rendezvous listener on addr (e.g.
// "127.0.0.1:0").
func NewCoordinator(addr string, k int, seed uint64) (*Coordinator, error) {
	if k < 1 {
		return nil, fmt.Errorf("tcp: coordinator needs k >= 1, got %d", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: coordinator listen: %w", err)
	}
	return &Coordinator{ln: ln, k: k, seed: seed}, nil
}

// Addr returns the coordinator's dialable address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener (safe after Wait).
func (c *Coordinator) Close() error { return c.ln.Close() }

// Wait accepts the k registrations and distributes assignments; it returns
// when every node has been configured.
func (c *Coordinator) Wait() error {
	conns, addrs, err := acceptRegistrations(c.ln, c.k)
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	if err != nil {
		return err
	}
	for id, conn := range conns {
		if err := writeAssign(conn, wire.ModeOneShot, id, c.k, c.seed, addrs); err != nil {
			return err
		}
	}
	return nil
}

// acceptRegistrations collects k KindRegister frames from ln, returning the
// control connections and mesh addresses in registration order. On error the
// already-accepted connections are still returned so the caller can close
// them.
func acceptRegistrations(ln net.Listener, k int) ([]net.Conn, []string, error) {
	conns := make([]net.Conn, 0, k)
	addrs := make([]string, 0, k)
	for len(conns) < k {
		conn, err := ln.Accept()
		if err != nil {
			return conns, addrs, fmt.Errorf("tcp: coordinator accept: %w", err)
		}
		addr, err := readRegister(conn)
		if err != nil {
			conn.Close()
			return conns, addrs, err
		}
		conns = append(conns, conn)
		addrs = append(addrs, addr)
	}
	return conns, addrs, nil
}

// readRegister decodes one KindRegister frame from a fresh connection.
func readRegister(conn net.Conn) (string, error) {
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return "", fmt.Errorf("tcp: coordinator read register: %w", err)
	}
	r := wire.NewReader(payload)
	if kind := r.Kind(); kind != wire.KindRegister {
		return "", fmt.Errorf("tcp: expected register, got kind %d", kind)
	}
	addr := r.String()
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("tcp: bad register: %w", err)
	}
	return addr, nil
}

// writeAssign sends one KindAssign frame: session mode, machine index,
// cluster size, session seed and the full mesh address book.
func writeAssign(conn net.Conn, mode uint8, id, k int, seed uint64, addrs []string) error {
	var w wire.Writer
	w.Kind(wire.KindAssign)
	w.U8(mode)
	w.Varint(uint64(id))
	w.Varint(uint64(k))
	w.U64(seed)
	for _, a := range addrs {
		w.String(a)
	}
	if err := wire.WriteFrame(conn, w.Bytes()); err != nil {
		return fmt.Errorf("tcp: coordinator assign to %d: %w", id, err)
	}
	return nil
}

// assignment is what a node learns from the coordinator at join time.
type assignment struct {
	mode  uint8
	id, k int
	seed  uint64
	addrs []string
}

// join registers the node's mesh address with the coordinator and reads
// back the assignment. advertise is the address peers are told to dial; if
// empty, ln's own address is registered (right whenever the bind address is
// reachable as-is). The returned control connection stays open; a one-shot
// node closes it immediately, a serving node keeps it for dispatches.
func join(coordAddr string, ln net.Listener, advertise string) (net.Conn, assignment, error) {
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	coord, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return nil, assignment{}, fmt.Errorf("tcp: dial coordinator: %w", err)
	}
	var reg wire.Writer
	reg.Kind(wire.KindRegister)
	reg.String(advertise)
	if err := wire.WriteFrame(coord, reg.Bytes()); err != nil {
		coord.Close()
		return nil, assignment{}, fmt.Errorf("tcp: register: %w", err)
	}
	payload, err := wire.ReadFrame(coord)
	if err != nil {
		coord.Close()
		return nil, assignment{}, fmt.Errorf("tcp: read assignment: %w", err)
	}
	r := wire.NewReader(payload)
	if kind := r.Kind(); kind != wire.KindAssign {
		coord.Close()
		return nil, assignment{}, fmt.Errorf("tcp: expected assignment, got kind %d", kind)
	}
	a := assignment{
		mode: r.U8(),
		id:   int(r.Varint()),
		k:    int(r.Varint()),
		seed: r.U64(),
	}
	a.addrs = make([]string, a.k)
	for i := range a.addrs {
		a.addrs[i] = r.String()
	}
	if err := r.Err(); err != nil {
		coord.Close()
		return nil, assignment{}, fmt.Errorf("tcp: bad assignment: %w", err)
	}
	return coord, a, nil
}

// RunNode joins the cluster at the coordinator's address and executes prog
// as one machine. It returns the node's local metrics when the program
// completes. meshAddr is the address to listen on for peer connections
// ("127.0.0.1:0" picks a free port).
func RunNode(coordAddr, meshAddr string, prog kmachine.Program) (Metrics, error) {
	ln, err := net.Listen("tcp", meshAddr)
	if err != nil {
		return Metrics{}, fmt.Errorf("tcp: node mesh listen: %w", err)
	}
	defer ln.Close()

	coord, a, err := join(coordAddr, ln, "")
	if err != nil {
		return Metrics{}, err
	}
	defer coord.Close()
	if a.mode != wire.ModeOneShot {
		return Metrics{}, fmt.Errorf("tcp: coordinator runs mode %d, RunNode requires one-shot; use ServeNode", a.mode)
	}

	conns, err := buildMesh(ln, a.id, a.k, a.addrs)
	if err != nil {
		return Metrics{}, err
	}
	node := newNode(a.id, a.k, a.seed, conns)
	return node.runProgram(prog)
}

// buildMesh establishes the k−1 peer connections: this node dials every
// lower id (announcing its own id) and accepts one connection from every
// higher id.
func buildMesh(ln net.Listener, id, k int, addrs []string) ([]net.Conn, error) {
	conns := make([]net.Conn, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, k)

	for j := 0; j < id; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				errs <- fmt.Errorf("tcp: node %d dial peer %d: %w", id, j, err)
				return
			}
			var w wire.Writer
			w.Varint(uint64(id))
			if err := wire.WriteFrame(conn, w.Bytes()); err != nil {
				conn.Close()
				errs <- fmt.Errorf("tcp: node %d hello to %d: %w", id, j, err)
				return
			}
			mu.Lock()
			conns[j] = conn
			mu.Unlock()
		}(j)
	}
	for have := 0; have < k-1-id; have++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcp: node %d accept: %w", id, err)
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("tcp: node %d read hello: %w", id, err)
		}
		r := wire.NewReader(payload)
		peerID := int(r.Varint())
		if r.Err() != nil || peerID <= id || peerID >= k {
			conn.Close()
			return nil, fmt.Errorf("tcp: node %d got invalid hello id %d", id, peerID)
		}
		mu.Lock()
		dup := conns[peerID] != nil
		if !dup {
			conns[peerID] = conn
		}
		mu.Unlock()
		if dup {
			conn.Close()
			return nil, fmt.Errorf("tcp: duplicate hello from %d", peerID)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return conns, nil
}

// RunLocal runs a whole cluster in-process over loopback TCP — one goroutine
// per node plus the coordinator — and returns each node's metrics and error.
// It is the single-binary way to exercise the real-socket path (tests,
// examples, cmd/knnnode -local).
//
// Machine indices are assigned by the coordinator in registration order, so
// the same program runs on every node and must select its behaviour and data
// through m.ID() — exactly like a real deployment, where each process
// discovers its identity at join time. The returned slices are indexed by
// machine id.
func RunLocal(k int, seed uint64, prog kmachine.Program) ([]Metrics, []error, error) {
	coord, err := NewCoordinator("127.0.0.1:0", k, seed)
	if err != nil {
		return nil, nil, err
	}
	defer coord.Close()
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()

	metrics := make([]Metrics, k)
	errs := make([]error, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var id int
			met, err := RunNode(coord.Addr(), "127.0.0.1:0", func(m kmachine.Env) error {
				id = m.ID()
				return prog(m)
			})
			mu.Lock()
			metrics[id], errs[id] = met, err
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := <-coordErr; err != nil {
		return metrics, errs, err
	}
	return metrics, errs, nil
}
