package tcp

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/wire"
)

// blockingHandler is an echoHandler whose node 1 parks inside the epoch for
// the magic query 4242 until released — the window a churn test needs to
// kill the node mid-query.
type blockingHandler struct {
	echoHandler
	entered chan<- struct{}
	release <-chan struct{}
}

func (h *blockingHandler) Query(m kmachine.Env, q wire.Query, qi int) (QueryResult, error) {
	if v, _ := wire.DecodeScalarPoint(q.Points[qi]); v == 4242 && m.ID() == 1 {
		h.entered <- struct{}{}
		<-h.release
	}
	return h.echoHandler.Query(m, q, qi)
}

// churnCluster is a hand-rolled serving deployment whose node sessions are
// killable: frontend plus node goroutines started through the test hook.
type churnCluster struct {
	t  *testing.T
	fe *Frontend
	wg sync.WaitGroup

	mu       sync.Mutex
	sessions map[int]*nodeSession
	exitErrs []error
}

func startChurnCluster(t *testing.T, k int, seed uint64, newHandler func() Handler) *churnCluster {
	t.Helper()
	fe, err := NewFrontend("127.0.0.1:0", k, seed)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- fe.Serve() }()
	c := &churnCluster{t: t, fe: fe, sessions: make(map[int]*nodeSession)}
	t.Cleanup(func() {
		fe.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("frontend: %v", err)
		}
		c.wg.Wait()
	})
	for i := 0; i < k; i++ {
		c.startNode(newHandler(), -1)
	}
	<-fe.ready
	if fe.readyErr != nil {
		t.Fatal(fe.readyErr)
	}
	return c
}

// startNode launches one node session (a fresh registration, or an explicit
// re-join when rejoinID >= 0) and records its session handle by machine id.
func (c *churnCluster) startNode(h Handler, rejoinID int) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		err := serveNode(c.fe.Addr(), "127.0.0.1:0", "", rejoinID, h, func(s *nodeSession) {
			c.mu.Lock()
			c.sessions[s.node.id] = s
			c.mu.Unlock()
		}, nil)
		c.mu.Lock()
		c.exitErrs = append(c.exitErrs, err)
		c.mu.Unlock()
	}()
}

func (c *churnCluster) session(id int) *nodeSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[id]
}

// waitHealthy polls until a query succeeds again (the re-joined node is
// seated) and returns the successful reply.
func waitHealthy(t *testing.T, client *Client, q wire.Query) wire.Reply {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		rep, err := client.Do(q)
		if err == nil {
			return rep
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("waiting for recovery: non-degraded failure: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not recover: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkEcho asserts the deterministic echoHandler answer for value v on a
// k-node cluster — the per-node shares and leader metadata a correctly
// re-meshed, re-seated cluster must keep producing bit-identically.
func checkEcho(t *testing.T, rep wire.Reply, k int, v uint64, leader int) {
	t.Helper()
	if len(rep.Results) != 1 {
		t.Fatalf("value %d: %d results", v, len(rep.Results))
	}
	res := rep.Results[0]
	if len(res.Items) != k {
		t.Fatalf("value %d: %d items, want %d", v, len(res.Items), k)
	}
	for id, it := range res.Items {
		want := keys.Key{Dist: v*10 + uint64(id), ID: uint64(id) + 1}
		if it.Key != want {
			t.Fatalf("value %d item %d = %v, want %v", v, id, it.Key, want)
		}
	}
	if res.Boundary.Dist != v || rep.Leader != leader {
		t.Fatalf("value %d: boundary %v leader %d, want leader %d", v, res.Boundary, rep.Leader, leader)
	}
}

// TestChurnKillMidQueryDegradesThenHeals is the headline churn walk: a node
// dies inside a dispatched epoch; the in-flight query fails with a
// retryable degraded error, later queries fail fast the same way, and a
// replacement registration re-seats the node and restores bit-identical
// service.
func TestChurnKillMidQueryDegradesThenHeals(t *testing.T) {
	k := 3
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	c := startChurnCluster(t, k, 21, func() Handler {
		return &blockingHandler{entered: entered, release: release}
	})
	leader := c.fe.Leader()

	client, err := DialFrontendOptions(c.fe.Addr(), ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for v := uint64(1); v <= 5; v++ {
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("pre-churn query %d: %v", v, err)
		}
		checkEcho(t, rep, k, v, leader)
	}

	// Dispatch the magic query; node 1 parks inside the epoch, and we kill
	// it there — sockets closed mid-flight, no goodbye, like a crashed
	// process.
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, 4242))
		errCh <- err
	}()
	<-entered
	c.session(1).kill()
	close(release)
	if err := <-errCh; err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("in-flight query across the kill: got %v, want a degraded error", err)
	}

	// Degraded window: queries fail fast with the retryable error, naming
	// the absent seat, and never with a permanent "cluster broken".
	for v := uint64(50); v < 53; v++ {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err == nil || !errors.Is(err, ErrDegraded) {
			t.Fatalf("degraded window query %d: got %v, want a degraded error", v, err)
		}
		if !strings.Contains(err.Error(), "cluster degraded (2 of 3 nodes)") {
			t.Fatalf("degraded window query %d: unhelpful error %v", v, err)
		}
	}

	// Heal: a plain late registration lands in the absent seat.
	c.startNode(&blockingHandler{entered: entered, release: release}, -1)
	waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 60))
	for v := uint64(61); v <= 70; v++ {
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("post-rejoin query %d: %v", v, err)
		}
		checkEcho(t, rep, k, v, leader)
	}

	// The killed session must have exited as a recoverable loss.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, err := range c.exitErrs {
		if err != nil && !errors.Is(err, ErrSessionLost) {
			t.Fatalf("killed node exited with %v, want ErrSessionLost", err)
		}
	}
}

// TestChurnEvictAndExplicitRejoin covers the operator path: EvictNode
// retires a healthy idle node (which observes ErrSessionLost), and
// RejoinNode claims the seat back by machine index.
func TestChurnEvictAndExplicitRejoin(t *testing.T) {
	k := 2
	c := startChurnCluster(t, k, 31, func() Handler { return &echoHandler{} })
	leader := c.fe.Leader()
	client, err := DialFrontendOptions(c.fe.Addr(), ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 3)), k, 3, leader)

	if err := c.fe.EvictNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 4)); err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("query after evict: got %v, want a degraded error", err)
	}
	// A seat that is held cannot be re-joined; the absent one can.
	if err := RejoinNode(c.fe.Addr(), "127.0.0.1:0", "", 0, &echoHandler{}); err == nil || !strings.Contains(err.Error(), "join rejected") {
		t.Fatalf("rejoin of a held seat: got %v, want a rejection", err)
	}
	c.startNode(&echoHandler{}, 1)
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 5)), k, 5, leader)
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 6)), k, 6, leader)
}

// TestChurnIdleKillIsNoticedWithoutAQuery pins the control-pump behavior:
// a node dying between queries is marked absent by its pump, so the next
// query degrades (transient dispatch races included) rather than bricking
// the session.
func TestChurnIdleKillIsNoticedWithoutAQuery(t *testing.T) {
	k := 2
	c := startChurnCluster(t, k, 41, func() Handler { return &echoHandler{} })
	client, err := DialFrontendOptions(c.fe.Addr(), ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 2)); err != nil {
		t.Fatal(err)
	}
	c.session(1).kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, 9))
		if err != nil {
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("query after idle kill: got %v, want a degraded error", err)
			}
			break
		}
		// The dispatch can race the pump's death notice once; it must not
		// keep winning.
		if time.Now().After(deadline) {
			t.Fatal("idle kill never degraded the cluster")
		}
	}
	// And it stays degraded, not broken.
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 10)); err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("second query after idle kill: got %v, want a degraded error", err)
	}
}

// TestChurnBrokenLinkEvictsOneEndpoint pins single-fault eviction: when
// one mesh link breaks (both processes stay alive), both endpoints report
// a fatal error blaming each other, but the frontend must retire exactly
// one seat — acting on the echoed report too would evict both nodes for
// one fault, doubling the outage.
func TestChurnBrokenLinkEvictsOneEndpoint(t *testing.T) {
	k := 2
	c := startChurnCluster(t, k, 51, func() Handler { return &echoHandler{} })
	leader := c.fe.Leader()
	client, err := DialFrontendOptions(c.fe.Addr(), ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 2)), k, 2, leader)

	// Sever the 0–1 mesh link only; both node sessions keep running.
	s := c.session(0)
	s.node.peersMu.Lock()
	link := s.node.peers[1].conn
	s.node.peersMu.Unlock()
	link.Close()

	// The next epoch hits the dead link on both endpoints and fails the
	// in-flight query; exactly one seat must fall.
	if _, err := client.Do(scalarQuery(wire.OpKNN, 1, 3)); err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("query across the severed link: got %v, want a degraded error", err)
	}
	_, err = client.Do(scalarQuery(wire.OpKNN, 1, 4))
	if err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("query after the severed link: got %v, want a degraded error", err)
	}
	if !strings.Contains(err.Error(), "cluster degraded (1 of 2 nodes)") {
		t.Fatalf("one broken link must cost exactly one seat: %v", err)
	}

	// One replacement registration heals the cluster.
	c.startNode(&echoHandler{}, -1)
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 5)), k, 5, leader)
}

// TestChurnDoubleRejoinRestoresFullMesh loses two of three seats and
// re-joins both concurrently. Handshakes are serialized, so the second
// re-joiner's grant must list the first among the peers to dial — without
// that, the two replacements never link to each other and every later
// epoch dies on the hole in the mesh.
func TestChurnDoubleRejoinRestoresFullMesh(t *testing.T) {
	k := 3
	c := startChurnCluster(t, k, 61, func() Handler { return &echoHandler{} })
	leader := c.fe.Leader()
	client, err := DialFrontendOptions(c.fe.Addr(), ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 2)), k, 2, leader)

	c.session(1).kill()
	c.session(2).kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, 3))
		if err != nil && strings.Contains(err.Error(), "(1 of 3 nodes)") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("both kills never degraded the cluster: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	c.startNode(&echoHandler{}, -1)
	c.startNode(&echoHandler{}, -1)
	checkEcho(t, waitHealthy(t, client, scalarQuery(wire.OpKNN, 1, 7)), k, 7, leader)
	for v := uint64(8); v <= 12; v++ {
		rep, err := client.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("query %d after double re-join: %v", v, err)
		}
		checkEcho(t, rep, k, v, leader)
	}
}

// TestLocalClusterCloseIdempotent is the regression test for the seed bug
// where a second Close blocked forever on the drained serveErr channel.
func TestLocalClusterCloseIdempotent(t *testing.T) {
	lc, err := ServeLocal(2, 5, func() Handler { return &echoHandler{} })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := lc.Close(); err != nil {
			t.Errorf("first close: %v", err)
		}
		if err := lc.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("double Close deadlocked")
	}
}

// stubFrontend is a minimal fake serving endpoint for client unit tests:
// each accepted connection is handled by the next script entry.
func stubFrontend(t *testing.T, scripts ...func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for _, script := range scripts {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go script(conn)
		}
	}()
	return ln.Addr().String()
}

// readQuery consumes one query frame off the stub's connection.
func readQuery(t *testing.T, conn net.Conn) bool {
	_, err := wire.ReadFrame(conn)
	return err == nil
}

// readTaggedQuery consumes one tagged query frame and returns the tag the
// stub must echo on its reply.
func readTaggedQuery(t *testing.T, conn net.Conn) (uint64, bool) {
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, false
	}
	r := wire.NewReader(payload)
	if kind := r.Kind(); kind != wire.KindQueryTagged {
		t.Errorf("stub read kind %d, want tagged query", kind)
		return 0, false
	}
	return r.Varint(), true
}

func taggedOkReply(tag uint64) []byte {
	return wire.EncodeReplyTagged(tag, wire.Reply{Rounds: 1, Results: []wire.QueryReply{{}}})
}

// TestClientPoisonsDesyncedConnection is the regression test for the seed
// bug where a framing error left the connection mid-stream but reusable:
// the next Do misparsed garbage. Now the connection is poisoned and the
// next attempt runs on a fresh one.
func TestClientPoisonsDesyncedConnection(t *testing.T) {
	addr := stubFrontend(t,
		func(conn net.Conn) {
			defer conn.Close()
			if !readQuery(t, conn) {
				return
			}
			// A non-reply frame, with trailing garbage that a desynced
			// client would misparse as the next reply.
			var w wire.Writer
			w.Kind(wire.KindDispatch)
			w.Raw([]byte{0xde, 0xad, 0xbe, 0xef})
			_ = wire.WriteFrame(conn, w.Bytes())
			_ = wire.WriteFrame(conn, []byte{0xff, 0xff})
			time.Sleep(50 * time.Millisecond)
		},
		func(conn net.Conn) {
			defer conn.Close()
			tag, ok := readTaggedQuery(t, conn)
			if !ok {
				return
			}
			_ = wire.WriteFrame(conn, taggedOkReply(tag))
		},
	)
	client, err := DialFrontendOptions(addr, ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q := scalarQuery(wire.OpKNN, 1, 7)
	if _, err := client.Do(q); err == nil || !strings.Contains(err.Error(), "expected reply") {
		t.Fatalf("first Do: got %v, want a framing error", err)
	}
	// The poisoned connection must not be reused: the second Do reconnects
	// and succeeds instead of reading the stub's garbage.
	rep, err := client.Do(q)
	if err != nil {
		t.Fatalf("second Do after poisoning: %v", err)
	}
	if rep.Rounds != 1 {
		t.Fatalf("second Do reply: %+v", rep)
	}
}

// TestClientRetriesTransportFailureTransparently checks the default mode:
// one Do call survives a connection that dies mid-exchange by reconnecting
// and retrying once.
func TestClientRetriesTransportFailureTransparently(t *testing.T) {
	addr := stubFrontend(t,
		func(conn net.Conn) {
			readQuery(t, conn)
			conn.Close() // die before replying
		},
		func(conn net.Conn) {
			defer conn.Close()
			tag, ok := readTaggedQuery(t, conn)
			if !ok {
				return
			}
			_ = wire.WriteFrame(conn, taggedOkReply(tag))
		},
	)
	client, err := DialFrontend(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rep, err := client.Do(scalarQuery(wire.OpKNN, 1, 7))
	if err != nil {
		t.Fatalf("Do across a dropped connection: %v", err)
	}
	if rep.Rounds != 1 {
		t.Fatalf("reply: %+v", rep)
	}
}

// TestClientRetriesDegradedReply checks the churn retry: a degraded reply
// does not poison the connection, and the single retry rides out the
// outage on the same stream.
func TestClientRetriesDegradedReply(t *testing.T) {
	queries := make(chan struct{}, 4)
	addr := stubFrontend(t, func(conn net.Conn) {
		defer conn.Close()
		tag, ok := readTaggedQuery(t, conn)
		if !ok {
			return
		}
		queries <- struct{}{}
		_ = wire.WriteFrame(conn, wire.EncodeReplyTagged(tag, wire.Reply{
			Err: "cluster degraded (1 of 2 nodes): waiting for node(s) [1]", Degraded: true,
		}))
		tag, ok = readTaggedQuery(t, conn)
		if !ok {
			return
		}
		queries <- struct{}{}
		_ = wire.WriteFrame(conn, taggedOkReply(tag))
	})
	client, err := DialFrontendOptions(addr, ClientOptions{RetryWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rep, err := client.Do(scalarQuery(wire.OpKNN, 1, 7))
	if err != nil {
		t.Fatalf("Do across a degraded window: %v", err)
	}
	if rep.Rounds != 1 || len(queries) != 2 {
		t.Fatalf("reply %+v after %d queries, want 2 on one connection", rep, len(queries))
	}
}

// TestClientDeadline bounds a hung frontend with the per-call timeout.
func TestClientDeadline(t *testing.T) {
	addr := stubFrontend(t, func(conn net.Conn) {
		defer conn.Close()
		readQuery(t, conn)
		time.Sleep(5 * time.Second) // never reply
	}, func(conn net.Conn) {
		defer conn.Close()
		readQuery(t, conn)
		time.Sleep(5 * time.Second)
	})
	client, err := DialFrontendOptions(addr, ClientOptions{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Do(scalarQuery(wire.OpKNN, 1, 7))
	var nerr net.Error
	if err == nil || !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Do against a hung frontend: got %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: %v", elapsed)
	}
}
