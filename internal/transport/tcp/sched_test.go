package tcp

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"distknn/internal/wire"
)

// startEchoClusterOptions is startEchoCluster with an explicit scheduler
// configuration and handler factory.
func startEchoClusterOptions(t *testing.T, k int, seed uint64, opts FrontendOptions, newHandler func() Handler) *LocalCluster {
	t.Helper()
	lc, err := ServeLocalOptions(k, seed, opts, newHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return lc
}

func dialNoRetry(t *testing.T, addr string) *Client {
	t.Helper()
	client, err := DialFrontendOptions(addr, ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// TestSchedulerPipelinesEpochs proves distinct client queries overlap on
// the mesh: while one epoch is parked inside a handler, a second client's
// query is admitted, runs its own epoch concurrently, and completes. Under
// the old serialized frontend the second query would queue forever behind
// the parked one.
func TestSchedulerPipelinesEpochs(t *testing.T) {
	k := 3
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	lc := startEchoClusterOptions(t, k, 71, FrontendOptions{Window: 4}, func() Handler {
		return &blockingHandler{entered: entered, release: release}
	})
	leader := lc.Leader()

	blocked := dialNoRetry(t, lc.Addr())
	free := dialNoRetry(t, lc.Addr())

	errCh := make(chan error, 1)
	go func() {
		_, err := blocked.Do(scalarQuery(wire.OpKNN, 1, 4242))
		errCh <- err
	}()
	<-entered

	// The parked epoch holds a window slot; these queries must still run.
	for v := uint64(2); v <= 6; v++ {
		rep, err := free.Do(scalarQuery(wire.OpKNN, 1, v))
		if err != nil {
			t.Fatalf("query %d while an epoch is parked: %v", v, err)
		}
		checkEcho(t, rep, k, v, leader)
	}

	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("parked query: %v", err)
	}
}

// TestSchedulerCoalescesSingleQueries proves transparent server-side
// batching: with MaxServerBatch=4 and a long linger, four concurrently
// arriving single queries must share one lockstep epoch — every reply
// reports the whole epoch's message total (4 sub-programs' broadcasts),
// and each client still gets exactly its own per-query result.
func TestSchedulerCoalescesSingleQueries(t *testing.T) {
	k := 3
	lc := startEchoClusterOptions(t, k, 81, FrontendOptions{
		Window:         2,
		ServerBatch:    true,
		Linger:         10 * time.Second, // only the full bucket may flush
		MaxServerBatch: 4,
	}, func() Handler { return &echoHandler{} })
	leader := lc.Leader()

	const batch = 4
	var wg sync.WaitGroup
	reps := make([]wire.Reply, batch)
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := DialFrontend(lc.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer client.Close()
			reps[i], errs[i] = client.Do(scalarQuery(wire.OpKNN, 1, uint64(i)+10))
		}(i)
	}
	wg.Wait()

	// Each sub-program broadcasts once: k·(k−1) messages per query, and a
	// coalesced epoch of 4 reports the shared total to every participant.
	wantMsgs := int64(batch * k * (k - 1))
	for i := 0; i < batch; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		checkEcho(t, reps[i], k, uint64(i)+10, leader)
		if reps[i].Messages != wantMsgs {
			t.Fatalf("client %d reports %d messages, want the shared epoch total %d — queries did not coalesce",
				i, reps[i].Messages, wantMsgs)
		}
	}
}

// TestSchedulerIsolatesCoalescedFailure pins server-side batching's fate
// isolation: a coalesced batch's participants are strangers, so when one
// client's query fails the shared epoch (the magic 1313 program error),
// the innocent co-batched query must still succeed — the scheduler falls
// back to solo epochs — while the offender gets its own error.
func TestSchedulerIsolatesCoalescedFailure(t *testing.T) {
	k := 3
	lc := startEchoClusterOptions(t, k, 111, FrontendOptions{
		Window:         2,
		ServerBatch:    true,
		Linger:         10 * time.Second, // only the full bucket may flush
		MaxServerBatch: 2,
	}, func() Handler { return &echoHandler{} })
	leader := lc.Leader()

	type outcome struct {
		rep wire.Reply
		err error
	}
	outs := make([]outcome, 2)
	var wg sync.WaitGroup
	for i, v := range []uint64{7, 1313} {
		wg.Add(1)
		go func(i int, v uint64) {
			defer wg.Done()
			client, err := DialFrontendOptions(lc.Addr(), ClientOptions{NoRetry: true})
			if err != nil {
				outs[i].err = err
				return
			}
			defer client.Close()
			outs[i].rep, outs[i].err = client.Do(scalarQuery(wire.OpKNN, 1, v))
		}(i, v)
	}
	wg.Wait()

	if outs[0].err != nil {
		t.Fatalf("innocent coalesced query failed with its neighbor: %v", outs[0].err)
	}
	checkEcho(t, outs[0].rep, k, 7, leader)
	if outs[1].err == nil || !strings.Contains(outs[1].err.Error(), "unlucky") {
		t.Fatalf("offending query: got %v, want its own program error", outs[1].err)
	}
}

// TestFrontendCloseFailsInFlightQueries is the shutdown regression test:
// Close while an epoch is parked inside a handler must fail the in-flight
// query promptly with a retryable error — not hang until the epoch drains,
// and not race the control pumps into a non-retryable failure.
func TestFrontendCloseFailsInFlightQueries(t *testing.T) {
	k := 3
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	lc, err := ServeLocalOptions(k, 91, FrontendOptions{Window: 4}, func() Handler {
		return &blockingHandler{entered: entered, release: release}
	})
	if err != nil {
		t.Fatal(err)
	}
	client := dialNoRetry(t, lc.Addr())

	errCh := make(chan error, 1)
	go func() {
		_, err := client.Do(scalarQuery(wire.OpKNN, 1, 4242))
		errCh <- err
	}()
	<-entered

	closeDone := make(chan error, 1)
	go func() { closeDone <- lc.Close() }()

	// The in-flight query must fail promptly and retryably — either the
	// scheduler's explicit closing reply (degraded bit set) or, if Close
	// won the race to the client socket, a transport failure the client
	// would retry by reconnecting. Never a hang, never a misparse.
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("in-flight query across Close: expected an error")
		}
		if !errors.Is(err, ErrDegraded) && !strings.Contains(err.Error(), "read reply") && !strings.Contains(err.Error(), "send query") {
			t.Fatalf("in-flight query across Close: got a non-retryable failure: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight query hung across Close")
	}

	// The parked epoch is still running on the nodes; Close must wait for
	// it only after the client was answered. Release it and the shutdown
	// completes cleanly.
	close(release)
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Close hung on the draining epoch")
	}
	if err := lc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestEvictFailsOnlyInFlightEpochs pins the scheduler/churn interaction:
// evicting a node fails exactly the epochs in flight on it (retryably),
// while queries admitted after the heal run normally — and other queries
// pipelined alongside the doomed one were already answered from the same
// window.
func TestEvictFailsOnlyInFlightEpochs(t *testing.T) {
	k := 3
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	c := startChurnCluster(t, k, 101, func() Handler {
		return &blockingHandler{entered: entered, release: release}
	})
	leader := c.fe.Leader()
	blocked := dialNoRetry(t, c.fe.Addr())
	free := dialNoRetry(t, c.fe.Addr())

	errCh := make(chan error, 1)
	go func() {
		_, err := blocked.Do(scalarQuery(wire.OpKNN, 1, 4242))
		errCh <- err
	}()
	<-entered

	// A query sharing the window with the parked epoch completes first —
	// proof the eviction below dooms only what was in flight on the seat.
	rep, err := free.Do(scalarQuery(wire.OpKNN, 1, 3))
	if err != nil {
		t.Fatalf("pipelined query before evict: %v", err)
	}
	checkEcho(t, rep, k, 3, leader)

	if err := c.fe.EvictNode(1); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("in-flight query across evict: got %v, want a degraded error", err)
	}
	close(release)

	// Heal and verify the cluster answers bit-identically again.
	c.startNode(&blockingHandler{entered: entered, release: release}, -1)
	checkEcho(t, waitHealthy(t, free, scalarQuery(wire.OpKNN, 1, 8)), k, 8, leader)
}
