// Package testutil is the shared spin-up harness for the root package's
// remote serving tests: one generic helper that serves a loopback typed TCP
// cluster, dials it, and tears both down at test cleanup — replacing the
// per-point-type copies that had accreted across the remote_*_test.go
// files. It lives outside the test files so every suite (scalar, vector,
// bit-vector, metric variants, the pruned-dispatch metamorphic tests)
// builds its cluster the same way.
package testutil

import (
	"testing"

	"distknn"
)

// StartCluster serves a loopback TCP cluster of k nodes for pt over the
// given shards, dials it with pt's codec, and registers cleanup of both the
// client and the server with the test. fopts configures the frontend's
// epoch scheduler (zero value = defaults); pass a Pruner there to serve
// with metric-index pruned dispatch.
func StartCluster[P any](t *testing.T, pt distknn.PointType[P], k int, seed uint64, shards distknn.ShardProvider[P], opts distknn.NodeOptions, fopts distknn.FrontendOptions) (*distknn.LocalServer, *distknn.RemoteCluster[P]) {
	t.Helper()
	srv, err := distknn.ServeTypedLocalOptions(pt, k, seed, shards, opts, fopts)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := distknn.DialTypedCluster(pt, srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rc.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, rc
}

// Merged reassembles the global dataset a ShardProvider distributes, in
// shard-major order — the dataset an equivalent in-process cluster is built
// over. For providers with contiguous ID blocks (the uniform providers)
// shard-major order is ID order, so in-process clusters assign the same IDs
// 1..n; anchor-clustered providers permute points across shards and need
// ID-aware comparison instead.
func Merged[P any](t *testing.T, shards distknn.ShardProvider[P], k int) ([]P, []float64) {
	t.Helper()
	var pts []P
	var labels []float64
	for id := 0; id < k; id++ {
		s, err := shards(id, k)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, s.Points...)
		labels = append(labels, s.Labels...)
	}
	return pts, labels
}
