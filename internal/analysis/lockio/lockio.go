// Package lockio defines the knnlint analyzer that flags a mutex held
// across blocking network I/O or channel operations in the mesh/rejoin
// paths (internal/transport/tcp) — the PR 4 deadlock class: a lock that
// guards shared seat or peer state must never wait on a socket or an
// unbuffered channel, or one stuck peer wedges every path that needs the
// lock (including the eviction that would unstick it).
//
// The analysis is block-structured and per-function: it tracks which
// mutexes are held (x.Lock() .. x.Unlock(), with defer x.Unlock() holding
// to function end) and reports, inside held regions, calls that perform
// network I/O (net.Conn/net.Listener methods, net.Dial*, io.Copy/ReadFull,
// wire frame I/O, Writer.EndFrame) and channel sends/receives. Function
// literals are analyzed as separate bodies: a goroutine spawned under a
// lock does not run under it.
package lockio

import (
	"go/ast"
	"go/types"

	"distknn/internal/analysis/knnlint"
)

// Analyzer implements the check.
var Analyzer = &knnlint.Analyzer{
	Name: "lockio",
	Doc: "no mutex held across blocking network I/O or channel operations in " +
		"the mesh/rejoin paths",
	Run: run,
}

// Scope: the real-socket transport, where the deadlock class lives.
var scopePackages = []string{"internal/transport/tcp"}

// blockingConnMethods are the net.Conn / net.Listener methods that can
// block on the peer. Close and the Set*Deadline family are quick and are
// exactly what a teardown path legitimately does under a lock.
var blockingConnMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true,
	"ReadFrom": true, "WriteTo": true,
}

func run(pass *knnlint.Pass) error {
	inScope := false
	for _, s := range scopePackages {
		if knnlint.PkgPathHasSuffix(pass.Pkg.Path(), s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkBody scans one function body (and, recursively with a fresh held
// set, every function literal inside it).
func checkBody(pass *knnlint.Pass, body *ast.BlockStmt) {
	scanStmts(pass, body.List, map[string]bool{})
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		return true
	})
}

// scanStmts walks a statement list in order, maintaining the set of held
// mutexes (keyed by the receiver expression text, e.g. "sched.mu").
// Nested blocks inherit a copy of the held set, so a conditional unlock
// inside an if-branch does not end the critical section outside it.
func scanStmts(pass *knnlint.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, op := lockOp(s.X); key != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = true
					continue
				case "Unlock", "RUnlock":
					delete(held, key)
					continue
				}
			}
		case *ast.DeferStmt:
			if key, op := lockOp(s.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
				continue // runs at return: the lock stays held for the scan
			}
		}
		if len(held) > 0 {
			reportBlocking(pass, stmt, held)
		}
		// Recurse into nested blocks with a copy of the held set.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanStmts(pass, s.List, copySet(held))
		case *ast.IfStmt:
			scanIf(pass, s, held)
		case *ast.ForStmt:
			scanStmts(pass, s.Body.List, copySet(held))
		case *ast.RangeStmt:
			scanStmts(pass, s.Body.List, copySet(held))
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					scanStmts(pass, c.Body, copySet(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					scanStmts(pass, c.Body, copySet(held))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					scanStmts(pass, c.Body, copySet(held))
				}
			}
		}
	}
}

func scanIf(pass *knnlint.Pass, s *ast.IfStmt, held map[string]bool) {
	scanStmts(pass, s.Body.List, copySet(held))
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		scanStmts(pass, e.List, copySet(held))
	case *ast.IfStmt:
		scanIf(pass, e, held)
	}
}

func copySet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// lockOp recognizes x.Lock/Unlock/RLock/RUnlock() on a sync.(RW)Mutex and
// returns the receiver's expression text plus the operation name.
func lockOp(e ast.Expr) (string, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name
	}
	return "", ""
}

// reportBlocking inspects one statement (excluding nested blocks and
// function literals, which are handled by the scanners) for blocking
// operations and reports them against the held set.
func reportBlocking(pass *knnlint.Pass, stmt ast.Stmt, held map[string]bool) {
	heldNames := func() string {
		for k := range held {
			return k // one representative lock is plenty for the message
		}
		return ""
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			return false // scanned by the statement walkers
		case *ast.FuncLit:
			return false // separate execution; scanned with a fresh held set
		case *ast.SelectStmt:
			// A select with a default never blocks; one without is a
			// blocking channel operation. Its case bodies are scanned
			// separately by the statement walkers.
			hasDefault := false
			for _, cc := range n.Body.List {
				if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pass.Reportf(n.Pos(), "select with no default while holding %s: a silent peer wedges every path that needs the lock", heldNames())
			}
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s: a blocked receiver wedges every path that needs the lock", heldNames())
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while holding %s: a silent sender wedges every path that needs the lock", heldNames())
			}
		case *ast.CallExpr:
			if msg := blockingCall(pass, n); msg != "" {
				pass.Reportf(n.Pos(), "%s while holding %s: one stuck peer wedges every path that needs the lock", msg, heldNames())
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking network I/O, returning a
// description or "".
func blockingCall(pass *knnlint.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name

	// Package-level functions: net.Dial*, io.Copy/ReadFull/ReadAll,
	// wire.WriteFrame/ReadFrame/ReadFrameInto.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			switch path := pn.Imported().Path(); {
			case path == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen"):
				return "net." + name
			case path == "io" && (name == "Copy" || name == "ReadFull" || name == "ReadAll"):
				return "io." + name
			case knnlint.PkgPathHasSuffix(path, "internal/wire") &&
				(name == "WriteFrame" || name == "ReadFrame" || name == "ReadFrameInto"):
				return "wire." + name
			}
			return ""
		}
	}

	// Methods: blocking net.Conn/net.Listener calls, and Writer.EndFrame
	// (which writes the frame to its destination socket).
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return ""
	}
	if name == "EndFrame" && isWireWriter(recv) {
		return "Writer.EndFrame (socket write)"
	}
	if blockingConnMethods[name] && isNetType(recv) {
		return "net connection " + name
	}
	return ""
}

func isNetType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

func isWireWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil &&
		knnlint.PkgPathHasSuffix(obj.Pkg().Path(), "internal/wire")
}
