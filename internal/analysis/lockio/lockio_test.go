package lockio_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	analyzertest.Run(t, "../testdata", lockio.Analyzer,
		"example.com/internal/transport/tcp")
}
