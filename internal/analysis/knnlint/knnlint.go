// Package knnlint is the analyzer framework behind cmd/knnlint: a
// deliberately small, dependency-free re-implementation of the parts of
// golang.org/x/tools/go/analysis that the project's static invariants
// need. Each analyzer inspects one type-checked package at a time and
// reports diagnostics; the driver applies //knnlint:allow escape
// directives and enforces their hygiene.
//
// Directive syntax (line comment, own line or trailing the offending
// line):
//
//	//knnlint:allow name1,name2 -- reason the violation is audited
//
// A directive suppresses the named analyzers' diagnostics on its own line
// and on the line immediately below it. The reason after " -- " is
// mandatory: a directive without one is itself reported, so every escape
// in the tree stays explained. Naming an analyzer that does not exist is
// reported too (it would otherwise suppress nothing, silently).
package knnlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package through the Pass and reports findings with
// Pass.Reportf.
type Analyzer struct {
	Name string // short lowercase identifier, used in //knnlint:allow
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers that
// guard production invariants skip test files (benchmarks and stubs
// deliberately do odd things); the fixtures under testdata are plain .go
// files, so they stay covered.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PkgPathHasSuffix reports whether path ends in suffix on an import-path
// element boundary ("a/internal/core" matches "internal/core";
// "printernal/core" does not).
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// directive is one parsed //knnlint:allow comment.
type directive struct {
	pos    token.Position
	names  []string
	reason string
}

const directivePrefix = "//knnlint:allow"

// parseDirectives scans every comment of every file for allow directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var ds []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				d := directive{pos: fset.Position(c.Pos())}
				names, reason, hasReason := strings.Cut(text, "--")
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.names = append(d.names, n)
					}
				}
				if hasReason {
					d.reason = strings.TrimSpace(reason)
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// Run executes analyzers over one type-checked package, filters
// diagnostics through the package's //knnlint:allow directives, appends
// directive-hygiene diagnostics (missing reason, unknown analyzer name),
// and returns the survivors sorted by position. knownNames is the full
// set of analyzer names valid in directives; nil means the run set.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer, knownNames []string) ([]Diagnostic, error) {

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}

	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, n := range knownNames {
		known[n] = true
	}

	ds := parseDirectives(fset, files)

	// allowed[name][file:line] — a directive covers its own line and the
	// line immediately below, so it works both trailing the offending
	// statement and on its own line above it.
	allowed := make(map[string]map[string]bool)
	for _, d := range ds {
		for _, n := range d.names {
			if d.reason == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "knnlint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("knnlint:allow %s needs a reason (\"//knnlint:allow %s -- why this is safe\")", n, n),
				})
				continue
			}
			if !known[n] {
				diags = append(diags, Diagnostic{
					Analyzer: "knnlint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("knnlint:allow names unknown analyzer %q", n),
				})
				continue
			}
			m := allowed[n]
			if m == nil {
				m = make(map[string]bool)
				allowed[n] = m
			}
			m[fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line)] = true
			m[fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line+1)] = true
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if allowed[d.Analyzer][fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}
