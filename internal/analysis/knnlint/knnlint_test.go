package knnlint_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/detsource"
	"distknn/internal/analysis/knnlint"
)

// TestDirectiveHygiene exercises the driver's own findings: a reason-less
// //knnlint:allow and one naming an unknown analyzer are both reported.
// The analyzer run alongside is irrelevant (the fixture trips none); the
// hygiene diagnostics come from the driver.
func TestDirectiveHygiene(t *testing.T) {
	analyzertest.Run(t, "../testdata", detsource.Analyzer, "example.com/hygiene")
}

func TestPkgPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"distknn/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"distknn/printernal/core", "internal/core", false},
		{"distknn/internal/core/sub", "internal/core", false},
		{"example.com/internal/transport/tcp", "internal/transport/tcp", true},
	}
	for _, c := range cases {
		if got := knnlint.PkgPathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PkgPathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}
