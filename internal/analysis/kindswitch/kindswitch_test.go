package kindswitch_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/kindswitch"
)

func TestKindswitch(t *testing.T) {
	analyzertest.Run(t, "../testdata", kindswitch.Analyzer, "example.com/kindsw")
}
