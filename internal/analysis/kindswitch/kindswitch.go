// Package kindswitch defines the knnlint analyzer that keeps wire.Kind
// dispatch exhaustive: every switch whose tag is a wire.Kind must either
// handle all declared kinds or carry an explicit default, so adding a
// frame kind (as PRs 4–8 each did) turns every dispatch site that needs
// updating into a build-gate failure instead of a silent drop.
package kindswitch

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"distknn/internal/analysis/knnlint"
)

// Analyzer implements the check.
var Analyzer = &knnlint.Analyzer{
	Name: "kindswitch",
	Doc: "a switch on wire.Kind must handle every declared kind or carry an " +
		"explicit default",
	Run: run,
}

func run(pass *knnlint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := kindType(pass.TypesInfo.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			checkSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

// kindType unwraps t to the named type wire.Kind, or nil.
func kindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil ||
		!knnlint.PkgPathHasSuffix(obj.Pkg().Path(), "internal/wire") {
		return nil
	}
	return named
}

func checkSwitch(pass *knnlint.Pass, sw *ast.SwitchStmt, named *types.Named) {
	// All declared kinds: the Kind-typed constants in the wire package.
	declared := make(map[string]string) // exact constant value -> name
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		declared[c.Val().ExactString()] = name
	}

	handled := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the site owns its fallthrough story
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				handled[constant.ToInt(tv.Value).ExactString()] = true
			}
		}
	}

	var missing []string
	for val, name := range declared {
		if !handled[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch on wire.Kind has no default and misses %s: handle them or add an explicit default",
		fmt.Sprintf("[%s]", strings.Join(missing, " ")))
}
