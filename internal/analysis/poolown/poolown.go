// Package poolown defines the knnlint analyzer that audits pooled-resource
// ownership on the data plane. wire.GetWriter and wire.GetFrameBuf check a
// buffer out of a sync.Pool; losing it costs steady-state allocations, and
// double-handing it corrupts a concurrently reused frame. The check is
// function-granular: a function (including its nested function literals —
// the per-epoch goroutine closures are part of the same ownership story)
// that checks a resource out must either release it with the matching Put,
// return it to its caller (a visible handoff, like epochErrorFrame), or
// document the transfer with //knnlint:allow poolown -- reason.
//
// The analyzer also flags a pooled writer escaping into long-lived
// structure — stored in a field, sent on a channel, or embedded in a
// composite literal — because pooled memory must never outlive the
// documented ownership window.
package poolown

import (
	"go/ast"
	"go/types"

	"distknn/internal/analysis/knnlint"
)

// Analyzer implements the check.
var Analyzer = &knnlint.Analyzer{
	Name: "poolown",
	Doc: "pooled wire buffers (GetWriter/GetFrameBuf) must reach their Put, be " +
		"returned, or carry a documented handoff; they must not escape into " +
		"fields, channels, or composite literals",
	Run: run,
}

// classes pairs each pool getter with its releaser.
var classes = map[string]string{
	"GetWriter":   "PutWriter",
	"GetFrameBuf": "PutFrameBuf",
}

func run(pass *knnlint.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *knnlint.Pass, fn *ast.FuncDecl) {
	gets := map[string][]*ast.CallExpr{} // getter name -> call sites
	puts := map[string]bool{}            // putter name -> seen
	returnsWriter := false
	var writerVars []types.Object

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := wireFunc(pass, n); ok {
				if _, isGet := classes[name]; isGet {
					gets[name] = append(gets[name], n)
				} else if name == "PutWriter" || name == "PutFrameBuf" {
					puts[name] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isPooledWriter(pass.TypesInfo.TypeOf(res)) {
					returnsWriter = true
				}
			}
		case *ast.AssignStmt:
			// Track idents bound directly to wire.GetWriter() so escapes
			// can be reported by variable.
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if name, ok := wireFunc(pass, call); !ok || name != "GetWriter" {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							writerVars = append(writerVars, obj)
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							writerVars = append(writerVars, obj)
						}
					}
				}
			}
		}
		return true
	})

	for getter, calls := range gets {
		putter := classes[getter]
		if puts[putter] {
			continue
		}
		if getter == "GetWriter" && returnsWriter {
			continue // ownership visibly moves to the caller
		}
		for _, call := range calls {
			pass.Reportf(call.Pos(),
				"wire.%s result never reaches wire.%s in this function: release it, return it, or document the handoff with //knnlint:allow poolown -- reason",
				getter, putter)
		}
	}

	if len(writerVars) > 0 {
		checkEscapes(pass, fn, writerVars)
	}
}

// checkEscapes reports pooled writers stored into fields or elements,
// sent on channels, or embedded in composite literals.
func checkEscapes(pass *knnlint.Pass, fn *ast.FuncDecl, vars []types.Object) {
	isTracked := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		for _, v := range vars {
			if obj == v {
				return v
			}
		}
		return nil
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				v := isTracked(rhs)
				if v == nil || i >= len(n.Lhs) {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					pass.Reportf(rhs.Pos(),
						"pooled writer %s escapes into a field or element: pooled memory must not outlive its ownership window", v.Name())
				}
			}
		case *ast.SendStmt:
			if v := isTracked(n.Value); v != nil {
				pass.Reportf(n.Value.Pos(),
					"pooled writer %s escapes on a channel send: pooled memory must not outlive its ownership window", v.Name())
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if v := isTracked(e); v != nil {
					pass.Reportf(e.Pos(),
						"pooled writer %s escapes into a composite literal: pooled memory must not outlive its ownership window", v.Name())
				}
			}
		}
		return true
	})
}

// wireFunc resolves call to the name of a package-level function of the
// wire package, if it is one.
func wireFunc(pass *knnlint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	var obj types.Object
	if ok {
		obj = pass.TypesInfo.Uses[sel.Sel]
	} else if id, isIdent := call.Fun.(*ast.Ident); isIdent {
		obj = pass.TypesInfo.Uses[id] // intra-package call (the wire package itself)
	}
	fnObj, ok := obj.(*types.Func)
	if !ok || fnObj.Pkg() == nil ||
		!knnlint.PkgPathHasSuffix(fnObj.Pkg().Path(), "internal/wire") {
		return "", false
	}
	if sig, ok := fnObj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fnObj.Name(), true
}

// isPooledWriter reports whether t is *wire.Writer.
func isPooledWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil &&
		knnlint.PkgPathHasSuffix(obj.Pkg().Path(), "internal/wire")
}
