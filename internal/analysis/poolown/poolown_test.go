package poolown_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/poolown"
)

func TestPoolown(t *testing.T) {
	analyzertest.Run(t, "../testdata", poolown.Analyzer, "example.com/pool")
}
