package fpsum_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/fpsum"
)

func TestFpsum(t *testing.T) {
	analyzertest.Run(t, "../testdata", fpsum.Analyzer, "example.com/internal/points")
}
