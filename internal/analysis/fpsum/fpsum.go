// Package fpsum defines the knnlint analyzer that guards the
// floating-point accumulation discipline: distance kernels and Regress
// folds stay bit-identical across serving shapes only because every
// reduction is a single accumulator taking sequential adds in a fixed
// order. The analyzer flags the two patterns that invite reassociation:
//
//   - multi-accumulator reductions: several float accumulators updated in
//     one loop and later combined (s0+s1+s2+s3) — the classic unrolling
//     "optimization" that changes the rounding of the result;
//   - map-order summation: a float accumulated across a map range, whose
//     iteration order varies run to run.
//
// The 4-way unrolled L2 kernel in internal/points is the sanctioned
// shape: unrolled loads feeding ONE accumulator, sequentially.
package fpsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"distknn/internal/analysis/knnlint"
)

// Analyzer implements the check.
var Analyzer = &knnlint.Analyzer{
	Name: "fpsum",
	Doc: "no multi-accumulator float reductions or map-order float summation " +
		"where sequential single-accumulator adds are load-bearing for " +
		"bit-identity",
	Run: run,
}

// scopePackages: the distance kernels and every package that folds
// per-shard float partials into an answer.
var scopePackages = []string{
	"internal/kmachine",
	"internal/core",
	"internal/metricindex",
	"internal/transport/tcp",
	"internal/points",
}

func run(pass *knnlint.Pass) error {
	inScope := false
	for _, s := range scopePackages {
		if knnlint.PkgPathHasSuffix(pass.Pkg.Path(), s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *knnlint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass, loop) {
				checkMapSum(pass, loop)
			}
			checkMultiAccum(pass, fn, loop.Body, loop.Pos())
		case *ast.ForStmt:
			checkMultiAccum(pass, fn, loop.Body, loop.Pos())
		}
		return true
	})
}

func isMapRange(pass *knnlint.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapSum reports float accumulation inside a map-range body.
func checkMapSum(pass *knnlint.Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if obj := floatAccumTarget(pass, n); obj != nil {
			pass.Reportf(n.Pos(),
				"float accumulation in map-iteration order: summing %s across a map range is reassociation by another name; iterate sorted keys",
				obj.Name())
		}
		return true
	})
}

// checkMultiAccum reports >=2 float accumulators updated in one loop body
// that the surrounding function later adds to each other.
func checkMultiAccum(pass *knnlint.Pass, fn *ast.FuncDecl, body *ast.BlockStmt, loopPos token.Pos) {
	accums := map[types.Object]bool{}
	for _, stmt := range body.List {
		// Only direct statements of the loop body: accumulators in nested
		// loops belong to those loops.
		if obj := floatAccumTarget(pass, stmt); obj != nil {
			accums[obj] = true
		}
	}
	if len(accums) < 2 {
		return
	}
	// Combined later? Look for a + whose operand identifiers include two
	// distinct accumulators of this loop, anywhere in the function.
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return true
		}
		distinct := map[types.Object]bool{}
		for _, leaf := range addLeaves(bin) {
			if id, ok := leaf.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && accums[obj] {
					distinct[obj] = true
				}
			}
		}
		if len(distinct) >= 2 {
			found = true
		}
		return true
	})
	if found {
		pass.Reportf(loopPos,
			"multi-accumulator float reduction: %d accumulators combined after the loop reassociate the sum; use one sequential accumulator (unroll loads, not adds)",
			len(accums))
	}
}

// floatAccumTarget returns the accumulated variable when n is a
// float-typed `x += e`, `x -= e`, or `x = x + e` / `x = e + x`.
func floatAccumTarget(pass *knnlint.Pass, n ast.Node) types.Object {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || !isFloat(obj.Type()) {
		return nil
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return obj
	case token.ASSIGN:
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if sid, ok := side.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(sid) == obj {
				return obj
			}
		}
	}
	return nil
}

// addLeaves flattens a tree of + into its operand expressions.
func addLeaves(e ast.Expr) []ast.Expr {
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		return append(addLeaves(bin.X), addLeaves(bin.Y)...)
	}
	return []ast.Expr{e}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
