// Package unitchecker implements the `go vet -vettool` protocol for the
// knnlint analyzer suite using only the standard library. The go command
// drives a vet tool one compilation unit at a time: it writes a JSON
// config naming the unit's source files and the export-data files of its
// dependencies, then invokes the tool with that config as its sole
// argument. The tool type-checks the unit (importing dependencies from
// the export data, exactly as the compiler saw them), runs its analyzers,
// prints diagnostics, and writes the facts file the go command expects —
// empty here, since no knnlint analyzer exchanges cross-package facts.
//
// The protocol also includes two handshakes before any checking:
//
//	tool -V=full   print an identity line the go command hashes into its
//	               build cache key (ours embeds a content hash of the
//	               tool binary, so rebuilding knnlint invalidates stale
//	               vet results);
//	tool -flags    print a JSON description of supported analyzer flags
//	               (none) so `go vet` can validate its command line.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"

	"distknn/internal/analysis/knnlint"
)

// Config is the JSON schema of the file the go command passes to a
// -vettool, mirroring cmd/go/internal/work's vet config. Fields the
// knnlint suite has no use for are retained so the decoder stays strict
// about nothing and forward-compatible with the go command.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary built over the given
// analyzers. It never returns.
func Main(analyzers ...*knnlint.Analyzer) {
	progname := filepath.Base(os.Args[0])
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion(progname)
			os.Exit(0)
		}
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON for the go command")
	jsonFlag := fs.Bool("json", false, "emit JSON output")
	fs.Int("c", -1, "display offending line with this many lines of context (ignored)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: the knnlint analyzer suite for this repository.\n\n", progname)
		fmt.Fprintf(os.Stderr, "Usage: go vet -vettool=$(command -v %s) ./...\n\n", progname)
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *flagsFlag {
		// No analyzer flags: every check is always on. The go command
		// just needs valid JSON here.
		fmt.Println("[]")
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	diags, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if *jsonFlag {
		printJSON(diags)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emits the identity line of the go command's -V=full
// protocol: "<name> version devel ... buildID=<content hash>". Hashing
// the executable means a rebuilt tool gets a fresh vet cache.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil))
}

var goVersionRx = regexp.MustCompile(`^go1\.\d+`)

func runUnit(cfgPath string, analyzers []*knnlint.Analyzer) ([]knnlint.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}

	// The go command always expects the facts file; knnlint analyzers
	// exchange no facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency unit: facts only, nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(error) {}, // collect the first error via Check's return
	}
	if v := goVersionRx.FindString(cfg.GoVersion); v != "" {
		tc.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return knnlint.Run(fset, files, pkg, info, analyzers, names)
}

// printJSON emits diagnostics in the x/tools unitchecker JSON shape:
// {"<analyzer>": [{"posn": ..., "message": ...}]}.
func printJSON(diags []knnlint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	out := make(map[string][]jsonDiag)
	for _, d := range diags {
		out[d.Analyzer] = append(out[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
