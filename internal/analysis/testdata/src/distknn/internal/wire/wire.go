// Package wire is a fixture stub of the real distknn/internal/wire: the
// Kind type with a small constant set (kindswitch enumerates these), the
// pooled Writer and frame-buffer getters/putters (poolown pairs them), and
// the frame I/O functions (lockio classifies them as blocking).
package wire

type Kind uint8

const (
	KindRegister Kind = 1
	KindQuery    Kind = 2
	KindReply    Kind = 3
	KindShutdown Kind = 4
)

type Writer struct{ buf []byte }

func (w *Writer) Kind(k Kind)              {}
func (w *Writer) U8(v uint8)               {}
func (w *Writer) BeginFrame()              {}
func (w *Writer) EndFrame(dst any) error   { return nil }
func (w *Writer) Bytes() []byte            { return w.buf }

func GetWriter() *Writer   { return &Writer{} }
func PutWriter(w *Writer)  {}
func GetFrameBuf() []byte  { return nil }
func PutFrameBuf(b []byte) {}

func WriteFrame(dst any, frame []byte) error { return nil }
func ReadFrame(src any) ([]byte, error)      { return nil, nil }
