// Package sync is a fixture stub: Mutex and RWMutex with the method set
// the lockio analyzer keys on.
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
