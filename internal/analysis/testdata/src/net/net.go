// Package net is a fixture stub: a connection type whose blocking methods
// (Read/Write) and quick methods (Close, Set*Deadline) let the lockio
// analyzer's testdata typecheck hermetically.
package net

import "time"

type TCPConn struct{}

func (c *TCPConn) Read(b []byte) (int, error)         { return 0, nil }
func (c *TCPConn) Write(b []byte) (int, error)        { return 0, nil }
func (c *TCPConn) Close() error                       { return nil }
func (c *TCPConn) SetDeadline(t time.Time) error      { return nil }
func (c *TCPConn) SetWriteDeadline(t time.Time) error { return nil }

func Dial(network, address string) (*TCPConn, error) { return nil, nil }
