// Package time is a fixture stub: just enough surface for the analyzers'
// testdata to typecheck without export data for the real standard library.
package time

type Time struct{}

type Duration int64

const Second Duration = 1e9

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Until(t Time) Duration { return 0 }

func (t Time) Add(d Duration) Time { return t }
