// Package rand is a fixture stub of math/rand/v2: package-level functions
// draw from the globally seeded source; New/NewPCG construct explicitly
// seeded generators.
package rand

func Int() int        { return 0 }
func IntN(n int) int  { return 0 }
func Float64() float64 { return 0 }

type PCG struct{}

func NewPCG(seed1, seed2 uint64) *PCG { return &PCG{} }

type Rand struct{}

func New(src *PCG) *Rand { return &Rand{} }

func (r *Rand) Int() int       { return 0 }
func (r *Rand) IntN(n int) int { return 0 }
