// Fixture: determinism-critical package (path suffix internal/kmachine).
// Positive cases carry want annotations; the unannotated functions are the
// sanctioned shapes the analyzer must stay silent on.
package kmachine

import (
	rand "math/rand/v2"
	"net"
	"time"
)

func epochNow() time.Time {
	return time.Now() // want `time.Now in determinism-critical package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in determinism-critical package`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until in determinism-critical package`
}

func pick(n int) int {
	return rand.IntN(n) // want `math/rand/v2.IntN uses the globally seeded source`
}

func seeded(n int) int {
	r := rand.New(rand.NewPCG(1, 2)) // constructors of seeded generators are fine
	return r.IntN(n)
}

func total(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func collect(m map[int]int) []int {
	// The sanctioned collect-then-sort idiom: append-only bodies are
	// order-insensitive and must not be flagged.
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func armDeadline(c *net.TCPConn) {
	// Socket deadlines are wall-clock by nature: time.Now feeding a
	// Set*Deadline argument directly is exempt.
	c.SetDeadline(time.Now().Add(time.Second))
}
