package kmachine

import (
	"time"

	"example.com/internal/obs"
)

// Telemetry-only wall-clock readings are exempt: a duration that flows
// only into an internal/obs recorder cannot perturb an epoch's answer.

func telemetryDirect(h *obs.Histogram, t0 time.Time) {
	h.ObserveDuration(time.Since(t0)) // nested directly in an obs argument
}

func telemetryIdentFlow(h *obs.Histogram) {
	start := time.Now() // every use flows into the obs call below
	h.Observe(int64(time.Since(start)))
}

func telemetryChain(h *obs.Histogram) {
	start := time.Now() // resolves by fixpoint through the Since local
	d := time.Since(start)
	h.Observe(int64(d))
}

func telemetryLeak(h *obs.Histogram) time.Time {
	leak := time.Now() // want `time.Now in determinism-critical package`
	h.Observe(int64(time.Since(leak)))
	return leak // the reading escapes the telemetry sink
}

func telemetryReassigned(h *obs.Histogram, t1 time.Time) {
	t := time.Now() // want `time.Now in determinism-critical package`
	t = t1
	h.Observe(int64(time.Since(t)))
}

func telemetryUnrelated(h *obs.Histogram) time.Duration {
	d := time.Since(time.Time{}) // want `time.Since in determinism-critical package`
	h.Observe(int64(d))
	return d
}
