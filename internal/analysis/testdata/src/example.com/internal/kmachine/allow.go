// Fixture: the //knnlint:allow escape hatch, both trailing the offending
// line and on its own line above it. Neither site may be reported.
package kmachine

import "time"

func meteredTrailing(start time.Time) time.Duration {
	return time.Since(start) //knnlint:allow detsource -- compute-time metric only; never feeds the answer
}

func meteredAbove(start time.Time) time.Duration {
	//knnlint:allow detsource -- compute-time metric only; never feeds the answer
	return time.Since(start)
}
