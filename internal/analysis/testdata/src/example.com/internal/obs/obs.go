// Package obs is a fixture stub mirroring the shape of
// distknn/internal/obs: the detsource testdata exercises the telemetry
// exemption against it, keyed on the import-path suffix "internal/obs".
package obs

import "time"

type Histogram struct{}

func (h *Histogram) Observe(v int64)                 {}
func (h *Histogram) ObserveDuration(d time.Duration) {}

type Counter struct{}

func (c *Counter) Inc() {}
