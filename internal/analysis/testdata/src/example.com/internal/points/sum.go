// Fixture for fpsum (package path suffix internal/points puts it in
// scope): float reductions must be single-accumulator and never in map
// order.
package points

func mapSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation in map-iteration order`
	}
	return sum
}

func unrolledAccums(xs []float64) float64 {
	var s0, s1 float64
	for i := 0; i+1 < len(xs); i += 2 { // want `multi-accumulator float reduction`
		s0 += xs[i]
		s1 += xs[i+1]
	}
	return s0 + s1
}

func sequential(xs []float64) float64 {
	// The sanctioned shape: one accumulator, sequential adds.
	var s float64
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

func independentAccums(xs []float64) (float64, float64) {
	// Two accumulators that are never combined are independent
	// reductions, not a split sum.
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	return sum, sumsq
}

func intMapSum(m map[int]int) int {
	// Integer addition is associative; map-order summation of ints is
	// detsource's concern, not fpsum's.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func audited(xs []float64) float64 {
	var s0, s1 float64
	//knnlint:allow fpsum -- diagnostic-only estimate; reassociation is acceptable here
	for i := 0; i+1 < len(xs); i += 2 {
		s0 += xs[i]
		s1 += xs[i+1]
	}
	return s0 + s1
}
