// Fixture for lockio (package path suffix internal/transport/tcp puts it
// in scope): no mutex held across blocking network I/O or channel
// operations.
package tcp

import (
	"net"
	"sync"
	"time"

	"distknn/internal/wire"
)

type peer struct {
	mu   sync.Mutex
	conn *net.TCPConn
	ch   chan int
}

func (p *peer) badFrameWrite(frame []byte) {
	p.mu.Lock()
	wire.WriteFrame(p.conn, frame) // want `wire.WriteFrame while holding p.mu`
	p.mu.Unlock()
}

func (p *peer) badFrameRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	wire.ReadFrame(p.conn) // want `wire.ReadFrame while holding p.mu`
}

func (p *peer) badSend(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- v // want `channel send while holding p.mu`
}

func (p *peer) badRecv() int {
	p.mu.Lock()
	v := <-p.ch // want `channel receive while holding p.mu`
	p.mu.Unlock()
	return v
}

func (p *peer) badConnWrite(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.Write(b) // want `net connection Write while holding p.mu`
}

func (p *peer) badDial(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	net.Dial("tcp", addr) // want `net.Dial while holding p.mu`
}

func (p *peer) badEndFrame(w *wire.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.EndFrame(p.conn) // want `Writer.EndFrame \(socket write\) while holding p.mu`
}

func (p *peer) badSelect() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `select with no default while holding p.mu`
	case v := <-p.ch:
		return v
	}
}

func (p *peer) goodAfterUnlock(frame []byte) {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	wire.WriteFrame(conn, frame)
}

func (p *peer) goodTeardown() {
	// Close and Set*Deadline are quick; exactly what a teardown path
	// legitimately does under the lock.
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(time.Second))
	p.conn.Close()
}

func (p *peer) goodGoroutine(frame []byte) {
	// The spawned goroutine does not run under the caller's lock.
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		wire.WriteFrame(p.conn, frame)
	}()
}

func (p *peer) goodNonBlockingSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
	default:
	}
}

func (p *peer) auditedWrite(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//knnlint:allow lockio -- handshake serialization: the conn carries a deadline, a wedge resolves in one timeout
	wire.WriteFrame(p.conn, frame)
}
