// Fixture for kindswitch: the stub wire package declares exactly four
// kinds (KindRegister, KindQuery, KindReply, KindShutdown).
package kindsw

import "distknn/internal/wire"

func missing(k wire.Kind) int {
	switch k { // want `switch on wire.Kind has no default and misses \[KindReply KindShutdown\]`
	case wire.KindRegister:
		return 1
	case wire.KindQuery:
		return 2
	}
	return 0
}

func exhaustive(k wire.Kind) int {
	switch k {
	case wire.KindRegister, wire.KindQuery:
		return 1
	case wire.KindReply, wire.KindShutdown:
		return 2
	}
	return 0
}

func defaulted(k wire.Kind) int {
	switch k {
	case wire.KindRegister:
		return 1
	default:
		return 0
	}
}

func notAKindSwitch(n int) int {
	// An int switch is none of this analyzer's business.
	switch n {
	case 1:
		return 1
	}
	return 0
}

func audited(k wire.Kind) int {
	//knnlint:allow kindswitch -- probe dispatcher: unlisted kinds intentionally fall through to 0
	switch k {
	case wire.KindQuery:
		return 1
	}
	return 0
}
