// Fixture for poolown: pooled buffers must reach their Put, be returned,
// or carry a documented handoff; and they must not escape into long-lived
// structure.
package pool

import "distknn/internal/wire"

func leak() {
	w := wire.GetWriter() // want `wire.GetWriter result never reaches wire.PutWriter`
	w.BeginFrame()
}

func leakBuf() {
	buf := wire.GetFrameBuf() // want `wire.GetFrameBuf result never reaches wire.PutFrameBuf`
	_ = buf
}

func balanced() {
	w := wire.GetWriter()
	w.BeginFrame()
	wire.PutWriter(w)
}

func balancedBuf() {
	buf := wire.GetFrameBuf()
	wire.PutFrameBuf(buf)
}

func handoffByReturn() *wire.Writer {
	// Returning the writer is a visible ownership transfer.
	w := wire.GetWriter()
	w.BeginFrame()
	return w
}

type box struct{ w *wire.Writer }

func storesInField(b *box) {
	w := wire.GetWriter()
	b.w = w // want `pooled writer w escapes into a field or element`
	wire.PutWriter(w)
}

func sendsOnChannel(ch chan *wire.Writer) {
	w := wire.GetWriter()
	ch <- w // want `pooled writer w escapes on a channel send`
	wire.PutWriter(w)
}

func inCompositeLit() []*wire.Writer {
	w := wire.GetWriter()
	out := []*wire.Writer{w} // want `pooled writer w escapes into a composite literal`
	wire.PutWriter(w)
	return out
}

func documentedHandoff(ch chan *wire.Writer) {
	//knnlint:allow poolown -- the consumer goroutine owns w after the send and puts it once flushed
	w := wire.GetWriter()
	//knnlint:allow poolown -- the consumer goroutine owns w after the send and puts it once flushed
	ch <- w
}
