// Fixture: NOT a determinism-critical package — detsource must not fire
// here at all.
package other

import "time"

func Stamp() time.Time { return time.Now() }

func Total(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
