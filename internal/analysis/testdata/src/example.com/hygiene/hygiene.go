// Fixture for the driver's directive hygiene: a //knnlint:allow without a
// reason is itself a finding, as is one naming an analyzer that does not
// exist. The want annotations ride in block comments because the directive
// must own the line comment.
package hygiene

func placeholder() int {
	x := 1
	/* want `knnlint:allow detsource needs a reason` */ //knnlint:allow detsource
	x++
	/* want `knnlint:allow names unknown analyzer "nosuch"` */ //knnlint:allow nosuch -- believed safe
	return x
}
