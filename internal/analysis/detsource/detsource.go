// Package detsource defines the knnlint analyzer that keeps
// nondeterminism sources out of the determinism-critical packages: the
// answer a cluster returns must be a pure function of (dataset, seed,
// query), so wall-clock reads, the global math/rand source, and
// map-iteration order must never feed computation there.
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"

	"distknn/internal/analysis/knnlint"
)

// CriticalPackages lists the import-path suffixes the analyzer applies
// to. These are the packages whose code runs inside a query epoch, where
// any nondeterministic input breaks the bit-identical serving contract.
var CriticalPackages = []string{
	"internal/kmachine",
	"internal/core",
	"internal/metricindex",
	"internal/transport/tcp",
}

// timeFuncs are the wall-clock reads that make results time-dependent.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand[/v2] names that merely build a
// seeded generator or source; seeded generators are how the cluster gets
// its deterministic randomness, so constructing one is fine — calling
// the package-level (globally seeded) functions is not. Type names
// (rand.Rand, rand.Source, ...) are always fine.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewSource": true, "NewZipf": true,
}

// Analyzer implements the check.
var Analyzer = &knnlint.Analyzer{
	Name: "detsource",
	Doc: "forbid nondeterminism sources (time.Now/Since/Until, global math/rand, " +
		"map-range iteration) in determinism-critical packages",
	Run: run,
}

func critical(path string) bool {
	for _, s := range CriticalPackages {
		if knnlint.PkgPathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *knnlint.Pass) error {
	if !critical(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Socket deadlines are wall-clock by nature and cannot leak into
		// a computed answer, so time.Now feeding a Set*Deadline call
		// directly is exempt. Likewise, readings that flow only into
		// internal/obs telemetry recorders never reach an answer.
		exempt := deadlineExemptNows(pass, f)
		obsExemptCalls(pass, f, exempt)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, exempt)
			case *ast.SelectorExpr:
				checkRandUse(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// pkgFuncCall resolves call to a (package path, name) pair when its
// callee is a package-level function selected off an imported package.
func pkgFuncCall(pass *knnlint.Pass, call *ast.CallExpr) (string, string, *ast.SelectorExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", nil
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok {
		return "", "", nil
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", nil
	}
	return obj.Pkg().Path(), obj.Name(), sel
}

// deadlineExemptNows collects the time.Now calls whose result flows
// directly into a SetDeadline/SetReadDeadline/SetWriteDeadline argument.
func deadlineExemptNows(pass *knnlint.Pass, f *ast.File) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if inner, ok := m.(*ast.CallExpr); ok {
					if path, name, _ := pkgFuncCall(pass, inner); path == "time" && timeFuncs[name] {
						exempt[inner] = true
					}
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// obsExemptCalls adds to exempt the time.Now/Since/Until calls whose
// results flow only into internal/obs telemetry recorders. Telemetry is
// an observation channel, not an input: a duration handed to a histogram
// can never come back to perturb an epoch's answer, so such readings do
// not need per-line audit directives.
//
// Two shapes are exempt. A time call nested directly in the argument
// list of an obs call (`h.Observe(int64(time.Since(start)))`) is exempt
// outright. A local defined once from a time call (`start :=
// time.Now()`) is exempt when every use of that local sits inside an
// already-clean region — an obs argument list or another exempt time
// call — so chains like start → Since(start) → Observe resolve by
// fixpoint. Any use that escapes those regions, or a second assignment
// to the local, keeps the reading flagged.
func obsExemptCalls(pass *knnlint.Pass, f *ast.File, exempt map[*ast.CallExpr]bool) {
	type span struct{ lo, hi token.Pos }
	var clean []span
	within := func(p token.Pos) bool {
		for _, s := range clean {
			if p >= s.lo && p <= s.hi {
				return true
			}
		}
		return false
	}

	// Obs-call argument lists are clean regions, and time calls nested
	// directly inside them are exempt.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !knnlint.PkgPathHasSuffix(fn.Pkg().Path(), "internal/obs") {
			return true
		}
		clean = append(clean, span{call.Lparen, call.Rparen})
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if inner, ok := m.(*ast.CallExpr); ok {
					if path, name, _ := pkgFuncCall(pass, inner); path == "time" && timeFuncs[name] {
						exempt[inner] = true
					}
				}
				return true
			})
		}
		return true
	})

	// Locals defined exactly once from a bare time call are candidates;
	// collect them alongside every use position of each local.
	type candidate struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var cands []candidate
	assigns := make(map[types.Object]int)
	uses := make(map[types.Object][]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				assigns[obj]++
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 || i != 0 {
					continue
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				if path, name, _ := pkgFuncCall(pass, call); path == "time" && timeFuncs[name] {
					cands = append(cands, candidate{obj: obj, call: call})
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				uses[obj] = append(uses[obj], n.Pos())
			}
		}
		return true
	})

	// Fixpoint: exempting one candidate widens the clean regions, which
	// can make the candidate it was derived from clean in turn.
	for {
		progressed := false
		for _, c := range cands {
			if exempt[c.call] || assigns[c.obj] != 1 || len(uses[c.obj]) == 0 {
				continue
			}
			all := true
			for _, p := range uses[c.obj] {
				if !within(p) {
					all = false
					break
				}
			}
			if all {
				exempt[c.call] = true
				clean = append(clean, span{c.call.Pos(), c.call.End()})
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func checkCall(pass *knnlint.Pass, call *ast.CallExpr, exempt map[*ast.CallExpr]bool) {
	path, name, _ := pkgFuncCall(pass, call)
	if path == "time" && timeFuncs[name] && !exempt[call] {
		pass.Reportf(call.Pos(),
			"time.%s in determinism-critical package %s: wall-clock input must not feed epoch computation",
			name, pass.Pkg.Path())
	}
}

func checkRandUse(pass *knnlint.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	p := pn.Imported().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	if _, isType := obj.(*types.TypeName); isType {
		return
	}
	if randConstructors[obj.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"%s.%s uses the globally seeded source in determinism-critical package %s: derive a seeded *rand.Rand instead",
		p, obj.Name(), pass.Pkg.Path())
}

func checkMapRange(pass *knnlint.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isCollectOnly(rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic in determinism-critical package %s: iterate sorted keys, or audit with //knnlint:allow detsource",
		pass.Pkg.Path())
}

// isCollectOnly recognizes the sanctioned collect-then-sort idiom: a map
// range whose body does nothing but append the iteration variables (or
// selections/indexings of them) to slices. Such a loop is order-insensitive
// by construction — the appended slice is a set until sorted — so it is not
// a determinism hazard, and it is exactly the fix this analyzer recommends.
func isCollectOnly(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}
