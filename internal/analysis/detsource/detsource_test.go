package detsource_test

import (
	"testing"

	"distknn/internal/analysis/analyzertest"
	"distknn/internal/analysis/detsource"
)

func TestDetsource(t *testing.T) {
	analyzertest.Run(t, "../testdata", detsource.Analyzer,
		"example.com/internal/kmachine", // critical: positives + allow directives
		"example.com/other",             // non-critical: the analyzer must stay silent
	)
}
