// Package analyzertest runs knnlint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest but with no
// dependency outside the standard library. Fixtures live under
// testdata/src/<import path>/ and annotate the lines they expect
// diagnostics on with trailing comments:
//
//	time.Now() // want `time.Now in determinism-critical package`
//
// A want comment holds one or more regular expressions (quoted or
// backquoted); each must be matched by a diagnostic reported on the same
// line, and every diagnostic must be claimed by a want. Block-comment form
// (`/* want "..." */`) is for lines that already end in a line comment —
// notably //knnlint:allow directives under hygiene test.
//
// Imports inside fixtures resolve against the same testdata/src tree, so
// fixtures depend only on stub packages checked in next to them (stub
// time, sync, net, math/rand/v2, and distknn/internal/wire) and the tests
// stay hermetic: no export data, no GOPATH, no network.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"distknn/internal/analysis/knnlint"
	"distknn/internal/analysis/registry"
)

// Run loads each fixture package beneath srcRoot/src, applies the single
// analyzer a through the knnlint driver (so //knnlint:allow filtering and
// directive hygiene run exactly as in cmd/knnlint), and checks the
// reported diagnostics against the fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *knnlint.Analyzer, importPaths ...string) {
	t.Helper()
	var known []string
	for _, reg := range registry.All() {
		known = append(known, reg.Name)
	}
	l := newLoader(filepath.Join(srcRoot, "src"))
	for _, path := range importPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := knnlint.Run(l.fset, pkg.files, pkg.pkg, pkg.info,
			[]*knnlint.Analyzer{a}, known)
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, path, err)
		}
		checkDiags(t, l.fset, pkg.files, diags)
	}
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	text    string
	matched bool
}

func checkDiags(t *testing.T, fset *token.FileSet, files []*ast.File, diags []knnlint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	byLine := make(map[string][]*want)
	for i := range wants {
		w := &wants[i]
		byLine[key(w.file, w.line)] = append(byLine[key(w.file, w.line)], w)
	}
	for _, d := range diags {
		claimed := false
		for _, w := range byLine[key(d.Pos.Filename, d.Pos.Line)] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

// collectWants extracts every want annotation from the files' comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var ws []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := c.Text
				if strings.HasPrefix(body, "//") {
					body = body[2:]
				} else {
					body = strings.TrimSuffix(strings.TrimPrefix(body, "/*"), "*/")
				}
				body = strings.TrimSpace(body)
				rest, ok := strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, rest) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					ws = append(ws, want{file: pos.Filename, line: pos.Line, rx: rx, text: pat})
				}
			}
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].file != ws[j].file {
			return ws[i].file < ws[j].file
		}
		return ws[i].line < ws[j].line
	})
	return ws
}

// splitPatterns parses the space-separated quoted or backquoted regular
// expressions of one want comment.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes, and unquote.
			end := 1
			for end < len(s) && s[end] != '"' {
				if s[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = s[end+1:]
		default:
			t.Fatalf("%s: want pattern must be quoted or backquoted: %s", pos, s)
		}
	}
}

// loadedPkg is one typechecked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader typechecks fixture packages, resolving imports from the same
// source tree (plus types.Unsafe).
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loadedPkg
}

func newLoader(root string) *loader {
	return &loader{root: root, fset: token.NewFileSet(), pkgs: make(map[string]*loadedPkg)}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %v", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}
