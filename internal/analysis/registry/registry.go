// Package registry enumerates the knnlint analyzer suite. cmd/knnlint
// and any in-process driver get the full set from here, so adding an
// analyzer is one line and every consumer (and every //knnlint:allow
// name check) picks it up.
package registry

import (
	"distknn/internal/analysis/detsource"
	"distknn/internal/analysis/fpsum"
	"distknn/internal/analysis/kindswitch"
	"distknn/internal/analysis/knnlint"
	"distknn/internal/analysis/lockio"
	"distknn/internal/analysis/poolown"
)

// All returns every analyzer in the suite.
func All() []*knnlint.Analyzer {
	return []*knnlint.Analyzer{
		detsource.Analyzer,
		kindswitch.Analyzer,
		poolown.Analyzer,
		lockio.Analyzer,
		fpsum.Analyzer,
	}
}
