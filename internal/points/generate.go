package points

import (
	"math"
	"math/rand/v2"
)

// PaperDomain is the value range of the paper's synthetic workload: each
// process draws points uniformly between 0 and 2³²−1 (Section 3).
const PaperDomain = 1 << 32

// GenUniformScalars reproduces the paper's workload: n labels-free scalar
// points uniform in [0, domain). Labels are the points' own values scaled to
// [0,1] so regression experiments have a meaningful target.
func GenUniformScalars(rng *rand.Rand, n int, domain uint64) *Set[Scalar] {
	pts := make([]Scalar, n)
	labels := make([]float64, n)
	for i := range pts {
		v := rng.Uint64N(domain)
		pts[i] = Scalar(v)
		labels[i] = float64(v) / float64(domain)
	}
	s, err := NewSet(pts, labels, ScalarMetric, 1)
	if err != nil {
		panic(err) // static metric; cannot fail
	}
	return s
}

// GenUniformVectors draws n points uniform in [0,1)^dim with zero labels.
func GenUniformVectors(rng *rand.Rand, n, dim int) *Set[Vector] {
	pts := make([]Vector, n)
	for i := range pts {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = v
	}
	s, err := NewSet(pts, nil, L2, 1)
	if err != nil {
		panic(err)
	}
	return s
}

// GenGaussianClusters draws n points from c isotropic Gaussian clusters with
// the given standard deviation; centers are uniform in [0,1)^dim and the
// label of each point is its cluster index. This is the classification
// workload: ℓ-NN majority vote should recover the cluster of a query drawn
// near a center.
func GenGaussianClusters(rng *rand.Rand, n, dim, c int, sigma float64) (*Set[Vector], []Vector) {
	centers := make([]Vector, c)
	for i := range centers {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		centers[i] = v
	}
	pts := make([]Vector, n)
	labels := make([]float64, n)
	for i := range pts {
		ci := rng.IntN(c)
		v := make(Vector, dim)
		for j := range v {
			v[j] = centers[ci][j] + rng.NormFloat64()*sigma
		}
		pts[i] = v
		labels[i] = float64(ci)
	}
	s, err := NewSet(pts, labels, L2, 1)
	if err != nil {
		panic(err)
	}
	return s, centers
}

// GenRegression1D draws n scalar points x uniform in [0, domain) with labels
// y = sin(2πx/domain) + noise. ℓ-NN regression (mean of neighbor labels)
// should approximate the sine.
func GenRegression1D(rng *rand.Rand, n int, domain uint64, noise float64) *Set[Scalar] {
	pts := make([]Scalar, n)
	labels := make([]float64, n)
	for i := range pts {
		v := rng.Uint64N(domain)
		pts[i] = Scalar(v)
		labels[i] = math.Sin(2*math.Pi*float64(v)/float64(domain)) + rng.NormFloat64()*noise
	}
	s, err := NewSet(pts, labels, ScalarMetric, 1)
	if err != nil {
		panic(err)
	}
	return s
}

// GenBitVectors draws n random bit vectors of `words`×64 bits with zero
// labels, for Hamming-metric tests.
func GenBitVectors(rng *rand.Rand, n, words int) *Set[BitVector] {
	pts := make([]BitVector, n)
	for i := range pts {
		v := make(BitVector, words)
		for j := range v {
			v[j] = rng.Uint64()
		}
		pts[i] = v
	}
	s, err := NewSet(pts, nil, Hamming, 1)
	if err != nil {
		panic(err)
	}
	return s
}
