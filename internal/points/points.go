// Package points holds the data-plane of the reproduction: typed point sets,
// distance metrics, workload generators and partitioners.
//
// The distributed algorithms never move points across machines — they move
// (distance, ID) keys (see Section 2 of the paper: "one need not actually
// transfer points, but only distances"). This package is therefore the only
// place that knows what a point is. Given a query, a Set lowers its typed
// points into Items (key + label), and everything above this layer is
// comparison-based and point-type agnostic.
package points

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"

	"distknn/internal/keys"
	"distknn/internal/pq"
)

// Item is the per-point value the distributed layer operates on: the total
// order key (encoded distance + unique point ID) and the point's label, which
// is needed once winners are aggregated into a classification or regression
// answer. An Item is what a machine conceptually "holds" about one of its
// points during a query.
type Item struct {
	Key   keys.Key
	Label float64
}

// Metric computes the encoded distance between two points of type P. The
// returned uint64 must order identically to the true distance (use
// keys.EncodeFloat / keys.EncodeUint).
type Metric[P any] func(a, b P) uint64

// Set is one machine's (or the whole instance's) collection of labeled
// points together with the metric that compares them.
type Set[P any] struct {
	Pts    []P
	IDs    []uint64
	Labels []float64
	Metric Metric[P]
}

// NewSet builds a Set with sequential unique IDs starting at firstID.
// Labels may be nil, in which case all labels are zero.
func NewSet[P any](pts []P, labels []float64, metric Metric[P], firstID uint64) (*Set[P], error) {
	if metric == nil {
		return nil, fmt.Errorf("points: nil metric")
	}
	if labels != nil && len(labels) != len(pts) {
		return nil, fmt.Errorf("points: %d labels for %d points", len(labels), len(pts))
	}
	ids := make([]uint64, len(pts))
	for i := range ids {
		ids[i] = firstID + uint64(i)
	}
	if labels == nil {
		labels = make([]float64, len(pts))
	}
	return &Set[P]{Pts: pts, IDs: ids, Labels: labels, Metric: metric}, nil
}

// Len returns the number of points in the set.
func (s *Set[P]) Len() int { return len(s.Pts) }

// Item lowers point i into its Item for query q.
func (s *Set[P]) Item(i int, q P) Item {
	return Item{
		Key:   keys.Key{Dist: s.Metric(s.Pts[i], q), ID: s.IDs[i]},
		Label: s.Labels[i],
	}
}

// Items lowers the whole set for query q. The result is not sorted.
func (s *Set[P]) Items(q P) []Item {
	out := make([]Item, s.Len())
	for i := range out {
		out[i] = s.Item(i, q)
	}
	return out
}

// AssignRandomIDs replaces the set's IDs with random values in [1, n³] where
// n is the given global point count, reproducing the paper's ID scheme. IDs
// are unique with high probability; the caller may check CollidingIDs if it
// needs certainty. Deterministic given rng.
func (s *Set[P]) AssignRandomIDs(rng *rand.Rand, globalN uint64) {
	hi := globalN * globalN * globalN
	if hi < 1 || globalN > 1<<21 { // n³ overflows beyond 2^21.3; saturate.
		hi = math.MaxUint64
	}
	for i := range s.IDs {
		s.IDs[i] = 1 + rng.Uint64N(hi)
	}
}

// CollidingIDs reports whether any two points across the given sets share an
// ID. It is the verification counterpart of AssignRandomIDs.
func CollidingIDs[P any](sets ...*Set[P]) bool {
	seen := make(map[uint64]bool)
	for _, s := range sets {
		for _, id := range s.IDs {
			if seen[id] {
				return true
			}
			seen[id] = true
		}
	}
	return false
}

// BruteKNN returns the l items nearest to q in ascending key order by fully
// sorting — the O(n log n) oracle used to validate every other algorithm.
func (s *Set[P]) BruteKNN(q P, l int) []Item {
	items := s.Items(q)
	sort.Slice(items, func(i, j int) bool { return items[i].Key.Less(items[j].Key) })
	if l > len(items) {
		l = len(items)
	}
	return items[:l]
}

// SortItems sorts items ascending by key, in place. Shared helper for
// leaders and tests.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Key.Less(items[j].Key) })
}

// ---------------------------------------------------------------------------
// Concrete point types and metrics
// ---------------------------------------------------------------------------

// Scalar is the paper's experimental point type: an integer in [0, 2³²−1]
// compared by absolute difference. We use the full uint64 range; the
// generators below restrict to the paper's domain.
type Scalar uint64

// ScalarMetric is |a − b|, exact in uint64.
func ScalarMetric(a, b Scalar) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// Vector is a d-dimensional point.
type Vector []float64

// L2 returns the squared Euclidean distance, float64-encoded. Squaring is
// order-preserving, so keys built from L2 rank identically to true Euclidean
// distance while avoiding the sqrt.
//
// The loop is 4-way unrolled with the b slice clamped to len(a) up front,
// which lets the compiler drop the per-element bounds checks. The single
// accumulator and its strictly sequential adds are load-bearing: distances
// feed (distance, id) selection keys that the determinism tests pin
// bit-for-bit, and floating-point addition is not associative — a
// multi-accumulator reduction would change low-order bits and with them
// the answers.
func L2(a, b Vector) uint64 {
	b = b[:len(a)]
	var sum float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		sum += d0 * d0
		d1 := a[i+1] - b[i+1]
		sum += d1 * d1
		d2 := a[i+2] - b[i+2]
		sum += d2 * d2
		d3 := a[i+3] - b[i+3]
		sum += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return keys.MustEncodeFloat(sum)
}

// L1 returns the Manhattan distance, float64-encoded.
func L1(a, b Vector) uint64 {
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return keys.MustEncodeFloat(sum)
}

// LInf returns the Chebyshev distance, float64-encoded.
func LInf(a, b Vector) uint64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return keys.MustEncodeFloat(m)
}

// Cosine returns the cosine distance 1 − cos(a, b), float64-encoded. The
// dot product and both squared norms accumulate sequentially in one pass
// (the same strictly-ordered summation discipline as L2, so keys replay
// bit-identically), and rounding that would push the distance below zero is
// clamped. Two zero vectors are at distance 0; a single zero vector is at
// the maximum distance 2 (nothing points "the same way" as nothing).
//
// Cosine distance violates the triangle inequality, so it cannot drive
// metric-index pruning — serve it with full scatter only.
func Cosine(a, b Vector) uint64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	var d float64
	switch {
	case na == 0 && nb == 0:
		d = 0
	case na == 0 || nb == 0:
		d = 2
	default:
		d = 1 - dot/math.Sqrt(na*nb)
		if d < 0 {
			d = 0
		}
	}
	return keys.MustEncodeFloat(d)
}

// BitVector is a bit-packed point for Hamming distance (e.g. binary feature
// sketches), 64 features per word.
type BitVector []uint64

// Hamming counts differing bits: a popcount over the xor of each word
// pair. The straight loop already keeps the popcount off the critical
// path (measured faster than a two-accumulator unroll at every dim);
// the bounds-check hint on b is what matters.
func Hamming(a, b BitVector) uint64 {
	b = b[:len(a)]
	var n uint64
	for i := range a {
		n += uint64(bits.OnesCount64(a[i] ^ b[i]))
	}
	return n
}

// TopLItems returns the l items nearest to q in ascending key order without
// materializing all n items: a streaming bounded heap, O(l) memory and
// O(n log l) time. This is the local preprocessing step every distributed
// ℓ-NN algorithm starts from ("if a machine has more than ℓ points it keeps
// the ℓ closest", Section 2.2).
func (s *Set[P]) TopLItems(q P, l int) []Item {
	if l < 1 {
		return nil
	}
	acc := pq.New(l, func(a, b Item) bool { return a.Key.Less(b.Key) })
	for i := range s.Pts {
		acc.Push(s.Item(i, q))
	}
	return acc.Sorted()
}
