package points

import (
	"math"
	"testing"
	"testing/quick"

	"distknn/internal/keys"
	"distknn/internal/xrand"
)

func TestScalarMetricSymmetricExact(t *testing.T) {
	cases := []struct {
		a, b Scalar
		want uint64
	}{
		{0, 0, 0},
		{5, 2, 3},
		{2, 5, 3},
		{0, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := ScalarMetric(c.a, c.b); got != c.want {
			t.Errorf("ScalarMetric(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestScalarMetricProperties(t *testing.T) {
	symmetric := func(a, b uint64) bool {
		return ScalarMetric(Scalar(a), Scalar(b)) == ScalarMetric(Scalar(b), Scalar(a))
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a uint64) bool { return ScalarMetric(Scalar(a), Scalar(a)) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
}

func TestVectorMetrics(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got := keys.DecodeFloat(L2(a, b)); got != 25 {
		t.Errorf("L2 squared = %g, want 25", got)
	}
	if got := keys.DecodeFloat(L1(a, b)); got != 7 {
		t.Errorf("L1 = %g, want 7", got)
	}
	if got := keys.DecodeFloat(LInf(a, b)); got != 4 {
		t.Errorf("LInf = %g, want 4", got)
	}
}

func TestVectorMetricOrderAgreesWithEuclidean(t *testing.T) {
	rng := xrand.New(1)
	q := Vector{0.5, 0.5, 0.5}
	for trial := 0; trial < 500; trial++ {
		a := Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		b := Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		true2 := func(v Vector) float64 {
			var s float64
			for i := range v {
				d := v[i] - q[i]
				s += d * d
			}
			return math.Sqrt(s)
		}
		if (true2(a) < true2(b)) != (L2(a, q) < L2(b, q)) {
			t.Fatalf("L2 encoding changed order for %v vs %v", a, b)
		}
	}
}

func TestHamming(t *testing.T) {
	a := BitVector{0b1010, 0}
	b := BitVector{0b0110, 1}
	if got := Hamming(a, b); got != 3 {
		t.Errorf("Hamming = %d, want 3", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Errorf("Hamming self = %d, want 0", got)
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet([]Scalar{1}, nil, nil, 1); err == nil {
		t.Errorf("nil metric must be rejected")
	}
	if _, err := NewSet([]Scalar{1, 2}, []float64{1}, ScalarMetric, 1); err == nil {
		t.Errorf("label/point length mismatch must be rejected")
	}
	s, err := NewSet([]Scalar{10, 20}, nil, ScalarMetric, 7)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	if s.IDs[0] != 7 || s.IDs[1] != 8 {
		t.Errorf("sequential IDs wrong: %v", s.IDs)
	}
	if len(s.Labels) != 2 {
		t.Errorf("nil labels must default to zeros")
	}
}

func TestItemsAndBruteKNN(t *testing.T) {
	s, _ := NewSet([]Scalar{100, 50, 75, 200}, []float64{1, 2, 3, 4}, ScalarMetric, 1)
	got := s.BruteKNN(Scalar(60), 2)
	if len(got) != 2 {
		t.Fatalf("BruteKNN returned %d items", len(got))
	}
	// Distances from 60: 40, 10, 15, 140 → nearest are 50 (label 2), 75 (label 3).
	if got[0].Label != 2 || got[1].Label != 3 {
		t.Errorf("BruteKNN order wrong: %+v", got)
	}
	if got[0].Key.Dist != 10 || got[1].Key.Dist != 15 {
		t.Errorf("BruteKNN distances wrong: %+v", got)
	}
}

func TestBruteKNNClampsL(t *testing.T) {
	s, _ := NewSet([]Scalar{1, 2}, nil, ScalarMetric, 1)
	if got := s.BruteKNN(Scalar(0), 10); len(got) != 2 {
		t.Errorf("BruteKNN with l>n returned %d items, want 2", len(got))
	}
}

func TestAssignRandomIDsUniqueWHP(t *testing.T) {
	rng := xrand.New(3)
	s := GenUniformScalars(rng, 2000, PaperDomain)
	s.AssignRandomIDs(rng, 2000)
	if CollidingIDs(s) {
		t.Errorf("random IDs in [1,n^3] collided for n=2000 (prob ~ 1/n) — suspicious")
	}
	for _, id := range s.IDs {
		if id == 0 {
			t.Fatalf("random ID must be >= 1")
		}
	}
}

func TestAssignRandomIDsSaturatesLargeN(t *testing.T) {
	rng := xrand.New(4)
	s := GenUniformScalars(rng, 10, PaperDomain)
	// globalN beyond 2^21 would overflow n³; must not panic and must keep IDs >= 1.
	s.AssignRandomIDs(rng, 1<<30)
	for _, id := range s.IDs {
		if id == 0 {
			t.Fatalf("saturated ID assignment produced 0")
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := xrand.New(9)
	us := GenUniformScalars(rng, 100, PaperDomain)
	if us.Len() != 100 {
		t.Fatalf("GenUniformScalars length")
	}
	for _, p := range us.Pts {
		if uint64(p) >= PaperDomain {
			t.Fatalf("scalar %d outside paper domain", p)
		}
	}
	uv := GenUniformVectors(rng, 50, 3)
	if uv.Len() != 50 || len(uv.Pts[0]) != 3 {
		t.Fatalf("GenUniformVectors shape")
	}
	gc, centers := GenGaussianClusters(rng, 200, 2, 4, 0.01)
	if len(centers) != 4 || gc.Len() != 200 {
		t.Fatalf("GenGaussianClusters shape")
	}
	for _, lb := range gc.Labels {
		if lb < 0 || lb > 3 || lb != math.Trunc(lb) {
			t.Fatalf("cluster label %g not an index", lb)
		}
	}
	rg := GenRegression1D(rng, 100, PaperDomain, 0.01)
	for i, lb := range rg.Labels {
		want := math.Sin(2 * math.Pi * float64(rg.Pts[i]) / float64(PaperDomain))
		if math.Abs(lb-want) > 0.1 {
			t.Fatalf("regression label %g too far from %g", lb, want)
		}
	}
	bv := GenBitVectors(rng, 10, 2)
	if bv.Len() != 10 || len(bv.Pts[0]) != 2 {
		t.Fatalf("GenBitVectors shape")
	}
}

func TestPartitionLossless(t *testing.T) {
	rng := xrand.New(11)
	for _, strat := range []Partitioner{PartitionRandom, PartitionSorted, PartitionSkewed} {
		s := GenUniformScalars(rng, 101, PaperDomain)
		parts, err := Partition(s, 7, strat, rng)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(parts) != 7 {
			t.Fatalf("%v: got %d parts", strat, len(parts))
		}
		merged := Merge(parts)
		if merged.Len() != s.Len() {
			t.Fatalf("%v: lost points: %d != %d", strat, merged.Len(), s.Len())
		}
		seen := make(map[uint64]Scalar)
		for i, id := range merged.IDs {
			seen[id] = merged.Pts[i]
		}
		for i, id := range s.IDs {
			if v, ok := seen[id]; !ok || v != s.Pts[i] {
				t.Fatalf("%v: point id=%d lost or corrupted", strat, id)
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	rng := xrand.New(12)
	s := GenUniformScalars(rng, 103, PaperDomain)
	parts, err := Partition(s, 10, PartitionRandom, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.Len() != 10 && p.Len() != 11 {
			t.Errorf("machine %d has %d points, want 10 or 11", i, p.Len())
		}
	}
}

func TestPartitionSortedIsAdversarial(t *testing.T) {
	rng := xrand.New(13)
	s := GenUniformScalars(rng, 1000, PaperDomain)
	parts, err := Partition(s, 4, PartitionSorted, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every value on machine 0 must be <= every value on machine 3.
	var max0, min3 Scalar = 0, math.MaxUint64
	for _, p := range parts[0].Pts {
		if p > max0 {
			max0 = p
		}
	}
	for _, p := range parts[3].Pts {
		if p < min3 {
			min3 = p
		}
	}
	if max0 > min3 {
		t.Errorf("sorted partition not contiguous: max(machine0)=%d > min(machine3)=%d", max0, min3)
	}
}

func TestPartitionSkewedShape(t *testing.T) {
	rng := xrand.New(14)
	s := GenUniformScalars(rng, 64, PaperDomain)
	parts, err := Partition(s, 4, PartitionSkewed, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 16, 8, 8}
	for i, p := range parts {
		if p.Len() != want[i] {
			t.Errorf("skewed sizes: machine %d has %d, want %d", i, p.Len(), want[i])
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	rng := xrand.New(15)
	s := GenUniformScalars(rng, 10, PaperDomain)
	if _, err := Partition(s, 0, PartitionRandom, rng); err == nil {
		t.Errorf("k=0 must error")
	}
	if _, err := Partition(s, 2, Partitioner(99), rng); err == nil {
		t.Errorf("unknown strategy must error")
	}
}

func TestPartitionerString(t *testing.T) {
	if PartitionRandom.String() != "random" || PartitionSorted.String() != "sorted" ||
		PartitionSkewed.String() != "skewed" {
		t.Errorf("Partitioner names wrong")
	}
	if Partitioner(42).String() == "" {
		t.Errorf("unknown partitioner must still render")
	}
}

func TestSortItems(t *testing.T) {
	items := []Item{
		{Key: keys.Key{Dist: 3, ID: 1}},
		{Key: keys.Key{Dist: 1, ID: 2}},
		{Key: keys.Key{Dist: 1, ID: 1}},
	}
	SortItems(items)
	if items[0].Key.ID != 1 || items[0].Key.Dist != 1 {
		t.Errorf("SortItems order wrong: %+v", items)
	}
	if items[1].Key.ID != 2 || items[2].Key.Dist != 3 {
		t.Errorf("SortItems order wrong: %+v", items)
	}
}

func TestTopLItemsMatchesBruteKNN(t *testing.T) {
	rng := xrand.New(21)
	s := GenUniformScalars(rng, 500, PaperDomain)
	q := Scalar(rng.Uint64N(PaperDomain))
	for _, l := range []int{1, 7, 100, 500, 600} {
		got := s.TopLItems(q, l)
		want := s.BruteKNN(q, l)
		if len(got) != len(want) {
			t.Fatalf("l=%d: %d items, want %d", l, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("l=%d rank %d: %+v != %+v", l, i, got[i], want[i])
			}
		}
	}
	if got := s.TopLItems(q, 0); got != nil {
		t.Errorf("l=0 must return nil")
	}
}
