package points

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// A Partitioner splits one global set into k per-machine sets. The k-machine
// model allows the input to be distributed adversarially as long as every
// machine holds O(n/k) points; the partitioners below cover the benign,
// adversarial and unbalanced corners of that space.
type Partitioner int

const (
	// PartitionRandom deals points round-robin after a random shuffle —
	// the benign case and the closest match to the paper's experiment,
	// where every process generates its own points independently.
	PartitionRandom Partitioner = iota
	// PartitionSorted sorts points by their key distance to a zero query
	// proxy (their raw order for scalars) and hands out contiguous chunks.
	// This is the adversarial layout: all small values on one machine.
	PartitionSorted
	// PartitionSkewed gives machine 0 half the points, machine 1 half the
	// remainder, and so on (still every machine gets at least one point if
	// n >= 2^k). It violates balance to exercise the algorithms' claim of
	// working for arbitrary distributions.
	PartitionSkewed
)

// String names the partitioner for experiment tables.
func (p Partitioner) String() string {
	switch p {
	case PartitionRandom:
		return "random"
	case PartitionSorted:
		return "sorted"
	case PartitionSkewed:
		return "skewed"
	default:
		return fmt.Sprintf("partitioner(%d)", int(p))
	}
}

// Partition splits s into k sets according to the strategy. Points, IDs and
// labels move together. The union of the outputs is exactly s; no point is
// copied twice. The order inside each machine's set is unspecified.
func Partition[P any](s *Set[P], k int, strategy Partitioner, rng *rand.Rand) ([]*Set[P], error) {
	if k < 1 {
		return nil, fmt.Errorf("points: partition into k=%d machines", k)
	}
	n := s.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	switch strategy {
	case PartitionRandom:
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	case PartitionSorted:
		// Sort by the set's own order against a canonical zero query:
		// for scalars this is the numeric order, which concentrates the
		// global minimum (and thus likely answer sets) on one machine.
		var zero P
		sort.Slice(idx, func(a, b int) bool {
			da := s.Metric(s.Pts[idx[a]], zero)
			db := s.Metric(s.Pts[idx[b]], zero)
			if da != db {
				return da < db
			}
			return s.IDs[idx[a]] < s.IDs[idx[b]]
		})
	case PartitionSkewed:
		// Keep natural order; sizes computed below.
	default:
		return nil, fmt.Errorf("points: unknown partitioner %d", strategy)
	}

	sizes := make([]int, k)
	switch strategy {
	case PartitionSkewed:
		rest := n
		for i := 0; i < k-1; i++ {
			sizes[i] = (rest + 1) / 2
			rest -= sizes[i]
		}
		sizes[k-1] = rest
	default:
		for i := 0; i < k; i++ {
			sizes[i] = n / k
			if i < n%k {
				sizes[i]++
			}
		}
	}

	out := make([]*Set[P], k)
	pos := 0
	for m := 0; m < k; m++ {
		sz := sizes[m]
		sub := &Set[P]{
			Pts:    make([]P, sz),
			IDs:    make([]uint64, sz),
			Labels: make([]float64, sz),
			Metric: s.Metric,
		}
		for j := 0; j < sz; j++ {
			src := idx[pos]
			sub.Pts[j] = s.Pts[src]
			sub.IDs[j] = s.IDs[src]
			sub.Labels[j] = s.Labels[src]
			pos++
		}
		out[m] = sub
	}
	return out, nil
}

// Merge concatenates per-machine sets back into one global set (used by
// tests to verify partitioning is lossless).
func Merge[P any](parts []*Set[P]) *Set[P] {
	out := &Set[P]{}
	for _, p := range parts {
		if out.Metric == nil {
			out.Metric = p.Metric
		}
		out.Pts = append(out.Pts, p.Pts...)
		out.IDs = append(out.IDs, p.IDs...)
		out.Labels = append(out.Labels, p.Labels...)
	}
	return out
}
