package points

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"testing"

	"distknn/internal/keys"
)

// refL2 is the straight-line reference the unrolled L2 must match
// bit-for-bit: same elements, same summation order.
func refL2(a, b Vector) uint64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return keys.MustEncodeFloat(sum)
}

func refHamming(a, b BitVector) uint64 {
	var n uint64
	for i := range a {
		n += uint64(bits.OnesCount64(a[i] ^ b[i]))
	}
	return n
}

// TestL2MatchesReference pins the unrolled kernel to the reference across
// every remainder lane (dims 0..9 cover all i mod 4 cases) and across
// magnitudes that stress floating-point rounding: if the unroll reordered
// a single addition, some low-order bit here would flip.
func TestL2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for dim := 0; dim <= 9; dim++ {
		for trial := 0; trial < 200; trial++ {
			a := make(Vector, dim)
			b := make(Vector, dim)
			for i := range a {
				// Mix huge and tiny magnitudes so addition order matters.
				scale := []float64{1e-8, 1, 1e8}[rng.IntN(3)]
				a[i] = (rng.Float64()*2 - 1) * scale
				b[i] = (rng.Float64()*2 - 1) * scale
			}
			if got, want := L2(a, b), refL2(a, b); got != want {
				t.Fatalf("dim %d: L2 = %d, reference = %d (a=%v b=%v)", dim, got, want, a, b)
			}
		}
	}
	for dim := 120; dim <= 131; dim++ {
		a := make(Vector, dim)
		b := make(Vector, dim)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if got, want := L2(a, b), refL2(a, b); got != want {
			t.Fatalf("dim %d: L2 = %d, reference = %d", dim, got, want)
		}
	}
}

func TestHammingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for words := 0; words <= 9; words++ {
		for trial := 0; trial < 100; trial++ {
			a := make(BitVector, words)
			b := make(BitVector, words)
			for i := range a {
				a[i], b[i] = rng.Uint64(), rng.Uint64()
			}
			if got, want := Hamming(a, b), refHamming(a, b); got != want {
				t.Fatalf("words %d: Hamming = %d, reference = %d", words, got, want)
			}
		}
	}
	// Saturated case: all bits differ.
	a := make(BitVector, 33)
	b := make(BitVector, 33)
	for i := range a {
		a[i] = ^b[i]
	}
	if got := Hamming(a, b); got != 33*64 {
		t.Fatalf("saturated Hamming = %d, want %d", got, 33*64)
	}
}

func benchVectors(dim int) (Vector, Vector) {
	rng := rand.New(rand.NewPCG(7, 9))
	a := make(Vector, dim)
	b := make(Vector, dim)
	for i := range a {
		a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	return a, b
}

var sinkU64 uint64

func BenchmarkL2(b *testing.B) {
	for _, dim := range []int{8, 32, 128} {
		va, vb := benchVectors(dim)
		b.Run(benchDim(dim), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(dim * 8))
			for i := 0; i < b.N; i++ {
				sinkU64 = L2(va, vb)
			}
		})
	}
}

func BenchmarkL2Reference(b *testing.B) {
	for _, dim := range []int{8, 32, 128} {
		va, vb := benchVectors(dim)
		b.Run(benchDim(dim), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(dim * 8))
			for i := 0; i < b.N; i++ {
				sinkU64 = refL2(va, vb)
			}
		})
	}
}

func BenchmarkHamming(b *testing.B) {
	for _, words := range []int{4, 16, 64} {
		rng := rand.New(rand.NewPCG(5, 6))
		va := make(BitVector, words)
		vb := make(BitVector, words)
		for i := range va {
			va[i], vb[i] = rng.Uint64(), rng.Uint64()
		}
		b.Run(benchDim(words), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(words * 8))
			for i := 0; i < b.N; i++ {
				sinkU64 = Hamming(va, vb)
			}
		})
	}
}

func BenchmarkHammingReference(b *testing.B) {
	for _, words := range []int{4, 16, 64} {
		rng := rand.New(rand.NewPCG(5, 6))
		va := make(BitVector, words)
		vb := make(BitVector, words)
		for i := range va {
			va[i], vb[i] = rng.Uint64(), rng.Uint64()
		}
		b.Run(benchDim(words), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(words * 8))
			for i := 0; i < b.N; i++ {
				sinkU64 = refHamming(va, vb)
			}
		})
	}
}

func benchDim(d int) string { return fmt.Sprintf("dim%d", d) }
