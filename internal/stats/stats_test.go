package stats

import (
	"math"
	"testing"

	"distknn/internal/xrand"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %g", s.Std)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.CI95() != 0 {
		t.Errorf("singleton summary: %+v", s)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := xrand.New(1)
	small := make([]float64, 10)
	big := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if Summarize(big).CI95() >= Summarize(small).CI95() {
		t.Errorf("CI must shrink with sample size")
	}
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.Median != 50 {
		t.Errorf("median = %g", s.Median)
	}
	if s.P95 != 95 {
		t.Errorf("p95 = %g", s.P95)
	}
}

func TestChiSquareUniform(t *testing.T) {
	uniform := []int{100, 100, 100, 100}
	chi2, dof := ChiSquareUniform(uniform)
	if chi2 != 0 || dof != 3 {
		t.Errorf("uniform counts: chi2=%g dof=%d", chi2, dof)
	}
	skewed := []int{400, 0, 0, 0}
	chi2, _ = ChiSquareUniform(skewed)
	if chi2 <= ChiSquareCritical999(3) {
		t.Errorf("fully skewed counts must exceed the critical value: %g", chi2)
	}
	if c, d := ChiSquareUniform(nil); c != 0 || d != 0 {
		t.Errorf("nil counts: %g %d", c, d)
	}
}

func TestChiSquareDetectsRealUniform(t *testing.T) {
	rng := xrand.New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[rng.IntN(10)]++
	}
	chi2, dof := ChiSquareUniform(counts)
	if chi2 > ChiSquareCritical999(dof) {
		t.Errorf("true uniform sample flagged: chi2=%g > crit=%g", chi2, ChiSquareCritical999(dof))
	}
}

func TestChiSquareCriticalMonotone(t *testing.T) {
	prev := 0.0
	for dof := 1; dof < 50; dof++ {
		c := ChiSquareCritical999(dof)
		if c <= prev {
			t.Fatalf("critical value not increasing at dof=%d", dof)
		}
		prev = c
	}
	// Sanity anchor: chi2(0.999, 10) ≈ 29.6.
	if c := ChiSquareCritical999(10); math.Abs(c-29.6) > 1.5 {
		t.Errorf("critical(10) = %g, want ≈ 29.6", c)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Errorf("Ratio(6,3)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Errorf("Ratio(1,0) must be +Inf")
	}
	if Ratio(0, 0) != 0 {
		t.Errorf("Ratio(0,0) must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %g, want 10", g)
	}
	if g := GeoMean([]float64{2, 0, -5, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean skipping nonpositive = %g, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("empty GeoMean must be 0")
	}
}
