// Package stats provides the small statistical toolkit the experiment
// harness reports with: summary statistics over repeated measurements,
// normal-approximation confidence intervals, and a chi-square uniformity
// statistic for the Lemma 2.1 pivot experiment.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 measurements.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P95              float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = quantileSorted(sorted, 0.5)
	s.P95 = quantileSorted(sorted, 0.95)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.3g ± %.2g", s.Mean, s.CI95())
}

// quantileSorted interpolates quantile q in a sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against the uniform distribution over len(counts) buckets, plus the
// degrees of freedom. Large values reject uniformity; for reference, the
// 0.999 quantile is roughly dof + 3.1·sqrt(2·dof) for moderate dof.
func ChiSquareUniform(counts []int) (chi2 float64, dof int) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) < 2 || total == 0 {
		return 0, 0
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, len(counts) - 1
}

// ChiSquareCritical999 approximates the 99.9% critical value for the given
// degrees of freedom (Wilson–Hilferty). Observations above it are flagged as
// non-uniform by the harness.
func ChiSquareCritical999(dof int) float64 {
	if dof < 1 {
		return 0
	}
	d := float64(dof)
	z := 3.09 // 99.9% standard normal quantile
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// Ratio returns a/b, guarding against division by zero (returns +Inf for
// positive a, 0 otherwise).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of positive samples; zero or negative
// entries are skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
