package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"distknn/internal/dsel"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
)

func TestWrapRecordsPingPong(t *testing.T) {
	logs := make([]*Log, 2)
	for i := range logs {
		logs[i] = &Log{}
	}
	prog := func(raw kmachine.Env) error {
		m := Wrap(raw, logs[raw.ID()])
		if m.ID() == 0 {
			m.Send(1, []byte("ping"))
			m.EndRound()
			m.WaitAny()
			return nil
		}
		m.WaitAny()
		m.Send(0, []byte("pong"))
		return nil
	}
	if _, err := kmachine.Run(kmachine.Config{K: 2, Seed: 1}, prog); err != nil {
		t.Fatal(err)
	}
	sends0, recvs0, bytes0, _ := logs[0].Counts()
	if sends0 != 1 || recvs0 != 1 || bytes0 != 4 {
		t.Errorf("machine 0 counts: sends=%d recvs=%d bytes=%d", sends0, recvs0, bytes0)
	}
	sends1, recvs1, _, _ := logs[1].Counts()
	if sends1 != 1 || recvs1 != 1 {
		t.Errorf("machine 1 counts: sends=%d recvs=%d", sends1, recvs1)
	}
}

func TestTraceMatchesEngineMetrics(t *testing.T) {
	// Wrap a full selection protocol: the union of per-machine send events
	// must equal the engine's message count.
	k := 4
	locals := make([][]keys.Key, k)
	for i := 0; i < 100; i++ {
		locals[i%k] = append(locals[i%k], keys.Key{Dist: uint64(i * 37 % 101), ID: uint64(i) + 1})
	}
	logs := make([]*Log, k)
	for i := range logs {
		logs[i] = &Log{}
	}
	var mu sync.Mutex
	var boundary keys.Key
	prog := func(raw kmachine.Env) error {
		m := Wrap(raw, logs[raw.ID()])
		res, err := dsel.FindLSmallest(m, 0, locals[raw.ID()], 50, dsel.Options{})
		if err != nil {
			return err
		}
		if raw.ID() == 0 {
			mu.Lock()
			boundary = res.Boundary
			mu.Unlock()
		}
		return nil
	}
	met, err := kmachine.Run(kmachine.Config{K: k, Seed: 9}, prog)
	if err != nil {
		t.Fatal(err)
	}
	var sends int
	for _, l := range logs {
		s, _, _, _ := l.Counts()
		sends += s
	}
	if int64(sends) != met.Messages {
		t.Errorf("traced sends %d != engine messages %d", sends, met.Messages)
	}
	if boundary == (keys.Key{}) {
		t.Errorf("protocol did not complete under tracing")
	}
}

func TestRender(t *testing.T) {
	log := &Log{}
	log.add(Event{Round: 0, Kind: EventSend, Peer: 2, Bytes: 10})
	log.add(Event{Round: 1, Kind: EventRound, Peer: -1})
	log.add(Event{Round: 1, Kind: EventRecv, Peer: 2, Bytes: 3})
	var buf bytes.Buffer
	log.Render(&buf)
	out := buf.String()
	for _, want := range []string{"send -> 2 (10B)", "-- round 1 --", "recv <- 2 (3B)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	if EventSend.String() != "send" || EventRecv.String() != "recv" || EventRound.String() != "round" {
		t.Errorf("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Errorf("unknown kind must render")
	}
}
