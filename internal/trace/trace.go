// Package trace records a machine's protocol activity round by round. A
// Log-wrapping Env is transparent to the protocol running over it, so any
// algorithm in this repository can be traced on either runtime without
// modification — useful when debugging a new protocol against the paper's
// round accounting.
package trace

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"

	"distknn/internal/kmachine"
)

// Kind labels one traced event.
type Kind int

const (
	// EventSend records an outgoing message.
	EventSend Kind = iota
	// EventRecv records a delivered message.
	EventRecv
	// EventRound records a round boundary.
	EventRound
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventRecv:
		return "recv"
	case EventRound:
		return "round"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one protocol action.
type Event struct {
	Round int
	Kind  Kind
	Peer  int // counterpart machine for send/recv; -1 for round events
	Bytes int // payload size for send/recv
}

// Log accumulates events; safe for concurrent appends so one Log can serve
// a whole simulated cluster.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Events returns a snapshot of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

func (l *Log) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Render writes a compact textual timeline of the log.
func (l *Log) Render(w io.Writer) {
	for _, e := range l.Events() {
		switch e.Kind {
		case EventRound:
			fmt.Fprintf(w, "-- round %d --\n", e.Round)
		case EventSend:
			fmt.Fprintf(w, "r%-4d send -> %d (%dB)\n", e.Round, e.Peer, e.Bytes)
		case EventRecv:
			fmt.Fprintf(w, "r%-4d recv <- %d (%dB)\n", e.Round, e.Peer, e.Bytes)
		}
	}
}

// Counts summarizes the log: sends, receives, bytes out, final round.
func (l *Log) Counts() (sends, recvs, bytesOut, lastRound int) {
	for _, e := range l.Events() {
		switch e.Kind {
		case EventSend:
			sends++
			bytesOut += e.Bytes
		case EventRecv:
			recvs++
		}
		if e.Round > lastRound {
			lastRound = e.Round
		}
	}
	return
}

// Env wraps an inner environment and records its traffic.
type Env struct {
	inner kmachine.Env
	log   *Log
}

var _ kmachine.Env = (*Env)(nil)

// Wrap returns an Env recording into log. Pass the result to any protocol
// in place of the raw machine.
func Wrap(inner kmachine.Env, log *Log) *Env {
	return &Env{inner: inner, log: log}
}

// ID returns the wrapped machine's index.
func (e *Env) ID() int { return e.inner.ID() }

// K returns the cluster size.
func (e *Env) K() int { return e.inner.K() }

// GUID returns the wrapped machine's GUID.
func (e *Env) GUID() uint64 { return e.inner.GUID() }

// Rand returns the wrapped machine's random stream.
func (e *Env) Rand() *rand.Rand { return e.inner.Rand() }

// Round returns the current round.
func (e *Env) Round() int { return e.inner.Round() }

// Send records and forwards an outgoing message.
func (e *Env) Send(to int, payload []byte) {
	e.log.add(Event{Round: e.inner.Round(), Kind: EventSend, Peer: to, Bytes: len(payload)})
	e.inner.Send(to, payload)
}

// Broadcast records and forwards a broadcast (one send event per peer).
func (e *Env) Broadcast(payload []byte) {
	for to := 0; to < e.K(); to++ {
		if to != e.ID() {
			e.Send(to, payload)
		}
	}
}

// Recv records and returns this round's deliveries.
func (e *Env) Recv() []kmachine.Message {
	msgs := e.inner.Recv()
	for _, m := range msgs {
		e.log.add(Event{Round: e.inner.Round(), Kind: EventRecv, Peer: m.From, Bytes: len(m.Payload)})
	}
	return msgs
}

// EndRound records the round boundary and advances.
func (e *Env) EndRound() {
	e.inner.EndRound()
	e.log.add(Event{Round: e.inner.Round(), Kind: EventRound, Peer: -1})
}

// Gather mirrors kmachine's helper through the tracing wrapper so receives
// are recorded.
func (e *Env) Gather(n int) []kmachine.Message {
	got := e.Recv()
	for len(got) < n {
		e.EndRound()
		got = append(got, e.Recv()...)
	}
	return got
}

// WaitAny advances rounds until a message arrives.
func (e *Env) WaitAny() []kmachine.Message { return e.Gather(1) }
