// Package seqselect implements sequential selection algorithms — the
// single-machine reference point the paper reduces to (Section 1.2: the
// ℓ-nearest-neighbors problem "really boils down to the selection problem").
//
// Three algorithms are provided:
//
//   - QuickSelect: expected-linear randomized selection (the in-memory
//     analogue of the paper's distributed Algorithm 1);
//   - MedianOfMedians: worst-case-linear deterministic selection (CLRS [5]);
//   - SortSelect: O(n log n) sort-based oracle used to cross-check the others.
//
// All operate on keys.Key slices so they share the exact comparison universe
// of the distributed protocols.
package seqselect

import (
	"math/rand/v2"
	"sort"

	"distknn/internal/keys"
)

// SortSelect returns the l-th smallest key (1-based rank) by sorting a copy.
// It is the correctness oracle: O(n log n) but unconditionally right.
func SortSelect(ks []keys.Key, l int) keys.Key {
	checkRank(len(ks), l)
	cp := append([]keys.Key(nil), ks...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return cp[l-1]
}

// QuickSelect returns the l-th smallest key (1-based rank) in expected O(n)
// time. The input slice is reordered in place.
func QuickSelect(ks []keys.Key, l int, rng *rand.Rand) keys.Key {
	checkRank(len(ks), l)
	lo, target := 0, l-1
	hi := len(ks) - 1
	for {
		if lo == hi {
			return ks[lo]
		}
		p := partition(ks, lo, hi, lo+rng.IntN(hi-lo+1))
		switch {
		case target == p:
			return ks[p]
		case target < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// MedianOfMedians returns the l-th smallest key (1-based rank) in worst-case
// O(n) time using the classic groups-of-five pivot rule. The input slice is
// reordered in place.
func MedianOfMedians(ks []keys.Key, l int) keys.Key {
	checkRank(len(ks), l)
	lo, hi, target := 0, len(ks)-1, l-1
	for {
		if lo == hi {
			return ks[lo]
		}
		pivotIdx := momPivot(ks, lo, hi)
		p := partition(ks, lo, hi, pivotIdx)
		switch {
		case target == p:
			return ks[p]
		case target < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// momPivot chooses the median-of-medians pivot index within ks[lo..hi].
func momPivot(ks []keys.Key, lo, hi int) int {
	n := hi - lo + 1
	if n <= 5 {
		insertionSort(ks, lo, hi)
		return lo + n/2
	}
	// Move each group-of-five median to the front of the range.
	numMedians := 0
	for g := lo; g <= hi; g += 5 {
		gEnd := g + 4
		if gEnd > hi {
			gEnd = hi
		}
		insertionSort(ks, g, gEnd)
		median := g + (gEnd-g)/2
		ks[lo+numMedians], ks[median] = ks[median], ks[lo+numMedians]
		numMedians++
	}
	// Recursively select the median of the medians.
	sub := ks[lo : lo+numMedians]
	m := MedianOfMedians(sub, (numMedians+1)/2)
	// Locate m's current position to return an index.
	for i := lo; i < lo+numMedians; i++ {
		if ks[i] == m {
			return i
		}
	}
	panic("seqselect: median of medians vanished") // unreachable: m came from sub
}

// partition moves ks[pivotIdx] into its sorted position within ks[lo..hi]
// (Lomuto) and returns that position.
func partition(ks []keys.Key, lo, hi, pivotIdx int) int {
	pivot := ks[pivotIdx]
	ks[pivotIdx], ks[hi] = ks[hi], ks[pivotIdx]
	store := lo
	for i := lo; i < hi; i++ {
		if ks[i].Less(pivot) {
			ks[i], ks[store] = ks[store], ks[i]
			store++
		}
	}
	ks[store], ks[hi] = ks[hi], ks[store]
	return store
}

func insertionSort(ks []keys.Key, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && ks[j].Less(ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

// CountLessEq returns |{x ∈ ks : x ≤ bound}| — the primitive every machine
// evaluates locally when the leader broadcasts getSize(·) in Algorithm 1.
func CountLessEq(ks []keys.Key, bound keys.Key) int {
	n := 0
	for _, x := range ks {
		if x.LessEq(bound) {
			n++
		}
	}
	return n
}

// CountInRange returns |{x ∈ ks : lo < x ≤ hi}| — the half-open range count
// used by the distributed selection loop.
func CountInRange(ks []keys.Key, lo, hi keys.Key) int {
	n := 0
	for _, x := range ks {
		if lo.Less(x) && x.LessEq(hi) {
			n++
		}
	}
	return n
}

// FilterLessEq returns the keys ≤ bound, preserving order — the machine-side
// "output all points ≤ max" step that closes Algorithm 1.
func FilterLessEq(ks []keys.Key, bound keys.Key) []keys.Key {
	var out []keys.Key
	for _, x := range ks {
		if x.LessEq(bound) {
			out = append(out, x)
		}
	}
	return out
}

func checkRank(n, l int) {
	if l < 1 || l > n {
		panic("seqselect: rank out of range")
	}
}
