package seqselect

import (
	"testing"
	"testing/quick"

	"distknn/internal/keys"
	"distknn/internal/xrand"
)

func randomKeys(seed uint64, n int, maxDist uint64) []keys.Key {
	rng := xrand.New(seed)
	ks := make([]keys.Key, n)
	for i := range ks {
		ks[i] = keys.Key{Dist: rng.Uint64N(maxDist), ID: uint64(i) + 1}
	}
	return ks
}

func TestSortSelectSmall(t *testing.T) {
	ks := []keys.Key{{Dist: 5, ID: 1}, {Dist: 1, ID: 2}, {Dist: 3, ID: 3}}
	if got := SortSelect(ks, 1); got.Dist != 1 {
		t.Errorf("rank 1 = %v", got)
	}
	if got := SortSelect(ks, 2); got.Dist != 3 {
		t.Errorf("rank 2 = %v", got)
	}
	if got := SortSelect(ks, 3); got.Dist != 5 {
		t.Errorf("rank 3 = %v", got)
	}
}

func TestSortSelectDoesNotMutate(t *testing.T) {
	ks := []keys.Key{{Dist: 5, ID: 1}, {Dist: 1, ID: 2}}
	SortSelect(ks, 1)
	if ks[0].Dist != 5 {
		t.Errorf("SortSelect mutated its input")
	}
}

func TestQuickSelectMatchesOracle(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		ks := randomKeys(uint64(trial), 1+trial*7, 1000)
		l := 1 + rng.IntN(len(ks))
		want := SortSelect(ks, l)
		got := QuickSelect(append([]keys.Key(nil), ks...), l, rng)
		if got != want {
			t.Fatalf("trial %d: QuickSelect rank %d = %v, want %v", trial, l, got, want)
		}
	}
}

func TestMedianOfMediansMatchesOracle(t *testing.T) {
	rng := xrand.New(8)
	for trial := 0; trial < 50; trial++ {
		ks := randomKeys(uint64(trial)+100, 1+trial*7, 1000)
		l := 1 + rng.IntN(len(ks))
		want := SortSelect(ks, l)
		got := MedianOfMedians(append([]keys.Key(nil), ks...), l)
		if got != want {
			t.Fatalf("trial %d: MedianOfMedians rank %d = %v, want %v", trial, l, got, want)
		}
	}
}

func TestSelectionWithHeavyDuplicates(t *testing.T) {
	// Many equal distances: tie-breaking by ID must still give a unique answer.
	rng := xrand.New(9)
	ks := make([]keys.Key, 500)
	for i := range ks {
		ks[i] = keys.Key{Dist: uint64(i % 3), ID: uint64(i) + 1}
	}
	for _, l := range []int{1, 2, 167, 250, 500} {
		want := SortSelect(ks, l)
		gotQ := QuickSelect(append([]keys.Key(nil), ks...), l, rng)
		gotM := MedianOfMedians(append([]keys.Key(nil), ks...), l)
		if gotQ != want || gotM != want {
			t.Fatalf("l=%d: quick=%v mom=%v want=%v", l, gotQ, gotM, want)
		}
	}
}

func TestSelectionSingleElement(t *testing.T) {
	ks := []keys.Key{{Dist: 42, ID: 1}}
	rng := xrand.New(1)
	if QuickSelect(ks, 1, rng).Dist != 42 || MedianOfMedians(ks, 1).Dist != 42 {
		t.Errorf("single-element selection broken")
	}
}

func TestSelectionSortedAndReversedInputs(t *testing.T) {
	rng := xrand.New(10)
	n := 200
	asc := make([]keys.Key, n)
	desc := make([]keys.Key, n)
	for i := 0; i < n; i++ {
		asc[i] = keys.Key{Dist: uint64(i), ID: uint64(i + 1)}
		desc[i] = keys.Key{Dist: uint64(n - i), ID: uint64(i + 1)}
	}
	for _, l := range []int{1, 100, 200} {
		if got := QuickSelect(append([]keys.Key(nil), asc...), l, rng); got.Dist != uint64(l-1) {
			t.Errorf("ascending l=%d: %v", l, got)
		}
		if got := MedianOfMedians(append([]keys.Key(nil), desc...), l); got.Dist != uint64(l) {
			t.Errorf("descending l=%d: %v", l, got)
		}
	}
}

func TestRankPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SortSelect([]keys.Key{{Dist: 1, ID: 1}}, 0) },
		func() { SortSelect([]keys.Key{{Dist: 1, ID: 1}}, 2) },
		func() { QuickSelect(nil, 1, xrand.New(1)) },
		func() { MedianOfMedians(nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected rank panic")
				}
			}()
			f()
		}()
	}
}

// Property: all three selection algorithms agree on random inputs.
func TestSelectionAgreementProperty(t *testing.T) {
	rng := xrand.New(11)
	prop := func(dists []uint64, rawL uint16) bool {
		if len(dists) == 0 {
			return true
		}
		ks := make([]keys.Key, len(dists))
		for i, d := range dists {
			ks[i] = keys.Key{Dist: d, ID: uint64(i) + 1}
		}
		l := int(rawL)%len(ks) + 1
		want := SortSelect(ks, l)
		q := QuickSelect(append([]keys.Key(nil), ks...), l, rng)
		m := MedianOfMedians(append([]keys.Key(nil), ks...), l)
		return q == want && m == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("selection algorithms disagree: %v", err)
	}
}

func TestCountLessEq(t *testing.T) {
	ks := randomKeys(12, 100, 50)
	bound := keys.Key{Dist: 25, ID: 0}
	want := 0
	for _, k := range ks {
		if k.LessEq(bound) {
			want++
		}
	}
	if got := CountLessEq(ks, bound); got != want {
		t.Errorf("CountLessEq = %d, want %d", got, want)
	}
}

func TestCountInRangeHalfOpen(t *testing.T) {
	ks := []keys.Key{{Dist: 1, ID: 1}, {Dist: 2, ID: 2}, {Dist: 3, ID: 3}}
	lo := keys.Key{Dist: 1, ID: 1}
	hi := keys.Key{Dist: 3, ID: 3}
	// (lo, hi] excludes lo itself and includes hi.
	if got := CountInRange(ks, lo, hi); got != 2 {
		t.Errorf("CountInRange = %d, want 2", got)
	}
	if got := CountInRange(ks, keys.MinKey, keys.MaxKey); got != 3 {
		t.Errorf("full-range count = %d, want 3", got)
	}
}

func TestFilterLessEq(t *testing.T) {
	ks := []keys.Key{{Dist: 5, ID: 1}, {Dist: 1, ID: 2}, {Dist: 3, ID: 3}}
	got := FilterLessEq(ks, keys.Key{Dist: 3, ID: 3})
	if len(got) != 2 {
		t.Fatalf("FilterLessEq kept %d keys, want 2", len(got))
	}
	if got[0].Dist != 1 && got[1].Dist != 1 {
		t.Errorf("FilterLessEq lost the minimum: %v", got)
	}
}

// Property: rank(CountLessEq(rank-l key)) == l, i.e. selection and counting
// are mutually consistent — the exact invariant Algorithm 1's termination
// relies on.
func TestSelectCountConsistency(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 30; trial++ {
		ks := randomKeys(uint64(trial)+500, 200, 1<<40)
		l := 1 + rng.IntN(len(ks))
		kth := SortSelect(ks, l)
		if got := CountLessEq(ks, kth); got != l {
			t.Fatalf("count(≤ rank-%d key) = %d, want %d (keys must be distinct)", l, got, l)
		}
	}
}

func BenchmarkQuickSelect(b *testing.B) {
	ks := randomKeys(1, 1<<16, 1<<40)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]keys.Key(nil), ks...)
		QuickSelect(cp, len(cp)/2, rng)
	}
}

func BenchmarkMedianOfMedians(b *testing.B) {
	ks := randomKeys(1, 1<<16, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]keys.Key(nil), ks...)
		MedianOfMedians(cp, len(cp)/2)
	}
}
