package dsel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/xrand"
)

// protoFunc is the common shape of the three selection protocols.
type protoFunc func(m kmachine.Env, leader int, local []keys.Key, l int) (Result, error)

var protocols = map[string]protoFunc{
	"alg1": func(m kmachine.Env, leader int, local []keys.Key, l int) (Result, error) {
		return FindLSmallest(m, leader, local, l, Options{})
	},
	"saukas-song":   SaukasSong,
	"binary-search": BinarySearch,
}

// scatter deals n random distinct-ish keys across k machines; style 0 =
// round-robin random, 1 = sorted contiguous (adversarial), 2 = all on one
// machine, 3 = some machines empty.
func scatter(seed uint64, n, k, style int) [][]keys.Key {
	rng := xrand.New(seed)
	all := make([]keys.Key, n)
	for i := range all {
		all[i] = keys.Key{Dist: rng.Uint64N(1 << 40), ID: uint64(i) + 1}
	}
	locals := make([][]keys.Key, k)
	switch style {
	case 1:
		sort.Slice(all, func(a, b int) bool { return all[a].Less(all[b]) })
		per := (n + k - 1) / k
		for i, key := range all {
			locals[i/per] = append(locals[i/per], key)
		}
	case 2:
		locals[k-1] = all
	case 3:
		for i, key := range all {
			locals[i%((k+1)/2)] = append(locals[i%((k+1)/2)], key)
		}
	default:
		// Round-robin after a shuffle: the benign balanced layout.
		rng.Shuffle(n, func(i, j int) { all[i], all[j] = all[j], all[i] })
		for i, key := range all {
			locals[i%k] = append(locals[i%k], key)
		}
	}
	return locals
}

// runSelection executes proto on k machines and returns the agreed result,
// the union of winners, and the metrics.
func runSelection(t *testing.T, seed uint64, bandwidth int, locals [][]keys.Key, l int,
	proto protoFunc) (Result, []keys.Key, *kmachine.Metrics) {
	t.Helper()
	k := len(locals)
	var mu sync.Mutex
	results := make([]Result, k)
	progs := make([]kmachine.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			res, err := proto(m, 0, locals[i], l)
			if err != nil {
				return err
			}
			mu.Lock()
			results[i] = res
			mu.Unlock()
			return nil
		}
	}
	met, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: seed, BandwidthBytes: bandwidth}, progs)
	if err != nil {
		t.Fatalf("selection run failed: %v", err)
	}
	var union []keys.Key
	for i := 0; i < k; i++ {
		if results[i].Boundary != results[0].Boundary {
			t.Fatalf("machine %d boundary %v != machine 0 boundary %v",
				i, results[i].Boundary, results[0].Boundary)
		}
		if results[i].Iterations != results[0].Iterations {
			t.Fatalf("iteration counts disagree: %d vs %d", results[i].Iterations, results[0].Iterations)
		}
		union = append(union, results[i].Winners...)
	}
	if met.Dangling != 0 {
		t.Fatalf("%d dangling messages", met.Dangling)
	}
	return results[0], union, met
}

// oracle returns the expected boundary and winner set.
func oracle(locals [][]keys.Key, l int) (keys.Key, map[keys.Key]bool) {
	var all []keys.Key
	for _, lk := range locals {
		all = append(all, lk...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Less(all[b]) })
	want := make(map[keys.Key]bool, l)
	for _, k := range all[:l] {
		want[k] = true
	}
	return all[l-1], want
}

func checkExact(t *testing.T, name string, res Result, union []keys.Key, locals [][]keys.Key, l int) {
	t.Helper()
	wantBoundary, wantSet := oracle(locals, l)
	if res.Boundary != wantBoundary {
		t.Fatalf("%s: boundary %v, want %v", name, res.Boundary, wantBoundary)
	}
	if len(union) != l {
		t.Fatalf("%s: %d winners, want %d", name, len(union), l)
	}
	for _, k := range union {
		if !wantSet[k] {
			t.Fatalf("%s: winner %v is not among the %d smallest", name, k, l)
		}
	}
}

func TestAllProtocolsMatchOracle(t *testing.T) {
	for name, proto := range protocols {
		t.Run(name, func(t *testing.T) {
			cfgs := []struct {
				n, k, style, l int
			}{
				{100, 4, 0, 10},
				{100, 4, 1, 10},   // adversarial sorted
				{100, 4, 2, 10},   // all on one machine
				{100, 7, 3, 33},   // some machines empty
				{1, 3, 0, 1},      // single point
				{64, 8, 0, 64},    // l = n
				{64, 8, 1, 1},     // l = 1 adversarial
				{500, 16, 0, 250}, // median
				{50, 2, 0, 25},    // minimum k
			}
			for ci, cfg := range cfgs {
				locals := scatter(uint64(ci), cfg.n, cfg.k, cfg.style)
				res, union, _ := runSelection(t, uint64(ci)+1000, 0, locals, cfg.l, proto)
				checkExact(t, fmt.Sprintf("%s cfg %d", name, ci), res, union, locals, cfg.l)
			}
		})
	}
}

func TestSelectionSingleMachine(t *testing.T) {
	for name, proto := range protocols {
		locals := scatter(42, 50, 1, 0)
		res, union, met := runSelection(t, 7, 0, locals, 20, proto)
		checkExact(t, name, res, union, locals, 20)
		if met.Messages != 0 {
			t.Errorf("%s: single machine sent %d messages", name, met.Messages)
		}
	}
}

func TestSelectionDuplicateDistances(t *testing.T) {
	// All keys share one distance: selection must resolve purely by ID.
	k, n, l := 4, 100, 37
	locals := make([][]keys.Key, k)
	for i := 0; i < n; i++ {
		locals[i%k] = append(locals[i%k], keys.Key{Dist: 99, ID: uint64(i) + 1})
	}
	for name, proto := range protocols {
		res, union, _ := runSelection(t, 3, 0, locals, l, proto)
		checkExact(t, name, res, union, locals, l)
		if res.Boundary.ID != uint64(l) {
			t.Errorf("%s: boundary ID %d, want %d", name, res.Boundary.ID, l)
		}
	}
}

func TestRankOutOfRangeFails(t *testing.T) {
	locals := scatter(1, 10, 2, 0)
	progs := []kmachine.Program{
		func(m kmachine.Env) error {
			_, err := FindLSmallest(m, 0, locals[0], 11, Options{})
			return err
		},
		func(m kmachine.Env) error {
			_, err := FindLSmallest(m, 0, locals[1], 11, Options{})
			return err
		},
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: 2, Seed: 1}, progs); err == nil {
		t.Errorf("rank beyond n must fail")
	}
}

func TestMinKeySentinelRejected(t *testing.T) {
	_, err := kmachine.Run(kmachine.Config{K: 1, Seed: 1}, func(m kmachine.Env) error {
		_, err := FindLSmallest(m, 0, []keys.Key{keys.MinKey}, 1, Options{})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "sentinel") {
		t.Errorf("MinKey-valued input must be rejected, got %v", err)
	}
}

func TestAlg1RoundsLogarithmic(t *testing.T) {
	// Theorem 2.2: O(log n) rounds w.h.p. Each iteration costs ≤ 4 rounds;
	// expected iterations ≈ 3·log_{3/2} n ≈ 5.1·ln n. We assert a
	// generous deterministic-per-seed envelope of 40·log2(n)+40 rounds.
	for _, n := range []int{100, 1000, 10000} {
		locals := scatter(uint64(n), n, 8, 0)
		_, _, met := runSelection(t, uint64(n), 0, locals, n/2, protocols["alg1"])
		bound := int(40*math.Log2(float64(n))) + 40
		if met.Rounds > bound {
			t.Errorf("n=%d: %d rounds exceeds O(log n) envelope %d", n, met.Rounds, bound)
		}
	}
}

func TestAlg1RoundsIndependentOfK(t *testing.T) {
	// The same instance spread over more machines must not need more
	// rounds (up to random variation): compare k=2 vs k=32 medians over
	// several seeds.
	medianRounds := func(k int) int {
		var rounds []int
		for seed := uint64(0); seed < 7; seed++ {
			locals := scatter(seed+77, 2048, k, 0)
			_, _, met := runSelection(t, seed, 0, locals, 512, protocols["alg1"])
			rounds = append(rounds, met.Rounds)
		}
		sort.Ints(rounds)
		return rounds[len(rounds)/2]
	}
	r2, r32 := medianRounds(2), medianRounds(32)
	if float64(r32) > 2.5*float64(r2)+20 {
		t.Errorf("rounds grew with k: k=2 median %d, k=32 median %d", r2, r32)
	}
}

func TestAlg1MessagesScaleWithK(t *testing.T) {
	// Theorem 2.2: O(k log n) messages. Doubling k should roughly double
	// messages, not square them.
	msgs := func(k int) int64 {
		var total int64
		for seed := uint64(0); seed < 5; seed++ {
			locals := scatter(seed+99, 4096, k, 0)
			_, _, met := runSelection(t, seed, 0, locals, 1024, protocols["alg1"])
			total += met.Messages
		}
		return total
	}
	m8, m32 := msgs(8), msgs(32)
	ratio := float64(m32) / float64(m8)
	if ratio > 8 { // perfect linearity gives 4; allow slack for variance
		t.Errorf("messages superlinear in k: m8=%d m32=%d ratio=%.1f", m8, m32, ratio)
	}
}

func TestSaukasSongIterationBound(t *testing.T) {
	// Weighted-median discards ≥ 1/4 per iteration: iterations ≤
	// log_{4/3}(n) + 2, deterministically.
	for _, n := range []int{100, 1000, 5000} {
		locals := scatter(uint64(n)+5, n, 8, 0)
		res, _, _ := runSelection(t, uint64(n), 0, locals, n/3, protocols["saukas-song"])
		bound := int(math.Log(float64(n))/math.Log(4.0/3.0)) + 2
		if res.Iterations > bound {
			t.Errorf("n=%d: %d iterations exceeds deterministic bound %d", n, res.Iterations, bound)
		}
	}
}

func TestBinarySearchIterationBound(t *testing.T) {
	locals := scatter(6, 1000, 8, 0)
	res, _, _ := runSelection(t, 6, 0, locals, 500, protocols["binary-search"])
	if res.Iterations > 128 {
		t.Errorf("binary search used %d iterations, domain is 128 bits", res.Iterations)
	}
	if res.Iterations < 10 {
		t.Errorf("suspiciously few iterations (%d) for a 2^40 distance domain", res.Iterations)
	}
}

func TestPivotUniformity(t *testing.T) {
	// Lemma 2.1: the first pivot is uniform over all n keys. Run many
	// single-iteration observations and bucket the pivot's global rank.
	const n, k, buckets, trials = 64, 4, 8, 800
	counts := make([]int, buckets)
	for trial := 0; trial < trials; trial++ {
		locals := scatter(123, n, k, 0) // same instance every trial
		var all []keys.Key
		for _, lk := range locals {
			all = append(all, lk...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a].Less(all[b]) })
		rank := make(map[keys.Key]int, n)
		for i, key := range all {
			rank[key] = i
		}
		var firstPivot *keys.Key
		progs := make([]kmachine.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(m kmachine.Env) error {
				opts := Options{}
				if m.ID() == 0 {
					opts.OnPivot = func(pivot, lo, hi keys.Key, total int64) {
						if firstPivot == nil {
							p := pivot
							firstPivot = &p
						}
					}
				}
				_, err := FindLSmallest(m, 0, locals[i], n/2, opts)
				return err
			}
		}
		if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: uint64(trial), BandwidthBytes: 0}, progs); err != nil {
			t.Fatal(err)
		}
		if firstPivot == nil {
			t.Fatal("no pivot observed")
		}
		counts[rank[*firstPivot]*buckets/n]++
	}
	// Chi-square against uniform with 7 dof; 26.0 ≈ p=0.0005.
	expected := float64(trials) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 26.0 {
		t.Errorf("pivot ranks not uniform: chi2=%.1f buckets=%v", chi2, counts)
	}
}

func TestSelectionUnderTightBandwidth(t *testing.T) {
	// B = 50 bytes: every protocol message still fits, stats replies may
	// stagger; correctness must be unaffected.
	locals := scatter(8, 200, 6, 0)
	for name, proto := range protocols {
		res, union, _ := runSelection(t, 8, 50, locals, 77, proto)
		checkExact(t, name, res, union, locals, 77)
	}
}

// Property test: random instances, all protocols, exact agreement with the
// oracle.
func TestSelectionProperty(t *testing.T) {
	prop := func(seed uint64, rawN, rawK, rawL uint16) bool {
		n := int(rawN)%200 + 1
		k := int(rawK)%8 + 1
		l := int(rawL)%n + 1
		locals := scatter(seed, n, k, int(seed%4))
		wantBoundary, _ := oracle(locals, l)
		for _, proto := range protocols {
			res, union, _ := runSelection(t, seed, 0, locals, l, proto)
			if res.Boundary != wantBoundary || len(union) != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("selection property failed: %v", err)
	}
}
