package dsel

import (
	"distknn/internal/keys"
	"distknn/internal/wire"
)

// encodeStats builds the worker's opening statistics message: in the paper's
// notation, (n_i, m_i, M_i) — count, minimum and maximum of the local keys.
// The extremes are omitted for an empty set.
func encodeStats(local []keys.Key) []byte {
	var w wire.Writer
	w.U8(msgStats)
	w.Varint(uint64(len(local)))
	if len(local) > 0 {
		mn, mx := local[0], local[0]
		for _, k := range local[1:] {
			if k.Less(mn) {
				mn = k
			}
			if mx.Less(k) {
				mx = k
			}
		}
		w.Key(mn)
		w.Key(mx)
	}
	return w.Bytes()
}

// encodeMedianReply builds the Saukas–Song per-round reply: the number of
// local keys in (lo, hi] and, when non-zero, their lower median.
func encodeMedianReply(local []keys.Key, lo, hi keys.Key) []byte {
	med, cnt := localMedian(local, lo, hi)
	var w wire.Writer
	w.U8(msgMedianReply)
	w.Varint(uint64(cnt))
	if cnt > 0 {
		w.Key(med)
	}
	return w.Bytes()
}
