// Package dsel implements distributed selection in the k-machine model:
// given n keys scattered across k machines and a rank ℓ, find the ℓ-th
// smallest key (the "boundary") so that every machine can output its local
// keys at or below it.
//
// Three protocols share one worker loop and differ only in leader strategy:
//
//   - FindLSmallest — the paper's Algorithm 1: the leader repeatedly draws a
//     pivot uniformly at random from the keys still in range (by first
//     picking a machine with probability proportional to its in-range count,
//     then letting that machine pick uniformly — Lemma 2.1), counts the keys
//     at or below the pivot, and halves the search. O(log n) rounds and
//     O(k log n) messages w.h.p. (Theorem 2.2).
//
//   - SaukasSong — the deterministic baseline from Saukas & Song (SC '98),
//     the closest prior work cited by the paper: each round the leader takes
//     the weighted median of the machines' local medians, which discards at
//     least a quarter of the remaining keys per iteration. O(log n)
//     deterministic iterations.
//
//   - BinarySearch — the folklore baseline ([3, 18] in the paper): bisect
//     the 128-bit key domain itself. Round count Θ(domain bits), independent
//     of n — cheap for small domains, embarrassing for large ones.
//
// All protocols treat the active range as half-open (lo, hi]: a pivot that
// moves the lower boundary is itself excluded from the next iteration, which
// avoids the double-count that a closed-interval reading of the paper's
// pseudocode would allow.
package dsel

import (
	"fmt"
	"sort"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/seqselect"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// Message kinds. Workers answer any query kind, so every leader strategy can
// drive the same worker loop.
const (
	msgStats       = iota + 1 // worker → leader: count [+ min + max]
	msgPickPivot              // leader → one worker: lo, hi
	msgPivotReply             // worker → leader: pivot
	msgCount                  // leader → all: lo, p — count keys in (lo, p]
	msgCountReply             // worker → leader: count
	msgMedianQuery            // leader → all: lo, hi — median of keys in (lo, hi]
	msgMedianReply            // worker → leader: count [+ median]
	msgFinished               // leader → all: boundary, iterations
)

// Result is what every machine learns when a selection protocol finishes.
type Result struct {
	// Boundary is the globally ℓ-th smallest key; the union over machines
	// of keys ≤ Boundary is exactly the ℓ smallest keys.
	Boundary keys.Key
	// Winners are this machine's local keys ≤ Boundary, in input order.
	Winners []keys.Key
	// Iterations is the number of pivot (or median, or bisection) steps
	// the leader used; identical on every machine.
	Iterations int
}

// Options tunes a selection run.
type Options struct {
	// OnPivot, if non-nil, is invoked on the leader at every pivot
	// decision with the chosen pivot, the active range and the number of
	// in-range keys. Used by the Lemma 2.1 uniformity experiment.
	OnPivot func(pivot, lo, hi keys.Key, total int64)
}

// FindLSmallest runs the paper's Algorithm 1. Every machine calls it with
// its local keys; the elected leader index must be agreed beforehand. The
// rank l is global (1 ≤ l ≤ total number of keys).
func FindLSmallest(m kmachine.Env, leader int, local []keys.Key, l int, opts Options) (Result, error) {
	if err := validateLocal(local); err != nil {
		return Result{}, err
	}
	if m.ID() != leader {
		return runWorker(m, leader, local)
	}
	return leadAlg1(m, local, l, opts)
}

// SaukasSong runs the deterministic weighted-median selection baseline.
func SaukasSong(m kmachine.Env, leader int, local []keys.Key, l int) (Result, error) {
	if err := validateLocal(local); err != nil {
		return Result{}, err
	}
	if m.ID() != leader {
		return runWorker(m, leader, local)
	}
	return leadSaukasSong(m, local, l)
}

// BinarySearch runs the domain-bisection selection baseline.
func BinarySearch(m kmachine.Env, leader int, local []keys.Key, l int) (Result, error) {
	if err := validateLocal(local); err != nil {
		return Result{}, err
	}
	if m.ID() != leader {
		return runWorker(m, leader, local)
	}
	return leadBinarySearch(m, local, l)
}

// validateLocal rejects keys that collide with the MinKey sentinel, which
// the half-open range logic reserves as "below everything".
func validateLocal(local []keys.Key) error {
	for _, k := range local {
		if k == keys.MinKey {
			return fmt.Errorf("dsel: local key equals the MinKey sentinel (use IDs >= 1)")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Worker side (shared by all protocols)
// ---------------------------------------------------------------------------

// runWorker announces local statistics, then answers leader queries until a
// finished message arrives.
func runWorker(m kmachine.Env, leader int, local []keys.Key) (Result, error) {
	m.Send(leader, encodeStats(local))
	m.EndRound()
	for {
		for _, msg := range m.Gather(1) {
			if msg.From != leader {
				return Result{}, fmt.Errorf("dsel: worker %d got message from non-leader %d", m.ID(), msg.From)
			}
			r := wire.NewReader(msg.Payload)
			kind := r.U8()
			switch kind {
			case msgPickPivot:
				lo, hi := r.Key(), r.Key()
				if err := r.Err(); err != nil {
					return Result{}, fmt.Errorf("dsel: bad pivot query: %w", err)
				}
				pivot, ok := pickUniform(m, local, lo, hi)
				if !ok {
					return Result{}, fmt.Errorf("dsel: machine %d asked for a pivot but has no key in range", m.ID())
				}
				var w wire.Writer
				w.U8(msgPivotReply)
				w.Key(pivot)
				m.Send(leader, w.Bytes())
			case msgCount:
				lo, p := r.Key(), r.Key()
				if err := r.Err(); err != nil {
					return Result{}, fmt.Errorf("dsel: bad count query: %w", err)
				}
				var w wire.Writer
				w.U8(msgCountReply)
				w.Varint(uint64(seqselect.CountInRange(local, lo, p)))
				m.Send(leader, w.Bytes())
			case msgMedianQuery:
				lo, hi := r.Key(), r.Key()
				if err := r.Err(); err != nil {
					return Result{}, fmt.Errorf("dsel: bad median query: %w", err)
				}
				m.Send(leader, encodeMedianReply(local, lo, hi))
			case msgFinished:
				boundary := r.Key()
				iters := int(r.Varint())
				if err := r.Err(); err != nil {
					return Result{}, fmt.Errorf("dsel: bad finished message: %w", err)
				}
				return Result{
					Boundary:   boundary,
					Winners:    seqselect.FilterLessEq(local, boundary),
					Iterations: iters,
				}, nil
			default:
				return Result{}, fmt.Errorf("dsel: worker %d got unknown message kind %d", m.ID(), kind)
			}
			m.EndRound()
		}
	}
}

// pickUniform draws a uniformly random local key inside (lo, hi].
func pickUniform(m kmachine.Env, local []keys.Key, lo, hi keys.Key) (keys.Key, bool) {
	var inRange []keys.Key
	for _, k := range local {
		if lo.Less(k) && k.LessEq(hi) {
			inRange = append(inRange, k)
		}
	}
	if len(inRange) == 0 {
		return keys.Key{}, false
	}
	return inRange[m.Rand().IntN(len(inRange))], true
}

// ---------------------------------------------------------------------------
// Leader bookkeeping shared by the strategies
// ---------------------------------------------------------------------------

// leaderState tracks the leader's view: the active half-open range (lo, hi],
// the remaining rank within it, and per-machine in-range counts.
type leaderState struct {
	m      kmachine.Env
	local  []keys.Key
	lo, hi keys.Key
	l      int64   // rank still sought inside (lo, hi]
	counts []int64 // in-range keys per machine
	total  int64
	iters  int
}

// initLeader gathers the opening statistics from all workers (they send
// proactively in round 0) and initializes the range to cover every key.
func initLeader(m kmachine.Env, local []keys.Key, l int) (*leaderState, error) {
	k := m.K()
	st := &leaderState{
		m:      m,
		local:  local,
		lo:     keys.MinKey,
		counts: make([]int64, k),
		l:      int64(l),
	}
	st.counts[m.ID()] = int64(len(local))
	globalMin, globalMax := keys.MaxKey, keys.MinKey
	for _, key := range local {
		if key.Less(globalMin) {
			globalMin = key
		}
		if globalMax.Less(key) {
			globalMax = key
		}
	}
	if k > 1 {
		m.EndRound()
		for _, msg := range m.Gather(k - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != msgStats {
				return nil, fmt.Errorf("dsel: expected stats from %d, got kind %d", msg.From, kind)
			}
			cnt := int64(r.Varint())
			if cnt > 0 {
				mn, mx := r.Key(), r.Key()
				if mn.Less(globalMin) {
					globalMin = mn
				}
				if globalMax.Less(mx) {
					globalMax = mx
				}
			}
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("dsel: bad stats from %d: %w", msg.From, err)
			}
			st.counts[msg.From] = cnt
		}
	}
	for _, c := range st.counts {
		st.total += c
	}
	if int64(l) < 1 || int64(l) > st.total {
		return nil, fmt.Errorf("dsel: rank %d out of range [1, %d]", l, st.total)
	}
	st.hi = globalMax
	return st, nil
}

// countBelow broadcasts a count query for (st.lo, p] and returns the
// per-machine counts plus their sum. Two rounds, 2(k−1) messages.
func (st *leaderState) countBelow(p keys.Key) ([]int64, int64) {
	k := st.m.K()
	perMachine := make([]int64, k)
	perMachine[st.m.ID()] = int64(seqselect.CountInRange(st.local, st.lo, p))
	if k > 1 {
		var w wire.Writer
		w.U8(msgCount)
		w.Key(st.lo)
		w.Key(p)
		st.m.Broadcast(w.Bytes())
		st.m.EndRound()
		for _, msg := range st.m.Gather(k - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != msgCountReply {
				panic(fmt.Sprintf("dsel: expected count reply from %d, got kind %d", msg.From, kind))
			}
			perMachine[msg.From] = int64(r.Varint())
		}
	}
	var s int64
	for _, c := range perMachine {
		s += c
	}
	return perMachine, s
}

// apply folds a pivot's count outcome into the state following the
// randomized-selection recurrence. It returns the final boundary and true
// when the search is complete.
func (st *leaderState) apply(pivot keys.Key, perMachine []int64, s int64) (keys.Key, bool) {
	st.iters++
	switch {
	case s == st.l:
		return pivot, true
	case s < st.l:
		// Everything in (lo, pivot] is a winner; continue above it.
		st.l -= s
		st.lo = pivot
		for i := range st.counts {
			st.counts[i] -= perMachine[i]
		}
		st.total -= s
	default:
		// The boundary lies in (lo, pivot]; discard everything above.
		st.hi = pivot
		copy(st.counts, perMachine)
		st.total = s
	}
	if st.total == st.l {
		// All remaining in-range keys are winners.
		return st.hi, true
	}
	return keys.Key{}, false
}

// finish broadcasts the boundary and assembles the leader's own result.
func (st *leaderState) finish(boundary keys.Key) Result {
	var w wire.Writer
	w.U8(msgFinished)
	w.Key(boundary)
	w.Varint(uint64(st.iters))
	st.m.Broadcast(w.Bytes())
	return Result{
		Boundary:   boundary,
		Winners:    seqselect.FilterLessEq(st.local, boundary),
		Iterations: st.iters,
	}
}

// ---------------------------------------------------------------------------
// Algorithm 1 leader
// ---------------------------------------------------------------------------

func leadAlg1(m kmachine.Env, local []keys.Key, l int, opts Options) (Result, error) {
	st, err := initLeader(m, local, l)
	if err != nil {
		return Result{}, err
	}
	if st.total == st.l {
		return st.finish(st.hi), nil
	}
	for {
		// Pick the pivot machine with probability n_i / total, then a
		// uniform key within it — uniform overall by Lemma 2.1.
		i := xrand.WeightedChoice(m.Rand(), st.counts)
		var pivot keys.Key
		if i == m.ID() {
			p, ok := pickUniform(m, local, st.lo, st.hi)
			if !ok {
				return Result{}, fmt.Errorf("dsel: leader count bookkeeping corrupt")
			}
			pivot = p
		} else {
			var w wire.Writer
			w.U8(msgPickPivot)
			w.Key(st.lo)
			w.Key(st.hi)
			m.Send(i, w.Bytes())
			m.EndRound()
			reply := m.Gather(1)[0]
			r := wire.NewReader(reply.Payload)
			if kind := r.U8(); kind != msgPivotReply {
				return Result{}, fmt.Errorf("dsel: expected pivot reply, got kind %d", kind)
			}
			pivot = r.Key()
			if err := r.Err(); err != nil {
				return Result{}, fmt.Errorf("dsel: bad pivot reply: %w", err)
			}
		}
		if opts.OnPivot != nil {
			opts.OnPivot(pivot, st.lo, st.hi, st.total)
		}
		perMachine, s := st.countBelow(pivot)
		if boundary, done := st.apply(pivot, perMachine, s); done {
			return st.finish(boundary), nil
		}
	}
}

// ---------------------------------------------------------------------------
// Saukas–Song leader
// ---------------------------------------------------------------------------

func leadSaukasSong(m kmachine.Env, local []keys.Key, l int) (Result, error) {
	st, err := initLeader(m, local, l)
	if err != nil {
		return Result{}, err
	}
	k := m.K()
	for st.total > st.l {
		// Collect each machine's median of its in-range keys.
		type wm struct {
			median keys.Key
			weight int64
		}
		var medians []wm
		if own, cnt := localMedian(local, st.lo, st.hi); cnt > 0 {
			medians = append(medians, wm{own, cnt})
		}
		if k > 1 {
			var w wire.Writer
			w.U8(msgMedianQuery)
			w.Key(st.lo)
			w.Key(st.hi)
			m.Broadcast(w.Bytes())
			m.EndRound()
			for _, msg := range m.Gather(k - 1) {
				r := wire.NewReader(msg.Payload)
				if kind := r.U8(); kind != msgMedianReply {
					return Result{}, fmt.Errorf("dsel: expected median reply from %d, got kind %d", msg.From, kind)
				}
				cnt := int64(r.Varint())
				if cnt > 0 {
					medians = append(medians, wm{r.Key(), cnt})
				}
				if err := r.Err(); err != nil {
					return Result{}, fmt.Errorf("dsel: bad median reply: %w", err)
				}
			}
		}
		// Weighted median of medians: the smallest median such that the
		// machines at or below it hold at least half the in-range keys.
		sort.Slice(medians, func(a, b int) bool { return medians[a].median.Less(medians[b].median) })
		var cum int64
		pivot := medians[len(medians)-1].median
		for _, wmed := range medians {
			cum += wmed.weight
			if 2*cum >= st.total {
				pivot = wmed.median
				break
			}
		}
		perMachine, s := st.countBelow(pivot)
		if boundary, done := st.apply(pivot, perMachine, s); done {
			return st.finish(boundary), nil
		}
	}
	return st.finish(st.hi), nil
}

// localMedian returns the lower median of the keys in (lo, hi] and how many
// keys are in range.
func localMedian(local []keys.Key, lo, hi keys.Key) (keys.Key, int64) {
	var inRange []keys.Key
	for _, k := range local {
		if lo.Less(k) && k.LessEq(hi) {
			inRange = append(inRange, k)
		}
	}
	if len(inRange) == 0 {
		return keys.Key{}, 0
	}
	med := seqselect.MedianOfMedians(inRange, (len(inRange)+1)/2)
	return med, int64(len(inRange))
}

// ---------------------------------------------------------------------------
// Binary-search leader
// ---------------------------------------------------------------------------

func leadBinarySearch(m kmachine.Env, local []keys.Key, l int) (Result, error) {
	st, err := initLeader(m, local, l)
	if err != nil {
		return Result{}, err
	}
	// Invariant: the answer (the smallest key K* with count(≤K*) ≥ l) lies
	// in [lo128, hi128]. Counts use the fixed range (MinKey, ·], so the
	// leaderState range fields stay pinned at their initial values.
	lo128, hi128 := keys.MinKey, st.hi
	for lo128.Less(hi128) {
		mid := keys.Midpoint(lo128, hi128)
		_, s := st.countBelow(mid)
		st.iters++
		if s >= st.l {
			hi128 = mid
		} else {
			lo128 = keys.Inc(mid)
		}
	}
	return st.finish(lo128), nil
}
