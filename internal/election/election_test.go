package election

import (
	"sync"
	"testing"

	"distknn/internal/kmachine"
)

// runElection executes fn on every machine and asserts all machines agree on
// the winner; it returns the winner and the run metrics.
func runElection(t *testing.T, k int, seed uint64, bandwidth int,
	fn func(m kmachine.Env) (int, error)) (int, *kmachine.Metrics) {
	t.Helper()
	var mu sync.Mutex
	winners := make([]int, k)
	met, err := kmachine.Run(kmachine.Config{K: k, Seed: seed, BandwidthBytes: bandwidth},
		func(m kmachine.Env) error {
			w, err := fn(m)
			if err != nil {
				return err
			}
			mu.Lock()
			winners[m.ID()] = w
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatalf("election run failed: %v", err)
	}
	for i := 1; i < k; i++ {
		if winners[i] != winners[0] {
			t.Fatalf("machines disagree: machine %d says %d, machine 0 says %d",
				i, winners[i], winners[0])
		}
	}
	if winners[0] < 0 || winners[0] >= k {
		t.Fatalf("winner %d out of range", winners[0])
	}
	return winners[0], met
}

func TestMinGUIDAgreement(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 32} {
		for seed := uint64(0); seed < 3; seed++ {
			runElection(t, k, seed, 0, MinGUID)
		}
	}
}

func TestMinGUIDPicksActualMinimum(t *testing.T) {
	k := 16
	guids := make([]uint64, k)
	var mu sync.Mutex
	winner, _ := runElection(t, k, 5, 0, func(m kmachine.Env) (int, error) {
		mu.Lock()
		guids[m.ID()] = m.GUID()
		mu.Unlock()
		return MinGUID(m)
	})
	min := 0
	for i := 1; i < k; i++ {
		if guids[i] < guids[min] {
			min = i
		}
	}
	if winner != min {
		t.Errorf("winner %d but min GUID at %d", winner, min)
	}
}

func TestMinGUIDOneRound(t *testing.T) {
	_, met := runElection(t, 8, 7, 0, MinGUID)
	if met.Rounds != 1 {
		t.Errorf("MinGUID took %d rounds, want 1", met.Rounds)
	}
	if met.Messages != 8*7 {
		t.Errorf("MinGUID sent %d messages, want 56", met.Messages)
	}
}

func TestSublinearAgreement(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 16, 64, 128} {
		for seed := uint64(0); seed < 5; seed++ {
			runElection(t, k, seed, 0, func(m kmachine.Env) (int, error) {
				return Sublinear(m, SublinearOptions{})
			})
		}
	}
}

func TestSublinearConstantRounds(t *testing.T) {
	for _, k := range []int{2, 16, 128} {
		_, met := runElection(t, k, 11, 0, func(m kmachine.Env) (int, error) {
			return Sublinear(m, SublinearOptions{})
		})
		if met.Rounds != 3 {
			t.Errorf("k=%d: Sublinear took %d rounds, want 3", k, met.Rounds)
		}
		if met.Dangling != 0 {
			t.Errorf("k=%d: %d dangling messages", k, met.Dangling)
		}
	}
}

func TestSublinearMessageComplexitySublinearPhases(t *testing.T) {
	// Candidate/referee traffic must be far below the Θ(k²) of MinGUID;
	// total includes the Θ(k) announcement. Compare against k²/2 as the
	// "clearly not all-to-all" bar, and require the announce-adjusted
	// remainder to be o(k²).
	k := 256
	_, met := runElection(t, k, 13, 0, func(m kmachine.Env) (int, error) {
		return Sublinear(m, SublinearOptions{})
	})
	if met.Messages >= int64(k*k)/2 {
		t.Errorf("sublinear election sent %d messages, not sublinear vs k²=%d", met.Messages, k*k)
	}
}

func TestSublinearRejectsTinyBandwidth(t *testing.T) {
	_, err := kmachine.Run(kmachine.Config{K: 4, Seed: 1, BandwidthBytes: 8},
		func(m kmachine.Env) error {
			_, err := Sublinear(m, SublinearOptions{BandwidthBytes: 8})
			return err
		})
	if err == nil {
		t.Errorf("bandwidth below one election message per round must be rejected")
	}
}

func TestSublinearUnlimitedBandwidth(t *testing.T) {
	runElection(t, 32, 17, -1, func(m kmachine.Env) (int, error) {
		return Sublinear(m, SublinearOptions{BandwidthBytes: -1})
	})
}

func TestElectorsDeterministicPerSeed(t *testing.T) {
	w1, _ := runElection(t, 32, 99, 0, func(m kmachine.Env) (int, error) {
		return Sublinear(m, SublinearOptions{})
	})
	w2, _ := runElection(t, 32, 99, 0, func(m kmachine.Env) (int, error) {
		return Sublinear(m, SublinearOptions{})
	})
	if w1 != w2 {
		t.Errorf("same seed elected %d then %d", w1, w2)
	}
}
