// Package election implements leader election in the k-machine model.
//
// Both Algorithm 1 and Algorithm 2 of the paper open with "elect a leader
// machine"; the paper points to Kutten, Pandurangan, Peleg, Robinson and
// Trehan (TCS 2015), which elects a leader in a complete network in O(1)
// rounds and O(√k·log^{3/2} k) messages. Two electors are provided:
//
//   - MinGUID: every machine broadcasts its GUID and the minimum wins.
//     One round, Θ(k²) messages, deterministic given GUIDs. The obvious
//     protocol, used as the oracle.
//
//   - Sublinear: a referee-based randomized election in the spirit of
//     Kutten et al. A few self-nominated candidates each contact ~√(k·log k)
//     random referees; a referee endorses only the highest-priority candidate
//     it has heard from; a fully endorsed candidate announces victory and the
//     highest-priority announcement wins everywhere. The candidate/referee
//     phases cost O(√k·log^{3/2} k) messages in expectation; the final
//     announcement costs Θ(k) more because — unlike the "implicit" variant in
//     the literature — every machine here must learn the leader's identity
//     to run the selection protocols.
//
// Both return the same value on every machine, which is all the callers rely
// on. Once runs either elector across a persistent kmachine.Runtime so a
// long-lived cluster elects at construction and caches the winner; the
// paper's per-query election cost then amortizes to zero over the query
// stream.
package election

import (
	"fmt"
	"math"

	"distknn/internal/kmachine"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// OnceOptions selects the elector for Elect and Once.
type OnceOptions struct {
	// Sublinear selects the randomized referee election instead of the
	// min-GUID broadcast.
	Sublinear bool
	// BandwidthBytes is forwarded to SublinearOptions.
	BandwidthBytes int
}

// Elect runs the configured elector on machine m. It is the single dispatch
// point between the two protocols; every caller — persistent (Once) or
// per-run — goes through it.
func Elect(m kmachine.Env, opts OnceOptions) (int, error) {
	if opts.Sublinear {
		return Sublinear(m, SublinearOptions{BandwidthBytes: opts.BandwidthBytes})
	}
	return MinGUID(m)
}

// Once runs a single leader election across a persistent runtime and returns
// the agreed leader index together with the run's cost. It is the
// construction-time path of a long-lived cluster: elect once, cache the
// winner, and let every steady-state query skip election entirely (any index
// all machines agree on is a valid leader for the selection protocols, which
// only require agreement).
func Once(rt *kmachine.Runtime, seed uint64, opts OnceOptions) (int, *kmachine.Metrics, error) {
	leaders := make([]int, rt.K())
	prog := func(m kmachine.Env) error {
		leader, err := Elect(m, opts)
		if err != nil {
			return err
		}
		leaders[m.ID()] = leader
		return nil
	}
	met, err := rt.ExecuteSeeded(seed, prog)
	if err != nil {
		return 0, nil, err
	}
	for i, leader := range leaders {
		if leader != leaders[0] {
			return 0, met, fmt.Errorf("election: machine %d elected %d, machine 0 elected %d", i, leader, leaders[0])
		}
	}
	return leaders[0], met, nil
}

// MinGUID elects the machine with the smallest GUID (ties, which cannot
// happen with 64-bit GUIDs in practice, broken by machine index). Every
// machine returns the winner's index after exactly one communication round.
func MinGUID(m kmachine.Env) (int, error) {
	if m.K() == 1 {
		return 0, nil
	}
	var w wire.Writer
	w.U64(m.GUID())
	m.Broadcast(w.Bytes())
	m.EndRound()
	msgs := m.Gather(m.K() - 1)
	best, bestID := m.GUID(), m.ID()
	for _, msg := range msgs {
		r := wire.NewReader(msg.Payload)
		g := r.U64()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("election: bad GUID message from %d: %w", msg.From, err)
		}
		if g < best || (g == best && msg.From < bestID) {
			best, bestID = g, msg.From
		}
	}
	return bestID, nil
}

// SublinearOptions tunes the randomized election.
type SublinearOptions struct {
	// BandwidthBytes must match the simulation's per-link bandwidth; the
	// protocol's fixed four-round schedule requires each of its ≤24-byte
	// payloads to cross a link in one round (i.e. B ≥ 32 including
	// overhead). 0 selects kmachine.DefaultBandwidth; negative means
	// unlimited.
	BandwidthBytes int
}

const (
	msgNominate = iota + 1 // candidate → referee: priority
	msgVerdict             // referee → candidate: 1 = endorsed
	msgAnnounce            // winner → all: priority
)

// maxPayload is the largest payload Sublinear sends (type + priority).
const maxPayload = 9

// Sublinear runs the randomized referee election. All machines return the
// same leader index. It uses exactly 3 communication rounds.
//
// Machine 0 always nominates itself (in addition to the random nominees), so
// at least one candidate exists and no retry phase is needed; the
// highest-priority candidate is endorsed by every referee it contacts, so at
// least one announcement is always made.
func Sublinear(m kmachine.Env, opts SublinearOptions) (int, error) {
	k := m.K()
	if k == 1 {
		return 0, nil
	}
	b := opts.BandwidthBytes
	if b == 0 {
		b = kmachine.DefaultBandwidth
	}
	if b > 0 && b < maxPayload+kmachine.MessageOverheadBytes {
		return 0, fmt.Errorf("election: bandwidth %dB cannot carry a %dB election message in one round",
			b, maxPayload+kmachine.MessageOverheadBytes)
	}

	rng := m.Rand()
	logK := math.Log(float64(k))
	pCand := (2*logK + 1) / float64(k)
	candidate := m.ID() == 0 || rng.Float64() < pCand
	priority := rng.Uint64()

	// Round 0: candidates nominate themselves to ~√(k·log k) referees.
	nReferees := int(math.Ceil(math.Sqrt(float64(k) * (logK + 1))))
	if nReferees > k-1 {
		nReferees = k - 1
	}
	var referees []int
	if candidate {
		for _, idx := range xrand.SampleWithoutReplacement(rng, k-1, nReferees) {
			// Index space [0, k−1) excludes self: shift values ≥ own id.
			to := idx
			if to >= m.ID() {
				to++
			}
			referees = append(referees, to)
		}
		var w wire.Writer
		w.U8(msgNominate)
		w.U64(priority)
		for _, to := range referees {
			m.Send(to, w.Bytes())
		}
	}
	m.EndRound()

	// Round 1: referees endorse the single highest-priority nominator.
	bestFrom, bestPrio, sawNomination := -1, uint64(0), false
	var nominators []int
	for _, msg := range m.Recv() {
		r := wire.NewReader(msg.Payload)
		if r.U8() != msgNominate {
			return 0, fmt.Errorf("election: unexpected message type from %d in referee round", msg.From)
		}
		p := r.U64()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("election: bad nomination from %d: %w", msg.From, err)
		}
		nominators = append(nominators, msg.From)
		if !sawNomination || p > bestPrio || (p == bestPrio && msg.From < bestFrom) {
			bestFrom, bestPrio, sawNomination = msg.From, p, true
		}
	}
	for _, from := range nominators {
		var w wire.Writer
		w.U8(msgVerdict)
		if from == bestFrom {
			w.U8(1)
		} else {
			w.U8(0)
		}
		m.Send(from, w.Bytes())
	}
	m.EndRound()

	// Round 2: fully endorsed candidates announce.
	announced := false
	if candidate {
		endorsed := 0
		for _, msg := range m.Recv() {
			r := wire.NewReader(msg.Payload)
			if r.U8() != msgVerdict {
				return 0, fmt.Errorf("election: unexpected message type from %d in verdict round", msg.From)
			}
			if r.U8() == 1 {
				endorsed++
			}
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("election: bad verdict from %d: %w", msg.From, err)
			}
		}
		if endorsed == len(referees) {
			var w wire.Writer
			w.U8(msgAnnounce)
			w.U64(priority)
			m.Broadcast(w.Bytes())
			announced = true
		}
	}
	m.EndRound()

	// Round 3: everyone adopts the highest-priority announcer. A machine
	// does not receive its own broadcast, so an announcer seeds the
	// comparison with itself.
	leader, leaderPrio, heard := -1, uint64(0), false
	if announced {
		leader, leaderPrio, heard = m.ID(), priority, true
	}
	for _, msg := range m.Recv() {
		r := wire.NewReader(msg.Payload)
		if r.U8() != msgAnnounce {
			return 0, fmt.Errorf("election: unexpected message type from %d in announce round", msg.From)
		}
		p := r.U64()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("election: bad announcement from %d: %w", msg.From, err)
		}
		if !heard || p > leaderPrio || (p == leaderPrio && msg.From < leader) {
			leader, leaderPrio, heard = msg.From, p, true
		}
	}
	if !heard {
		return 0, fmt.Errorf("election: machine %d heard no announcement", m.ID())
	}
	return leader, nil
}
