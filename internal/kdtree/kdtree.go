// Package kdtree implements a k-d tree over d-dimensional points.
//
// The paper's related-work discussion (Section 1.4) contrasts its
// round-optimal approach with k-d-tree-based systems (Bentley [2], Friedman
// et al. [6], PANDA [14]): a k-d tree accelerates *local* computation but
// does not change round complexity, since each machine can simply index its
// own points. This package provides exactly that role — machines may use it
// to compute their local top-ℓ in O(ℓ log(n/k)) expected time instead of a
// linear scan — and doubles as the sequential single-machine baseline.
package kdtree

import (
	"fmt"
	"math"
	"sort"

	"distknn/internal/keys"
	"distknn/internal/points"
	"distknn/internal/pq"
)

// Tree is an immutable k-d tree over a vector set. Build once, query many.
type Tree struct {
	dim    int
	pts    []points.Vector
	ids    []uint64
	labels []float64
	// nodes is laid out as a binary tree over index permutation perm:
	// node i covers perm[start..end); axis cycles with depth.
	perm []int
	root *node
}

type node struct {
	idx         int // index into pts of the splitting point
	axis        int
	left, right *node
}

// Build constructs a k-d tree from the set. The set must contain vectors of
// equal dimension; an empty set yields a tree whose queries return nothing.
func Build(s *points.Set[points.Vector]) (*Tree, error) {
	n := s.Len()
	t := &Tree{pts: s.Pts, ids: s.IDs, labels: s.Labels}
	if n == 0 {
		return t, nil
	}
	t.dim = len(s.Pts[0])
	if t.dim == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, p := range s.Pts {
		if len(p) != t.dim {
			return nil, fmt.Errorf("kdtree: point %d has dim %d, want %d", i, len(p), t.dim)
		}
	}
	t.perm = make([]int, n)
	for i := range t.perm {
		t.perm[i] = i
	}
	t.root = t.build(0, n, 0)
	return t, nil
}

// build recursively splits perm[lo:hi) at the median along axis.
func (t *Tree) build(lo, hi, axis int) *node {
	if lo >= hi {
		return nil
	}
	mid := (lo + hi) / 2
	t.nthByAxis(lo, hi, mid, axis)
	nd := &node{idx: t.perm[mid], axis: axis}
	next := (axis + 1) % t.dim
	nd.left = t.build(lo, mid, next)
	nd.right = t.build(mid+1, hi, next)
	return nd
}

// nthByAxis partially sorts perm[lo:hi) so that perm[nth] holds the element
// whose axis coordinate is the nth smallest (ties broken by ID for
// determinism).
func (t *Tree) nthByAxis(lo, hi, nth, axis int) {
	sub := t.perm[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		va, vb := t.pts[sub[a]][axis], t.pts[sub[b]][axis]
		if va != vb {
			return va < vb
		}
		return t.ids[sub[a]] < t.ids[sub[b]]
	})
	_ = nth // full sort keeps build simple; O(n log² n) total, done once
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// KNN returns the l points nearest to q under squared Euclidean distance, as
// Items in ascending key order — bit-identical keys to points.L2, so results
// can be cross-checked against brute force exactly.
func (t *Tree) KNN(q points.Vector, l int) []points.Item {
	if l < 1 || t.root == nil {
		return nil
	}
	type cand struct {
		d2  float64
		idx int
	}
	best := pq.New(l, func(a, b cand) bool {
		if a.d2 != b.d2 {
			return a.d2 < b.d2
		}
		return t.ids[a.idx] < t.ids[b.idx]
	})
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		p := t.pts[nd.idx]
		best.Push(cand{d2: sq2(p, q), idx: nd.idx})
		diff := q[nd.axis] - p[nd.axis]
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = nd.right, nd.left
		}
		visit(near)
		// Only cross the splitting plane if the slab could contain a
		// closer point than the current cutoff.
		if !best.Full() || diff*diff <= best.Max().d2 {
			visit(far)
		}
	}
	visit(t.root)
	cands := best.Sorted()
	out := make([]points.Item, len(cands))
	for i, c := range cands {
		out[i] = points.Item{
			Key:   keys.Key{Dist: keys.MustEncodeFloat(c.d2), ID: t.ids[c.idx]},
			Label: t.labels[c.idx],
		}
	}
	return out
}

// CountWithin returns the number of points at squared Euclidean distance
// ≤ r2 from q.
func (t *Tree) CountWithin(q points.Vector, r2 float64) int {
	count := 0
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		p := t.pts[nd.idx]
		if sq2(p, q) <= r2 {
			count++
		}
		diff := q[nd.axis] - p[nd.axis]
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = nd.right, nd.left
		}
		visit(near)
		if diff*diff <= r2 {
			visit(far)
		}
	}
	visit(t.root)
	return count
}

// Height returns the tree height (0 for empty) — exposed for balance tests.
func (t *Tree) Height() int {
	var h func(nd *node) int
	h = func(nd *node) int {
		if nd == nil {
			return 0
		}
		l, r := h(nd.left), h(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

func sq2(a, b points.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MaxHeightFor returns the height bound a median-split tree must satisfy for
// n points: ceil(log2(n+1)).
func MaxHeightFor(n int) int {
	return int(math.Ceil(math.Log2(float64(n + 1))))
}
