package kdtree

import (
	"testing"

	"distknn/internal/points"
	"distknn/internal/xrand"
)

func buildRandom(t testing.TB, seed uint64, n, dim int) (*Tree, *points.Set[points.Vector]) {
	t.Helper()
	rng := xrand.New(seed)
	s := points.GenUniformVectors(rng, n, dim)
	tree, err := Build(s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree, s
}

func TestBuildEmpty(t *testing.T) {
	s, _ := points.NewSet([]points.Vector{}, nil, points.L2, 1)
	tree, err := Build(s)
	if err != nil {
		t.Fatalf("Build empty: %v", err)
	}
	if got := tree.KNN(points.Vector{0.5}, 3); got != nil {
		t.Errorf("empty tree KNN = %v, want nil", got)
	}
	if tree.Height() != 0 || tree.Len() != 0 {
		t.Errorf("empty tree shape wrong")
	}
}

func TestBuildRejectsMixedDims(t *testing.T) {
	s, _ := points.NewSet([]points.Vector{{1, 2}, {1}}, nil, points.L2, 1)
	if _, err := Build(s); err == nil {
		t.Errorf("mixed dimensions must be rejected")
	}
	s2, _ := points.NewSet([]points.Vector{{}}, nil, points.L2, 1)
	if _, err := Build(s2); err == nil {
		t.Errorf("zero-dimensional points must be rejected")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 8} {
		tree, s := buildRandom(t, uint64(dim), 300, dim)
		rng := xrand.New(100 + uint64(dim))
		for trial := 0; trial < 20; trial++ {
			q := make(points.Vector, dim)
			for j := range q {
				q[j] = rng.Float64()
			}
			l := 1 + rng.IntN(20)
			got := tree.KNN(q, l)
			want := s.BruteKNN(q, l)
			if len(got) != len(want) {
				t.Fatalf("dim=%d l=%d: got %d items, want %d", dim, l, len(got), len(want))
			}
			for i := range got {
				if got[i].Key != want[i].Key {
					t.Fatalf("dim=%d l=%d rank %d: got %v, want %v",
						dim, l, i, got[i].Key, want[i].Key)
				}
			}
		}
	}
}

func TestKNNWithLLargerThanN(t *testing.T) {
	tree, s := buildRandom(t, 7, 10, 2)
	got := tree.KNN(points.Vector{0.5, 0.5}, 50)
	if len(got) != 10 {
		t.Fatalf("l>n must return all %d points, got %d", s.Len(), len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key.Less(got[i-1].Key) {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

func TestKNNInvalidL(t *testing.T) {
	tree, _ := buildRandom(t, 8, 10, 2)
	if got := tree.KNN(points.Vector{0.5, 0.5}, 0); got != nil {
		t.Errorf("l=0 must return nil")
	}
}

func TestKNNDuplicatePoints(t *testing.T) {
	pts := []points.Vector{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	s, _ := points.NewSet(pts, []float64{1, 2, 3, 4}, points.L2, 1)
	tree, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	got := tree.KNN(points.Vector{1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("got %d items", len(got))
	}
	// All three duplicates at distance 0, ordered by ID.
	for i, item := range got {
		if item.Key.Dist != 0 || item.Key.ID != uint64(i+1) {
			t.Errorf("rank %d: %v", i, item.Key)
		}
	}
}

func TestCountWithinMatchesBrute(t *testing.T) {
	tree, s := buildRandom(t, 9, 500, 3)
	rng := xrand.New(200)
	for trial := 0; trial < 20; trial++ {
		q := points.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		r2 := rng.Float64() * 0.5
		want := 0
		for _, p := range s.Pts {
			var d2 float64
			for j := range p {
				d := p[j] - q[j]
				d2 += d * d
			}
			if d2 <= r2 {
				want++
			}
		}
		if got := tree.CountWithin(q, r2); got != want {
			t.Fatalf("CountWithin(r2=%g) = %d, want %d", r2, got, want)
		}
	}
}

func TestTreeBalanced(t *testing.T) {
	tree, _ := buildRandom(t, 10, 1023, 2)
	if h := tree.Height(); h > MaxHeightFor(1023) {
		t.Errorf("height %d exceeds balanced bound %d", h, MaxHeightFor(1023))
	}
}

func TestKNNKeysMatchL2Encoding(t *testing.T) {
	// The tree's keys must be bit-identical to points.L2 keys so distributed
	// protocols can mix tree-computed and scan-computed items.
	tree, s := buildRandom(t, 11, 100, 2)
	q := points.Vector{0.3, 0.7}
	got := tree.KNN(q, 5)
	for _, item := range got {
		// find the point by ID
		for i, id := range s.IDs {
			if id == item.Key.ID {
				if want := points.L2(s.Pts[i], q); want != item.Key.Dist {
					t.Fatalf("key dist %d != L2 encoding %d", item.Key.Dist, want)
				}
			}
		}
	}
}

func BenchmarkKDTreeKNN(b *testing.B) {
	rng := xrand.New(1)
	s := points.GenUniformVectors(rng, 1<<16, 3)
	tree, err := Build(s)
	if err != nil {
		b.Fatal(err)
	}
	q := points.Vector{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(q, 64)
	}
}

func BenchmarkBruteKNNBaseline(b *testing.B) {
	rng := xrand.New(1)
	s := points.GenUniformVectors(rng, 1<<16, 3)
	q := points.Vector{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BruteKNN(q, 64)
	}
}
