package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"distknn/internal/xrand"
)

func intLess(a, b int) bool { return a < b }

func TestTopLKeepsSmallest(t *testing.T) {
	acc := New(3, intLess)
	for _, v := range []int{9, 1, 8, 2, 7, 3} {
		acc.Push(v)
	}
	got := acc.Sorted()
	want := []int{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("Sorted len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestTopLUnderfilled(t *testing.T) {
	acc := New(10, intLess)
	acc.Push(5)
	acc.Push(1)
	if acc.Full() {
		t.Errorf("2 of 10 elements must not be Full")
	}
	if acc.Len() != 2 || acc.Cap() != 10 {
		t.Errorf("Len/Cap wrong: %d/%d", acc.Len(), acc.Cap())
	}
	if acc.Max() != 5 {
		t.Errorf("Max = %d, want 5", acc.Max())
	}
	got := acc.Sorted()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestTopLPushReturnValue(t *testing.T) {
	acc := New(2, intLess)
	if !acc.Push(5) || !acc.Push(3) {
		t.Fatalf("pushes into non-full accumulator must be retained")
	}
	if acc.Push(7) {
		t.Errorf("7 must be rejected when {3,5} retained")
	}
	if acc.Push(5) {
		t.Errorf("equal-to-max must be rejected (strict ordering)")
	}
	if !acc.Push(1) {
		t.Errorf("1 must evict 5")
	}
	got := acc.Sorted()
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("final contents %v, want [1 3]", got)
	}
}

func TestTopLMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Max on empty must panic")
		}
	}()
	New(1, intLess).Max()
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0, intLess) },
		func() { New[int](3, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: for random streams, TopL agrees exactly with sort-and-truncate.
func TestTopLAgainstSortOracle(t *testing.T) {
	prop := func(vals []int, rawL uint8) bool {
		l := int(rawL%32) + 1
		acc := New(l, intLess)
		for _, v := range vals {
			acc.Push(v)
		}
		got := acc.Sorted()
		want := append([]int(nil), vals...)
		sort.Ints(want)
		if l > len(want) {
			l = len(want)
		}
		want = want[:l]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("TopL disagrees with sort oracle: %v", err)
	}
}

func TestTopLLargeRandom(t *testing.T) {
	rng := xrand.New(42)
	acc := New(100, intLess)
	all := make([]int, 10000)
	for i := range all {
		all[i] = rng.IntN(1 << 30)
		acc.Push(all[i])
	}
	sort.Ints(all)
	got := acc.Sorted()
	for i := 0; i < 100; i++ {
		if got[i] != all[i] {
			t.Fatalf("rank %d: got %d, want %d", i, got[i], all[i])
		}
	}
}

func TestTopLItemsAliases(t *testing.T) {
	acc := New(3, intLess)
	acc.Push(2)
	acc.Push(1)
	items := acc.Items()
	if len(items) != 2 {
		t.Fatalf("Items len %d", len(items))
	}
}

func BenchmarkTopLPush(b *testing.B) {
	rng := xrand.New(1)
	vals := make([]int, 1<<16)
	for i := range vals {
		vals[i] = rng.IntN(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := New(256, intLess)
		for _, v := range vals {
			acc.Push(v)
		}
	}
}
