// Package pq implements a bounded top-ℓ accumulator: a fixed-capacity binary
// max-heap that retains the ℓ smallest elements it has seen.
//
// Every machine in the simple method — and every machine's preprocessing step
// in Algorithm 2 ("if a machine has more than ℓ points it keeps the ℓ whose
// distance from q is minimum") — needs exactly this structure: stream n/k
// items through, keep the best ℓ, O(n/k · log ℓ) time, O(ℓ) space.
package pq

// TopL keeps the l smallest elements of a stream under the provided strict
// ordering. The zero value is not usable; call New.
type TopL[T any] struct {
	less  func(a, b T) bool
	limit int
	heap  []T // max-heap on less: root is the largest retained element
}

// New returns an accumulator for the l smallest elements. l must be >= 1 and
// less must be a strict weak ordering.
func New[T any](l int, less func(a, b T) bool) *TopL[T] {
	if l < 1 {
		panic("pq: capacity must be >= 1")
	}
	if less == nil {
		panic("pq: nil ordering")
	}
	return &TopL[T]{less: less, limit: l, heap: make([]T, 0, l)}
}

// Len returns the number of retained elements (≤ the capacity).
func (t *TopL[T]) Len() int { return len(t.heap) }

// Cap returns the configured ℓ.
func (t *TopL[T]) Cap() int { return t.limit }

// Push offers x to the accumulator. It reports whether x was retained
// (possibly evicting the current maximum).
func (t *TopL[T]) Push(x T) bool {
	if len(t.heap) < t.limit {
		t.heap = append(t.heap, x)
		t.up(len(t.heap) - 1)
		return true
	}
	// Full: x replaces the root only if it is strictly smaller.
	if !t.less(x, t.heap[0]) {
		return false
	}
	t.heap[0] = x
	t.down(0)
	return true
}

// Max returns the largest retained element (the current cutoff). It panics
// on an empty accumulator.
func (t *TopL[T]) Max() T {
	if len(t.heap) == 0 {
		panic("pq: Max of empty TopL")
	}
	return t.heap[0]
}

// Full reports whether the accumulator holds ℓ elements, i.e. whether Max is
// a meaningful pruning threshold.
func (t *TopL[T]) Full() bool { return len(t.heap) == t.limit }

// Items returns the retained elements in unspecified order. The returned
// slice aliases the accumulator; callers that keep it must not Push again.
func (t *TopL[T]) Items() []T { return t.heap }

// Sorted extracts the retained elements in ascending order, emptying the
// accumulator. O(ℓ log ℓ).
func (t *TopL[T]) Sorted() []T {
	out := make([]T, len(t.heap))
	for i := len(t.heap) - 1; i >= 0; i-- {
		out[i] = t.heap[0]
		last := len(t.heap) - 1
		t.heap[0] = t.heap[last]
		t.heap = t.heap[:last]
		if last > 0 {
			t.down(0)
		}
	}
	return out
}

func (t *TopL[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(t.heap[parent], t.heap[i]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopL[T]) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.less(t.heap[largest], t.heap[l]) {
			largest = l
		}
		if r < n && t.less(t.heap[largest], t.heap[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
