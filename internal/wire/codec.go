package wire

import (
	"fmt"

	"distknn/internal/points"
)

// A PointCodec translates one point type to and from its tagged wire
// encoding. The serving stack is generic over this type: the client side
// (RemoteCluster) uses Tag and Encode to build queries, the node side uses
// Decode to recover the typed point before running an epoch, and the
// frontend matches Tag without ever understanding the bytes. Codecs for the
// two served encodings are ScalarCodec and VectorCodec; adding a point type
// to the wire means adding a tag constant and a codec, nothing else in the
// transport changes.
type PointCodec[P any] struct {
	// Tag is the wire tag (PointScalar, PointVector, …) this codec speaks.
	Tag uint8
	// Encode serializes one point into a Query point payload.
	Encode func(p P) []byte
	// Decode parses a point payload. It must reject trailing garbage so a
	// corrupt frame cannot silently truncate into a valid point.
	Decode func(b []byte) (P, error)
}

// ScalarCodec is the PointScalar codec: one U64 value.
var ScalarCodec = PointCodec[points.Scalar]{
	Tag:    PointScalar,
	Encode: func(p points.Scalar) []byte { return EncodeScalarPoint(uint64(p)) },
	Decode: func(b []byte) (points.Scalar, error) {
		v, err := DecodeScalarPoint(b)
		return points.Scalar(v), err
	},
}

// VectorCodec is the PointVector codec: Varint dimension, then dim × F64.
var VectorCodec = PointCodec[points.Vector]{
	Tag:    PointVector,
	Encode: EncodeVectorPoint,
	Decode: DecodeVectorPoint,
}

// BitVectorCodec is the PointBitVector codec: Varint word count, then that
// many U64 words.
var BitVectorCodec = PointCodec[points.BitVector]{
	Tag:    PointBitVector,
	Encode: EncodeBitVectorPoint,
	Decode: DecodeBitVectorPoint,
}

// EncodeScalarPoint encodes a scalar query point for a Query's point payload.
func EncodeScalarPoint(v uint64) []byte {
	var w Writer
	w.U64(v)
	return w.Bytes()
}

// DecodeScalarPoint decodes a PointScalar payload.
func DecodeScalarPoint(p []byte) (uint64, error) {
	r := NewReader(p)
	v := r.U64()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if r.Remaining() != 0 {
		return 0, fmt.Errorf("wire: scalar point has %d trailing bytes", r.Remaining())
	}
	return v, nil
}

// EncodeVectorPoint encodes a d-dimensional query point for a Query's point
// payload: Varint dim, then dim × F64 coordinates.
func EncodeVectorPoint(v points.Vector) []byte {
	var w Writer
	w.Varint(uint64(len(v)))
	for _, x := range v {
		w.F64(x)
	}
	return w.Bytes()
}

// DecodeVectorPoint decodes a PointVector payload.
func DecodeVectorPoint(p []byte) (points.Vector, error) {
	r := NewReader(p)
	dim := r.Varint()
	if r.Err() == nil && dim > uint64(r.Remaining()/8) {
		return nil, fmt.Errorf("wire: vector dimension %d exceeds payload", dim)
	}
	v := make(points.Vector, dim)
	for i := range v {
		v[i] = r.F64()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: vector point has %d trailing bytes", r.Remaining())
	}
	return v, nil
}

// EncodeBitVectorPoint encodes a bit-packed Hamming point for a Query's
// point payload: Varint word count, then that many U64 words.
func EncodeBitVectorPoint(v points.BitVector) []byte {
	var w Writer
	w.Varint(uint64(len(v)))
	for _, x := range v {
		w.U64(x)
	}
	return w.Bytes()
}

// DecodeBitVectorPoint decodes a PointBitVector payload.
func DecodeBitVectorPoint(p []byte) (points.BitVector, error) {
	r := NewReader(p)
	words := r.Varint()
	if r.Err() == nil && words > uint64(r.Remaining()/8) {
		return nil, fmt.Errorf("wire: bit vector of %d words exceeds payload", words)
	}
	v := make(points.BitVector, words)
	for i := range v {
		v[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: bit vector point has %d trailing bytes", r.Remaining())
	}
	return v, nil
}
