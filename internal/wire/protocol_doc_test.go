package wire

import (
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"
	"testing"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// docExamples are the frames whose bytes docs/PROTOCOL.md quotes. Both the
// pinning test and any tooling that regenerates the spec derive the hex
// from here, so the document can never drift from the codec.
func docExamples() []struct {
	Name  string
	Bytes []byte
} {
	var reg Writer
	reg.Kind(KindRegister)
	reg.String("127.0.0.1:9000")

	var asg Writer
	asg.Kind(KindAssign)
	asg.U8(ModeServe)
	asg.Varint(1)
	asg.Varint(2)
	asg.U64(7)
	asg.String("127.0.0.1:9000")
	asg.String("127.0.0.1:9001")

	var hello Writer
	hello.Varint(1)

	var mesh Writer
	mesh.U8(0)
	mesh.Varint(1)
	mesh.Varint(2)
	mesh.Varint(2)
	mesh.Varint(2)
	mesh.Raw([]byte("hi"))
	mesh.Varint(0)

	// Single-query (batch of one) scalar KNN, and its epoch-1 dispatch.
	q := Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: [][]byte{EncodeScalarPoint(12345)}}

	// A batch of two 2-dimensional vector queries.
	vq := Query{Op: OpKNN, L: 10, Tag: PointVector, Points: [][]byte{
		EncodeVectorPoint(points.Vector{0.5, 1.5}),
		EncodeVectorPoint(points.Vector{2, -1}),
	}}

	var rdy Writer
	rdy.Kind(KindReady)
	rdy.Varint(1)
	rdy.Varint(0)
	rdy.Varint(5000)
	rdy.U8(PointScalar)

	return []struct {
		Name  string
		Bytes []byte
	}{
		{"stream framing", []byte{3, 0, 0, 0, 'a', 'b', 'c'}},
		{"register", reg.Bytes()},
		{"assign", asg.Bytes()},
		{"mesh hello", hello.Bytes()},
		{"mesh round frame", mesh.Bytes()},
		{"vector point", EncodeVectorPoint(points.Vector{0.5, 1.5})},
		{"bit vector point", EncodeBitVectorPoint(points.BitVector{5, 1})},
		{"query", EncodeQuery(q)},
		{"vector batch query", EncodeQuery(vq)},
		{"tagged query", EncodeQueryTagged(300, q)},
		{"dispatch", EncodeDispatch(1, q)},
		{"ready", rdy.Bytes()},
		{"summary", EncodeShardSummary(ShardSummary{Node: 1, Has: true, Radius: 0.25, Center: EncodeScalarPoint(12345)})},
		{"empty summary", EncodeShardSummary(ShardSummary{Node: 2})},
		{"dispatch direct", EncodeDispatchDirect(1, q)},
		{"dispatch direct sub", EncodeDispatchDirectSub(1, []int{0, 2}, Query{
			Op: OpKNN, L: 10, Tag: PointScalar,
			Points: [][]byte{EncodeScalarPoint(12345), EncodeScalarPoint(5)},
		})},
		{"result", EncodeNodeResult(NodeResult{
			Epoch: 1, Node: 0, Rounds: 26, Messages: 44, Bytes: 745,
			IsLeader: true,
			Queries: []NodeQueryResult{{
				Winners: []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
				QueryOutcome: QueryOutcome{
					Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20,
					Iterations: 4, Value: 2,
				},
			}},
		})},
		{"node error", EncodeNodeError(NodeError{Epoch: 1, Origin: true, LostPeer: -1, Msg: "boom"})},
		{"fatal node error", EncodeNodeError(NodeError{Epoch: 7, Fatal: true, LostPeer: 2, Msg: "lost peer 2"})},
		{"shutdown", []byte{byte(KindShutdown)}},
		{"rejoin", EncodeRejoin(1, "127.0.0.1:9002")},
		{"rejoin assign", EncodeRejoinAssign(RejoinAssign{
			ID: 1, K: 2, Seed: 7, Leader: 0, Epoch: 42,
			Present: []int{0},
			Addrs:   []string{"127.0.0.1:9000", "127.0.0.1:9002"},
		})},
		{"reply", EncodeReply(Reply{
			Rounds: 26, Messages: 44, Bytes: 745, Leader: 0,
			Results: []QueryReply{{
				QueryOutcome: QueryOutcome{
					Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20, Iterations: 4,
				},
				Items: []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
			}},
		})},
		{"error reply", EncodeReply(Reply{Err: "l=0 out of range [1, 10000]"})},
		{"degraded reply", EncodeReply(Reply{Err: "cluster degraded (1 of 2 nodes): waiting for node(s) [1]", Degraded: true})},
		{"tagged reply", EncodeReplyTagged(300, Reply{
			Rounds: 26, Messages: 44, Bytes: 745, Leader: 0,
			Results: []QueryReply{{
				QueryOutcome: QueryOutcome{
					Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20, Iterations: 4,
				},
				Items: []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
			}},
		})},
		{"tagged degraded reply", EncodeReplyTagged(301, Reply{Err: "cluster degraded (1 of 2 nodes): waiting for node(s) [1]", Degraded: true})},
	}
}

// TestProtocolDocExamples pins docs/PROTOCOL.md to the shipped codec: every
// example frame is re-encoded and its hex must appear verbatim in the
// document (ignoring line breaks). Changing an encoding without updating
// the spec — or vice versa — fails this test. Run with -v to print the
// expected hex of a failing example.
func TestProtocolDocExamples(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("protocol spec missing: %v", err)
	}
	// Normalize all whitespace so examples may wrap in the document.
	doc := regexp.MustCompile(`\s+`).ReplaceAllString(string(raw), " ")

	for _, ex := range docExamples() {
		if !strings.Contains(doc, hexBytes(ex.Bytes)) {
			t.Errorf("PROTOCOL.md is missing the current bytes of the %s example:\n%s", ex.Name, hexBytes(ex.Bytes))
		}
	}
}

func hexBytes(b []byte) string {
	parts := make([]string, len(b))
	for i, c := range b {
		parts[i] = fmt.Sprintf("%02x", c)
	}
	return strings.Join(parts, " ")
}

// TestFrameRoundTrips checks that every composite frame decodes back to
// what was encoded.
func TestFrameRoundTrips(t *testing.T) {
	q := Query{Op: OpClassify, L: 42, Tag: PointScalar, Points: [][]byte{
		EncodeScalarPoint(987654321),
		EncodeScalarPoint(5),
	}}
	{
		r := NewReader(EncodeQuery(q))
		if kind := r.Kind(); kind != KindQuery {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != q.Op || got.L != q.L || got.Tag != q.Tag || len(got.Points) != 2 {
			t.Fatalf("query round trip: %+v", got)
		}
		v, err := DecodeScalarPoint(got.Points[0])
		if err != nil || v != 987654321 {
			t.Fatalf("point round trip: %d %v", v, err)
		}
		if v, err := DecodeScalarPoint(got.Points[1]); err != nil || v != 5 {
			t.Fatalf("point round trip: %d %v", v, err)
		}
	}
	{
		vq := Query{Op: OpKNN, L: 3, Tag: PointVector, Points: [][]byte{
			EncodeVectorPoint(points.Vector{1.5, -2.25, 0}),
		}}
		r := NewReader(EncodeQuery(vq))
		r.U8()
		got, err := DecodeQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := DecodeVectorPoint(got.Points[0])
		if err != nil || len(vec) != 3 || vec[0] != 1.5 || vec[1] != -2.25 || vec[2] != 0 {
			t.Fatalf("vector round trip: %v %v", vec, err)
		}
	}
	{
		r := NewReader(EncodeDispatch(9, q))
		if kind := r.Kind(); kind != KindDispatch {
			t.Fatalf("kind %d", kind)
		}
		if epoch := r.Varint(); epoch != 9 {
			t.Fatalf("epoch %d", epoch)
		}
		if _, err := DecodeQuery(r); err != nil {
			t.Fatal(err)
		}
	}
	{
		nr := NodeResult{
			Epoch: 3, Node: 2, Rounds: 7, Messages: 11, Bytes: 400,
			IsLeader: true,
			Queries: []NodeQueryResult{
				{
					Winners: []points.Item{{Key: keys.Key{Dist: 9, ID: 4}, Label: 1.5}},
					QueryOutcome: QueryOutcome{
						Boundary: keys.Key{Dist: 10, ID: 6}, Survivors: 33,
						FellBack: true, Iterations: 5, Value: -2.5,
					},
				},
				{
					Winners: nil,
					QueryOutcome: QueryOutcome{
						Boundary: keys.Key{Dist: 11, ID: 7}, Survivors: 1,
						Iterations: 2, Value: 4,
					},
				},
			},
		}
		r := NewReader(EncodeNodeResult(nr))
		if kind := r.Kind(); kind != KindResult {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeNodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != nr.Epoch || got.Node != nr.Node || got.Rounds != nr.Rounds ||
			got.Messages != nr.Messages || got.Bytes != nr.Bytes || !got.IsLeader ||
			len(got.Queries) != 2 {
			t.Fatalf("node result round trip: %+v", got)
		}
		if len(got.Queries[0].Winners) != 1 || got.Queries[0].Winners[0] != nr.Queries[0].Winners[0] ||
			got.Queries[0].QueryOutcome != nr.Queries[0].QueryOutcome {
			t.Fatalf("node result query 0: %+v", got.Queries[0])
		}
		if len(got.Queries[1].Winners) != 0 || got.Queries[1].QueryOutcome != nr.Queries[1].QueryOutcome {
			t.Fatalf("node result query 1: %+v", got.Queries[1])
		}
	}
	{
		// A follower (non-leader) result omits the per-query leader fields.
		nr := NodeResult{
			Epoch: 4, Node: 1, Rounds: 3, Messages: 6, Bytes: 128,
			Queries: []NodeQueryResult{
				{Winners: []points.Item{{Key: keys.Key{Dist: 2, ID: 9}, Label: 1}}},
				{},
			},
		}
		r := NewReader(EncodeNodeResult(nr))
		r.U8()
		got, err := DecodeNodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.IsLeader || len(got.Queries) != 2 || len(got.Queries[0].Winners) != 1 ||
			got.Queries[0].Winners[0] != nr.Queries[0].Winners[0] {
			t.Fatalf("follower result round trip: %+v", got)
		}
	}
	{
		rep := Reply{
			Rounds: 6, Messages: 13, Bytes: 512, Leader: 1,
			Results: []QueryReply{
				{
					QueryOutcome: QueryOutcome{
						Boundary: keys.Key{Dist: 77, ID: 8}, Survivors: 40, FellBack: true,
						Iterations: 2, Value: 3.25,
					},
					Items: []points.Item{{Key: keys.Key{Dist: 1, ID: 2}, Label: 0}},
				},
				{
					QueryOutcome: QueryOutcome{Boundary: keys.Key{Dist: 80, ID: 9}, Iterations: 1},
				},
			},
		}
		r := NewReader(EncodeReply(rep))
		if kind := r.Kind(); kind != KindReply {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeReply(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != rep.Rounds || got.Leader != rep.Leader || len(got.Results) != 2 {
			t.Fatalf("reply round trip: %+v", got)
		}
		if got.Results[0].QueryOutcome != rep.Results[0].QueryOutcome ||
			len(got.Results[0].Items) != 1 || got.Results[0].Items[0] != rep.Results[0].Items[0] {
			t.Fatalf("reply query 0: %+v", got.Results[0])
		}
		if got.Results[1].QueryOutcome != rep.Results[1].QueryOutcome || len(got.Results[1].Items) != 0 {
			t.Fatalf("reply query 1: %+v", got.Results[1])
		}
	}
	{
		r := NewReader(EncodeReply(Reply{Err: "nope"}))
		r.U8()
		got, err := DecodeReply(r)
		if err != nil || got.Err != "nope" {
			t.Fatalf("error reply round trip: %+v %v", got, err)
		}
	}
}

// TestTaggedFrameRoundTrips checks the multiplexed query/reply pair: the
// tag survives the trip and the body decodes with the untagged decoders.
func TestTaggedFrameRoundTrips(t *testing.T) {
	q := Query{Op: OpKNN, L: 7, Tag: PointScalar, Points: [][]byte{EncodeScalarPoint(42)}}
	for _, tag := range []uint64{0, 1, 300, math.MaxUint64} {
		r := NewReader(EncodeQueryTagged(tag, q))
		if kind := r.Kind(); kind != KindQueryTagged {
			t.Fatalf("kind %d", kind)
		}
		if got := r.Varint(); got != tag {
			t.Fatalf("tag %d, want %d", got, tag)
		}
		got, err := DecodeQuery(r)
		if err != nil || got.Op != q.Op || got.L != q.L || len(got.Points) != 1 {
			t.Fatalf("tagged query round trip: %+v %v", got, err)
		}
	}
	rep := Reply{
		Rounds: 3, Messages: 5, Bytes: 99, Leader: 1,
		Results: []QueryReply{{
			QueryOutcome: QueryOutcome{Boundary: keys.Key{Dist: 8, ID: 3}, Survivors: 12, Iterations: 2},
			Items:        []points.Item{{Key: keys.Key{Dist: 4, ID: 9}, Label: 1}},
		}},
	}
	r := NewReader(EncodeReplyTagged(77, rep))
	if kind := r.Kind(); kind != KindReplyTagged {
		t.Fatalf("kind %d", kind)
	}
	if got := r.Varint(); got != 77 {
		t.Fatalf("tag %d", got)
	}
	got, err := DecodeReply(r)
	if err != nil || got.Rounds != rep.Rounds || len(got.Results) != 1 ||
		got.Results[0].QueryOutcome != rep.Results[0].QueryOutcome ||
		got.Results[0].Items[0] != rep.Results[0].Items[0] {
		t.Fatalf("tagged reply round trip: %+v %v", got, err)
	}
	// Degraded errors survive tagging too.
	r = NewReader(EncodeReplyTagged(5, Reply{Err: "degraded", Degraded: true}))
	r.U8()
	r.Varint()
	if got, err := DecodeReply(r); err != nil || !got.Degraded || got.Err != "degraded" {
		t.Fatalf("tagged degraded reply: %+v %v", got, err)
	}
	// The tagged and untagged encoders share one body encoding: stripping
	// kind+tag from a tagged frame yields exactly the untagged body.
	tagged := EncodeQueryTagged(1, q)
	if !strings.HasSuffix(hexBytes(tagged), hexBytes(EncodeQuery(q)[1:])) {
		t.Fatalf("tagged body drifted from untagged body")
	}
}

// TestDecodeQueryLimits rejects oversized batch declarations outright
// instead of attempting a huge allocation.
func TestDecodeQueryLimits(t *testing.T) {
	var w Writer
	w.U8(OpKNN)
	w.Varint(1)
	w.U8(PointScalar)
	w.Varint(MaxBatch + 1)
	if _, err := DecodeQuery(NewReader(w.Bytes())); err == nil {
		t.Fatal("batch beyond MaxBatch must be rejected")
	}
}
