package wire

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// TestProtocolDocExamples pins docs/PROTOCOL.md to the shipped codec: every
// example frame below is re-encoded and its hex must appear verbatim in the
// document (ignoring line breaks). Changing an encoding without updating
// the spec — or vice versa — fails this test.
func TestProtocolDocExamples(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("protocol spec missing: %v", err)
	}
	// Normalize all whitespace so examples may wrap in the document.
	doc := regexp.MustCompile(`\s+`).ReplaceAllString(string(raw), " ")

	hex := func(b []byte) string {
		parts := make([]string, len(b))
		for i, c := range b {
			parts[i] = fmt.Sprintf("%02x", c)
		}
		return strings.Join(parts, " ")
	}
	check := func(name string, frame []byte) {
		t.Helper()
		if !strings.Contains(doc, hex(frame)) {
			t.Errorf("PROTOCOL.md is missing the current bytes of the %s example:\n%s", name, hex(frame))
		}
	}

	// Stream framing: payload "abc" with its U32 length prefix.
	check("stream framing", []byte{3, 0, 0, 0, 'a', 'b', 'c'})

	// Register: mesh address 127.0.0.1:9000.
	var reg Writer
	reg.U8(KindRegister)
	reg.String("127.0.0.1:9000")
	check("register", reg.Bytes())

	// Assign: serve mode, id=1, k=2, seed=7, two-entry address book.
	var asg Writer
	asg.U8(KindAssign)
	asg.U8(ModeServe)
	asg.Varint(1)
	asg.Varint(2)
	asg.U64(7)
	asg.String("127.0.0.1:9000")
	asg.String("127.0.0.1:9001")
	check("assign", asg.Bytes())

	// Mesh hello from node 1.
	var hello Writer
	hello.Varint(1)
	check("mesh hello", hello.Bytes())

	// Mesh round frame: flag=data, epoch=1, round=2, messages ["hi", ""].
	var mesh Writer
	mesh.U8(0)
	mesh.Varint(1)
	mesh.Varint(2)
	mesh.Varint(2)
	mesh.Varint(2)
	mesh.Raw([]byte("hi"))
	mesh.Varint(0)
	check("mesh round frame", mesh.Bytes())

	// Query: KNN, l=10, scalar point 12345 — and its epoch-1 dispatch.
	q := Query{Op: OpKNN, L: 10, Tag: PointScalar, Point: EncodeScalarPoint(12345)}
	check("query", EncodeQuery(q))
	check("dispatch", EncodeDispatch(1, q))

	// Ready: node 1, leader 0, 5000-point scalar shard.
	var rdy Writer
	rdy.U8(KindReady)
	rdy.Varint(1)
	rdy.Varint(0)
	rdy.Varint(5000)
	rdy.U8(PointScalar)
	check("ready", rdy.Bytes())

	// Result: leader node 0's report for epoch 1.
	check("result", EncodeNodeResult(NodeResult{
		Epoch: 1, Node: 0, Rounds: 26, Messages: 44, Bytes: 745,
		Winners:  []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
		IsLeader: true, Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20,
		Iterations: 4, Value: 2,
	}))

	// Error: epoch 1, originated locally, message "boom".
	var ne Writer
	ne.U8(KindError)
	ne.Varint(1)
	ne.U8(1)
	ne.String("boom")
	check("node error", ne.Bytes())

	// Shutdown: kind byte only.
	check("shutdown", []byte{KindShutdown})

	// Reply, success: the merged epoch-1 answer.
	check("reply", EncodeReply(Reply{
		Rounds: 26, Messages: 44, Bytes: 745, Leader: 0,
		Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20, Iterations: 4,
		Items: []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
	}))

	// Reply, error.
	check("error reply", EncodeReply(Reply{Err: "l=0 out of range [1, 10000]"}))
}

// TestFrameRoundTrips checks that every composite frame decodes back to
// what was encoded.
func TestFrameRoundTrips(t *testing.T) {
	q := Query{Op: OpClassify, L: 42, Tag: PointScalar, Point: EncodeScalarPoint(987654321)}
	{
		r := NewReader(EncodeQuery(q))
		if kind := r.U8(); kind != KindQuery {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != q.Op || got.L != q.L || got.Tag != q.Tag {
			t.Fatalf("query round trip: %+v", got)
		}
		v, err := DecodeScalarPoint(got.Point)
		if err != nil || v != 987654321 {
			t.Fatalf("point round trip: %d %v", v, err)
		}
	}
	{
		r := NewReader(EncodeDispatch(9, q))
		if kind := r.U8(); kind != KindDispatch {
			t.Fatalf("kind %d", kind)
		}
		if epoch := r.Varint(); epoch != 9 {
			t.Fatalf("epoch %d", epoch)
		}
		if _, err := DecodeQuery(r); err != nil {
			t.Fatal(err)
		}
	}
	{
		nr := NodeResult{
			Epoch: 3, Node: 2, Rounds: 7, Messages: 11, Bytes: 400,
			Winners:  []points.Item{{Key: keys.Key{Dist: 9, ID: 4}, Label: 1.5}},
			IsLeader: true, Boundary: keys.Key{Dist: 10, ID: 6}, Survivors: 33,
			FellBack: true, Iterations: 5, Value: -2.5,
		}
		r := NewReader(EncodeNodeResult(nr))
		if kind := r.U8(); kind != KindResult {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeNodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epoch != nr.Epoch || got.Node != nr.Node || got.Rounds != nr.Rounds ||
			got.Messages != nr.Messages || got.Bytes != nr.Bytes ||
			len(got.Winners) != 1 || got.Winners[0] != nr.Winners[0] ||
			!got.IsLeader || got.Boundary != nr.Boundary || got.Survivors != nr.Survivors ||
			!got.FellBack || got.Iterations != nr.Iterations || got.Value != nr.Value {
			t.Fatalf("node result round trip: %+v", got)
		}
	}
	{
		rep := Reply{
			Rounds: 6, Messages: 13, Bytes: 512, Leader: 1,
			Boundary: keys.Key{Dist: 77, ID: 8}, Survivors: 40, FellBack: true,
			Iterations: 2, Value: 3.25,
			Items:      []points.Item{{Key: keys.Key{Dist: 1, ID: 2}, Label: 0}},
		}
		r := NewReader(EncodeReply(rep))
		if kind := r.U8(); kind != KindReply {
			t.Fatalf("kind %d", kind)
		}
		got, err := DecodeReply(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != rep.Rounds || got.Leader != rep.Leader || got.Boundary != rep.Boundary ||
			!got.FellBack || got.Value != rep.Value || len(got.Items) != 1 || got.Items[0] != rep.Items[0] {
			t.Fatalf("reply round trip: %+v", got)
		}
	}
	{
		r := NewReader(EncodeReply(Reply{Err: "nope"}))
		r.U8()
		got, err := DecodeReply(r)
		if err != nil || got.Err != "nope" {
			t.Fatalf("error reply round trip: %+v %v", got, err)
		}
	}
}
