package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"distknn/internal/keys"
	"distknn/internal/points"
)

func TestRoundTripScalars(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U64(math.MaxUint64)
	w.Varint(300)
	w.F64(3.14)
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.Varint(); got != 300 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.F64(); got != 3.14 {
		t.Errorf("F64 = %g", got)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestRoundTripKeyAndItem(t *testing.T) {
	k := keys.Key{Dist: 123, ID: 456}
	it := points.Item{Key: k, Label: -2.5}
	var w Writer
	w.Key(k)
	w.Item(it)
	r := NewReader(w.Bytes())
	if got := r.Key(); got != k {
		t.Errorf("Key = %v", got)
	}
	if got := r.Item(); got != it {
		t.Errorf("Item = %+v", got)
	}
}

func TestRoundTripSlices(t *testing.T) {
	ks := []keys.Key{{Dist: 1, ID: 2}, {Dist: 3, ID: 4}}
	its := []points.Item{{Key: keys.Key{Dist: 5, ID: 6}, Label: 1}}
	var w Writer
	w.Keys(ks)
	w.Items(its)
	w.Keys(nil)
	r := NewReader(w.Bytes())
	gotK := r.Keys()
	gotI := r.Items()
	gotEmpty := r.Keys()
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if len(gotK) != 2 || gotK[0] != ks[0] || gotK[1] != ks[1] {
		t.Errorf("Keys = %v", gotK)
	}
	if len(gotI) != 1 || gotI[0] != its[0] {
		t.Errorf("Items = %v", gotI)
	}
	if len(gotEmpty) != 0 {
		t.Errorf("empty Keys = %v", gotEmpty)
	}
}

func TestTruncatedReads(t *testing.T) {
	var w Writer
	w.U64(42)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected truncation error", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads return zero values and keep the first error.
	if got := r.U8(); got != 0 {
		t.Errorf("read after error returned %d", got)
	}
	if r.Err() != first {
		t.Errorf("error not sticky")
	}
}

func TestMaliciousLengthPrefixRejected(t *testing.T) {
	var w Writer
	w.Varint(1 << 40) // claims 2^40 keys in an empty payload
	r := NewReader(w.Bytes())
	if got := r.Keys(); got != nil || r.Err() == nil {
		t.Errorf("oversized length prefix must be rejected, got %v err %v", got, r.Err())
	}
	var w2 Writer
	w2.Varint(1 << 40)
	r2 := NewReader(w2.Bytes())
	if got := r2.Items(); got != nil || r2.Err() == nil {
		t.Errorf("oversized item prefix must be rejected")
	}
}

// Property: arbitrary key/item sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(dists, ids []uint64, labels []float64) bool {
		n := len(dists)
		if len(ids) < n {
			n = len(ids)
		}
		if len(labels) < n {
			n = len(labels)
		}
		items := make([]points.Item, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(labels[i]) {
				labels[i] = 0
			}
			items[i] = points.Item{Key: keys.Key{Dist: dists[i], ID: ids[i]}, Label: labels[i]}
		}
		var w Writer
		w.Items(items)
		r := NewReader(w.Bytes())
		got := r.Items()
		if r.Err() != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("round-trip property failed: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Errorf("oversized outgoing frame must fail")
	}
	// Forge a header claiming a huge frame.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Errorf("oversized incoming frame must fail")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Errorf("truncated payload must fail")
	}
}

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	for _, p := range [][]byte{bytes.Repeat([]byte{7}, 64), {1, 2}, {}, bytes.Repeat([]byte{9}, 128)} {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	scratch, err := ReadFrameInto(&buf, nil)
	if err != nil || len(scratch) != 64 {
		t.Fatalf("first frame: %d bytes, %v", len(scratch), err)
	}
	first := &scratch[0]
	// The 2-byte and empty frames must reuse the 64-byte buffer in place.
	scratch2, err := ReadFrameInto(&buf, scratch)
	if err != nil || len(scratch2) != 2 {
		t.Fatalf("second frame: %d bytes, %v", len(scratch2), err)
	}
	if &scratch2[0] != first {
		t.Errorf("small frame did not reuse the buffer")
	}
	empty, err := ReadFrameInto(&buf, scratch2)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty frame: %d bytes, %v", len(empty), err)
	}
	// A larger frame grows the buffer.
	big, err := ReadFrameInto(&buf, empty)
	if err != nil || len(big) != 128 || big[0] != 9 {
		t.Fatalf("grown frame: %d bytes, %v", len(big), err)
	}
}

func TestWriterFrameBuild(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.BeginFrame()
	w.U8(42)
	w.String("hello")
	var buf bytes.Buffer
	if err := w.EndFrame(&buf); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(payload)
	if got := r.U8(); got != 42 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
	// An empty payload is a legal frame.
	w.Reset()
	w.BeginFrame()
	buf.Reset()
	if err := w.EndFrame(&buf); err != nil {
		t.Fatal(err)
	}
	if p, err := ReadFrame(&buf); err != nil || len(p) != 0 {
		t.Errorf("empty frame: %d bytes, %v", len(p), err)
	}
	// EndFrame without BeginFrame is an error, not a corrupt header.
	w.Reset()
	if err := w.EndFrame(&buf); err == nil {
		t.Errorf("EndFrame without BeginFrame must fail")
	}
}

func TestFrameBufPool(t *testing.T) {
	buf := GetFrameBuf()
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrameInto(&stream, buf)
	if err != nil || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("payload %v, %v", payload, err)
	}
	PutFrameBuf(payload)
	// Oversized buffers are dropped rather than pinned in the pool.
	PutFrameBuf(make([]byte, 2<<20))
}

func TestWriterGrowAndReset(t *testing.T) {
	var w Writer
	w.Grow(100)
	if cap(w.Bytes()) < 100 {
		t.Errorf("Grow(100) left cap %d", cap(w.Bytes()))
	}
	w.U64(7)
	w.Grow(8) // already fits: must not move the buffer
	w.U64(9)
	r := NewReader(w.Bytes())
	if r.U64() != 7 || r.U64() != 9 {
		t.Errorf("Grow corrupted contents")
	}
	w.Reset()
	if w.Len() != 0 || cap(w.Bytes()) < 100 {
		t.Errorf("Reset lost capacity: len %d cap %d", w.Len(), cap(w.Bytes()))
	}
}
