package wire

import (
	"bytes"
	"io"
	"testing"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// The benchmarks below pin the zero-allocation claims of the frame path:
// pooled writers + EndFrame on the way out, ReadFrameInto on the way in.
// Run with -benchmem; the steady-state allocs/op of the framed paths must
// stay at (or within rounding of) zero.

func benchReply() Reply {
	items := make([]points.Item, 10)
	for i := range items {
		items[i] = points.Item{Key: keys.Key{Dist: uint64(i), ID: uint64(i)}, Label: 1}
	}
	return Reply{
		Rounds: 26, Messages: 44, Bytes: 745, Leader: 0,
		Results: []QueryReply{{
			QueryOutcome: QueryOutcome{Boundary: items[9].Key, Survivors: 20, Iterations: 4},
			Items:        items,
		}},
	}
}

func BenchmarkWriteFrame(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 256)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload) + 4))
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrameInto(b *testing.B) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, bytes.Repeat([]byte{0xab}, 256)); err != nil {
		b.Fatal(err)
	}
	frame := stream.Bytes()
	rd := bytes.NewReader(frame)
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		payload, err := ReadFrameInto(rd, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = payload
	}
}

// BenchmarkQueryFramePath is the client's steady-state hot path: encode a
// tagged query into a pooled writer, frame it, read the frame back into a
// reused buffer and decode it. One query, zero garbage.
func BenchmarkQueryFramePath(b *testing.B) {
	q := Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: [][]byte{EncodeScalarPoint(12345)}}
	var readBuf []byte
	var decoded Query
	var stream bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := GetWriter()
		w.BeginFrame()
		AppendQueryTagged(w, uint64(i), q)
		if err := w.EndFrame(&stream); err != nil {
			b.Fatal(err)
		}
		PutWriter(w)

		payload, err := ReadFrameInto(&stream, readBuf)
		if err != nil {
			b.Fatal(err)
		}
		readBuf = payload
		r := NewReader(payload)
		if kind := r.Kind(); kind != KindQueryTagged {
			b.Fatalf("kind %d", kind)
		}
		if tag := r.Varint(); tag != uint64(i) {
			b.Fatalf("tag %d", tag)
		}
		if err := DecodeQueryInto(r, &decoded); err != nil {
			b.Fatal(err)
		}
		stream.Reset()
	}
}

// BenchmarkReplyFramePath is the frontend's side of the same loop: a
// pooled writer frames a tagged reply. (Decoding a Reply copies its item
// slices out by design — those allocations belong to the answer the
// caller keeps, not to the frame path — so this benchmark pins only the
// encode+frame side at zero.)
func BenchmarkReplyFramePath(b *testing.B) {
	rep := benchReply()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := GetWriter()
		w.BeginFrame()
		AppendReplyTagged(w, uint64(i), rep)
		if err := w.EndFrame(io.Discard); err != nil {
			b.Fatal(err)
		}
		PutWriter(w)
	}
}

// BenchmarkDirectDispatchFramePath is the pruned dispatch's wave encoding:
// a pooled writer frames one KindDispatchDirect fan-out frame plus one
// KindDispatchDirectSub sub-batch frame per iteration, the way a two-wave
// pruned batch builds them. The encode+frame side must stay at zero
// steady-state allocs/op, like the scatter path it reuses.
func BenchmarkDirectDispatchFramePath(b *testing.B) {
	pts := make([][]byte, 16)
	for i := range pts {
		pts[i] = EncodeScalarPoint(uint64(1000 * i))
	}
	q := Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: pts}
	sub := []int{1, 3, 4, 7, 11}
	subQ := Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: pts[:len(sub)]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := GetWriter()
		w.BeginFrame()
		AppendDispatchDirect(w, uint64(i), q)
		if _, err := w.FinishFrame(); err != nil {
			b.Fatal(err)
		}
		PutWriter(w)

		w = GetWriter()
		w.BeginFrame()
		AppendDispatchDirectSub(w, uint64(i), sub, subQ)
		if err := w.EndFrame(io.Discard); err != nil {
			b.Fatal(err)
		}
		PutWriter(w)
	}
}

// BenchmarkEncodeReplyLegacy is the pre-pooling baseline for comparison:
// a fresh encode + copying WriteFrame per reply.
func BenchmarkEncodeReplyLegacy(b *testing.B) {
	rep := benchReply()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := EncodeReply(rep)
		buf := make([]byte, 4+len(payload))
		copy(buf[4:], payload)
		if _, err := io.Discard.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}
