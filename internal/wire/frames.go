package wire

import (
	"fmt"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// Control-plane frame kinds. Every frame crossing a rendezvous, serving or
// client connection starts with one of these bytes; the mesh (node↔node)
// frames are the only ones that do not, since the mesh carries exactly one
// frame shape. The full layouts are specified in docs/PROTOCOL.md and
// pinned by golden-byte tests in this package.

// Kind identifies a control-plane frame type. It is a named type (rather
// than a bare byte) so every dispatch site switches on a wire.Kind value,
// which lets the knnlint kindswitch analyzer prove each switch either
// handles all declared kinds or carries an explicit default.
type Kind uint8

const (
	// KindRegister: node → coordinator. Body: String mesh-listen address.
	KindRegister Kind = 1
	// KindAssign: coordinator → node. Body: U8 mode, Varint id, Varint k,
	// U64 seed, then k × String mesh addresses (the address book).
	KindAssign Kind = 2
	// KindReady: node → frontend, once the setup epoch (leader election)
	// has completed. Body: Varint id, Varint leader, Varint shard size,
	// U8 point tag.
	KindReady Kind = 3
	// KindDispatch: frontend → node, one query epoch answering a whole
	// batch. Body: Varint epoch, then a Query body.
	KindDispatch Kind = 4
	// KindResult: node → frontend, one epoch's outcome. Body: NodeResult.
	KindResult Kind = 5
	// KindError: node → frontend, the epoch failed. Body: NodeError —
	// Varint epoch, U8 origin (1 if the failure originated in this node's
	// program), U8 fatal (1 if the node's mesh broke, as opposed to a
	// recoverable program failure), Varint lostPeer+1 (0 when no specific
	// peer was implicated), String message.
	KindError Kind = 6
	// KindShutdown: frontend → node, clean stop. Empty body.
	KindShutdown Kind = 7
	// KindQuery: client → frontend. Body: Query.
	KindQuery Kind = 8
	// KindReply: frontend → client. Body: Reply.
	KindReply Kind = 9
	// KindRejoin: node → frontend, re-register into a running serving
	// session. Body: Varint id+1 (0 asks the frontend to pick any absent
	// slot), String mesh address. The frontend answers with KindRejoinAssign
	// on success or KindError (epoch 0) on rejection.
	KindRejoin Kind = 10
	// KindRejoinAssign: frontend → node, the rejoin grant. Body:
	// RejoinAssign — Varint id, Varint k, U64 seed, Varint leader,
	// Varint epoch (the session's current epoch ordinal), Varint
	// presentCount, presentCount × Varint id (the peers currently serving,
	// which the rejoining node must dial), then k × String mesh addresses.
	KindRejoinAssign Kind = 11
	// KindQueryTagged: client → frontend, a multiplexed query. Body:
	// Varint tag (client-chosen request id, echoed verbatim in the reply),
	// then a Query body. Tagged queries on one connection may be answered
	// out of order; the untagged KindQuery keeps its strict in-order
	// request/reply contract for legacy clients.
	KindQueryTagged Kind = 12
	// KindReplyTagged: frontend → client, the answer to one tagged query.
	// Body: Varint tag, then a Reply body.
	KindReplyTagged Kind = 13
	// KindSummary: node → frontend, the node's metric-index shard summary,
	// sent immediately after every KindReady (both the setup and the
	// re-join handshake). Body: Varint node id, U8 has; if has is 1:
	// F64 radius, then String centroid point bytes (the shard's anchor in
	// the session's point encoding). has 0 means the shard has no metric
	// summary (the point type is not a metric, or the shard is empty) and
	// disables pruned dispatch for the whole session.
	KindSummary Kind = 14
	// KindDispatchDirect: frontend → node, one pruned (no-mesh) query
	// epoch: the node answers its local top-ℓ for each query point from
	// its own shard without starting a BSP epoch — no election-derived
	// rounds, no mesh traffic — and replies with a winners-only KindResult
	// (IsLeader 0, Rounds/Messages/Bytes 0). Body: Varint epoch, then a
	// Query body (identical layout to KindDispatch).
	KindDispatchDirect Kind = 15
	// KindDispatchDirectSub: frontend → node, one shard's sub-batch of a
	// pruned batch epoch. The frontend's per-point admission test sends each
	// shard only the query points whose ball can intersect it, so different
	// nodes of one wave receive different subsets; the frame carries each
	// point's original batch index to keep the protocol self-describing (the
	// frontend maps replies by position, nodes may ignore the indices). The
	// node answers exactly like KindDispatchDirect: a winners-only KindResult
	// with one entry per sub-batch point, in sub-batch order. Body: Varint
	// epoch, Varint n, n × Varint original batch index, then a Query body
	// whose batch is the n sub-batch points.
	KindDispatchDirectSub Kind = 16
)

// Session modes carried in the KindAssign frame.
const (
	// ModeOneShot tears the mesh down after a single program run.
	ModeOneShot = 0
	// ModeServe keeps the node resident: after the setup epoch it executes
	// one BSP epoch per KindDispatch until shutdown.
	ModeServe = 1
)

// Query operations.
const (
	// OpKNN returns the ℓ nearest neighbors.
	OpKNN = 1
	// OpClassify returns the majority label among the ℓ nearest.
	OpClassify = 2
	// OpRegress returns the mean label of the ℓ nearest.
	OpRegress = 3
)

// Point encodings, selected by the tag byte inside a Query.
const (
	// PointScalar is a one-dimensional integer point: U64 value.
	PointScalar = 1
	// PointVector is a d-dimensional point: Varint dim, then dim × F64.
	PointVector = 2
	// PointBitVector is a bit-packed point compared under Hamming
	// distance: Varint word count, then that many U64 words (64 bits
	// each).
	PointBitVector = 3
)

// MaxBatch bounds the number of points one Query may carry. It keeps a
// malformed (or greedy) client from pinning the whole cluster in one
// arbitrarily long epoch; decoders and the frontend both enforce it.
const MaxBatch = 4096

// Query is one client request: which operation to run, how many neighbors,
// and a batch of one or more query points in their tagged encoding. The
// batch is the wire-native query shape — a single query is a batch of one —
// and the whole batch is answered in a single BSP epoch on the serving
// mesh, the socket analogue of the in-process KNNBatch. It is the body of a
// KindQuery frame and the tail of a KindDispatch frame.
type Query struct {
	Op     uint8
	L      int
	Tag    uint8
	Points [][]byte // tag-specific encodings, each length-prefixed on the wire
}

func (q Query) append(w *Writer) {
	w.U8(q.Op)
	w.Varint(uint64(q.L))
	w.U8(q.Tag)
	w.Varint(uint64(len(q.Points)))
	for _, p := range q.Points {
		w.Varint(uint64(len(p)))
		w.Raw(p)
	}
}

// EncodeQuery builds a KindQuery frame payload.
func EncodeQuery(q Query) []byte {
	var w Writer
	AppendQuery(&w, q)
	return w.Bytes()
}

// AppendQuery appends a KindQuery frame payload to w (for pooled writers).
func AppendQuery(w *Writer, q Query) {
	w.Kind(KindQuery)
	q.append(w)
}

// EncodeQueryTagged builds a KindQueryTagged frame payload.
func EncodeQueryTagged(tag uint64, q Query) []byte {
	var w Writer
	AppendQueryTagged(&w, tag, q)
	return w.Bytes()
}

// AppendQueryTagged appends a KindQueryTagged frame payload to w.
func AppendQueryTagged(w *Writer, tag uint64, q Query) {
	w.Kind(KindQueryTagged)
	w.Varint(tag)
	q.append(w)
}

// EncodeDispatch builds a KindDispatch frame payload for one epoch.
func EncodeDispatch(epoch uint64, q Query) []byte {
	var w Writer
	AppendDispatch(&w, epoch, q)
	return w.Bytes()
}

// AppendDispatch appends a KindDispatch frame payload to w.
func AppendDispatch(w *Writer, epoch uint64, q Query) {
	w.Kind(KindDispatch)
	w.Varint(epoch)
	q.append(w)
}

// EncodeDispatchDirect builds a KindDispatchDirect frame payload for one
// pruned (no-mesh) epoch.
func EncodeDispatchDirect(epoch uint64, q Query) []byte {
	var w Writer
	AppendDispatchDirect(&w, epoch, q)
	return w.Bytes()
}

// AppendDispatchDirect appends a KindDispatchDirect frame payload to w.
func AppendDispatchDirect(w *Writer, epoch uint64, q Query) {
	w.Kind(KindDispatchDirect)
	w.Varint(epoch)
	q.append(w)
}

// EncodeDispatchDirectSub builds a KindDispatchDirectSub frame payload for
// one shard's sub-batch of a pruned batch epoch.
func EncodeDispatchDirectSub(epoch uint64, index []int, q Query) []byte {
	var w Writer
	AppendDispatchDirectSub(&w, epoch, index, q)
	return w.Bytes()
}

// AppendDispatchDirectSub appends a KindDispatchDirectSub frame payload to
// w. index carries the original batch index of each point of q, so
// len(index) must equal len(q.Points).
func AppendDispatchDirectSub(w *Writer, epoch uint64, index []int, q Query) {
	w.Kind(KindDispatchDirectSub)
	w.Varint(epoch)
	w.Varint(uint64(len(index)))
	for _, qi := range index {
		w.Varint(uint64(qi))
	}
	q.append(w)
}

// DecodeDispatchDirectSub reads a KindDispatchDirectSub body; the kind byte
// must already be consumed. The decoded points alias the reader's buffer.
func DecodeDispatchDirectSub(r *Reader) (epoch uint64, index []int, q Query, err error) {
	epoch = r.Varint()
	count := r.Varint()
	if r.Err() == nil && count > MaxBatch {
		return 0, nil, Query{}, fmt.Errorf("wire: sub-batch of %d exceeds limit %d", count, MaxBatch)
	}
	if r.Err() == nil && count > uint64(r.Remaining()) {
		return 0, nil, Query{}, fmt.Errorf("wire: sub-batch count %d exceeds payload", count)
	}
	index = make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		qi := r.Varint()
		if r.Err() == nil && qi >= MaxBatch {
			return 0, nil, Query{}, fmt.Errorf("wire: sub-batch index %d exceeds limit %d", qi, MaxBatch)
		}
		index = append(index, int(qi))
	}
	if q, err = DecodeQuery(r); err != nil {
		return 0, nil, Query{}, err
	}
	if len(q.Points) != len(index) {
		return 0, nil, Query{}, fmt.Errorf("wire: sub-batch carries %d indices for %d points", len(index), len(q.Points))
	}
	return epoch, index, q, nil
}

// DecodeQuery reads a Query body; the kind byte must already be consumed.
func DecodeQuery(r *Reader) (Query, error) {
	var q Query
	if err := DecodeQueryInto(r, &q); err != nil {
		return Query{}, err
	}
	return q, nil
}

// DecodeQueryInto reads a Query body into q, reusing q.Points' capacity so
// a per-connection Query decodes without allocating in the steady state.
// The decoded points alias the reader's buffer.
func DecodeQueryInto(r *Reader, q *Query) error {
	q.Op, q.L, q.Tag = r.U8(), int(r.Varint()), r.U8()
	q.Points = q.Points[:0]
	count := r.Varint()
	if r.Err() == nil && count > MaxBatch {
		q.Points = nil
		return fmt.Errorf("wire: query batch of %d exceeds limit %d", count, MaxBatch)
	}
	if r.Err() == nil && count > uint64(r.Remaining()) {
		q.Points = nil
		return fmt.Errorf("wire: query batch count %d exceeds payload", count)
	}
	if uint64(cap(q.Points)) < count {
		q.Points = make([][]byte, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		n := r.Varint()
		if r.Err() == nil && n > uint64(r.Remaining()) {
			q.Points = nil
			return fmt.Errorf("wire: query point length %d exceeds payload", n)
		}
		q.Points = append(q.Points, r.Raw(int(n)))
	}
	if err := r.Err(); err != nil {
		q.Points = nil
		return err
	}
	return nil
}

// NodeError is a node's report that an epoch failed. Origin distinguishes
// the node whose own program failed from the k−1 peers that merely observed
// the abort; Fatal marks a broken mesh (the node cannot serve further
// epochs until the failed peer — or the node itself — re-joins), as opposed
// to a recoverable program failure. LostPeer names the machine whose link
// died when the node could attribute the fault (-1 otherwise). It is the
// body of a KindError frame.
type NodeError struct {
	Epoch    uint64
	Origin   bool
	Fatal    bool
	LostPeer int
	Msg      string
}

// EncodeNodeError builds a KindError frame payload.
func EncodeNodeError(ne NodeError) []byte {
	var w Writer
	AppendNodeError(&w, ne)
	return w.Bytes()
}

// AppendNodeError appends a KindError frame payload to w.
func AppendNodeError(w *Writer, ne NodeError) {
	w.Kind(KindError)
	w.Varint(ne.Epoch)
	w.U8(b2u(ne.Origin))
	w.U8(b2u(ne.Fatal))
	if ne.LostPeer < 0 {
		w.Varint(0)
	} else {
		w.Varint(uint64(ne.LostPeer) + 1)
	}
	w.String(ne.Msg)
}

// DecodeNodeError reads a NodeError body; the kind byte must already be
// consumed.
func DecodeNodeError(r *Reader) (NodeError, error) {
	ne := NodeError{
		Epoch:    r.Varint(),
		Origin:   r.U8() == 1,
		Fatal:    r.U8() == 1,
		LostPeer: int(r.Varint()) - 1,
		Msg:      r.String(),
	}
	if err := r.Err(); err != nil {
		return NodeError{}, err
	}
	return ne, nil
}

// EncodeRejoin builds a KindRejoin frame payload. id < 0 asks the frontend
// to pick any absent slot (a restarted process that no longer knows its
// machine index).
func EncodeRejoin(id int, meshAddr string) []byte {
	var w Writer
	w.Kind(KindRejoin)
	if id < 0 {
		w.Varint(0)
	} else {
		w.Varint(uint64(id) + 1)
	}
	w.String(meshAddr)
	return w.Bytes()
}

// DecodeRejoin reads a KindRejoin body; the kind byte must already be
// consumed. The returned id is -1 when the node asked for any absent slot.
func DecodeRejoin(r *Reader) (id int, meshAddr string, err error) {
	id = int(r.Varint()) - 1
	meshAddr = r.String()
	if err := r.Err(); err != nil {
		return 0, "", err
	}
	return id, meshAddr, nil
}

// RejoinAssign is the frontend's grant for a node re-joining a running
// serving session: the slot it takes over, the session parameters, the
// already-elected leader (the rejoining node runs no setup epoch), the
// session's current epoch ordinal, the peers currently serving (which the
// rejoining node must dial to rebuild its mesh links) and the full address
// book. It is the body of a KindRejoinAssign frame.
type RejoinAssign struct {
	ID      int
	K       int
	Seed    uint64
	Leader  int
	Epoch   uint64
	Present []int
	Addrs   []string
}

// EncodeRejoinAssign builds a KindRejoinAssign frame payload.
func EncodeRejoinAssign(ra RejoinAssign) []byte {
	var w Writer
	w.Kind(KindRejoinAssign)
	w.Varint(uint64(ra.ID))
	w.Varint(uint64(ra.K))
	w.U64(ra.Seed)
	w.Varint(uint64(ra.Leader))
	w.Varint(ra.Epoch)
	w.Varint(uint64(len(ra.Present)))
	for _, id := range ra.Present {
		w.Varint(uint64(id))
	}
	for _, a := range ra.Addrs {
		w.String(a)
	}
	return w.Bytes()
}

// DecodeRejoinAssign reads a RejoinAssign body; the kind byte must already
// be consumed.
func DecodeRejoinAssign(r *Reader) (RejoinAssign, error) {
	ra := RejoinAssign{
		ID:     int(r.Varint()),
		K:      int(r.Varint()),
		Seed:   r.U64(),
		Leader: int(r.Varint()),
		Epoch:  r.Varint(),
	}
	if r.Err() == nil && (ra.K < 0 || uint64(ra.K) > uint64(r.Remaining())) {
		return RejoinAssign{}, fmt.Errorf("wire: rejoin cluster size %d exceeds payload", ra.K)
	}
	count := r.Varint()
	if r.Err() == nil && count > uint64(ra.K) {
		return RejoinAssign{}, fmt.Errorf("wire: rejoin present count %d exceeds cluster size %d", count, ra.K)
	}
	ra.Present = make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		ra.Present = append(ra.Present, int(r.Varint()))
	}
	ra.Addrs = make([]string, ra.K)
	for i := range ra.Addrs {
		ra.Addrs[i] = r.String()
	}
	if err := r.Err(); err != nil {
		return RejoinAssign{}, err
	}
	return ra, nil
}

// ShardSummary is one node's metric-index summary of its shard: the
// centroid (anchor) point in the session's wire encoding and the shard's
// true-distance radius around it. The frontend keeps one per seat and runs
// the triangle-inequality admission test against them to prune query
// dispatches; Has false (no centroid — the point type is not a metric, or
// the shard is empty without an explicit anchor) disables pruning for the
// session. It is the body of a KindSummary frame, reported right after
// every KindReady.
type ShardSummary struct {
	Node   int
	Has    bool
	Radius float64
	Center []byte
}

// EncodeShardSummary builds a KindSummary frame payload.
func EncodeShardSummary(s ShardSummary) []byte {
	var w Writer
	AppendShardSummary(&w, s)
	return w.Bytes()
}

// AppendShardSummary appends a KindSummary frame payload to w.
func AppendShardSummary(w *Writer, s ShardSummary) {
	w.Kind(KindSummary)
	w.Varint(uint64(s.Node))
	w.U8(b2u(s.Has))
	if s.Has {
		w.F64(s.Radius)
		w.Varint(uint64(len(s.Center)))
		w.Raw(s.Center)
	}
}

// DecodeShardSummary reads a ShardSummary body; the kind byte must already
// be consumed. The centroid bytes are copied out of the reader's buffer (a
// summary outlives its handshake frame).
func DecodeShardSummary(r *Reader) (ShardSummary, error) {
	s := ShardSummary{Node: int(r.Varint())}
	switch has := r.U8(); has {
	case 0:
	case 1:
		s.Has = true
		s.Radius = r.F64()
		n := r.Varint()
		if r.Err() == nil && n > uint64(r.Remaining()) {
			return ShardSummary{}, fmt.Errorf("wire: summary centroid length %d exceeds payload", n)
		}
		s.Center = append([]byte(nil), r.Raw(int(n))...)
	default:
		if err := r.Err(); err != nil {
			return ShardSummary{}, err
		}
		return ShardSummary{}, fmt.Errorf("wire: unknown summary has flag %d", has)
	}
	if err := r.Err(); err != nil {
		return ShardSummary{}, err
	}
	if s.Has && (s.Radius < 0 || s.Radius != s.Radius) {
		return ShardSummary{}, fmt.Errorf("wire: summary radius %g out of range", s.Radius)
	}
	return s, nil
}

// QueryOutcome is one query's slice of an epoch outcome. Inside a
// NodeResult, Winners is the reporting node's local share of that query's
// answer and the remaining fields are meaningful on the leader only; inside
// a Reply, Items is the full merged answer and the leader fields are
// authoritative.
type QueryOutcome struct {
	Boundary   keys.Key
	Survivors  int64
	FellBack   bool
	Iterations int
	Value      float64 // classification label or regression mean
}

// NodeQueryResult is one node's per-query share of an epoch result.
type NodeQueryResult struct {
	Winners []points.Item
	QueryOutcome
}

// NodeResult is one resident node's report for one query epoch: per batched
// query its local share of the winning points, plus its local view of the
// whole epoch's cost, and — on the leader only — each query's result
// metadata and aggregate value.
type NodeResult struct {
	Epoch    uint64
	Node     int
	Rounds   int
	Messages int64
	Bytes    int64
	IsLeader bool
	Queries  []NodeQueryResult
}

// EncodeNodeResult builds a KindResult frame payload.
func EncodeNodeResult(nr NodeResult) []byte {
	var w Writer
	AppendNodeResult(&w, nr)
	return w.Bytes()
}

// AppendNodeResult appends a KindResult frame payload to w (for pooled
// writers on the node's per-epoch result path).
func AppendNodeResult(w *Writer, nr NodeResult) {
	w.Kind(KindResult)
	w.Varint(nr.Epoch)
	w.Varint(uint64(nr.Node))
	w.Varint(uint64(nr.Rounds))
	w.Varint(uint64(nr.Messages))
	w.Varint(uint64(nr.Bytes))
	w.U8(b2u(nr.IsLeader))
	w.Varint(uint64(len(nr.Queries)))
	for _, qr := range nr.Queries {
		w.Items(qr.Winners)
		if nr.IsLeader {
			w.Key(qr.Boundary)
			w.Varint(uint64(qr.Survivors))
			w.U8(b2u(qr.FellBack))
			w.Varint(uint64(qr.Iterations))
			w.F64(qr.Value)
		}
	}
}

// DecodeNodeResult reads a NodeResult body; the kind byte must already be
// consumed.
func DecodeNodeResult(r *Reader) (NodeResult, error) {
	nr := NodeResult{
		Epoch:    r.Varint(),
		Node:     int(r.Varint()),
		Rounds:   int(r.Varint()),
		Messages: int64(r.Varint()),
		Bytes:    int64(r.Varint()),
		IsLeader: r.U8() == 1,
	}
	count := r.Varint()
	if r.Err() == nil && count > MaxBatch {
		return NodeResult{}, fmt.Errorf("wire: node result batch of %d exceeds limit %d", count, MaxBatch)
	}
	if r.Err() == nil && count > uint64(r.Remaining()) {
		return NodeResult{}, fmt.Errorf("wire: node result count %d exceeds payload", count)
	}
	nr.Queries = make([]NodeQueryResult, 0, count)
	for i := uint64(0); i < count; i++ {
		var qr NodeQueryResult
		qr.Winners = r.Items()
		if nr.IsLeader {
			qr.Boundary = r.Key()
			qr.Survivors = int64(r.Varint())
			qr.FellBack = r.U8() == 1
			qr.Iterations = int(r.Varint())
			qr.Value = r.F64()
		}
		nr.Queries = append(nr.Queries, qr)
	}
	if err := r.Err(); err != nil {
		return NodeResult{}, err
	}
	return nr, nil
}

// QueryReply is the merged answer to one query of a batch: the result
// metadata observed by the leader and — for OpKNN — the full merged
// neighbor list in ascending key order.
type QueryReply struct {
	QueryOutcome
	Items []points.Item
}

// Reply is the frontend's answer to one client query batch: either an error
// message (the whole batch shares one epoch, so it fails as a unit) or the
// per-query merged results with the epoch's aggregated distributed cost.
//
// Degraded marks an error caused by node churn — the cluster is missing
// nodes, or a node was lost while this very batch was in flight. A degraded
// failure is transient and safe to retry (every query op is an idempotent
// read): the batch either never ran or failed as a unit, and the cluster
// answers again once the absent node re-joins.
type Reply struct {
	Err      string // non-empty means the batch failed
	Degraded bool   // the failure is churn-induced and retryable

	Rounds   int
	Messages int64
	Bytes    int64
	Leader   int
	Results  []QueryReply // one per query, in batch order
}

func (rep Reply) append(w *Writer) {
	if rep.Err != "" {
		if rep.Degraded {
			w.U8(2)
		} else {
			w.U8(1)
		}
		w.String(rep.Err)
		return
	}
	w.U8(0)
	w.Varint(uint64(rep.Rounds))
	w.Varint(uint64(rep.Messages))
	w.Varint(uint64(rep.Bytes))
	w.Varint(uint64(rep.Leader))
	w.Varint(uint64(len(rep.Results)))
	for _, qr := range rep.Results {
		w.Key(qr.Boundary)
		w.Varint(uint64(qr.Survivors))
		w.U8(b2u(qr.FellBack))
		w.Varint(uint64(qr.Iterations))
		w.F64(qr.Value)
		w.Items(qr.Items)
	}
}

// EncodeReply builds a KindReply frame payload.
func EncodeReply(rep Reply) []byte {
	var w Writer
	AppendReply(&w, rep)
	return w.Bytes()
}

// AppendReply appends a KindReply frame payload to w (for pooled writers).
func AppendReply(w *Writer, rep Reply) {
	w.Kind(KindReply)
	rep.append(w)
}

// EncodeReplyTagged builds a KindReplyTagged frame payload.
func EncodeReplyTagged(tag uint64, rep Reply) []byte {
	var w Writer
	AppendReplyTagged(&w, tag, rep)
	return w.Bytes()
}

// AppendReplyTagged appends a KindReplyTagged frame payload to w.
func AppendReplyTagged(w *Writer, tag uint64, rep Reply) {
	w.Kind(KindReplyTagged)
	w.Varint(tag)
	rep.append(w)
}

// DecodeReply reads a Reply body; the kind byte must already be consumed.
func DecodeReply(r *Reader) (Reply, error) {
	switch status := r.U8(); status {
	case 0:
		// Fall through to the result body below.
	case 1, 2:
		rep := Reply{Err: r.String(), Degraded: status == 2}
		if err := r.Err(); err != nil {
			return Reply{}, err
		}
		if rep.Err == "" {
			return Reply{}, fmt.Errorf("wire: error reply with empty message")
		}
		return rep, nil
	default:
		if err := r.Err(); err != nil {
			return Reply{}, err
		}
		return Reply{}, fmt.Errorf("wire: unknown reply status %d", status)
	}
	rep := Reply{
		Rounds:   int(r.Varint()),
		Messages: int64(r.Varint()),
		Bytes:    int64(r.Varint()),
		Leader:   int(r.Varint()),
	}
	count := r.Varint()
	if r.Err() == nil && count > MaxBatch {
		return Reply{}, fmt.Errorf("wire: reply batch of %d exceeds limit %d", count, MaxBatch)
	}
	if r.Err() == nil && count > uint64(r.Remaining()) {
		return Reply{}, fmt.Errorf("wire: reply count %d exceeds payload", count)
	}
	rep.Results = make([]QueryReply, 0, count)
	for i := uint64(0); i < count; i++ {
		var qr QueryReply
		qr.Boundary = r.Key()
		qr.Survivors = int64(r.Varint())
		qr.FellBack = r.U8() == 1
		qr.Iterations = int(r.Varint())
		qr.Value = r.F64()
		qr.Items = r.Items()
		rep.Results = append(rep.Results, qr)
	}
	if err := r.Err(); err != nil {
		return Reply{}, err
	}
	return rep, nil
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
