package wire

import (
	"fmt"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// Control-plane frame kinds. Every frame crossing a rendezvous, serving or
// client connection starts with one of these bytes; the mesh (node↔node)
// frames are the only ones that do not, since the mesh carries exactly one
// frame shape. The full layouts are specified in docs/PROTOCOL.md and
// pinned by golden-byte tests in this package.
const (
	// KindRegister: node → coordinator. Body: String mesh-listen address.
	KindRegister = 1
	// KindAssign: coordinator → node. Body: U8 mode, Varint id, Varint k,
	// U64 seed, then k × String mesh addresses (the address book).
	KindAssign = 2
	// KindReady: node → frontend, once the setup epoch (leader election)
	// has completed. Body: Varint id, Varint leader, Varint shard size,
	// U8 point tag.
	KindReady = 3
	// KindDispatch: frontend → node, one query epoch. Body: Varint epoch,
	// then a Query body.
	KindDispatch = 4
	// KindResult: node → frontend, one epoch's outcome. Body: NodeResult.
	KindResult = 5
	// KindError: node → frontend, the epoch (or session) failed.
	// Body: Varint epoch, U8 origin (1 if the failure originated in this
	// node's program), String message.
	KindError = 6
	// KindShutdown: frontend → node, clean stop. Empty body.
	KindShutdown = 7
	// KindQuery: client → frontend. Body: Query.
	KindQuery = 8
	// KindReply: frontend → client. Body: Reply.
	KindReply = 9
)

// Session modes carried in the KindAssign frame.
const (
	// ModeOneShot tears the mesh down after a single program run.
	ModeOneShot = 0
	// ModeServe keeps the node resident: after the setup epoch it executes
	// one BSP epoch per KindDispatch until shutdown.
	ModeServe = 1
)

// Query operations.
const (
	// OpKNN returns the ℓ nearest neighbors.
	OpKNN = 1
	// OpClassify returns the majority label among the ℓ nearest.
	OpClassify = 2
	// OpRegress returns the mean label of the ℓ nearest.
	OpRegress = 3
)

// Point encodings, selected by the tag byte inside a Query.
const (
	// PointScalar is a one-dimensional integer point: U64 value.
	PointScalar = 1
	// PointVector is a d-dimensional point: Varint dim, then dim × F64.
	// Reserved: the serving path does not ship vector shards yet.
	PointVector = 2
)

// Query is one client request: which operation to run, how many neighbors,
// and the query point in its tagged encoding. It is the body of a KindQuery
// frame and the tail of a KindDispatch frame.
type Query struct {
	Op    uint8
	L     int
	Tag   uint8
	Point []byte // tag-specific encoding, length-prefixed on the wire
}

// EncodeScalarPoint encodes a scalar query point for Query.Point.
func EncodeScalarPoint(v uint64) []byte {
	var w Writer
	w.U64(v)
	return w.Bytes()
}

// DecodeScalarPoint decodes a PointScalar payload.
func DecodeScalarPoint(p []byte) (uint64, error) {
	r := NewReader(p)
	v := r.U64()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return v, nil
}

func (q Query) append(w *Writer) {
	w.U8(q.Op)
	w.Varint(uint64(q.L))
	w.U8(q.Tag)
	w.Varint(uint64(len(q.Point)))
	w.Raw(q.Point)
}

// EncodeQuery builds a KindQuery frame payload.
func EncodeQuery(q Query) []byte {
	var w Writer
	w.U8(KindQuery)
	q.append(&w)
	return w.Bytes()
}

// EncodeDispatch builds a KindDispatch frame payload for one epoch.
func EncodeDispatch(epoch uint64, q Query) []byte {
	var w Writer
	w.U8(KindDispatch)
	w.Varint(epoch)
	q.append(&w)
	return w.Bytes()
}

// DecodeQuery reads a Query body; the kind byte must already be consumed.
func DecodeQuery(r *Reader) (Query, error) {
	q := Query{Op: r.U8(), L: int(r.Varint()), Tag: r.U8()}
	n := r.Varint()
	if r.Err() == nil && n > uint64(r.Remaining()) {
		return Query{}, fmt.Errorf("wire: query point length %d exceeds payload", n)
	}
	q.Point = r.Raw(int(n))
	if err := r.Err(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// NodeResult is one resident node's report for one query epoch: its local
// share of the winning points, its local view of the epoch's cost, and — on
// the leader only — the result metadata and aggregate value.
type NodeResult struct {
	Epoch    uint64
	Node     int
	Rounds   int
	Messages int64
	Bytes    int64
	Winners  []points.Item

	IsLeader   bool
	Boundary   keys.Key
	Survivors  int64
	FellBack   bool
	Iterations int
	Value      float64 // classification label or regression mean
}

// EncodeNodeResult builds a KindResult frame payload.
func EncodeNodeResult(nr NodeResult) []byte {
	var w Writer
	w.U8(KindResult)
	w.Varint(nr.Epoch)
	w.Varint(uint64(nr.Node))
	w.Varint(uint64(nr.Rounds))
	w.Varint(uint64(nr.Messages))
	w.Varint(uint64(nr.Bytes))
	w.Items(nr.Winners)
	w.U8(b2u(nr.IsLeader))
	if nr.IsLeader {
		w.Key(nr.Boundary)
		w.Varint(uint64(nr.Survivors))
		w.U8(b2u(nr.FellBack))
		w.Varint(uint64(nr.Iterations))
		w.F64(nr.Value)
	}
	return w.Bytes()
}

// DecodeNodeResult reads a NodeResult body; the kind byte must already be
// consumed.
func DecodeNodeResult(r *Reader) (NodeResult, error) {
	nr := NodeResult{
		Epoch:    r.Varint(),
		Node:     int(r.Varint()),
		Rounds:   int(r.Varint()),
		Messages: int64(r.Varint()),
		Bytes:    int64(r.Varint()),
		Winners:  r.Items(),
		IsLeader: r.U8() == 1,
	}
	if nr.IsLeader {
		nr.Boundary = r.Key()
		nr.Survivors = int64(r.Varint())
		nr.FellBack = r.U8() == 1
		nr.Iterations = int(r.Varint())
		nr.Value = r.F64()
	}
	if err := r.Err(); err != nil {
		return NodeResult{}, err
	}
	return nr, nil
}

// Reply is the frontend's answer to one client query: either an error
// message or the merged result with its aggregated distributed cost.
type Reply struct {
	Err string // non-empty means the query failed

	Rounds     int
	Messages   int64
	Bytes      int64
	Leader     int
	Boundary   keys.Key
	Survivors  int64
	FellBack   bool
	Iterations int
	Value      float64       // OpClassify / OpRegress result
	Items      []points.Item // OpKNN result, ascending key order
}

// EncodeReply builds a KindReply frame payload.
func EncodeReply(rep Reply) []byte {
	var w Writer
	w.U8(KindReply)
	if rep.Err != "" {
		w.U8(1)
		w.String(rep.Err)
		return w.Bytes()
	}
	w.U8(0)
	w.Varint(uint64(rep.Rounds))
	w.Varint(uint64(rep.Messages))
	w.Varint(uint64(rep.Bytes))
	w.Varint(uint64(rep.Leader))
	w.Key(rep.Boundary)
	w.Varint(uint64(rep.Survivors))
	w.U8(b2u(rep.FellBack))
	w.Varint(uint64(rep.Iterations))
	w.F64(rep.Value)
	w.Items(rep.Items)
	return w.Bytes()
}

// DecodeReply reads a Reply body; the kind byte must already be consumed.
func DecodeReply(r *Reader) (Reply, error) {
	if r.U8() == 1 {
		rep := Reply{Err: r.String()}
		if err := r.Err(); err != nil {
			return Reply{}, err
		}
		if rep.Err == "" {
			return Reply{}, fmt.Errorf("wire: error reply with empty message")
		}
		return rep, nil
	}
	rep := Reply{
		Rounds:   int(r.Varint()),
		Messages: int64(r.Varint()),
		Bytes:    int64(r.Varint()),
		Leader:   int(r.Varint()),
		Boundary: r.Key(),
	}
	rep.Survivors = int64(r.Varint())
	rep.FellBack = r.U8() == 1
	rep.Iterations = int(r.Varint())
	rep.Value = r.F64()
	rep.Items = r.Items()
	if err := r.Err(); err != nil {
		return Reply{}, err
	}
	return rep, nil
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
