// Package wire is the binary message codec shared by the in-process
// simulator and the TCP runtime.
//
// Every protocol message is marshalled to bytes before it crosses a link, for
// two reasons: the simulator's bandwidth accounting must charge the size a
// real implementation would pay, and the TCP runtime ships the very same
// bytes. Encoding is little-endian with unsigned LEB128 varints for counts.
//
// Besides the Writer/Reader primitives and the stream framing, the package
// defines the typed frames of the TCP serving protocol (frames.go):
// rendezvous, query dispatch, per-epoch results, and the client-facing
// query/reply pair. The byte-level layout of every frame is specified in
// docs/PROTOCOL.md, whose hex examples are pinned to this codec by
// TestProtocolDocExamples.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// ErrTruncated is reported when a reader runs out of bytes mid-value.
var ErrTruncated = errors.New("wire: truncated message")

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded message. The slice aliases the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the encoded size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset empties the writer, keeping its capacity for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Grow preallocates capacity for at least n more bytes, so a writer whose
// final size is known (or bounded) encodes with a single allocation.
func (w *Writer) Grow(n int) {
	if cap(w.buf)-len(w.buf) >= n {
		return
	}
	buf := make([]byte, len(w.buf), len(w.buf)+n)
	copy(buf, w.buf)
	w.buf = buf
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Kind appends a frame-kind byte.
func (w *Writer) Kind(k Kind) { w.U8(uint8(k)) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Varint appends an unsigned LEB128 varint.
func (w *Writer) Varint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// F64 appends a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a varint-length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Varint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Key appends a selection key (16 bytes).
func (w *Writer) Key(k keys.Key) {
	w.U64(k.Dist)
	w.U64(k.ID)
}

// Item appends a key + label (24 bytes).
func (w *Writer) Item(it points.Item) {
	w.Key(it.Key)
	w.F64(it.Label)
}

// Raw appends bytes verbatim (for nesting pre-encoded payloads).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Keys appends a length-prefixed key slice.
func (w *Writer) Keys(ks []keys.Key) {
	w.Varint(uint64(len(ks)))
	for _, k := range ks {
		w.Key(k)
	}
}

// Items appends a length-prefixed item slice.
func (w *Writer) Items(its []points.Item) {
	w.Varint(uint64(len(its)))
	for _, it := range its {
		w.Item(it)
	}
}

// Reader decodes a message produced by Writer. Errors are sticky: after the
// first failure every read returns zero values and Err reports the cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded message.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Kind reads a frame-kind byte.
func (r *Reader) Kind() Kind { return Kind(r.U8()) }

// U64 reads a fixed-width uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Varint reads an unsigned LEB128 varint.
func (r *Reader) Varint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Raw reads n bytes verbatim. The returned slice aliases the input buffer.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// String reads a varint-length-prefixed UTF-8 string.
func (r *Reader) String() string {
	n := r.Varint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail(fmt.Errorf("wire: string length %d exceeds payload", n))
		return ""
	}
	return string(r.Raw(int(n)))
}

// Key reads a selection key.
func (r *Reader) Key() keys.Key {
	return keys.Key{Dist: r.U64(), ID: r.U64()}
}

// Item reads a key + label.
func (r *Reader) Item() points.Item {
	return points.Item{Key: r.Key(), Label: r.F64()}
}

// Keys reads a length-prefixed key slice.
func (r *Reader) Keys() []keys.Key {
	n := r.Varint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()/16) {
		r.fail(fmt.Errorf("wire: key slice length %d exceeds payload", n))
		return nil
	}
	out := make([]keys.Key, n)
	for i := range out {
		out[i] = r.Key()
	}
	return out
}

// Items reads a length-prefixed item slice.
func (r *Reader) Items() []points.Item {
	n := r.Varint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()/24) {
		r.fail(fmt.Errorf("wire: item slice length %d exceeds payload", n))
		return nil
	}
	out := make([]points.Item, n)
	for i := range out {
		out[i] = r.Item()
	}
	return out
}

// ---------------------------------------------------------------------------
// Stream framing (TCP runtime)
// ---------------------------------------------------------------------------

// MaxFrame bounds a single frame to keep a malformed peer from forcing an
// arbitrarily large allocation.
const MaxFrame = 64 << 20

// maxPooledCap bounds the capacity of buffers retained by the pools below.
// A rare giant frame (up to MaxFrame) is served by a one-off allocation
// instead of pinning megabytes inside a pool forever.
const maxPooledCap = 1 << 20

// Pool traffic counters. wire stays telemetry-agnostic (it must not
// import the obs package it serves), so these are plain atomics read
// through PoolStats and re-exported by the serving layers as callback
// gauges. gets - news = pool hits.
var (
	writerPoolGets atomic.Int64
	writerPoolNews atomic.Int64
	framePoolGets  atomic.Int64
	framePoolNews  atomic.Int64
)

// PoolStats reports cumulative pool traffic: checkout counts and the
// subset that had to allocate (pool misses) for the writer and frame
// buffer pools.
func PoolStats() (writerGets, writerNews, frameGets, frameNews int64) {
	return writerPoolGets.Load(), writerPoolNews.Load(),
		framePoolGets.Load(), framePoolNews.Load()
}

// writerPool recycles Writers across frames. Encoding a message into a
// pooled writer and flushing it with EndFrame is the zero-allocation
// counterpart of Encode* + WriteFrame.
var writerPool = sync.Pool{New: func() any {
	writerPoolNews.Add(1)
	return new(Writer)
}}

// GetWriter returns an empty Writer from the pool. Release it with
// PutWriter once the encoded bytes are no longer referenced; the caller
// must not retain w.Bytes() past that point.
func GetWriter() *Writer {
	writerPoolGets.Add(1)
	return writerPool.Get().(*Writer)
}

// PutWriter resets w and returns it to the pool.
func PutWriter(w *Writer) {
	if cap(w.buf) > maxPooledCap {
		return
	}
	w.Reset()
	writerPool.Put(w)
}

// BeginFrame reserves the 4-byte stream-framing header at the front of an
// empty writer. Encode the payload with the ordinary Writer methods, then
// flush header and payload in one Write with EndFrame — no copy, no
// per-frame allocation when the writer is pooled.
func (w *Writer) BeginFrame() {
	w.buf = append(w.buf, 0, 0, 0, 0)
}

// EndFrame patches the length header reserved by BeginFrame and writes the
// whole frame to dst in a single Write (one syscall on a socket, and no
// torn header/body interleaving from concurrent writers). The writer still
// holds the frame afterwards; Reset or PutWriter it before reuse.
func (w *Writer) EndFrame(dst io.Writer) error {
	if len(w.buf) < 4 {
		return errors.New("wire: EndFrame without BeginFrame")
	}
	frame, err := w.FinishFrame()
	if err != nil {
		return err
	}
	_, err = dst.Write(frame)
	return err
}

// FinishFrame patches the length header reserved by BeginFrame and returns
// the complete frame without writing it, for callers that fan one frame out
// to several destinations. The bytes alias the writer: write them everywhere
// before Reset or PutWriter.
func (w *Writer) FinishFrame() ([]byte, error) {
	if len(w.buf) < 4 {
		return nil, errors.New("wire: FinishFrame without BeginFrame")
	}
	payload := len(w.buf) - 4
	if payload > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", payload)
	}
	binary.LittleEndian.PutUint32(w.buf, uint32(payload))
	return w.buf, nil
}

// frameScratch recycles the header+payload staging buffers used by
// WriteFrame for callers that hold an already-encoded payload.
var frameScratch = sync.Pool{New: func() any { return new([]byte) }}

// WriteFrame writes a length-prefixed payload to w. Header and payload go
// out in a single Write, so a frame over a socket costs one syscall (and
// cannot be torn between header and body by a concurrent writer). The
// staging buffer is pooled: steady-state frame writes do not allocate.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	bp := frameScratch.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledCap {
		*bp = buf[:0]
		frameScratch.Put(bp)
	}
	return err
}

// ReadFrame reads one length-prefixed payload from r, allocating a fresh
// buffer (none at all for an empty frame). Hot loops should hold a
// per-connection buffer and use ReadFrameInto instead.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one length-prefixed payload from r into buf,
// growing it only when the frame exceeds its capacity. The returned slice
// aliases (a possibly grown) buf; pass it back as the next call's buf to
// amortize the allocation to zero. The caller owns the buffer: reuse it
// only once the previous payload is fully consumed or copied.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	// The header is read into the reusable buffer itself (and overwritten
	// by the payload right after): a stack array would escape through the
	// io.Reader interface and cost an allocation per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < uint64(n) {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// framePool recycles frame payload buffers for paths that hand a decoded
// frame to another goroutine (the decoded view aliases the payload, so a
// simple per-connection buffer cannot be reused until that work finishes).
// The reader checks a buffer out, the consumer returns it when done.
var framePool = sync.Pool{New: func() any {
	framePoolNews.Add(1)
	return new([]byte)
}}

// GetFrameBuf checks a reusable frame buffer out of the pool. Pass it to
// ReadFrameInto, hand the payload (which aliases it) to the consumer, and
// have the consumer release it with PutFrameBuf when the decoded frame is
// dead.
func GetFrameBuf() []byte {
	framePoolGets.Add(1)
	return *framePool.Get().(*[]byte)
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf (possibly grown
// by ReadFrameInto) to the pool.
func PutFrameBuf(buf []byte) {
	if cap(buf) > maxPooledCap {
		return
	}
	buf = buf[:0]
	framePool.Put(&buf)
}
