package wire

import (
	"bytes"
	"math"
	"testing"

	"distknn/internal/keys"
	"distknn/internal/points"
)

// The fuzz harnesses below check two properties on arbitrary bytes:
// decoders never panic or over-read, and anything that decodes re-encodes
// canonically (encode(decode(b)) is a fixed point). The f.Add seeds are
// valid frames, so a plain `go test` run (and CI) exercises the corpus as
// ordinary unit tests; `go test -fuzz` explores from there.

func FuzzDecodeQuery(f *testing.F) {
	f.Add(EncodeQuery(Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: [][]byte{EncodeScalarPoint(12345)}})[1:])
	f.Add(EncodeQuery(Query{Op: OpClassify, L: 3, Tag: PointVector, Points: [][]byte{
		EncodeVectorPoint(points.Vector{1, 2}), EncodeVectorPoint(points.Vector{-0.5}),
	}})[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuery(NewReader(data))
		if err != nil {
			return
		}
		if len(q.Points) > MaxBatch {
			t.Fatalf("decoded batch of %d beyond MaxBatch", len(q.Points))
		}
		enc := EncodeQuery(q)
		q2, err := DecodeQuery(skipKind(t, enc, KindQuery))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeQuery(q2), enc) {
			t.Fatalf("query is not a re-encoding fixed point")
		}
	})
}

// FuzzDecodeDispatchDirectSub covers the pruned sub-batch dispatch: the
// epoch and original-index prefix plus the shared query body decoder.
func FuzzDecodeDispatchDirectSub(f *testing.F) {
	f.Add(EncodeDispatchDirectSub(1, []int{0, 2}, Query{
		Op: OpKNN, L: 10, Tag: PointScalar,
		Points: [][]byte{EncodeScalarPoint(12345), EncodeScalarPoint(5)},
	})[1:])
	f.Add(EncodeDispatchDirectSub(7, []int{3}, Query{
		Op: OpRegress, L: 2, Tag: PointVector,
		Points: [][]byte{EncodeVectorPoint(points.Vector{0.5, 1.5})},
	})[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0}) // index count beyond payload
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, index, q, err := DecodeDispatchDirectSub(NewReader(data))
		if err != nil {
			return
		}
		if len(index) != len(q.Points) {
			t.Fatalf("decoder admitted %d indices for %d points", len(index), len(q.Points))
		}
		for _, qi := range index {
			if qi < 0 || qi >= MaxBatch {
				t.Fatalf("decoder admitted out-of-range index %d", qi)
			}
		}
		enc := EncodeDispatchDirectSub(epoch, index, q)
		r2 := skipKind(t, enc, KindDispatchDirectSub)
		epoch2, index2, q2, err := DecodeDispatchDirectSub(r2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeDispatchDirectSub(epoch2, index2, q2), enc) {
			t.Fatalf("sub-batch dispatch is not a re-encoding fixed point")
		}
	})
}

func FuzzDecodeNodeResult(f *testing.F) {
	f.Add(EncodeNodeResult(NodeResult{
		Epoch: 1, Node: 0, Rounds: 26, Messages: 44, Bytes: 745, IsLeader: true,
		Queries: []NodeQueryResult{{
			Winners:      []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
			QueryOutcome: QueryOutcome{Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20, Iterations: 4, Value: 2},
		}},
	})[1:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		nr, err := DecodeNodeResult(NewReader(data))
		if err != nil {
			return
		}
		enc := EncodeNodeResult(nr)
		nr2, err := DecodeNodeResult(skipKind(t, enc, KindResult))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeNodeResult(nr2), enc) {
			t.Fatalf("node result is not a re-encoding fixed point")
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	f.Add(EncodeReply(Reply{
		Rounds: 26, Messages: 44, Bytes: 745, Leader: 0,
		Results: []QueryReply{{
			QueryOutcome: QueryOutcome{Boundary: keys.Key{Dist: 5, ID: 2}, Survivors: 20, Iterations: 4},
			Items:        []points.Item{{Key: keys.Key{Dist: 3, ID: 1}, Label: 2}},
		}},
	})[1:])
	f.Add(EncodeReply(Reply{Err: "nope"})[1:])
	f.Add(EncodeReply(Reply{Err: "cluster degraded (1 of 2 nodes)", Degraded: true})[1:])
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReply(NewReader(data))
		if err != nil {
			return
		}
		enc := EncodeReply(rep)
		rep2, err := DecodeReply(skipKind(t, enc, KindReply))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeReply(rep2), enc) {
			t.Fatalf("reply is not a re-encoding fixed point")
		}
	})
}

// FuzzDecodeTaggedFrame covers the multiplexed query/reply kinds: the tag
// varint plus the shared body decoders, whole frames at a time.
func FuzzDecodeTaggedFrame(f *testing.F) {
	q := Query{Op: OpKNN, L: 10, Tag: PointScalar, Points: [][]byte{EncodeScalarPoint(12345)}}
	f.Add(EncodeQueryTagged(0, q))
	f.Add(EncodeQueryTagged(math.MaxUint64, q))
	f.Add(EncodeReplyTagged(7, Reply{Err: "nope"}))
	f.Add(EncodeReplyTagged(300, Reply{
		Rounds: 1, Leader: 0,
		Results: []QueryReply{{Items: []points.Item{{Key: keys.Key{Dist: 1, ID: 2}}}}},
	}))
	f.Add(EncodeReplyTagged(5, Reply{Err: "degraded", Degraded: true}))
	f.Add([]byte{byte(KindQueryTagged), 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		switch r.Kind() {
		case KindQueryTagged:
			tag := r.Varint()
			q, err := DecodeQuery(r)
			if err != nil || r.Err() != nil {
				return
			}
			enc := EncodeQueryTagged(tag, q)
			r2 := skipKind(t, enc, KindQueryTagged)
			if got := r2.Varint(); got != tag {
				t.Fatalf("tag %d re-decoded as %d", tag, got)
			}
			q2, err := DecodeQuery(r2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !bytes.Equal(EncodeQueryTagged(tag, q2), enc) {
				t.Fatalf("tagged query is not a re-encoding fixed point")
			}
		case KindReplyTagged:
			tag := r.Varint()
			rep, err := DecodeReply(r)
			if err != nil || r.Err() != nil {
				return
			}
			enc := EncodeReplyTagged(tag, rep)
			r2 := skipKind(t, enc, KindReplyTagged)
			if got := r2.Varint(); got != tag {
				t.Fatalf("tag %d re-decoded as %d", tag, got)
			}
			rep2, err := DecodeReply(r2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !bytes.Equal(EncodeReplyTagged(tag, rep2), enc) {
				t.Fatalf("tagged reply is not a re-encoding fixed point")
			}
		default:
			// Not a tagged frame: nothing to round-trip.
		}
	})
}

func FuzzDecodeNodeError(f *testing.F) {
	f.Add(EncodeNodeError(NodeError{Epoch: 1, Origin: true, Msg: "boom"})[1:])
	f.Add(EncodeNodeError(NodeError{Epoch: 7, Fatal: true, LostPeer: 2, Msg: "lost peer 2"})[1:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ne, err := DecodeNodeError(NewReader(data))
		if err != nil {
			return
		}
		enc := EncodeNodeError(ne)
		ne2, err := DecodeNodeError(skipKind(t, enc, KindError))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeNodeError(ne2), enc) {
			t.Fatalf("node error is not a re-encoding fixed point")
		}
	})
}

func FuzzDecodeRejoinAssign(f *testing.F) {
	f.Add(EncodeRejoinAssign(RejoinAssign{
		ID: 1, K: 3, Seed: 7, Leader: 0, Epoch: 42, Present: []int{0, 2},
		Addrs: []string{"127.0.0.1:9000", "127.0.0.1:9001", "127.0.0.1:9002"},
	})[1:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ra, err := DecodeRejoinAssign(NewReader(data))
		if err != nil {
			return
		}
		enc := EncodeRejoinAssign(ra)
		ra2, err := DecodeRejoinAssign(skipKind(t, enc, KindRejoinAssign))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeRejoinAssign(ra2), enc) {
			t.Fatalf("rejoin assign is not a re-encoding fixed point")
		}
	})
}

func FuzzDecodeShardSummary(f *testing.F) {
	f.Add(EncodeShardSummary(ShardSummary{Node: 1, Has: true, Radius: 0.25, Center: EncodeScalarPoint(12345)})[1:])
	f.Add(EncodeShardSummary(ShardSummary{Node: 0, Has: true, Radius: 0, Center: nil})[1:])
	f.Add(EncodeShardSummary(ShardSummary{Node: 2})[1:])
	f.Add([]byte{})
	f.Add([]byte{1, 2})                              // truncated after the has flag
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 255}) // centroid length beyond payload
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeShardSummary(NewReader(data))
		if err != nil {
			return
		}
		if s.Has && (s.Radius < 0 || s.Radius != s.Radius) {
			t.Fatalf("decoder admitted out-of-range radius %g", s.Radius)
		}
		enc := EncodeShardSummary(s)
		s2, err := DecodeShardSummary(skipKind(t, enc, KindSummary))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeShardSummary(s2), enc) {
			t.Fatalf("shard summary is not a re-encoding fixed point")
		}
	})
}

func FuzzPointCodecs(f *testing.F) {
	f.Add(EncodeScalarPoint(12345))
	f.Add(EncodeVectorPoint(points.Vector{0.5, 1.5}))
	f.Add(EncodeVectorPoint(nil))
	f.Add(EncodeBitVectorPoint(points.BitVector{0xdeadbeef, 0x0f0f0f0f0f0f0f0f}))
	f.Add(EncodeBitVectorPoint(nil))
	f.Add([]byte{2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := DecodeScalarPoint(data); err == nil {
			if !bytes.Equal(EncodeScalarPoint(v), data) {
				t.Fatalf("scalar point is not a re-encoding fixed point")
			}
		}
		if v, err := DecodeVectorPoint(data); err == nil {
			enc := EncodeVectorPoint(v)
			v2, err := DecodeVectorPoint(enc)
			if err != nil {
				t.Fatalf("vector re-decode failed: %v", err)
			}
			// Byte-level comparison keeps NaN coordinates comparable.
			if !bytes.Equal(EncodeVectorPoint(v2), enc) {
				t.Fatalf("vector point is not a re-encoding fixed point")
			}
		}
		if v, err := DecodeBitVectorPoint(data); err == nil {
			if !bytes.Equal(EncodeBitVectorPoint(v), data) {
				t.Fatalf("bit vector point is not a re-encoding fixed point")
			}
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var framed bytes.Buffer
	_ = WriteFrame(&framed, []byte("abc"))
	f.Add(framed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-framing failed: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip: %v", err)
		}
	})
}

// skipKind wraps an encoded frame in a Reader positioned after its kind
// byte, asserting the kind on the way.
func skipKind(t *testing.T, frame []byte, kind Kind) *Reader {
	t.Helper()
	r := NewReader(frame)
	if got := r.Kind(); got != kind {
		t.Fatalf("kind %d, want %d", got, kind)
	}
	return r
}
