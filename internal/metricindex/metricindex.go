// Package metricindex is the data-aware sharding layer of the reproduction:
// deterministic seeded k-center (anchor) clustering over any point type, the
// per-shard centroid + radius summaries a serving node reports to its
// frontend, and the triangle-inequality admission test the frontend's pruned
// dispatch runs against those summaries.
//
// The geometry is the classic metric-index argument (the esfragbag
// anchor-point index is the shape reference): if a query q has some ℓ-th
// best distance upper bound ub, then a shard whose centroid c and radius r
// satisfy d(q, c) > ub + r cannot contain any point within ub of q — every
// point p of the shard has d(q, p) ≥ d(q, c) − r > ub — so the shard is
// provably prunable and the answer over the remaining shards is bit-identical
// to full scatter. Everything here works on true (triangle-inequality)
// distances, which each point type derives from its encoded keys; distances
// that are not metrics (cosine) must not be given a pruner.
package metricindex

import (
	"fmt"
	"math"

	"distknn/internal/points"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// Clustering is the result of a k-center run: the anchor (center) point
// index per cluster, each point's cluster, and the cluster sizes. Clusters
// may be empty when the dataset holds duplicate points (two identical
// anchors tie every point toward the lower cluster).
type Clustering struct {
	Anchors []int // per cluster: index of its anchor point
	Assign  []int // per point: its cluster
	Sizes   []int // per cluster: member count
}

// KCenter clusters pts into k clusters with the Gonzalez farthest-first
// traversal: the first anchor is drawn from the seed, every further anchor
// is the point farthest from all chosen anchors, and each point joins its
// nearest anchor. All comparisons happen on the metric's encoded keys
// (total-order uint64s) with index-order tie-breaks, so the clustering is a
// deterministic function of (pts, k, seed) — every node of a cluster
// recomputes the identical partition from the shared seed, which is what
// lets anchor-sharded deployments stay bit-identical across restarts and
// re-joins.
func KCenter[P any](pts []P, metric points.Metric[P], k int, seed uint64) Clustering {
	n := len(pts)
	if k > n {
		k = n
	}
	cl := Clustering{
		Anchors: make([]int, 0, k),
		Assign:  make([]int, n),
		Sizes:   make([]int, k),
	}
	if n == 0 || k == 0 {
		return cl
	}
	first := int(xrand.NewStream(seed, 0).Uint64N(uint64(n)))
	cl.Anchors = append(cl.Anchors, first)
	// minDist[i] is the encoded distance from point i to its nearest chosen
	// anchor; Assign tracks which anchor that is.
	minDist := make([]uint64, n)
	for i := range pts {
		minDist[i] = metric(pts[i], pts[first])
	}
	for len(cl.Anchors) < k {
		far := 0
		for i := 1; i < n; i++ {
			if minDist[i] > minDist[far] {
				far = i
			}
		}
		a := len(cl.Anchors)
		cl.Anchors = append(cl.Anchors, far)
		for i := range pts {
			if d := metric(pts[i], pts[far]); d < minDist[i] {
				minDist[i] = d
				cl.Assign[i] = a
			}
		}
	}
	for _, c := range cl.Assign {
		cl.Sizes[c]++
	}
	return cl
}

// ApproxMedoid returns the index of an approximate medoid of pts: among a
// deterministic strided sample of up to 16 candidates, the one whose
// farthest point is nearest (ties toward the earlier candidate). It is the
// center a node falls back to when its shard carries no explicit anchor —
// O(16·n) metric calls, paid once at shard load.
func ApproxMedoid[P any](pts []P, metric points.Metric[P]) int {
	n := len(pts)
	if n == 0 {
		return -1
	}
	stride := n / 16
	if stride < 1 {
		stride = 1
	}
	best, bestRadius := -1, uint64(0)
	for c := 0; c < n; c += stride {
		var radius uint64
		for i := range pts {
			if d := metric(pts[c], pts[i]); d > radius {
				radius = d
			}
		}
		if best == -1 || radius < bestRadius {
			best, bestRadius = c, radius
		}
	}
	return best
}

// Radius returns the true-distance radius of pts around center: the maximum
// keyDist-decoded metric distance from the center to any point (0 for an
// empty shard).
func Radius[P any](pts []P, center P, metric points.Metric[P], keyDist func(uint64) float64) float64 {
	var r float64
	for i := range pts {
		if d := keyDist(metric(center, pts[i])); d > r {
			r = d
		}
	}
	return r
}

// admitSlack is the relative safety margin of the admission test. The exact
// admission condition d(q,c) ≤ ub + r is computed on float64 distances that
// each carry a few ulps of rounding (metric accumulation, sqrt decode,
// uint64→float64 conversion, ~1e-16 relative each); the margin is seven
// orders of magnitude wider than the accumulated error, so a boundary-tied
// shard is always admitted — an extra admission costs one redundant node
// contact, a wrong pruning would change answers.
const admitSlack = 1e-9

// Admit reports whether a shard with the given centroid distance and radius
// may hold one of the ℓ nearest neighbors of a query whose ℓ-th best
// distance is bounded by ub. It is conservative: any shard that could
// intersect the query ball is admitted (including every shard when ub is
// +Inf or any input is NaN); only shards provably outside it are refused.
func Admit(centerDist, radius, ub float64) bool {
	if math.IsInf(ub, 1) {
		return true
	}
	bound := ub + radius
	if math.IsNaN(centerDist) || math.IsNaN(bound) {
		return true
	}
	return centerDist <= bound+admitSlack*(bound+centerDist)
}

// AdmitSub runs the admission test for one shard against a whole batch: it
// returns, in ascending order, the batch indices i for which the shard may
// hold one of the ℓ nearest neighbors of point i — Admit over the point's
// centroid distance centerDist[i] and its per-point upper bound ub[i] —
// skipping points whose mask entry is true (already sent to the shard by an
// earlier wave). A nil mask skips nothing. The result is the shard's
// sub-batch of a pruned batch dispatch; an empty result means the shard is
// provably irrelevant to every remaining point and is not contacted at all.
func AdmitSub(centerDist, ub []float64, radius float64, mask []bool) []int {
	var sub []int
	for i := range centerDist {
		if mask != nil && mask[i] {
			continue
		}
		if Admit(centerDist[i], radius, ub[i]) {
			sub = append(sub, i)
		}
	}
	return sub
}

// WirePruner gives a frontend the metric-space geometry of one served point
// type, over wire encodings: it decodes query and centroid points with the
// type's codec, measures their true distance, and converts encoded distance
// keys back to true distances. It implements the transport's Pruner
// interface without the transport learning what a point is.
type WirePruner[P any] struct {
	// Codec decodes the wire encoding of the served point type.
	Codec wire.PointCodec[P]
	// Metric is the type's encoded-distance metric.
	Metric points.Metric[P]
	// Key converts an encoded distance key to the true metric distance
	// (e.g. sqrt of the decoded squared L2 distance). The true distances
	// must satisfy the triangle inequality.
	Key func(uint64) float64
	// Compat validates that a query point is comparable to a centroid
	// (e.g. equal dimensions); nil means always comparable.
	Compat func(q, c P) error
}

// CenterDist returns the true metric distance between an encoded query
// point and an encoded shard centroid.
func (p *WirePruner[P]) CenterDist(query, center []byte) (float64, error) {
	q, err := p.Codec.Decode(query)
	if err != nil {
		return 0, fmt.Errorf("metricindex: query point: %w", err)
	}
	c, err := p.Codec.Decode(center)
	if err != nil {
		return 0, fmt.Errorf("metricindex: shard centroid: %w", err)
	}
	if p.Compat != nil {
		if err := p.Compat(q, c); err != nil {
			return 0, fmt.Errorf("metricindex: %w", err)
		}
	}
	return p.Key(p.Metric(q, c)), nil
}

// KeyDist converts one encoded distance key to the true metric distance it
// encodes.
func (p *WirePruner[P]) KeyDist(dist uint64) float64 { return p.Key(dist) }
