package metricindex

import (
	"math"
	"testing"

	"distknn/internal/keys"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

func TestKCenterDeterministicPartition(t *testing.T) {
	set := points.GenUniformScalars(xrand.NewStream(9, 0), 500, points.PaperDomain)
	a := KCenter(set.Pts, points.ScalarMetric, 5, 123)
	b := KCenter(set.Pts, points.ScalarMetric, 5, 123)
	if len(a.Anchors) != 5 || len(a.Assign) != 500 {
		t.Fatalf("clustering shape: %d anchors, %d assignments", len(a.Anchors), len(a.Assign))
	}
	for i := range a.Anchors {
		if a.Anchors[i] != b.Anchors[i] {
			t.Fatalf("anchor %d differs across identical runs: %d != %d", i, a.Anchors[i], b.Anchors[i])
		}
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs across identical runs", i)
		}
	}
	total := 0
	for _, s := range a.Sizes {
		total += s
	}
	if total != 500 {
		t.Fatalf("cluster sizes sum to %d, want 500", total)
	}
}

// Every point must sit in the cluster of its nearest anchor (ties toward
// the earlier-picked anchor) — the invariant the radius summaries and the
// admission proof both lean on.
func TestKCenterAssignsNearestAnchor(t *testing.T) {
	set := points.GenUniformScalars(xrand.NewStream(4, 1), 300, points.PaperDomain)
	cl := KCenter(set.Pts, points.ScalarMetric, 7, 55)
	for i, c := range cl.Assign {
		got := points.ScalarMetric(set.Pts[i], set.Pts[cl.Anchors[c]])
		for a := range cl.Anchors {
			d := points.ScalarMetric(set.Pts[i], set.Pts[cl.Anchors[a]])
			if d < got || (d == got && a < c) {
				t.Fatalf("point %d assigned to cluster %d (dist %d) but anchor %d is nearer (dist %d)", i, c, got, a, d)
			}
		}
	}
}

func TestKCenterSmallInputs(t *testing.T) {
	if cl := KCenter(nil, points.ScalarMetric, 3, 1); len(cl.Anchors) != 0 {
		t.Fatalf("empty input produced %d anchors", len(cl.Anchors))
	}
	pts := []points.Scalar{10, 20}
	cl := KCenter(pts, points.ScalarMetric, 5, 1)
	if len(cl.Anchors) != 2 {
		t.Fatalf("k > n should clamp anchors to n: got %d", len(cl.Anchors))
	}
}

func TestApproxMedoidAndRadius(t *testing.T) {
	pts := []points.Scalar{0, 10, 20, 30, 100}
	keyDist := func(d uint64) float64 { return float64(d) }
	m := ApproxMedoid(pts, points.ScalarMetric)
	if m < 0 || m >= len(pts) {
		t.Fatalf("medoid index %d out of range", m)
	}
	// With ≤16 points every point is a candidate, so the exact 1-median of
	// the max-distance objective must win: 30 (radius 70) beats 0 (100),
	// 10 (90), 20 (80) and 100 (100).
	if pts[m] != 30 {
		t.Fatalf("medoid %d, want 30", pts[m])
	}
	if r := Radius(pts, pts[m], points.ScalarMetric, keyDist); r != 70 {
		t.Fatalf("radius %g, want 70", r)
	}
	if ApproxMedoid(nil, points.ScalarMetric) != -1 {
		t.Fatal("empty medoid should be -1")
	}
	if r := Radius(nil, points.Scalar(0), points.ScalarMetric, keyDist); r != 0 {
		t.Fatalf("empty radius %g, want 0", r)
	}
}

func TestAdmit(t *testing.T) {
	cases := []struct {
		centerDist, radius, ub float64
		want                   bool
	}{
		{centerDist: 5, radius: 2, ub: 4, want: true},    // 5 ≤ 4+2
		{centerDist: 6, radius: 2, ub: 4, want: true},    // exactly on the boundary
		{centerDist: 6.1, radius: 2, ub: 4, want: false}, // provably outside
		{centerDist: 1e12, radius: 0, ub: 0, want: false},
		{centerDist: 1e12, radius: 0, ub: math.Inf(1), want: true}, // no bound yet
		{centerDist: math.NaN(), radius: 1, ub: 1, want: true},     // conservative
	}
	for i, c := range cases {
		if got := Admit(c.centerDist, c.radius, c.ub); got != c.want {
			t.Errorf("case %d: Admit(%g, %g, %g) = %v, want %v", i, c.centerDist, c.radius, c.ub, got, c.want)
		}
	}
	// The slack must admit a bound that differs only by float rounding.
	if !Admit(0.1+0.2, 0.1, 0.2) {
		t.Error("rounding-level overshoot must still admit")
	}
}

// The end-to-end pruning property on the package's own pieces: for a
// clustered dataset, prune shards against a correct upper bound and verify
// that the surviving shards hold the entire exact top-ℓ.
func TestPruningPreservesTopL(t *testing.T) {
	const n, k, l = 2000, 8, 17
	set, _ := points.GenGaussianClusters(xrand.NewStream(7, 0), n, 3, 6, 0.03)
	keyDist := func(d uint64) float64 { return math.Sqrt(keys.DecodeFloat(d)) }
	cl := KCenter(set.Pts, points.L2, k, 99)

	type shard struct {
		members []int
		center  points.Vector
		radius  float64
	}
	shards := make([]shard, k)
	for c := range shards {
		shards[c].center = set.Pts[cl.Anchors[c]]
	}
	for i, c := range cl.Assign {
		shards[c].members = append(shards[c].members, i)
	}
	for c := range shards {
		var r float64
		for _, i := range shards[c].members {
			if d := keyDist(points.L2(shards[c].center, set.Pts[i])); d > r {
				r = d
			}
		}
		shards[c].radius = r
	}

	totalPruned := 0
	for qi := 0; qi < 50; qi++ {
		q := points.GenUniformVectors(xrand.NewStream(100+uint64(qi), 0), 1, 3).Pts[0]
		exact := set.BruteKNN(q, l)
		ub := keyDist(exact[len(exact)-1].Key.Dist)
		admitted := make(map[int]bool, k)
		pruned := 0
		for c := range shards {
			if Admit(keyDist(points.L2(q, shards[c].center)), shards[c].radius, ub) {
				admitted[c] = true
			} else {
				pruned++
			}
		}
		for _, it := range exact {
			idx := int(it.Key.ID - 1) // BruteKNN ran over IDs 1..n in order
			if !admitted[cl.Assign[idx]] {
				t.Fatalf("query %d: exact neighbor %v lives in pruned shard %d", qi, it.Key, cl.Assign[idx])
			}
		}
		totalPruned += pruned
	}
	if totalPruned == 0 {
		t.Fatal("tightly clustered data should prune at least one shard across 50 queries")
	}
}
