// Package xrand provides the deterministic randomness plumbing shared by the
// simulator and the algorithms.
//
// The k-machine model assumes every machine has a private source of true
// random bits. For reproducible experiments each machine instead gets an
// independent PCG stream whose seed is derived from a single experiment seed
// via SplitMix64, the standard way to expand one seed into many uncorrelated
// ones. Two machines (or two repetitions) therefore never share a stream, but
// rerunning an experiment with the same seed replays it bit-for-bit.
package xrand

import (
	"math/rand/v2"
)

// SplitMix64 advances the classic splitmix64 generator one step from state x
// and returns the output. It is used only for seed derivation.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed expands (seed, stream) into a new 64-bit seed. Distinct stream
// indices yield (with overwhelming probability) distinct, uncorrelated seeds.
func DeriveSeed(seed uint64, stream uint64) uint64 {
	return SplitMix64(seed ^ SplitMix64(stream))
}

// New returns a deterministic *rand.Rand for the given seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, SplitMix64(seed)))
}

// NewStream returns the RNG for stream index `stream` of experiment `seed`.
// Machine i of a simulation uses NewStream(seed, i).
func NewStream(seed, stream uint64) *rand.Rand {
	return New(DeriveSeed(seed, stream))
}

// WeightedChoice draws an index in [0, len(weights)) with probability
// proportional to weights[i]. It is the primitive behind Algorithm 1's
// "pick machine i with probability n_i / s". Zero-weight entries are never
// chosen. It panics if all weights are zero or the slice is empty, because
// the calling protocol guarantees at least one point remains in range.
func WeightedChoice(rng *rand.Rand, weights []int64) int {
	var total int64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with no positive weight")
	}
	x := rng.Int64N(total)
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	// Unreachable: x < total implies a bucket was hit.
	panic("xrand: WeightedChoice fell through")
}

// SampleWithoutReplacement returns m distinct indices drawn uniformly from
// [0, n). If m >= n it returns all n indices. The partial Fisher–Yates runs
// in O(m) extra space and O(m) time beyond the index map.
func SampleWithoutReplacement(rng *rand.Rand, n, m int) []int {
	if m >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Sparse Fisher–Yates: swap[i] records the value displaced into slot i.
	swap := make(map[int]int, m)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		j := i + rng.IntN(n-i)
		vi, ok := swap[i]
		if !ok {
			vi = i
		}
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swap[j] = vi
	}
	return out
}
