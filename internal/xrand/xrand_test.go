package xrand

import (
	"math"
	"testing"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of splitmix64 seeded with 0 and 1
	// (first output of the sequence), from the public-domain reference
	// implementation by Sebastiano Vigna.
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := SplitMix64(1); got == SplitMix64(0) {
		t.Errorf("SplitMix64(1) must differ from SplitMix64(0)")
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	seen := make(map[uint64]uint64)
	for stream := uint64(0); stream < 10000; stream++ {
		s := DeriveSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: streams %d and %d both map to %#x", prev, stream, s)
		}
		seen[s] = stream
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(7, 3)
	b := NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,stream) must replay identically at draw %d", i)
		}
	}
	c := NewStream(7, 4)
	same := true
	d := NewStream(7, 3)
	for i := 0; i < 16; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
		}
	}
	if same {
		t.Errorf("different streams produced identical prefixes")
	}
}

func TestWeightedChoiceRespectsZeroWeights(t *testing.T) {
	rng := New(1)
	weights := []int64{0, 5, 0, 3, 0}
	for i := 0; i < 1000; i++ {
		got := WeightedChoice(rng, weights)
		if got != 1 && got != 3 {
			t.Fatalf("WeightedChoice selected zero-weight index %d", got)
		}
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	rng := New(99)
	weights := []int64{1, 2, 3, 4}
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	total := int64(10)
	for i, w := range weights {
		want := float64(w) / float64(total)
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}

func TestWeightedChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for all-zero weights")
		}
	}()
	WeightedChoice(New(1), []int64{0, 0})
}

func TestWeightedChoicePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for negative weight")
		}
	}()
	WeightedChoice(New(1), []int64{3, -1})
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	rng := New(5)
	for trial := 0; trial < 100; trial++ {
		n, m := 50, 20
		got := SampleWithoutReplacement(rng, n, m)
		if len(got) != m {
			t.Fatalf("got %d samples, want %d", len(got), m)
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("sample %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementAllWhenMTooBig(t *testing.T) {
	got := SampleWithoutReplacement(New(1), 5, 10)
	if len(got) != 5 {
		t.Fatalf("expected all 5 indices, got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("expected identity permutation for m>=n, got %v", got)
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each index should appear with probability m/n.
	rng := New(123)
	n, m := 10, 3
	counts := make([]int, n)
	const trials = 60000
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(rng, n, m) {
			counts[v]++
		}
	}
	want := float64(m) / float64(n)
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}
