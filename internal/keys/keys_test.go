package keys

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyLessOrdersByDistanceFirst(t *testing.T) {
	a := Key{Dist: 1, ID: 100}
	b := Key{Dist: 2, ID: 1}
	if !a.Less(b) {
		t.Fatalf("expected %v < %v", a, b)
	}
	if b.Less(a) {
		t.Fatalf("expected !(%v < %v)", b, a)
	}
}

func TestKeyLessBreaksTiesByID(t *testing.T) {
	a := Key{Dist: 7, ID: 3}
	b := Key{Dist: 7, ID: 9}
	if !a.Less(b) {
		t.Fatalf("expected %v < %v by ID tie-break", a, b)
	}
	if a.Less(a) {
		t.Fatalf("Less must be irreflexive")
	}
}

func TestKeyCompareConsistentWithLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{1, 1}, Key{1, 1}, 0},
		{Key{1, 1}, Key{1, 2}, -1},
		{Key{2, 1}, Key{1, 9}, 1},
		{MinKey, MaxKey, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyLessEq(t *testing.T) {
	a := Key{Dist: 5, ID: 5}
	if !a.LessEq(a) {
		t.Fatalf("LessEq must be reflexive")
	}
	if !MinKey.LessEq(a) || !a.LessEq(MaxKey) {
		t.Fatalf("sentinels must bound all keys")
	}
}

// Property: Less is a strict total order (trichotomy + transitivity on
// random triples).
func TestKeyOrderProperties(t *testing.T) {
	trichotomy := func(a, b Key) bool {
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(trichotomy, nil); err != nil {
		t.Errorf("trichotomy violated: %v", err)
	}
	transitive := func(a, b, c Key) bool {
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Errorf("transitivity violated: %v", err)
	}
}

func TestEncodeFloatRejectsInvalid(t *testing.T) {
	if _, err := EncodeFloat(math.NaN()); err == nil {
		t.Errorf("EncodeFloat(NaN) should fail")
	}
	if _, err := EncodeFloat(-1e-9); err == nil {
		t.Errorf("EncodeFloat(negative) should fail")
	}
}

func TestEncodeFloatSpecialValues(t *testing.T) {
	zero, err := EncodeFloat(0)
	if err != nil {
		t.Fatalf("EncodeFloat(0): %v", err)
	}
	if zero != 0 {
		t.Errorf("EncodeFloat(0) = %d, want 0", zero)
	}
	inf, err := EncodeFloat(math.Inf(1))
	if err != nil {
		t.Fatalf("EncodeFloat(+Inf): %v", err)
	}
	big, _ := EncodeFloat(math.MaxFloat64)
	if inf <= big {
		t.Errorf("+Inf must encode above MaxFloat64: %d <= %d", inf, big)
	}
}

// Property: the float encoding preserves order for arbitrary non-negative
// pairs and round-trips exactly.
func TestEncodeFloatOrderPreserving(t *testing.T) {
	prop := func(x, y float64) bool {
		x, y = math.Abs(x), math.Abs(y)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		ex := MustEncodeFloat(x)
		ey := MustEncodeFloat(y)
		if DecodeFloat(ex) != x || DecodeFloat(ey) != y {
			return false
		}
		return (x < y) == (ex < ey) && (x == y) == (ex == ey)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("order preservation violated: %v", err)
	}
}

func TestEncodeFloatSortedSliceStaysSorted(t *testing.T) {
	ds := []float64{0, 1e-300, 1e-10, 0.5, 1, 1.0000001, 2, 1e10, math.MaxFloat64, math.Inf(1)}
	if !sort.Float64sAreSorted(ds[:len(ds)-1]) {
		t.Fatalf("test fixture must be sorted")
	}
	var prev uint64
	for i, d := range ds {
		u := MustEncodeFloat(d)
		if i > 0 && u <= prev {
			t.Fatalf("encoding not strictly increasing at %g: %d <= %d", d, u, prev)
		}
		prev = u
	}
}

func TestMustEncodeFloatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustEncodeFloat(NaN) must panic")
		}
	}()
	MustEncodeFloat(math.NaN())
}

func TestEncodeUintIdentity(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 32, math.MaxUint64} {
		if EncodeUint(v) != v {
			t.Errorf("EncodeUint(%d) != %d", v, v)
		}
	}
}
