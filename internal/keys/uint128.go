package keys

import "math/bits"

// A Key is also a 128-bit unsigned integer (Dist in the high word, ID in the
// low word); the lexicographic order on keys is exactly the integer order.
// The helpers below give the binary-search selection baseline the arithmetic
// it needs to bisect the key space.

// Midpoint returns lo + (hi−lo)/2 in 128-bit arithmetic. It requires
// lo ≤ hi; the result m satisfies lo ≤ m < hi whenever lo < hi.
func Midpoint(lo, hi Key) Key {
	if hi.Less(lo) {
		panic("keys: Midpoint with hi < lo")
	}
	// diff = hi − lo
	dLo, borrow := bits.Sub64(hi.ID, lo.ID, 0)
	dHi, _ := bits.Sub64(hi.Dist, lo.Dist, borrow)
	// half = diff >> 1
	hLo := dLo>>1 | dHi<<63
	hHi := dHi >> 1
	// m = lo + half
	mLo, carry := bits.Add64(lo.ID, hLo, 0)
	mHi, _ := bits.Add64(lo.Dist, hHi, carry)
	return Key{Dist: mHi, ID: mLo}
}

// Inc returns k + 1 in 128-bit arithmetic, saturating at MaxKey.
func Inc(k Key) Key {
	if k == MaxKey {
		return MaxKey
	}
	lo, carry := bits.Add64(k.ID, 1, 0)
	hi, _ := bits.Add64(k.Dist, 0, carry)
	return Key{Dist: hi, ID: lo}
}
