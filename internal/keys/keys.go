// Package keys defines the totally ordered comparison universe used by every
// algorithm in this repository.
//
// The paper's algorithms are comparison-based: machines never exchange raw
// (possibly high-dimensional) points, only O(log n)-bit values. A value is a
// Key — the pair (distance to the query, point ID). Distances are encoded as
// uint64 in an order-preserving way, and IDs break ties between points at
// equal distance (Section 2 of the paper: "choosing unique IDs also takes
// care of non-distinct points"). Keys compare lexicographically, so the key
// order is a strict total order even when many points are equidistant from
// the query.
package keys

import (
	"fmt"
	"math"
)

// Key is the (distance, id) pair the distributed algorithms select over.
// Dist is an order-preserving encoding of the true distance (see EncodeFloat
// and EncodeUint); ID is unique across the whole input set.
type Key struct {
	Dist uint64
	ID   uint64
}

// Less reports whether a orders strictly before b, comparing by distance and
// breaking ties by ID.
func (a Key) Less(b Key) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// LessEq reports a ≤ b in the lexicographic key order.
func (a Key) LessEq(b Key) bool { return !b.Less(a) }

// Compare returns -1, 0 or +1 as a orders before, equal to, or after b.
func (a Key) Compare(b Key) int {
	switch {
	case a.Less(b):
		return -1
	case b.Less(a):
		return 1
	default:
		return 0
	}
}

// String renders the key for traces and error messages.
func (a Key) String() string { return fmt.Sprintf("(d=%d,id=%d)", a.Dist, a.ID) }

// MinKey and MaxKey are the extreme values of the key order. They are used to
// initialize search boundaries; no real point may use ID 0 together with
// distance 0, and no real point may carry MaxKey, so both sentinels compare
// strictly against every realizable key in practice.
var (
	MinKey = Key{Dist: 0, ID: 0}
	MaxKey = Key{Dist: math.MaxUint64, ID: math.MaxUint64}
)

// EncodeFloat maps a non-negative float64 distance to a uint64 such that the
// numeric order of distances equals the integer order of the encodings.
//
// For non-negative IEEE-754 doubles the raw bit pattern is already monotonic
// (sign bit 0, exponent then mantissa in decreasing significance), so the
// encoding is simply the bit pattern. NaN is rejected because it has no place
// in a total order; negative inputs are rejected because metrics are
// non-negative by definition.
func EncodeFloat(d float64) (uint64, error) {
	if math.IsNaN(d) {
		return 0, fmt.Errorf("keys: cannot encode NaN distance")
	}
	if d < 0 {
		return 0, fmt.Errorf("keys: cannot encode negative distance %g", d)
	}
	return math.Float64bits(d), nil
}

// MustEncodeFloat is EncodeFloat for distances already known to be valid
// (e.g. produced by one of the points.Metric implementations). It panics on
// invalid input, which would indicate a bug in the metric, not user error.
func MustEncodeFloat(d float64) uint64 {
	u, err := EncodeFloat(d)
	if err != nil {
		panic(err)
	}
	return u
}

// DecodeFloat inverts EncodeFloat.
func DecodeFloat(u uint64) float64 { return math.Float64frombits(u) }

// EncodeUint encodes an integer distance (e.g. |p−q| over scalar points, or a
// Hamming distance). The identity is spelled out so call sites document that
// the value enters the key order.
func EncodeUint(d uint64) uint64 { return d }
