package keys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMidpointBasic(t *testing.T) {
	cases := []struct {
		lo, hi, want Key
	}{
		{Key{0, 0}, Key{0, 10}, Key{0, 5}},
		{Key{0, 0}, Key{0, 1}, Key{0, 0}},
		{Key{5, 5}, Key{5, 5}, Key{5, 5}},
		// Crossing the 64-bit boundary: (0, 2^64−1) .. (1, 1): diff = 2,
		// half = 1, mid = (1, 0).
		{Key{0, math.MaxUint64}, Key{1, 1}, Key{1, 0}},
		{MinKey, MaxKey, Key{math.MaxUint64 >> 1, math.MaxUint64}},
	}
	for _, c := range cases {
		if got := Midpoint(c.lo, c.hi); got != c.want {
			t.Errorf("Midpoint(%v,%v) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestMidpointPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Midpoint(hi<lo) must panic")
		}
	}()
	Midpoint(Key{1, 0}, Key{0, 0})
}

// Property: lo ≤ mid < hi for lo < hi, which is what binary search needs to
// make progress.
func TestMidpointBounds(t *testing.T) {
	prop := func(a, b Key) bool {
		lo, hi := a, b
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		if lo == hi {
			return Midpoint(lo, hi) == lo
		}
		m := Midpoint(lo, hi)
		return lo.LessEq(m) && m.Less(hi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("midpoint bounds violated: %v", err)
	}
}

func TestInc(t *testing.T) {
	if got := Inc(Key{0, 5}); got != (Key{0, 6}) {
		t.Errorf("Inc = %v", got)
	}
	if got := Inc(Key{0, math.MaxUint64}); got != (Key{1, 0}) {
		t.Errorf("Inc carry = %v", got)
	}
	if got := Inc(MaxKey); got != MaxKey {
		t.Errorf("Inc must saturate at MaxKey, got %v", got)
	}
}

// Property: Inc produces the immediate successor (nothing sits strictly
// between k and Inc(k)).
func TestIncSuccessor(t *testing.T) {
	prop := func(k, x Key) bool {
		n := Inc(k)
		if k == MaxKey {
			return n == MaxKey
		}
		if !k.Less(n) {
			return false
		}
		// No x with k < x < n.
		return !(k.Less(x) && x.Less(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("Inc successor property violated: %v", err)
	}
}
