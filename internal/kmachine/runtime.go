package kmachine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"distknn/internal/xrand"
)

// ErrClosed is returned by Runtime and Session methods after Close.
var ErrClosed = errors.New("kmachine: runtime closed")

// DefaultMaxIdleWorlds is the idle-world retention bound used when
// Config.MaxIdleWorlds is zero: enough to serve a healthy steady-state
// concurrency without letting a one-time burst pin k·burst goroutines
// forever.
const DefaultMaxIdleWorlds = 16

// Runtime is a persistent deployment of the k-machine simulator: the machine
// goroutines are spawned once and stay alive between runs, so a long-lived
// cluster serving a stream of queries pays the goroutine start-up cost only
// once instead of k spawns per query.
//
// A Runtime multiplexes any number of concurrent runs. Internally it keeps a
// pool of "worlds" — each world is one set of k resident machine goroutines
// plus the synchronous-round engine — and leases a free world to each run.
// Every run gets a fresh link-capacity timeline and its own Metrics, so
// concurrent runs are fully isolated from one another: they share nothing but
// the goroutine pool. The pool grows to the peak concurrency actually seen;
// after a burst, at most Config.MaxIdleWorlds worlds are retained for reuse
// and the rest are torn down.
//
// Execute and ExecuteSeeded lease a world for a single run. A Session
// (from NewSession) pins one world across several runs, which a caller with
// a run sequence (e.g. a query batch) can use to avoid pool round-trips.
//
// Close shuts the resident goroutines down. It is safe to call concurrently
// with in-flight runs: those runs finish normally and their worlds are torn
// down on release.
type Runtime struct {
	cfg Config

	mu     sync.Mutex
	idle   []*world
	closed bool
}

// NewRuntime validates cfg and starts a runtime with one resident world.
// cfg.Seed is only the default for Execute; per-run seeds come from
// ExecuteSeeded.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmachine: k must be >= 1, got %d", cfg.K)
	}
	rt := &Runtime{cfg: cfg}
	rt.idle = append(rt.idle, newWorld(cfg.K))
	return rt, nil
}

// K returns the number of machines per run.
func (rt *Runtime) K() int { return rt.cfg.K }

// Closed reports whether Close has been called.
func (rt *Runtime) Closed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

// Execute runs prog on every machine using the runtime's configured seed.
func (rt *Runtime) Execute(prog Program) (*Metrics, error) {
	return rt.ExecuteSeeded(rt.cfg.Seed, prog)
}

// ExecuteSeeded runs prog on every machine with a run-specific seed driving
// GUIDs and the machines' private random streams. Concurrent calls run in
// parallel on separate worlds.
func (rt *Runtime) ExecuteSeeded(seed uint64, prog Program) (*Metrics, error) {
	progs := make([]Program, rt.cfg.K)
	for i := range progs {
		progs[i] = prog
	}
	return rt.ExecutePrograms(seed, progs)
}

// ExecutePrograms runs progs[i] on machine i with a run-specific seed.
func (rt *Runtime) ExecutePrograms(seed uint64, progs []Program) (*Metrics, error) {
	w, err := rt.acquire()
	if err != nil {
		return nil, err
	}
	defer rt.release(w)
	return w.run(rt.cfg, seed, progs)
}

// NewSession leases one world for a sequence of runs. The session's runs
// execute on the same resident goroutines; distinct sessions run concurrently.
// Close the session to return the world to the pool.
func (rt *Runtime) NewSession() (*Session, error) {
	w, err := rt.acquire()
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt, w: w}, nil
}

// Close tears down every idle world and marks the runtime closed. Worlds
// still leased to in-flight runs are torn down when those runs complete.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	idle := rt.idle
	rt.idle = nil
	rt.mu.Unlock()
	for _, w := range idle {
		w.shutdown()
	}
}

func (rt *Runtime) acquire() (*world, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(rt.idle); n > 0 {
		w := rt.idle[n-1]
		rt.idle = rt.idle[:n-1]
		rt.mu.Unlock()
		return w, nil
	}
	rt.mu.Unlock()
	// Spawn outside the lock: during a burst, pool growth is the moment
	// concurrency matters most, and the new world isn't shared yet.
	return newWorld(rt.cfg.K), nil
}

func (rt *Runtime) release(w *world) {
	maxIdle := rt.cfg.MaxIdleWorlds
	if maxIdle == 0 {
		maxIdle = DefaultMaxIdleWorlds
	}
	rt.mu.Lock()
	if rt.closed || (maxIdle > 0 && len(rt.idle) >= maxIdle) {
		rt.mu.Unlock()
		w.shutdown()
		return
	}
	rt.idle = append(rt.idle, w)
	rt.mu.Unlock()
}

// Session is an exclusive lease on one world of a Runtime: a sequence of runs
// that reuses the same live machine goroutines with per-run isolated state.
// A Session serializes its own runs; use one Session per in-flight query.
// Methods must not be called concurrently on the same Session.
type Session struct {
	rt     *Runtime
	w      *world
	closed bool
}

// Execute runs prog on every machine of the session's world.
func (s *Session) Execute(seed uint64, prog Program) (*Metrics, error) {
	progs := make([]Program, s.rt.cfg.K)
	for i := range progs {
		progs[i] = prog
	}
	return s.ExecutePrograms(seed, progs)
}

// ExecutePrograms runs progs[i] on machine i of the session's world. It
// honors both the session's own Close and the runtime's: a session leased
// before Runtime.Close stops accepting runs the moment the runtime closes
// (its world is torn down when the session releases it).
func (s *Session) ExecutePrograms(seed uint64, progs []Program) (*Metrics, error) {
	if s.closed || s.rt.Closed() {
		return nil, ErrClosed
	}
	return s.w.run(s.rt.cfg, seed, progs)
}

// Close returns the session's world to the runtime's pool.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.rt.release(s.w)
}

// world is one set of k resident machine goroutines plus the synchronous
// engine. A world executes one run at a time; the Runtime's pool provides
// concurrency by leasing distinct worlds.
type world struct {
	k    int
	jobs []chan job
}

// job hands one run's per-machine environment and program to a resident
// goroutine.
type job struct {
	m    *Machine
	prog Program
}

// newWorld spawns the k resident goroutines. Each loops forever: receive a
// job, run the program to completion (normal return, error, panic, or
// engine-initiated cancellation all end in a halt report), wait for the next.
func newWorld(k int) *world {
	w := &world{k: k, jobs: make([]chan job, k)}
	for i := range w.jobs {
		ch := make(chan job)
		w.jobs[i] = ch
		go func() {
			for j := range ch {
				runProgram(j.m, j.prog)
			}
		}()
	}
	return w
}

// shutdown ends the resident goroutines. The world must be idle.
func (w *world) shutdown() {
	for _, ch := range w.jobs {
		close(ch)
	}
}

// run executes one synchronous-round run on the world's resident goroutines.
// All per-run state — machines, link timelines, metrics — is fresh, so runs
// are independent and a run replays bit-for-bit given the same seed (and
// identically to a one-shot Run with that seed).
func (w *world) run(cfg Config, seed uint64, progs []Program) (*Metrics, error) {
	k := w.k
	if len(progs) != k {
		return nil, fmt.Errorf("kmachine: %d programs for %d machines", len(progs), k)
	}
	bandwidth := cfg.BandwidthBytes
	if bandwidth == 0 {
		bandwidth = DefaultBandwidth
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	reports := make(chan report, k)
	machines := make([]*Machine, k)
	for i := 0; i < k; i++ {
		machines[i] = &Machine{
			id:      i,
			k:       k,
			guid:    xrand.DeriveSeed(seed, uint64(i)+(1<<32)),
			rng:     xrand.NewStream(seed, uint64(i)),
			resume:  make(chan []Message),
			reports: reports,
			measure: cfg.MeasureCompute,
		}
	}
	for i := 0; i < k; i++ {
		w.jobs[i] <- job{m: machines[i], prog: progs[i]}
	}

	metrics := &Metrics{
		SentMessages:     make([]int64, k),
		SentBytes:        make([]int64, k),
		ComputeByMachine: make([]time.Duration, k),
	}
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := k

	// linkCursor[from*k+to] is the absolute byte offset on the link's
	// capacity timeline (round t carries bytes [(t-1)·B, t·B)).
	linkCursor := make([]int64, k*k)
	inTransit := make(map[int][]Message) // delivery round -> messages
	var firstErr error

	cancelAll := func() {
		for i, a := range alive {
			if a {
				close(machines[i].resume)
			}
		}
		// Each cancelled machine emits exactly one final halt report.
		for i, a := range alive {
			if a {
				<-reports
				alive[i] = false
			}
		}
		aliveCount = 0
	}

	for r := 0; ; r++ {
		if r > maxRounds {
			cancelAll()
			return metrics, ErrMaxRounds
		}
		// Collect one report per alive machine for round r.
		var roundMaxCompute time.Duration
		pending := aliveCount
		collected := make([]report, 0, pending)
		for pending > 0 {
			rep := <-reports
			collected = append(collected, rep)
			pending--
		}
		// Process in machine order for determinism.
		sort.Slice(collected, func(a, b int) bool { return collected[a].id < collected[b].id })
		for _, rep := range collected {
			if rep.compute > roundMaxCompute {
				roundMaxCompute = rep.compute
			}
			metrics.TotalCompute += rep.compute
			metrics.ComputeByMachine[rep.id] += rep.compute
			for _, msg := range rep.sends {
				size := int64(len(msg.Payload) + MessageOverheadBytes)
				metrics.Messages++
				metrics.Bytes += size
				metrics.SentMessages[msg.From]++
				metrics.SentBytes[msg.From] += size
				deliverAt := r + 1
				if bandwidth > 0 {
					link := msg.From*k + msg.To
					start := linkCursor[link]
					if floor := int64(r) * int64(bandwidth); start < floor {
						start = floor
					}
					end := start + size
					linkCursor[link] = end
					deliverAt = int((end + int64(bandwidth) - 1) / int64(bandwidth))
				}
				inTransit[deliverAt] = append(inTransit[deliverAt], msg)
			}
			if rep.halted {
				alive[rep.id] = false
				aliveCount--
				if rep.err != nil && firstErr == nil {
					firstErr = fmt.Errorf("machine %d: %w", rep.id, rep.err)
				}
			}
		}
		metrics.CriticalCompute += roundMaxCompute
		metrics.Rounds = r

		if firstErr != nil {
			cancelAll()
			break
		}
		if aliveCount == 0 {
			break
		}

		// Deliver round r+1's messages and release the machines.
		delivered := inTransit[r+1]
		delete(inTransit, r+1)
		inboxes := make(map[int][]Message)
		for _, msg := range delivered {
			if !alive[msg.To] {
				metrics.Dangling++
				continue
			}
			inboxes[msg.To] = append(inboxes[msg.To], msg)
		}
		for i := 0; i < k; i++ {
			if alive[i] {
				machines[i].resume <- inboxes[i]
			}
		}
	}

	//knnlint:allow detsource -- commutative integer count over undelivered inboxes; order cannot affect the sum
	for _, msgs := range inTransit {
		metrics.Dangling += len(msgs)
	}
	return metrics, firstErr
}
