package kmachine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// echoProg has every machine broadcast its ID and collect everyone else's.
func echoProg(m Env) error {
	m.Broadcast([]byte{byte(m.ID())})
	m.EndRound()
	got := m.Gather(m.K() - 1)
	if len(got) != m.K()-1 {
		return fmt.Errorf("machine %d got %d messages", m.ID(), len(got))
	}
	return nil
}

func TestRuntimeMatchesOneShotRun(t *testing.T) {
	cfg := Config{K: 6, Seed: 99}
	want, err := Run(cfg, echoProg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got, err := rt.Execute(echoProg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages || got.Bytes != want.Bytes {
		t.Errorf("runtime run %+v differs from one-shot %+v", got, want)
	}
}

func TestRuntimeSeedDeterminism(t *testing.T) {
	// The machines' private randomness must be driven by the per-run seed,
	// not by residual goroutine state: the same seed replays bit-for-bit
	// on a reused world, and distinct seeds diverge.
	rt, err := NewRuntime(Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	draw := func(seed uint64) uint64 {
		var got uint64
		progs := []Program{
			func(m Env) error {
				v := m.Rand().Uint64()
				m.Send(1, []byte{byte(v)})
				got = v
				return nil
			},
			func(m Env) error { m.WaitAny(); return nil },
		}
		if _, err := rt.ExecutePrograms(seed, progs); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b, c := draw(7), draw(7), draw(8)
	if a != b {
		t.Errorf("same seed drew %d then %d on the reused world", a, b)
	}
	if a == c {
		t.Errorf("distinct seeds drew the same value %d", a)
	}
}

func TestRuntimeMetricsResetBetweenRuns(t *testing.T) {
	rt, err := NewRuntime(Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	first, err := rt.ExecuteSeeded(1, echoProg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := rt.ExecuteSeeded(2, echoProg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Rounds != first.Rounds || second.Messages != first.Messages {
		t.Errorf("second run %+v accumulated state from first %+v", second, first)
	}
}

func TestRuntimeConcurrentRunsAreIsolated(t *testing.T) {
	// Each worker sends a distinct number of messages; a run's metrics must
	// see exactly its own traffic even with many runs in flight.
	rt, err := NewRuntime(Config{K: 2, Seed: 5, BandwidthBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := w + 1
			progs := []Program{
				func(m Env) error {
					for i := 0; i < n; i++ {
						m.Send(1, []byte{byte(i)})
					}
					return nil
				},
				func(m Env) error { m.Gather(n); return nil },
			}
			met, err := rt.ExecutePrograms(uint64(w), progs)
			if err != nil {
				errs[w] = err
				return
			}
			if met.Messages != int64(n) {
				errs[w] = fmt.Errorf("worker %d saw %d messages, want %d", w, met.Messages, n)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestRuntimeRecoversAfterProgramError(t *testing.T) {
	rt, err := NewRuntime(Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	boom := errors.New("boom")
	if _, err := rt.Execute(func(m Env) error {
		if m.ID() == 1 {
			return boom
		}
		m.WaitAny() // would block forever without cancellation
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The same world must be healthy for the next run.
	if _, err := rt.Execute(echoProg); err != nil {
		t.Fatalf("run after error: %v", err)
	}
	if _, err := rt.Execute(func(m Env) error { panic("exploded") }); err == nil {
		t.Fatal("panic not surfaced")
	}
	if _, err := rt.Execute(echoProg); err != nil {
		t.Fatalf("run after panic: %v", err)
	}
}

func TestRuntimeClose(t *testing.T) {
	rt, err := NewRuntime(Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent
	if _, err := rt.Execute(echoProg); !errors.Is(err, ErrClosed) {
		t.Errorf("Execute after Close: %v, want ErrClosed", err)
	}
	if _, err := rt.NewSession(); !errors.Is(err, ErrClosed) {
		t.Errorf("NewSession after Close: %v, want ErrClosed", err)
	}
}

func TestRuntimeCloseWithRunsInFlight(t *testing.T) {
	rt, err := NewRuntime(Config{K: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := rt.ExecutePrograms(1, []Program{
			func(m Env) error {
				close(started)
				<-release
				m.Send(1, []byte{1})
				return nil
			},
			func(m Env) error { m.WaitAny(); return nil },
		})
		done <- err
	}()
	<-started
	rt.Close() // must not disturb the in-flight run
	close(release)
	if err := <-done; err != nil {
		t.Errorf("in-flight run failed across Close: %v", err)
	}
}

func TestSessionReusesOneWorld(t *testing.T) {
	rt, err := NewRuntime(Config{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	s, err := rt.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		met, err := s.Execute(uint64(run), echoProg)
		if err != nil {
			t.Fatal(err)
		}
		if met.Messages != int64(4*3) {
			t.Errorf("run %d: %d messages", run, met.Messages)
		}
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Execute(1, echoProg); !errors.Is(err, ErrClosed) {
		t.Errorf("Execute on closed session: %v, want ErrClosed", err)
	}
}

func TestSessionObservesRuntimeClose(t *testing.T) {
	rt, err := NewRuntime(Config{K: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if _, err := s.Execute(1, echoProg); !errors.Is(err, ErrClosed) {
		t.Errorf("session Execute after runtime Close: %v, want ErrClosed", err)
	}
	s.Close() // releases the world, which the closed runtime tears down
}

func TestRuntimeIdlePoolIsBounded(t *testing.T) {
	rt, err := NewRuntime(Config{K: 2, Seed: 13, MaxIdleWorlds: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Hold 5 sessions at once (5 live worlds), then release them all; only
	// MaxIdleWorlds may stay pooled.
	sessions := make([]*Session, 5)
	for i := range sessions {
		if sessions[i], err = rt.NewSession(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sessions {
		s.Close()
	}
	rt.mu.Lock()
	idle := len(rt.idle)
	rt.mu.Unlock()
	if idle > 2 {
		t.Errorf("idle pool holds %d worlds, cap is 2", idle)
	}
	// The runtime keeps working after the reap.
	if _, err := rt.Execute(echoProg); err != nil {
		t.Fatal(err)
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Config{K: 0}); err == nil {
		t.Error("K=0 must fail")
	}
}

func BenchmarkOneShotRunPerQuery(b *testing.B) {
	// The cost the persistent runtime removes: k goroutine spawns + teardown
	// per run.
	cfg := Config{K: 16, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, echoProg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeExecutePerQuery(b *testing.B) {
	rt, err := NewRuntime(Config{K: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.ExecuteSeeded(uint64(i), echoProg); err != nil {
			b.Fatal(err)
		}
	}
}
