package kmachine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// haltAll is a program that ends immediately.
func haltAll(m Env) error { return nil }

func TestSilentProtocolZeroRounds(t *testing.T) {
	met, err := Run(Config{K: 4, Seed: 1}, haltAll)
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds != 0 || met.Messages != 0 || met.Bytes != 0 {
		t.Errorf("silent protocol: %+v", met)
	}
}

func TestRequestResponseIsTwoRounds(t *testing.T) {
	// Machine 0 queries machine 1 and waits for the reply; the model says
	// this costs exactly 2 rounds.
	progs := []Program{
		func(m Env) error {
			m.Send(1, []byte("ping"))
			m.EndRound()
			msgs := m.WaitAny()
			if string(msgs[0].Payload) != "pong" {
				return fmt.Errorf("got %q", msgs[0].Payload)
			}
			return nil
		},
		func(m Env) error {
			msgs := m.WaitAny()
			if string(msgs[0].Payload) != "ping" {
				return fmt.Errorf("got %q", msgs[0].Payload)
			}
			m.Send(0, []byte("pong"))
			return nil
		},
	}
	met, err := RunPrograms(Config{K: 2, Seed: 1}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds != 2 {
		t.Errorf("request-response took %d rounds, want 2", met.Rounds)
	}
	if met.Messages != 2 {
		t.Errorf("messages = %d, want 2", met.Messages)
	}
	if met.Dangling != 0 {
		t.Errorf("dangling = %d", met.Dangling)
	}
}

func TestBroadcastReachesEveryone(t *testing.T) {
	k := 8
	var mu sync.Mutex
	received := make([]int, k)
	prog := func(m Env) error {
		if m.ID() == 0 {
			m.Broadcast([]byte{42})
			return nil
		}
		msgs := m.WaitAny()
		mu.Lock()
		received[m.ID()] = len(msgs)
		mu.Unlock()
		if msgs[0].Payload[0] != 42 || msgs[0].From != 0 {
			return fmt.Errorf("bad broadcast %+v", msgs[0])
		}
		return nil
	}
	met, err := Run(Config{K: k, Seed: 2}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if met.Messages != int64(k-1) {
		t.Errorf("broadcast sent %d messages, want %d", met.Messages, k-1)
	}
	for i := 1; i < k; i++ {
		if received[i] != 1 {
			t.Errorf("machine %d received %d messages", i, received[i])
		}
	}
}

func TestBandwidthStretchesLargeMessage(t *testing.T) {
	// B = 16 bytes/round. A 56-byte payload + 8 overhead = 64 bytes
	// needs 4 rounds of link time: sent in round 0, delivered in round 4.
	payload := bytes.Repeat([]byte{1}, 56)
	var deliveredRound int
	progs := []Program{
		func(m Env) error {
			m.Send(1, payload)
			return nil
		},
		func(m Env) error {
			m.WaitAny()
			deliveredRound = m.Round()
			return nil
		},
	}
	met, err := RunPrograms(Config{K: 2, Seed: 3, BandwidthBytes: 16}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if deliveredRound != 4 {
		t.Errorf("64-byte message over B=16 delivered in round %d, want 4", deliveredRound)
	}
	if met.Bytes != 64 {
		t.Errorf("bytes = %d, want 64", met.Bytes)
	}
}

func TestBandwidthSharesRoundCapacity(t *testing.T) {
	// Two 8-byte payloads (16 bytes each with overhead) on one link fit a
	// 32-byte round together: both delivered in round 1.
	var got []int
	progs := []Program{
		func(m Env) error {
			m.Send(1, make([]byte, 8))
			m.Send(1, make([]byte, 8))
			return nil
		},
		func(m Env) error {
			msgs := m.Gather(2)
			got = append(got, m.Round(), len(msgs))
			return nil
		},
	}
	_, err := RunPrograms(Config{K: 2, Seed: 4, BandwidthBytes: 32}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("both messages should arrive in round 1: round=%d n=%d", got[0], got[1])
	}
}

func TestBandwidthQueueingIsLinear(t *testing.T) {
	// m messages of one key each over a single link must take Θ(m) rounds
	// at B = one message per round — the fact that makes the simple method
	// Θ(ℓ). Message = 16B payload + 8B overhead = 24 bytes.
	const m = 100
	progs := []Program{
		func(mc Env) error {
			for i := 0; i < m; i++ {
				mc.Send(1, make([]byte, 16))
			}
			return nil
		},
		func(mc Env) error {
			mc.Gather(m)
			return nil
		},
	}
	met, err := RunPrograms(Config{K: 2, Seed: 5, BandwidthBytes: 24}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds != m {
		t.Errorf("%d queued messages at 1/round took %d rounds, want %d", m, met.Rounds, m)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	var order []byte
	progs := []Program{
		func(m Env) error {
			for i := byte(0); i < 20; i++ {
				m.Send(1, []byte{i})
			}
			return nil
		},
		func(m Env) error {
			for _, msg := range m.Gather(20) {
				order = append(order, msg.Payload[0])
			}
			return nil
		},
	}
	if _, err := RunPrograms(Config{K: 2, Seed: 6, BandwidthBytes: 16}, progs); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != byte(i) {
			t.Fatalf("FIFO violated: position %d has %d", i, order[i])
		}
	}
}

func TestLinksAreIndependent(t *testing.T) {
	// Saturating link 0→1 must not delay link 0→2.
	var round2 int
	progs := []Program{
		func(m Env) error {
			m.Send(1, make([]byte, 1000)) // huge: many rounds on link 0→1
			m.Send(2, make([]byte, 4))    // tiny: next round on link 0→2
			return nil
		},
		func(m Env) error { m.WaitAny(); return nil },
		func(m Env) error {
			m.WaitAny()
			round2 = m.Round()
			return nil
		},
	}
	if _, err := RunPrograms(Config{K: 3, Seed: 7, BandwidthBytes: 16}, progs); err != nil {
		t.Fatal(err)
	}
	if round2 != 1 {
		t.Errorf("independent link delayed: delivered round %d, want 1", round2)
	}
}

func TestUnlimitedBandwidth(t *testing.T) {
	var round int
	progs := []Program{
		func(m Env) error {
			m.Send(1, make([]byte, 1<<20))
			return nil
		},
		func(m Env) error {
			m.WaitAny()
			round = m.Round()
			return nil
		},
	}
	if _, err := RunPrograms(Config{K: 2, Seed: 8, BandwidthBytes: -1}, progs); err != nil {
		t.Fatal(err)
	}
	if round != 1 {
		t.Errorf("unlimited bandwidth delivered in round %d, want 1", round)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	progs := []Program{
		func(m Env) error { return boom },
		func(m Env) error {
			m.WaitAny() // would block forever without cancellation
			return nil
		},
	}
	_, err := RunPrograms(Config{K: 2, Seed: 9}, progs)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestProgramPanicBecomesError(t *testing.T) {
	progs := []Program{
		func(m Env) error { panic("exploded") },
		func(m Env) error { m.WaitAny(); return nil },
	}
	_, err := RunPrograms(Config{K: 2, Seed: 10}, progs)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("exploded")) {
		t.Errorf("panic not surfaced: %v", err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := Run(Config{K: 2, Seed: 11}, func(m Env) error {
		m.Send(m.ID(), []byte{1})
		return nil
	})
	if err == nil {
		t.Errorf("self-send must be rejected")
	}
}

func TestOutOfRangeSendPanics(t *testing.T) {
	_, err := Run(Config{K: 2, Seed: 12}, func(m Env) error {
		m.Send(5, []byte{1})
		return nil
	})
	if err == nil {
		t.Errorf("out-of-range send must be rejected")
	}
}

func TestMaxRoundsDetectsLivelock(t *testing.T) {
	_, err := Run(Config{K: 2, Seed: 13, MaxRounds: 100}, func(m Env) error {
		for {
			m.EndRound()
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDanglingMessageToHaltedMachine(t *testing.T) {
	progs := []Program{
		func(m Env) error {
			m.EndRound() // round 1: machine 1 already halted
			m.Send(1, []byte{1})
			return nil
		},
		func(m Env) error { return nil },
	}
	met, err := RunPrograms(Config{K: 2, Seed: 14}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if met.Dangling != 1 {
		t.Errorf("dangling = %d, want 1", met.Dangling)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (string, *Metrics) {
		var transcript string
		progs := []Program{
			func(m Env) error {
				for i := 0; i < 5; i++ {
					v := m.Rand().Uint64N(1000)
					m.Send(1, []byte(fmt.Sprintf("%d", v)))
					m.EndRound()
				}
				return nil
			},
			func(m Env) error {
				for i := 0; i < 5; i++ {
					for _, msg := range m.Gather(1) {
						transcript += string(msg.Payload) + ","
					}
				}
				return nil
			},
		}
		met, err := RunPrograms(Config{K: 2, Seed: 42}, progs)
		if err != nil {
			t.Fatal(err)
		}
		return transcript, met
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 {
		t.Errorf("transcripts differ:\n%s\n%s", t1, t2)
	}
	if m1.Rounds != m2.Rounds || m1.Messages != m2.Messages || m1.Bytes != m2.Bytes {
		t.Errorf("metrics differ: %+v vs %+v", m1, m2)
	}
}

func TestGUIDsUniqueAndSeedDependent(t *testing.T) {
	collect := func(seed uint64) []uint64 {
		k := 32
		guids := make([]uint64, k)
		_, err := Run(Config{K: k, Seed: seed}, func(m Env) error {
			guids[m.ID()] = m.GUID()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return guids
	}
	a := collect(1)
	seen := make(map[uint64]bool)
	for _, g := range a {
		if seen[g] {
			t.Fatalf("GUID collision")
		}
		seen[g] = true
	}
	b := collect(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("GUIDs identical across seeds")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	k := 4
	draws := make([]uint64, k)
	_, err := Run(Config{K: k, Seed: 77}, func(m Env) error {
		draws[m.ID()] = m.Rand().Uint64()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if draws[i] == draws[j] {
				t.Errorf("machines %d and %d drew the same value", i, j)
			}
		}
	}
}

func TestPerMachineMetrics(t *testing.T) {
	progs := []Program{
		func(m Env) error {
			m.Send(1, make([]byte, 10))
			m.Send(1, make([]byte, 10))
			return nil
		},
		func(m Env) error { m.Gather(2); return nil },
	}
	met, err := RunPrograms(Config{K: 2, Seed: 15}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if met.SentMessages[0] != 2 || met.SentMessages[1] != 0 {
		t.Errorf("per-machine messages wrong: %v", met.SentMessages)
	}
	if met.SentBytes[0] != 2*(10+MessageOverheadBytes) {
		t.Errorf("per-machine bytes wrong: %v", met.SentBytes)
	}
}

func TestMeasureComputeAndModeledTime(t *testing.T) {
	met, err := Run(Config{K: 2, Seed: 16, MeasureCompute: true}, func(m Env) error {
		// Busy loop long enough to register on any clock.
		deadline := time.Now().Add(2 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.CriticalCompute < time.Millisecond {
		t.Errorf("CriticalCompute = %v, want >= 1ms", met.CriticalCompute)
	}
	if met.TotalCompute < met.CriticalCompute {
		t.Errorf("TotalCompute < CriticalCompute")
	}
	modeled := met.ModeledTime(CostModel{RoundLatency: time.Second})
	if modeled < met.CriticalCompute {
		t.Errorf("ModeledTime must include compute")
	}
}

func TestModeledTimeCountsRounds(t *testing.T) {
	m := &Metrics{Rounds: 10}
	got := m.ModeledTime(CostModel{RoundLatency: time.Millisecond})
	if got != 10*time.Millisecond {
		t.Errorf("ModeledTime = %v, want 10ms", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{K: 0}, haltAll); err == nil {
		t.Errorf("K=0 must fail")
	}
	if _, err := RunPrograms(Config{K: 2}, []Program{haltAll}); err == nil {
		t.Errorf("program count mismatch must fail")
	}
}

func TestManyMachinesParallelStress(t *testing.T) {
	// 64 machines, everyone talks to everyone once; checks the barrier
	// under real goroutine parallelism.
	k := 64
	prog := func(m Env) error {
		m.Broadcast([]byte{byte(m.ID())})
		m.EndRound()
		got := m.Gather(k - 1)
		seen := make(map[int]bool)
		for _, msg := range got {
			if int(msg.Payload[0]) != msg.From {
				return fmt.Errorf("corrupted payload")
			}
			seen[msg.From] = true
		}
		if len(seen) != k-1 {
			return fmt.Errorf("machine %d saw %d senders", m.ID(), len(seen))
		}
		return nil
	}
	met, err := Run(Config{K: k, Seed: 17, BandwidthBytes: -1}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if met.Messages != int64(k)*int64(k-1) {
		t.Errorf("messages = %d, want %d", met.Messages, k*(k-1))
	}
}

func TestRecvClearsInbox(t *testing.T) {
	progs := []Program{
		func(m Env) error {
			m.Send(1, []byte{1})
			return nil
		},
		func(m Env) error {
			m.EndRound()
			if got := m.Recv(); len(got) != 1 {
				return fmt.Errorf("first Recv got %d", len(got))
			}
			if got := m.Recv(); got != nil {
				return fmt.Errorf("second Recv must be nil")
			}
			return nil
		},
	}
	if _, err := RunPrograms(Config{K: 2, Seed: 18}, progs); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBarrierOverhead(b *testing.B) {
	// Measures simulator cost per (machine × round) with no traffic.
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{K: 16, Seed: uint64(i)}, func(m Env) error {
			for r := 0; r < 100; r++ {
				m.EndRound()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
