// Package kmachine simulates the k-machine model of Klauck, Nanongkai,
// Pandurangan and Robinson (SODA 2015), the model the paper's algorithms are
// designed and analyzed in.
//
// The model: k ≥ 2 machines, pairwise interconnected by bidirectional
// point-to-point links; computation proceeds in synchronous rounds; in each
// round a machine may send up to B bits over each incident link; local
// computation is free. The cost measures are the number of rounds and the
// number of messages.
//
// The simulator runs each machine as its own goroutine (real parallelism for
// local computation) and synchronizes rounds with a central barrier. Links
// carry a byte-granular capacity cursor: a message of s bytes sent in round r
// occupies the link's capacity timeline starting no earlier than round r+1
// and is delivered in the round during which its last byte crosses. Large
// payloads therefore stretch across ⌈s/B⌉ rounds — which is exactly how the
// "simple method" baseline comes to cost Θ(ℓ) rounds without any hand-coded
// penalty.
//
// Two execution styles are offered. Run and RunPrograms are one-shot: they
// spawn the machine goroutines, execute, and tear everything down. A Runtime
// keeps the goroutines resident between runs and leases isolated worlds to
// concurrent runs, which is what a long-lived cluster serving a query stream
// wants; see Runtime, Session.
package kmachine

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// MessageOverheadBytes models per-message framing (sender, recipient, length)
// charged against link bandwidth in addition to the payload.
const MessageOverheadBytes = 8

// DefaultBandwidth is the per-link capacity in bytes per round used when the
// config does not specify one: 64 bytes ≈ Θ(log n) machine words, enough for
// a constant number of keys per round as the model assumes.
const DefaultBandwidth = 64

// DefaultMaxRounds bounds a run so that a livelocked protocol fails loudly
// instead of hanging the process.
const DefaultMaxRounds = 1 << 22

// ErrMaxRounds is returned when a run exceeds its round budget.
var ErrMaxRounds = errors.New("kmachine: exceeded maximum rounds (livelock?)")

var errCancelled = errors.New("kmachine: run cancelled")

// Message is a payload in flight between two machines.
type Message struct {
	From, To int
	Payload  []byte
}

// Config parameterizes a simulation run.
type Config struct {
	// K is the number of machines (≥ 1; the model requires ≥ 2 but
	// single-machine runs are allowed for testing).
	K int
	// BandwidthBytes is B, the per-directed-link capacity in bytes per
	// round. 0 selects DefaultBandwidth; negative means unlimited.
	BandwidthBytes int
	// Seed drives every machine's private RNG (stream-split, so machines
	// are mutually independent but the run replays deterministically).
	Seed uint64
	// MaxRounds overrides DefaultMaxRounds when positive.
	MaxRounds int
	// MaxIdleWorlds bounds how many idle worlds a Runtime retains after
	// concurrent runs complete (each world holds K resident goroutines).
	// 0 selects DefaultMaxIdleWorlds; negative retains every world.
	MaxIdleWorlds int
	// MeasureCompute enables wall-clock measurement of local computation
	// (adds two time.Now calls per machine per round).
	MeasureCompute bool
}

// Metrics aggregates the cost of a run in the model's terms.
type Metrics struct {
	// Rounds is the number of synchronous rounds until every machine
	// halted (0 for a protocol that never communicates).
	Rounds int
	// Messages is the total number of point-to-point messages sent.
	Messages int64
	// Bytes is the total bytes sent, including per-message overhead.
	Bytes int64
	// Dangling counts messages that were still in flight, or addressed to
	// an already-halted machine, when the run ended. A correct protocol
	// leaves zero.
	Dangling int
	// CriticalCompute sums, over rounds, the maximum local computation
	// time across machines — the parallel critical path. Only populated
	// when Config.MeasureCompute is set.
	CriticalCompute time.Duration
	// TotalCompute sums all machines' local computation time.
	TotalCompute time.Duration
	// SentMessages and SentBytes break the totals down per machine.
	SentMessages []int64
	SentBytes    []int64
	// ComputeByMachine sums each machine's local computation time across
	// all rounds (populated with MeasureCompute). Its maximum is a
	// noise-robust estimate of the parallel compute path for workloads
	// dominated by one large step, since it avoids accumulating per-round
	// measurement jitter the way CriticalCompute does.
	ComputeByMachine []time.Duration
}

// MaxMachineCompute returns the largest per-machine total compute time.
func (m *Metrics) MaxMachineCompute() time.Duration {
	var max time.Duration
	for _, c := range m.ComputeByMachine {
		if c > max {
			max = c
		}
	}
	return max
}

// CostModel converts model metrics into an estimated wall-clock time on a
// real cluster, where every synchronous round costs a latency α (barrier +
// propagation). Bandwidth is already accounted in Rounds by the simulator.
type CostModel struct {
	RoundLatency time.Duration
}

// DefaultCostModel approximates a commodity cluster interconnect:
// 50µs per synchronous round (the paper's testbed was a 16-node
// InfiniBand-class cluster; MPI barrier plus small-message latencies are
// tens of microseconds).
var DefaultCostModel = CostModel{RoundLatency: 50 * time.Microsecond}

// ModeledTime estimates wall-clock time: rounds × α + parallel compute.
func (m *Metrics) ModeledTime(c CostModel) time.Duration {
	return time.Duration(m.Rounds)*c.RoundLatency + m.CriticalCompute
}

// Env is the execution environment a protocol sees: identity, private
// randomness, and synchronous-round messaging. The in-process simulator's
// *Machine implements it, and so does the TCP runtime's node, so every
// protocol in this repository runs unchanged on either.
type Env interface {
	// ID returns this machine's index in [0, K()).
	ID() int
	// K returns the number of machines.
	K() int
	// GUID returns this machine's globally unique random identifier.
	GUID() uint64
	// Rand returns this machine's private random stream.
	Rand() *rand.Rand
	// Round returns the current round number (starting at 0).
	Round() int
	// Send queues payload for the next round on the direct link to `to`.
	Send(to int, payload []byte)
	// Broadcast sends payload to every other machine.
	Broadcast(payload []byte)
	// Recv takes the messages delivered at the start of this round.
	Recv() []Message
	// EndRound commits sends and blocks until the next round starts.
	EndRound()
	// Gather advances rounds until n messages have been received.
	Gather(n int) []Message
	// WaitAny advances rounds until at least one message arrives.
	WaitAny() []Message
}

// Program is the code one machine executes. It runs on its own goroutine;
// the Env argument is its only window to the world. Programs written against
// Env run identically on the in-process simulator and the TCP runtime.
type Program func(m Env) error

// Machine is the per-machine execution environment handed to a Program.
// Methods must only be called from the program's own goroutine.
type Machine struct {
	id   int
	k    int
	guid uint64
	rng  *rand.Rand

	round   int
	inbox   []Message
	pending []Message

	resume  chan []Message
	reports chan<- report

	measure      bool
	computeStart time.Time
}

type report struct {
	id      int
	sends   []Message
	halted  bool
	err     error
	compute time.Duration
}

// ID returns this machine's index in [0, K).
func (m *Machine) ID() int { return m.id }

// K returns the number of machines.
func (m *Machine) K() int { return m.k }

// GUID returns this machine's globally unique random identifier. Machines in
// the k-machine model have unique IDs that are not, a priori, the integers
// 0..k−1; leader election operates on GUIDs.
func (m *Machine) GUID() uint64 { return m.guid }

// Rand returns this machine's private random stream.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// Round returns the current round number (starting at 0).
func (m *Machine) Round() int { return m.round }

// Send queues payload for delivery to machine `to` over the direct link.
// Delivery happens at the earliest in the next round, later if the link's
// bandwidth is saturated. Sending to self or out of range panics: that is a
// protocol bug, not an environmental condition.
func (m *Machine) Send(to int, payload []byte) {
	if to < 0 || to >= m.k {
		panic(fmt.Sprintf("kmachine: machine %d sending to out-of-range %d", m.id, to))
	}
	if to == m.id {
		panic(fmt.Sprintf("kmachine: machine %d sending to itself", m.id))
	}
	m.pending = append(m.pending, Message{From: m.id, To: to, Payload: payload})
}

// Broadcast sends payload to every other machine (k−1 messages).
func (m *Machine) Broadcast(payload []byte) {
	for to := 0; to < m.k; to++ {
		if to != m.id {
			m.Send(to, payload)
		}
	}
}

// Recv takes the messages delivered at the start of the current round. A
// second call in the same round returns nil.
func (m *Machine) Recv() []Message {
	in := m.inbox
	m.inbox = nil
	return in
}

// EndRound commits this round's sends and blocks until every machine has
// done the same; it returns at the start of the next round with the new
// inbox available via Recv.
func (m *Machine) EndRound() {
	var compute time.Duration
	if m.measure {
		//knnlint:allow detsource -- compute-time metric only: feeds Metrics reporting, never the epoch's answer
		compute = time.Since(m.computeStart)
	}
	m.reports <- report{id: m.id, sends: m.pending, compute: compute}
	m.pending = nil
	inbox, ok := <-m.resume
	if !ok {
		panic(errCancelled)
	}
	m.inbox = inbox
	m.round++
	if m.measure {
		//knnlint:allow detsource -- compute-time metric only: feeds Metrics reporting, never the epoch's answer
		m.computeStart = time.Now()
	}
}

// Gather advances rounds until at least n messages have been received
// (counting the current round's undelivered inbox) and returns them in
// arrival order. It is the leader's idiom for collecting staggered,
// bandwidth-queued replies.
func (m *Machine) Gather(n int) []Message {
	got := m.Recv()
	for len(got) < n {
		m.EndRound()
		got = append(got, m.Recv()...)
	}
	return got
}

// WaitAny advances rounds until at least one message arrives.
func (m *Machine) WaitAny() []Message { return m.Gather(1) }

// Run executes the same program on every machine. It is the one-shot
// compatibility path: a throwaway world is spawned for the run and torn down
// afterwards. Long-lived callers should hold a Runtime instead, which keeps
// the machine goroutines resident between runs.
func Run(cfg Config, prog Program) (*Metrics, error) {
	progs := make([]Program, cfg.K)
	for i := range progs {
		progs[i] = prog
	}
	return RunPrograms(cfg, progs)
}

// RunPrograms executes progs[i] on machine i and returns the run's metrics.
// The first program error (or panic) aborts the run and is returned. Like
// Run, it spins up a throwaway world; a Run and a Runtime execution with the
// same Config and seed replay identically.
func RunPrograms(cfg Config, progs []Program) (*Metrics, error) {
	k := cfg.K
	if k < 1 {
		return nil, fmt.Errorf("kmachine: k must be >= 1, got %d", k)
	}
	w := newWorld(k)
	defer w.shutdown()
	return w.run(cfg, cfg.Seed, progs)
}

func runProgram(m *Machine, prog Program) {
	var err error
	defer func() {
		var compute time.Duration
		if m.measure {
			//knnlint:allow detsource -- compute-time metric only: feeds Metrics reporting, never the epoch's answer
			compute = time.Since(m.computeStart)
		}
		if rec := recover(); rec != nil {
			if rec == errCancelled {
				// Engine-initiated shutdown; not a program error.
				err = nil
			} else {
				err = fmt.Errorf("panic: %v", rec)
			}
			// Sends made since the last EndRound are abandoned on
			// panic; report the halt so the engine can finish.
			m.reports <- report{id: m.id, halted: true, err: err, compute: compute}
			return
		}
		m.reports <- report{id: m.id, sends: m.pending, halted: true, err: err, compute: compute}
	}()
	if m.measure {
		//knnlint:allow detsource -- compute-time metric only: feeds Metrics reporting, never the epoch's answer
		m.computeStart = time.Now()
	}
	err = prog(m)
}
