// Package core implements the paper's primary contribution: distributed
// ℓ-nearest-neighbors in the k-machine model.
//
// Three query algorithms are provided. Each machine calls the same function
// with the items (distance key + label) of its local points for the query;
// all machines return the same boundary and metadata, plus their local share
// of the winning points.
//
//   - KNN — the paper's Algorithm 2, O(log ℓ) rounds w.h.p. (Theorem 2.4):
//     keep the local top-ℓ, sample 12·log ℓ of them to the leader, prune
//     everything above the sample of rank 21·log ℓ (with high probability at
//     most 11ℓ candidates survive, Lemma 2.3), then run Algorithm 1 on the
//     survivors.
//
//   - DirectKNN — Algorithm 1 applied to all ≤ kℓ local-top-ℓ candidates
//     without the sampling step; O(log ℓ + log k) rounds (Section 2.2).
//
//   - SimpleKNN — the practical baseline the paper's evaluation compares
//     against: every machine ships its entire local top-ℓ to the leader, who
//     merges and announces the boundary. Θ(ℓ) rounds under the bandwidth
//     constraint.
//
// The pruning step of Algorithm 2 is Monte Carlo: with probability ≤ 2/ℓ²
// the prune threshold lands below the true ℓ-th neighbor and fewer than ℓ
// candidates survive. Because survivors ≥ ℓ implies the answer is intact
// (the ℓ-th smallest key is then ≤ the threshold), a single count suffices to
// verify a run. ModeLasVegas (default) performs that check and falls back to
// DirectKNN's un-pruned selection when it fails, making the result exact
// always; ModeMonteCarlo reports ErrMonteCarloFailure instead, reproducing
// the paper's raw algorithm so the failure probability itself can be
// measured.
package core

import (
	"errors"
	"fmt"
	"math/bits"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/pq"
)

// ErrMonteCarloFailure is returned by every machine when a ModeMonteCarlo
// run prunes away part of the true answer (probability ≤ 2/ℓ²).
var ErrMonteCarloFailure = errors.New("core: sampling prune discarded part of the answer")

// Mode selects how Algorithm 2 treats a failed prune.
type Mode int

const (
	// ModeLasVegas verifies the prune and falls back to un-pruned
	// selection on failure: results are always exact.
	ModeLasVegas Mode = iota
	// ModeMonteCarlo runs the paper's algorithm as stated: a failed prune
	// aborts with ErrMonteCarloFailure.
	ModeMonteCarlo
)

// Default sampling constants from Lemma 2.3.
const (
	DefaultSampleFactor = 12
	DefaultCutFactor    = 21
)

// Config parameterizes a distributed ℓ-NN query.
type Config struct {
	// Leader is the elected leader's machine index.
	Leader int
	// L is ℓ: how many nearest neighbors to find. Must satisfy
	// 1 ≤ L ≤ total number of points.
	L int
	// SampleFactor and CutFactor override the Lemma 2.3 constants
	// (12·log ℓ samples per machine, prune at global sample rank
	// 21·log ℓ). Zero selects the defaults.
	SampleFactor int
	CutFactor    int
	// Mode selects Las Vegas (default) or Monte Carlo behaviour.
	Mode Mode
	// OnPrune, if non-nil, is invoked on the leader after the prune count
	// with the chosen threshold and the number of surviving candidates.
	OnPrune func(threshold keys.Key, survivors int64)
}

func (c Config) sampleFactor() int {
	if c.SampleFactor > 0 {
		return c.SampleFactor
	}
	return DefaultSampleFactor
}

func (c Config) cutFactor() int {
	if c.CutFactor > 0 {
		return c.CutFactor
	}
	return DefaultCutFactor
}

// Result is what every machine learns from a query.
type Result struct {
	// Winners are this machine's points among the global ℓ nearest, in
	// ascending key order.
	Winners []points.Item
	// Boundary is the key of the ℓ-th nearest neighbor; identical on all
	// machines.
	Boundary keys.Key
	// Iterations counts selection pivot steps (0 for SimpleKNN).
	Iterations int
	// Survivors is the number of candidates that survived Algorithm 2's
	// prune (0 for the other algorithms); identical on all machines.
	Survivors int64
	// FellBack reports that a Las Vegas run had to redo the selection
	// without pruning.
	FellBack bool
}

// Message kinds for the core protocols. They share the machines' links with
// dsel's kinds but never interleave with them: every phase fully completes
// (gathered by the leader) before the next begins.
const (
	kindSamples  = iota + 64 // worker → leader: |S_i| + sampled keys
	kindPrune                // leader → all: prune threshold r
	kindCount                // worker → leader: |{x ∈ S_i : x ≤ r}|
	kindProceed              // leader → all: usePruned flag + survivors
	kindAbort                // leader → all: Monte Carlo failure
	kindAllItems             // worker → leader: the entire local top-ℓ
	kindBoundary             // leader → all: final boundary (SimpleKNN)
	kindVotes                // worker → leader: label histogram
	kindVerdict              // leader → all: aggregated label
	kindSums                 // worker → leader: label sum + count
)

// topL returns the ≤ l smallest items — the paper's step 2: a machine with
// more than ℓ points keeps the ℓ closest to the query and discards the rest.
func topL(items []points.Item, l int) []points.Item {
	if l < 1 {
		return nil
	}
	if len(items) <= l {
		out := append([]points.Item(nil), items...)
		points.SortItems(out)
		return out
	}
	acc := pq.New(l, func(a, b points.Item) bool { return a.Key.Less(b.Key) })
	for _, it := range items {
		acc.Push(it)
	}
	return acc.Sorted()
}

// log2Ceil returns ⌈log₂(x)⌉ for x ≥ 1 (0 for x = 1).
func log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// sampleSize is the per-machine sample count: factor · ⌈log₂(ℓ+1)⌉, at
// least 1 so that ℓ = 1 still samples.
func sampleSize(l, factor int) int {
	n := factor * log2Ceil(l+1)
	if n < 1 {
		n = 1
	}
	return n
}

// filterItems returns the items with key ≤ bound, preserving order.
func filterItems(items []points.Item, bound keys.Key) []points.Item {
	var out []points.Item
	for _, it := range items {
		if it.Key.LessEq(bound) {
			out = append(out, it)
		}
	}
	return out
}

// itemKeys projects items to their keys.
func itemKeys(items []points.Item) []keys.Key {
	out := make([]keys.Key, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

func validateConfig(m kmachine.Env, cfg Config) error {
	if cfg.Leader < 0 || cfg.Leader >= m.K() {
		return fmt.Errorf("core: leader %d out of range [0,%d)", cfg.Leader, m.K())
	}
	if cfg.L < 1 {
		return fmt.Errorf("core: l must be >= 1, got %d", cfg.L)
	}
	return nil
}
