package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

type algoFunc func(m kmachine.Env, cfg Config, local []points.Item) (Result, error)

var algorithms = map[string]algoFunc{
	"knn":       KNN,
	"direct":    DirectKNN,
	"simple":    SimpleKNN,
	"saukas":    SaukasSongKNN,
	"binsearch": BinarySearchKNN,
}

// makeInstance builds a partitioned scalar instance and the per-machine item
// lists for a random query; it returns the items, the query and the global
// set for oracle computations.
func makeInstance(seed uint64, n, k int, strategy points.Partitioner) ([][]points.Item, points.Scalar, *points.Set[points.Scalar]) {
	rng := xrand.New(seed)
	global := points.GenUniformScalars(rng, n, points.PaperDomain)
	parts, err := points.Partition(global, k, strategy, rng)
	if err != nil {
		panic(err)
	}
	q := points.Scalar(rng.Uint64N(points.PaperDomain))
	locals := make([][]points.Item, k)
	for i, p := range parts {
		locals[i] = p.Items(q)
	}
	return locals, q, global
}

// runAlgo executes one algorithm over the instance and returns the
// agreed-upon result plus the union of winners and the metrics.
func runAlgo(t testing.TB, seed uint64, bandwidth int, locals [][]points.Item, cfg Config,
	algo algoFunc) (Result, []points.Item, *kmachine.Metrics) {
	t.Helper()
	k := len(locals)
	var mu sync.Mutex
	results := make([]Result, k)
	progs := make([]kmachine.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			res, err := algo(m, cfg, locals[i])
			if err != nil {
				return err
			}
			mu.Lock()
			results[i] = res
			mu.Unlock()
			return nil
		}
	}
	met, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: seed, BandwidthBytes: bandwidth}, progs)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var union []points.Item
	for i := 0; i < k; i++ {
		if results[i].Boundary != results[0].Boundary {
			t.Fatalf("machine %d boundary %v != %v", i, results[i].Boundary, results[0].Boundary)
		}
		if results[i].Survivors != results[0].Survivors || results[i].FellBack != results[0].FellBack {
			t.Fatalf("machines disagree on metadata: %+v vs %+v", results[i], results[0])
		}
		union = append(union, results[i].Winners...)
	}
	if met.Dangling != 0 {
		t.Fatalf("%d dangling messages", met.Dangling)
	}
	return results[0], union, met
}

// checkExactKNN verifies union equals the brute-force ℓ-NN exactly.
func checkExactKNN(t testing.TB, name string, union []points.Item, global *points.Set[points.Scalar],
	q points.Scalar, l int) {
	t.Helper()
	want := global.BruteKNN(q, l)
	if len(union) != len(want) {
		t.Fatalf("%s: %d winners, want %d", name, len(union), len(want))
	}
	wantSet := make(map[keys.Key]float64, len(want))
	for _, it := range want {
		wantSet[it.Key] = it.Label
	}
	for _, it := range union {
		label, ok := wantSet[it.Key]
		if !ok {
			t.Fatalf("%s: winner %v not in brute-force answer", name, it.Key)
		}
		if label != it.Label {
			t.Fatalf("%s: winner %v label %g, want %g", name, it.Key, it.Label, label)
		}
	}
}

func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	cfgs := []struct {
		n, k, l  int
		strategy points.Partitioner
	}{
		{200, 4, 10, points.PartitionRandom},
		{200, 4, 10, points.PartitionSorted},
		{200, 4, 10, points.PartitionSkewed},
		{500, 8, 100, points.PartitionRandom},
		{100, 16, 1, points.PartitionSorted},
		{64, 4, 64, points.PartitionRandom}, // l = n
		{50, 1, 10, points.PartitionRandom}, // k = 1
		{30, 15, 3, points.PartitionRandom}, // more machines than l
	}
	for name, algo := range algorithms {
		t.Run(name, func(t *testing.T) {
			for ci, c := range cfgs {
				locals, q, global := makeInstance(uint64(ci)+10, c.n, c.k, c.strategy)
				cfg := Config{Leader: 0, L: c.l}
				_, union, _ := runAlgo(t, uint64(ci), 0, locals, cfg, algo)
				checkExactKNN(t, fmt.Sprintf("%s cfg %d", name, ci), union, global, q, c.l)
			}
		})
	}
}

func TestKNNWinnersSortedAscending(t *testing.T) {
	locals, _, _ := makeInstance(5, 300, 4, points.PartitionRandom)
	res, _, _ := runAlgo(t, 5, 0, locals, Config{Leader: 0, L: 50}, KNN)
	for i := 1; i < len(res.Winners); i++ {
		if res.Winners[i].Key.Less(res.Winners[i-1].Key) {
			t.Fatalf("winners not sorted at %d", i)
		}
	}
}

func TestKNNSurvivorsBound(t *testing.T) {
	// Lemma 2.3: survivors ≤ 11ℓ w.h.p. Check across seeds; tolerate no
	// violations at these sizes (failure probability ≤ 2/ℓ²).
	for seed := uint64(0); seed < 10; seed++ {
		l := 64
		locals, _, _ := makeInstance(seed, 8192, 16, points.PartitionRandom)
		res, _, _ := runAlgo(t, seed, 0, locals, Config{Leader: 0, L: l}, KNN)
		if res.Survivors > int64(11*l) {
			t.Errorf("seed %d: %d survivors exceeds 11l=%d", seed, res.Survivors, 11*l)
		}
		if res.Survivors < int64(l) {
			t.Errorf("seed %d: %d survivors below l=%d yet no fallback?", seed, res.Survivors, l)
		}
		if res.FellBack {
			t.Errorf("seed %d: unexpected fallback", seed)
		}
	}
}

func TestKNNLasVegasFallbackStillExact(t *testing.T) {
	// CutFactor 0 is replaced by the default; force a hopeless prune with
	// SampleFactor/CutFactor = 1 and a tiny cut via custom config: cut
	// index 1 means "prune at the smallest sample", which almost surely
	// keeps < l candidates and triggers the fallback.
	locals, q, global := makeInstance(77, 1000, 8, points.PartitionRandom)
	l := 100
	cfg := Config{Leader: 0, L: l, SampleFactor: 1, CutFactor: 1}
	// With cut at rank 1·log2(l+1)=7 of ~8·7 samples, survivors ≈ 7·l/56
	// ≈ 0.12l < l: fallback expected. Run several seeds and require
	// exactness throughout; at least one must fall back.
	fellBack := false
	for seed := uint64(0); seed < 5; seed++ {
		res, union, _ := runAlgo(t, seed, 0, locals, cfg, KNN)
		checkExactKNN(t, "lasvegas", union, global, q, l)
		fellBack = fellBack || res.FellBack
	}
	if !fellBack {
		t.Errorf("expected at least one Las Vegas fallback with a rank-1 prune")
	}
}

func TestKNNMonteCarloFailureReported(t *testing.T) {
	locals, _, _ := makeInstance(78, 1000, 8, points.PartitionRandom)
	cfg := Config{Leader: 0, L: 100, SampleFactor: 1, CutFactor: 1, Mode: ModeMonteCarlo}
	k := len(locals)
	var mu sync.Mutex
	errs := make([]error, k)
	progs := make([]kmachine.Program, k)
	failures := 0
	for seed := uint64(0); seed < 5; seed++ {
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(m kmachine.Env) error {
				_, err := KNN(m, cfg, locals[i])
				mu.Lock()
				errs[i] = err
				mu.Unlock()
				return nil // swallow so every machine records its error
			}
		}
		if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: seed}, progs); err != nil {
			t.Fatalf("run: %v", err)
		}
		if errors.Is(errs[0], ErrMonteCarloFailure) {
			failures++
			for i := 1; i < k; i++ {
				if !errors.Is(errs[i], ErrMonteCarloFailure) {
					t.Fatalf("machine %d did not observe the MC failure: %v", i, errs[i])
				}
			}
		}
	}
	if failures == 0 {
		t.Errorf("rank-1 prune never failed in Monte Carlo mode — suspicious")
	}
}

func TestKNNRoundsBeatSimpleForLargeL(t *testing.T) {
	// The headline comparison: Algorithm 2 O(log l) rounds vs the simple
	// method Θ(l) rounds.
	locals, _, _ := makeInstance(9, 16384, 8, points.PartitionRandom)
	l := 1024
	_, _, metKNN := runAlgo(t, 9, 0, locals, Config{Leader: 0, L: l}, KNN)
	_, _, metSimple := runAlgo(t, 9, 0, locals, Config{Leader: 0, L: l}, SimpleKNN)
	if metKNN.Rounds*4 > metSimple.Rounds {
		t.Errorf("Algorithm 2 (%d rounds) not clearly faster than simple (%d rounds) at l=%d",
			metKNN.Rounds, metSimple.Rounds, l)
	}
}

func TestKNNRoundsGrowLogarithmicallyInL(t *testing.T) {
	rounds := func(l int) int {
		locals, _, _ := makeInstance(11, 16384, 8, points.PartitionRandom)
		_, _, met := runAlgo(t, 11, 0, locals, Config{Leader: 0, L: l}, KNN)
		return met.Rounds
	}
	r16, r1024 := rounds(16), rounds(1024)
	// l grew 64×; O(log l) predicts growth ≈ log(1024)/log(16) = 2.5×.
	// Allow up to 8× before flagging; Θ(l) growth would be ≈ 64×.
	if r1024 > 8*r16 {
		t.Errorf("rounds grew too fast: l=16→%d rounds, l=1024→%d rounds", r16, r1024)
	}
}

func TestKNNMessagesLinearInK(t *testing.T) {
	msgs := func(k int) int64 {
		locals, _, _ := makeInstance(13, 8192, k, points.PartitionRandom)
		_, _, met := runAlgo(t, 13, 0, locals, Config{Leader: 0, L: 128}, KNN)
		return met.Messages
	}
	m4, m16 := msgs(4), msgs(16)
	// 4× the machines should be ≈ 4× the messages (O(k log l)); flag at 10×.
	if m16 > 10*m4 {
		t.Errorf("messages superlinear in k: k=4→%d, k=16→%d", m4, m16)
	}
}

func TestLTooLargeFails(t *testing.T) {
	for name, algo := range algorithms {
		locals, _, _ := makeInstance(15, 50, 4, points.PartitionRandom)
		k := len(locals)
		progs := make([]kmachine.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(m kmachine.Env) error {
				_, err := algo(m, Config{Leader: 0, L: 51}, locals[i])
				return err
			}
		}
		if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: 1}, progs); err == nil {
			t.Errorf("%s: l > n must fail", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := kmachine.Run(kmachine.Config{K: 2, Seed: 1}, func(m kmachine.Env) error {
		_, err := KNN(m, Config{Leader: 5, L: 1}, nil)
		return err
	})
	if err == nil {
		t.Errorf("leader out of range must fail")
	}
	_, err = kmachine.Run(kmachine.Config{K: 2, Seed: 1}, func(m kmachine.Env) error {
		_, err := KNN(m, Config{Leader: 0, L: 0}, nil)
		return err
	})
	if err == nil {
		t.Errorf("l = 0 must fail")
	}
}

func TestClassifyMajority(t *testing.T) {
	// Winners with labels 1,1,2 → majority 1; distributed across machines.
	k := 3
	winners := [][]points.Item{
		{{Key: keys.Key{Dist: 1, ID: 1}, Label: 1}},
		{{Key: keys.Key{Dist: 2, ID: 2}, Label: 1}},
		{{Key: keys.Key{Dist: 3, ID: 3}, Label: 2}},
	}
	var mu sync.Mutex
	got := make([]float64, k)
	progs := make([]kmachine.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			label, err := Classify(m, 0, winners[i])
			if err != nil {
				return err
			}
			mu.Lock()
			got[i] = label
			mu.Unlock()
			return nil
		}
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: 1}, progs); err != nil {
		t.Fatal(err)
	}
	for i, label := range got {
		if label != 1 {
			t.Errorf("machine %d classified %g, want 1", i, label)
		}
	}
}

func TestClassifyTieBreaksLow(t *testing.T) {
	winners := [][]points.Item{
		{{Key: keys.Key{Dist: 1, ID: 1}, Label: 5}},
		{{Key: keys.Key{Dist: 2, ID: 2}, Label: 3}},
	}
	var label0 float64
	progs := []kmachine.Program{
		func(m kmachine.Env) error {
			l, err := Classify(m, 0, winners[0])
			label0 = l
			return err
		},
		func(m kmachine.Env) error {
			_, err := Classify(m, 0, winners[1])
			return err
		},
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: 2, Seed: 1}, progs); err != nil {
		t.Fatal(err)
	}
	if label0 != 3 {
		t.Errorf("tie broke to %g, want 3 (smallest label)", label0)
	}
}

func TestRegressMean(t *testing.T) {
	winners := [][]points.Item{
		{{Key: keys.Key{Dist: 1, ID: 1}, Label: 1}, {Key: keys.Key{Dist: 2, ID: 2}, Label: 2}},
		{{Key: keys.Key{Dist: 3, ID: 3}, Label: 6}},
		nil, // machine with no winners
	}
	k := 3
	var mu sync.Mutex
	got := make([]float64, k)
	progs := make([]kmachine.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			v, err := Regress(m, 0, winners[i])
			if err != nil {
				return err
			}
			mu.Lock()
			got[i] = v
			mu.Unlock()
			return nil
		}
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: 1}, progs); err != nil {
		t.Fatal(err)
	}
	want := 3.0
	for i, v := range got {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("machine %d regressed %g, want %g", i, v, want)
		}
	}
}

func TestEndToEndKNNThenClassify(t *testing.T) {
	// Full pipeline on clustered vector data: query near a cluster center
	// must classify as that cluster.
	rng := xrand.New(33)
	global, centers := points.GenGaussianClusters(rng, 600, 2, 3, 0.02)
	parts, err := points.Partition(global, 6, points.PartitionRandom, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := centers[1]
	locals := make([][]points.Item, 6)
	for i, p := range parts {
		locals[i] = p.Items(q)
	}
	var mu sync.Mutex
	labels := make([]float64, 6)
	progs := make([]kmachine.Program, 6)
	for i := 0; i < 6; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			res, err := KNN(m, Config{Leader: 0, L: 15}, locals[i])
			if err != nil {
				return err
			}
			label, err := Classify(m, 0, res.Winners)
			if err != nil {
				return err
			}
			mu.Lock()
			labels[i] = label
			mu.Unlock()
			return nil
		}
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: 6, Seed: 2}, progs); err != nil {
		t.Fatal(err)
	}
	for i, label := range labels {
		if label != 1 {
			t.Errorf("machine %d classified query at center 1 as %g", i, label)
		}
	}
}

func TestTopL(t *testing.T) {
	items := []points.Item{
		{Key: keys.Key{Dist: 5, ID: 1}},
		{Key: keys.Key{Dist: 1, ID: 2}},
		{Key: keys.Key{Dist: 3, ID: 3}},
	}
	got := topL(items, 2)
	if len(got) != 2 || got[0].Key.Dist != 1 || got[1].Key.Dist != 3 {
		t.Errorf("topL = %+v", got)
	}
	if got := topL(items, 10); len(got) != 3 {
		t.Errorf("topL with l>n kept %d", len(got))
	}
	if got := topL(items, 0); got != nil {
		t.Errorf("topL with l=0 must be nil")
	}
	// Input must not be reordered.
	if items[0].Key.Dist != 5 {
		t.Errorf("topL mutated input")
	}
}

func TestLog2CeilAndSampleSize(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := log2Ceil(x); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", x, got, want)
		}
	}
	if got := sampleSize(1, 12); got != 12 {
		t.Errorf("sampleSize(1) = %d, want 12", got)
	}
	if got := sampleSize(0, 12); got < 1 {
		t.Errorf("sampleSize must be >= 1")
	}
}

// Property: Las Vegas KNN is exact for arbitrary instances.
func TestKNNExactProperty(t *testing.T) {
	prop := func(seed uint64, rawN, rawK, rawL uint16) bool {
		n := int(rawN)%300 + 1
		k := int(rawK)%6 + 1
		l := int(rawL)%n + 1
		strategy := points.Partitioner(seed % 3)
		locals, q, global := makeInstance(seed, n, k, strategy)
		cfg := Config{Leader: int(seed % uint64(k)), L: l}
		_, union, _ := runAlgo(t, seed, 0, locals, cfg, KNN)
		want := global.BruteKNN(q, l)
		if len(union) != len(want) {
			return false
		}
		wantSet := make(map[keys.Key]bool)
		for _, it := range want {
			wantSet[it.Key] = true
		}
		for _, it := range union {
			if !wantSet[it.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("KNN exactness property failed: %v", err)
	}
}

// Oracle classification cross-check on scalar data.
func TestClassifyMatchesBruteForceVote(t *testing.T) {
	locals, q, global := makeInstance(44, 400, 5, points.PartitionRandom)
	l := 25
	var mu sync.Mutex
	var got float64
	progs := make([]kmachine.Program, 5)
	for i := 0; i < 5; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			res, err := KNN(m, Config{Leader: 0, L: l}, locals[i])
			if err != nil {
				return err
			}
			label, err := Classify(m, 0, res.Winners)
			if err != nil {
				return err
			}
			if m.ID() == 0 {
				mu.Lock()
				got = label
				mu.Unlock()
			}
			return nil
		}
	}
	if _, err := kmachine.RunPrograms(kmachine.Config{K: 5, Seed: 3}, progs); err != nil {
		t.Fatal(err)
	}
	// Brute-force majority vote.
	want := bruteMajority(global.BruteKNN(q, l))
	if got != want {
		t.Errorf("distributed classify %g, brute force %g", got, want)
	}
}

func bruteMajority(items []points.Item) float64 {
	hist := make(map[float64]int)
	for _, it := range items {
		hist[it.Label]++
	}
	labels := make([]float64, 0, len(hist))
	for label := range hist {
		labels = append(labels, label)
	}
	sort.Float64s(labels)
	best, bestCount := 0.0, -1
	for _, label := range labels {
		if hist[label] > bestCount {
			best, bestCount = label, hist[label]
		}
	}
	return best
}
