package core

import (
	"fmt"

	"distknn/internal/dsel"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/seqselect"
	"distknn/internal/wire"
)

// SimpleKNN runs the baseline the paper's evaluation compares against
// (Section 3): every machine finds its local ℓ nearest points and transfers
// all of them to the leader, which computes the answer among the ≤ kℓ
// candidates and announces the boundary. Under the B-bits-per-round link
// bound this costs Θ(ℓ) communication rounds — exponentially more than
// Algorithm 2's O(log ℓ).
func SimpleKNN(m kmachine.Env, cfg Config, local []points.Item) (Result, error) {
	if err := validateConfig(m, cfg); err != nil {
		return Result{}, err
	}
	s := topL(local, cfg.L)

	if m.ID() != cfg.Leader {
		var w wire.Writer
		w.U8(kindAllItems)
		w.Items(s)
		m.Send(cfg.Leader, w.Bytes())
		m.EndRound()
		// Await the boundary announcement.
		msg := m.Gather(1)[0]
		r := wire.NewReader(msg.Payload)
		if kind := r.U8(); kind != kindBoundary {
			return Result{}, fmt.Errorf("core: worker %d expected boundary, got kind %d", m.ID(), kind)
		}
		boundary := r.Key()
		if err := r.Err(); err != nil {
			return Result{}, fmt.Errorf("core: bad boundary message: %w", err)
		}
		return Result{Winners: sortedWinners(s, boundary), Boundary: boundary}, nil
	}

	// Leader: gather everyone's full top-ℓ and select locally.
	merged := itemKeys(s)
	if m.K() > 1 {
		m.EndRound()
		for _, msg := range m.Gather(m.K() - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != kindAllItems {
				return Result{}, fmt.Errorf("core: expected items from %d, got kind %d", msg.From, kind)
			}
			for _, it := range r.Items() {
				merged = append(merged, it.Key)
			}
			if err := r.Err(); err != nil {
				return Result{}, fmt.Errorf("core: bad items from %d: %w", msg.From, err)
			}
		}
	}
	if cfg.L > len(merged) {
		return Result{}, fmt.Errorf("core: l=%d exceeds the %d available points", cfg.L, len(merged))
	}
	boundary := seqselect.QuickSelect(merged, cfg.L, m.Rand())
	var w wire.Writer
	w.U8(kindBoundary)
	w.Key(boundary)
	m.Broadcast(w.Bytes())
	return Result{Winners: sortedWinners(s, boundary), Boundary: boundary}, nil
}

// DirectKNN computes ℓ-NN by running Algorithm 1 directly on all ≤ kℓ
// local-top-ℓ candidates, skipping Algorithm 2's sampling step. O(log ℓ +
// log k) rounds (Section 2.2) — the k-dependence is what the sampling
// removes. It is also the fallback selection of a Las Vegas KNN run.
func DirectKNN(m kmachine.Env, cfg Config, local []points.Item) (Result, error) {
	if err := validateConfig(m, cfg); err != nil {
		return Result{}, err
	}
	s := topL(local, cfg.L)
	sel, err := dsel.FindLSmallest(m, cfg.Leader, itemKeys(s), cfg.L, dsel.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Winners:    sortedWinners(s, sel.Boundary),
		Boundary:   sel.Boundary,
		Iterations: sel.Iterations,
	}, nil
}

// SaukasSongKNN computes ℓ-NN with the deterministic Saukas–Song
// weighted-median selection over the local-top-ℓ candidates — the strongest
// prior-work baseline (Section 1.4: O(log(kℓ)) rounds, deterministic).
func SaukasSongKNN(m kmachine.Env, cfg Config, local []points.Item) (Result, error) {
	if err := validateConfig(m, cfg); err != nil {
		return Result{}, err
	}
	s := topL(local, cfg.L)
	sel, err := dsel.SaukasSong(m, cfg.Leader, itemKeys(s), cfg.L)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Winners:    sortedWinners(s, sel.Boundary),
		Boundary:   sel.Boundary,
		Iterations: sel.Iterations,
	}, nil
}

// BinarySearchKNN computes ℓ-NN by bisecting the key domain ([3, 18] in the
// paper): Θ(domain bits) rounds regardless of n, k or ℓ.
func BinarySearchKNN(m kmachine.Env, cfg Config, local []points.Item) (Result, error) {
	if err := validateConfig(m, cfg); err != nil {
		return Result{}, err
	}
	s := topL(local, cfg.L)
	sel, err := dsel.BinarySearch(m, cfg.Leader, itemKeys(s), cfg.L)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Winners:    sortedWinners(s, sel.Boundary),
		Boundary:   sel.Boundary,
		Iterations: sel.Iterations,
	}, nil
}
