package core

import (
	"fmt"
	"sort"

	"distknn/internal/dsel"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// KNN runs the paper's Algorithm 2 on one machine. Every machine must call
// it with the items of its local points (distance keys to the shared query)
// and an identical Config. O(log ℓ) rounds and O(k·log ℓ) messages w.h.p.
func KNN(m kmachine.Env, cfg Config, local []points.Item) (Result, error) {
	if err := validateConfig(m, cfg); err != nil {
		return Result{}, err
	}
	// Step 2: keep only the ℓ closest local points.
	s := topL(local, cfg.L)

	// Step 3–4: sample 12·log ℓ of them to the leader, tagged with the
	// full local count so the leader can verify ℓ ≤ Σ|S_i| up front.
	nSamples := sampleSize(cfg.L, cfg.sampleFactor())
	sample := make([]keys.Key, 0, nSamples)
	for _, idx := range xrand.SampleWithoutReplacement(m.Rand(), len(s), nSamples) {
		sample = append(sample, s[idx].Key)
	}

	if m.ID() != cfg.Leader {
		var w wire.Writer
		w.U8(kindSamples)
		w.Varint(uint64(len(s)))
		w.Keys(sample)
		m.Send(cfg.Leader, w.Bytes())
		m.EndRound()
		return knnWorker(m, cfg, s)
	}
	return knnLeader(m, cfg, s, sample)
}

// knnLeader drives steps 4–9 on the leader.
func knnLeader(m kmachine.Env, cfg Config, s []points.Item, ownSample []keys.Key) (Result, error) {
	k := m.K()
	allSamples := ownSample
	total := int64(len(s))
	if k > 1 {
		m.EndRound()
		for _, msg := range m.Gather(k - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != kindSamples {
				return Result{}, fmt.Errorf("core: expected samples from %d, got kind %d", msg.From, kind)
			}
			total += int64(r.Varint())
			allSamples = append(allSamples, r.Keys()...)
			if err := r.Err(); err != nil {
				return Result{}, fmt.Errorf("core: bad samples from %d: %w", msg.From, err)
			}
		}
	}
	if int64(cfg.L) > total {
		return Result{}, fmt.Errorf("core: l=%d exceeds the %d available points", cfg.L, total)
	}

	// Step 5: r is the sample of global rank 21·log ℓ.
	sort.Slice(allSamples, func(a, b int) bool { return allSamples[a].Less(allSamples[b]) })
	cut := sampleSize(cfg.L, cfg.cutFactor())
	if cut > len(allSamples) {
		cut = len(allSamples)
	}
	threshold := allSamples[cut-1]

	// Step 6–7: broadcast r, gather surviving-candidate counts.
	var w wire.Writer
	w.U8(kindPrune)
	w.Key(threshold)
	m.Broadcast(w.Bytes())
	pruned := filterItems(s, threshold)
	survivors := int64(len(pruned))
	if k > 1 {
		m.EndRound()
		for _, msg := range m.Gather(k - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != kindCount {
				return Result{}, fmt.Errorf("core: expected prune count from %d, got kind %d", msg.From, kind)
			}
			survivors += int64(r.Varint())
			if err := r.Err(); err != nil {
				return Result{}, fmt.Errorf("core: bad prune count from %d: %w", msg.From, err)
			}
		}
	}
	if cfg.OnPrune != nil {
		cfg.OnPrune(threshold, survivors)
	}

	// Verification: survivors ≥ ℓ guarantees the true answer survived the
	// prune. Otherwise fall back (Las Vegas) or abort (Monte Carlo).
	usePruned := survivors >= int64(cfg.L)
	if !usePruned && cfg.Mode == ModeMonteCarlo {
		var w wire.Writer
		w.U8(kindAbort)
		m.Broadcast(w.Bytes())
		return Result{}, fmt.Errorf("%w (survivors %d < l %d)", ErrMonteCarloFailure, survivors, cfg.L)
	}
	var pw wire.Writer
	pw.U8(kindProceed)
	if usePruned {
		pw.U8(1)
	} else {
		pw.U8(0)
	}
	pw.Varint(uint64(survivors))
	m.Broadcast(pw.Bytes())

	// Step 9: Algorithm 1 over the surviving candidates.
	cand := pruned
	if !usePruned {
		cand = s
	}
	sel, err := dsel.FindLSmallest(m, cfg.Leader, itemKeys(cand), cfg.L, dsel.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Winners:    sortedWinners(s, sel.Boundary),
		Boundary:   sel.Boundary,
		Iterations: sel.Iterations,
		Survivors:  survivors,
		FellBack:   !usePruned,
	}, nil
}

// knnWorker answers the leader's prune phase, then hands over to the
// selection worker loop.
func knnWorker(m kmachine.Env, cfg Config, s []points.Item) (Result, error) {
	// Await the prune threshold.
	msg := m.Gather(1)[0]
	r := wire.NewReader(msg.Payload)
	if kind := r.U8(); kind != kindPrune {
		return Result{}, fmt.Errorf("core: worker %d expected prune, got kind %d", m.ID(), kind)
	}
	threshold := r.Key()
	if err := r.Err(); err != nil {
		return Result{}, fmt.Errorf("core: bad prune message: %w", err)
	}
	pruned := filterItems(s, threshold)
	var w wire.Writer
	w.U8(kindCount)
	w.Varint(uint64(len(pruned)))
	m.Send(cfg.Leader, w.Bytes())
	m.EndRound()

	// Await the proceed/abort decision.
	msg = m.Gather(1)[0]
	r = wire.NewReader(msg.Payload)
	switch kind := r.U8(); kind {
	case kindAbort:
		return Result{}, ErrMonteCarloFailure
	case kindProceed:
	default:
		return Result{}, fmt.Errorf("core: worker %d expected proceed, got kind %d", m.ID(), kind)
	}
	usePruned := r.U8() == 1
	survivors := int64(r.Varint())
	if err := r.Err(); err != nil {
		return Result{}, fmt.Errorf("core: bad proceed message: %w", err)
	}

	cand := pruned
	if !usePruned {
		cand = s
	}
	sel, err := dsel.FindLSmallest(m, cfg.Leader, itemKeys(cand), cfg.L, dsel.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Winners:    sortedWinners(s, sel.Boundary),
		Boundary:   sel.Boundary,
		Iterations: sel.Iterations,
		Survivors:  survivors,
		FellBack:   !usePruned,
	}, nil
}

// sortedWinners projects the local top-ℓ onto the final boundary in
// ascending key order.
func sortedWinners(s []points.Item, boundary keys.Key) []points.Item {
	out := filterItems(s, boundary)
	points.SortItems(out)
	return out
}
