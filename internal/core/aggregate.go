package core

import (
	"fmt"
	"sort"

	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/wire"
)

// Classify turns distributed ℓ-NN winners into a classification: the label
// held by the majority of the winning points (ties broken toward the
// smallest label). Every machine passes its local winners from a Result;
// every machine returns the same label. Costs 2 rounds and O(k) messages:
// each machine sends its local label histogram, the leader merges and
// broadcasts the verdict.
func Classify(m kmachine.Env, leader int, winners []points.Item) (float64, error) {
	hist := make(map[float64]int64, 4)
	for _, it := range winners {
		hist[it.Label]++
	}
	if m.ID() != leader {
		m.Send(leader, encodeVotes(hist))
		m.EndRound()
		msg := m.Gather(1)[0]
		r := wire.NewReader(msg.Payload)
		if kind := r.U8(); kind != kindVerdict {
			return 0, fmt.Errorf("core: expected verdict, got kind %d", kind)
		}
		label := r.F64()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("core: bad verdict: %w", err)
		}
		return label, nil
	}
	if m.K() > 1 {
		m.EndRound()
		for _, msg := range m.Gather(m.K() - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != kindVotes {
				return 0, fmt.Errorf("core: expected votes from %d, got kind %d", msg.From, kind)
			}
			n := int(r.Varint())
			for i := 0; i < n; i++ {
				label := r.F64()
				hist[label] += int64(r.Varint())
			}
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("core: bad votes from %d: %w", msg.From, err)
			}
		}
	}
	if len(hist) == 0 {
		return 0, fmt.Errorf("core: classify with no winners")
	}
	var best float64
	var bestCount int64 = -1
	labels := make([]float64, 0, len(hist))
	for label := range hist {
		labels = append(labels, label)
	}
	sort.Float64s(labels)
	for _, label := range labels {
		if hist[label] > bestCount {
			best, bestCount = label, hist[label]
		}
	}
	var w wire.Writer
	w.U8(kindVerdict)
	w.F64(best)
	m.Broadcast(w.Bytes())
	return best, nil
}

// Regress turns distributed ℓ-NN winners into a regression estimate: the
// mean label of the winning points. Every machine returns the same value.
// 2 rounds, O(k) messages.
func Regress(m kmachine.Env, leader int, winners []points.Item) (float64, error) {
	var sum float64
	var count int64
	for _, it := range winners {
		sum += it.Label
		count++
	}
	if m.ID() != leader {
		var w wire.Writer
		w.U8(kindSums)
		w.F64(sum)
		w.Varint(uint64(count))
		m.Send(leader, w.Bytes())
		m.EndRound()
		msg := m.Gather(1)[0]
		r := wire.NewReader(msg.Payload)
		if kind := r.U8(); kind != kindVerdict {
			return 0, fmt.Errorf("core: expected verdict, got kind %d", kind)
		}
		mean := r.F64()
		if err := r.Err(); err != nil {
			return 0, fmt.Errorf("core: bad verdict: %w", err)
		}
		return mean, nil
	}
	if m.K() > 1 {
		m.EndRound()
		for _, msg := range m.Gather(m.K() - 1) {
			r := wire.NewReader(msg.Payload)
			if kind := r.U8(); kind != kindSums {
				return 0, fmt.Errorf("core: expected sums from %d, got kind %d", msg.From, kind)
			}
			sum += r.F64()
			count += int64(r.Varint())
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("core: bad sums from %d: %w", msg.From, err)
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("core: regress with no winners")
	}
	mean := sum / float64(count)
	var w wire.Writer
	w.U8(kindVerdict)
	w.F64(mean)
	m.Broadcast(w.Bytes())
	return mean, nil
}

// encodeVotes serializes a label histogram with labels in ascending order
// for deterministic byte output.
func encodeVotes(hist map[float64]int64) []byte {
	labels := make([]float64, 0, len(hist))
	for label := range hist {
		labels = append(labels, label)
	}
	sort.Float64s(labels)
	var w wire.Writer
	w.U8(kindVotes)
	w.Varint(uint64(len(labels)))
	for _, label := range labels {
		w.F64(label)
		w.Varint(uint64(hist[label]))
	}
	return w.Bytes()
}
