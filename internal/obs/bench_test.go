package obs

import "testing"

// The query path records through these exact calls; all of them must
// stay 0 allocs/op (see TestHotPathAllocations for the hard gate).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1024)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(StartTimer())
	}
}

func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(8)
	for i := 0; i < 16; i++ { // warm every ring slot's seat slice
		sp := tr.Begin(uint64(i), 0, 1, false)
		sp.MarkSeat(0)
		sp.MarkSeat(1)
		sp.Finish()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(uint64(i), 1, 1, false)
		sp.MarkDispatched()
		sp.MarkSeat(0)
		sp.MarkSeat(1)
		sp.MarkCollated("", false)
		sp.Finish()
	}
}
