package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// SeatHealth reports one frontend seat for /healthz.
type SeatHealth struct {
	ID      int    `json:"id"`
	Present bool   `json:"present"`
	Gen     uint64 `json:"gen"`
	Cause   string `json:"cause,omitempty"`
}

// Health is the /healthz payload. OK is false while any seat is absent
// (a degraded window) or the cluster has not finished rendezvous;
// Detail says why, and Seats carries the per-seat breakdown.
type Health struct {
	OK     bool         `json:"ok"`
	Detail string       `json:"detail,omitempty"`
	Seats  []SeatHealth `json:"seats,omitempty"`
}

// AdminOptions configures the admin plane. Any field may be nil:
// a nil Metrics serves an empty snapshot, a nil Trace serves an empty
// span list, and a nil Health reports always-OK.
type AdminOptions struct {
	Metrics *Registry
	Trace   *Tracer
	Health  func() Health
}

// Admin is a running admin HTTP server.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// Handler builds the admin mux: /metrics (registry snapshot JSON),
// /healthz (200/503 with seat detail), /trace/recent (retained epoch
// spans), and /debug/pprof/*.
func Handler(o AdminOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if o.Metrics != nil {
			snap = o.Metrics.Snapshot()
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{OK: true}
		if o.Health != nil {
			h = o.Health()
		}
		code := http.StatusOK
		if !h.OK {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		spans := o.Trace.Recent()
		if spans == nil {
			spans = []SpanSnapshot{}
		}
		writeJSON(w, http.StatusOK, spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ServeAdmin starts the admin HTTP server on addr and serves until
// Close. The admin plane runs beside the query listener — it shares
// nothing with the wire protocol, so it cannot perturb epochs.
func ServeAdmin(addr string, o AdminOptions) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Admin{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin server down.
func (a *Admin) Close() error { return a.srv.Close() }
