package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 500, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Sum != 1+5+10+50+500+5000 {
		t.Fatalf("sum = %d", snap.Sum)
	}
	// Buckets: le=10 holds 3 (1,5,10), le=100 holds 1 (50),
	// le=1000 holds 1 (500), overflow (le=-1) holds 1 (5000).
	want := []BucketCount{{10, 3}, {100, 1}, {1000, 1}, {-1, 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
	if snap.P50 != 10 {
		t.Errorf("p50 = %d, want 10", snap.P50)
	}
	if snap.P99 != -1 {
		t.Errorf("p99 = %d, want -1 (overflow)", snap.P99)
	}
}

func TestRegistryFuncGauge(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.Func("f", func() int64 { return v })
	v++
	if got := r.Snapshot().Counters["f"]; got != 42 {
		t.Fatalf("func gauge = %d, want 42", got)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(9)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(first, second) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", first, second)
	}
	if !bytes.Contains(first, []byte(`"a":2`)) {
		t.Fatalf("snapshot JSON missing counter: %s", first)
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer(4)
	var sink bytes.Buffer
	tr.SetSink(&sink)

	sp := tr.Begin(7, 1, 3, false)
	sp.MarkDispatched()
	sp.MarkSeat(0)
	sp.MarkSeat(2)
	sp.MarkCollated("", false)
	sp.Finish()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(recent))
	}
	got := recent[0]
	if got.Epoch != 7 || got.Op != 1 || got.Batch != 3 || !got.Done {
		t.Fatalf("span = %+v", got)
	}
	if len(got.Seats) != 2 || got.Seats[0].Seat != 0 || got.Seats[1].Seat != 2 {
		t.Fatalf("seats = %+v", got.Seats)
	}
	if got.ReplyNS < got.CollateNS || got.CollateNS < got.DispatchNS {
		t.Fatalf("stage offsets out of order: %+v", got)
	}
	var fromSink SpanSnapshot
	if err := json.Unmarshal(sink.Bytes(), &fromSink); err != nil {
		t.Fatalf("sink line: %v (%q)", err, sink.String())
	}
	if fromSink.Epoch != 7 {
		t.Fatalf("sink span = %+v", fromSink)
	}
}

func TestTracerRingRecycles(t *testing.T) {
	tr := NewTracer(2)
	for epoch := uint64(0); epoch < 5; epoch++ {
		sp := tr.Begin(epoch, 0, 1, false)
		sp.MarkCollated("", false)
		sp.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent = %d spans, want 2", len(recent))
	}
	if recent[0].Epoch != 3 || recent[1].Epoch != 4 {
		t.Fatalf("retained epochs = %d, %d; want 3, 4", recent[0].Epoch, recent[1].Epoch)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(1, 0, 1, false)
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.MarkDispatched()
	sp.MarkSeat(0)
	sp.MarkCollated("x", true)
	sp.Finish()
	if tr.Recent() != nil {
		t.Fatal("nil tracer Recent must be nil")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", SizeBuckets)
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 70))
				sp := tr.Begin(uint64(i), 0, 1, false)
				sp.MarkSeat(0)
				sp.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			r.Snapshot()
			tr.Recent()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestHotPathAllocations is the non-perturbation gate: recording on the
// query path must not allocate.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	tr := NewTracer(8)
	// Warm the ring so every span slot owns a seat slice with capacity.
	for i := 0; i < 16; i++ {
		sp := tr.Begin(uint64(i), 0, 1, false)
		sp.MarkDispatched()
		sp.MarkSeat(0)
		sp.MarkSeat(1)
		sp.MarkCollated("", false)
		sp.Finish()
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(12345)
		h.ObserveSince(StartTimer())
	}); n != 0 {
		t.Fatalf("metric recording allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.Begin(9, 1, 1, false)
		sp.MarkDispatched()
		sp.MarkSeat(0)
		sp.MarkSeat(1)
		sp.MarkCollated("", false)
		sp.Finish() // no sink configured: no snapshot, no allocation
	}); n != 0 {
		t.Fatalf("span recording allocates %.1f/op, want 0", n)
	}
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("frontend_queries_total").Add(3)
	tr := NewTracer(4)
	sp := tr.Begin(1, 0, 1, false)
	sp.Finish()
	healthy := false
	adm, err := ServeAdmin("127.0.0.1:0", AdminOptions{
		Metrics: r,
		Trace:   tr,
		Health: func() Health {
			if healthy {
				return Health{OK: true, Seats: []SeatHealth{{ID: 0, Present: true, Gen: 1}}}
			}
			return Health{OK: false, Detail: "degraded", Seats: []SeatHealth{{ID: 0, Cause: "connection lost"}}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + adm.Addr()

	get := func(path string, wantCode int) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d (%s)", path, resp.StatusCode, wantCode, body)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics", 200), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["frontend_queries_total"] != 3 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}

	var h Health
	if err := json.Unmarshal(get("/healthz", 503), &h); err != nil {
		t.Fatal(err)
	}
	if h.OK || h.Seats[0].Cause != "connection lost" {
		t.Fatalf("health = %+v", h)
	}
	healthy = true
	get("/healthz", 200)

	var spans []SpanSnapshot
	if err := json.Unmarshal(get("/trace/recent", 200), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Epoch != 1 {
		t.Fatalf("trace/recent = %+v", spans)
	}

	if body := get("/debug/pprof/", 200); !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: %s", body)
	}
}

func TestStopwatchZeroValueRecordsNothing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", LatencyBuckets)
	h.ObserveSince(Stopwatch{})
	if got := r.Snapshot().Histograms["h"].Count; got != 0 {
		t.Fatalf("zero stopwatch recorded %d observations", got)
	}
	sw := StartTimer()
	time.Sleep(time.Millisecond)
	h.ObserveSince(sw)
	snap := r.Snapshot().Histograms["h"]
	if snap.Count != 1 || snap.Sum < int64(time.Millisecond) {
		t.Fatalf("stopwatch observation = %+v", snap)
	}
}
