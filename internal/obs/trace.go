package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceDepth is the span-ring size used when NewTracer is given
// a non-positive depth. It comfortably exceeds the scheduler's maximum
// epoch window, so an in-flight epoch's span is never recycled.
const DefaultTraceDepth = 256

// SeatMark records when one seat's result frame arrived, as an offset
// from the span's start.
type SeatMark struct {
	Seat     int   `json:"seat"`
	OffsetNS int64 `json:"offset_ns"`
}

// Span traces one epoch through the frontend scheduler: admission
// (Begin, when the epoch ordinal is consumed), dispatch (frames written
// to every seat), per-seat result arrival, collation (all expected
// frames accounted for, outcome known), and reply (the caller observed
// the result). All wall-clock reads happen inside the span's methods;
// the recorded offsets flow only into snapshots and the JSONL sink,
// never back into epoch computation.
//
// Spans live in a Tracer's preallocated ring and are handed out by
// Begin. Every method is safe on a nil receiver (a disabled tracer
// returns nil spans), so call sites need no conditionals.
type Span struct {
	mu sync.Mutex
	tr *Tracer

	epoch   uint64
	op      uint8
	batch   int
	direct  bool
	start   time.Time
	used    bool
	done    bool
	degrade bool
	err     string

	dispatchNS int64
	collateNS  int64
	replyNS    int64
	seats      []SeatMark
}

// Tracer hands out spans from a fixed ring; the last depth spans are
// retained for /trace/recent. Recording mutates preallocated slots
// under short mutexes — the steady state allocates nothing. An
// optional sink receives one JSON line per finished span (the sink
// path does allocate; it is off unless SetSink is called).
type Tracer struct {
	mu   sync.Mutex
	ring []*Span
	next int

	sinkMu sync.Mutex
	sink   io.Writer
}

// NewTracer returns a tracer retaining the last depth spans
// (DefaultTraceDepth if depth <= 0). Depth should exceed the number of
// concurrently in-flight epochs; a slot recycled while its epoch is
// still live only garbles that span's telemetry, never the answer.
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	t := &Tracer{ring: make([]*Span, depth)}
	for i := range t.ring {
		t.ring[i] = &Span{tr: t}
	}
	return t
}

// SetSink directs one JSON line per finished span to w. Writes are
// serialized; pass nil to disable.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
}

// Begin claims the next ring slot for a new epoch span. Returns nil on
// a nil tracer.
func (t *Tracer) Begin(epoch uint64, op uint8, batch int, direct bool) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sp := t.ring[t.next]
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
	sp.mu.Lock()
	sp.epoch = epoch
	sp.op = op
	sp.batch = batch
	sp.direct = direct
	sp.start = time.Now()
	sp.used = true
	sp.done = false
	sp.degrade = false
	sp.err = ""
	sp.dispatchNS = 0
	sp.collateNS = 0
	sp.replyNS = 0
	sp.seats = sp.seats[:0]
	sp.mu.Unlock()
	return sp
}

// MarkDispatched records that every seat's dispatch frame was written.
func (sp *Span) MarkDispatched() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.dispatchNS = int64(time.Since(sp.start))
	sp.mu.Unlock()
}

// MarkSeat records the arrival of seat id's result frame.
func (sp *Span) MarkSeat(id int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.seats = append(sp.seats, SeatMark{Seat: id, OffsetNS: int64(time.Since(sp.start))})
	sp.mu.Unlock()
}

// MarkCollated records the epoch outcome: every expected frame is
// accounted for (or the epoch was abandoned) and the merged reply is
// built. errMsg is empty on success; degraded marks seat-loss failures.
func (sp *Span) MarkCollated(errMsg string, degraded bool) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.collateNS = int64(time.Since(sp.start))
	sp.err = errMsg
	sp.degrade = degraded
	sp.mu.Unlock()
}

// Finish records the reply instant, completes the span, and emits it
// to the sink when one is configured. With no sink the span is only
// mutated in place — no snapshot is built, so finishing allocates
// nothing.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.replyNS = int64(time.Since(sp.start))
	sp.done = true
	tr := sp.tr
	sp.mu.Unlock()
	tr.emitSpan(sp)
}

// emitSpan snapshots and sinks a finished span, but only when a sink is
// configured — the sink check must come first so the sinkless steady
// state stays allocation-free.
func (t *Tracer) emitSpan(sp *Span) {
	t.sinkMu.Lock()
	sink := t.sink
	t.sinkMu.Unlock()
	if sink == nil {
		return
	}
	sp.mu.Lock()
	snap := sp.snapshotLocked()
	sp.mu.Unlock()
	t.emit(snap)
}

// SpanSnapshot is the JSON form of a span, used by /trace/recent and
// the JSONL sink. Offsets are nanoseconds from Start; zero means the
// stage was not reached.
type SpanSnapshot struct {
	Epoch      uint64     `json:"epoch"`
	Op         uint8      `json:"op"`
	Batch      int        `json:"batch"`
	Direct     bool       `json:"direct,omitempty"`
	Start      time.Time  `json:"start"`
	DispatchNS int64      `json:"dispatch_ns"`
	CollateNS  int64      `json:"collate_ns"`
	ReplyNS    int64      `json:"reply_ns"`
	Seats      []SeatMark `json:"seats,omitempty"`
	Err        string     `json:"err,omitempty"`
	Degraded   bool       `json:"degraded,omitempty"`
	Done       bool       `json:"done"`
}

func (sp *Span) snapshotLocked() SpanSnapshot {
	seats := make([]SeatMark, len(sp.seats))
	copy(seats, sp.seats)
	return SpanSnapshot{
		Epoch:      sp.epoch,
		Op:         sp.op,
		Batch:      sp.batch,
		Direct:     sp.direct,
		Start:      sp.start,
		DispatchNS: sp.dispatchNS,
		CollateNS:  sp.collateNS,
		ReplyNS:    sp.replyNS,
		Seats:      seats,
		Err:        sp.err,
		Degraded:   sp.degrade,
		Done:       sp.done,
	}
}

func (t *Tracer) emit(snap SpanSnapshot) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	defer t.sinkMu.Unlock()
	if t.sink == nil {
		return
	}
	line, err := json.Marshal(snap)
	if err != nil {
		return
	}
	line = append(line, '\n')
	_, _ = t.sink.Write(line) // telemetry sink: a failed write must not fail the epoch
}

// Recent copies the retained spans, oldest first. Unused slots are
// skipped; spans still in flight appear with Done == false.
func (t *Tracer) Recent() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	order := make([]*Span, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		order = append(order, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(order))
	for _, sp := range order {
		sp.mu.Lock()
		if sp.used {
			out = append(out, sp.snapshotLocked())
		}
		sp.mu.Unlock()
	}
	return out
}
