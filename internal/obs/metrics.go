// Package obs is the telemetry sink for the serving stack: lock-cheap
// counters, gauges, and fixed-bucket histograms behind a named registry,
// per-epoch trace spans in a reusable ring, and an embedded admin HTTP
// server exposing JSON snapshots of both.
//
// The package is designed around one contract: instrumentation must be
// non-perturbing. Recording on the query path is a handful of atomic
// adds — no locks, no allocations — and every wall-clock reading either
// happens inside this package or flows only into its recorders, so
// knnlint's detsource analyzer can prove that time never feeds epoch
// computation. Snapshots pay all the cost on the read side.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. The bucket bounds
// are immutable after construction, so Observe is a linear scan over a
// small slice plus two atomic adds — no locks, no allocations.
type Histogram struct {
	bounds []int64 // upper bounds, ascending; observation v lands in the first bucket with v <= bound
	counts []atomic.Int64
	over   atomic.Int64 // observations above the last bound
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Stopwatch carries a start instant across struct fields or function
// boundaries so that the wall-clock read and the elapsed computation
// both live inside obs. Use it where the start := time.Now() local-
// variable pattern cannot apply (e.g. a timestamp stored in a struct).
type Stopwatch struct{ t time.Time }

// StartTimer begins a stopwatch.
func StartTimer() Stopwatch { return Stopwatch{t: time.Now()} }

// ObserveSince records the elapsed nanoseconds since the stopwatch
// started. A zero Stopwatch records nothing.
func (h *Histogram) ObserveSince(sw Stopwatch) {
	if sw.t.IsZero() {
		return
	}
	h.Observe(int64(time.Since(sw.t)))
}

// ExpBuckets returns n upper bounds starting at first and doubling.
func ExpBuckets(first int64, n int) []int64 {
	b := make([]int64, n)
	v := first
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// LatencyBuckets spans 1µs to ~33s in doubling steps — the default
// bounds for nanosecond latency histograms.
var LatencyBuckets = ExpBuckets(int64(time.Microsecond), 26)

// SizeBuckets spans 1 to 65536 in doubling steps — the default bounds
// for batch-size and occupancy histograms.
var SizeBuckets = ExpBuckets(1, 17)

// Registry is a named collection of metrics. Get-or-create methods are
// mutex-guarded (registration is cold); the returned recorders are
// lock-free. A Func gauge is evaluated at snapshot time, for values
// that already live elsewhere as atomics (e.g. wire pool statistics).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Func registers (or replaces) a callback gauge evaluated at snapshot.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. The bounds of an existing histogram are kept.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketCount is one non-empty histogram bucket in a snapshot. Le is
// the bucket's inclusive upper bound; Le == -1 marks the overflow
// bucket (observations above the last bound).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the point-in-time state of one histogram. The
// percentiles are upper-bound estimates: the bound of the bucket where
// the cumulative count crosses the quantile.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	P50     int64         `json:"p50"`
	P95     int64         `json:"p95"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is the point-in-time state of a registry. Map keys marshal
// sorted, so the JSON form is stable for a fixed state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Counts are read with
// atomic loads; concurrent recording keeps running while the snapshot
// is taken, so cross-metric totals are only approximately consistent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)+len(r.funcs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, fn := range r.funcs {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Sum: h.sum.Load()}
	counts := make([]int64, len(h.bounds)+1)
	for i := range h.bounds {
		counts[i] = h.counts[i].Load()
		hs.Count += counts[i]
	}
	over := h.over.Load()
	counts[len(h.bounds)] = over
	hs.Count += over
	for i, n := range counts {
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
	}
	hs.P50 = quantile(h.bounds, counts, hs.Count, 0.50)
	hs.P95 = quantile(h.bounds, counts, hs.Count, 0.95)
	hs.P99 = quantile(h.bounds, counts, hs.Count, 0.99)
	return hs
}

// quantile returns the upper bound of the bucket where the cumulative
// count reaches q of the total (-1 for the overflow bucket or an empty
// histogram).
func quantile(bounds, counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return -1
	}
	target := int64(q * float64(total))
	if float64(target) < q*float64(total) {
		target++ // rank is the ceiling: the observation at or above the quantile
	}
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return -1
		}
	}
	return -1
}
