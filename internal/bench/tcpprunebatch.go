package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TCPPruneBatch measures the batched pruned dispatch: the highest-throughput
// client path (KNNBatch lockstep epochs) over anchor-clustered shards,
// answered through a full-scatter frontend and through a pruning one, across
// batch sizes. A pruned batch runs as two direct waves — every point probes
// its nearest shard, then each shard receives only the sub-batch of points
// whose admission ball intersects it — so the contacted-nodes-per-query
// figure of E15 should survive batching while the batch amortization of E11b
// keeps the QPS win. The workloads mirror E15: clustered is the favorable
// regime, uniform the honest control where pruning is expected to buy
// nothing (its value is that it must also cost ~nothing).
//
// Every batch's per-query boundaries are checked bit-identical across the
// two frontends while the clock runs. avg_nodes is the mean number of nodes
// contacted per query, read from the Contacts stat the pruned path reports
// (full scatter always contacts all k). The clustered workload doubles as
// the CI tripwire: if its pruned run contacts ≥ k−1 nodes per query the
// pruning machinery is silently disabled, and the experiment returns an
// error instead of a table.
func TCPPruneBatch(p Params) ([]*Table, error) {
	p = p.withDefaults()
	l := 16
	queries := 192
	perNode := 512
	dim := 3
	sigma := 0.02
	k := 8
	batches := []int{1, 4, 16, 64}
	if p.Quick {
		l = 4
		queries = 64
		perNode = 128
		k = 4
		batches = []int{1, 16}
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E16",
		Title: fmt.Sprintf("tcpprunebatch — batched pruned dispatch vs full scatter (k=%d, %d pts/node, %d queries, l=%d)",
			k, perNode, queries, l),
		Note: "answers are verified bit-identical between the two frontends on every query; " +
			"avg_nodes is nodes contacted per query (full scatter always contacts k); " +
			"the clustered workload fails the experiment outright if pruning is silently disabled (avg_nodes >= k-1)",
		Header: []string{"workload", "batch", "mode", "wall_ms", "qps", "speedup_vs_full", "avg_nodes"},
	}

	type workload struct {
		name    string
		shards  distknn.ShardProvider[distknn.Vector]
		queryAt func(i int) distknn.Vector
	}
	workloads := []workload{
		{
			name:   "clustered",
			shards: distknn.AnchorGaussianShards(seed, perNode, dim, sigma),
			queryAt: func(i int) distknn.Vector {
				_, centers := points.GenGaussianClusters(xrand.NewStream(seed, 0), k*perNode, dim, k, sigma)
				rng := xrand.NewStream(seed, 1<<41+uint64(i))
				c := centers[i%k]
				q := make(distknn.Vector, dim)
				for j := range q {
					q[j] = c[j] + rng.NormFloat64()*sigma
				}
				return q
			},
		},
		{
			name:   "uniform",
			shards: distknn.AnchorVectorShards(seed, perNode, dim),
			queryAt: func(i int) distknn.Vector {
				rng := xrand.NewStream(seed, 1<<40+uint64(i))
				q := make(distknn.Vector, dim)
				for j := range q {
					q[j] = rng.Float64()
				}
				return q
			},
		},
	}

	for _, w := range workloads {
		serve := func(pruner distknn.Pruner) (*distknn.LocalServer, *distknn.RemoteCluster[distknn.Vector], error) {
			srv, err := distknn.ServeTypedLocalOptions(distknn.VectorPoints(), k, seed, w.shards,
				distknn.NodeOptions{}, distknn.FrontendOptions{Pruner: pruner})
			if err != nil {
				return nil, nil, err
			}
			rc, err := distknn.DialTypedCluster(distknn.VectorPoints(), srv.Addr())
			if err != nil {
				srv.Close()
				return nil, nil, err
			}
			return srv, rc, nil
		}
		fullSrv, full, err := serve(nil)
		if err != nil {
			return nil, fmt.Errorf("tcpprunebatch %s full: %w", w.name, err)
		}
		prunedSrv, pruned, err := serve(distknn.VectorPoints().Pruner())
		if err != nil {
			fullSrv.Close()
			return nil, fmt.Errorf("tcpprunebatch %s pruned: %w", w.name, err)
		}

		qs := make([]distknn.Vector, queries)
		for i := range qs {
			qs[i] = w.queryAt(i)
		}
		// Warm both stacks off the clock.
		if _, _, err := full.KNN(qs[0], l); err == nil {
			_, _, err = pruned.KNN(qs[0], l)
		}
		if err == nil {
			for _, batch := range batches {
				run := func(rc *distknn.RemoteCluster[distknn.Vector]) (time.Duration, []distknn.Key, float64, error) {
					boundaries := make([]distknn.Key, 0, queries)
					contacted := 0.0
					start := time.Now()
					for at := 0; at < queries; at += batch {
						chunk := qs[at:min(at+batch, queries)]
						res, stats, err := rc.KNNBatch(chunk, l)
						if err != nil {
							return 0, nil, 0, fmt.Errorf("batch at %d: %w", at, err)
						}
						for _, br := range res {
							boundaries = append(boundaries, br.Boundary)
						}
						if stats.Contacts > 0 {
							contacted += float64(stats.Contacts)
						} else {
							contacted += float64(k * len(chunk))
						}
					}
					return time.Since(start), boundaries, contacted / float64(queries), nil
				}
				fullWall, fullBounds, _, err := run(full)
				if err != nil {
					fullSrv.Close()
					prunedSrv.Close()
					return nil, fmt.Errorf("tcpprunebatch %s batch=%d full: %w", w.name, batch, err)
				}
				prunedWall, prunedBounds, avgNodes, err := run(pruned)
				if err == nil {
					for i := range fullBounds {
						if prunedBounds[i] != fullBounds[i] {
							err = fmt.Errorf("query %d: pruned boundary %v != full %v", i, prunedBounds[i], fullBounds[i])
							break
						}
					}
				}
				if err == nil && w.name == "clustered" && avgNodes >= float64(k-1) {
					err = fmt.Errorf("pruning silently disabled: clustered avg_nodes %.2f >= k-1 = %d", avgNodes, k-1)
				}
				if err != nil {
					fullSrv.Close()
					prunedSrv.Close()
					return nil, fmt.Errorf("tcpprunebatch %s batch=%d: %w", w.name, batch, err)
				}
				fullQPS := float64(queries) / fullWall.Seconds()
				prunedQPS := float64(queries) / prunedWall.Seconds()
				t.AddRow(w.name, d(batch), "full", f(fullWall.Seconds()*1e3), f(fullQPS), f(1.0), f(float64(k)))
				t.AddRow(w.name, d(batch), "pruned", f(prunedWall.Seconds()*1e3), f(prunedQPS), f(prunedQPS/fullQPS), f(avgNodes))
			}
		}
		fullSrv.Close()
		prunedSrv.Close()
		if err != nil {
			return nil, fmt.Errorf("tcpprunebatch %s: %w", w.name, err)
		}
	}
	return []*Table{t}, nil
}
