package bench

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distknn"
)

// ServeResult is one serving run's measurements: wall time, the latency of
// every successful query in ascending order, the k-machine cost totals over
// successful queries, and the failure tally.
type ServeResult struct {
	Wall      time.Duration
	Latencies []time.Duration // successful queries only, sorted ascending
	Rounds    int64
	Messages  int64
	Bytes     int64
	Contacts  int64 // pruned-dispatch node contacts (0 on full scatter)
	Failed    int
	FirstErr  error
}

// OK returns the number of successful queries.
func (r *ServeResult) OK() int { return len(r.Latencies) }

// QPS returns successful queries per second of wall time.
func (r *ServeResult) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK()) / r.Wall.Seconds()
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of the successful-query
// latencies, 0 if none succeeded.
func (r *ServeResult) Percentile(p float64) time.Duration {
	n := len(r.Latencies)
	if n == 0 {
		return 0
	}
	return r.Latencies[int(p*float64(n-1))]
}

// Queryable is the query surface the serving driver needs. Both the
// in-process *distknn.Cluster and the remote *distknn.RemoteCluster satisfy
// it, so one driver measures either deployment.
type Queryable[P any] interface {
	KNN(q P, l int) ([]distknn.Item, *distknn.QueryStats, error)
}

// Serve is the shared serving-throughput driver used by the E10a experiment
// and cmd/knnquery -serve / -connect: `workers` goroutines drain an atomic
// work queue of `total` queries against one persistent cluster. query(i)
// generates the i-th query point, so the workload is deterministic
// regardless of how the queue interleaves across workers. One un-measured
// warm-up query (query(0)) primes the world pool and allocator before the
// clock starts; a warm-up failure aborts the run with only FirstErr set.
// Failed queries are counted (first error retained) and excluded from
// latencies and cost totals.
func Serve[P any](cluster Queryable[P], query func(i int) P, l, total, workers int) ServeResult {
	if workers < 1 {
		workers = 1
	}
	if total < 1 {
		total = 1
	}
	if _, _, err := cluster.KNN(query(0), l); err != nil {
		// No measured query was attempted, so Failed stays zero.
		return ServeResult{FirstErr: err}
	}
	latencies := make([]time.Duration, total) // slot i written by one worker only
	succeeded := make([]bool, total)
	var next, rounds, msgs, bytes, contacts atomic.Int64
	var mu sync.Mutex
	var firstErr error
	failed := 0
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				q := query(i)
				t0 := time.Now()
				_, qs, err := cluster.KNN(q, l)
				latencies[i] = time.Since(t0)
				if err != nil {
					mu.Lock()
					failed++
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				succeeded[i] = true
				rounds.Add(int64(qs.Rounds))
				msgs.Add(qs.Messages)
				bytes.Add(qs.Bytes)
				contacts.Add(qs.Contacts)
			}
		}()
	}
	wg.Wait()
	res := ServeResult{
		Wall:     time.Since(start),
		Rounds:   rounds.Load(),
		Messages: msgs.Load(),
		Bytes:    bytes.Load(),
		Contacts: contacts.Load(),
		Failed:   failed,
		FirstErr: firstErr,
	}
	for i, ok := range succeeded {
		if ok {
			res.Latencies = append(res.Latencies, latencies[i])
		}
	}
	sort.Slice(res.Latencies, func(a, b int) bool { return res.Latencies[a] < res.Latencies[b] })
	return res
}
