package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TCPMux measures what the multiplexed client buys a single process: one
// connection carrying many outstanding tagged queries versus the
// one-query-per-connection serial shapes. Every row runs the same query
// stream against the same pipelining + server-batching frontend; only the
// client-side concurrency model varies:
//
//   - serial over 1 connection — the pre-mux client: each query waits for
//     its reply before the next goes out, so one process can never fill
//     the frontend's epoch window alone;
//   - mux over 1 connection with a growing outstanding cap — tagged
//     queries in flight concurrently, completing out of order; once the
//     cap reaches the scheduler window one process saturates it;
//   - serial over N connections — the PR 5 workaround (one process, N
//     sockets) the mux client makes unnecessary.
//
// Alongside throughput each row reports client-observed latency
// percentiles and the process-wide heap allocations per query (loopback
// deployment: client, frontend and every node share the process, so the
// number tracks the whole serving stack's allocation discipline).
func TCPMux(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 4, 16
	queries := 512
	perNode := 1 << 10
	outs := []int{1, 2, 4, 8, 16}
	serialConns := 16
	if p.Quick {
		k, l = 3, 4
		queries = 96
		perNode = 256
		outs = []int{1, 4, 16}
		serialConns = 4
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E14",
		Title: fmt.Sprintf("tcpmux — one multiplexed connection vs serial clients (k=%d, l=%d, %d pts/node, %d queries, window=8 + server batching)",
			k, l, perNode, queries),
		Note: "serial/1conn is the pre-mux client; mux rows multiplex tagged queries on ONE socket with the given outstanding cap; " +
			"serial/Nconn is the one-socket-per-worker workaround — answers are bit-identical in every row, allocs are process-wide " +
			"(client + frontend + nodes share the loopback deployment)",
		Header: []string{"mode", "conns", "outstanding", "wall_ms", "qps", "speedup_vs_serial",
			"p50_ms", "p95_ms", "p99_ms", "allocs_per_query"},
	}

	srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed,
		distknn.PaperShards(seed, perNode), distknn.NodeOptions{}, distknn.FrontendOptions{
			Window:      8,
			ServerBatch: true,
			Linger:      200 * time.Microsecond,
		})
	if err != nil {
		return nil, fmt.Errorf("tcpmux serve: %w", err)
	}
	defer srv.Close()

	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}
	pct := func(lats []float64, q float64) float64 {
		return lats[int(q*float64(len(lats)-1))]
	}

	// runRow replays the stream through conns connections (each serial when
	// conns > 1) or one connection with up to outstanding tagged queries in
	// flight, returning wall time, sorted per-query latencies (ms) and the
	// process-wide allocation count per query.
	runRow := func(conns, outstanding int) (time.Duration, []float64, float64, error) {
		rcs := make([]*distknn.RemoteCluster[distknn.Scalar], conns)
		for i := range rcs {
			var err error
			if rcs[i], err = distknn.DialScalarCluster(srv.Addr()); err != nil {
				return 0, nil, 0, fmt.Errorf("dial: %w", err)
			}
			defer rcs[i].Close()
		}
		if _, _, err := rcs[0].KNN(queryAt(0), l); err != nil {
			return 0, nil, 0, fmt.Errorf("warm-up: %w", err)
		}

		lats := make([]float64, queries)
		errs := make([]error, conns)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if conns > 1 {
			var wg sync.WaitGroup
			for c := 0; c < conns; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < queries; i += conns {
						t0 := time.Now()
						if _, _, err := rcs[c].KNN(queryAt(i), l); err != nil {
							errs[c] = fmt.Errorf("conn %d query %d: %w", c, i, err)
							return
						}
						lats[i] = time.Since(t0).Seconds() * 1e3
					}
				}(c)
			}
			wg.Wait()
		} else {
			sem := make(chan struct{}, outstanding)
			var wg sync.WaitGroup
			for i := 0; i < queries; i++ {
				sem <- struct{}{}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					t0 := time.Now()
					if _, _, err := rcs[0].KNN(queryAt(i), l); err != nil {
						errs[0] = fmt.Errorf("query %d: %w", i, err)
						return
					}
					lats[i] = time.Since(t0).Seconds() * 1e3
				}(i)
			}
			wg.Wait()
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		for _, e := range errs {
			if e != nil {
				return 0, nil, 0, e
			}
		}
		sort.Float64s(lats)
		allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(queries)
		return wall, lats, allocs, nil
	}

	type cfg struct {
		mode        string
		conns       int
		outstanding int
	}
	cfgs := []cfg{{"serial", 1, 1}}
	for _, o := range outs {
		if o > 1 {
			cfgs = append(cfgs, cfg{"mux", 1, o})
		}
	}
	cfgs = append(cfgs, cfg{"serial", serialConns, 1})

	var baseQPS float64
	for ci, c := range cfgs {
		wall, lats, allocs, err := runRow(c.conns, c.outstanding)
		if err != nil {
			return nil, fmt.Errorf("tcpmux %s/%dconn/out=%d: %w", c.mode, c.conns, c.outstanding, err)
		}
		qps := float64(queries) / wall.Seconds()
		if ci == 0 {
			baseQPS = qps
		}
		t.AddRow(c.mode, d(c.conns), d(c.outstanding), f(wall.Seconds()*1e3), f(qps), f(qps/baseQPS),
			f(pct(lats, 0.50)), f(pct(lats, 0.95)), f(pct(lats, 0.99)), f(allocs))
	}
	return []*Table{t}, nil
}
