package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TCPBatch measures what batched dispatch buys over one-query-per-epoch on
// a resident TCP serving cluster — the socket analogue of the in-process
// KNNBatch, and the amortization E11 measures for session setup applied to
// the per-query frame/syscall/epoch overhead instead.
//
// One serving deployment answers the same query stream repeatedly, once per
// batch size: batch=1 is the pre-batching wire shape (one dispatched BSP
// epoch, two client frames and 2k control frames per query); batch=b ships
// b queries per dispatch, so the per-query share of that fixed overhead
// drops roughly b-fold while the protocol work inside the epoch stays the
// same (mean_rounds_per_q shrinks too, because the epoch's round count is
// shared). Results are exact and identical at every batch size.
func TCPBatch(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 4, 16
	queries := 256
	perNode := 1 << 10
	batches := []int{1, 4, 16, 64}
	if p.Quick {
		// Small l keeps the epoch short, so the amortized per-epoch
		// overhead is a visible fraction even at smoke-test scale.
		k, l = 3, 4
		queries = 96
		perNode = 256
		batches = []int{1, 16}
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E11b",
		Title: fmt.Sprintf("tcpbatch — batched dispatch vs one-query-per-epoch over loopback TCP (k=%d, l=%d, %d pts/node, %d queries)",
			k, l, perNode, queries),
		Note: "batch=1 pays one BSP epoch + frame round-trip per query; batch=b amortizes them b-fold; " +
			"results are bit-identical at every batch size",
		Header: []string{"batch", "epochs", "wall_ms", "qps", "mean_rounds_per_q", "mean_msgs_per_q", "speedup_vs_b1"},
	}

	srv, err := distknn.ServeLocal(k, seed, distknn.PaperShards(seed, perNode), distknn.NodeOptions{})
	if err != nil {
		return nil, fmt.Errorf("tcpbatch serve: %w", err)
	}
	defer srv.Close()
	rc, err := distknn.DialScalarCluster(srv.Addr())
	if err != nil {
		return nil, fmt.Errorf("tcpbatch dial: %w", err)
	}
	defer rc.Close()

	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}
	// Warm up the session (and the client path) outside every clock.
	if _, _, err := rc.KNN(queryAt(0), l); err != nil {
		return nil, fmt.Errorf("tcpbatch warm-up: %w", err)
	}

	var baseQPS float64
	for bi, b := range batches {
		var rounds, msgs int64
		epochs := 0
		start := time.Now()
		for i := 0; i < queries; i += b {
			n := b
			if i+n > queries {
				n = queries - i
			}
			qs := make([]distknn.Scalar, n)
			for j := range qs {
				qs[j] = queryAt(i + j)
			}
			_, stats, err := rc.KNNBatch(qs, l)
			if err != nil {
				return nil, fmt.Errorf("tcpbatch b=%d query %d: %w", b, i, err)
			}
			rounds += int64(stats.Rounds)
			msgs += stats.Messages
			epochs++
		}
		wall := time.Since(start)
		qps := float64(queries) / wall.Seconds()
		if bi == 0 {
			baseQPS = qps
		}
		t.AddRow(d(b), d(epochs), f(wall.Seconds()*1e3), f(qps),
			f(float64(rounds)/float64(queries)), f(float64(msgs)/float64(queries)),
			f(qps/baseQPS))
	}
	return []*Table{t}, nil
}
