package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/xrand"
)

// TCPVector measures the vector workload over the TCP serving path — the
// deployment PANDA-style partition-parallel KNN systems run, on this
// repository's exact protocols. For each dimension a resident cluster of
// k-d-tree-indexed vector shards answers the same query stream twice (one
// query per epoch, then batched), next to the in-process NewVectorCluster
// holding the identical global dataset. Served answers are bit-identical to
// the in-process ones (the parity tests assert it); the table shows what
// the socket hop costs and what batching claws back.
func TCPVector(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 4, 10
	queries := 128
	perNode := 1 << 10
	dims := []int{4, 16}
	batch := 16
	if p.Quick {
		k, l = 3, 5
		queries = 24
		perNode = 200
		dims = []int{4}
		batch = 8
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E12",
		Title: fmt.Sprintf("tcpvector — vector workload over loopback TCP vs in-process (k=%d, l=%d, %d pts/node)",
			k, l, perNode),
		Note: "k-d-tree-indexed shards on both sides; tcp pays a socket round-trip and a real BSP epoch " +
			"per query, tcp-batch amortizes it; answers are bit-identical across all three",
		Header: []string{"dim", "deployment", "queries", "wall_ms", "qps", "mean_rounds", "mean_msgs"},
	}

	for _, dim := range dims {
		shards := distknn.UniformVectorShards(seed, perNode, dim)
		queryAt := func(i int) distknn.Vector {
			rng := xrand.NewStream(seed, 1<<40+uint64(i))
			v := make(distknn.Vector, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			return v
		}

		// In-process baseline over the identical global dataset.
		var vecs []distknn.Vector
		var labels []float64
		for id := 0; id < k; id++ {
			s, err := shards(id, k)
			if err != nil {
				return nil, fmt.Errorf("tcpvector shards: %w", err)
			}
			vecs = append(vecs, s.Points...)
			labels = append(labels, s.Labels...)
		}
		local, err := distknn.NewVectorCluster(vecs, labels, distknn.Options{Machines: k, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("tcpvector local: %w", err)
		}
		var localRounds, localMsgs int64
		start := time.Now()
		for i := 0; i < queries; i++ {
			_, qs, err := local.KNN(queryAt(i), l)
			if err != nil {
				local.Close()
				return nil, fmt.Errorf("tcpvector local query %d: %w", i, err)
			}
			localRounds += int64(qs.Rounds)
			localMsgs += qs.Messages
		}
		localWall := time.Since(start)
		local.Close()

		// Served over loopback TCP: per-query epochs, then batched.
		srv, err := distknn.ServeVectorLocal(k, seed, shards, distknn.NodeOptions{})
		if err != nil {
			return nil, fmt.Errorf("tcpvector serve dim=%d: %w", dim, err)
		}
		rc, err := distknn.DialVectorCluster(srv.Addr())
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("tcpvector dial: %w", err)
		}
		var tcpRounds, tcpMsgs int64
		start = time.Now()
		for i := 0; i < queries; i++ {
			_, qs, err := rc.KNN(queryAt(i), l)
			if err != nil {
				rc.Close()
				srv.Close()
				return nil, fmt.Errorf("tcpvector tcp query %d: %w", i, err)
			}
			tcpRounds += int64(qs.Rounds)
			tcpMsgs += qs.Messages
		}
		tcpWall := time.Since(start)

		var batchRounds, batchMsgs int64
		start = time.Now()
		for i := 0; i < queries; i += batch {
			n := batch
			if i+n > queries {
				n = queries - i
			}
			qs := make([]distknn.Vector, n)
			for j := range qs {
				qs[j] = queryAt(i + j)
			}
			_, stats, err := rc.KNNBatch(qs, l)
			if err != nil {
				rc.Close()
				srv.Close()
				return nil, fmt.Errorf("tcpvector batch at %d: %w", i, err)
			}
			batchRounds += int64(stats.Rounds)
			batchMsgs += stats.Messages
		}
		batchWall := time.Since(start)
		rc.Close()
		if err := srv.Close(); err != nil {
			return nil, fmt.Errorf("tcpvector shutdown: %w", err)
		}

		row := func(name string, wall time.Duration, rounds, msgs int64) {
			t.AddRow(d(dim), name, d(queries), f(wall.Seconds()*1e3),
				f(float64(queries)/wall.Seconds()),
				f(float64(rounds)/float64(queries)), f(float64(msgs)/float64(queries)))
		}
		row("in-process", localWall, localRounds, localMsgs)
		row("tcp", tcpWall, tcpRounds, tcpMsgs)
		row(fmt.Sprintf("tcp-batch%d", batch), batchWall, batchRounds, batchMsgs)
	}
	return []*Table{t}, nil
}
