package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TCPPrune measures what the metric-index pruned dispatch buys the serving
// stack: the same anchor-clustered shards answered through a full-scatter
// frontend and through a pruning one, on two workloads —
//
//   - clustered: points drawn from k well-separated Gaussian blobs, shards
//     tracking the blobs, queries landing near blob centers. The favorable
//     regime: most shards' balls provably cannot intersect the query's, so
//     the frontend contacts far fewer than k nodes per query;
//   - uniform: the same machinery over uniform data, where k-center balls
//     overlap heavily and pruning buys little — the honest control.
//
// Every query's answer is checked bit-identical across the two frontends
// while the clock runs; a row that prunes itself into a wrong answer fails
// the experiment rather than reporting a flattering number. avg_nodes is the
// mean count of nodes contacted per query (pruned replies report it as their
// Messages stat; full scatter always contacts all k).
func TCPPrune(p Params) ([]*Table, error) {
	p = p.withDefaults()
	l := 16
	queries := 192
	perNode := 512
	dim := 3
	sigma := 0.02
	ks := []int{4, 8}
	if p.Quick {
		l = 4
		queries = 48
		perNode = 128
		ks = []int{4}
	}
	if len(p.Ks) > 0 {
		ks = p.Ks
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E15",
		Title: fmt.Sprintf("tcpprune — metric-index pruned dispatch vs full scatter (%d pts/node, %d queries, l=%d)",
			perNode, queries, l),
		Note: "answers are verified bit-identical between the two frontends on every query; " +
			"avg_nodes is nodes contacted per query (full scatter always contacts k); " +
			"frac_pruned is the fraction of queries that skipped at least one node",
		Header: []string{"workload", "k", "mode", "wall_ms", "qps", "speedup_vs_full", "avg_nodes", "frac_pruned"},
	}

	type workload struct {
		name    string
		shards  func(k int) distknn.ShardProvider[distknn.Vector]
		queryAt func(k, i int) distknn.Vector
	}
	uniformQuery := func(i int) distknn.Vector {
		rng := xrand.NewStream(seed, 1<<40+uint64(i))
		q := make(distknn.Vector, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		return q
	}
	workloads := []workload{
		{
			name: "clustered",
			shards: func(k int) distknn.ShardProvider[distknn.Vector] {
				return distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
			},
			queryAt: func(k, i int) distknn.Vector {
				_, centers := points.GenGaussianClusters(xrand.NewStream(seed, 0), k*perNode, dim, k, sigma)
				rng := xrand.NewStream(seed, 1<<41+uint64(i))
				c := centers[i%k]
				q := make(distknn.Vector, dim)
				for j := range q {
					q[j] = c[j] + rng.NormFloat64()*sigma
				}
				return q
			},
		},
		{
			name: "uniform",
			shards: func(k int) distknn.ShardProvider[distknn.Vector] {
				return distknn.AnchorVectorShards(seed, perNode, dim)
			},
			queryAt: func(k, i int) distknn.Vector { return uniformQuery(i) },
		},
	}

	for _, w := range workloads {
		for _, k := range ks {
			shards := w.shards(k)
			serve := func(pruner distknn.Pruner) (*distknn.LocalServer, *distknn.RemoteCluster[distknn.Vector], error) {
				srv, err := distknn.ServeTypedLocalOptions(distknn.VectorPoints(), k, seed, shards,
					distknn.NodeOptions{}, distknn.FrontendOptions{Pruner: pruner})
				if err != nil {
					return nil, nil, err
				}
				rc, err := distknn.DialTypedCluster(distknn.VectorPoints(), srv.Addr())
				if err != nil {
					srv.Close()
					return nil, nil, err
				}
				return srv, rc, nil
			}
			fullSrv, full, err := serve(nil)
			if err != nil {
				return nil, fmt.Errorf("tcpprune %s k=%d full: %w", w.name, k, err)
			}
			prunedSrv, pruned, err := serve(distknn.VectorPoints().Pruner())
			if err != nil {
				fullSrv.Close()
				return nil, fmt.Errorf("tcpprune %s k=%d pruned: %w", w.name, k, err)
			}

			qs := make([]distknn.Vector, queries)
			for i := range qs {
				qs[i] = w.queryAt(k, i)
			}
			// Warm both stacks off the clock.
			if _, _, err := full.KNN(qs[0], l); err == nil {
				_, _, err = pruned.KNN(qs[0], l)
			}
			if err != nil {
				fullSrv.Close()
				prunedSrv.Close()
				return nil, fmt.Errorf("tcpprune %s k=%d warm-up: %w", w.name, k, err)
			}

			run := func(rc *distknn.RemoteCluster[distknn.Vector]) (time.Duration, []distknn.Key, float64, int, error) {
				boundaries := make([]distknn.Key, queries)
				contacted := 0.0
				prunedQueries := 0
				start := time.Now()
				for i, q := range qs {
					_, stats, err := rc.KNN(q, l)
					if err != nil {
						return 0, nil, 0, 0, fmt.Errorf("query %d: %w", i, err)
					}
					boundaries[i] = stats.Boundary
					if stats.Bytes == 0 && stats.Messages <= int64(k) {
						contacted += float64(stats.Messages)
						if stats.Messages < int64(k) {
							prunedQueries++
						}
					} else {
						contacted += float64(k)
					}
				}
				return time.Since(start), boundaries, contacted / float64(queries), prunedQueries, nil
			}

			fullWall, fullBounds, _, _, err := run(full)
			if err == nil {
				var prunedWall time.Duration
				var prunedBounds []distknn.Key
				var avgNodes float64
				var prunedQueries int
				prunedWall, prunedBounds, avgNodes, prunedQueries, err = run(pruned)
				if err == nil {
					for i := range fullBounds {
						if prunedBounds[i] != fullBounds[i] {
							err = fmt.Errorf("query %d: pruned boundary %v != full %v", i, prunedBounds[i], fullBounds[i])
							break
						}
					}
					if err == nil {
						fullQPS := float64(queries) / fullWall.Seconds()
						prunedQPS := float64(queries) / prunedWall.Seconds()
						t.AddRow(w.name, d(k), "full", f(fullWall.Seconds()*1e3), f(fullQPS), f(1.0), f(float64(k)), f(0))
						t.AddRow(w.name, d(k), "pruned", f(prunedWall.Seconds()*1e3), f(prunedQPS), f(prunedQPS/fullQPS),
							f(avgNodes), f(float64(prunedQueries)/float64(queries)))
					}
				}
			}
			fullSrv.Close()
			prunedSrv.Close()
			if err != nil {
				return nil, fmt.Errorf("tcpprune %s k=%d: %w", w.name, k, err)
			}
		}
	}
	return []*Table{t}, nil
}
