package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/stats"
	"distknn/internal/xrand"
)

// Throughput measures the serving path the persistent runtime enables: a
// long-lived cluster answering a stream of queries. Two tables come out.
//
// E10a sweeps the number of client goroutines firing queries at one shared
// cluster and reports sustained QPS; because every in-flight query runs on
// its own isolated simulation world, QPS should scale with workers until the
// host's cores saturate.
//
// E10b compares the same serial query stream on the one-shot execution path
// (spawn k goroutines, elect a leader, query, tear down — what every query
// paid before the persistent runtime) against the resident cluster (elect
// once at construction, machines stay alive). The delta is pure overhead
// removed from the steady-state path.
func Throughput(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 8, 64
	queries := 256
	workersSweep := []int{1, 2, 4, 8, 16}
	if p.Quick {
		k, l = 4, 16
		queries = 48
		workersSweep = []int{1, 4}
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}

	values := make([]uint64, k*p.PerMachine)
	rng := xrand.NewStream(p.Seed, 0x7B)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
	}
	cluster, err := distknn.NewScalarCluster(values, nil, distknn.Options{
		Machines:       k,
		Seed:           p.Seed,
		BandwidthBytes: p.Bandwidth,
	})
	if err != nil {
		return nil, fmt.Errorf("throughput: %w", err)
	}
	defer cluster.Close()

	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(p.Seed, 1<<41+uint64(i)).Uint64N(points.PaperDomain))
	}

	ta := &Table{
		ID:    "E10a",
		Title: fmt.Sprintf("serving throughput vs concurrency (k=%d, l=%d, %d queries)", k, l, queries),
		Note:  "one persistent cluster, N client goroutines; each in-flight query gets an isolated world",
		Header: []string{"workers", "queries", "wall_ms", "qps", "speedup",
			"mean_rounds", "mean_msgs"},
	}
	var baseQPS float64
	for idx, workers := range workersSweep {
		res := Serve(cluster, queryAt, l, queries, workers)
		if res.FirstErr != nil {
			return nil, fmt.Errorf("throughput workers=%d: %w", workers, res.FirstErr)
		}
		qps := res.QPS()
		if idx == 0 {
			baseQPS = qps
		}
		ta.AddRow(d(workers), d(res.OK()), f(res.Wall.Seconds()*1e3), f(qps),
			f(qps/baseQPS),
			f(float64(res.Rounds)/float64(res.OK())),
			f(float64(res.Messages)/float64(res.OK())))
	}

	// Measure the election's own cost directly (re-deriving the cached
	// leader) so the table states the exact rounds the persistent path
	// amortizes away, independent of per-query pivot noise.
	_, estats, err := cluster.ElectLeader()
	if err != nil {
		return nil, fmt.Errorf("throughput election measurement: %w", err)
	}
	tb := &Table{
		ID:    "E10b",
		Title: fmt.Sprintf("per-query cost: one-shot path vs persistent cluster (k=%d, l=%d)", k, l),
		Note: fmt.Sprintf("same cluster, shards and queries; one-shot re-elects every query (election alone: %d rounds, %d messages) and re-spawns machines; "+
			"mean_rounds carries per-query pivot randomness (seeds differ), so the row difference equals the election cost only in expectation",
			estats.Rounds, estats.Messages),
		Header: []string{"mode", "queries", "wall_ms", "qps", "mean_rounds"},
	}
	serialQueries := queries

	// One-shot: what every query cost before the persistent runtime,
	// measured on the very same cluster and shards via KNNOneShot.
	var osRounds []float64
	start := time.Now()
	for i := 0; i < serialQueries; i++ {
		_, qs, err := cluster.KNNOneShot(queryAt(i), l)
		if err != nil {
			return nil, fmt.Errorf("throughput one-shot query %d: %w", i, err)
		}
		osRounds = append(osRounds, float64(qs.Rounds))
	}
	osWall := time.Since(start)
	tb.AddRow("one-shot", d(serialQueries), f(osWall.Seconds()*1e3),
		f(float64(serialQueries)/osWall.Seconds()), f(stats.Summarize(osRounds).Mean))

	// Persistent: the steady-state serving path.
	var psRounds []float64
	start = time.Now()
	for i := 0; i < serialQueries; i++ {
		_, qs, err := cluster.KNN(queryAt(i), l)
		if err != nil {
			return nil, fmt.Errorf("throughput persistent query %d: %w", i, err)
		}
		psRounds = append(psRounds, float64(qs.Rounds))
	}
	psWall := time.Since(start)
	tb.AddRow("persistent", d(serialQueries), f(psWall.Seconds()*1e3),
		f(float64(serialQueries)/psWall.Seconds()), f(stats.Summarize(psRounds).Mean))

	return []*Table{ta, tb}, nil
}
