package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"distknn/internal/core"
	"distknn/internal/dsel"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/seqselect"
	"distknn/internal/stats"
	"distknn/internal/xrand"
)

// Experiment couples a stable experiment id (E1–E11, addressable from
// cmd/knnbench -experiment) with its runner.
type Experiment struct {
	ID          string
	Description string
	Run         func(p Params) ([]*Table, error)
}

// Experiments lists every reproducible artifact, in table-id order.
var Experiments = []Experiment{
	{"figure2", "Figure 2: speedup of Algorithm 2 over the simple method", Figure2},
	{"rounds", "Theorem 2.4: rounds are O(log l) and independent of k", RoundsScaling},
	{"messages", "Theorem 2.4: message complexity is O(k log l)", MessageScaling},
	{"alg1", "Theorem 2.2: Algorithm 1 selection takes O(log n) rounds", Alg1Rounds},
	{"sampling", "Lemma 2.3: pruning keeps <= 11*l candidates w.h.p.", SamplingValidation},
	{"pivot", "Lemma 2.1: pivots are uniform over the active range", PivotUniformity},
	{"baselines", "Section 1.4: comparison against prior-work baselines", Baselines},
	{"wallclock", "Section 3: wall-clock speedup as machines are added", WallClock},
	{"constants", "Ablation: Lemma 2.3 constants (SampleFactor x CutFactor)", Constants},
	{"throughput", "Serving: QPS of a persistent concurrent cluster vs the one-shot path", Throughput},
	{"tcpserve", "Serving over loopback TCP: one-shot mesh per query vs resident mesh", TCPServe},
	{"tcpbatch", "Serving over loopback TCP: batched dispatch vs one query per epoch", TCPBatch},
	{"tcpvector", "Vector workload over loopback TCP vs in-process, with and without batching", TCPVector},
	{"tcpsched", "Frontend epoch scheduler: pipelined epochs + server-side batching under concurrent clients", TCPSched},
	{"tcpmux", "Multiplexed client: outstanding-query sweep on one tagged connection vs serial clients", TCPMux},
	{"tcpprune", "Metric-index pruned dispatch: anchor-clustered shards, scatter only where the ball can intersect", TCPPrune},
	{"tcpprunebatch", "Batched pruned dispatch: KNNBatch epochs answered as probe + sub-batch admission waves", TCPPruneBatch},
}

// ByID finds an experiment by its id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// E1: Figure 2
// ---------------------------------------------------------------------------

// Figure2 reproduces the paper's only results figure: the ratio of the
// simple method's execution time to Algorithm 2's, as a function of ℓ, one
// series per machine count k. Time is modeled as rounds × link latency plus
// the measured parallel local computation; the raw rounds and bytes ratios
// are reported alongside.
func Figure2(p Params) ([]*Table, error) {
	p = p.withDefaults()
	t := &Table{
		ID:    "E1",
		Title: "Figure 2 — execution-time ratio simple/alg2 (higher = bigger win)",
		Note: fmt.Sprintf("points/machine=%d reps=%d round-latency=%v; paper reports up to ~80x at k=128",
			p.PerMachine, p.Reps, p.Model.RoundLatency),
		Header: []string{"k", "l", "time_ratio", "rounds_ratio", "bytes_ratio",
			"alg2_rounds", "simple_rounds", "alg2_ms", "simple_ms"},
	}
	for _, k := range p.ks([]int{2, 8, 32, 128}) {
		in := NewInstance(p.Seed, k, p.PerMachine)
		for _, l := range p.ls([]int{8, 32, 128, 512, 2048, 8192}) {
			if l > k*p.PerMachine {
				continue
			}
			var timeR, roundsR, bytesR, a2Rounds, smRounds, a2Ms, smMs []float64
			for rep := 0; rep < p.Reps; rep++ {
				q := in.Query(p.Seed, rep)
				seed := xrand.DeriveSeed(p.Seed, uint64(rep))
				_, m2, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], core.Config{})
				if err != nil {
					return nil, fmt.Errorf("figure2 alg2 k=%d l=%d: %w", k, l, err)
				}
				_, ms, _, err := in.Run(q, l, p.Bandwidth, seed^1, Algo{"simple", core.SimpleKNN}, core.Config{})
				if err != nil {
					return nil, fmt.Errorf("figure2 simple k=%d l=%d: %w", k, l, err)
				}
				t2 := m2.ModeledTime(p.Model)
				ts := ms.ModeledTime(p.Model)
				timeR = append(timeR, stats.Ratio(float64(ts), float64(t2)))
				roundsR = append(roundsR, stats.Ratio(float64(ms.Rounds), float64(m2.Rounds)))
				bytesR = append(bytesR, stats.Ratio(float64(ms.Bytes), float64(m2.Bytes)))
				a2Rounds = append(a2Rounds, float64(m2.Rounds))
				smRounds = append(smRounds, float64(ms.Rounds))
				a2Ms = append(a2Ms, t2.Seconds()*1e3)
				smMs = append(smMs, ts.Seconds()*1e3)
			}
			t.AddRow(d(k), d(l),
				f(stats.GeoMean(timeR)), f(stats.GeoMean(roundsR)), f(stats.GeoMean(bytesR)),
				f(stats.Summarize(a2Rounds).Mean), f(stats.Summarize(smRounds).Mean),
				f(stats.Summarize(a2Ms).Mean), f(stats.Summarize(smMs).Mean))
		}
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E2 / E3: round and message scaling
// ---------------------------------------------------------------------------

// RoundsScaling sweeps ℓ at fixed k and k at fixed ℓ, recording rounds for
// Algorithm 2 and DirectKNN. Theorem 2.4 predicts the first sweep grows like
// log ℓ and the second is flat for Algorithm 2 (Direct picks up a log k).
func RoundsScaling(p Params) ([]*Table, error) {
	p = p.withDefaults()
	kFixed := 16
	lFixed := 128
	if p.Quick {
		kFixed, lFixed = 4, 32
	}
	tL := &Table{
		ID:     "E2a",
		Title:  fmt.Sprintf("rounds vs l (k=%d)", kFixed),
		Header: []string{"l", "alg2_rounds", "alg2_per_log2l", "direct_rounds", "alg2_iters"},
	}
	in := NewInstance(p.Seed, kFixed, p.PerMachine)
	for _, l := range p.ls([]int{4, 16, 64, 256, 1024, 4096}) {
		var r2, rd, it []float64
		for rep := 0; rep < p.Reps; rep++ {
			q := in.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			res, m2, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			_, md, _, err := in.Run(q, l, p.Bandwidth, seed^1, Algo{"direct", core.DirectKNN}, core.Config{})
			if err != nil {
				return nil, err
			}
			r2 = append(r2, float64(m2.Rounds))
			rd = append(rd, float64(md.Rounds))
			it = append(it, float64(res.Iterations))
		}
		mean2 := stats.Summarize(r2).Mean
		tL.AddRow(d(l), f(mean2), f(mean2/math.Log2(float64(l)+1)),
			f(stats.Summarize(rd).Mean), f(stats.Summarize(it).Mean))
	}
	tK := &Table{
		ID:     "E2b",
		Title:  fmt.Sprintf("rounds vs k (l=%d)", lFixed),
		Note:   "Theorem 2.4: the alg2 column should stay flat as k grows",
		Header: []string{"k", "alg2_rounds", "direct_rounds"},
	}
	for _, k := range p.ks([]int{2, 4, 8, 16, 32, 64, 128}) {
		ink := NewInstance(p.Seed, k, p.PerMachine)
		var r2, rd []float64
		for rep := 0; rep < p.Reps; rep++ {
			q := ink.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			_, m2, _, err := ink.Run(q, lFixed, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			_, md, _, err := ink.Run(q, lFixed, p.Bandwidth, seed^1, Algo{"direct", core.DirectKNN}, core.Config{})
			if err != nil {
				return nil, err
			}
			r2 = append(r2, float64(m2.Rounds))
			rd = append(rd, float64(md.Rounds))
		}
		tK.AddRow(d(k), f(stats.Summarize(r2).Mean), f(stats.Summarize(rd).Mean))
	}
	return []*Table{tL, tK}, nil
}

// MessageScaling mirrors RoundsScaling for message and byte counts;
// Theorem 2.4 predicts messages ≈ c·k·log ℓ.
func MessageScaling(p Params) ([]*Table, error) {
	p = p.withDefaults()
	kFixed := 16
	lFixed := 128
	if p.Quick {
		kFixed, lFixed = 4, 32
	}
	tL := &Table{
		ID:     "E3a",
		Title:  fmt.Sprintf("messages vs l (k=%d)", kFixed),
		Header: []string{"l", "messages", "msgs_per_klog2l", "kilobytes"},
	}
	in := NewInstance(p.Seed, kFixed, p.PerMachine)
	for _, l := range p.ls([]int{4, 16, 64, 256, 1024, 4096}) {
		var msgs, kb []float64
		for rep := 0; rep < p.Reps; rep++ {
			q := in.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			_, m2, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, float64(m2.Messages))
			kb = append(kb, float64(m2.Bytes)/1024)
		}
		mean := stats.Summarize(msgs).Mean
		norm := float64(kFixed) * math.Log2(float64(l)+1)
		tL.AddRow(d(l), f(mean), f(mean/norm), f(stats.Summarize(kb).Mean))
	}
	tK := &Table{
		ID:     "E3b",
		Title:  fmt.Sprintf("messages vs k (l=%d)", lFixed),
		Note:   "messages should grow linearly in k: msgs_per_klog2l stays flat",
		Header: []string{"k", "messages", "msgs_per_klog2l", "kilobytes"},
	}
	for _, k := range p.ks([]int{2, 4, 8, 16, 32, 64, 128}) {
		ink := NewInstance(p.Seed, k, p.PerMachine)
		var msgs, kb []float64
		for rep := 0; rep < p.Reps; rep++ {
			q := ink.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			_, m2, _, err := ink.Run(q, lFixed, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, float64(m2.Messages))
			kb = append(kb, float64(m2.Bytes)/1024)
		}
		mean := stats.Summarize(msgs).Mean
		norm := float64(k) * math.Log2(float64(lFixed)+1)
		tK.AddRow(d(k), f(mean), f(mean/norm), f(stats.Summarize(kb).Mean))
	}
	return []*Table{tL, tK}, nil
}

// ---------------------------------------------------------------------------
// E4: Algorithm 1 on raw selection
// ---------------------------------------------------------------------------

// Alg1Rounds measures the bare selection protocol (no ℓ-NN layer) as n
// grows, on benign and adversarially sorted partitions. Theorem 2.2
// predicts ≈ c·log n rounds regardless of layout.
func Alg1Rounds(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k := 8
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if p.Quick {
		k = 4
		ns = []int{1 << 8, 1 << 10}
	}
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Algorithm 1 selection rounds vs n (k=%d, rank n/2)", k),
		Header: []string{"n", "partition", "rounds", "rounds_per_log2n", "iterations", "messages"},
	}
	for _, n := range ns {
		for _, strat := range []points.Partitioner{points.PartitionRandom, points.PartitionSorted} {
			var rounds, iters, msgs []float64
			for rep := 0; rep < p.Reps; rep++ {
				seed := xrand.DeriveSeed(p.Seed, uint64(n*7+rep))
				rng := xrand.New(seed)
				global := points.GenUniformScalars(rng, n, points.PaperDomain)
				parts, err := points.Partition(global, k, strat, rng)
				if err != nil {
					return nil, err
				}
				locals := make([][]keys.Key, k)
				for i, part := range parts {
					ks := make([]keys.Key, part.Len())
					for j := range ks {
						ks[j] = keys.Key{Dist: uint64(part.Pts[j]), ID: part.IDs[j]}
					}
					locals[i] = ks
				}
				var res dsel.Result
				var mu sync.Mutex
				progs := make([]kmachine.Program, k)
				for i := 0; i < k; i++ {
					i := i
					progs[i] = func(m kmachine.Env) error {
						r, err := dsel.FindLSmallest(m, 0, locals[i], n/2, dsel.Options{})
						if err != nil {
							return err
						}
						if m.ID() == 0 {
							mu.Lock()
							res = r
							mu.Unlock()
						}
						return nil
					}
				}
				met, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: seed, BandwidthBytes: p.Bandwidth}, progs)
				if err != nil {
					return nil, err
				}
				rounds = append(rounds, float64(met.Rounds))
				iters = append(iters, float64(res.Iterations))
				msgs = append(msgs, float64(met.Messages))
			}
			mean := stats.Summarize(rounds).Mean
			t.AddRow(d(n), strat.String(), f(mean), f(mean/math.Log2(float64(n))),
				f(stats.Summarize(iters).Mean), f(stats.Summarize(msgs).Mean))
		}
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E5: Lemma 2.3 sampling validation
// ---------------------------------------------------------------------------

// SamplingValidation measures the distribution of surviving candidates after
// Algorithm 2's prune. Lemma 2.3: at most 11ℓ survive with probability
// ≥ 1 − 2/ℓ².
func SamplingValidation(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k := 16
	if p.Quick {
		k = 4
	}
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Lemma 2.3 — surviving candidates after the prune (k=%d)", k),
		Note:  "survivors should sit well below the 11l bound; fallbacks bound by 2/l^2",
		Header: []string{"l", "mean_surv", "p95_surv", "max_surv", "bound_11l",
			"frac_over_11l", "fallbacks", "mc_bound_2_l2"},
	}
	in := NewInstance(p.Seed, k, p.PerMachine)
	for _, l := range p.ls([]int{16, 64, 256, 1024}) {
		if l > k*p.PerMachine {
			continue
		}
		var surv []float64
		over, fallbacks := 0, 0
		for rep := 0; rep < p.Reps*4; rep++ {
			q := in.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			res, _, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			surv = append(surv, float64(res.Survivors))
			if res.Survivors > int64(11*l) {
				over++
			}
			if res.FellBack {
				fallbacks++
			}
		}
		s := stats.Summarize(surv)
		t.AddRow(d(l), f(s.Mean), f(s.P95), f(s.Max), d(11*l),
			f(float64(over)/float64(len(surv))), d(fallbacks), f(2/float64(l*l)))
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E6: Lemma 2.1 pivot uniformity
// ---------------------------------------------------------------------------

// PivotUniformity observes every pivot drawn by Algorithm 1 across repeated
// runs, maps it to its rank within the active range, and chi-square-tests
// the bucketed ranks against uniformity (Lemma 2.1).
func PivotUniformity(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, n := 8, 1<<12
	reps := p.Reps * 40
	if p.Quick {
		k, n = 4, 1<<9
		reps = p.Reps * 20
	}
	rng := xrand.New(p.Seed)
	global := points.GenUniformScalars(rng, n, points.PaperDomain)
	parts, err := points.Partition(global, k, points.PartitionRandom, rng)
	if err != nil {
		return nil, err
	}
	locals := make([][]keys.Key, k)
	var all []keys.Key
	for i, part := range parts {
		ks := make([]keys.Key, part.Len())
		for j := range ks {
			ks[j] = keys.Key{Dist: uint64(part.Pts[j]), ID: part.IDs[j]}
		}
		locals[i] = ks
		all = append(all, ks...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Less(all[b]) })

	type pivotEvent struct{ pivot, lo, hi keys.Key }
	var mu sync.Mutex
	var events []pivotEvent
	for rep := 0; rep < reps; rep++ {
		progs := make([]kmachine.Program, k)
		for i := 0; i < k; i++ {
			i := i
			opts := dsel.Options{}
			if i == 0 {
				opts.OnPivot = func(pivot, lo, hi keys.Key, total int64) {
					mu.Lock()
					events = append(events, pivotEvent{pivot, lo, hi})
					mu.Unlock()
				}
			}
			progs[i] = func(m kmachine.Env) error {
				_, err := dsel.FindLSmallest(m, 0, locals[i], n/2, opts)
				return err
			}
		}
		seed := xrand.DeriveSeed(p.Seed, uint64(rep))
		if _, err := kmachine.RunPrograms(kmachine.Config{K: k, Seed: seed, BandwidthBytes: p.Bandwidth}, progs); err != nil {
			return nil, err
		}
	}

	// Bucket each pivot's 0-based rank within its active range. Ranges
	// with few points cannot populate all buckets (rank·B/total skips
	// values), which would masquerade as non-uniformity, so only ranges
	// with ≥ 20 points per bucket contribute.
	const buckets = 10
	const minTotal = 20 * buckets
	counts := make([]int, buckets)
	skipped := 0
	for _, ev := range events {
		total := seqselect.CountInRange(all, ev.lo, ev.hi)
		rank := seqselect.CountInRange(all, ev.lo, ev.pivot) - 1
		if rank < 0 {
			continue
		}
		if total < minTotal {
			skipped++
			continue
		}
		b := rank * buckets / total
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	chi2, dof := stats.ChiSquareUniform(counts)
	crit := stats.ChiSquareCritical999(dof)
	verdict := "uniform (accept)"
	if chi2 > crit {
		verdict = "NOT uniform (reject)"
	}
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("Lemma 2.1 — pivot rank distribution over %d pivots", len(events)-skipped),
		Note: fmt.Sprintf("chi2=%.2f dof=%d crit(99.9%%)=%.2f → %s (%d small-range pivots excluded)",
			chi2, dof, crit, verdict, skipped),
		Header: []string{"bucket", "count"},
	}
	for i, c := range counts {
		t.AddRow(fmt.Sprintf("[%d%%,%d%%)", i*buckets, (i+1)*buckets), d(c))
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E7: baselines
// ---------------------------------------------------------------------------

// Baselines runs the full algorithm roster over a (k, ℓ) grid. Expected
// shape: simple = Θ(ℓ) rounds; binsearch ≈ constant (domain bits) rounds;
// saukas-song = Θ(log kℓ); alg2 smallest and k-independent.
func Baselines(p Params) ([]*Table, error) {
	p = p.withDefaults()
	t := &Table{
		ID:     "E7",
		Title:  "algorithm comparison (rounds / messages / traffic / modeled time)",
		Header: []string{"k", "l", "algo", "rounds", "messages", "kilobytes", "iters", "modeled_ms"},
	}
	for _, k := range p.ks([]int{4, 16, 64}) {
		in := NewInstance(p.Seed, k, p.PerMachine)
		for _, l := range p.ls([]int{64, 1024}) {
			if l > k*p.PerMachine {
				continue
			}
			for _, algo := range Algos {
				var rounds, msgs, kb, iters, ms []float64
				for rep := 0; rep < p.Reps; rep++ {
					q := in.Query(p.Seed, rep)
					seed := xrand.DeriveSeed(p.Seed, uint64(rep))
					res, met, _, err := in.Run(q, l, p.Bandwidth, seed, algo, core.Config{})
					if err != nil {
						return nil, fmt.Errorf("%s k=%d l=%d: %w", algo.Name, k, l, err)
					}
					rounds = append(rounds, float64(met.Rounds))
					msgs = append(msgs, float64(met.Messages))
					kb = append(kb, float64(met.Bytes)/1024)
					iters = append(iters, float64(res.Iterations))
					ms = append(ms, met.ModeledTime(p.Model).Seconds()*1e3)
				}
				t.AddRow(d(k), d(l), algo.Name,
					f(stats.Summarize(rounds).Mean), f(stats.Summarize(msgs).Mean),
					f(stats.Summarize(kb).Mean), f(stats.Summarize(iters).Mean),
					f(stats.Summarize(ms).Mean))
			}
		}
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E8: wall-clock parallel speedup
// ---------------------------------------------------------------------------

// WallClock fixes the total dataset size and splits it over more and more
// machines (goroutines), reproducing the Section 3 observation that the
// measured speedup grows with k because per-machine local computation
// shrinks. Reports the parallel critical path and modeled time per k.
func WallClock(p Params) ([]*Table, error) {
	p = p.withDefaults()
	totalN := 1 << 19
	l := 256
	ks := p.Ks
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16, 32}
	}
	if p.Quick {
		totalN = 1 << 12
		l = 32
		ks = []int{2, 4}
	}
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("parallel speedup at fixed total n=%d, l=%d", totalN, l),
		Note:  "critical_ms is the measured parallel compute path; speedup is vs the smallest k",
		Header: []string{"k", "points/machine", "critical_ms", "modeled_ms",
			"compute_speedup", "modeled_speedup"},
	}
	var baseCritical, baseModeled float64
	for idx, k := range ks {
		in := NewInstance(p.Seed, k, totalN/k)
		var crit, modeled []float64
		for rep := 0; rep < p.Reps; rep++ {
			q := in.Query(p.Seed, rep)
			seed := xrand.DeriveSeed(p.Seed, uint64(rep))
			_, met, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], core.Config{})
			if err != nil {
				return nil, err
			}
			// Use the slowest machine's total compute, not the
			// per-round critical path: the workload is dominated by
			// the single top-ℓ scan, and summing per-round maxima
			// would accumulate clock jitter across ~100 rounds.
			compute := met.MaxMachineCompute()
			crit = append(crit, compute.Seconds()*1e3)
			modeled = append(modeled, (time.Duration(met.Rounds)*p.Model.RoundLatency+compute).Seconds()*1e3)
		}
		c := stats.Summarize(crit).Mean
		m := stats.Summarize(modeled).Mean
		if idx == 0 {
			baseCritical, baseModeled = c, m
		}
		t.AddRow(d(k), d(totalN/k), f(c), f(m),
			f(stats.Ratio(baseCritical, c)), f(stats.Ratio(baseModeled, m)))
	}
	return []*Table{t}, nil
}

// ---------------------------------------------------------------------------
// E9: constants ablation
// ---------------------------------------------------------------------------

// Constants sweeps the Lemma 2.3 constants. Small factors prune harder but
// fail (fall back) more often; the paper's (12, 21) should show a near-zero
// fallback rate with a modest survivor count.
func Constants(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 8, 256
	samples := []int{2, 4, 8, 12}
	cuts := []int{3, 7, 21, 42}
	if p.Quick {
		k, l = 4, 64
		samples = []int{4, 12}
		cuts = []int{7, 21}
	}
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("sampling-constant ablation (k=%d, l=%d)", k, l),
		Note:   "paper uses sample=12, cut=21",
		Header: []string{"sample_factor", "cut_factor", "fallback_rate", "mean_surv", "surv_per_l", "alg2_rounds"},
	}
	in := NewInstance(p.Seed, k, p.PerMachine)
	for _, sf := range samples {
		for _, cf := range cuts {
			var surv, rounds []float64
			fallbacks := 0
			for rep := 0; rep < p.Reps*2; rep++ {
				q := in.Query(p.Seed, rep)
				seed := xrand.DeriveSeed(p.Seed, uint64(rep))
				cfg := core.Config{SampleFactor: sf, CutFactor: cf}
				res, met, _, err := in.Run(q, l, p.Bandwidth, seed, Algos[0], cfg)
				if err != nil {
					return nil, err
				}
				surv = append(surv, float64(res.Survivors))
				rounds = append(rounds, float64(met.Rounds))
				if res.FellBack {
					fallbacks++
				}
			}
			s := stats.Summarize(surv)
			t.AddRow(d(sf), d(cf), f(float64(fallbacks)/float64(p.Reps*2)),
				f(s.Mean), f(s.Mean/float64(l)), f(stats.Summarize(rounds).Mean))
		}
	}
	return []*Table{t}, nil
}
