// Package bench is the experiment harness: it regenerates every figure and
// quantitative claim of the paper's evaluation as a table of measurements
// (E1–E9), plus the serving-path experiments this repository adds on top —
// E10 (persistent simulator runtime vs one-shot) and E11 (resident TCP mesh
// vs one-shot, over real loopback sockets).
//
// Each experiment is a pure function from Params to tables; cmd/knnbench
// renders them as text or CSV, and bench_test.go smoke-tests each one in
// Quick mode. The workload reproduces Section 3 of the paper: every machine
// independently generates uniform random scalar points in [0, 2³²−1] and
// queries are uniform in the same range.
package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"distknn/internal/core"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// Params are the knobs shared by all experiments. Zero values select
// defaults sized for a laptop run; Quick shrinks everything for CI.
type Params struct {
	// Seed drives workload generation and the simulator.
	Seed uint64
	// Reps is the number of repeated queries per configuration (the paper
	// averages 30–100 runs).
	Reps int
	// PerMachine is the number of points each machine generates (the
	// paper used 2²²; the default is 2¹⁴ so the full suite runs in
	// seconds — pass the paper's value for a full-scale run).
	PerMachine int
	// Bandwidth is the per-link capacity in bytes/round (0 = default).
	Bandwidth int
	// Ks and Ls override the swept machine counts and ℓ values.
	Ks, Ls []int
	// Model converts rounds to modeled wall time.
	Model kmachine.CostModel
	// Quick shrinks sweeps and sizes to smoke-test scale.
	Quick bool
}

func (p Params) withDefaults() Params {
	if p.Reps == 0 {
		p.Reps = 5
		if p.Quick {
			p.Reps = 2
		}
	}
	if p.PerMachine == 0 {
		p.PerMachine = 1 << 14
		if p.Quick {
			p.PerMachine = 1 << 9
		}
	}
	if p.Model.RoundLatency == 0 {
		p.Model = kmachine.DefaultCostModel
	}
	return p
}

func (p Params) ks(def []int) []int {
	if len(p.Ks) > 0 {
		return p.Ks
	}
	if p.Quick {
		return []int{2, 4}
	}
	return def
}

func (p Params) ls(def []int) []int {
	if len(p.Ls) > 0 {
		return p.Ls
	}
	if p.Quick {
		return []int{8, 64}
	}
	return def
}

// Table is a rendered experiment result. The json tags define the schema
// cmd/knnbench -json emits, which downstream tooling tracks across PRs
// (BENCH_*.json); renaming them is a breaking change.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the table as CSV with a leading comment line.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	writeLine := func(cells []string) error {
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Algo names a distributed ℓ-NN algorithm under test.
type Algo struct {
	Name string
	Fn   func(m kmachine.Env, cfg core.Config, local []points.Item) (core.Result, error)
}

// Algos is the comparison roster: the paper's algorithm, its un-sampled
// variant, the evaluation baseline, and the two related-work baselines.
var Algos = []Algo{
	{"alg2", core.KNN},
	{"direct", core.DirectKNN},
	{"simple", core.SimpleKNN},
	{"saukas-song", core.SaukasSongKNN},
	{"binsearch", core.BinarySearchKNN},
}

// Instance is a generated workload: k machines, each holding PerMachine
// uniform scalar points, exactly as in the paper's experiment.
type Instance struct {
	K     int
	Parts []*points.Set[points.Scalar]
}

// NewInstance generates the per-machine datasets. Machine i draws from its
// own random stream and owns the ID block [i·n+1, (i+1)·n].
func NewInstance(seed uint64, k, perMachine int) *Instance {
	in := &Instance{K: k, Parts: make([]*points.Set[points.Scalar], k)}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := xrand.NewStream(seed, uint64(i))
			s := points.GenUniformScalars(rng, perMachine, points.PaperDomain)
			for j := range s.IDs {
				s.IDs[j] = uint64(i)*uint64(perMachine) + uint64(j) + 1
			}
			in.Parts[i] = s
		}(i)
	}
	wg.Wait()
	return in
}

// Query draws the rep-th query point for this instance.
func (in *Instance) Query(seed uint64, rep int) points.Scalar {
	rng := xrand.NewStream(seed, 1<<40+uint64(rep))
	return points.Scalar(rng.Uint64N(points.PaperDomain))
}

// Run executes one algorithm for one query across the instance's machines.
// The local top-ℓ scan happens inside each machine's program, so
// CriticalCompute reflects the real parallel preprocessing cost. It returns
// the leader-agreed result, the run metrics and the harness wall time.
func (in *Instance) Run(q points.Scalar, l, bandwidth int, seed uint64,
	algo Algo, cfg core.Config) (core.Result, *kmachine.Metrics, time.Duration, error) {
	cfg.L = l
	var mu sync.Mutex
	var res core.Result
	progs := make([]kmachine.Program, in.K)
	for i := 0; i < in.K; i++ {
		i := i
		progs[i] = func(m kmachine.Env) error {
			local := in.Parts[i].TopLItems(q, l)
			r, err := algo.Fn(m, cfg, local)
			if err != nil {
				return err
			}
			if m.ID() == cfg.Leader {
				mu.Lock()
				res = r
				mu.Unlock()
			}
			return nil
		}
	}
	start := time.Now()
	met, err := kmachine.RunPrograms(kmachine.Config{
		K:              in.K,
		Seed:           seed,
		BandwidthBytes: bandwidth,
		MeasureCompute: true,
	}, progs)
	wall := time.Since(start)
	if err != nil {
		return core.Result{}, nil, wall, err
	}
	return res, met, wall, nil
}

// f formats a float compactly for table cells.
func f(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x < 0.01:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// d formats an integer cell.
func d[T int | int64](x T) string { return fmt.Sprintf("%d", x) }
