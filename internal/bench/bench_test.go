package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"distknn"
	"distknn/internal/core"
)

func quickParams() Params {
	return Params{Seed: 42, Quick: true}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickParams())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s table %q has no rows", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					}
				}
			}
		})
	}
}

func TestServeDriver(t *testing.T) {
	values := make([]uint64, 200)
	for i := range values {
		values[i] = uint64(i) * 977
	}
	c, err := distknn.NewScalarCluster(values, nil, distknn.Options{Machines: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	query := func(i int) distknn.Scalar { return distknn.Scalar(i * 131) }

	res := Serve(c, query, 5, 20, 4)
	if res.FirstErr != nil {
		t.Fatal(res.FirstErr)
	}
	if res.OK() != 20 || res.Failed != 0 {
		t.Errorf("ok=%d failed=%d, want 20/0", res.OK(), res.Failed)
	}
	if res.QPS() <= 0 || res.Percentile(0.5) <= 0 || res.Rounds <= 0 {
		t.Errorf("empty measurements: %+v", res)
	}
	for i := 1; i < len(res.Latencies); i++ {
		if res.Latencies[i] < res.Latencies[i-1] {
			t.Fatalf("latencies not sorted at %d", i)
		}
	}

	// Failure path: l > n fails the un-measured warm-up, so the run aborts
	// with only FirstErr set — no measured query was attempted.
	bad := Serve(c, query, len(values)+1, 5, 2)
	if bad.Failed != 0 || bad.OK() != 0 || bad.FirstErr == nil {
		t.Errorf("warm-up failure: ok=%d failed=%d err=%v", bad.OK(), bad.Failed, bad.FirstErr)
	}
	if bad.Percentile(0.5) != 0 {
		t.Errorf("percentile of zero successes should be 0")
	}
	if bad.QPS() != 0 {
		t.Errorf("QPS of an aborted run should be 0")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("figure2"); !ok {
		t.Errorf("figure2 must exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Errorf("unknown id must not resolve")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		ID:     "X",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	var text, csv bytes.Buffer
	tb.Render(&text)
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "a note") {
		t.Errorf("Render missing title/note:\n%s", text.String())
	}
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[1] != "a,bb" || lines[2] != "1,2" {
		t.Errorf("CSV = %q", csv.String())
	}
}

func TestFigure2RatiosFavorAlg2AtLargeL(t *testing.T) {
	// Structural acceptance: at the largest (k, l) cell the rounds ratio
	// must clearly exceed 1 (the paper's headline).
	p := quickParams()
	p.Ks = []int{4}
	p.Ls = []int{512}
	p.PerMachine = 1 << 11
	tables, err := Figure2(p)
	if err != nil {
		t.Fatal(err)
	}
	last := tables[0].Rows[len(tables[0].Rows)-1]
	// Header: k, l, time_ratio, rounds_ratio, ...
	ratio, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatalf("rounds_ratio cell %q: %v", last[3], err)
	}
	if ratio < 2 {
		t.Errorf("rounds ratio %g at l=512 — expected the simple method to lose clearly", ratio)
	}
}

func TestInstanceDeterministicAndDisjointIDs(t *testing.T) {
	a := NewInstance(7, 3, 100)
	b := NewInstance(7, 3, 100)
	seen := make(map[uint64]bool)
	for i := range a.Parts {
		if a.Parts[i].Len() != 100 {
			t.Fatalf("machine %d has %d points", i, a.Parts[i].Len())
		}
		for j := range a.Parts[i].Pts {
			if a.Parts[i].Pts[j] != b.Parts[i].Pts[j] {
				t.Fatalf("instance not deterministic at machine %d", i)
			}
			id := a.Parts[i].IDs[j]
			if seen[id] {
				t.Fatalf("duplicate ID %d across machines", id)
			}
			seen[id] = true
		}
	}
	if a.Query(7, 0) != b.Query(7, 0) {
		t.Errorf("queries not deterministic")
	}
	if a.Query(7, 0) == a.Query(7, 1) {
		t.Errorf("distinct reps should give distinct queries")
	}
}

func TestInstanceRunExactness(t *testing.T) {
	in := NewInstance(9, 4, 500)
	q := in.Query(9, 0)
	res, met, _, err := in.Run(q, 50, 0, 1, Algos[0], core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds == 0 {
		t.Errorf("expected communication")
	}
	if res.Boundary.ID == 0 {
		t.Errorf("boundary not set: %+v", res)
	}
	if met.CriticalCompute <= 0 {
		t.Errorf("MeasureCompute must be on in harness runs")
	}
}
