package bench

import (
	"fmt"
	"sync"
	"time"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// TCPSched measures what the frontend's epoch scheduler buys for many
// small clients — the workload PR 4's frontend served worst: independent
// clients issuing single queries, each previously queued behind every other
// client's full epoch round trip.
//
// One row per scheduler configuration, all over identical shards and the
// same total query stream split across the concurrent clients:
//
//   - window=1, batching off — the serialized baseline (one epoch in
//     flight at a time; what the frontend did before the scheduler);
//   - growing windows with batching off — pure epoch pipelining: distinct
//     clients' epochs overlap on the mesh, multiplexed by the epoch-tagged
//     frames;
//   - window plus server-side batching — concurrently arriving single
//     queries additionally coalesce into lockstep batch epochs
//     (time/size-bounded admission buckets), so the E11b batch win applies
//     to clients that batch nothing.
//
// Answers are bit-identical across every row (the scheduler determinism
// tests pin this); only the throughput moves.
func TCPSched(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 4, 16
	clients := 8
	queries := 512
	perNode := 1 << 10
	type cfg struct {
		window int
		batch  bool
		linger time.Duration
	}
	cfgs := []cfg{
		{window: 1},
		{window: 4},
		{window: 8},
		{window: 8, batch: true, linger: 200 * time.Microsecond},
		{window: 8, batch: true, linger: time.Millisecond},
	}
	if p.Quick {
		k, l = 3, 4
		queries = 96
		perNode = 256
		cfgs = []cfg{
			{window: 1},
			{window: 8},
			{window: 8, batch: true, linger: 200 * time.Microsecond},
		}
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	t := &Table{
		ID: "E13",
		Title: fmt.Sprintf("tcpsched — frontend epoch scheduler under %d concurrent single-query clients (k=%d, l=%d, %d pts/node, %d queries)",
			clients, k, l, perNode, queries),
		Note: "window=1 without batching is the pre-scheduler serialized frontend; pipelining overlaps distinct clients' " +
			"epochs on one mesh, and server-side batching additionally coalesces concurrent singles into lockstep epochs — " +
			"answers are bit-identical in every row",
		Header: []string{"window", "server_batch", "linger_us", "wall_ms", "qps", "speedup_vs_serialized"},
	}

	shards := distknn.PaperShards(seed, perNode)
	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}

	var baseQPS float64
	for ci, c := range cfgs {
		srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed, shards,
			distknn.NodeOptions{}, distknn.FrontendOptions{
				Window:      c.window,
				ServerBatch: c.batch,
				Linger:      c.linger,
			})
		if err != nil {
			return nil, fmt.Errorf("tcpsched serve (window=%d): %w", c.window, err)
		}

		// One connection per client, dialed (and warmed) outside the clock.
		rcs := make([]*distknn.RemoteCluster[distknn.Scalar], clients)
		for i := range rcs {
			if rcs[i], err = distknn.DialScalarCluster(srv.Addr()); err != nil {
				srv.Close()
				return nil, fmt.Errorf("tcpsched dial: %w", err)
			}
		}
		if _, _, err := rcs[0].KNN(queryAt(0), l); err != nil {
			srv.Close()
			return nil, fmt.Errorf("tcpsched warm-up: %w", err)
		}

		var wg sync.WaitGroup
		errs := make([]error, clients)
		start := time.Now()
		for ciI := 0; ciI < clients; ciI++ {
			wg.Add(1)
			go func(ciI int) {
				defer wg.Done()
				for i := ciI; i < queries; i += clients {
					if _, _, err := rcs[ciI].KNN(queryAt(i), l); err != nil {
						errs[ciI] = fmt.Errorf("client %d query %d: %w", ciI, i, err)
						return
					}
				}
			}(ciI)
		}
		wg.Wait()
		wall := time.Since(start)
		for i := range rcs {
			rcs[i].Close()
		}
		if err := srv.Close(); err != nil {
			return nil, fmt.Errorf("tcpsched shutdown: %w", err)
		}
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("tcpsched: %w", e)
			}
		}

		qps := float64(queries) / wall.Seconds()
		if ci == 0 {
			baseQPS = qps
		}
		batch := "off"
		lingerUS := 0.0
		if c.batch {
			batch = "on"
			lingerUS = float64(c.linger.Microseconds())
		}
		t.AddRow(d(c.window), batch, f(lingerUS), f(wall.Seconds()*1e3), f(qps), f(qps/baseQPS))
	}
	return []*Table{t}, nil
}
