package bench

import (
	"fmt"
	"time"

	"distknn"
	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/stats"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

// TCPServe measures what the resident TCP serving cluster saves over real
// loopback sockets — the socket analogue of E10b's simulator comparison.
//
// Two deployments answer the same serial query stream over the same shards:
//
//   - one-shot: every query pays the full pre-serving lifecycle — dial the
//     coordinator, rendezvous, build the k·(k−1)/2-connection mesh, elect a
//     leader, answer, tear everything down (what cmd/knnnode did per query
//     before the serving runtime);
//
//   - resident: one frontend + k resident nodes mesh up and elect once,
//     then every query is a single BSP epoch on the standing mesh, asked
//     through a RemoteCluster client.
//
// The wall-clock delta is pure session overhead removed from the
// steady-state path; mean_rounds additionally shows the election round(s)
// the resident path amortizes away.
func TCPServe(p Params) ([]*Table, error) {
	p = p.withDefaults()
	k, l := 4, 16
	queries := 64
	perNode := 1 << 10
	if p.Quick {
		k, l = 3, 8
		queries = 12
		perNode = 256
	}
	if len(p.Ks) > 0 {
		k = p.Ks[0]
	}
	if len(p.Ls) > 0 {
		l = p.Ls[0]
	}
	seed := p.Seed

	// Shared workload (the paper's synthetic scheme, via the same provider
	// knnnode -serve uses). Both deployments get their data pre-built so
	// the comparison isolates transport and session lifecycle, not data
	// loading.
	shards := distknn.PaperShards(seed, perNode)
	sets := make([]*points.Set[points.Scalar], k)
	for id := range sets {
		shard, err := shards(id, k)
		if err != nil {
			return nil, fmt.Errorf("tcpserve: %w", err)
		}
		set, err := points.NewSet(shard.Points, shard.Labels, points.ScalarMetric, shard.FirstID)
		if err != nil {
			return nil, fmt.Errorf("tcpserve: %w", err)
		}
		sets[id] = set
	}
	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}

	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("tcpserve — one-shot mesh per query vs resident mesh over loopback TCP (k=%d, l=%d, %d pts/node)", k, l, perNode),
		Note: "one-shot pays rendezvous + mesh build + election + teardown per query; " +
			"resident pays them once and runs one BSP epoch per query (mean_rounds excludes the amortized election)",
		Header: []string{"mode", "queries", "wall_ms", "qps", "mean_rounds", "mean_msgs"},
	}

	// Resident: one serving session, a stream of query epochs.
	srv, err := distknn.ServeLocal(k, seed, shards, distknn.NodeOptions{})
	if err != nil {
		return nil, fmt.Errorf("tcpserve resident: %w", err)
	}
	rc, err := distknn.DialCluster(srv.Addr())
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("tcpserve dial: %w", err)
	}
	var resRounds, resMsgs []float64
	start := time.Now()
	for i := 0; i < queries; i++ {
		_, qs, err := rc.KNN(queryAt(i), l)
		if err != nil {
			rc.Close()
			srv.Close()
			return nil, fmt.Errorf("tcpserve resident query %d: %w", i, err)
		}
		resRounds = append(resRounds, float64(qs.Rounds))
		resMsgs = append(resMsgs, float64(qs.Messages))
	}
	resWall := time.Since(start)
	rc.Close()
	if err := srv.Close(); err != nil {
		return nil, fmt.Errorf("tcpserve resident shutdown: %w", err)
	}

	// One-shot: a full cluster lifecycle per query over the same shards.
	var osRounds, osMsgs []float64
	start = time.Now()
	for i := 0; i < queries; i++ {
		q := queryAt(i)
		prog := func(m kmachine.Env) error {
			leader, err := election.MinGUID(m)
			if err != nil {
				return err
			}
			_, err = core.KNN(m, core.Config{Leader: leader, L: l}, sets[m.ID()].TopLItems(q, l))
			return err
		}
		metrics, errs, err := tcp.RunLocal(k, seed, prog)
		if err != nil {
			return nil, fmt.Errorf("tcpserve one-shot query %d: %w", i, err)
		}
		for id, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("tcpserve one-shot query %d node %d: %w", i, id, e)
			}
		}
		rounds, msgs := 0, int64(0)
		for _, met := range metrics {
			if met.Rounds > rounds {
				rounds = met.Rounds
			}
			msgs += met.Messages
		}
		osRounds = append(osRounds, float64(rounds))
		osMsgs = append(osMsgs, float64(msgs))
	}
	osWall := time.Since(start)

	t.AddRow("one-shot", d(queries), f(osWall.Seconds()*1e3),
		f(float64(queries)/osWall.Seconds()),
		f(stats.Summarize(osRounds).Mean), f(stats.Summarize(osMsgs).Mean))
	t.AddRow("resident", d(queries), f(resWall.Seconds()*1e3),
		f(float64(queries)/resWall.Seconds()),
		f(stats.Summarize(resRounds).Mean), f(stats.Summarize(resMsgs).Mean))
	return []*Table{t}, nil
}
