package distknn_test

import (
	"testing"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/testutil"
)

// metricCase wires one served vector metric to its in-process counterpart.
type metricCase struct {
	name   string
	pt     distknn.PointType[distknn.Vector]
	metric distknn.Metric[distknn.Vector]
}

func vectorMetricCases() []metricCase {
	return []metricCase{
		{"l1", distknn.L1Points(), points.L1},
		{"linf", distknn.LInfPoints(), points.LInf},
		{"cosine", distknn.CosinePoints(), points.Cosine},
	}
}

// TestRemoteMetricsMatchInProcess serves each alternative vector metric over
// TCP and demands bit-identical answers to the in-process cluster built with
// the same points.Metric over the same global dataset — the L2 acceptance
// test, repeated for every metric the facade exposes.
func TestRemoteMetricsMatchInProcess(t *testing.T) {
	const (
		k       = 3
		perNode = 150
		dim     = 4
		seed    = 271
		queries = 40
		l       = 8
	)
	for _, mc := range vectorMetricCases() {
		t.Run(mc.name, func(t *testing.T) {
			shards := distknn.UniformVectorShards(seed, perNode, dim)
			_, rc := testutil.StartCluster(t, mc.pt, k, seed, shards, distknn.NodeOptions{}, distknn.FrontendOptions{})

			vecs, labels := testutil.Merged(t, shards, k)
			local, err := distknn.NewCluster(vecs, labels, mc.metric, distknn.Options{Machines: k, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()

			for i := 0; i < queries; i++ {
				q := vectorQueryAt(seed, dim, i)
				remote, rstats, err := rc.KNN(q, l)
				if err != nil {
					t.Fatalf("remote query %d: %v", i, err)
				}
				want, lstats, err := local.KNN(q, l)
				if err != nil {
					t.Fatalf("local query %d: %v", i, err)
				}
				if len(remote) != len(want) {
					t.Fatalf("query %d: %d neighbors remote, %d local", i, len(remote), len(want))
				}
				for j := range want {
					if remote[j] != want[j] {
						t.Fatalf("query %d neighbor %d: remote %+v != local %+v", i, j, remote[j], want[j])
					}
				}
				if rstats.Boundary != lstats.Boundary {
					t.Fatalf("query %d: boundary remote %v != local %v", i, rstats.Boundary, lstats.Boundary)
				}
			}

			for i := 0; i < 10; i++ {
				q := vectorQueryAt(seed, dim, 1000+i)
				rl, _, err := rc.Classify(q, l)
				if err != nil {
					t.Fatal(err)
				}
				ll, _, err := local.Classify(q, l)
				if err != nil {
					t.Fatal(err)
				}
				if rl != ll {
					t.Fatalf("classify %d: remote %g != local %g", i, rl, ll)
				}
			}
		})
	}
}

// TestRemoteMetricsPruned runs the L1 and L∞ metrics (both true metrics, so
// both carry pruners) through pruned dispatch against full scatter. Cosine
// violates the triangle inequality: its PointType must refuse to build a
// pruner, so a cosine cluster configured "with pruning" silently serves
// full scatter — exercised here to pin the refusal.
func TestRemoteMetricsPruned(t *testing.T) {
	const (
		k       = 3
		perNode = 100
		dim     = 3
		seed    = 828
		queries = 25
		l       = 6
	)
	if distknn.CosinePoints().Pruner() != nil {
		t.Fatal("cosine is not a metric; its PointType must not offer a pruner")
	}
	for _, mc := range vectorMetricCases() {
		t.Run(mc.name, func(t *testing.T) {
			shards := distknn.UniformVectorShards(seed, perNode, dim)
			pruned, full := prunedTwins(t, mc.pt, k, seed, shards)
			qs := make([]distknn.Vector, queries)
			for i := range qs {
				qs[i] = vectorQueryAt(seed, dim, i)
			}
			comparePruned(t, pruned, full, k, qs, l)
		})
	}
}

// TestRemoteMetricsDimMismatch: every metric's compatibility check fails a
// wrong-dimension query cleanly and leaves the session serving.
func TestRemoteMetricsDimMismatch(t *testing.T) {
	const (
		k       = 2
		perNode = 40
		dim     = 3
		seed    = 19
		l       = 3
	)
	for _, mc := range vectorMetricCases() {
		t.Run(mc.name, func(t *testing.T) {
			_, rc := testutil.StartCluster(t, mc.pt, k, seed,
				distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{}, distknn.FrontendOptions{})
			if _, _, err := rc.KNN(make(distknn.Vector, dim+2), l); err == nil {
				t.Fatal("mismatched dimension should fail")
			}
			if _, _, err := rc.KNN(vectorQueryAt(seed, dim, 1), l); err != nil {
				t.Fatalf("session should survive a failed query: %v", err)
			}
		})
	}
}
