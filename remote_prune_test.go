package distknn_test

import (
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"distknn"
	"distknn/internal/metricindex"
	"distknn/internal/points"
	"distknn/internal/testutil"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// prunedTwins serves the same shards twice — once with metric-index pruned
// dispatch, once with plain full scatter — so tests can demand the two
// clusters agree bit for bit on every answer. The metamorphic property under
// test: pruning is an optimization of *where* the query travels, never of
// *what* it returns.
func prunedTwins[P any](t *testing.T, pt distknn.PointType[P], k int, seed uint64, shards distknn.ShardProvider[P]) (pruned, full *distknn.RemoteCluster[P]) {
	t.Helper()
	_, pruned = testutil.StartCluster(t, pt, k, seed, shards, distknn.NodeOptions{},
		distknn.FrontendOptions{Pruner: pt.Pruner()})
	_, full = testutil.StartCluster(t, pt, k, seed, shards, distknn.NodeOptions{}, distknn.FrontendOptions{})
	return pruned, full
}

// comparePruned sends every query to both twins and requires bit-identical
// neighbors and boundaries. Only Items and Boundary are compared: the pruned
// path reports its own stats convention (Messages = nodes contacted,
// Rounds = dispatch waves), so protocol-cost fields legitimately differ.
// Returns how many queries the pruned frontend answered without contacting
// all k nodes. A frontend whose point type refuses a pruner (cosine) serves
// full scatter and reports BSP mesh stats instead, so the nodes-contacted
// bound only applies to replies in the pruned convention (Bytes == 0).
func comparePruned[P any](t *testing.T, pruned, full *distknn.RemoteCluster[P], k int, queries []P, l int) int {
	t.Helper()
	prunedCount := 0
	for i, q := range queries {
		pitems, pstats, err := pruned.KNN(q, l)
		if err != nil {
			t.Fatalf("pruned query %d: %v", i, err)
		}
		fitems, fstats, err := full.KNN(q, l)
		if err != nil {
			t.Fatalf("full-scatter query %d: %v", i, err)
		}
		if len(pitems) != len(fitems) {
			t.Fatalf("query %d: pruned %d items, full %d", i, len(pitems), len(fitems))
		}
		for j := range fitems {
			if pitems[j] != fitems[j] {
				t.Fatalf("query %d item %d: pruned %+v != full %+v", i, j, pitems[j], fitems[j])
			}
		}
		if pstats.Boundary != fstats.Boundary {
			t.Fatalf("query %d: pruned boundary %v != full %v", i, pstats.Boundary, fstats.Boundary)
		}
		if pstats.Bytes == 0 {
			if pstats.Messages < 1 || pstats.Messages > int64(k) {
				t.Fatalf("query %d: pruned contacted %d of %d nodes", i, pstats.Messages, k)
			}
			if pstats.Messages < int64(k) {
				prunedCount++
			}
		}
	}
	return prunedCount
}

// compareClassify does the same for the classification path, whose leader
// vote the pruned frontend replicates from the merged neighbor set.
func compareClassify[P any](t *testing.T, pruned, full *distknn.RemoteCluster[P], queries []P, l int) {
	t.Helper()
	for i, q := range queries {
		pv, _, err := pruned.Classify(q, l)
		if err != nil {
			t.Fatalf("pruned classify %d: %v", i, err)
		}
		fv, _, err := full.Classify(q, l)
		if err != nil {
			t.Fatalf("full classify %d: %v", i, err)
		}
		if pv != fv {
			t.Fatalf("classify %d: pruned %g != full %g", i, pv, fv)
		}
	}
}

func pruneScalarQuery(seed uint64, i int) distknn.Scalar {
	return distknn.Scalar(xrand.NewStream(seed, 1<<45+uint64(i)).Uint64N(points.PaperDomain))
}

// TestPrunedScalarBitIdentical: anchor-clustered scalar shards answered
// through pruned dispatch agree bit for bit with full scatter, and with the
// brute-force oracle over the global dataset (anchor shards carry explicit
// global IDs, so the oracle's keys match exactly).
func TestPrunedScalarBitIdentical(t *testing.T) {
	const (
		k       = 4
		perNode = 120
		seed    = 1009
		queries = 60
		l       = 9
	)
	pruned, full := prunedTwins(t, distknn.ScalarPoints(), k, seed, distknn.AnchorShards(seed, perNode))

	qs := make([]distknn.Scalar, queries)
	for i := range qs {
		qs[i] = pruneScalarQuery(seed, i)
	}
	comparePruned(t, pruned, full, k, qs, l)

	cqs := make([]distknn.Scalar, 20)
	for i := range cqs {
		cqs[i] = pruneScalarQuery(seed, 5000+i)
	}
	compareClassify(t, pruned, full, cqs, l)

	// Oracle: the anchor providers number point j of the global stream as ID
	// j+1, so a brute scan over the same stream predicts the exact keys.
	pts, labels := globalScalarStream(seed, k, perNode)
	set, err := points.NewSet(pts, labels, points.ScalarMetric, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := qs[i]
		got, _, err := pruned.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		want := set.BruteKNN(q, l)
		for j := range want {
			if got[j].Key != want[j].Key {
				t.Fatalf("query %d neighbor %d: pruned %v != oracle %v", i, j, got[j].Key, want[j].Key)
			}
		}
	}
}

// globalScalarStream rebuilds the global dataset the anchor-clustered scalar
// provider partitions: the concatenation of the k per-node uniform streams,
// in global-ID order.
func globalScalarStream(seed uint64, k, perNode int) ([]points.Scalar, []float64) {
	var pts []points.Scalar
	var labels []float64
	for node := 0; node < k; node++ {
		set := points.GenUniformScalars(xrand.NewStream(seed, uint64(node)), perNode, points.PaperDomain)
		pts = append(pts, set.Pts...)
		labels = append(labels, set.Labels...)
	}
	return pts, labels
}

// TestPrunedVectorBitIdentical runs the metamorphic check on L2 vectors over
// anchor-clustered uniform data — the unfavorable regime, where balls
// overlap heavily and most queries must still scatter widely. Correctness
// may not depend on the workload being kind.
func TestPrunedVectorBitIdentical(t *testing.T) {
	const (
		k       = 4
		perNode = 100
		dim     = 4
		seed    = 2025
		queries = 50
		l       = 8
	)
	pruned, full := prunedTwins(t, distknn.VectorPoints(), k, seed, distknn.AnchorVectorShards(seed, perNode, dim))
	qs := make([]distknn.Vector, queries)
	for i := range qs {
		qs[i] = vectorQueryAt(seed, dim, i)
	}
	comparePruned(t, pruned, full, k, qs, l)

	cqs := make([]distknn.Vector, 15)
	for i := range cqs {
		cqs[i] = vectorQueryAt(seed, dim, 5000+i)
	}
	compareClassify(t, pruned, full, cqs, l)

	// Regression rides the pruned path too, replaying the mesh's per-seat
	// summation fold — TestPrunedRegressBitIdentical pins the bits; this is
	// the smoke check that the values agree at all.
	for i := 0; i < 5; i++ {
		q := vectorQueryAt(seed, dim, 7000+i)
		pv, _, err := pruned.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		fv, _, err := full.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if pv != fv {
			t.Fatalf("regress %d: pruned %g != full %g", i, pv, fv)
		}
	}
}

// gaussianQueries draws queries near the blob centers of the Gaussian
// workload — the regime where the triangle inequality actually bites.
func gaussianQueries(seed uint64, n, k, perNode, dim int, sigma float64) []distknn.Vector {
	_, centers := points.GenGaussianClusters(xrand.NewStream(seed, 0), k*perNode, dim, k, sigma)
	qs := make([]distknn.Vector, n)
	for i := range qs {
		rng := xrand.NewStream(seed, 1<<41+uint64(i))
		c := centers[i%k]
		q := make(distknn.Vector, dim)
		for j := range q {
			q[j] = c[j] + rng.NormFloat64()*sigma
		}
		qs[i] = q
	}
	return qs
}

// TestPrunedGaussianPrunes is the favorable-regime check: on well-separated
// Gaussian blobs with anchor-clustered shards, pruned dispatch must both
// stay bit-identical to full scatter AND actually skip nodes — otherwise
// the metric index is decorative.
func TestPrunedGaussianPrunes(t *testing.T) {
	const (
		k       = 6
		perNode = 80
		dim     = 3
		sigma   = 0.02
		seed    = 31337
		queries = 60
		l       = 7
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	pruned, full := prunedTwins(t, distknn.VectorPoints(), k, seed, shards)

	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	prunedCount := comparePruned(t, pruned, full, k, qs, l)
	if prunedCount == 0 {
		t.Fatalf("no query of %d skipped a node on %d well-separated blobs — pruning never engaged", queries, k)
	}
	t.Logf("pruned dispatch skipped nodes on %d/%d queries", prunedCount, queries)

	compareClassify(t, pruned, full, qs[:15], l)
}

// TestPrunedBitVectorBitIdentical covers the medoid path: uniform bit-vector
// shards pin no centroid, so each node summarizes itself around an
// approximate medoid. Hamming balls over uniform data barely prune, but the
// answers must not move.
func TestPrunedBitVectorBitIdentical(t *testing.T) {
	const (
		k       = 3
		perNode = 100
		words   = 2
		seed    = 404
		queries = 40
		l       = 6
	)
	pruned, full := prunedTwins(t, distknn.BitVectorPoints(), k, seed, distknn.UniformBitVectorShards(seed, perNode, words))
	qs := make([]distknn.BitVector, queries)
	for i := range qs {
		qs[i] = bitVectorQueryAt(seed, words, i)
	}
	comparePruned(t, pruned, full, k, qs, l)

	cqs := make([]distknn.BitVector, 10)
	for i := range cqs {
		cqs[i] = bitVectorQueryAt(seed, words, 5000+i)
	}
	compareClassify(t, pruned, full, cqs, l)
}

// TestPrunedDispatchConcurrent hammers the pruned scheduler from several
// clients at once: the two-phase probe→gather dispatch holds one pipeline
// window slot across both phases, and under -race this is the test that
// would catch it cheating.
func TestPrunedDispatchConcurrent(t *testing.T) {
	const (
		k       = 5
		perNode = 80
		dim     = 3
		sigma   = 0.03
		seed    = 777
		queries = 15
		l       = 5
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	pruned, full := prunedTwins(t, distknn.VectorPoints(), k, seed, shards)

	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	want := make([][]distknn.Item, queries)
	for i, q := range qs {
		items, _, err := full.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = items
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				items, _, err := pruned.KNN(q, l)
				if err != nil {
					errs <- err
					return
				}
				for j := range want[i] {
					if items[j] != want[i][j] {
						t.Errorf("query %d item %d: pruned %+v != full %+v", i, j, items[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// comparePrunedBatch is the batch-epoch twin of comparePruned: it sends the
// query stream through KNNBatch in chunks of `batch` to both frontends and
// requires bit-identical neighbors and boundaries on every query. It also
// audits the pruned stats convention for batches — Contacts is the total of
// per-point node contacts, so it must sit in [chunk, k·chunk] whenever the
// pruned path answered — and returns the total contacts across the stream
// (counting k per query for chunks that fell back to scatter).
func comparePrunedBatch[P any](t *testing.T, pruned, full *distknn.RemoteCluster[P], k int, queries []P, l, batch int) int64 {
	t.Helper()
	var contacts int64
	for at := 0; at < len(queries); at += batch {
		end := at + batch
		if end > len(queries) {
			end = len(queries)
		}
		chunk := queries[at:end]
		pres, pstats, err := pruned.KNNBatch(chunk, l)
		if err != nil {
			t.Fatalf("pruned batch at %d: %v", at, err)
		}
		fres, _, err := full.KNNBatch(chunk, l)
		if err != nil {
			t.Fatalf("full batch at %d: %v", at, err)
		}
		if len(pres) != len(chunk) || len(fres) != len(chunk) {
			t.Fatalf("batch at %d: %d pruned / %d full results for %d queries", at, len(pres), len(fres), len(chunk))
		}
		for i := range chunk {
			if pres[i].Boundary != fres[i].Boundary {
				t.Fatalf("batch query %d: pruned boundary %v != full %v", at+i, pres[i].Boundary, fres[i].Boundary)
			}
			if len(pres[i].Neighbors) != len(fres[i].Neighbors) {
				t.Fatalf("batch query %d: pruned %d items, full %d", at+i, len(pres[i].Neighbors), len(fres[i].Neighbors))
			}
			for j := range fres[i].Neighbors {
				if pres[i].Neighbors[j] != fres[i].Neighbors[j] {
					t.Fatalf("batch query %d item %d: pruned %+v != full %+v", at+i, j, pres[i].Neighbors[j], fres[i].Neighbors[j])
				}
			}
		}
		if pstats.Contacts > 0 {
			if pstats.Contacts < int64(len(chunk)) || pstats.Contacts > int64(k*len(chunk)) {
				t.Fatalf("batch at %d: %d contacts for %d queries on %d nodes", at, pstats.Contacts, len(chunk), k)
			}
			contacts += pstats.Contacts
		} else {
			contacts += int64(k * len(chunk))
		}
	}
	return contacts
}

// TestPrunedBatchScalarBitIdentical runs the KNNBatch metamorphic check on
// anchor-clustered scalar shards across ragged batch sizes, including
// batches that do not divide the stream.
func TestPrunedBatchScalarBitIdentical(t *testing.T) {
	const (
		k       = 4
		perNode = 120
		seed    = 1009
		queries = 61
		l       = 9
	)
	pruned, full := prunedTwins(t, distknn.ScalarPoints(), k, seed, distknn.AnchorShards(seed, perNode))
	qs := make([]distknn.Scalar, queries)
	for i := range qs {
		qs[i] = pruneScalarQuery(seed, i)
	}
	for _, batch := range []int{1, 2, 7, 16, queries} {
		comparePrunedBatch(t, pruned, full, k, qs, l, batch)
	}
}

// TestPrunedBatchVectorPrunes is the favorable-regime batch check: on
// well-separated Gaussian blobs the batched pruned path must stay
// bit-identical AND contact well under k nodes per query.
func TestPrunedBatchVectorPrunes(t *testing.T) {
	const (
		k       = 6
		perNode = 80
		dim     = 3
		sigma   = 0.02
		seed    = 31337
		queries = 48
		l       = 7
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	pruned, full := prunedTwins(t, distknn.VectorPoints(), k, seed, shards)
	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	for _, batch := range []int{3, 16} {
		contacts := comparePrunedBatch(t, pruned, full, k, qs, l, batch)
		if contacts >= int64(k*queries) {
			t.Fatalf("batch=%d: %d contacts for %d queries on %d well-separated blobs — batch pruning never engaged",
				batch, contacts, queries, k)
		}
		t.Logf("batch=%d: %.2f nodes contacted per query", batch, float64(contacts)/float64(queries))
	}
}

// TestPrunedBatchBitVectorBitIdentical covers the batched medoid path:
// Hamming shards summarized around approximate medoids barely prune, but a
// batch's answers must not move.
func TestPrunedBatchBitVectorBitIdentical(t *testing.T) {
	const (
		k       = 3
		perNode = 100
		words   = 2
		seed    = 404
		queries = 30
		l       = 6
	)
	pruned, full := prunedTwins(t, distknn.BitVectorPoints(), k, seed, distknn.UniformBitVectorShards(seed, perNode, words))
	qs := make([]distknn.BitVector, queries)
	for i := range qs {
		qs[i] = bitVectorQueryAt(seed, words, i)
	}
	for _, batch := range []int{4, 13} {
		comparePrunedBatch(t, pruned, full, k, qs, l, batch)
	}
}

// TestPrunedBatchMaxBatchBoundary pushes one KNNBatch across the
// wire.MaxBatch chunking boundary: the client splits it into a full
// wire-limit chunk plus a ragged tail, and every answer must still match
// the full-scatter twin bit for bit.
func TestPrunedBatchMaxBatchBoundary(t *testing.T) {
	const (
		k       = 3
		perNode = 40
		seed    = 52
		l       = 3
	)
	pruned, full := prunedTwins(t, distknn.ScalarPoints(), k, seed, distknn.AnchorShards(seed, perNode))
	qs := make([]distknn.Scalar, wire.MaxBatch+5)
	for i := range qs {
		qs[i] = pruneScalarQuery(seed, i)
	}
	comparePrunedBatch(t, pruned, full, k, qs, l, len(qs))
}

// TestPrunedRegressBitIdentical pins the pruned Regress fold: the mean is a
// float64 summation whose rounding depends on evaluation order, so
// bit-equality (math.Float64bits, not ==) across pruned and full scatter
// proves the frontend replays the mesh's leader fold exactly — per-seat
// partials in ascending key order, folded in ascending seat order with 0.0
// for seats holding no winners. The Gaussian workload also checks that some
// of those pruned Regress queries really skipped nodes.
func TestPrunedRegressBitIdentical(t *testing.T) {
	const (
		k       = 6
		perNode = 80
		dim     = 3
		sigma   = 0.02
		seed    = 90210
		queries = 40
		l       = 7
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	pruned, full := prunedTwins(t, distknn.VectorPoints(), k, seed, shards)
	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	prunedCount := 0
	for i, q := range qs {
		pv, pstats, err := pruned.Regress(q, l)
		if err != nil {
			t.Fatalf("pruned regress %d: %v", i, err)
		}
		fv, _, err := full.Regress(q, l)
		if err != nil {
			t.Fatalf("full regress %d: %v", i, err)
		}
		if math.Float64bits(pv) != math.Float64bits(fv) {
			t.Fatalf("regress %d: pruned %x != full %x (%g vs %g)",
				i, math.Float64bits(pv), math.Float64bits(fv), pv, fv)
		}
		if pstats.Bytes == 0 && pstats.Messages < int64(k) {
			prunedCount++
		}
	}
	if prunedCount == 0 {
		t.Fatalf("no regress query of %d skipped a node on %d well-separated blobs", queries, k)
	}

	// The unfavorable scalar control: uniform data, wide balls, same bits.
	spruned, sfull := prunedTwins(t, distknn.ScalarPoints(), 4, seed+1, distknn.AnchorShards(seed+1, 100))
	for i := 0; i < 25; i++ {
		q := pruneScalarQuery(seed+1, 600+i)
		pv, _, err := spruned.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		fv, _, err := sfull.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pv) != math.Float64bits(fv) {
			t.Fatalf("scalar regress %d: pruned %x != full %x", i, math.Float64bits(pv), math.Float64bits(fv))
		}
	}
}

// TestPrunedMultiProbeBitIdentical sweeps FrontendOptions.Probes: a wider
// bounding wave changes where queries travel (and how tight the wave-2
// admission is), never what they return — including a Probes beyond the
// cluster size, which clamps to probing everything.
func TestPrunedMultiProbeBitIdentical(t *testing.T) {
	const (
		k       = 5
		perNode = 80
		dim     = 3
		sigma   = 0.03
		seed    = 424242
		queries = 30
		l       = 6
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	_, full := testutil.StartCluster(t, distknn.VectorPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{})
	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	for _, probes := range []int{2, k + 3} {
		_, pruned := testutil.StartCluster(t, distknn.VectorPoints(), k, seed, shards,
			distknn.NodeOptions{}, distknn.FrontendOptions{Pruner: distknn.VectorPoints().Pruner(), Probes: probes})
		comparePruned(t, pruned, full, k, qs, l)
		comparePrunedBatch(t, pruned, full, k, qs, l, 8)
		for i := 0; i < 10; i++ {
			pv, _, err := pruned.Regress(qs[i], l)
			if err != nil {
				t.Fatal(err)
			}
			fv, _, err := full.Regress(qs[i], l)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(pv) != math.Float64bits(fv) {
				t.Fatalf("probes=%d regress %d: pruned %x != full %x", probes, i, math.Float64bits(pv), math.Float64bits(fv))
			}
		}
	}
}

// TestPrunedServerBatchBitIdentical composes the two batching layers:
// a pruned frontend with server-side coalescing answers concurrently
// arriving single queries as pruned batch epochs (the coalesced bucket
// routes through the same two-wave path as a client batch), and every
// answer must match the plain full-scatter twin bit for bit.
func TestPrunedServerBatchBitIdentical(t *testing.T) {
	const (
		k       = 5
		perNode = 80
		dim     = 3
		sigma   = 0.03
		seed    = 1717
		queries = 24
		l       = 5
	)
	shards := distknn.AnchorGaussianShards(seed, perNode, dim, sigma)
	_, full := testutil.StartCluster(t, distknn.VectorPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{})
	_, pruned := testutil.StartCluster(t, distknn.VectorPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{
			Pruner:      distknn.VectorPoints().Pruner(),
			ServerBatch: true,
			Linger:      2 * time.Millisecond,
		})

	qs := gaussianQueries(seed, queries, k, perNode, dim, sigma)
	want := make([][]distknn.Item, queries)
	wantVal := make([]uint64, queries)
	for i, q := range qs {
		items, _, err := full.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = items
		v, _, err := full.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		wantVal[i] = math.Float64bits(v)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				items, _, err := pruned.KNN(q, l)
				if err != nil {
					t.Errorf("coalesced pruned query %d: %v", i, err)
					return
				}
				for j := range want[i] {
					if items[j] != want[i][j] {
						t.Errorf("query %d item %d: coalesced pruned %+v != full %+v", i, j, items[j], want[i][j])
						return
					}
				}
				v, _, err := pruned.Regress(q, l)
				if err != nil {
					t.Errorf("coalesced pruned regress %d: %v", i, err)
					return
				}
				if math.Float64bits(v) != wantVal[i] {
					t.Errorf("regress %d: coalesced pruned %x != full %x", i, math.Float64bits(v), wantVal[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// scalarGeom mirrors, client-side, the exact geometry the pruned frontend
// computes: the deterministic k-center clustering of the global scalar
// stream, each shard's anchor and radius, and the two-phase contact set a
// query produces when every seat is present. The churn test uses it to pick
// its victims — a node a given query needs, and one it provably does not.
type scalarGeom struct {
	k       int
	centers []points.Scalar
	radii   []float64
	members [][]points.Scalar
}

func newScalarGeom(seed uint64, k, perNode int) *scalarGeom {
	pts, _ := globalScalarStream(seed, k, perNode)
	cl := metricindex.KCenter(pts, points.ScalarMetric, k, seed)
	g := &scalarGeom{k: k}
	keyDist := func(d uint64) float64 { return float64(d) }
	for id := 0; id < k; id++ {
		center := pts[cl.Anchors[id]]
		var members []points.Scalar
		for j, c := range cl.Assign {
			if c == id {
				members = append(members, pts[j])
			}
		}
		g.centers = append(g.centers, center)
		g.radii = append(g.radii, metricindex.Radius(members, center, points.ScalarMetric, keyDist))
		g.members = append(g.members, members)
	}
	return g
}

// contacts replays the frontend's pruned dispatch for q with all seats
// present: probe the nearest anchor, bound the ℓ-th neighbor by the probe's
// local top-ℓ, admit every other shard whose ball can intersect.
func (g *scalarGeom) contacts(q points.Scalar, l int) map[int]bool {
	dist := make([]float64, g.k)
	probe := 0
	for id := range dist {
		dist[id] = float64(points.ScalarMetric(q, g.centers[id]))
		if dist[id] < dist[probe] {
			probe = id
		}
	}
	ub := math.Inf(1)
	if members := g.members[probe]; len(members) >= l {
		ds := make([]float64, len(members))
		for i, m := range members {
			ds[i] = float64(points.ScalarMetric(q, m))
		}
		sort.Float64s(ds)
		ub = ds[l-1]
	}
	out := map[int]bool{probe: true}
	for id := 0; id < g.k; id++ {
		if id != probe && metricindex.Admit(dist[id], g.radii[id], ub) {
			out[id] = true
		}
	}
	return out
}

// TestPrunedChurn is the churn half of the metamorphic suite: kill one node
// a query would select AND one it would prune away, mid-stream. The query
// that needs neither keeps answering bit-identically — a dead-but-pruned
// node must not fail queries that never touch it — while the query that
// needs the dead node fails with the retryable degraded error. Once fresh
// processes re-seat both shards (re-deriving the same clustering, anchors
// and radii from the seed), the full stream resumes bit-identical.
func TestPrunedChurn(t *testing.T) {
	const (
		k       = 5
		perNode = 150
		seed    = 6061
		l       = 6
		stream  = 30
	)
	shards := distknn.AnchorShards(seed, perNode)
	g := newScalarGeom(seed, k, perNode)

	// Pick victims from the geometry: qFar's contact set leaves at least two
	// seats untouched — those become the victims V (selected by qNear, which
	// probes V's own anchor) and W (pruned by both queries).
	victimV, victimW := -1, -1
	var qFar distknn.Scalar
	for i := 0; i < 500 && victimV < 0; i++ {
		q := pruneScalarQuery(seed, 9000+i)
		c := g.contacts(q, l)
		if len(c) > k-2 {
			continue
		}
		for v := 0; v < k && victimV < 0; v++ {
			if c[v] {
				continue
			}
			for w := v + 1; w < k; w++ {
				if !c[w] {
					qFar, victimV, victimW = q, v, w
					break
				}
			}
		}
	}
	if victimV < 0 {
		t.Fatal("workload yields no query that prunes two shards — victims unfindable")
	}
	qNear := g.centers[victimV] // probes V by construction: distance 0 to V's anchor
	if c := g.contacts(qNear, l); !c[victimV] || c[victimW] {
		t.Fatalf("victim geometry inconsistent: qNear contacts %v, want %d in and %d out", c, victimV, victimW)
	}

	// Full-scatter twin supplies the reference stream.
	_, full := testutil.StartCluster(t, distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{})
	refAt := func(q distknn.Scalar) []distknn.Item {
		t.Helper()
		items, _, err := full.KNN(q, l)
		if err != nil {
			t.Fatal(err)
		}
		return items
	}

	// The churned cluster serves with pruned dispatch and a no-retry client,
	// so the degraded window is observable instead of ridden out.
	srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{Pruner: distknn.ScalarPoints().Pruner()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialTypedClusterOptions(distknn.ScalarPoints(), srv.Addr(), distknn.ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	check := func(q distknn.Scalar) {
		t.Helper()
		items, _, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("pruned query: %v", err)
		}
		want := refAt(q)
		for j := range want {
			if items[j] != want[j] {
				t.Fatalf("item %d: pruned %+v != full %+v", j, items[j], want[j])
			}
		}
	}
	check(qFar)
	check(qNear)

	// Mid-stream churn: V (selected by qNear) and W (pruned by both) die.
	if err := srv.EvictNode(victimV); err != nil {
		t.Fatal(err)
	}
	if err := srv.EvictNode(victimW); err != nil {
		t.Fatal(err)
	}

	// qFar touches neither corpse: it must keep answering, bit-identically.
	check(qFar)
	// qNear probes the dead V: retryable degraded failure, nothing else.
	if _, _, err := rc.KNN(qNear, l); err == nil || !errors.Is(err, distknn.ErrClusterDegraded) {
		t.Fatalf("query needing a dead node: got %v, want a degraded error", err)
	}

	// Heal both seats: fresh processes re-derive the same clustering from the
	// seed, and the frontend's summary check admits them back.
	nodeDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			nodeDone <- distknn.ServeTypedNode(distknn.ScalarPoints(), srv.Addr(), "127.0.0.1:0", shards, distknn.NodeOptions{})
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, err := rc.KNN(qNear, l); err == nil {
			break
		} else if !errors.Is(err, distknn.ErrClusterDegraded) {
			t.Fatalf("waiting for recovery: non-degraded failure: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not recover from churn")
		}
		time.Sleep(20 * time.Millisecond)
	}

	check(qNear)
	check(qFar)
	for i := 0; i < stream; i++ {
		check(pruneScalarQuery(seed, i))
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close after churn: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-nodeDone; err != nil {
			t.Fatalf("re-joined node exited with %v", err)
		}
	}
}

// TestPrunedBatchChurn is the batch half of the churn suite: a batch's
// contact set is the union of its points' contact sets, so a dead seat that
// no point of the batch probes or admits must not fail the batch — it keeps
// answering bit-identically — while a batch that includes even one point
// needing the dead seat fails whole with the retryable degraded error.
func TestPrunedBatchChurn(t *testing.T) {
	const (
		k       = 5
		perNode = 150
		seed    = 6061
		l       = 6
	)
	shards := distknn.AnchorShards(seed, perNode)
	g := newScalarGeom(seed, k, perNode)

	// Collect a batch of queries that all provably avoid some common seat W.
	victimW := -1
	var farBatch []distknn.Scalar
	for w := 0; w < k && victimW < 0; w++ {
		farBatch = farBatch[:0]
		for i := 0; i < 800 && len(farBatch) < 7; i++ {
			q := pruneScalarQuery(seed, 12000+i)
			if !g.contacts(q, l)[w] {
				farBatch = append(farBatch, q)
			}
		}
		if len(farBatch) == 7 {
			victimW = w
		}
	}
	if victimW < 0 {
		t.Fatal("workload yields no seat avoided by 7 queries — victim unfindable")
	}

	_, full := testutil.StartCluster(t, distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{})
	srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed, shards,
		distknn.NodeOptions{}, distknn.FrontendOptions{Pruner: distknn.ScalarPoints().Pruner()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialTypedClusterOptions(distknn.ScalarPoints(), srv.Addr(), distknn.ClientOptions{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	checkBatch := func() {
		t.Helper()
		pres, _, err := rc.KNNBatch(farBatch, l)
		if err != nil {
			t.Fatalf("pruned batch: %v", err)
		}
		fres, _, err := full.KNNBatch(farBatch, l)
		if err != nil {
			t.Fatalf("full batch: %v", err)
		}
		for i := range farBatch {
			if pres[i].Boundary != fres[i].Boundary {
				t.Fatalf("batch query %d: pruned boundary %v != full %v", i, pres[i].Boundary, fres[i].Boundary)
			}
			for j := range fres[i].Neighbors {
				if pres[i].Neighbors[j] != fres[i].Neighbors[j] {
					t.Fatalf("batch query %d item %d: pruned %+v != full %+v", i, j, pres[i].Neighbors[j], fres[i].Neighbors[j])
				}
			}
		}
	}
	checkBatch()

	// Kill W. The far batch touches no dead seat and must keep answering.
	if err := srv.EvictNode(victimW); err != nil {
		t.Fatal(err)
	}
	checkBatch()

	// A batch that smuggles in W's own anchor point needs the corpse: its
	// admission ball reaches W (distance 0), so the whole batch degrades.
	needy := append(append([]distknn.Scalar{}, farBatch...), g.centers[victimW])
	if _, _, err := rc.KNNBatch(needy, l); err == nil || !errors.Is(err, distknn.ErrClusterDegraded) {
		t.Fatalf("batch needing a dead node: got %v, want a degraded error", err)
	}
}
