package distknn_test

import (
	"strings"
	"testing"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/testutil"
	"distknn/internal/xrand"
)

// mergedBitVectorData reassembles the global bit-vector dataset exactly as
// the UniformBitVectorShards hold it (same order, hence same IDs after
// NewCluster assigns 1..n).
func mergedBitVectorData(t *testing.T, seed uint64, k, perNode, words int) ([]distknn.BitVector, []float64) {
	t.Helper()
	return testutil.Merged(t, distknn.UniformBitVectorShards(seed, perNode, words), k)
}

func bitVectorQueryAt(seed uint64, words, i int) distknn.BitVector {
	rng := xrand.NewStream(seed, 1<<40+uint64(i))
	v := make(distknn.BitVector, words)
	for j := range v {
		v[j] = rng.Uint64()
	}
	return v
}

func startBitVectorRemote(t *testing.T, k int, seed uint64, perNode, words int) *distknn.RemoteCluster[distknn.BitVector] {
	t.Helper()
	_, rc := testutil.StartCluster(t, distknn.BitVectorPoints(), k, seed,
		distknn.UniformBitVectorShards(seed, perNode, words), distknn.NodeOptions{}, distknn.FrontendOptions{})
	return rc
}

// TestRemoteBitVectorMatchesInProcess is the Hamming acceptance test: a
// resident TCP cluster of bit-vector shards answers a stream of queries
// over one mesh, and every answer is bit-identical to the in-process
// generic NewCluster built with points.Hamming over the same global
// dataset — closing the "more point types over the codec" loop.
func TestRemoteBitVectorMatchesInProcess(t *testing.T) {
	const (
		k       = 3
		perNode = 200
		words   = 2
		seed    = 77
		queries = 60
		l       = 9
	)
	rc := startBitVectorRemote(t, k, seed, perNode, words)

	vecs, labels := mergedBitVectorData(t, seed, k, perNode, words)
	local, err := distknn.NewCluster(vecs, labels, points.Hamming, distknn.Options{Machines: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	for i := 0; i < queries; i++ {
		q := bitVectorQueryAt(seed, words, i)
		remote, rstats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("remote query %d: %v", i, err)
		}
		want, lstats, err := local.KNN(q, l)
		if err != nil {
			t.Fatalf("local query %d: %v", i, err)
		}
		if len(remote) != len(want) {
			t.Fatalf("query %d: %d neighbors remote, %d local", i, len(remote), len(want))
		}
		for j := range want {
			if remote[j] != want[j] {
				t.Fatalf("query %d neighbor %d: remote %+v != local %+v", i, j, remote[j], want[j])
			}
		}
		if rstats.Boundary != lstats.Boundary {
			t.Fatalf("query %d: boundary remote %v != local %v", i, rstats.Boundary, lstats.Boundary)
		}
	}

	// Classification and regression agree, and the batch path is
	// bit-identical to solo queries.
	for i := 0; i < 10; i++ {
		q := bitVectorQueryAt(seed, words, 1000+i)
		rl, _, err := rc.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		ll, _, err := local.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if rl != ll {
			t.Fatalf("classify %d: remote %g != local %g", i, rl, ll)
		}
	}
	qs := make([]distknn.BitVector, 17)
	for i := range qs {
		qs[i] = bitVectorQueryAt(seed, words, i)
	}
	batch, _, err := rc.KNNBatch(qs, l)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		items, stats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("per-query %d: %v", i, err)
		}
		if batch[i].Boundary != stats.Boundary {
			t.Fatalf("query %d: batch boundary %v != solo %v", i, batch[i].Boundary, stats.Boundary)
		}
		for j := range items {
			if batch[i].Neighbors[j] != items[j] {
				t.Fatalf("query %d neighbor %d: batch %+v != solo %+v", i, j, batch[i].Neighbors[j], items[j])
			}
		}
	}
}

// TestRemoteBitVectorWordMismatch: a query with the wrong word count fails
// that query cleanly and leaves the session serving.
func TestRemoteBitVectorWordMismatch(t *testing.T) {
	const (
		k       = 2
		perNode = 50
		words   = 2
		seed    = 6
		l       = 3
	)
	rc := startBitVectorRemote(t, k, seed, perNode, words)
	if _, _, err := rc.KNN(make(distknn.BitVector, words+1), l); err == nil {
		t.Fatal("mismatched word count should fail")
	} else if !strings.Contains(err.Error(), "words") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, _, err := rc.KNN(bitVectorQueryAt(seed, words, 1), l); err != nil {
		t.Fatalf("session should survive a failed query: %v", err)
	}
}
