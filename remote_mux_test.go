package distknn_test

import (
	"sync"
	"testing"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// This file pins the multiplexed client's headline promise: one connection
// with many queries outstanding — completing out of order through the
// frontend's pipelined, server-batched scheduler — returns bit-identical
// answers to the same query stream issued by independent serial clients.

// muxAnswer is one query's comparable outcome on the KNN path.
type muxAnswer struct {
	items    []distknn.Item
	boundary distknn.Key
}

func checkMuxAnswer(t *testing.T, i int, items []distknn.Item, boundary distknn.Key, want muxAnswer) {
	t.Helper()
	if len(items) != len(want.items) {
		t.Errorf("query %d: %d neighbors, want %d", i, len(items), len(want.items))
		return
	}
	for j := range want.items {
		if items[j] != want.items[j] {
			t.Errorf("query %d neighbor %d: %+v != %+v", i, j, items[j], want.items[j])
			return
		}
	}
	if boundary != want.boundary {
		t.Errorf("query %d: boundary %v != %v", i, boundary, want.boundary)
	}
}

// muxReplay issues every query through one RemoteCluster with up to
// `outstanding` KNNAsync handles in flight and checks each against the
// serial ground truth.
func muxReplay[P any](t *testing.T, rc *distknn.RemoteCluster[P], qs []P, l, outstanding int, want []muxAnswer) {
	t.Helper()
	sem := make(chan struct{}, outstanding)
	var wg sync.WaitGroup
	for i := range qs {
		sem <- struct{}{}
		wg.Add(1)
		h := rc.KNNAsync(qs[i], l)
		go func(i int) {
			defer wg.Done()
			items, stats, err := h.Wait()
			<-sem
			if err != nil {
				t.Errorf("mux query %d: %v", i, err)
				return
			}
			checkMuxAnswer(t, i, items, stats.Boundary, want[i])
		}(i)
	}
	wg.Wait()
}

// TestMuxClientDeterministicScalar: a 200-query scalar stream answered by
// 16 serial clients (each walking its stride of the stream, one query at a
// time) is bit-identical to the same stream pushed through ONE multiplexed
// connection with 16 queries outstanding against a pipelining +
// server-batching frontend.
func TestMuxClientDeterministicScalar(t *testing.T) {
	const (
		k           = 3
		perNode     = 300
		seed        = 1234
		queries     = 200
		outstanding = 16
		l           = 11
	)
	qs := make([]distknn.Scalar, queries)
	for i := range qs {
		qs[i] = distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}

	// Ground truth: 16 clients, each issuing its queries strictly serially
	// against a default (unpipelined, unbatched) frontend.
	want := make([]muxAnswer, queries)
	func() {
		srv, err := distknn.ServeLocal(k, seed, remoteShards(seed, perNode), distknn.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		for c := 0; c < outstanding; c++ {
			rc, err := distknn.DialScalarCluster(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for i := c; i < queries; i += outstanding {
				items, stats, err := rc.KNN(qs[i], l)
				if err != nil {
					rc.Close()
					t.Fatalf("serial query %d: %v", i, err)
				}
				want[i] = muxAnswer{items: items, boundary: stats.Boundary}
			}
			rc.Close()
		}
	}()

	srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), k, seed,
		remoteShards(seed, perNode), distknn.NodeOptions{}, schedFrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialScalarCluster(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	muxReplay(t, rc, qs, l, outstanding, want)
}

// TestMuxClientDeterministicVector runs the same one-connection
// mux-vs-serial bit-identity walk on the vector path, whose coalesced
// lockstep epochs multiplex k-d-tree-backed sub-programs.
func TestMuxClientDeterministicVector(t *testing.T) {
	const (
		k           = 3
		perNode     = 150
		dim         = 4
		seed        = 4321
		queries     = 200
		outstanding = 16
		l           = 6
	)
	if testing.Short() {
		t.Skip("long concurrent walk")
	}
	qs := make([]distknn.Vector, queries)
	for i := range qs {
		qs[i] = vectorQueryAt(seed, dim, i)
	}

	want := make([]muxAnswer, queries)
	func() {
		srv, err := distknn.ServeVectorLocal(k, seed, distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		for c := 0; c < outstanding; c++ {
			rc, err := distknn.DialVectorCluster(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for i := c; i < queries; i += outstanding {
				items, stats, err := rc.KNN(qs[i], l)
				if err != nil {
					rc.Close()
					t.Fatalf("serial query %d: %v", i, err)
				}
				want[i] = muxAnswer{items: items, boundary: stats.Boundary}
			}
			rc.Close()
		}
	}()

	srv, err := distknn.ServeTypedLocalOptions(distknn.VectorPoints(), k, seed,
		distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{}, schedFrontendOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := distknn.DialVectorCluster(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	muxReplay(t, rc, qs, l, outstanding, want)
}
