package distknn

import (
	"fmt"
	"sync/atomic"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// This file is the real-socket counterpart of the in-process Cluster: a
// serving deployment over TCP. The cluster side is a Frontend (rendezvous +
// client-facing query endpoint) plus k resident nodes (ServeScalarNode),
// each holding one shard; the client side is a RemoteCluster, which offers
// the same KNN/Classify/Regress surface as Cluster but executes every query
// as one BSP epoch on the remote mesh. ServeLocal wires a whole loopback
// deployment together in one process for tests, benchmarks and demos.

// NodeOptions configures a resident serving node. All nodes of a cluster
// must be configured identically (the protocols assume symmetric machines).
type NodeOptions struct {
	// Algorithm selects the query strategy (default Alg2).
	Algorithm Algorithm
	// SublinearElection selects the randomized O(√k·log^{3/2} k)-message
	// election for the setup epoch instead of the min-GUID broadcast.
	SublinearElection bool
	// SampleFactor and CutFactor override Algorithm 2's Lemma 2.3
	// constants (defaults 12 and 21).
	SampleFactor, CutFactor int
}

// ScalarShard is the slice of the global dataset one serving node holds.
type ScalarShard struct {
	// Values are the node's points.
	Values []uint64
	// Labels carries one label per value; nil means all zero.
	Labels []float64
	// FirstID is the node's first point ID; the shard occupies the ID
	// block [FirstID, FirstID+len(Values)). Blocks must not overlap
	// across nodes — IDs are the global tie-breaker, so a collision
	// silently merges two points.
	FirstID uint64
}

// ShardProvider builds the shard for machine id of k. It runs on the node
// after the coordinator assigns its identity — the serving analogue of
// "each machine holds its part of the data" — so a provider typically
// generates or loads data keyed by id.
type ShardProvider func(id, k int) (ScalarShard, error)

// PaperShards is the ShardProvider for the paper's synthetic workload,
// generated exactly as cmd/knnnode's one-shot program and the bench
// instances generate it: node id draws perNode scalars uniform in
// [0, 2³²) from stream id of seed, labels are the values scaled to [0, 1]
// (so regression has a meaningful target), and the node owns the ID block
// [id·perNode+1, (id+1)·perNode]. One-shot and serving deployments built
// from the same seed therefore hold — and answer over — identical data.
func PaperShards(seed uint64, perNode int) ShardProvider {
	return func(id, k int) (ScalarShard, error) {
		set := points.GenUniformScalars(xrand.NewStream(seed, uint64(id)), perNode, points.PaperDomain)
		values := make([]uint64, set.Len())
		for j, p := range set.Pts {
			values[j] = uint64(p)
		}
		return ScalarShard{
			Values:  values,
			Labels:  set.Labels,
			FirstID: uint64(id)*uint64(perNode) + 1,
		}, nil
	}
}

// scalarHandler adapts a shard + options to the transport's per-epoch
// Handler interface.
type scalarHandler struct {
	shards ShardProvider
	opts   NodeOptions

	set    *points.Set[Scalar]
	leader int
}

func (h *scalarHandler) Setup(m kmachine.Env) (tcp.SessionInfo, error) {
	shard, err := h.shards(m.ID(), m.K())
	if err != nil {
		return tcp.SessionInfo{}, fmt.Errorf("distknn: shard for node %d: %w", m.ID(), err)
	}
	pts := make([]Scalar, len(shard.Values))
	for i, v := range shard.Values {
		pts[i] = Scalar(v)
	}
	h.set, err = points.NewSet(pts, shard.Labels, points.ScalarMetric, shard.FirstID)
	if err != nil {
		return tcp.SessionInfo{}, fmt.Errorf("distknn: %w", err)
	}
	h.leader, err = election.Elect(m, election.OnceOptions{
		Sublinear:      h.opts.SublinearElection,
		BandwidthBytes: -1, // real sockets have no per-round budget
	})
	if err != nil {
		return tcp.SessionInfo{}, err
	}
	return tcp.SessionInfo{Leader: h.leader, ShardLen: h.set.Len(), PointTag: wire.PointScalar}, nil
}

func (h *scalarHandler) Query(m kmachine.Env, q wire.Query) (tcp.EpochResult, error) {
	v, err := wire.DecodeScalarPoint(q.Point)
	if err != nil {
		return tcp.EpochResult{}, err
	}
	qp := Scalar(v)
	cfg := core.Config{
		Leader:       h.leader,
		L:            q.L,
		SampleFactor: h.opts.SampleFactor,
		CutFactor:    h.opts.CutFactor,
	}
	res, err := algorithmFn(h.opts.Algorithm)(m, cfg, h.set.TopLItems(qp, q.L))
	if err != nil {
		return tcp.EpochResult{}, err
	}
	out := tcp.EpochResult{
		Winners:    res.Winners,
		Boundary:   res.Boundary,
		Survivors:  res.Survivors,
		FellBack:   res.FellBack,
		Iterations: res.Iterations,
	}
	switch q.Op {
	case wire.OpClassify:
		out.Value, err = core.Classify(m, h.leader, res.Winners)
	case wire.OpRegress:
		out.Value, err = core.Regress(m, h.leader, res.Winners)
	}
	if err != nil {
		return tcp.EpochResult{}, err
	}
	return out, nil
}

// ServeScalarNode runs one resident serving node: it joins the frontend at
// coordAddr, receives its machine identity, builds its shard via shards,
// meshes with its peers, takes part in the setup election, and then answers
// query epochs until the frontend shuts the session down. It blocks for the
// lifetime of the session; a nil return means a clean shutdown.
//
// meshAddr is the address to listen on for peer connections
// ("127.0.0.1:0" picks a free loopback port; use a host-reachable address
// for multi-host deployments).
func ServeScalarNode(coordAddr, meshAddr string, shards ShardProvider, opts NodeOptions) error {
	return tcp.ServeNode(coordAddr, meshAddr, &scalarHandler{shards: shards, opts: opts})
}

// Frontend is the client-facing endpoint of a TCP serving cluster: it
// performs rendezvous for the k resident nodes and then serves remote
// clients, one BSP epoch per query. Nodes and clients dial the same
// address; a connection's first frame decides its role.
type Frontend struct {
	fe *tcp.Frontend
}

// NewFrontend starts the serving listener for a k-node cluster. seed is the
// session seed every node receives: it drives the setup election and the
// per-query epoch seeds, so a serving cluster replays deterministically for
// the same (seed, query stream).
func NewFrontend(addr string, k int, seed uint64) (*Frontend, error) {
	fe, err := tcp.NewFrontend(addr, k, seed)
	if err != nil {
		return nil, err
	}
	return &Frontend{fe: fe}, nil
}

// Addr returns the dialable address for nodes (ServeScalarNode) and clients
// (DialCluster).
func (f *Frontend) Addr() string { return f.fe.Addr() }

// Serve runs the session until Close: rendezvous, setup epoch, then client
// queries. It blocks; run it on its own goroutine.
func (f *Frontend) Serve() error { return f.fe.Serve() }

// Leader returns the leader elected in the setup epoch (-1 until then).
func (f *Frontend) Leader() int { return f.fe.Leader() }

// Close shuts the session down; resident nodes exit cleanly.
func (f *Frontend) Close() error { return f.fe.Close() }

// RemoteCluster is a client handle on a TCP serving cluster. It satisfies
// the same query surface as the in-process Cluster — KNN, Classify, Regress
// with identical signatures and exact results — but every call travels to
// the cluster's frontend and runs as one BSP epoch on the resident mesh.
//
// A RemoteCluster is safe for concurrent use; queries on one connection are
// serialized, and the frontend serializes epochs across all clients anyway.
// QueryStats are the real mesh costs: Rounds is the slowest node's round
// count and Messages/Bytes are cluster-wide totals (election rounds were
// paid once, in the setup epoch).
type RemoteCluster[P any] struct {
	client *tcp.Client
	tag    uint8
	encode func(q P) []byte
	leader atomic.Int64
}

// DialCluster connects to a scalar serving cluster's frontend.
func DialCluster(addr string) (*RemoteCluster[Scalar], error) {
	c, err := tcp.DialFrontend(addr)
	if err != nil {
		return nil, err
	}
	rc := &RemoteCluster[Scalar]{
		client: c,
		tag:    wire.PointScalar,
		encode: func(q Scalar) []byte { return wire.EncodeScalarPoint(uint64(q)) },
	}
	rc.leader.Store(-1)
	return rc, nil
}

func (rc *RemoteCluster[P]) do(op uint8, q P, l int) (wire.Reply, error) {
	rep, err := rc.client.Do(wire.Query{Op: op, L: l, Tag: rc.tag, Point: rc.encode(q)})
	if err != nil {
		return wire.Reply{}, fmt.Errorf("distknn: %w", err)
	}
	rc.leader.Store(int64(rep.Leader))
	return rep, nil
}

func remoteStats(rep wire.Reply) *QueryStats {
	return &QueryStats{
		Rounds:     rep.Rounds,
		Messages:   rep.Messages,
		Bytes:      rep.Bytes,
		Leader:     rep.Leader,
		Boundary:   rep.Boundary,
		Survivors:  rep.Survivors,
		FellBack:   rep.FellBack,
		Iterations: rep.Iterations,
	}
}

// KNN returns the exact ℓ nearest neighbors of q in ascending distance
// order, together with the query's distributed cost on the remote mesh.
func (rc *RemoteCluster[P]) KNN(q P, l int) ([]Item, *QueryStats, error) {
	rep, err := rc.do(wire.OpKNN, q, l)
	if err != nil {
		return nil, nil, err
	}
	return rep.Items, remoteStats(rep), nil
}

// Classify returns the majority label among the ℓ nearest neighbors of q
// (ties broken toward the smallest label).
func (rc *RemoteCluster[P]) Classify(q P, l int) (float64, *QueryStats, error) {
	rep, err := rc.do(wire.OpClassify, q, l)
	if err != nil {
		return 0, nil, err
	}
	return rep.Value, remoteStats(rep), nil
}

// Regress returns the mean label of the ℓ nearest neighbors of q.
func (rc *RemoteCluster[P]) Regress(q P, l int) (float64, *QueryStats, error) {
	rep, err := rc.do(wire.OpRegress, q, l)
	if err != nil {
		return 0, nil, err
	}
	return rep.Value, remoteStats(rep), nil
}

// Leader returns the remote cluster's leader as last reported by a query
// (-1 before the first successful query).
func (rc *RemoteCluster[P]) Leader() int { return int(rc.leader.Load()) }

// Close releases the connection to the frontend. The remote cluster keeps
// serving other clients.
func (rc *RemoteCluster[P]) Close() error { return rc.client.Close() }

// LocalServer is a whole loopback serving deployment running in one
// process: a Frontend plus k resident scalar nodes. Dial it with
// DialCluster(s.Addr()).
type LocalServer struct {
	lc *tcp.LocalCluster
}

// ServeLocal starts a loopback TCP serving cluster: a frontend and k
// resident nodes, each holding the shard that shards(id, k) builds. It
// returns once the cluster is meshed, elected and ready to serve.
func ServeLocal(k int, seed uint64, shards ShardProvider, opts NodeOptions) (*LocalServer, error) {
	lc, err := tcp.ServeLocal(k, seed, func() tcp.Handler {
		return &scalarHandler{shards: shards, opts: opts}
	})
	if err != nil {
		return nil, err
	}
	return &LocalServer{lc: lc}, nil
}

// Addr returns the frontend address clients should dial.
func (s *LocalServer) Addr() string { return s.lc.Addr() }

// Leader returns the elected leader machine.
func (s *LocalServer) Leader() int { return s.lc.Leader() }

// Close shuts the cluster down and reports the first failure observed by
// the frontend or any node (nil on a clean shutdown).
func (s *LocalServer) Close() error { return s.lc.Close() }
