package distknn

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kdtree"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/metricindex"
	"distknn/internal/obs"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/wire"
	"distknn/internal/xrand"
)

// This file is the real-socket counterpart of the in-process Cluster: a
// serving deployment over TCP, generic over the point type. The cluster
// side is a Frontend (rendezvous + client-facing query endpoint) plus k
// resident nodes (ServeTypedNode and its scalar/vector conveniences), each
// holding one shard; the client side is a RemoteCluster, which offers the
// same KNN/Classify/Regress/KNNBatch surface as Cluster but executes every
// call as one BSP epoch on the remote mesh — a whole KNNBatch travels as a
// single batched dispatch. ServeTypedLocal wires a whole loopback
// deployment together in one process for tests, benchmarks and demos.
//
// What a point type needs to cross this stack is bundled in a PointType:
// the wire codec (tag + encode/decode), the distance metric, and the local
// index the nodes answer their top-ℓ step from. ScalarPoints and
// VectorPoints are the two shipped instances; the transport below never
// learns what a point is.

// ErrSessionLost marks a serving node's exit because its session died
// under it — the frontend vanished, or the node was evicted after a mesh
// fault. The node's seat is recoverable: call ServeTypedNode (or its
// scalar/vector conveniences) again and the frontend re-seats the node in
// the running session, as cmd/knnnode's -rejoin loop does. Matched with
// errors.Is.
var ErrSessionLost = tcp.ErrSessionLost

// ErrClusterDegraded marks a remote query refused (or failed in flight)
// because the serving cluster is missing nodes after churn. The failure is
// transient and safe to retry — every query op is an idempotent read — and
// the cluster answers again once the absent node re-joins. RemoteCluster
// already rides out outages shorter than ClientOptions.RetryWait
// transparently; match with errors.Is to keep retrying on top of that.
var ErrClusterDegraded = tcp.ErrDegraded

// Metrics is a runtime-metrics registry for the serving stack: pass one
// in FrontendOptions, NodeOptions or ClientOptions and the instrumented
// component records its counters, gauges and latency histograms there.
// Recording is lock-free atomics on the hot path and never perturbs
// served answers; read a consistent view with Snapshot, or expose the
// registry over HTTP with ServeAdmin. One registry may be shared by any
// number of components (metric names do not collide across roles).
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer records per-epoch trace spans — admission → dispatch →
// per-seat arrival → collation → reply, with nanosecond stage offsets —
// into a fixed ring of the given depth. Pass one in
// FrontendOptions.Trace; read recent spans with Recent, stream finished
// spans as JSONL with SetSink, or expose the ring over HTTP with
// ServeAdmin. A nil Tracer (the default) records nothing.
type Tracer = obs.Tracer

// NewTracer returns a tracer holding the last depth spans (depth <= 0
// selects the default of 256).
func NewTracer(depth int) *Tracer { return obs.NewTracer(depth) }

// Health is a point-in-time cluster health report, as served by the
// admin plane's /healthz endpoint (see Frontend.Health).
type Health = obs.Health

// AdminOptions selects what an admin endpoint exposes: a Metrics
// registry (/metrics), a Tracer (/trace/recent), and a health callback
// (/healthz). Every field is optional.
type AdminOptions = obs.AdminOptions

// AdminServer is a running admin HTTP endpoint; Close releases its
// listener.
type AdminServer = obs.Admin

// ServeAdmin starts an admin HTTP endpoint on addr serving /metrics,
// /healthz, /trace/recent and /debug/pprof/*. It binds immediately and
// serves in the background until Close. The admin plane is strictly
// read-only observation: it shares no locks with the query path, so a
// slow scrape cannot stall serving.
func ServeAdmin(addr string, o AdminOptions) (*AdminServer, error) { return obs.ServeAdmin(addr, o) }

// NodeOptions configures a resident serving node. Except for Advertise,
// all nodes of a cluster must be configured identically (the protocols
// assume symmetric machines).
type NodeOptions struct {
	// Algorithm selects the query strategy (default Alg2).
	Algorithm Algorithm
	// SublinearElection selects the randomized O(√k·log^{3/2} k)-message
	// election for the setup epoch instead of the min-GUID broadcast.
	SublinearElection bool
	// SampleFactor and CutFactor override Algorithm 2's Lemma 2.3
	// constants (defaults 12 and 21).
	SampleFactor, CutFactor int
	// Advertise is the mesh address peers are told to dial, for multi-host
	// deployments where the mesh bind address is not reachable as-is
	// (e.g. bind "0.0.0.0:7101", advertise "10.0.0.5:7101"). Empty means
	// the bind address itself. This field is per-node; every other option
	// must match across the cluster.
	Advertise string
	// Metrics optionally receives the node's runtime metrics (epochs
	// served, mesh traffic, control-plane bytes). Nil records nothing.
	// Per-node, like Advertise: each node process passes its own registry.
	Metrics *Metrics
}

// Shard is the slice of the global dataset one serving node holds.
type Shard[P any] struct {
	// Points are the node's points.
	Points []P
	// Labels carries one label per point; nil means all zero.
	Labels []float64
	// FirstID is the node's first point ID; the shard occupies the ID
	// block [FirstID, FirstID+len(Points)). Blocks must not overlap
	// across nodes — IDs are the global tie-breaker, so a collision
	// silently merges two points.
	FirstID uint64
	// IDs optionally assigns one explicit global ID per point, for
	// providers whose shards are not contiguous ID ranges (the
	// anchor-clustered providers). When set, FirstID is ignored. IDs must
	// stay unique across the cluster.
	IDs []uint64
	// Center optionally pins the shard's metric-index centroid — the
	// anchor of an anchor-clustered shard. When nil, the node summarizes
	// the shard around an approximate medoid instead.
	Center *P
}

// ShardProvider builds the shard for machine id of k. It runs on the node
// after the coordinator assigns its identity — the serving analogue of
// "each machine holds its part of the data" — so a provider typically
// generates or loads data keyed by id.
type ShardProvider[P any] func(id, k int) (Shard[P], error)

// PointType bundles everything the serving stack needs to handle one point
// type: the wire codec, the distance metric, and the local top-ℓ index the
// nodes answer from. The two shipped instances are ScalarPoints and
// VectorPoints; the TCP transport itself never learns what a point is, so
// supporting a new point type means writing a wire.PointCodec and a
// PointType — no transport changes.
type PointType[P any] struct {
	codec  wire.PointCodec[P]
	metric points.Metric[P]
	// index builds the local top-ℓ accelerator for a shard; nil selects
	// the streaming O(n log ℓ) scan.
	index func(set *points.Set[P]) (func(q P, l int) []Item, error)
	// check validates a decoded query point against the shard (e.g. the
	// vector dimension); nil means no validation.
	check func(set *points.Set[P], q P) error
	// keyDist converts an encoded distance key back to the true metric
	// distance (e.g. the square root of a decoded squared L2 key). The
	// true distances must satisfy the triangle inequality; nil marks a
	// distance that is not a metric (cosine) and disables metric-index
	// pruning for the type.
	keyDist func(uint64) float64
	// compat validates that a query point is comparable to a shard
	// centroid (e.g. equal dimensions) for frontend-side pruning; nil
	// means always comparable.
	compat func(q, c P) error
}

// Pruner is the metric-space geometry a frontend needs for pruned dispatch;
// build one with PointType.Pruner and pass it in FrontendOptions.
type Pruner = tcp.Pruner

// Pruner returns the frontend-side pruning geometry of the point type, or
// nil when the type's distance is not a true metric (cosine) — a nil Pruner
// in FrontendOptions simply keeps every query on the full-scatter path.
func (pt PointType[P]) Pruner() Pruner {
	if pt.keyDist == nil {
		return nil
	}
	return &metricindex.WirePruner[P]{
		Codec:  pt.codec,
		Metric: pt.metric,
		Key:    pt.keyDist,
		Compat: pt.compat,
	}
}

// vectorDimCheck rejects a query whose dimension differs from the shard's.
func vectorDimCheck(set *points.Set[Vector], q Vector) error {
	if set.Len() > 0 && len(q) != len(set.Pts[0]) {
		return fmt.Errorf("query dimension %d, shard dimension %d", len(q), len(set.Pts[0]))
	}
	return nil
}

// vectorCompat rejects a query whose dimension differs from a shard
// centroid's, before the frontend measures their distance.
func vectorCompat(q, c Vector) error {
	if len(q) != len(c) {
		return fmt.Errorf("query dimension %d, shard centroid dimension %d", len(q), len(c))
	}
	return nil
}

// ScalarPoints is the paper's workload: one-dimensional integer points
// under |a−b| distance, answered from a streaming scan.
func ScalarPoints() PointType[Scalar] {
	return PointType[Scalar]{
		codec:   wire.ScalarCodec,
		metric:  points.ScalarMetric,
		keyDist: func(d uint64) float64 { return float64(d) },
	}
}

// VectorPoints is the d-dimensional Euclidean workload: every node indexes
// its shard with a k-d tree, so the local top-ℓ step costs O(ℓ·log(n/k))
// expected instead of a linear scan — bit-identical keys to the scan, so
// served results match the in-process NewVectorCluster exactly.
func VectorPoints() PointType[Vector] {
	return PointType[Vector]{
		codec:  wire.VectorCodec,
		metric: points.L2,
		index: func(set *points.Set[Vector]) (func(q Vector, l int) []Item, error) {
			tree, err := kdtree.Build(set)
			if err != nil {
				return nil, err
			}
			return tree.KNN, nil
		},
		check: vectorDimCheck,
		// L2 keys encode the squared distance; the true metric distance is
		// its square root.
		keyDist: func(d uint64) float64 { return math.Sqrt(keys.DecodeFloat(d)) },
		compat:  vectorCompat,
	}
}

// L1Points is the Manhattan-distance vector workload, answered from the
// streaming top-ℓ scan. Served results are bit-identical to an in-process
// NewCluster built over the merged data with points.L1.
func L1Points() PointType[Vector] {
	return PointType[Vector]{
		codec:   wire.VectorCodec,
		metric:  points.L1,
		check:   vectorDimCheck,
		keyDist: keys.DecodeFloat,
		compat:  vectorCompat,
	}
}

// LInfPoints is the Chebyshev-distance (L∞) vector workload, answered from
// the streaming top-ℓ scan. Served results are bit-identical to an
// in-process NewCluster built over the merged data with points.LInf.
func LInfPoints() PointType[Vector] {
	return PointType[Vector]{
		codec:   wire.VectorCodec,
		metric:  points.LInf,
		check:   vectorDimCheck,
		keyDist: keys.DecodeFloat,
		compat:  vectorCompat,
	}
}

// CosinePoints is the cosine-distance vector workload (1 − cosine
// similarity), answered from the streaming top-ℓ scan. Cosine distance
// violates the triangle inequality, so the type deliberately carries no
// pruning geometry — its Pruner is nil and clusters serving it always run
// full-scatter epochs. Served results are bit-identical to an in-process
// NewCluster built over the merged data with points.Cosine.
func CosinePoints() PointType[Vector] {
	return PointType[Vector]{
		codec:  wire.VectorCodec,
		metric: points.Cosine,
		check:  vectorDimCheck,
	}
}

// BitVectorPoints is the bit-packed Hamming workload (binary feature
// sketches, 64 features per word), answered from the streaming top-ℓ scan
// — popcount distances are cheap enough that a spatial index buys little.
// Served results are bit-identical to an in-process NewCluster built over
// the same global data with points.Hamming.
func BitVectorPoints() PointType[BitVector] {
	return PointType[BitVector]{
		codec:   wire.BitVectorCodec,
		metric:  points.Hamming,
		keyDist: func(d uint64) float64 { return float64(d) },
		check: func(set *points.Set[BitVector], q BitVector) error {
			if set.Len() > 0 && len(q) != len(set.Pts[0]) {
				return fmt.Errorf("query has %d words, shard has %d", len(q), len(set.Pts[0]))
			}
			return nil
		},
		compat: func(q, c BitVector) error {
			if len(q) != len(c) {
				return fmt.Errorf("query has %d words, shard centroid has %d", len(q), len(c))
			}
			return nil
		},
	}
}

// PaperShards is the ShardProvider for the paper's synthetic workload,
// generated exactly as cmd/knnnode's one-shot program and the bench
// instances generate it: node id draws perNode scalars uniform in
// [0, 2³²) from stream id of seed, labels are the values scaled to [0, 1]
// (so regression has a meaningful target), and the node owns the ID block
// [id·perNode+1, (id+1)·perNode]. One-shot and serving deployments built
// from the same seed therefore hold — and answer over — identical data.
func PaperShards(seed uint64, perNode int) ShardProvider[Scalar] {
	return func(id, k int) (Shard[Scalar], error) {
		set := points.GenUniformScalars(xrand.NewStream(seed, uint64(id)), perNode, points.PaperDomain)
		return Shard[Scalar]{
			Points:  set.Pts,
			Labels:  set.Labels,
			FirstID: uint64(id)*uint64(perNode) + 1,
		}, nil
	}
}

// UniformVectorShards is the vector counterpart of PaperShards: node id
// draws perNode points uniform in [0,1)^dim from stream id of seed, labels
// cycle 0..3 by global index (so classification has a target), and the node
// owns the ID block [id·perNode+1, (id+1)·perNode].
func UniformVectorShards(seed uint64, perNode, dim int) ShardProvider[Vector] {
	return func(id, k int) (Shard[Vector], error) {
		set := points.GenUniformVectors(xrand.NewStream(seed, uint64(id)), perNode, dim)
		labels := make([]float64, perNode)
		for j := range labels {
			labels[j] = float64((id*perNode + j) % 4)
		}
		return Shard[Vector]{
			Points:  set.Pts,
			Labels:  labels,
			FirstID: uint64(id)*uint64(perNode) + 1,
		}, nil
	}
}

// UniformBitVectorShards is the bit-vector counterpart of PaperShards:
// node id draws perNode random bit vectors of words×64 bits from stream id
// of seed, labels cycle 0..3 by global index (so classification has a
// target), and the node owns the ID block [id·perNode+1, (id+1)·perNode].
func UniformBitVectorShards(seed uint64, perNode, words int) ShardProvider[BitVector] {
	return func(id, k int) (Shard[BitVector], error) {
		set := points.GenBitVectors(xrand.NewStream(seed, uint64(id)), perNode, words)
		labels := make([]float64, perNode)
		for j := range labels {
			labels[j] = float64((id*perNode + j) % 4)
		}
		return Shard[BitVector]{
			Points:  set.Pts,
			Labels:  labels,
			FirstID: uint64(id)*uint64(perNode) + 1,
		}, nil
	}
}

// anchorShard carves cluster id out of the deterministic k-center
// clustering of a global dataset: the shard holds the cluster's members
// with their global IDs (point j is ID j+1, matching the uniform
// providers' numbering of the same data) and pins the cluster's anchor as
// its centroid. Every node recomputes the identical clustering from the
// shared seed, so the result stays a pure function of (id, k) and a
// re-joining node rebuilds a bit-identical shard.
func anchorShard[P any](pts []P, labels []float64, metric points.Metric[P], seed uint64, id, k int) (Shard[P], error) {
	cl := metricindex.KCenter(pts, metric, k, seed)
	var sh Shard[P]
	if id >= len(cl.Anchors) {
		return sh, nil // k > n: more seats than points; the shard is empty
	}
	for j, c := range cl.Assign {
		if c != id {
			continue
		}
		sh.Points = append(sh.Points, pts[j])
		sh.Labels = append(sh.Labels, labels[j])
		sh.IDs = append(sh.IDs, uint64(j)+1)
	}
	anchor := pts[cl.Anchors[id]]
	sh.Center = &anchor
	return sh, nil
}

// AnchorShards is the anchor-clustered counterpart of PaperShards: the same
// global dataset (the concatenation of the k per-node streams, so IDs and
// labels match PaperShards point for point) partitioned by a deterministic
// seeded k-center clustering instead of uniform ID blocks. Shard id holds
// cluster id's members and pins its anchor as the centroid, giving the
// frontend's pruned dispatch tight balls to test query ranges against —
// answers are bit-identical to any other partition of the same data.
func AnchorShards(seed uint64, perNode int) ShardProvider[Scalar] {
	return func(id, k int) (Shard[Scalar], error) {
		pts := make([]points.Scalar, 0, k*perNode)
		labels := make([]float64, 0, k*perNode)
		for node := 0; node < k; node++ {
			set := points.GenUniformScalars(xrand.NewStream(seed, uint64(node)), perNode, points.PaperDomain)
			pts = append(pts, set.Pts...)
			labels = append(labels, set.Labels...)
		}
		return anchorShard(pts, labels, points.ScalarMetric, seed, id, k)
	}
}

// AnchorVectorShards is the anchor-clustered counterpart of
// UniformVectorShards: the same global vector dataset (IDs and cycling
// labels match point for point) partitioned by a deterministic seeded
// k-center clustering, with each shard's anchor pinned as its centroid.
func AnchorVectorShards(seed uint64, perNode, dim int) ShardProvider[Vector] {
	return func(id, k int) (Shard[Vector], error) {
		pts := make([]points.Vector, 0, k*perNode)
		labels := make([]float64, 0, k*perNode)
		for node := 0; node < k; node++ {
			set := points.GenUniformVectors(xrand.NewStream(seed, uint64(node)), perNode, dim)
			pts = append(pts, set.Pts...)
			for j := range set.Pts {
				labels = append(labels, float64((node*perNode+j)%4))
			}
		}
		return anchorShard(pts, labels, points.L2, seed, id, k)
	}
}

// AnchorGaussianShards is the anchor-clustered Gaussian workload: k·perNode
// points drawn from k isotropic Gaussian blobs (labels are blob indices),
// partitioned by a seeded k-center clustering with anchors as centroids.
// This is the favorable regime for pruned dispatch — shards track the blobs,
// so a query near one blob provably cannot have neighbors in most others —
// and the clustered half of the knnbench tcpprune experiment.
func AnchorGaussianShards(seed uint64, perNode, dim int, sigma float64) ShardProvider[Vector] {
	return func(id, k int) (Shard[Vector], error) {
		set, _ := points.GenGaussianClusters(xrand.NewStream(seed, 0), k*perNode, dim, k, sigma)
		return anchorShard(set.Pts, set.Labels, points.L2, seed, id, k)
	}
}

// typedHandler adapts a PointType + ShardProvider + options to the
// transport's per-epoch Handler interface.
type typedHandler[P any] struct {
	pt     PointType[P]
	shards ShardProvider[P]
	opts   NodeOptions

	set     *points.Set[P]
	topL    func(q P, l int) []Item
	leader  int
	summary wire.ShardSummary
}

// load builds (or rebuilds) the node's shard, local index and metric
// summary for machine id of k — the data half of Setup, shared with the
// Rejoin path.
func (h *typedHandler[P]) load(id, k int) error {
	shard, err := h.shards(id, k)
	if err != nil {
		return fmt.Errorf("distknn: shard for node %d: %w", id, err)
	}
	h.set, err = points.NewSet(shard.Points, shard.Labels, h.pt.metric, shard.FirstID)
	if err != nil {
		return fmt.Errorf("distknn: %w", err)
	}
	if shard.IDs != nil {
		if len(shard.IDs) != len(shard.Points) {
			return fmt.Errorf("distknn: node %d shard has %d IDs for %d points", id, len(shard.IDs), len(shard.Points))
		}
		copy(h.set.IDs, shard.IDs)
	}
	if h.pt.index != nil {
		h.topL, err = h.pt.index(h.set)
		if err != nil {
			return fmt.Errorf("distknn: indexing node %d: %w", id, err)
		}
	} else {
		h.topL = h.set.TopLItems
	}
	h.summary = h.summarize(shard)
	return nil
}

// summarize computes the shard's metric-index summary: its centroid (the
// provider's explicit Center, or an approximate medoid of the shard) and
// the true-distance radius around it. Has stays false — which disables
// pruned dispatch for the whole session — when the point type has no
// pruning geometry (cosine) or when an anchorless shard is empty.
func (h *typedHandler[P]) summarize(shard Shard[P]) wire.ShardSummary {
	if h.pt.keyDist == nil {
		return wire.ShardSummary{}
	}
	var center P
	if shard.Center != nil {
		center = *shard.Center
	} else {
		m := metricindex.ApproxMedoid(shard.Points, h.pt.metric)
		if m < 0 {
			return wire.ShardSummary{}
		}
		center = shard.Points[m]
	}
	return wire.ShardSummary{
		Has:    true,
		Radius: metricindex.Radius(shard.Points, center, h.pt.metric, h.pt.keyDist),
		Center: h.pt.codec.Encode(center),
	}
}

func (h *typedHandler[P]) Setup(m kmachine.Env) (tcp.SessionInfo, error) {
	if err := h.load(m.ID(), m.K()); err != nil {
		return tcp.SessionInfo{}, err
	}
	var err error
	h.leader, err = election.Elect(m, election.OnceOptions{
		Sublinear:      h.opts.SublinearElection,
		BandwidthBytes: -1, // real sockets have no per-round budget
	})
	if err != nil {
		return tcp.SessionInfo{}, err
	}
	return tcp.SessionInfo{Leader: h.leader, ShardLen: h.set.Len(), PointTag: h.pt.codec.Tag, Summary: h.summary}, nil
}

// Rejoin rebuilds the shard for a node taking over an absent seat of a
// running session. No election runs — the session's leader is handed down
// by the frontend — so the call is local. Because ShardProvider is a
// deterministic function of (id, k), the rebuilt shard is identical to the
// one the seat held before, which the frontend verifies via the reported
// shard size and metric summary (and which keeps served answers
// bit-identical to an uninterrupted cluster).
func (h *typedHandler[P]) Rejoin(id, k, leader int) (tcp.SessionInfo, error) {
	if err := h.load(id, k); err != nil {
		return tcp.SessionInfo{}, err
	}
	h.leader = leader
	return tcp.SessionInfo{Leader: leader, ShardLen: h.set.Len(), PointTag: h.pt.codec.Tag, Summary: h.summary}, nil
}

// Query answers one point of the dispatched batch. Calls for different
// points of the same batch run concurrently (lockstep sub-programs of one
// epoch); everything mutable here is call-local, and the Setup-written
// shard, index and leader are only read.
func (h *typedHandler[P]) Query(m kmachine.Env, q wire.Query, qi int) (tcp.QueryResult, error) {
	qp, err := h.pt.codec.Decode(q.Points[qi])
	if err != nil {
		return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
	}
	if h.pt.check != nil {
		if err := h.pt.check(h.set, qp); err != nil {
			return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
		}
	}
	cfg := core.Config{
		Leader:       h.leader,
		L:            q.L,
		SampleFactor: h.opts.SampleFactor,
		CutFactor:    h.opts.CutFactor,
	}
	res, err := algorithmFn(h.opts.Algorithm)(m, cfg, h.topL(qp, q.L))
	if err != nil {
		return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
	}
	out := tcp.QueryResult{
		Winners:    res.Winners,
		Boundary:   res.Boundary,
		Survivors:  res.Survivors,
		FellBack:   res.FellBack,
		Iterations: res.Iterations,
	}
	switch q.Op {
	case wire.OpClassify:
		out.Value, err = core.Classify(m, h.leader, res.Winners)
	case wire.OpRegress:
		out.Value, err = core.Regress(m, h.leader, res.Winners)
	}
	if err != nil {
		return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
	}
	return out, nil
}

// Direct answers one query point of a pruned (no-mesh) dispatch: the
// node's local top-ℓ straight from its index, with no BSP epoch — the
// frontend merges the contacted nodes' shares itself.
func (h *typedHandler[P]) Direct(q wire.Query, qi int) (tcp.QueryResult, error) {
	qp, err := h.pt.codec.Decode(q.Points[qi])
	if err != nil {
		return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
	}
	if h.pt.check != nil {
		if err := h.pt.check(h.set, qp); err != nil {
			return tcp.QueryResult{}, fmt.Errorf("query %d: %w", qi, err)
		}
	}
	return tcp.QueryResult{Winners: h.topL(qp, q.L)}, nil
}

// ServeTypedNode runs one resident serving node for any served point type:
// it joins the frontend at coordAddr, receives its machine identity, builds
// its shard via shards, meshes with its peers, takes part in the setup
// election, and then answers batched query epochs until the frontend shuts
// the session down. It blocks for the lifetime of the session; a nil return
// means a clean shutdown.
//
// meshAddr is the address to listen on for peer connections
// ("127.0.0.1:0" picks a free loopback port); opts.Advertise overrides the
// address peers dial when the bind address is not reachable across hosts.
func ServeTypedNode[P any](pt PointType[P], coordAddr, meshAddr string, shards ShardProvider[P], opts NodeOptions) error {
	return tcp.ServeNodeObserved(coordAddr, meshAddr, opts.Advertise, opts.Metrics, &typedHandler[P]{pt: pt, shards: shards, opts: opts})
}

// ServeScalarNode runs one resident scalar serving node.
//
// Deprecated: it is a thin wrapper over
// ServeTypedNode(ScalarPoints(), …), kept for the pre-generic API.
func ServeScalarNode(coordAddr, meshAddr string, shards ShardProvider[Scalar], opts NodeOptions) error {
	return ServeTypedNode(ScalarPoints(), coordAddr, meshAddr, shards, opts)
}

// ServeVectorNode runs one resident vector serving node with a
// k-d-tree-indexed shard.
func ServeVectorNode(coordAddr, meshAddr string, shards ShardProvider[Vector], opts NodeOptions) error {
	return ServeTypedNode(VectorPoints(), coordAddr, meshAddr, shards, opts)
}

// ServeBitVectorNode runs one resident bit-vector (Hamming) serving node.
func ServeBitVectorNode(coordAddr, meshAddr string, shards ShardProvider[BitVector], opts NodeOptions) error {
	return ServeTypedNode(BitVectorPoints(), coordAddr, meshAddr, shards, opts)
}

// Frontend is the client-facing endpoint of a TCP serving cluster: it
// performs rendezvous for the k resident nodes and then serves remote
// clients through its epoch scheduler — up to FrontendOptions.Window query
// epochs pipelined on the mesh at once, optionally coalescing concurrently
// arriving single queries into lockstep batch epochs. Nodes and clients
// dial the same address; a connection's first frame decides its role. The
// frontend is point-type agnostic — it learns the cluster's wire tag from
// the nodes' ready reports and rejects mismatched queries.
type Frontend struct {
	fe *tcp.Frontend
}

// FrontendOptions tunes the frontend's epoch scheduler.
type FrontendOptions struct {
	// Window is the maximum number of query epochs in flight on the mesh
	// at once; 1 serializes epochs. Default 8, capped at 64 (the mesh
	// demultiplexer's buffering is budgeted for that depth).
	Window int
	// ServerBatch enables transparent server-side batching: concurrently
	// arriving single-point queries with the same (op, ℓ, tag) coalesce
	// into one lockstep batch epoch — the KNNBatch amortization without
	// clients batching anything. Off by default (coalescing trades up to
	// Linger of latency for throughput).
	ServerBatch bool
	// Linger bounds how long a partial coalesced batch waits for more
	// queries (default 500µs). Only meaningful with ServerBatch.
	Linger time.Duration
	// MaxServerBatch caps a coalesced batch (default 64, at most
	// wire.MaxBatch); a full batch flushes immediately.
	MaxServerBatch int
	// Pruner enables metric-index pruned dispatch for every query shape —
	// KNN, Classify and Regress, single points and whole batches: each
	// point probes its nearest shard(s) to bound its ℓ-th neighbor
	// distance, then only the shards whose centroid ball can intersect
	// that bound receive the point, with a shard needed by no point of a
	// batch skipped entirely — answers stay bit-identical to full scatter.
	// Pass the served PointType's Pruner(); nil (or a point type without
	// pruning geometry, like cosine) keeps every query on the full-scatter
	// path. Pruning pays off when shards are metrically tight, e.g. built
	// by the anchor-clustered shard providers.
	Pruner Pruner
	// Probes is how many nearest shards each point contacts in the pruned
	// path's bounding wave (default 1). More probes tighten the admission
	// bound on overlapping clusters at the cost of more wave-1 contacts;
	// answers are bit-identical for any value. Only meaningful with
	// Pruner.
	Probes int
	// Metrics optionally receives the frontend's runtime metrics: query
	// and epoch counters, window occupancy, coalesced batch sizes, query
	// latency and pruning histograms. Nil records nothing.
	Metrics *Metrics
	// Trace optionally records one span per query epoch (admission →
	// dispatch → per-seat arrival → collation → reply). Nil traces
	// nothing.
	Trace *Tracer
}

func (o FrontendOptions) lower() tcp.FrontendOptions {
	return tcp.FrontendOptions{
		Window:         o.Window,
		ServerBatch:    o.ServerBatch,
		Linger:         o.Linger,
		MaxServerBatch: o.MaxServerBatch,
		Pruner:         o.Pruner,
		Probes:         o.Probes,
		Metrics:        o.Metrics,
		Trace:          o.Trace,
	}
}

// NewFrontend starts the serving listener for a k-node cluster with
// default FrontendOptions. seed is the session seed every node receives:
// it drives the setup election and the per-query epoch seeds, so a serving
// cluster replays deterministically for the same (seed, query stream).
func NewFrontend(addr string, k int, seed uint64) (*Frontend, error) {
	return NewFrontendOptions(addr, k, seed, FrontendOptions{})
}

// NewFrontendOptions starts the serving listener with an explicit epoch
// scheduler configuration (pipelining window, server-side batching).
func NewFrontendOptions(addr string, k int, seed uint64, opts FrontendOptions) (*Frontend, error) {
	fe, err := tcp.NewFrontendOptions(addr, k, seed, opts.lower())
	if err != nil {
		return nil, err
	}
	return &Frontend{fe: fe}, nil
}

// Addr returns the dialable address for nodes (ServeTypedNode) and clients
// (DialScalarCluster / DialVectorCluster).
func (f *Frontend) Addr() string { return f.fe.Addr() }

// Serve runs the session until Close: rendezvous, setup epoch, then client
// queries. It blocks; run it on its own goroutine.
func (f *Frontend) Serve() error { return f.fe.Serve() }

// Leader returns the leader elected in the setup epoch (-1 until then).
func (f *Frontend) Leader() int { return f.fe.Leader() }

// EvictNode forcibly retires node id from the session: its ServeTypedNode
// returns ErrSessionLost and its seat becomes re-joinable. Queries answer
// a degraded error until a node (a restarted process, or the evicted one
// re-registering) takes the seat back. Use it to kick a wedged or
// partitioned node so it re-joins with fresh mesh links.
func (f *Frontend) EvictNode(id int) error { return f.fe.EvictNode(id) }

// Health reports the session's seat-level health: whether every node
// seat is present, and for absent seats the cause of the last loss. Wire
// it into an admin endpoint as AdminOptions.Health to serve /healthz.
func (f *Frontend) Health() Health { return f.fe.Health() }

// Close shuts the session down; resident nodes exit cleanly.
func (f *Frontend) Close() error { return f.fe.Close() }

// RemoteCluster is a client handle on a TCP serving cluster. It satisfies
// the same query surface as the in-process Cluster — KNN, Classify, Regress
// and KNNBatch with identical signatures and exact results — but every call
// travels to the cluster's frontend and runs as one BSP epoch on the
// resident mesh; a KNNBatch ships its whole batch in one dispatch, so the
// per-query frame, syscall and epoch overhead is amortized across the
// batch.
//
// A RemoteCluster is safe for concurrent use, and its single connection is
// multiplexed: every query travels as a tagged frame, so any number of
// calls can be in flight at once and complete out of order. One client
// process can therefore saturate the frontend's whole pipelining window —
// issue queries from concurrent goroutines, or use KNNAsync to hold many
// outstanding without a goroutine per call. QueryStats are the real mesh costs:
// Rounds is the slowest node's round count and Messages/Bytes are
// cluster-wide totals (election rounds were paid once, in the setup
// epoch) — for a query the frontend transparently coalesced into a shared
// epoch, they describe that whole epoch.
type RemoteCluster[P any] struct {
	client *tcp.Client
	codec  wire.PointCodec[P]
	leader atomic.Int64
}

// ClientOptions tunes a RemoteCluster's deadlines and churn handling.
type ClientOptions struct {
	// QueryTimeout bounds each query attempt's network activity (dial,
	// send, reply read), so a hung frontend fails the call instead of
	// blocking it forever. Zero means no deadline.
	QueryTimeout time.Duration
	// RetryWait is the budget for riding out a degraded cluster: a query
	// that hit churn keeps retrying at short intervals until it succeeds
	// or RetryWait has elapsed, returning as soon as the lost node
	// re-joins. Zero means the default (500ms); negative means a single
	// immediate retry.
	RetryWait time.Duration
	// NoRetry disables the transparent retry: the first failure of any
	// kind is returned to the caller.
	NoRetry bool
	// Metrics optionally receives the client's runtime metrics (queries,
	// retries, degraded replies, reconnects, outstanding tags). Nil
	// records nothing.
	Metrics *Metrics
}

// DialTypedCluster connects to a serving cluster's frontend that serves
// pt's point type, with default ClientOptions.
func DialTypedCluster[P any](pt PointType[P], addr string) (*RemoteCluster[P], error) {
	return DialTypedClusterOptions(pt, addr, ClientOptions{})
}

// DialTypedClusterOptions connects to a serving cluster's frontend that
// serves pt's point type.
func DialTypedClusterOptions[P any](pt PointType[P], addr string, opts ClientOptions) (*RemoteCluster[P], error) {
	c, err := tcp.DialFrontendOptions(addr, tcp.ClientOptions{
		Timeout:   opts.QueryTimeout,
		RetryWait: opts.RetryWait,
		NoRetry:   opts.NoRetry,
		Metrics:   opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	rc := &RemoteCluster[P]{client: c, codec: pt.codec}
	rc.leader.Store(-1)
	return rc, nil
}

// DialScalarCluster connects to a scalar serving cluster's frontend.
func DialScalarCluster(addr string) (*RemoteCluster[Scalar], error) {
	return DialTypedCluster(ScalarPoints(), addr)
}

// DialVectorCluster connects to a vector serving cluster's frontend.
func DialVectorCluster(addr string) (*RemoteCluster[Vector], error) {
	return DialTypedCluster(VectorPoints(), addr)
}

// DialBitVectorCluster connects to a bit-vector (Hamming) serving
// cluster's frontend.
func DialBitVectorCluster(addr string) (*RemoteCluster[BitVector], error) {
	return DialTypedCluster(BitVectorPoints(), addr)
}

// DialCluster connects to a scalar serving cluster's frontend.
//
// Deprecated: it is DialScalarCluster under the pre-generic name.
func DialCluster(addr string) (*RemoteCluster[Scalar], error) {
	return DialScalarCluster(addr)
}

// do ships one batch and returns the validated reply.
func (rc *RemoteCluster[P]) do(op uint8, qs []P, l int) (wire.Reply, error) {
	pts := make([][]byte, len(qs))
	for i, q := range qs {
		pts[i] = rc.codec.Encode(q)
	}
	rep, err := rc.client.Do(wire.Query{Op: op, L: l, Tag: rc.codec.Tag, Points: pts})
	if err != nil {
		return wire.Reply{}, fmt.Errorf("distknn: %w", err)
	}
	if len(rep.Results) != len(qs) {
		return wire.Reply{}, fmt.Errorf("distknn: %d results for %d queries", len(rep.Results), len(qs))
	}
	rc.leader.Store(int64(rep.Leader))
	return rep, nil
}

// remoteStats folds the epoch-wide costs and one query's outcome into the
// QueryStats shape the in-process Cluster reports. A pruned dispatch is
// recognizable by Bytes == 0 — it runs no mesh epoch, and its Messages count
// node contacts rather than mesh messages — so that count is surfaced as
// Contacts too.
func remoteStats(rep wire.Reply, qr wire.QueryReply) *QueryStats {
	st := &QueryStats{
		Rounds:     rep.Rounds,
		Messages:   rep.Messages,
		Bytes:      rep.Bytes,
		Leader:     rep.Leader,
		Boundary:   qr.Boundary,
		Survivors:  qr.Survivors,
		FellBack:   qr.FellBack,
		Iterations: qr.Iterations,
	}
	if rep.Bytes == 0 {
		st.Contacts = rep.Messages
	}
	return st
}

// KNN returns the exact ℓ nearest neighbors of q in ascending distance
// order, together with the query's distributed cost on the remote mesh.
func (rc *RemoteCluster[P]) KNN(q P, l int) ([]Item, *QueryStats, error) {
	rep, err := rc.do(wire.OpKNN, []P{q}, l)
	if err != nil {
		return nil, nil, err
	}
	return rep.Results[0].Items, remoteStats(rep, rep.Results[0]), nil
}

// KNNHandle is one in-flight asynchronous KNN query (see KNNAsync).
type KNNHandle struct {
	done  chan struct{}
	items []Item
	stats *QueryStats
	err   error
}

// Done returns a channel closed when the query completes, for select loops.
func (h *KNNHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the query completes and returns its outcome. It may be
// called any number of times.
func (h *KNNHandle) Wait() ([]Item, *QueryStats, error) {
	<-h.done
	return h.items, h.stats, h.err
}

// KNNAsync starts a KNN query and returns immediately with a handle for
// collecting the answer. Each outstanding query is one tagged frame on the
// shared multiplexed connection, so a caller that keeps W handles in flight
// fills a frontend scheduling window of W by itself; replies complete out
// of order and results are bit-identical to the same queries issued
// serially.
func (rc *RemoteCluster[P]) KNNAsync(q P, l int) *KNNHandle {
	h := &KNNHandle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.items, h.stats, h.err = rc.KNN(q, l)
	}()
	return h
}

// Classify returns the majority label among the ℓ nearest neighbors of q
// (ties broken toward the smallest label).
func (rc *RemoteCluster[P]) Classify(q P, l int) (float64, *QueryStats, error) {
	rep, err := rc.do(wire.OpClassify, []P{q}, l)
	if err != nil {
		return 0, nil, err
	}
	return rep.Results[0].Value, remoteStats(rep, rep.Results[0]), nil
}

// Regress returns the mean label of the ℓ nearest neighbors of q.
func (rc *RemoteCluster[P]) Regress(q P, l int) (float64, *QueryStats, error) {
	rep, err := rc.do(wire.OpRegress, []P{q}, l)
	if err != nil {
		return 0, nil, err
	}
	return rep.Results[0].Value, remoteStats(rep, rep.Results[0]), nil
}

// KNNBatch answers many queries with as few BSP epochs as possible: the
// whole batch travels in one dispatch (chunked at wire.MaxBatch) and every
// node answers all of it back to back on one epoch — the socket analogue of
// the in-process KNNBatch, amortizing frames, syscalls and epochs across
// the batch. Per-query results are exact and identical to individual KNN
// calls; the returned QueryStats aggregates the whole batch.
func (rc *RemoteCluster[P]) KNNBatch(queries []P, l int) ([]BatchResult, *QueryStats, error) {
	out := make([]BatchResult, 0, len(queries))
	stats := &QueryStats{Leader: rc.Leader()}
	for len(queries) > 0 {
		chunk := queries
		if len(chunk) > wire.MaxBatch {
			chunk = chunk[:wire.MaxBatch]
		}
		queries = queries[len(chunk):]
		rep, err := rc.do(wire.OpKNN, chunk, l)
		if err != nil {
			return nil, nil, err
		}
		for _, qr := range rep.Results {
			out = append(out, BatchResult{Neighbors: qr.Items, Boundary: qr.Boundary})
		}
		stats.Rounds += rep.Rounds
		stats.Messages += rep.Messages
		stats.Bytes += rep.Bytes
		stats.Leader = rep.Leader
		if rep.Bytes == 0 {
			stats.Contacts += rep.Messages
		}
	}
	return out, stats, nil
}

// Leader returns the remote cluster's leader as last reported by a query
// (-1 before the first successful query).
func (rc *RemoteCluster[P]) Leader() int { return int(rc.leader.Load()) }

// Close releases the connection to the frontend. The remote cluster keeps
// serving other clients.
func (rc *RemoteCluster[P]) Close() error { return rc.client.Close() }

// LocalServer is a whole loopback serving deployment running in one
// process: a Frontend plus k resident nodes. Dial it with
// DialScalarCluster / DialVectorCluster on s.Addr().
type LocalServer struct {
	lc *tcp.LocalCluster
}

// ServeTypedLocal starts a loopback TCP serving cluster for any served
// point type: a frontend and k resident nodes, each holding the shard that
// shards(id, k) builds. It returns once the cluster is meshed, elected and
// ready to serve.
func ServeTypedLocal[P any](pt PointType[P], k int, seed uint64, shards ShardProvider[P], opts NodeOptions) (*LocalServer, error) {
	return ServeTypedLocalOptions(pt, k, seed, shards, opts, FrontendOptions{})
}

// ServeTypedLocalOptions starts a loopback TCP serving cluster with an
// explicit epoch scheduler configuration (pipelining window, server-side
// batching).
func ServeTypedLocalOptions[P any](pt PointType[P], k int, seed uint64, shards ShardProvider[P], opts NodeOptions, fopts FrontendOptions) (*LocalServer, error) {
	lc, err := tcp.ServeLocalOptions(k, seed, fopts.lower(), func() tcp.Handler {
		return &typedHandler[P]{pt: pt, shards: shards, opts: opts}
	})
	if err != nil {
		return nil, err
	}
	return &LocalServer{lc: lc}, nil
}

// ServeLocal starts a loopback scalar TCP serving cluster.
//
// Deprecated: it is a thin wrapper over
// ServeTypedLocal(ScalarPoints(), …), kept for the pre-generic API.
func ServeLocal(k int, seed uint64, shards ShardProvider[Scalar], opts NodeOptions) (*LocalServer, error) {
	return ServeTypedLocal(ScalarPoints(), k, seed, shards, opts)
}

// ServeVectorLocal starts a loopback vector TCP serving cluster with
// k-d-tree-indexed shards.
func ServeVectorLocal(k int, seed uint64, shards ShardProvider[Vector], opts NodeOptions) (*LocalServer, error) {
	return ServeTypedLocal(VectorPoints(), k, seed, shards, opts)
}

// ServeBitVectorLocal starts a loopback bit-vector (Hamming) TCP serving
// cluster.
func ServeBitVectorLocal(k int, seed uint64, shards ShardProvider[BitVector], opts NodeOptions) (*LocalServer, error) {
	return ServeTypedLocal(BitVectorPoints(), k, seed, shards, opts)
}

// Addr returns the frontend address clients should dial.
func (s *LocalServer) Addr() string { return s.lc.Addr() }

// Leader returns the elected leader machine.
func (s *LocalServer) Leader() int { return s.lc.Leader() }

// EvictNode forcibly retires node id from the loopback session (see
// Frontend.EvictNode); re-join it by calling ServeTypedNode against Addr.
func (s *LocalServer) EvictNode(id int) error { return s.lc.EvictNode(id) }

// Close shuts the cluster down and reports the first failure observed by
// the frontend or any node (nil on a clean shutdown).
func (s *LocalServer) Close() error { return s.lc.Close() }
